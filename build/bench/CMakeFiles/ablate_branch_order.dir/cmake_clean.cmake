file(REMOVE_RECURSE
  "CMakeFiles/ablate_branch_order.dir/ablate_branch_order.cpp.o"
  "CMakeFiles/ablate_branch_order.dir/ablate_branch_order.cpp.o.d"
  "ablate_branch_order"
  "ablate_branch_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_branch_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
