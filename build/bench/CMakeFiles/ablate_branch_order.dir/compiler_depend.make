# Empty compiler generated dependencies file for ablate_branch_order.
# This may be replaced when dependencies are built.
