file(REMOVE_RECURSE
  "CMakeFiles/ablate_minimize.dir/ablate_minimize.cpp.o"
  "CMakeFiles/ablate_minimize.dir/ablate_minimize.cpp.o.d"
  "ablate_minimize"
  "ablate_minimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
