# Empty compiler generated dependencies file for ablate_minimize.
# This may be replaced when dependencies are built.
