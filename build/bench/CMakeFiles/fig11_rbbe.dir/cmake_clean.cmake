file(REMOVE_RECURSE
  "CMakeFiles/fig11_rbbe.dir/fig11_rbbe.cpp.o"
  "CMakeFiles/fig11_rbbe.dir/fig11_rbbe.cpp.o.d"
  "fig11_rbbe"
  "fig11_rbbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rbbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
