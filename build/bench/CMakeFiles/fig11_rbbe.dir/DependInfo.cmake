
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_rbbe.cpp" "bench/CMakeFiles/fig11_rbbe.dir/fig11_rbbe.cpp.o" "gcc" "bench/CMakeFiles/fig11_rbbe.dir/fig11_rbbe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/efc_benchcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/efc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stdlib/CMakeFiles/efc_stdlib.dir/DependInfo.cmake"
  "/root/repo/build/src/frontends/CMakeFiles/efc_frontends.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/efc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/rbbe/CMakeFiles/efc_rbbe.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/efc_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/efc_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/efc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/bst/CMakeFiles/efc_bst.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/efc_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
