# Empty compiler generated dependencies file for fig11_rbbe.
# This may be replaced when dependencies are built.
