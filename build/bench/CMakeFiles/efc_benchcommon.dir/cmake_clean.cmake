file(REMOVE_RECURSE
  "../lib/libefc_benchcommon.a"
  "../lib/libefc_benchcommon.pdb"
  "CMakeFiles/efc_benchcommon.dir/baselines/RegexLib.cpp.o"
  "CMakeFiles/efc_benchcommon.dir/baselines/RegexLib.cpp.o.d"
  "CMakeFiles/efc_benchcommon.dir/baselines/XmlLib.cpp.o"
  "CMakeFiles/efc_benchcommon.dir/baselines/XmlLib.cpp.o.d"
  "CMakeFiles/efc_benchcommon.dir/common/BenchCommon.cpp.o"
  "CMakeFiles/efc_benchcommon.dir/common/BenchCommon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
