file(REMOVE_RECURSE
  "../lib/libefc_benchcommon.a"
)
