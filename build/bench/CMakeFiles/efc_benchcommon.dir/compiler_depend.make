# Empty compiler generated dependencies file for efc_benchcommon.
# This may be replaced when dependencies are built.
