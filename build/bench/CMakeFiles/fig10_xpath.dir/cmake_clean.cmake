file(REMOVE_RECURSE
  "CMakeFiles/fig10_xpath.dir/fig10_xpath.cpp.o"
  "CMakeFiles/fig10_xpath.dir/fig10_xpath.cpp.o.d"
  "fig10_xpath"
  "fig10_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
