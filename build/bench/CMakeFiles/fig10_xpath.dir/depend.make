# Empty dependencies file for fig10_xpath.
# This may be replaced when dependencies are built.
