# Empty compiler generated dependencies file for fig13_html.
# This may be replaced when dependencies are built.
