file(REMOVE_RECURSE
  "CMakeFiles/fig13_html.dir/fig13_html.cpp.o"
  "CMakeFiles/fig13_html.dir/fig13_html.cpp.o.d"
  "fig13_html"
  "fig13_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
