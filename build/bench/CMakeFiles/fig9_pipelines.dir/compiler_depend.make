# Empty compiler generated dependencies file for fig9_pipelines.
# This may be replaced when dependencies are built.
