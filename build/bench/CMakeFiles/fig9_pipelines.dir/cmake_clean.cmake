file(REMOVE_RECURSE
  "CMakeFiles/fig9_pipelines.dir/fig9_pipelines.cpp.o"
  "CMakeFiles/fig9_pipelines.dir/fig9_pipelines.cpp.o.d"
  "fig9_pipelines"
  "fig9_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
