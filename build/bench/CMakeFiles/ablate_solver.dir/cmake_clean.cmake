file(REMOVE_RECURSE
  "CMakeFiles/ablate_solver.dir/ablate_solver.cpp.o"
  "CMakeFiles/ablate_solver.dir/ablate_solver.cpp.o.d"
  "ablate_solver"
  "ablate_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
