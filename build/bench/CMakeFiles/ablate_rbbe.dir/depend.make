# Empty dependencies file for ablate_rbbe.
# This may be replaced when dependencies are built.
