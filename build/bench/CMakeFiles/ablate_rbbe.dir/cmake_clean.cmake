file(REMOVE_RECURSE
  "CMakeFiles/ablate_rbbe.dir/ablate_rbbe.cpp.o"
  "CMakeFiles/ablate_rbbe.dir/ablate_rbbe.cpp.o.d"
  "ablate_rbbe"
  "ablate_rbbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rbbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
