# Empty compiler generated dependencies file for efcc.
# This may be replaced when dependencies are built.
