file(REMOVE_RECURSE
  "CMakeFiles/efcc.dir/efcc.cpp.o"
  "CMakeFiles/efcc.dir/efcc.cpp.o.d"
  "efcc"
  "efcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
