file(REMOVE_RECURSE
  "CMakeFiles/csv_query.dir/csv_query.cpp.o"
  "CMakeFiles/csv_query.dir/csv_query.cpp.o.d"
  "csv_query"
  "csv_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
