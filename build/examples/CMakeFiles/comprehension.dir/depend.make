# Empty dependencies file for comprehension.
# This may be replaced when dependencies are built.
