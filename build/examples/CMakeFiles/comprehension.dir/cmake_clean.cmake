file(REMOVE_RECURSE
  "CMakeFiles/comprehension.dir/comprehension.cpp.o"
  "CMakeFiles/comprehension.dir/comprehension.cpp.o.d"
  "comprehension"
  "comprehension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comprehension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
