file(REMOVE_RECURSE
  "CMakeFiles/html_encode.dir/html_encode.cpp.o"
  "CMakeFiles/html_encode.dir/html_encode.cpp.o.d"
  "html_encode"
  "html_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
