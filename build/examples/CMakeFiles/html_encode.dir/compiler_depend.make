# Empty compiler generated dependencies file for html_encode.
# This may be replaced when dependencies are built.
