file(REMOVE_RECURSE
  "CMakeFiles/xpath_query.dir/xpath_query.cpp.o"
  "CMakeFiles/xpath_query.dir/xpath_query.cpp.o.d"
  "xpath_query"
  "xpath_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
