# Empty dependencies file for xpath_query.
# This may be replaced when dependencies are built.
