
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bst/Bst.cpp" "src/bst/CMakeFiles/efc_bst.dir/Bst.cpp.o" "gcc" "src/bst/CMakeFiles/efc_bst.dir/Bst.cpp.o.d"
  "/root/repo/src/bst/BstPrint.cpp" "src/bst/CMakeFiles/efc_bst.dir/BstPrint.cpp.o" "gcc" "src/bst/CMakeFiles/efc_bst.dir/BstPrint.cpp.o.d"
  "/root/repo/src/bst/Interp.cpp" "src/bst/CMakeFiles/efc_bst.dir/Interp.cpp.o" "gcc" "src/bst/CMakeFiles/efc_bst.dir/Interp.cpp.o.d"
  "/root/repo/src/bst/Minimize.cpp" "src/bst/CMakeFiles/efc_bst.dir/Minimize.cpp.o" "gcc" "src/bst/CMakeFiles/efc_bst.dir/Minimize.cpp.o.d"
  "/root/repo/src/bst/Moves.cpp" "src/bst/CMakeFiles/efc_bst.dir/Moves.cpp.o" "gcc" "src/bst/CMakeFiles/efc_bst.dir/Moves.cpp.o.d"
  "/root/repo/src/bst/Rule.cpp" "src/bst/CMakeFiles/efc_bst.dir/Rule.cpp.o" "gcc" "src/bst/CMakeFiles/efc_bst.dir/Rule.cpp.o.d"
  "/root/repo/src/bst/Transform.cpp" "src/bst/CMakeFiles/efc_bst.dir/Transform.cpp.o" "gcc" "src/bst/CMakeFiles/efc_bst.dir/Transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/term/CMakeFiles/efc_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
