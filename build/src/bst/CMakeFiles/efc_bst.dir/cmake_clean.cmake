file(REMOVE_RECURSE
  "CMakeFiles/efc_bst.dir/Bst.cpp.o"
  "CMakeFiles/efc_bst.dir/Bst.cpp.o.d"
  "CMakeFiles/efc_bst.dir/BstPrint.cpp.o"
  "CMakeFiles/efc_bst.dir/BstPrint.cpp.o.d"
  "CMakeFiles/efc_bst.dir/Interp.cpp.o"
  "CMakeFiles/efc_bst.dir/Interp.cpp.o.d"
  "CMakeFiles/efc_bst.dir/Minimize.cpp.o"
  "CMakeFiles/efc_bst.dir/Minimize.cpp.o.d"
  "CMakeFiles/efc_bst.dir/Moves.cpp.o"
  "CMakeFiles/efc_bst.dir/Moves.cpp.o.d"
  "CMakeFiles/efc_bst.dir/Rule.cpp.o"
  "CMakeFiles/efc_bst.dir/Rule.cpp.o.d"
  "CMakeFiles/efc_bst.dir/Transform.cpp.o"
  "CMakeFiles/efc_bst.dir/Transform.cpp.o.d"
  "libefc_bst.a"
  "libefc_bst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_bst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
