# Empty compiler generated dependencies file for efc_bst.
# This may be replaced when dependencies are built.
