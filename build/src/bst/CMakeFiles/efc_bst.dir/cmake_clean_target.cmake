file(REMOVE_RECURSE
  "libefc_bst.a"
)
