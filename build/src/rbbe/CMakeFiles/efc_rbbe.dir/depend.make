# Empty dependencies file for efc_rbbe.
# This may be replaced when dependencies are built.
