file(REMOVE_RECURSE
  "libefc_rbbe.a"
)
