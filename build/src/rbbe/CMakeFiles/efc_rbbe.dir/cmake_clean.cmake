file(REMOVE_RECURSE
  "CMakeFiles/efc_rbbe.dir/Rbbe.cpp.o"
  "CMakeFiles/efc_rbbe.dir/Rbbe.cpp.o.d"
  "libefc_rbbe.a"
  "libefc_rbbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_rbbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
