file(REMOVE_RECURSE
  "libefc_codegen.a"
)
