file(REMOVE_RECURSE
  "CMakeFiles/efc_codegen.dir/CppCodeGen.cpp.o"
  "CMakeFiles/efc_codegen.dir/CppCodeGen.cpp.o.d"
  "CMakeFiles/efc_codegen.dir/NativeCompile.cpp.o"
  "CMakeFiles/efc_codegen.dir/NativeCompile.cpp.o.d"
  "libefc_codegen.a"
  "libefc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
