# Empty dependencies file for efc_codegen.
# This may be replaced when dependencies are built.
