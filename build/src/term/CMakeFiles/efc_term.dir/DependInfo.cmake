
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/term/Eval.cpp" "src/term/CMakeFiles/efc_term.dir/Eval.cpp.o" "gcc" "src/term/CMakeFiles/efc_term.dir/Eval.cpp.o.d"
  "/root/repo/src/term/Print.cpp" "src/term/CMakeFiles/efc_term.dir/Print.cpp.o" "gcc" "src/term/CMakeFiles/efc_term.dir/Print.cpp.o.d"
  "/root/repo/src/term/Rewrite.cpp" "src/term/CMakeFiles/efc_term.dir/Rewrite.cpp.o" "gcc" "src/term/CMakeFiles/efc_term.dir/Rewrite.cpp.o.d"
  "/root/repo/src/term/TermContext.cpp" "src/term/CMakeFiles/efc_term.dir/TermContext.cpp.o" "gcc" "src/term/CMakeFiles/efc_term.dir/TermContext.cpp.o.d"
  "/root/repo/src/term/Type.cpp" "src/term/CMakeFiles/efc_term.dir/Type.cpp.o" "gcc" "src/term/CMakeFiles/efc_term.dir/Type.cpp.o.d"
  "/root/repo/src/term/Value.cpp" "src/term/CMakeFiles/efc_term.dir/Value.cpp.o" "gcc" "src/term/CMakeFiles/efc_term.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
