file(REMOVE_RECURSE
  "CMakeFiles/efc_term.dir/Eval.cpp.o"
  "CMakeFiles/efc_term.dir/Eval.cpp.o.d"
  "CMakeFiles/efc_term.dir/Print.cpp.o"
  "CMakeFiles/efc_term.dir/Print.cpp.o.d"
  "CMakeFiles/efc_term.dir/Rewrite.cpp.o"
  "CMakeFiles/efc_term.dir/Rewrite.cpp.o.d"
  "CMakeFiles/efc_term.dir/TermContext.cpp.o"
  "CMakeFiles/efc_term.dir/TermContext.cpp.o.d"
  "CMakeFiles/efc_term.dir/Type.cpp.o"
  "CMakeFiles/efc_term.dir/Type.cpp.o.d"
  "CMakeFiles/efc_term.dir/Value.cpp.o"
  "CMakeFiles/efc_term.dir/Value.cpp.o.d"
  "libefc_term.a"
  "libefc_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
