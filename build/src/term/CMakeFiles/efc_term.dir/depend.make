# Empty dependencies file for efc_term.
# This may be replaced when dependencies are built.
