file(REMOVE_RECURSE
  "libefc_term.a"
)
