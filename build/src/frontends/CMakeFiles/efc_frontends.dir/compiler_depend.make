# Empty compiler generated dependencies file for efc_frontends.
# This may be replaced when dependencies are built.
