file(REMOVE_RECURSE
  "libefc_frontends.a"
)
