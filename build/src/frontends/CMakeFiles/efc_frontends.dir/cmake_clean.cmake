file(REMOVE_RECURSE
  "CMakeFiles/efc_frontends.dir/comprehension/Comprehension.cpp.o"
  "CMakeFiles/efc_frontends.dir/comprehension/Comprehension.cpp.o.d"
  "CMakeFiles/efc_frontends.dir/regex/Automata.cpp.o"
  "CMakeFiles/efc_frontends.dir/regex/Automata.cpp.o.d"
  "CMakeFiles/efc_frontends.dir/regex/CharClass.cpp.o"
  "CMakeFiles/efc_frontends.dir/regex/CharClass.cpp.o.d"
  "CMakeFiles/efc_frontends.dir/regex/Regex.cpp.o"
  "CMakeFiles/efc_frontends.dir/regex/Regex.cpp.o.d"
  "CMakeFiles/efc_frontends.dir/regex/RegexFrontend.cpp.o"
  "CMakeFiles/efc_frontends.dir/regex/RegexFrontend.cpp.o.d"
  "CMakeFiles/efc_frontends.dir/xpath/XPathFrontend.cpp.o"
  "CMakeFiles/efc_frontends.dir/xpath/XPathFrontend.cpp.o.d"
  "libefc_frontends.a"
  "libefc_frontends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_frontends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
