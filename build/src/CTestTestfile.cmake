# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("term")
subdirs("solver")
subdirs("bst")
subdirs("fusion")
subdirs("rbbe")
subdirs("vm")
subdirs("codegen")
subdirs("frontends")
subdirs("stdlib")
subdirs("data")
