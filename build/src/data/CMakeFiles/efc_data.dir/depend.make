# Empty dependencies file for efc_data.
# This may be replaced when dependencies are built.
