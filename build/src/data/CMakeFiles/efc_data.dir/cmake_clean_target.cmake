file(REMOVE_RECURSE
  "libefc_data.a"
)
