
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/Datasets.cpp" "src/data/CMakeFiles/efc_data.dir/Datasets.cpp.o" "gcc" "src/data/CMakeFiles/efc_data.dir/Datasets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stdlib/CMakeFiles/efc_stdlib.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/efc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bst/CMakeFiles/efc_bst.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/efc_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
