file(REMOVE_RECURSE
  "CMakeFiles/efc_data.dir/Datasets.cpp.o"
  "CMakeFiles/efc_data.dir/Datasets.cpp.o.d"
  "libefc_data.a"
  "libefc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
