# Empty compiler generated dependencies file for efc_vm.
# This may be replaced when dependencies are built.
