file(REMOVE_RECURSE
  "CMakeFiles/efc_vm.dir/Pipeline.cpp.o"
  "CMakeFiles/efc_vm.dir/Pipeline.cpp.o.d"
  "CMakeFiles/efc_vm.dir/Vm.cpp.o"
  "CMakeFiles/efc_vm.dir/Vm.cpp.o.d"
  "libefc_vm.a"
  "libefc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
