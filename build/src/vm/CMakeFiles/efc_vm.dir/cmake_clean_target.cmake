file(REMOVE_RECURSE
  "libefc_vm.a"
)
