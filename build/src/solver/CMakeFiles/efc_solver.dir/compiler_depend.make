# Empty compiler generated dependencies file for efc_solver.
# This may be replaced when dependencies are built.
