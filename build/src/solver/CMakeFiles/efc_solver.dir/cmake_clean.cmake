file(REMOVE_RECURSE
  "CMakeFiles/efc_solver.dir/BitBlaster.cpp.o"
  "CMakeFiles/efc_solver.dir/BitBlaster.cpp.o.d"
  "CMakeFiles/efc_solver.dir/Interval.cpp.o"
  "CMakeFiles/efc_solver.dir/Interval.cpp.o.d"
  "CMakeFiles/efc_solver.dir/SatSolver.cpp.o"
  "CMakeFiles/efc_solver.dir/SatSolver.cpp.o.d"
  "CMakeFiles/efc_solver.dir/Solver.cpp.o"
  "CMakeFiles/efc_solver.dir/Solver.cpp.o.d"
  "libefc_solver.a"
  "libefc_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
