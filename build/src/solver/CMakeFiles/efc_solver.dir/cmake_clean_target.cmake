file(REMOVE_RECURSE
  "libefc_solver.a"
)
