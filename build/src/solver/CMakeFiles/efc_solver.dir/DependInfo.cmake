
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/BitBlaster.cpp" "src/solver/CMakeFiles/efc_solver.dir/BitBlaster.cpp.o" "gcc" "src/solver/CMakeFiles/efc_solver.dir/BitBlaster.cpp.o.d"
  "/root/repo/src/solver/Interval.cpp" "src/solver/CMakeFiles/efc_solver.dir/Interval.cpp.o" "gcc" "src/solver/CMakeFiles/efc_solver.dir/Interval.cpp.o.d"
  "/root/repo/src/solver/SatSolver.cpp" "src/solver/CMakeFiles/efc_solver.dir/SatSolver.cpp.o" "gcc" "src/solver/CMakeFiles/efc_solver.dir/SatSolver.cpp.o.d"
  "/root/repo/src/solver/Solver.cpp" "src/solver/CMakeFiles/efc_solver.dir/Solver.cpp.o" "gcc" "src/solver/CMakeFiles/efc_solver.dir/Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/term/CMakeFiles/efc_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
