file(REMOVE_RECURSE
  "libefc_support.a"
)
