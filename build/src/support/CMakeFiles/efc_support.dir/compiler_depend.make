# Empty compiler generated dependencies file for efc_support.
# This may be replaced when dependencies are built.
