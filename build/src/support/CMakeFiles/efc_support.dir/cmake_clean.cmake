file(REMOVE_RECURSE
  "CMakeFiles/efc_support.dir/Stopwatch.cpp.o"
  "CMakeFiles/efc_support.dir/Stopwatch.cpp.o.d"
  "libefc_support.a"
  "libefc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
