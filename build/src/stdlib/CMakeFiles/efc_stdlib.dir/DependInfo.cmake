
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stdlib/Reference.cpp" "src/stdlib/CMakeFiles/efc_stdlib.dir/Reference.cpp.o" "gcc" "src/stdlib/CMakeFiles/efc_stdlib.dir/Reference.cpp.o.d"
  "/root/repo/src/stdlib/TransducersAgg.cpp" "src/stdlib/CMakeFiles/efc_stdlib.dir/TransducersAgg.cpp.o" "gcc" "src/stdlib/CMakeFiles/efc_stdlib.dir/TransducersAgg.cpp.o.d"
  "/root/repo/src/stdlib/TransducersBase64.cpp" "src/stdlib/CMakeFiles/efc_stdlib.dir/TransducersBase64.cpp.o" "gcc" "src/stdlib/CMakeFiles/efc_stdlib.dir/TransducersBase64.cpp.o.d"
  "/root/repo/src/stdlib/TransducersHtml.cpp" "src/stdlib/CMakeFiles/efc_stdlib.dir/TransducersHtml.cpp.o" "gcc" "src/stdlib/CMakeFiles/efc_stdlib.dir/TransducersHtml.cpp.o.d"
  "/root/repo/src/stdlib/TransducersText.cpp" "src/stdlib/CMakeFiles/efc_stdlib.dir/TransducersText.cpp.o" "gcc" "src/stdlib/CMakeFiles/efc_stdlib.dir/TransducersText.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bst/CMakeFiles/efc_bst.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/efc_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
