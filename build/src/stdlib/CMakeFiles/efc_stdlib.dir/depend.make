# Empty dependencies file for efc_stdlib.
# This may be replaced when dependencies are built.
