file(REMOVE_RECURSE
  "libefc_stdlib.a"
)
