file(REMOVE_RECURSE
  "CMakeFiles/efc_stdlib.dir/Reference.cpp.o"
  "CMakeFiles/efc_stdlib.dir/Reference.cpp.o.d"
  "CMakeFiles/efc_stdlib.dir/TransducersAgg.cpp.o"
  "CMakeFiles/efc_stdlib.dir/TransducersAgg.cpp.o.d"
  "CMakeFiles/efc_stdlib.dir/TransducersBase64.cpp.o"
  "CMakeFiles/efc_stdlib.dir/TransducersBase64.cpp.o.d"
  "CMakeFiles/efc_stdlib.dir/TransducersHtml.cpp.o"
  "CMakeFiles/efc_stdlib.dir/TransducersHtml.cpp.o.d"
  "CMakeFiles/efc_stdlib.dir/TransducersText.cpp.o"
  "CMakeFiles/efc_stdlib.dir/TransducersText.cpp.o.d"
  "libefc_stdlib.a"
  "libefc_stdlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_stdlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
