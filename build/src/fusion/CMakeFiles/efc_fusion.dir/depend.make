# Empty dependencies file for efc_fusion.
# This may be replaced when dependencies are built.
