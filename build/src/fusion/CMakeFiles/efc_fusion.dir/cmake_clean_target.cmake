file(REMOVE_RECURSE
  "libefc_fusion.a"
)
