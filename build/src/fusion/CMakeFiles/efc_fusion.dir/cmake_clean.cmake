file(REMOVE_RECURSE
  "CMakeFiles/efc_fusion.dir/Fusion.cpp.o"
  "CMakeFiles/efc_fusion.dir/Fusion.cpp.o.d"
  "libefc_fusion.a"
  "libefc_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efc_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
