# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/term_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/bst_test[1]_include.cmake")
include("/root/repo/build/tests/stdlib_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/rbbe_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/frontends_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
