file(REMOVE_RECURSE
  "CMakeFiles/solver_test.dir/solver/CacheTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/CacheTest.cpp.o.d"
  "CMakeFiles/solver_test.dir/solver/IntervalTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/IntervalTest.cpp.o.d"
  "CMakeFiles/solver_test.dir/solver/SatRandomTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/SatRandomTest.cpp.o.d"
  "CMakeFiles/solver_test.dir/solver/SatSolverTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/SatSolverTest.cpp.o.d"
  "CMakeFiles/solver_test.dir/solver/SolverTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/SolverTest.cpp.o.d"
  "solver_test"
  "solver_test.pdb"
  "solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
