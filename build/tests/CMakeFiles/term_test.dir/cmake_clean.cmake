file(REMOVE_RECURSE
  "CMakeFiles/term_test.dir/term/EvalTest.cpp.o"
  "CMakeFiles/term_test.dir/term/EvalTest.cpp.o.d"
  "CMakeFiles/term_test.dir/term/RewriteTest.cpp.o"
  "CMakeFiles/term_test.dir/term/RewriteTest.cpp.o.d"
  "CMakeFiles/term_test.dir/term/TermParamTest.cpp.o"
  "CMakeFiles/term_test.dir/term/TermParamTest.cpp.o.d"
  "CMakeFiles/term_test.dir/term/TermTest.cpp.o"
  "CMakeFiles/term_test.dir/term/TermTest.cpp.o.d"
  "term_test"
  "term_test.pdb"
  "term_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
