file(REMOVE_RECURSE
  "CMakeFiles/fusion_test.dir/fusion/FusionPropertyTest.cpp.o"
  "CMakeFiles/fusion_test.dir/fusion/FusionPropertyTest.cpp.o.d"
  "CMakeFiles/fusion_test.dir/fusion/FusionTest.cpp.o"
  "CMakeFiles/fusion_test.dir/fusion/FusionTest.cpp.o.d"
  "CMakeFiles/fusion_test.dir/fusion/InverseCompositionTest.cpp.o"
  "CMakeFiles/fusion_test.dir/fusion/InverseCompositionTest.cpp.o.d"
  "CMakeFiles/fusion_test.dir/fusion/Section31Test.cpp.o"
  "CMakeFiles/fusion_test.dir/fusion/Section31Test.cpp.o.d"
  "fusion_test"
  "fusion_test.pdb"
  "fusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
