# Empty dependencies file for frontends_test.
# This may be replaced when dependencies are built.
