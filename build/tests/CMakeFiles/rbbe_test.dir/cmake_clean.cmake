file(REMOVE_RECURSE
  "CMakeFiles/rbbe_test.dir/rbbe/RbbeTest.cpp.o"
  "CMakeFiles/rbbe_test.dir/rbbe/RbbeTest.cpp.o.d"
  "rbbe_test"
  "rbbe_test.pdb"
  "rbbe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbbe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
