# Empty compiler generated dependencies file for rbbe_test.
# This may be replaced when dependencies are built.
