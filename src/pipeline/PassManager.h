//===- pipeline/PassManager.h - Run + cache + verify a pass list *- C++ -*-===//
///
/// \file
/// Drives a named pass list over one PassContext (see Pass.h):
///
///   * per-pass artifact caching in a process-wide LRU, keyed on
///     (pass name, IR hash entering the pass, pass options hash) — an
///     RBBE-budget-only change re-keys `rbbe` but hits the cached `fuse`
///     artifact; a fastpath-knob change reuses fuse/rbbe/vm_compile,
///   * IR invariant verification between passes behind EFC_VERIFY_IR=1,
///   * per-pass Metrics counters/seconds (efc_pass_*_total{pass="..."})
///     and the trace::Span tree the monolithic driver used to emit.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_PIPELINE_PASSMANAGER_H
#define EFC_PIPELINE_PASSMANAGER_H

#include "pipeline/Pass.h"

#include <string>
#include <vector>

namespace efc::pipeline {

/// Per-pass hit/miss counters of the process-wide artifact cache.
struct PassCacheStats {
  struct Row {
    std::string Pass;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };
  std::vector<Row> Rows; ///< sorted by pass name
  uint64_t Entries = 0;
  uint64_t Capacity = 0;
  uint64_t Evictions = 0;

  uint64_t hits(std::string_view Pass) const;
  uint64_t misses(std::string_view Pass) const;
  /// "pass-cache: cap=64 entries=3 evictions=0 fuse=2/5 rbbe=0/5" —
  /// hits/lookups per pass, for stats dumps and the CI cache-stats line.
  std::string str() const;
};

class PassManager {
public:
  /// \p Passes are registry names, run in order.  Unknown names fail at
  /// run() with a diagnostic listing the registry.
  explicit PassManager(std::vector<std::string> Passes);

  /// The serving pipeline for a spec: fuse [+ rbbe] [+ minimize] +
  /// vm_compile + fastpath_plan [+ parallel_plan].
  static std::vector<std::string>
  defaultPasses(bool Rbbe, bool Minimize, bool ParallelPlan = true);

  const std::vector<std::string> &passes() const { return Names; }

  /// Runs every pass over \p PC.  False + \p Err on the first failure
  /// (unknown pass, pass error, or — under VerifyIr — an invariant
  /// violation).  PC.Runs records one PassRun per executed pass.
  bool run(PassContext &PC, const PipelineOptions &O,
           std::string *Err) const;

  /// One line per pass: name, kind, cacheability, options fingerprint.
  std::string explain(const PipelineOptions &O) const;

  static PassCacheStats cacheStats();
  /// Drops every cached artifact and zeroes the counters (tests).
  static void resetCacheForTests();

private:
  std::vector<std::string> Names;
};

/// Generic IR invariants (also used by the manager between passes):
/// structural/type well-formedness plus rule-tree hash determinism — two
/// independent classifier-hash walks must agree, so any
/// iteration-order-dependent rule construction is caught here.
bool verifyIr(const Bst &A, std::string *Err);

} // namespace efc::pipeline

#endif // EFC_PIPELINE_PASSMANAGER_H
