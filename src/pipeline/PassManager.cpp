//===- pipeline/PassManager.cpp - Run + cache + verify a pass list --------===//

#include "pipeline/PassManager.h"

#include "codegen/CppCodeGen.h"
#include "support/EnvParse.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>

using namespace efc;
using namespace efc::pipeline;

PipelineOptions::PipelineOptions()
    : VerifyIr(env::flag("EFC_VERIFY_IR", false)) {}

//===----------------------------------------------------------------------===//
// PassCache: process-wide per-pass artifact LRU
//===----------------------------------------------------------------------===//

namespace {

/// LRU over (pass name, input-IR hash, options hash) -> PassArtifacts.
/// Orthogonal to the spec-keyed PipelineCache: that one caches whole
/// serving pipelines by spec string; this one caches *per-pass* results
/// by content hash, so two different specs (or a respec changing only a
/// downstream option) share upstream work.
class PassCache {
public:
  static PassCache &instance() {
    static PassCache C;
    return C;
  }

  bool lookup(std::string_view PassName, const std::string &Key,
              PassArtifacts &Out) {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Map.find(Key);
    if (It == Map.end() || Capacity == 0) {
      ++stats(PassName).Misses;
      missCounter(PassName).inc();
      return false;
    }
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    Out = It->second.A;
    ++stats(PassName).Hits;
    hitCounter(PassName).inc();
    return true;
  }

  void insert(std::string_view PassName, const std::string &Key,
              PassArtifacts A) {
    std::lock_guard<std::mutex> L(Mu);
    if (Capacity == 0)
      return;
    auto It = Map.find(Key);
    if (It != Map.end()) { // lost a race; keep the incumbent
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
      return;
    }
    Lru.push_front(Key);
    Map.emplace(Key, Entry{std::move(A), Lru.begin()});
    while (Map.size() > Capacity) {
      Map.erase(Lru.back());
      Lru.pop_back();
      ++Evictions;
      (void)PassName;
      metrics::Registry::instance()
          .counter("efc_pass_cache_evictions_total",
                   "Per-pass artifact cache evictions")
          .inc();
    }
  }

  PassCacheStats snapshot() {
    std::lock_guard<std::mutex> L(Mu);
    PassCacheStats S;
    S.Entries = Map.size();
    S.Capacity = Capacity;
    S.Evictions = Evictions;
    for (const auto &[Name, Row] : PerPass)
      S.Rows.push_back({Name, Row.Hits, Row.Misses});
    return S;
  }

  void reset() {
    std::lock_guard<std::mutex> L(Mu);
    Map.clear();
    Lru.clear();
    PerPass.clear();
    Evictions = 0;
  }

private:
  PassCache()
      : Capacity(env::u64("EFC_PASS_CACHE_CAP", 64, 0, 1 << 20)) {}

  struct Entry {
    PassArtifacts A;
    std::list<std::string>::iterator LruIt;
  };
  struct Row {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };

  Row &stats(std::string_view PassName) {
    return PerPass[std::string(PassName)];
  }
  metrics::Counter &hitCounter(std::string_view PassName) {
    return metrics::Registry::instance().counter(
        "efc_pass_cache_hits_total", "Per-pass artifact cache hits",
        "pass=\"" + std::string(PassName) + "\"");
  }
  metrics::Counter &missCounter(std::string_view PassName) {
    return metrics::Registry::instance().counter(
        "efc_pass_cache_misses_total", "Per-pass artifact cache misses",
        "pass=\"" + std::string(PassName) + "\"");
  }

  std::mutex Mu;
  std::unordered_map<std::string, Entry> Map;
  std::list<std::string> Lru; // front = most recent
  std::map<std::string, Row> PerPass;
  uint64_t Evictions = 0;
  const uint64_t Capacity;
};

std::string cacheKey(std::string_view PassName, uint64_t InHash,
                     uint64_t OptHash) {
  char Buf[2 * 16 + 2];
  snprintf(Buf, sizeof(Buf), ":%016llx:%016llx",
           (unsigned long long)InHash, (unsigned long long)OptHash);
  return std::string(PassName) + Buf;
}

IrSnapshot snapshotIr(const Bst &A) {
  IrSnapshot S;
  S.States = A.numStates();
  S.Branches = A.countBranches();
  S.InputTy = A.inputType();
  S.OutputTy = A.outputType();
  S.RegTy = A.registerType();
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// PassCacheStats
//===----------------------------------------------------------------------===//

uint64_t PassCacheStats::hits(std::string_view Pass) const {
  for (const Row &R : Rows)
    if (R.Pass == Pass)
      return R.Hits;
  return 0;
}

uint64_t PassCacheStats::misses(std::string_view Pass) const {
  for (const Row &R : Rows)
    if (R.Pass == Pass)
      return R.Misses;
  return 0;
}

std::string PassCacheStats::str() const {
  std::ostringstream OS;
  OS << "pass-cache: cap=" << Capacity << " entries=" << Entries
     << " evictions=" << Evictions;
  for (const Row &R : Rows)
    OS << " " << R.Pass << "=" << R.Hits << "/" << (R.Hits + R.Misses);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// verifyIr
//===----------------------------------------------------------------------===//

namespace efc::pipeline {

bool verifyIr(const Bst &A, std::string *Err) {
  if (A.numStates() == 0) {
    if (Err)
      *Err = "empty transducer";
    return false;
  }
  std::string WfErr;
  if (!A.wellFormed(&WfErr)) {
    if (Err)
      *Err = "not well-formed: " + WfErr;
    return false;
  }
  // Rule-tree hash determinism: the classifier hash walks every rule
  // tree structurally; two independent walks disagreeing means rule
  // construction depended on iteration order or uninitialized state.
  uint64_t H1 = classifierHash(A);
  uint64_t H2 = classifierHash(A);
  if (H1 != H2) {
    if (Err)
      *Err = "rule-tree hash is nondeterministic";
    return false;
  }
  return true;
}

} // namespace efc::pipeline

//===----------------------------------------------------------------------===//
// PassManager
//===----------------------------------------------------------------------===//

PassManager::PassManager(std::vector<std::string> Passes)
    : Names(std::move(Passes)) {}

std::vector<std::string>
PassManager::defaultPasses(bool Rbbe, bool Minimize, bool ParallelPlan) {
  std::vector<std::string> P{"fuse"};
  if (Rbbe)
    P.push_back("rbbe");
  if (Minimize)
    P.push_back("minimize");
  P.push_back("vm_compile");
  P.push_back("fastpath_plan");
  if (ParallelPlan)
    P.push_back("parallel_plan");
  return P;
}

bool PassManager::run(PassContext &PC, const PipelineOptions &O,
                      std::string *Err) const {
  auto &Reg = PassRegistry::instance();
  for (const std::string &Name : Names) {
    const Pass *P = Reg.lookup(Name);
    if (!P) {
      if (Err) {
        std::string Known;
        for (const std::string &N : Reg.names())
          Known += (Known.empty() ? "" : ", ") + N;
        *Err = "unknown pass '" + Name + "' (registered: " + Known + ")";
      }
      return false;
    }

    PassRun R;
    R.PassName = Name;
    R.InHash = P->inputHash(PC);
    uint64_t OptHash = P->optionsHash(O);

    metrics::Registry::instance()
        .counter("efc_pass_runs_total", "Compile pass executions",
                 "pass=\"" + Name + "\"")
        .inc();

    // Raw-mode contexts (no IrChain) own their TermContext on the stack;
    // cached artifacts would dangle past it, so caching requires a chain.
    bool Cacheable = O.UseCache && P->cacheable() && PC.Chain != nullptr;
    if (Cacheable) {
      std::string Key = cacheKey(Name, R.InHash, OptHash);
      PassArtifacts A;
      if (PassCache::instance().lookup(Name, Key, A)) {
        P->load(A, PC);
        if (P->transformsIr()) {
          // Adopt the cached artifact's chain: PC.Ir's terms live in
          // *its* TermContext now, and later passes must create terms —
          // and lock — there.
          if (A.Chain)
            PC.Chain = A.Chain;
          PC.IrHash = A.IrHash;
          R.OutHash = A.IrHash;
        }
        R.CacheHit = true;
        PC.Runs.push_back(std::move(R));
        continue;
      }
    }

    IrSnapshot Before;
    if (PC.Ir)
      Before = snapshotIr(*PC.Ir);

    Stopwatch W;
    bool Ok;
    std::string Note;
    {
      // Term creation (hash-consing) in the chain's TermContext is not
      // thread-safe; hold its lock for the pass body *and* the hash /
      // verify block — even "reads" like type queries may intern terms.
      // At most one chain lock is held at a time, and the PassCache
      // mutex is never taken while holding it.
      std::unique_lock<std::mutex> ChainLock;
      if (PC.Chain)
        ChainLock = std::unique_lock(PC.Chain->Mu);

      Ok = P->run(PC, O, Err, &Note);
      if (Ok && P->transformsIr()) {
        if (!PC.Ir) {
          if (Err)
            *Err = "pass '" + Name + "' produced no IR";
          Ok = false;
        } else {
          PC.IrHash = classifierHash(*PC.Ir);
        }
      }
      if (Ok && O.VerifyIr) {
        std::string VErr;
        if (P->transformsIr() && PC.Ir && !verifyIr(*PC.Ir, &VErr)) {
          if (Err)
            *Err = "IR invariant violated after pass '" + Name +
                   "': " + VErr;
          Ok = false;
        } else if (!P->verifyInvariants(PC, Before, &VErr)) {
          if (Err)
            *Err = "invariant violated by pass '" + Name + "': " + VErr;
          Ok = false;
        }
      }
    }
    R.Seconds = W.seconds();
    R.Note = std::move(Note);
    metrics::Registry::instance()
        .dcounter("efc_pass_seconds_total", "Compile pass wall seconds",
                  "pass=\"" + Name + "\"")
        .add(R.Seconds);
    if (!Ok)
      return false;

    if (P->transformsIr())
      R.OutHash = PC.IrHash;
    if (Cacheable) {
      PassArtifacts A;
      P->save(PC, A);
      A.Chain = PC.Chain;
      if (P->transformsIr())
        A.IrHash = PC.IrHash;
      PassCache::instance().insert(
          Name, cacheKey(Name, R.InHash, OptHash), std::move(A));
    }
    PC.Runs.push_back(std::move(R));
  }
  return true;
}

std::string PassManager::explain(const PipelineOptions &O) const {
  auto &Reg = PassRegistry::instance();
  std::ostringstream OS;
  for (const std::string &Name : Names) {
    const Pass *P = Reg.lookup(Name);
    if (!P) {
      OS << Name << ": <unknown pass>\n";
      continue;
    }
    char Opt[32];
    snprintf(Opt, sizeof(Opt), "%016llx",
             (unsigned long long)P->optionsHash(O));
    OS << Name << ": " << (P->transformsIr() ? "ir" : "plan")
       << (P->cacheable() ? ", cacheable" : ", uncached")
       << ", options=" << Opt << "\n";
  }
  return OS.str();
}

PassCacheStats PassManager::cacheStats() {
  return PassCache::instance().snapshot();
}

void PassManager::resetCacheForTests() { PassCache::instance().reset(); }
