//===- pipeline/Passes.cpp - Builtin passes + registry --------------------===//
//
// The builtin compile passes.  fuse/rbbe do not open trace spans here —
// fuseChain and eliminateUnreachableBranches already open "fuse"/"rbbe"
// internally; minimize/vm_compile/fastpath_plan/parallel_plan open the
// spans the monolithic PipelineCache driver used to, with identical names
// and notes, so EFC_TRACE span trees are unchanged by the refactor.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pass.h"

#include "codegen/CppCodeGen.h"
#include "solver/Solver.h"
#include "support/Trace.h"
#include "vm/Simd.h"

#include <mutex>
#include <unordered_map>

using namespace efc;
using namespace efc::pipeline;

namespace {

uint64_t fnv1a(uint64_t H, uint64_t V) {
  for (unsigned I = 0; I < 8; ++I) {
    H ^= (V >> (I * 8)) & 0xff;
    H *= 0x100000001b3ull;
  }
  return H;
}
constexpr uint64_t FnvInit = 0xcbf29ce484222325ull;

uint64_t bitsOf(double D) {
  uint64_t B;
  static_assert(sizeof(B) == sizeof(D));
  __builtin_memcpy(&B, &D, sizeof(B));
  return B;
}

//===----------------------------------------------------------------------===//
// fuse
//===----------------------------------------------------------------------===//

/// ⊗-fuses the stage chain (paper §3).  Keyed on the combined per-stage
/// classifier hash, so any caller assembling the same stages — whatever
/// the spec or downstream options — shares one fusion.
class FusePass : public Pass {
public:
  std::string_view name() const override { return "fuse"; }

  uint64_t optionsHash(const PipelineOptions &O) const override {
    uint64_t H = FnvInit;
    H = fnv1a(H, O.Fusion.SolverPruning);
    H = fnv1a(H, O.Fusion.DeadEndElimination);
    H = fnv1a(H, uint64_t(O.Fusion.SolverBudget));
    return H;
  }

  uint64_t inputHash(const PassContext &PC) const override {
    uint64_t H = FnvInit;
    H = fnv1a(H, PC.Stages.size());
    for (const Bst *St : PC.Stages)
      H = fnv1a(H, classifierHash(*St));
    return H;
  }

  bool run(PassContext &PC, const PipelineOptions &O, std::string *Err,
           std::string *) const override {
    if (PC.Stages.empty()) {
      if (Err)
        *Err = "fuse: no input stages";
      return false;
    }
    // A fresh solver per pass: the output must be a function of
    // (input IR, options) alone, never of what some earlier pass left in
    // a shared solver's caches — the property per-pass caching rests on.
    Solver S(PC.Stages.front()->context());
    PC.Ir = std::make_shared<Bst>(
        fuseChain(PC.Stages, S, O.Fusion, &PC.FStats));
    return true;
  }

  void save(const PassContext &PC, PassArtifacts &A) const override {
    A.Ir = PC.Ir;
    A.FStats = PC.FStats;
  }
  void load(const PassArtifacts &A, PassContext &PC) const override {
    PC.Ir = A.Ir;
    PC.FStats = A.FStats;
  }

  bool verifyInvariants(const PassContext &PC, const IrSnapshot &,
                        std::string *Err) const override {
    if (!PC.Stages.empty() &&
        (PC.Ir->inputType() != PC.Stages.front()->inputType() ||
         PC.Ir->outputType() != PC.Stages.back()->outputType())) {
      if (Err)
        *Err = "fused boundary types differ from the stage chain's";
      return false;
    }
    return true;
  }
};

//===----------------------------------------------------------------------===//
// rbbe
//===----------------------------------------------------------------------===//

/// Reachability-based branch elimination (paper §4).
class RbbePass : public Pass {
public:
  std::string_view name() const override { return "rbbe"; }

  uint64_t optionsHash(const PipelineOptions &O) const override {
    uint64_t H = FnvInit;
    H = fnv1a(H, O.Rbbe.UnderApprox);
    H = fnv1a(H, O.Rbbe.ForwardLayers);
    H = fnv1a(H, O.Rbbe.ForwardWidth);
    H = fnv1a(H, O.Rbbe.BackwardDepth);
    H = fnv1a(H, O.Rbbe.MaxPredicateNodes);
    H = fnv1a(H, O.Rbbe.MaxSolverChecks);
    H = fnv1a(H, uint64_t(O.Rbbe.ConflictBudget));
    H = fnv1a(H, bitsOf(O.Rbbe.TimeBudgetSeconds));
    return H;
  }

  bool run(PassContext &PC, const PipelineOptions &O, std::string *Err,
           std::string *) const override {
    if (!PC.Ir) {
      if (Err)
        *Err = "rbbe: no IR (run fuse first)";
      return false;
    }
    Solver S(PC.Ir->context()); // fresh per pass; see FusePass::run
    PC.Ir = std::make_shared<Bst>(
        eliminateUnreachableBranches(*PC.Ir, S, O.Rbbe, &PC.RStats));
    return true;
  }

  void save(const PassContext &PC, PassArtifacts &A) const override {
    A.Ir = PC.Ir;
    A.RStats = PC.RStats;
  }
  void load(const PassArtifacts &A, PassContext &PC) const override {
    PC.Ir = A.Ir;
    PC.RStats = A.RStats;
  }

  bool verifyInvariants(const PassContext &PC, const IrSnapshot &Before,
                        std::string *Err) const override {
    const Bst &A = *PC.Ir;
    if (A.inputType() != Before.InputTy ||
        A.outputType() != Before.OutputTy ||
        A.registerType() != Before.RegTy) {
      if (Err)
        *Err = "rbbe changed a boundary or register type";
      return false;
    }
    if (A.countBranches() > Before.Branches) {
      if (Err)
        *Err = "rbbe increased the branch count (" +
               std::to_string(Before.Branches) + " -> " +
               std::to_string(A.countBranches()) + ")";
      return false;
    }
    if (A.numStates() > Before.States) {
      if (Err)
        *Err = "rbbe increased the state count";
      return false;
    }
    return true;
  }
};

//===----------------------------------------------------------------------===//
// minimize
//===----------------------------------------------------------------------===//

/// Control-state minimization (bst/Minimize.h).
class MinimizePass : public Pass {
public:
  std::string_view name() const override { return "minimize"; }

  uint64_t optionsHash(const PipelineOptions &) const override {
    return FnvInit; // no options
  }

  bool run(PassContext &PC, const PipelineOptions &, std::string *Err,
           std::string *) const override {
    if (!PC.Ir) {
      if (Err)
        *Err = "minimize: no IR (run fuse first)";
      return false;
    }
    trace::Span MinSp("minimize");
    PC.Ir = std::make_shared<Bst>(minimizeStates(*PC.Ir, &PC.MStats));
    return true;
  }

  void save(const PassContext &PC, PassArtifacts &A) const override {
    A.Ir = PC.Ir;
    A.MStats = PC.MStats;
  }
  void load(const PassArtifacts &A, PassContext &PC) const override {
    PC.Ir = A.Ir;
    PC.MStats = A.MStats;
  }

  bool verifyInvariants(const PassContext &PC, const IrSnapshot &Before,
                        std::string *Err) const override {
    const Bst &A = *PC.Ir;
    if (A.inputType() != Before.InputTy ||
        A.outputType() != Before.OutputTy ||
        A.registerType() != Before.RegTy) {
      if (Err)
        *Err = "minimize changed a boundary or register type";
      return false;
    }
    // The monotonicity contract, checked against both the recorded stats
    // and the IR itself so a stats/IR disagreement is also caught.
    if (A.numStates() > Before.States ||
        PC.MStats.StatesAfter > PC.MStats.StatesBefore ||
        PC.MStats.StatesBefore != Before.States) {
      if (Err)
        *Err = "minimize state count not monotone (" +
               std::to_string(Before.States) + " -> " +
               std::to_string(A.numStates()) + ")";
      return false;
    }
    return true;
  }
};

//===----------------------------------------------------------------------===//
// vm_compile
//===----------------------------------------------------------------------===//

/// Bytecode compilation of the current IR (vm/Vm.h).
class VmCompilePass : public Pass {
public:
  std::string_view name() const override { return "vm_compile"; }
  bool transformsIr() const override { return false; }

  uint64_t optionsHash(const PipelineOptions &O) const override {
    // AllowNonScalar only changes *failure* behavior, but a cached
    // "no VM" result must not serve a strict caller; key on it.
    return fnv1a(FnvInit, O.AllowNonScalar);
  }

  bool run(PassContext &PC, const PipelineOptions &O, std::string *Err,
           std::string *Note) const override {
    if (!PC.Ir) {
      if (Err)
        *Err = "vm_compile: no IR (run fuse first)";
      return false;
    }
    trace::Span VmSp("vm_compile");
    std::optional<CompiledTransducer> Vm =
        CompiledTransducer::compile(*PC.Ir);
    if (!Vm) {
      if (O.AllowNonScalar) {
        PC.Vm.reset();
        if (Note)
          *Note = "skipped: non-scalar element types";
        return true;
      }
      if (Err)
        *Err = "pipeline has non-scalar element types";
      return false;
    }
    PC.Vm = std::make_shared<const CompiledTransducer>(std::move(*Vm));
    return true;
  }

  void save(const PassContext &PC, PassArtifacts &A) const override {
    A.Vm = PC.Vm;
  }
  void load(const PassArtifacts &A, PassContext &PC) const override {
    PC.Vm = A.Vm;
  }

  bool verifyInvariants(const PassContext &PC, const IrSnapshot &,
                        std::string *Err) const override {
    if (PC.Vm && PC.Ir && PC.Vm->numStates() != PC.Ir->numStates()) {
      if (Err)
        *Err = "VM state count differs from the IR's";
      return false;
    }
    return true;
  }
};

//===----------------------------------------------------------------------===//
// fastpath_plan
//===----------------------------------------------------------------------===//

/// Byte-class dispatch tables + run kernels over the VM (vm/FastPath.h).
class FastPathPlanPass : public Pass {
public:
  std::string_view name() const override { return "fastpath_plan"; }
  bool transformsIr() const override { return false; }

  uint64_t optionsHash(const PipelineOptions &O) const override {
    uint64_t H = FnvInit;
    H = fnv1a(H, O.FastPath.RunAccel);
    H = fnv1a(H, O.FastPath.WideTables);
    H = fnv1a(H, O.FastPath.SpecAccel);
    return H;
  }

  bool run(PassContext &PC, const PipelineOptions &O, std::string *Err,
           std::string *Note) const override {
    if (!PC.Ir) {
      if (Err)
        *Err = "fastpath_plan: no IR (run fuse first)";
      return false;
    }
    if (!PC.Vm) {
      if (Note)
        *Note = "skipped: no VM artifact";
      return true;
    }
    trace::Span FpSp("fastpath_plan");
    PC.Fast = std::make_shared<const FastPathPlan>(
        FastPathPlan::build(*PC.Ir, *PC.Vm, O.FastPath));
    const FastPathPlan::Stats &FS = PC.Fast->stats();
    FpSp.note("table_states", (uint64_t)FS.TableStates);
    FpSp.note("accel_states", (uint64_t)FS.AccelStates);
    FpSp.note("nibble_kernels", (uint64_t)FS.NibbleKernels);
    FpSp.note("wide_states", (uint64_t)FS.WideStates);
    FpSp.note("spec_pairs", (uint64_t)FS.SpecPairs);
    FpSp.note("simd_level", (uint64_t)simd::activeLevel());
    return true;
  }

  void save(const PassContext &PC, PassArtifacts &A) const override {
    A.Fast = PC.Fast;
  }
  void load(const PassArtifacts &A, PassContext &PC) const override {
    PC.Fast = A.Fast;
  }
};

//===----------------------------------------------------------------------===//
// parallel_plan
//===----------------------------------------------------------------------===//

/// Data-parallel chunking plan over the fast path (parallel/).
class ParallelPlanPass : public Pass {
public:
  std::string_view name() const override { return "parallel_plan"; }
  bool transformsIr() const override { return false; }

  uint64_t optionsHash(const PipelineOptions &O) const override {
    // The plan is derived from the fast-path plan, so its knobs re-key
    // this pass too.
    uint64_t H = FnvInit;
    H = fnv1a(H, O.FastPath.RunAccel);
    H = fnv1a(H, O.FastPath.WideTables);
    H = fnv1a(H, O.FastPath.SpecAccel);
    return H;
  }

  bool run(PassContext &PC, const PipelineOptions &, std::string *,
           std::string *Note) const override {
    if (!PC.Vm || !PC.Fast) {
      if (Note)
        *Note = "skipped: no VM/fast-path artifact";
      return true;
    }
    trace::Span PpSp("parallel_plan");
    PC.Par = std::make_shared<const parallel::ParallelPlan>(
        parallel::ParallelPlan::build(*PC.Vm, *PC.Fast));
    PpSp.note("eligible", (uint64_t)(PC.Par->eligible() ? 1 : 0));
    PpSp.note("table_states", (uint64_t)PC.Par->numTableStates());
    return true;
  }

  void save(const PassContext &PC, PassArtifacts &A) const override {
    A.Par = PC.Par;
  }
  void load(const PassArtifacts &A, PassContext &PC) const override {
    PC.Par = A.Par;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// PassRegistry
//===----------------------------------------------------------------------===//

struct PassRegistry::Impl {
  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Pass>> Passes; // registration order
  std::unordered_map<std::string_view, const Pass *> ByName;
};

PassRegistry::PassRegistry() : I(new Impl) {
  // Builtins register here, not via static initializers: a static-library
  // TU with only registration side effects would be dead-stripped.
  for (auto *P : {static_cast<Pass *>(new FusePass),
                  static_cast<Pass *>(new RbbePass),
                  static_cast<Pass *>(new MinimizePass),
                  static_cast<Pass *>(new VmCompilePass),
                  static_cast<Pass *>(new FastPathPlanPass),
                  static_cast<Pass *>(new ParallelPlanPass)})
    add(std::unique_ptr<Pass>(P));
}

PassRegistry &PassRegistry::instance() {
  static PassRegistry R;
  return R;
}

bool PassRegistry::add(std::unique_ptr<Pass> P) {
  std::lock_guard<std::mutex> L(I->Mu);
  if (I->ByName.count(P->name()))
    return false;
  const Pass *Raw = P.get();
  I->Passes.push_back(std::move(P));
  I->ByName.emplace(Raw->name(), Raw);
  return true;
}

const Pass *PassRegistry::lookup(std::string_view Name) const {
  std::lock_guard<std::mutex> L(I->Mu);
  auto It = I->ByName.find(Name);
  return It == I->ByName.end() ? nullptr : It->second;
}

std::vector<std::string> PassRegistry::names() const {
  std::lock_guard<std::mutex> L(I->Mu);
  std::vector<std::string> Out;
  for (const auto &P : I->Passes)
    Out.emplace_back(P->name());
  return Out;
}
