//===- pipeline/Pass.h - Registered compile passes over the BST -*- C++ -*-===//
///
/// \file
/// The pass-manager IR architecture for the compile pipeline (DESIGN.md
/// "Pass pipeline"): fuse → rbbe → minimize → vm_compile → fastpath_plan
/// → parallel_plan is no longer a hard-wired call sequence inside
/// PipelineCache (with sibling copies in tests/common/Oracle and
/// bench/common/BenchCommon) but a list of *named passes* over one
/// PassContext.  Each pass
///
///   * transforms the BST IR or derives a side artifact from it,
///   * fingerprints its own options (optionsHash) and its input IR
///     (inputHash — the codegen classifier hash of the IR *entering* the
///     pass), so per-pass artifact caching composes: changing only a
///     downstream option (RBBE budget, fastpath knobs) re-keys that pass
///     alone and reuses every upstream cached result,
///   * opens the same trace::Span names the monolithic driver used, so
///     span trees stay stable, and
///   * declares invariants that EFC_VERIFY_IR=1 checks between passes
///     (well-formedness, rule-tree hash determinism, type preservation,
///     state/branch-count monotonicity).
///
/// Passes are stateless singletons in a process-wide PassRegistry,
/// addressed by name (`efcc --passes`, PassManager::defaultPasses).
///
//===----------------------------------------------------------------------===//

#ifndef EFC_PIPELINE_PASS_H
#define EFC_PIPELINE_PASS_H

#include "bst/Bst.h"
#include "bst/Minimize.h"
#include "fusion/Fusion.h"
#include "parallel/ChunkPlanner.h"
#include "rbbe/Rbbe.h"
#include "vm/FastPath.h"
#include "vm/Vm.h"

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace efc::pipeline {

/// Everything that can change a pass's output.  One options object serves
/// the whole pipeline; each pass hashes only the fields it reads.
struct PipelineOptions {
  FusionOptions Fusion;
  RbbeOptions Rbbe;
  FastPathOptions FastPath;

  /// vm_compile on a non-scalar pipeline: error (serving path) or leave
  /// the VM artifact empty and let plan passes skip (oracle over random
  /// BSTs).
  bool AllowNonScalar = false;
  /// Check IR invariants between passes.  Defaults to EFC_VERIFY_IR=1.
  bool VerifyIr;
  /// Consult/populate the process-wide per-pass artifact cache.  Only
  /// effective when the PassContext carries an IrChain (raw-mode callers
  /// that own their TermContext on the stack cannot share artifacts).
  bool UseCache = true;

  PipelineOptions(); ///< reads EFC_VERIFY_IR (support/EnvParse)
};

/// Shared ownership chain for cached artifacts: the TermContext every
/// cached BST's terms live in, plus the lock serializing term creation
/// (hash-consing) in it.  Reading terms is lock-free; passes create
/// terms, so the PassManager holds Mu for the duration of each pass run
/// on the chain.  Adopting a cached artifact makes its chain the current
/// one; the manager holds at most one chain lock at a time.
struct IrChain {
  std::shared_ptr<TermContext> Ctx;
  std::mutex Mu;
  explicit IrChain(std::shared_ptr<TermContext> C) : Ctx(std::move(C)) {}
};

/// One pass execution, for `efcc --explain-passes` and diagnostics.
struct PassRun {
  std::string PassName;
  uint64_t InHash = 0;  ///< IR hash entering the pass (cache-key input)
  uint64_t OutHash = 0; ///< IR hash after the pass (0 for plan passes)
  double Seconds = 0;
  bool CacheHit = false;
  std::string Note;
};

/// The IR and derived artifacts flowing through the pipeline.  Artifacts
/// are shared_ptr so cache entries and CompiledPipelines can alias them.
class PassContext {
public:
  /// Null in raw mode: the caller owns the TermContext (e.g. on the
  /// stack) and artifacts must not outlive it, so caching is off.
  std::shared_ptr<IrChain> Chain;
  /// Input stages for `fuse` (non-owning; alive for the duration of
  /// run()).  Untouched by every other pass.
  std::vector<const Bst *> Stages;

  std::shared_ptr<const Bst> Ir;
  /// classifierHash(*Ir): stable across TermContexts and processes, so
  /// it keys the per-pass artifact cache and the golden tests.
  uint64_t IrHash = 0;

  std::shared_ptr<const CompiledTransducer> Vm;
  std::shared_ptr<const FastPathPlan> Fast;
  std::shared_ptr<const parallel::ParallelPlan> Par;

  FusionStats FStats;
  RbbeStats RStats;
  MinimizeStats MStats;

  std::vector<PassRun> Runs;
};

/// Cache value: the artifacts one pass published, plus the chain keeping
/// their terms alive.
struct PassArtifacts {
  std::shared_ptr<IrChain> Chain;
  std::shared_ptr<const Bst> Ir;
  uint64_t IrHash = 0;
  std::shared_ptr<const CompiledTransducer> Vm;
  std::shared_ptr<const FastPathPlan> Fast;
  std::shared_ptr<const parallel::ParallelPlan> Par;
  FusionStats FStats;
  RbbeStats RStats;
  MinimizeStats MStats;
};

/// Snapshot of the IR entering a pass, for invariant checks.
struct IrSnapshot {
  unsigned States = 0;
  unsigned Branches = 0;
  const Type *InputTy = nullptr;
  const Type *OutputTy = nullptr;
  const Type *RegTy = nullptr;
};

/// A named, stateless compile pass.
class Pass {
public:
  virtual ~Pass() = default;

  virtual std::string_view name() const = 0;
  /// True when run() replaces PC.Ir (fuse/rbbe/minimize); plan passes
  /// (vm_compile, fastpath_plan, parallel_plan) derive side artifacts.
  virtual bool transformsIr() const { return true; }
  virtual bool cacheable() const { return true; }

  /// FNV fingerprint of every PipelineOptions field this pass reads.
  virtual uint64_t optionsHash(const PipelineOptions &O) const = 0;
  /// Cache-key input hash: the IR hash entering the pass.  `fuse`
  /// overrides this with the combined per-stage classifier hash.
  virtual uint64_t inputHash(const PassContext &PC) const {
    return PC.IrHash;
  }

  /// Runs the pass.  False + \p Err on failure.  A pass may no-op (e.g.
  /// fastpath_plan without a VM under AllowNonScalar); it then records
  /// why via the returned note.
  virtual bool run(PassContext &PC, const PipelineOptions &O,
                   std::string *Err, std::string *Note) const = 0;

  /// Copies this pass's outputs into / out of a cache value.  The
  /// manager fills PassArtifacts::Chain.
  virtual void save(const PassContext &PC, PassArtifacts &A) const = 0;
  virtual void load(const PassArtifacts &A, PassContext &PC) const = 0;

  /// Pass-specific invariants under EFC_VERIFY_IR=1, checked after
  /// run(); the generic well-formedness/determinism checks run in the
  /// manager.  \p Before snapshots the IR entering the pass.
  virtual bool verifyInvariants(const PassContext &PC,
                                const IrSnapshot &Before,
                                std::string *Err) const {
    (void)PC;
    (void)Before;
    (void)Err;
    return true;
  }
};

/// Process-wide pass registry.  Builtin passes register on first use;
/// EFC_REGISTER_PASS adds custom ones (test mutations, experimental
/// normalizations) from any translation unit.
class PassRegistry {
public:
  static PassRegistry &instance();

  /// False (and drops \p P) when the name is already taken.
  bool add(std::unique_ptr<Pass> P);
  /// nullptr when unknown.
  const Pass *lookup(std::string_view Name) const;
  /// Registered names, registration order (builtins first).
  std::vector<std::string> names() const;

private:
  PassRegistry();
  struct Impl;
  Impl *I;
};

/// Registers \p PassClass (default-constructed) at namespace scope:
///   EFC_REGISTER_PASS(MyPass);
#define EFC_REGISTER_PASS(PassClass)                                         \
  static const bool EfcPassReg_##PassClass [[maybe_unused]] =                \
      ::efc::pipeline::PassRegistry::instance().add(                         \
          std::make_unique<PassClass>())

} // namespace efc::pipeline

#endif // EFC_PIPELINE_PASS_H
