//===- bst/Interp.cpp -----------------------------------------------------===//

#include "bst/Interp.h"

#include "term/Eval.h"

using namespace efc;

std::optional<StepResult> efc::stepRule(const Bst &A, const Rule *R,
                                        const Value *Input,
                                        const Value &Reg) {
  Env E;
  if (Input)
    E.bind(A.inputVar(), *Input);
  E.bind(A.regVar(), Reg);

  const Rule *Cur = R;
  while (Cur->isIte())
    Cur = evalTerm(Cur->cond(), E).boolValue() ? Cur->thenRule().get()
                                               : Cur->elseRule().get();
  if (Cur->isUndef())
    return std::nullopt;

  StepResult Res;
  Res.Outputs.reserve(Cur->outputs().size());
  for (TermRef O : Cur->outputs())
    Res.Outputs.push_back(evalTerm(O, E));
  Res.NextState = Cur->target();
  Res.NextReg = evalTerm(Cur->update(), E);
  return Res;
}

Trace efc::traceBst(const Bst &A, std::span<const Value> Input) {
  Trace T;
  unsigned State = A.initialState();
  Value Reg = A.initialRegister();
  T.States.push_back(State);
  T.Registers.push_back(Reg);

  for (const Value &In : Input) {
    std::optional<StepResult> R = stepRule(A, A.delta(State).get(), &In, Reg);
    if (!R)
      return T; // rejected mid-stream
    for (Value &O : R->Outputs)
      T.Outputs.push_back(std::move(O));
    State = R->NextState;
    Reg = std::move(R->NextReg);
    T.States.push_back(State);
    T.Registers.push_back(Reg);
  }

  std::optional<StepResult> F =
      stepRule(A, A.finalizer(State).get(), nullptr, Reg);
  if (!F)
    return T; // rejected at end of input
  for (Value &O : F->Outputs)
    T.Outputs.push_back(std::move(O));
  T.Accepted = true;
  return T;
}

std::optional<std::vector<Value>> efc::runBst(const Bst &A,
                                              std::span<const Value> Input) {
  Trace T = traceBst(A, Input);
  if (!T.Accepted)
    return std::nullopt;
  return std::move(T.Outputs);
}
