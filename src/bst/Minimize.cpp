//===- bst/Minimize.cpp ---------------------------------------------------===//

#include "bst/Minimize.h"

#include "bst/Transform.h"

#include <functional>
#include <map>
#include <vector>

using namespace efc;

namespace {

/// Structural rule equality where Base targets compare through the
/// current partition (class ids).
bool rulesEqualModulo(const Rule *A, const Rule *B,
                      const std::vector<unsigned> &ClassOf) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Rule::Kind::Undef:
    return true;
  case Rule::Kind::Base:
    return ClassOf[A->target()] == ClassOf[B->target()] &&
           A->update() == B->update() && A->outputs() == B->outputs();
  case Rule::Kind::Ite:
    return A->cond() == B->cond() &&
           rulesEqualModulo(A->thenRule().get(), B->thenRule().get(),
                            ClassOf) &&
           rulesEqualModulo(A->elseRule().get(), B->elseRule().get(),
                            ClassOf);
  }
  return false;
}

} // namespace

Bst efc::minimizeStates(const Bst &A, MinimizeStats *Stats) {
  unsigned N = A.numStates();
  MinimizeStats Local;
  MinimizeStats &St = Stats ? *Stats : Local;
  St.StatesBefore = N;

  // Initial partition: group by the finalizer rule.  Finalizer Base
  // targets are semantically ignored, so compare them through the
  // all-equal partition.
  std::vector<unsigned> ClassOf(N, 0);
  {
    const std::vector<unsigned> AllSame(N, 0);
    std::vector<const Rule *> Reps;
    for (unsigned Q = 0; Q < N; ++Q) {
      unsigned C = UINT_MAX;
      for (unsigned I = 0; I < Reps.size(); ++I)
        if (rulesEqualModulo(Reps[I], A.finalizer(Q).get(), AllSame)) {
          C = I;
          break;
        }
      if (C == UINT_MAX) {
        C = unsigned(Reps.size());
        Reps.push_back(A.finalizer(Q).get());
      }
      ClassOf[Q] = C;
    }
  }

  // Refine until stable: states stay together only if their delta rules
  // are equal modulo the partition.
  for (;;) {
    ++St.Rounds;
    // New class = (old class, representative-equivalence within class).
    std::vector<unsigned> NewClass(N, UINT_MAX);
    unsigned NextClass = 0;
    std::map<unsigned, std::vector<unsigned>> Buckets; // class -> reps
    for (unsigned Q = 0; Q < N; ++Q) {
      auto &Reps = Buckets[ClassOf[Q]];
      unsigned Found = UINT_MAX;
      for (unsigned Rep : Reps)
        if (rulesEqualModulo(A.delta(Rep).get(), A.delta(Q).get(),
                             ClassOf)) {
          Found = NewClass[Rep];
          break;
        }
      if (Found == UINT_MAX) {
        Found = NextClass++;
        Reps.push_back(Q);
      }
      NewClass[Q] = Found;
    }
    bool Changed = NewClass != ClassOf;
    ClassOf = std::move(NewClass);
    if (!Changed)
      break;
  }

  unsigned NumClasses = 0;
  for (unsigned C : ClassOf)
    NumClasses = std::max(NumClasses, C + 1);
  St.StatesAfter = NumClasses;
  if (NumClasses == N)
    return cloneBst(A);

  // Build the quotient: one representative per class, targets remapped.
  std::vector<unsigned> RepOf(NumClasses, UINT_MAX);
  for (unsigned Q = 0; Q < N; ++Q)
    if (RepOf[ClassOf[Q]] == UINT_MAX)
      RepOf[ClassOf[Q]] = Q;

  Bst B(A.context(), A.inputType(), A.outputType(), A.registerType(),
        NumClasses, ClassOf[A.initialState()], A.initialRegister());

  // Remap rule targets through ClassOf.
  std::function<RulePtr(const RulePtr &)> Remap =
      [&](const RulePtr &R) -> RulePtr {
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return R;
    case Rule::Kind::Base: {
      unsigned T = ClassOf[R->target()];
      if (T == R->target())
        return R;
      return Rule::base(R->outputs(), T, R->update());
    }
    case Rule::Kind::Ite: {
      RulePtr T = Remap(R->thenRule());
      RulePtr E = Remap(R->elseRule());
      if (T == R->thenRule() && E == R->elseRule())
        return R;
      return Rule::ite(R->cond(), std::move(T), std::move(E));
    }
    }
    return R;
  };

  for (unsigned C = 0; C < NumClasses; ++C) {
    unsigned Q = RepOf[C];
    B.setDelta(C, Remap(A.delta(Q)));
    B.setFinalizer(C, Remap(A.finalizer(Q)));
    B.setStateName(C, A.stateName(Q));
  }
  return B;
}
