//===- bst/Minimize.h - Control-state minimization --------------*- C++ -*-===//
///
/// \file
/// The optimization the paper's conclusion defers to future work:
/// "minimization of symbolic finite automata to simplify control flow".
/// Implemented as Moore-style partition refinement on control states: two
/// states are merged when their finalizers are structurally equal and
/// their transition rules are structurally equal *up to the current state
/// partition* on Base targets.  Structural equality is conservative (no
/// solver), so the result is always sound; fusion products often contain
/// exact duplicates that this pass removes (e.g. ToInt's p0/p1 pattern
/// replicated across producer states).
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BST_MINIMIZE_H
#define EFC_BST_MINIMIZE_H

#include "bst/Bst.h"

namespace efc {

struct MinimizeStats {
  unsigned StatesBefore = 0;
  unsigned StatesAfter = 0;
  unsigned Rounds = 0;
};

/// Returns an equivalent transducer with structurally-duplicate control
/// states merged.
Bst minimizeStates(const Bst &A, MinimizeStats *Stats = nullptr);

} // namespace efc

#endif // EFC_BST_MINIMIZE_H
