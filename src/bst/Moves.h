//===- bst/Moves.h - Flattened move representation --------------*- C++ -*-===//
///
/// \file
/// The `Paths` / `Moves` flattening of paper §4: each Base leaf of a rule
/// becomes a move carrying the conjunction of the guards along its path.
/// RBBE reasons over moves; leaves are identified by their Rule node
/// pointer so individual branches can be surgically eliminated.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BST_MOVES_H
#define EFC_BST_MOVES_H

#include "bst/Bst.h"

#include <vector>

namespace efc {

/// One flattened transition: from state Src, under Guard (a term over
/// x and r), update the register with Update and move to Dst.
struct Move {
  unsigned Src;
  TermRef Guard;
  TermRef Update;
  unsigned Dst;
  const Rule *Leaf; ///< identity of the Base leaf inside delta(Src)
};

/// One flattened finalizer branch.
struct FinalMove {
  unsigned Src;
  TermRef Guard; ///< over r only
  const Rule *Leaf;
};

/// Flattens all transition rules of \p A (outputs are dropped: they do not
/// affect reachability).
std::vector<Move> movesOf(const Bst &A);

/// Flattens the transition rule of one state.
void appendMovesOf(const Bst &A, unsigned State, std::vector<Move> &Out);

/// Flattens all finalizers of \p A.
std::vector<FinalMove> finalMovesOf(const Bst &A);

/// Rebuilds \p R with the Base leaf identified by \p Leaf replaced by
/// Undef.  Returns the (simplified) new rule.
RulePtr eliminateLeaf(const RulePtr &R, const Rule *Leaf);

} // namespace efc

#endif // EFC_BST_MOVES_H
