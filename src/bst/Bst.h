//===- bst/Bst.h - Branching symbolic transducers ---------------*- C++ -*-===//
///
/// \file
/// The branching symbolic transducer (BST) of paper §2: a tuple
/// (ι, o, ρ, Q, q0, r0, δ, $) where δ maps each control state to a
/// transition rule over the input variable `x : ι` and register variable
/// `r : ρ`, and $ maps each control state to a finalizer rule over `r : ρ`
/// alone.  A BST denotes a partial function [ι] → [o].
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BST_BST_H
#define EFC_BST_BST_H

#include "bst/Rule.h"
#include "term/TermContext.h"
#include "term/Value.h"

#include <string>
#include <vector>

namespace efc {

/// A deterministic symbolic transducer with branching rules.
class Bst {
public:
  Bst(TermContext &Ctx, const Type *InputTy, const Type *OutputTy,
      const Type *RegTy, unsigned NumStates, unsigned InitState,
      Value InitReg);

  TermContext &context() const { return *Ctx; }
  const Type *inputType() const { return InputTy; }
  const Type *outputType() const { return OutputTy; }
  const Type *registerType() const { return RegTy; }
  unsigned numStates() const { return unsigned(Delta.size()); }
  unsigned initialState() const { return InitState; }
  const Value &initialRegister() const { return InitReg; }
  /// The initial register value as a constant term.
  TermRef initialRegisterTerm() const;

  /// The canonical input variable `x : ι` used in transition rules.
  TermRef inputVar() const;
  /// The canonical register variable `r : ρ` used in rules.
  TermRef regVar() const;

  const RulePtr &delta(unsigned State) const {
    assert(State < Delta.size());
    return Delta[State];
  }
  const RulePtr &finalizer(unsigned State) const {
    assert(State < Fin.size());
    return Fin[State];
  }
  void setDelta(unsigned State, RulePtr R) {
    assert(State < Delta.size());
    Delta[State] = std::move(R);
  }
  void setFinalizer(unsigned State, RulePtr R) {
    assert(State < Fin.size());
    Fin[State] = std::move(R);
  }

  /// True when the state's finalizer accepts at least syntactically (is not
  /// plain Undef).
  bool isFinal(unsigned State) const { return !Fin[State]->isUndef(); }

  const std::string &stateName(unsigned State) const {
    return StateNames[State];
  }
  void setStateName(unsigned State, std::string Name) {
    StateNames[State] = std::move(Name);
  }

  /// Appends a fresh control state (with Undef rules) and returns its id.
  unsigned addState(std::string Name = "");

  /// Total Base leaves over all transition rules and finalizers
  /// (the "branches" counted in Figure 11).
  unsigned countBranches() const;

  /// Checks structural and type well-formedness; on failure returns false
  /// and, when \p Err is non-null, stores a diagnostic.
  bool wellFormed(std::string *Err = nullptr) const;

private:
  TermContext *Ctx;
  const Type *InputTy, *OutputTy, *RegTy;
  unsigned InitState;
  Value InitReg;
  std::vector<RulePtr> Delta;
  std::vector<RulePtr> Fin;
  std::vector<std::string> StateNames;

  bool checkRule(const Rule *R, bool IsFinalizer, unsigned State,
                 std::string *Err) const;
  bool checkTermVars(TermRef T, bool IsFinalizer, std::string *Err) const;
};

} // namespace efc

#endif // EFC_BST_BST_H
