//===- bst/BstPrint.cpp ---------------------------------------------------===//

#include "bst/BstPrint.h"

#include "bst/Moves.h"
#include "term/Print.h"

using namespace efc;

std::string efc::ruleToString(const TermContext &Ctx, const Rule *R,
                              unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (R->kind()) {
  case Rule::Kind::Undef:
    return Pad + "undef\n";
  case Rule::Kind::Base: {
    std::string S = Pad + "emit [";
    for (size_t I = 0; I < R->outputs().size(); ++I) {
      if (I)
        S += ", ";
      S += termToString(Ctx, R->outputs()[I]);
    }
    S += "] -> q" + std::to_string(R->target()) +
         "; r := " + termToString(Ctx, R->update()) + "\n";
    return S;
  }
  case Rule::Kind::Ite:
    return Pad + "if " + termToString(Ctx, R->cond()) + "\n" +
           ruleToString(Ctx, R->thenRule().get(), Indent + 1) + Pad +
           "else\n" + ruleToString(Ctx, R->elseRule().get(), Indent + 1);
  }
  return "";
}

std::string efc::bstToString(const Bst &A) {
  const TermContext &Ctx = A.context();
  std::string S;
  S += "BST: " + A.inputType()->str() + " -> " + A.outputType()->str() +
       ", register " + A.registerType()->str() + ", " +
       std::to_string(A.numStates()) + " states, init " +
       A.stateName(A.initialState()) + " r0=" + A.initialRegister().str() +
       "\n";
  for (unsigned Q = 0; Q < A.numStates(); ++Q) {
    S += "state " + A.stateName(Q) + ":\n";
    S += "  delta:\n" + ruleToString(Ctx, A.delta(Q).get(), 2);
    S += "  finalizer:\n" + ruleToString(Ctx, A.finalizer(Q).get(), 2);
  }
  return S;
}

std::string efc::bstToDot(const Bst &A, const std::string &Name) {
  const TermContext &Ctx = A.context();
  std::string S = "digraph " + Name + " {\n  rankdir=LR;\n";
  for (unsigned Q = 0; Q < A.numStates(); ++Q) {
    S += "  q" + std::to_string(Q) + " [label=\"" + A.stateName(Q) +
         "\" shape=" + (A.isFinal(Q) ? "doublecircle" : "circle") +
         "];\n";
  }
  S += "  start [shape=point];\n  start -> q" +
       std::to_string(A.initialState()) + ";\n";
  for (const Move &M : movesOf(A)) {
    std::string Guard = termToString(Ctx, M.Guard);
    // Escape quotes for dot.
    std::string Esc;
    for (char C : Guard) {
      if (C == '"')
        Esc += "\\\"";
      else
        Esc.push_back(C);
    }
    S += "  q" + std::to_string(M.Src) + " -> q" +
         std::to_string(M.Dst) + " [label=\"" + Esc + "\"];\n";
  }
  S += "}\n";
  return S;
}
