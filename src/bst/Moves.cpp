//===- bst/Moves.cpp ------------------------------------------------------===//

#include "bst/Moves.h"

using namespace efc;

namespace {

void flattenDelta(TermContext &Ctx, unsigned Src, const Rule *R,
                  TermRef PathCond, std::vector<Move> &Out) {
  switch (R->kind()) {
  case Rule::Kind::Undef:
    return;
  case Rule::Kind::Base:
    Out.push_back(Move{Src, PathCond, R->update(), R->target(), R});
    return;
  case Rule::Kind::Ite:
    flattenDelta(Ctx, Src, R->thenRule().get(),
                 Ctx.mkAnd(PathCond, R->cond()), Out);
    flattenDelta(Ctx, Src, R->elseRule().get(),
                 Ctx.mkAnd(PathCond, Ctx.mkNot(R->cond())), Out);
    return;
  }
}

void flattenFin(TermContext &Ctx, unsigned Src, const Rule *R,
                TermRef PathCond, std::vector<FinalMove> &Out) {
  switch (R->kind()) {
  case Rule::Kind::Undef:
    return;
  case Rule::Kind::Base:
    Out.push_back(FinalMove{Src, PathCond, R});
    return;
  case Rule::Kind::Ite:
    flattenFin(Ctx, Src, R->thenRule().get(), Ctx.mkAnd(PathCond, R->cond()),
               Out);
    flattenFin(Ctx, Src, R->elseRule().get(),
               Ctx.mkAnd(PathCond, Ctx.mkNot(R->cond())), Out);
    return;
  }
}

} // namespace

void efc::appendMovesOf(const Bst &A, unsigned State, std::vector<Move> &Out) {
  flattenDelta(A.context(), State, A.delta(State).get(),
               A.context().trueConst(), Out);
}

std::vector<Move> efc::movesOf(const Bst &A) {
  std::vector<Move> Out;
  for (unsigned Q = 0; Q < A.numStates(); ++Q)
    appendMovesOf(A, Q, Out);
  return Out;
}

std::vector<FinalMove> efc::finalMovesOf(const Bst &A) {
  std::vector<FinalMove> Out;
  for (unsigned Q = 0; Q < A.numStates(); ++Q)
    flattenFin(A.context(), Q, A.finalizer(Q).get(), A.context().trueConst(),
               Out);
  return Out;
}

RulePtr efc::eliminateLeaf(const RulePtr &R, const Rule *Leaf) {
  if (R.get() == Leaf)
    return Rule::undef();
  if (!R->isIte())
    return R;
  RulePtr NewThen = eliminateLeaf(R->thenRule(), Leaf);
  RulePtr NewElse = eliminateLeaf(R->elseRule(), Leaf);
  if (NewThen == R->thenRule() && NewElse == R->elseRule())
    return R;
  return Rule::ite(R->cond(), std::move(NewThen), std::move(NewElse));
}
