//===- bst/Transform.cpp --------------------------------------------------===//

#include "bst/Transform.h"

#include "bst/Moves.h"
#include "term/Rewrite.h"

#include <functional>

#include <deque>

using namespace efc;

std::vector<bool> efc::forwardReachableStates(const Bst &A) {
  std::vector<std::vector<unsigned>> Succ(A.numStates());
  for (const Move &M : movesOf(A))
    Succ[M.Src].push_back(M.Dst);

  std::vector<bool> Seen(A.numStates(), false);
  std::deque<unsigned> Work{A.initialState()};
  Seen[A.initialState()] = true;
  while (!Work.empty()) {
    unsigned Q = Work.front();
    Work.pop_front();
    for (unsigned S : Succ[Q])
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  return Seen;
}

std::vector<bool> efc::coReachableStates(const Bst &A) {
  std::vector<std::vector<unsigned>> Pred(A.numStates());
  for (const Move &M : movesOf(A))
    Pred[M.Dst].push_back(M.Src);

  std::vector<bool> Seen(A.numStates(), false);
  std::deque<unsigned> Work;
  for (unsigned Q = 0; Q < A.numStates(); ++Q)
    if (A.isFinal(Q)) {
      Seen[Q] = true;
      Work.push_back(Q);
    }
  while (!Work.empty()) {
    unsigned Q = Work.front();
    Work.pop_front();
    for (unsigned P : Pred[Q])
      if (!Seen[P]) {
        Seen[P] = true;
        Work.push_back(P);
      }
  }
  return Seen;
}

namespace {

/// Rebuilds a rule with every Base leaf remapped (or dropped) through
/// \p MapTarget: a vector where value == UINT_MAX means "eliminate".
/// Rebuilds a rule with every Base leaf remapped through \p MapTarget
/// (value == UINT_MAX means the target state was removed).  For
/// transition rules a removed target eliminates the leaf; for finalizer
/// rules the target is semantically ignored, so the leaf survives with
/// \p FinalizerFallback as its target instead.
RulePtr remapRule(const RulePtr &R, const std::vector<unsigned> &MapTarget,
                  unsigned FinalizerFallback = UINT_MAX) {
  switch (R->kind()) {
  case Rule::Kind::Undef:
    return R;
  case Rule::Kind::Base: {
    unsigned NewT = MapTarget[R->target()];
    if (NewT == UINT_MAX) {
      if (FinalizerFallback == UINT_MAX)
        return Rule::undef();
      NewT = FinalizerFallback;
    }
    if (NewT == R->target())
      return R;
    return Rule::base(R->outputs(), NewT, R->update());
  }
  case Rule::Kind::Ite: {
    RulePtr T = remapRule(R->thenRule(), MapTarget, FinalizerFallback);
    RulePtr E = remapRule(R->elseRule(), MapTarget, FinalizerFallback);
    if (T == R->thenRule() && E == R->elseRule())
      return R;
    return Rule::ite(R->cond(), std::move(T), std::move(E));
  }
  }
  return R;
}

} // namespace

Bst efc::restrictStates(const Bst &A, const std::vector<bool> &Keep) {
  assert(Keep.size() == A.numStates());
  assert(Keep[A.initialState()] && "cannot remove the initial state");

  std::vector<unsigned> Remap(A.numStates(), UINT_MAX);
  unsigned Next = 0;
  for (unsigned Q = 0; Q < A.numStates(); ++Q)
    if (Keep[Q])
      Remap[Q] = Next++;

  Bst B(A.context(), A.inputType(), A.outputType(), A.registerType(), Next,
        Remap[A.initialState()], A.initialRegister());
  for (unsigned Q = 0; Q < A.numStates(); ++Q) {
    if (!Keep[Q])
      continue;
    B.setDelta(Remap[Q], remapRule(A.delta(Q), Remap));
    B.setFinalizer(Remap[Q], remapRule(A.finalizer(Q), Remap,
                                       /*FinalizerFallback=*/Remap[Q]));
    B.setStateName(Remap[Q], A.stateName(Q));
  }
  return B;
}

Bst efc::eliminateDeadEnds(const Bst &A) {
  std::vector<bool> Keep = coReachableStates(A);
  // Never drop the initial state: a transducer whose initial state is a
  // dead-end rejects everything, which an empty rule set also expresses.
  Keep[A.initialState()] = true;
  Bst B = restrictStates(A, Keep);
  std::vector<bool> Fwd = forwardReachableStates(B);
  Fwd[B.initialState()] = true;
  return restrictStates(B, Fwd);
}

namespace {

/// Rebuilds a rule with terms rewritten through \p Map and updates passed
/// through \p RewriteUpdate.
RulePtr mapRuleTerms(TermContext &Ctx, const RulePtr &R,
                     const std::function<TermRef(TermRef)> &MapTerm,
                     const std::function<TermRef(TermRef)> &MapUpdate) {
  switch (R->kind()) {
  case Rule::Kind::Undef:
    return R;
  case Rule::Kind::Ite: {
    TermRef C = MapTerm(R->cond());
    RulePtr T = mapRuleTerms(Ctx, R->thenRule(), MapTerm, MapUpdate);
    RulePtr E = mapRuleTerms(Ctx, R->elseRule(), MapTerm, MapUpdate);
    return Rule::ite(C, std::move(T), std::move(E));
  }
  case Rule::Kind::Base: {
    std::vector<TermRef> Outs;
    Outs.reserve(R->outputs().size());
    for (TermRef O : R->outputs())
      Outs.push_back(MapTerm(O));
    return Rule::base(std::move(Outs), R->target(), MapUpdate(R->update()));
  }
  }
  return R;
}

void flatLeafTypes(const Type *Ty, std::vector<const Type *> &Out) {
  Ty->flatten(Out);
}

void flattenRegValue(const Value &V, std::vector<Value> &Out) {
  switch (V.kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(V);
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (const Value &E : V.elems())
      flattenRegValue(E, Out);
    return;
  }
}

/// Builds a term of (possibly nested) type \p Ty from consecutive
/// elements of \p FlatLeaves, starting at \p Next.
TermRef buildNestedFromFlat(TermContext &Ctx, const Type *Ty,
                            const std::vector<TermRef> &FlatLeaves,
                            unsigned &Next) {
  switch (Ty->kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    return FlatLeaves[Next++];
  case TypeKind::Unit:
    return Ctx.unitConst();
  case TypeKind::Tuple: {
    std::vector<TermRef> Es;
    Es.reserve(Ty->arity());
    for (const Type *E : Ty->elems())
      Es.push_back(buildNestedFromFlat(Ctx, E, FlatLeaves, Next));
    return Ctx.mkTuple(std::move(Es));
  }
  }
  return Ctx.unitConst();
}

/// Collects the scalar leaves of a (possibly nested) tuple term.
void leavesOfTerm(TermContext &Ctx, TermRef T, std::vector<TermRef> &Out) {
  const Type *Ty = T->type();
  switch (Ty->kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(T);
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (unsigned I = 0; I < Ty->arity(); ++I)
      leavesOfTerm(Ctx, Ctx.mkTupleGet(T, I), Out);
    return;
  }
}

} // namespace

Bst efc::flattenRegisters(const Bst &A) {
  TermContext &Ctx = A.context();
  std::vector<const Type *> LeafTys;
  flatLeafTypes(A.registerType(), LeafTys);
  const Type *FlatTy = LeafTys.empty() ? Ctx.unitTy()
                       : LeafTys.size() == 1 ? LeafTys[0]
                                             : Ctx.tupleTy(LeafTys);
  if (FlatTy == A.registerType())
    return cloneBst(A);

  std::vector<Value> LeafVals;
  flattenRegValue(A.initialRegister(), LeafVals);
  Value FlatInit = LeafTys.empty() ? Value::unit()
                   : LeafTys.size() == 1 ? LeafVals[0]
                                         : Value::tuple(LeafVals);

  Bst B(Ctx, A.inputType(), A.outputType(), FlatTy, A.numStates(),
        A.initialState(), FlatInit);
  TermRef FlatVar = B.regVar();

  // Old register variable expressed over the flat one.
  std::vector<TermRef> FlatLeaves;
  if (FlatTy->isScalar())
    FlatLeaves.push_back(FlatVar);
  else
    for (unsigned I = 0; I < unsigned(LeafTys.size()); ++I)
      FlatLeaves.push_back(Ctx.mkTupleGet(FlatVar, I));
  unsigned Next = 0;
  TermRef OldAsFlat =
      buildNestedFromFlat(Ctx, A.registerType(), FlatLeaves, Next);
  Subst Sub;
  Sub.set(A.regVar(), OldAsFlat);

  auto MapTerm = [&](TermRef T) { return substitute(Ctx, T, Sub); };
  auto MapUpdate = [&](TermRef U) {
    TermRef Rewritten = substitute(Ctx, U, Sub);
    if (LeafTys.empty())
      return Ctx.unitConst();
    std::vector<TermRef> Leaves;
    leavesOfTerm(Ctx, Rewritten, Leaves);
    return Leaves.size() == 1 ? Leaves[0] : Ctx.mkTuple(Leaves);
  };
  for (unsigned Q = 0; Q < A.numStates(); ++Q) {
    B.setDelta(Q, mapRuleTerms(Ctx, A.delta(Q), MapTerm, MapUpdate));
    B.setFinalizer(Q,
                   mapRuleTerms(Ctx, A.finalizer(Q), MapTerm, MapUpdate));
    B.setStateName(Q, A.stateName(Q));
  }
  return B;
}

Bst efc::cloneBst(const Bst &A) {
  Bst B(A.context(), A.inputType(), A.outputType(), A.registerType(),
        A.numStates(), A.initialState(), A.initialRegister());
  for (unsigned Q = 0; Q < A.numStates(); ++Q) {
    B.setDelta(Q, A.delta(Q));
    B.setFinalizer(Q, A.finalizer(Q));
    B.setStateName(Q, A.stateName(Q));
  }
  return B;
}
