//===- bst/Transform.h - Structural BST transformations ---------*- C++ -*-===//
///
/// \file
/// Control-graph level clean-ups used by fusion and RBBE: pruning states
/// unreachable from the initial state, and the classical dead-end
/// elimination (paper §3.2: states that cannot reach a final state are
/// removed, and Base leaves targeting them become Undef).  Both operate on
/// the syntactic move graph and are therefore conservative.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BST_TRANSFORM_H
#define EFC_BST_TRANSFORM_H

#include "bst/Bst.h"

#include <vector>

namespace efc {

/// States reachable from the initial state in the syntactic move graph.
std::vector<bool> forwardReachableStates(const Bst &A);

/// States from which some final state (non-Undef finalizer) is reachable.
std::vector<bool> coReachableStates(const Bst &A);

/// Removes states not in \p Keep, renumbering the rest; Base leaves
/// targeting removed states become Undef.  The initial state must be kept.
/// Returns the new BST.
Bst restrictStates(const Bst &A, const std::vector<bool> &Keep);

/// Dead-end elimination followed by unreachable-state pruning.  Returns
/// the cleaned transducer.  Rejecting runs still reject (possibly earlier),
/// so the denoted transduction is unchanged.
Bst eliminateDeadEnds(const Bst &A);

/// Deep-copies \p A (rules are shared; states/names copied).
Bst cloneBst(const Bst &A);

/// Rewrites \p A so its register type is a flat tuple of scalar leaves
/// (fusion nests pairs; flattening simplifies exploration, the VM and
/// code generation).  No-op when already flat.
Bst flattenRegisters(const Bst &A);

} // namespace efc

#endif // EFC_BST_TRANSFORM_H
