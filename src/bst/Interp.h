//===- bst/Interp.h - Reference interpreter for BSTs ------------*- C++ -*-===//
///
/// \file
/// Direct implementation of the transduction semantics of paper §2
/// (Equation 1): step the transition rule over each input element, thread
/// the (control state, register) pair, then run the finalizer.  This is the
/// executable ground truth that fusion, RBBE and the VM are tested against.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BST_INTERP_H
#define EFC_BST_INTERP_H

#include "bst/Bst.h"

#include <optional>
#include <span>

namespace efc {

/// Result of stepping a rule: outputs plus successor configuration, or
/// rejection.
struct StepResult {
  std::vector<Value> Outputs;
  unsigned NextState = 0;
  Value NextReg;
};

/// Evaluates one rule on a concrete (input, register) pair; std::nullopt
/// means the rule maps to ⊥ (Undef).  Pass \p Input = nullptr for
/// finalizer rules.
std::optional<StepResult> stepRule(const Bst &A, const Rule *R,
                                   const Value *Input, const Value &Reg);

/// The transduction ⟦A⟧ applied to \p Input; std::nullopt when rejected.
std::optional<std::vector<Value>> runBst(const Bst &A,
                                         std::span<const Value> Input);

/// Like runBst but also exposes the visited configurations (for tests and
/// the forward reachability under-approximation's sanity checks).
struct Trace {
  bool Accepted = false;
  std::vector<Value> Outputs;
  std::vector<unsigned> States;  ///< q0, q1, ..., qn (before finalizer)
  std::vector<Value> Registers;  ///< r0, r1, ..., rn
};
Trace traceBst(const Bst &A, std::span<const Value> Input);

} // namespace efc

#endif // EFC_BST_INTERP_H
