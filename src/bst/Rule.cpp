//===- bst/Rule.cpp -------------------------------------------------------===//

#include "bst/Rule.h"

using namespace efc;

RulePtr Rule::undef() {
  static const RulePtr U = RulePtr(new Rule(Kind::Undef));
  return U;
}

RulePtr Rule::base(std::vector<TermRef> Outputs, unsigned Target,
                   TermRef Update) {
  auto R = new Rule(Kind::Base);
  R->Outputs = std::move(Outputs);
  R->Target = Target;
  R->Update = Update;
  return RulePtr(R);
}

RulePtr Rule::ite(TermRef Cond, RulePtr Then, RulePtr Else) {
  assert(Cond->type()->isBool());
  if (Cond->isTrue())
    return Then;
  if (Cond->isFalse())
    return Else;
  if (equal(Then, Else))
    return Then;
  auto R = new Rule(Kind::Ite);
  R->Cond = Cond;
  R->Then = std::move(Then);
  R->Else = std::move(Else);
  return RulePtr(R);
}

bool Rule::equal(const Rule *A, const Rule *B) {
  if (A == B)
    return true;
  if (A->K != B->K)
    return false;
  switch (A->K) {
  case Kind::Undef:
    return true;
  case Kind::Base:
    return A->Target == B->Target && A->Update == B->Update &&
           A->Outputs == B->Outputs;
  case Kind::Ite:
    return A->Cond == B->Cond && equal(A->Then.get(), B->Then.get()) &&
           equal(A->Else.get(), B->Else.get());
  }
  return false;
}

unsigned Rule::countBaseLeaves() const {
  switch (K) {
  case Kind::Undef:
    return 0;
  case Kind::Base:
    return 1;
  case Kind::Ite:
    return Then->countBaseLeaves() + Else->countBaseLeaves();
  }
  return 0;
}

unsigned Rule::countIteNodes() const {
  if (K != Kind::Ite)
    return 0;
  return 1 + Then->countIteNodes() + Else->countIteNodes();
}

unsigned Rule::depth() const {
  if (K != Kind::Ite)
    return 1;
  return 1 + std::max(Then->depth(), Else->depth());
}
