//===- bst/BstPrint.h - Diagnostics printing for BSTs -----------*- C++ -*-===//
///
/// \file
/// Text rendering of BSTs for debugging, tests and documentation: one
/// indented block per control state showing the rule tree.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BST_BSTPRINT_H
#define EFC_BST_BSTPRINT_H

#include "bst/Bst.h"

#include <string>

namespace efc {

/// Multi-line description of the whole transducer.
std::string bstToString(const Bst &A);

/// Multi-line description of one rule tree.
std::string ruleToString(const TermContext &Ctx, const Rule *R,
                         unsigned Indent = 0);

/// Graphviz rendering of the control graph: one node per state (double
/// circle when accepting), one edge per flattened move labelled with its
/// guard.
std::string bstToDot(const Bst &A, const std::string &Name = "bst");

} // namespace efc

#endif // EFC_BST_BSTPRINT_H
