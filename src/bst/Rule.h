//===- bst/Rule.h - Branching transducer rules ------------------*- C++ -*-===//
///
/// \file
/// Rules of branching symbolic transducers (paper §2): trees whose interior
/// nodes are Ite choices over guard terms and whose leaves either perform a
/// transition (`Base`: output list, target control state, register update)
/// or reject (`Undef`).  Rule nodes are immutable and shared.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BST_RULE_H
#define EFC_BST_RULE_H

#include "term/Term.h"
#include "term/TermContext.h"

#include <memory>
#include <vector>

namespace efc {

class Rule;
using RulePtr = std::shared_ptr<const Rule>;

/// One node of a branching rule.
class Rule {
public:
  enum class Kind : uint8_t { Ite, Base, Undef };

  /// Builds an Ite node; simplifies constant conditions and
  /// structurally-equal branches.
  static RulePtr ite(TermRef Cond, RulePtr Then, RulePtr Else);

  /// Builds a Base leaf: emit \p Outputs, go to \p Target, set the register
  /// to \p Update.
  static RulePtr base(std::vector<TermRef> Outputs, unsigned Target,
                      TermRef Update);

  /// The (shared) Undef leaf: reject the input.
  static RulePtr undef();

  Kind kind() const { return K; }
  bool isIte() const { return K == Kind::Ite; }
  bool isBase() const { return K == Kind::Base; }
  bool isUndef() const { return K == Kind::Undef; }

  // Ite accessors.
  TermRef cond() const {
    assert(isIte());
    return Cond;
  }
  const RulePtr &thenRule() const {
    assert(isIte());
    return Then;
  }
  const RulePtr &elseRule() const {
    assert(isIte());
    return Else;
  }

  // Base accessors.
  const std::vector<TermRef> &outputs() const {
    assert(isBase());
    return Outputs;
  }
  unsigned target() const {
    assert(isBase());
    return Target;
  }
  TermRef update() const {
    assert(isBase());
    return Update;
  }

  /// Structural equality (terms compare by pointer thanks to interning).
  static bool equal(const Rule *A, const Rule *B);
  static bool equal(const RulePtr &A, const RulePtr &B) {
    return equal(A.get(), B.get());
  }

  /// Number of Base leaves in the tree ("branches" of Figure 11).
  unsigned countBaseLeaves() const;
  /// Number of Ite nodes in the tree.
  unsigned countIteNodes() const;
  /// Depth of the tree (Undef/Base = 1).
  unsigned depth() const;

private:
  Kind K;
  // Ite.
  TermRef Cond = nullptr;
  RulePtr Then, Else;
  // Base.
  std::vector<TermRef> Outputs;
  unsigned Target = 0;
  TermRef Update = nullptr;

  explicit Rule(Kind K) : K(K) {}
};

} // namespace efc

#endif // EFC_BST_RULE_H
