//===- bst/Bst.cpp --------------------------------------------------------===//

#include "bst/Bst.h"

#include "term/Rewrite.h"

using namespace efc;

Bst::Bst(TermContext &Ctx, const Type *InputTy, const Type *OutputTy,
         const Type *RegTy, unsigned NumStates, unsigned InitState,
         Value InitReg)
    : Ctx(&Ctx), InputTy(InputTy), OutputTy(OutputTy), RegTy(RegTy),
      InitState(InitState), InitReg(std::move(InitReg)),
      Delta(NumStates, Rule::undef()), Fin(NumStates, Rule::undef()),
      StateNames(NumStates) {
  assert(InitState < NumStates);
  assert(this->InitReg.hasType(RegTy) && "initial register has wrong type");
  for (unsigned I = 0; I < NumStates; ++I)
    StateNames[I] = "q" + std::to_string(I);
}

TermRef Bst::initialRegisterTerm() const {
  return Ctx->constOf(RegTy, InitReg);
}

TermRef Bst::inputVar() const { return Ctx->var("x", InputTy); }

TermRef Bst::regVar() const { return Ctx->var("r", RegTy); }

unsigned Bst::addState(std::string Name) {
  unsigned Id = numStates();
  Delta.push_back(Rule::undef());
  Fin.push_back(Rule::undef());
  StateNames.push_back(Name.empty() ? "q" + std::to_string(Id)
                                    : std::move(Name));
  return Id;
}

unsigned Bst::countBranches() const {
  unsigned N = 0;
  for (const RulePtr &R : Delta)
    N += R->countBaseLeaves();
  for (const RulePtr &R : Fin)
    N += R->countBaseLeaves();
  return N;
}

bool Bst::checkTermVars(TermRef T, bool IsFinalizer, std::string *Err) const {
  std::unordered_set<TermRef> Vars;
  collectVars(T, Vars);
  for (TermRef V : Vars) {
    if (V == regVar())
      continue;
    if (!IsFinalizer && V == inputVar())
      continue;
    if (Err)
      *Err = "rule term mentions unexpected variable '" +
             Ctx->varName(V->varId()) + "'";
    return false;
  }
  return true;
}

bool Bst::checkRule(const Rule *R, bool IsFinalizer, unsigned State,
                    std::string *Err) const {
  switch (R->kind()) {
  case Rule::Kind::Undef:
    return true;
  case Rule::Kind::Ite:
    if (!R->cond()->type()->isBool()) {
      if (Err)
        *Err = "guard is not boolean in state " + StateNames[State];
      return false;
    }
    return checkTermVars(R->cond(), IsFinalizer, Err) &&
           checkRule(R->thenRule().get(), IsFinalizer, State, Err) &&
           checkRule(R->elseRule().get(), IsFinalizer, State, Err);
  case Rule::Kind::Base: {
    if (R->target() >= numStates()) {
      if (Err)
        *Err = "target state out of range in state " + StateNames[State];
      return false;
    }
    for (TermRef O : R->outputs()) {
      if (O->type() != OutputTy) {
        if (Err)
          *Err = "output term has wrong type in state " + StateNames[State];
        return false;
      }
      if (!checkTermVars(O, IsFinalizer, Err))
        return false;
    }
    if (R->update()->type() != RegTy) {
      if (Err)
        *Err = "register update has wrong type in state " + StateNames[State];
      return false;
    }
    return checkTermVars(R->update(), IsFinalizer, Err);
  }
  }
  return false;
}

bool Bst::wellFormed(std::string *Err) const {
  if (!InitReg.hasType(RegTy)) {
    if (Err)
      *Err = "initial register value does not match register type";
    return false;
  }
  for (unsigned Q = 0; Q < numStates(); ++Q) {
    if (!checkRule(Delta[Q].get(), /*IsFinalizer=*/false, Q, Err))
      return false;
    if (!checkRule(Fin[Q].get(), /*IsFinalizer=*/true, Q, Err))
      return false;
  }
  return true;
}
