//===- codegen/CppCodeGen.cpp ---------------------------------------------===//

#include "codegen/CppCodeGen.h"

#include "vm/FastPath.h"

#include <unordered_map>

using namespace efc;

namespace {

std::string hex(uint64_t V) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "0x%llxull", (unsigned long long)V);
  return Buf;
}

std::string maskExpr(unsigned Width, const std::string &E) {
  if (Width >= 64)
    return E;
  return "(" + E + " & " + hex((uint64_t(1) << Width) - 1) + ")";
}

/// Emits terms as C expressions over the register-leaf variables r<i> and
/// the input variable x.  Shared subterms become local t<i> temporaries.
class ExprEmitter {
public:
  ExprEmitter(TermContext &Ctx,
              const std::unordered_map<TermRef, std::string> &Leaves,
              std::string Indent)
      : Ctx(Ctx), Leaves(Leaves), Indent(std::move(Indent)) {}

  /// Returns an expression (usually a temporary name) for T, appending
  /// any needed temporary definitions to Body.
  std::string emit(TermRef T, std::string &Body) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    std::string E = build(T, Body);
    // Name multi-use subterms; constants and leaves stay inline.
    if (!T->isConst() && T->op() != Op::Var && T->op() != Op::TupleGet) {
      std::string Name = "t" + std::to_string(NextTemp++);
      Body += Indent + "const uint64_t " + Name + " = " + E + ";\n";
      E = Name;
    }
    Memo.emplace(T, E);
    return E;
  }

private:
  TermContext &Ctx;
  const std::unordered_map<TermRef, std::string> &Leaves;
  std::string Indent;
  std::unordered_map<TermRef, std::string> Memo;
  unsigned NextTemp = 0;

  static unsigned widthOf(TermRef T) {
    return T->type()->isBool() ? 1 : T->type()->width();
  }

  std::string build(TermRef T, std::string &Body) {
    auto Bin = [&](const char *Sym) {
      return "(" + emit(T->operand(0), Body) + " " + Sym + " " +
             emit(T->operand(1), Body) + ")";
    };
    auto MaskedBin = [&](const char *Sym) {
      return maskExpr(widthOf(T), Bin(Sym));
    };
    auto Sext = [&](TermRef Operand, std::string E) {
      unsigned W = widthOf(Operand);
      if (W >= 64)
        return "(int64_t)" + E;
      return "efc_sext(" + E + ", " + std::to_string(W) + ")";
    };
    switch (T->op()) {
    case Op::ConstBool:
    case Op::ConstBv:
      return hex(T->constBits());
    case Op::ConstUnit:
      return "0";
    case Op::Var:
    case Op::TupleGet: {
      auto It = Leaves.find(T);
      assert(It != Leaves.end() && "unmapped leaf term");
      return It->second;
    }
    case Op::Not:
      return "(" + emit(T->operand(0), Body) + " ^ 1ull)";
    case Op::And:
      return Bin("&");
    case Op::Or:
      return Bin("|");
    case Op::Ite:
      return "(" + emit(T->operand(0), Body) + " ? " +
             emit(T->operand(1), Body) + " : " + emit(T->operand(2), Body) +
             ")";
    case Op::Eq:
      return "(uint64_t)" + Bin("==");
    case Op::Ult:
      return "(uint64_t)" + Bin("<");
    case Op::Ule:
      return "(uint64_t)" + Bin("<=");
    case Op::Slt:
      return "(uint64_t)(" + Sext(T->operand(0), emit(T->operand(0), Body)) +
             " < " + Sext(T->operand(1), emit(T->operand(1), Body)) + ")";
    case Op::Sle:
      return "(uint64_t)(" + Sext(T->operand(0), emit(T->operand(0), Body)) +
             " <= " + Sext(T->operand(1), emit(T->operand(1), Body)) + ")";
    case Op::Add:
      return MaskedBin("+");
    case Op::Sub:
      return MaskedBin("-");
    case Op::Mul:
      return MaskedBin("*");
    case Op::UDiv:
      return "efc_udiv(" + emit(T->operand(0), Body) + ", " +
             emit(T->operand(1), Body) + ", " +
             hex(T->type()->mask()) + ")";
    case Op::URem:
      return "efc_urem(" + emit(T->operand(0), Body) + ", " +
             emit(T->operand(1), Body) + ")";
    case Op::Neg:
      return maskExpr(widthOf(T), "(~" + emit(T->operand(0), Body) +
                                      " + 1ull)");
    case Op::BvAnd:
      return Bin("&");
    case Op::BvOr:
      return Bin("|");
    case Op::BvXor:
      return Bin("^");
    case Op::BvNot:
      return maskExpr(widthOf(T), "(~" + emit(T->operand(0), Body) + ")");
    case Op::Shl:
      return "efc_shl(" + emit(T->operand(0), Body) + ", " +
             emit(T->operand(1), Body) + ", " + std::to_string(widthOf(T)) +
             ")";
    case Op::LShr:
      return "efc_lshr(" + emit(T->operand(0), Body) + ", " +
             emit(T->operand(1), Body) + ", " + std::to_string(widthOf(T)) +
             ")";
    case Op::AShr:
      return "efc_ashr(" + emit(T->operand(0), Body) + ", " +
             emit(T->operand(1), Body) + ", " + std::to_string(widthOf(T)) +
             ")";
    case Op::ZExt:
      return emit(T->operand(0), Body);
    case Op::SExt:
      return maskExpr(widthOf(T),
                      "(uint64_t)" + Sext(T->operand(0),
                                          emit(T->operand(0), Body)));
    case Op::Extract:
      return maskExpr(widthOf(T), "(" + emit(T->operand(0), Body) + " >> " +
                                      std::to_string(T->extractLo()) + ")");
    case Op::MkTuple:
      break;
    }
    assert(false && "non-scalar term reached codegen");
    return "0";
  }
};

void collectLeaves(TermContext &Ctx, TermRef T, std::vector<TermRef> &Out) {
  const Type *Ty = T->type();
  if (Ty->isScalar()) {
    Out.push_back(T);
    return;
  }
  if (Ty->isTuple())
    for (unsigned I = 0; I < Ty->arity(); ++I)
      collectLeaves(Ctx, Ctx.mkTupleGet(T, I), Out);
}

void flattenInit(const Value &V, std::vector<uint64_t> &Out) {
  switch (V.kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(V.bits());
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (const Value &E : V.elems())
      flattenInit(E, Out);
    return;
  }
}

class UnitEmitter {
public:
  UnitEmitter(const Bst &A, const CodeGenOptions &Opts) : A(A), Opts(Opts) {
    TermContext &Ctx = A.context();
    std::vector<TermRef> RegLeaves;
    collectLeaves(Ctx, A.regVar(), RegLeaves);
    for (unsigned I = 0; I < RegLeaves.size(); ++I)
      Leaves[RegLeaves[I]] = "r" + std::to_string(I);
    Leaves[A.inputVar()] = "x";
    NumLeaves = unsigned(RegLeaves.size());
    // Byte-class analysis (vm/FastPath.h): states whose guards read only
    // the input dispatch through a static lookup table, the paper's
    // character-class codegen.  Same classifier as the VM fast path, so
    // the table partition cannot drift from the interpreter's.
    for (unsigned Q = 0; Q < A.numStates(); ++Q) {
      Tables.push_back(classifyDeltaByteClasses(A, Q));
      // Run kernels come from the same classifier as the VM driver, so
      // native and VM accelerate identical byte sets with identical
      // effects (action-for-action alignment).
      Kernels.push_back(Opts.RunAccel && Tables[Q].Eligible
                            ? classifyRunKernels(A, Q, Tables[Q])
                            : std::vector<RunKernel>());
    }
  }

  /// File-scope byte -> equivalence-class tables for table-dispatched
  /// states.  Entries are always <= 255: a state has at most 256 classes,
  /// and the out-of-range sentinel numClasses() only appears when the
  /// input width is below 8 bits (so at most 128 classes).
  std::string tables() {
    std::string S;
    for (unsigned Q = 0; Q < A.numStates(); ++Q) {
      if (!usesTable(Q))
        continue;
      const ByteClassTable &C = Tables[Q];
      S += "static const unsigned char " + tableName(Q) + "[256] = {";
      for (unsigned B = 0; B < 256; ++B) {
        if (B % 16 == 0)
          S += "\n  ";
        S += std::to_string(C.Class[B]);
        if (B != 255)
          S += ",";
      }
      S += "\n};\n";
    }
    // 256-bit membership masks for run kernels; single-escape kernels
    // compare against the escape byte directly and need no mask.
    for (unsigned Q = 0; Q < A.numStates(); ++Q)
      for (unsigned K = 0; K < Kernels[Q].size(); ++K) {
        const RunKernel &RK = Kernels[Q][K];
        if (RK.SingleEscape >= 0)
          continue;
        S += "static const uint64_t " + runMaskName(Q, K) + "[4] = {";
        for (unsigned W = 0; W < 4; ++W)
          S += (W ? ", " : "") + hex(RK.Mask[W]);
        S += "};\n";
      }
    // Nibble shuffle tables (vm/FastPath.h NibbleTable): the same
    // encoding the VM scan kernels use, byte-for-byte, so native and VM
    // classify spans identically at every ISA level.
    for (unsigned Q = 0; Q < A.numStates(); ++Q)
      for (unsigned K = 0; K < Kernels[Q].size(); ++K) {
        const RunKernel &RK = Kernels[Q][K];
        if (!RK.NT.Valid)
          continue;
        for (int Half = 0; Half < 2; ++Half) {
          const std::array<uint8_t, 16> &T = Half ? RK.NT.Hi : RK.NT.Lo;
          S += "static const unsigned char " + ntName(Q, K) +
               (Half ? "_hi" : "_lo") + "[16] = {";
          for (unsigned J = 0; J < 16; ++J)
            S += (J ? "," : "") + std::to_string(T[J]);
          S += "};\n";
        }
      }
    if (!S.empty())
      S += "\n";
    return S;
  }

  /// True when any kernel carries a shufti encoding — gates emission of
  /// the efc_scan_nib dispatch helper.
  bool anyNibbleKernel() const {
    for (const std::vector<RunKernel> &Ks : Kernels)
      for (const RunKernel &RK : Ks)
        if (RK.NT.Valid)
          return true;
    return false;
  }

  std::string function() {
    std::string S;
    S += "static bool " + Opts.FunctionName +
         "(const uint64_t *in, size_t n, std::vector<uint64_t> &out) {\n";
    std::vector<uint64_t> Init;
    flattenInit(A.initialRegister(), Init);
    for (unsigned I = 0; I < NumLeaves; ++I)
      S += "  uint64_t r" + std::to_string(I) + " = " + hex(Init[I]) +
           ";\n";
    S += "  size_t i = 0;\n  uint64_t x = 0;\n  (void)x;\n";
    S += "  goto S" + std::to_string(A.initialState()) + ";\n";
    // Each state's rule body is brace-scoped so its temporaries neither
    // collide across states nor are crossed by gotos.
    for (unsigned Q = 0; Q < A.numStates(); ++Q) {
      S += "S" + std::to_string(Q) + ":\n";
      S += "  if (i >= n) goto F" + std::to_string(Q) + ";\n";
      S += "  x = in[i++];\n";
      S += deltaCode(Q);
    }
    for (unsigned Q = 0; Q < A.numStates(); ++Q) {
      S += "F" + std::to_string(Q) + ":\n  {\n";
      S += ruleCode(A.finalizer(Q).get(), /*IsFinalizer=*/true, 1);
      S += "  }\n";
    }
    S += "}\n";
    return S;
  }

  /// The suspend/resume entry points (CodeGenOptions::EmitStreaming).
  /// The state block layout is st[0] = control state, st[1..] = register
  /// leaves in flattening order — the same order the one-shot function
  /// declares its r<i> locals.
  std::string streaming() {
    const std::string &N = Opts.FunctionName;
    std::vector<uint64_t> Init;
    flattenInit(A.initialRegister(), Init);

    std::string S;
    S += "[[maybe_unused]] static const size_t " + N + "_state_words = " +
         std::to_string(1 + NumLeaves) + ";\n\n";

    S += "static void " + N + "_init(uint64_t *st) {\n";
    S += "  st[0] = " + std::to_string(A.initialState()) + "ull;\n";
    for (unsigned I = 0; I < NumLeaves; ++I)
      S += "  st[" + std::to_string(I + 1) + "] = " + hex(Init[I]) + ";\n";
    S += "}\n\n";

    // feed: resume at the saved control state; at end of chunk suspend
    // (persist state + registers) instead of falling into the finalizer.
    S += "static bool " + N +
         "_feed(uint64_t *st, const uint64_t *in, size_t n, "
         "std::vector<uint64_t> &out) {\n";
    for (unsigned I = 0; I < NumLeaves; ++I)
      S += "  uint64_t r" + std::to_string(I) + " = st[" +
           std::to_string(I + 1) + "];\n";
    S += "  size_t i = 0;\n  uint64_t x = 0;\n  (void)x;\n";
    S += "  switch (st[0]) {\n";
    for (unsigned Q = 0; Q < A.numStates(); ++Q)
      S += "  case " + std::to_string(Q) + ": goto S" + std::to_string(Q) +
           ";\n";
    S += "  default: return false;\n  }\n";
    for (unsigned Q = 0; Q < A.numStates(); ++Q) {
      S += "S" + std::to_string(Q) + ":\n";
      S += "  if (i >= n) {\n    st[0] = " + std::to_string(Q) + "ull;\n";
      for (unsigned I = 0; I < NumLeaves; ++I)
        S += "    st[" + std::to_string(I + 1) + "] = r" +
             std::to_string(I) + ";\n";
      S += "    return true;\n  }\n";
      S += "  x = in[i++];\n";
      S += deltaCode(Q);
    }
    S += "}\n\n";

    // finish: run the finalizer of the saved state.  Registers are not
    // written back — a finished session is over.
    S += "static bool " + N +
         "_finish(uint64_t *st, std::vector<uint64_t> &out) {\n";
    for (unsigned I = 0; I < NumLeaves; ++I)
      S += "  uint64_t r" + std::to_string(I) + " = st[" +
           std::to_string(I + 1) + "]; (void)r" + std::to_string(I) + ";\n";
    S += "  switch (st[0]) {\n";
    for (unsigned Q = 0; Q < A.numStates(); ++Q)
      S += "  case " + std::to_string(Q) + ": goto F" + std::to_string(Q) +
           ";\n";
    S += "  default: return false;\n  }\n";
    for (unsigned Q = 0; Q < A.numStates(); ++Q) {
      S += "F" + std::to_string(Q) + ":\n  {\n";
      S += ruleCode(A.finalizer(Q).get(), /*IsFinalizer=*/true, 1);
      S += "  }\n";
    }
    S += "}\n";
    return S;
  }

private:
  const Bst &A;
  const CodeGenOptions &Opts;
  std::unordered_map<TermRef, std::string> Leaves;
  unsigned NumLeaves = 0;
  std::vector<ByteClassTable> Tables;
  std::vector<std::vector<RunKernel>> Kernels;

  std::string tableName(unsigned Q) {
    return Opts.FunctionName + "_cls" + std::to_string(Q);
  }

  std::string runMaskName(unsigned Q, unsigned K) {
    return Opts.FunctionName + "_run" + std::to_string(Q) + "_" +
           std::to_string(K);
  }

  std::string ntName(unsigned Q, unsigned K) {
    return Opts.FunctionName + "_nt" + std::to_string(Q) + "_" +
           std::to_string(K);
  }

  /// A table only pays off when the rule actually branches; leaf-only
  /// rules are already branch-free.
  bool usesTable(unsigned Q) const {
    return Tables[Q].Eligible && A.delta(Q)->isIte();
  }

  /// Transition body for state Q: table dispatch over the byte classes
  /// when eligible, then the original guard chain.  The chain stays
  /// reachable on purpose — it handles elements >= 256 and, for input
  /// widths below 8, bytes outside the valid range, where the table's
  /// masked precomputation would not match the unmasked comparisons the
  /// guards perform (the VM fast path makes the same split).
  std::string deltaCode(unsigned Q) {
    std::string S;
    if (usesTable(Q) || !Kernels[Q].empty()) {
      S += "  if (x < 0x100ull) {\n";
      // Run kernels first: a loop byte consumes its whole span and
      // re-enters the state label, so the switch below only ever sees
      // non-run bytes (mirrors the VM driver's RunId-before-Dispatch
      // order).
      for (unsigned K = 0; K < Kernels[Q].size(); ++K)
        S += runCode(Q, K);
      if (usesTable(Q)) {
        const ByteClassTable &C = Tables[Q];
        S += "    switch (" + tableName(Q) + "[x]) {\n";
        for (unsigned K = 0; K < C.numClasses(); ++K) {
          S += "    case " + std::to_string(K) + ": {\n";
          S += ruleCode(C.Leaves[K], /*IsFinalizer=*/false, 3);
          S += "    }\n";
        }
        S += "    default: break;\n    }\n";
      }
      S += "  }\n";
    }
    S += "  {\n";
    S += ruleCode(A.delta(Q).get(), /*IsFinalizer=*/false, 1);
    S += "  }\n";
    return S;
  }

  /// Bulk run loop for one kernel: when the current element is a loop
  /// byte, scan to the end of the run (same SWAR shape and stop
  /// conditions as the VM's scanRunEnd, so span boundaries coincide),
  /// apply the kernel's effect to the whole span, and re-enter the state
  /// label — which handles end-of-chunk (one-shot finalize or streaming
  /// suspend) exactly like per-element stepping would.
  std::string runCode(unsigned Q, unsigned K) {
    const RunKernel &RK = Kernels[Q][K];
    const bool Esc = RK.SingleEscape >= 0;
    const std::string E = Esc ? hex(uint64_t(RK.SingleEscape)) : "";
    const std::string M = Esc ? "" : runMaskName(Q, K);
    auto Member = [&](const std::string &V) {
      return Esc ? "(" + V + " != " + E + ")"
                 : "efc_runbit(" + M + ", " + V + ")";
    };
    std::string S;
    S += "    if (" + Member("x") + ") {\n";
    const bool NeedsStart = RK.K != RunKernel::Kind::Skip;
    if (NeedsStart)
      S += "      size_t rs = i - 1;\n";
    // Shuffle-classified block scan first (whole 16/32-element strides;
    // no-op below AVX2), then the SWAR loop and the scalar tail pin down
    // the exact span end — the same ladder as the VM's scanRunEnd, so
    // span boundaries coincide at every ISA level.
    if (RK.NT.Valid)
      S += "      i = efc_scan_nib(in, i, n, " + ntName(Q, K) + "_lo, " +
           ntName(Q, K) + "_hi);\n";
    S += "      while (i + 4 <= n) {\n";
    S += "        uint64_t ra = in[i], rb = in[i + 1], rc = in[i + 2], "
         "rd = in[i + 3];\n";
    if (Esc)
      S += "        if (((ra | rb | rc | rd) >> 8) || ra == " + E +
           " || rb == " + E + " || rc == " + E + " || rd == " + E +
           ") break;\n";
    else
      S += "        if (((ra | rb | rc | rd) >> 8) || !(efc_runbit(" + M +
           ", ra) & efc_runbit(" + M + ", rb) & efc_runbit(" + M +
           ", rc) & efc_runbit(" + M + ", rd))) break;\n";
    S += "        i += 4;\n      }\n";
    S += "      while (i < n && in[i] < 0x100ull && " + Member("in[i]") +
         ") ++i;\n";
    switch (RK.K) {
    case RunKernel::Kind::Skip:
      break;
    case RunKernel::Kind::Copy:
      S += "      out.insert(out.end(), in + rs, in + i);\n";
      break;
    case RunKernel::Kind::ConstAppend:
      if (RK.Emits.size() == 1) {
        S += "      out.insert(out.end(), i - rs, " + hex(RK.Emits[0]) +
             ");\n";
      } else {
        S += "      for (size_t rj = rs; rj < i; ++rj) {\n";
        for (uint64_t V : RK.Emits)
          S += "        out.push_back(" + hex(V) + ");\n";
        S += "      }\n";
      }
      break;
    }
    // Constant register writes: once per span (idempotent; see
    // vm/FastPath.h RunKernel::Writes).
    for (auto &[Idx, V] : RK.Writes)
      S += "      r" + std::to_string(Idx) + " = " + hex(V) + ";\n";
    S += "      goto S" + std::to_string(Q) + ";\n    }\n";
    return S;
  }

  std::string ruleCode(const Rule *R, bool IsFinalizer, unsigned Depth) {
    std::string Pad(Depth * 2, ' ');
    TermContext &Ctx = A.context();
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return Pad + "return false;\n";
    case Rule::Kind::Ite: {
      std::string Body;
      ExprEmitter E(Ctx, Leaves, Pad);
      std::string C = E.emit(R->cond(), Body);
      std::string S = Body;
      S += Pad + "if (" + C + ") {\n";
      S += ruleCode(R->thenRule().get(), IsFinalizer, Depth + 1);
      S += Pad + "} else {\n";
      S += ruleCode(R->elseRule().get(), IsFinalizer, Depth + 1);
      S += Pad + "}\n";
      return S;
    }
    case Rule::Kind::Base: {
      std::string Body;
      ExprEmitter E(Ctx, Leaves, Pad);
      std::string S;
      for (TermRef O : R->outputs()) {
        std::string Expr = E.emit(O, Body);
        S += Pad + "out.push_back(" + Expr + ");\n";
      }
      if (IsFinalizer) {
        std::string Out = Body + S;
        Out += Pad + "return true;\n";
        return Out;
      }
      // New register values into temporaries, then commit.
      std::vector<TermRef> NewLeaves;
      collectLeaves(Ctx, R->update(), NewLeaves);
      std::vector<TermRef> OldLeaves;
      collectLeaves(Ctx, A.regVar(), OldLeaves);
      std::vector<std::pair<unsigned, std::string>> Writes;
      for (unsigned I = 0; I < NumLeaves; ++I) {
        if (NewLeaves[I] == OldLeaves[I])
          continue;
        Writes.push_back({I, E.emit(NewLeaves[I], Body)});
      }
      std::string Out = Body + S;
      // Stage register-sourced writes.
      for (auto &[Idx, Expr] : Writes) {
        std::string Staged = "n" + std::to_string(Idx);
        Out += Pad + "const uint64_t " + Staged + " = " + Expr + ";\n";
        Expr = Staged;
      }
      for (auto &[Idx, Expr] : Writes)
        Out += Pad + "r" + std::to_string(Idx) + " = " + Expr + ";\n";
      Out += Pad + "goto S" + std::to_string(R->target()) + ";\n";
      return Out;
    }
    }
    return "";
  }
};

} // namespace

std::string efc::generateCpp(const Bst &A, const CodeGenOptions &Opts,
                             const std::vector<CodeGenTestVector> &Vectors) {
  assert(A.inputType()->isScalar() && A.outputType()->isScalar() &&
         "codegen requires scalar element types");
  std::string S;
  S += "// Generated by efc (Fusing Effectful Comprehensions, PLDI'17 "
       "reproduction).\n";
  S += "#include <cstddef>\n#include <cstdint>\n#include <vector>\n\n";
  S += "static inline int64_t efc_sext(uint64_t v, unsigned w) {\n"
       "  uint64_t sb = 1ull << (w - 1);\n"
       "  return (int64_t)((v & ((sb << 1) - 1)) ^ sb) - (int64_t)sb;\n"
       "}\n";
  S += "static inline uint64_t efc_udiv(uint64_t a, uint64_t b, uint64_t "
       "mask) { return b ? a / b : mask; }\n";
  S += "static inline uint64_t efc_urem(uint64_t a, uint64_t b) { return b "
       "? a % b : a; }\n";
  S += "static inline uint64_t efc_shl(uint64_t a, uint64_t b, unsigned w) "
       "{ uint64_t m = w >= 64 ? ~0ull : (1ull << w) - 1; return b >= w ? 0 "
       ": (a << b) & m; }\n";
  S += "static inline uint64_t efc_lshr(uint64_t a, uint64_t b, unsigned w) "
       "{ return b >= w ? 0 : a >> b; }\n";
  S += "static inline uint64_t efc_ashr(uint64_t a, uint64_t b, unsigned w) "
       "{ int64_t s = efc_sext(a, w); uint64_t m = w >= 64 ? ~0ull : (1ull "
       "<< w) - 1; return b >= w ? (uint64_t)(s < 0 ? -1 : 0) & m : "
       "(uint64_t)(s >> b) & m; }\n";
  S += "static inline uint64_t efc_runbit(const uint64_t *m, uint64_t x) "
       "{ return (m[x >> 6] >> (x & 63)) & 1ull; }\n\n";

  UnitEmitter U(A, Opts);
  if (U.anyNibbleKernel()) {
    // Shuffle-classified block scan, dispatched once per process on the
    // detected ISA (clamped down by EFC_SIMD).  Advances only by whole
    // 16/32-element blocks that classify entirely in-set; the emitted
    // SWAR loop and scalar tail after it pin down the exact span end, so
    // every level — including the scalar no-op fallback — yields the
    // same boundaries.  Target attributes keep this buildable without
    // -mavx2 on the command line.
    S += "#if defined(__x86_64__) && defined(__GNUC__)\n"
         "#include <immintrin.h>\n"
         "#include <cstdlib>\n"
         "#include <cstring>\n"
         "static int efc_simd_level() {\n"
         "  static const int L = [] {\n"
         "    int l = 1;\n"
         "    if (__builtin_cpu_supports(\"avx2\")) l = 2;\n"
         "    if (__builtin_cpu_supports(\"avx512f\") &&\n"
         "        __builtin_cpu_supports(\"avx512bw\") &&\n"
         "        __builtin_cpu_supports(\"avx512vl\")) l = 3;\n"
         "    if (const char *e = std::getenv(\"EFC_SIMD\")) {\n"
         "      int r = l;\n"
         "      if (!std::strcmp(e, \"scalar\")) r = 0;\n"
         "      else if (!std::strcmp(e, \"sse2\")) r = 1;\n"
         "      else if (!std::strcmp(e, \"avx2\")) r = 2;\n"
         "      else if (!std::strcmp(e, \"avx512\")) r = 3;\n"
         "      if (r < l) l = r;\n"
         "    }\n"
         "    return l;\n"
         "  }();\n"
         "  return L;\n"
         "}\n"
         "__attribute__((target(\"avx2\"))) static size_t\n"
         "efc_scan_nib_avx2(const uint64_t *in, size_t i, size_t n,\n"
         "                  const unsigned char *lo, const unsigned char "
         "*hi) {\n"
         "  const __m256i Lo2 = _mm256_broadcastsi128_si256(\n"
         "      _mm_loadu_si128((const __m128i *)lo));\n"
         "  const __m256i Hi2 = _mm256_broadcastsi128_si256(\n"
         "      _mm_loadu_si128((const __m128i *)hi));\n"
         "  const __m256i Wide = _mm256_set1_epi64x(~0xFFll);\n"
         "  const __m256i Nib = _mm256_set1_epi8(0x0F);\n"
         "  const __m256i Zero = _mm256_setzero_si256();\n"
         "  while (i + 16 <= n) {\n"
         "    __m256i A = _mm256_loadu_si256((const __m256i *)(in + i));\n"
         "    __m256i B = _mm256_loadu_si256((const __m256i *)(in + i + "
         "4));\n"
         "    __m256i C = _mm256_loadu_si256((const __m256i *)(in + i + "
         "8));\n"
         "    __m256i D = _mm256_loadu_si256((const __m256i *)(in + i + "
         "12));\n"
         "    __m256i Or = _mm256_or_si256(_mm256_or_si256(A, B),\n"
         "                                 _mm256_or_si256(C, D));\n"
         "    if (!_mm256_testz_si256(Or, Wide)) break;\n"
         "    __m256i Bytes = _mm256_packus_epi16(_mm256_packus_epi32(A, "
         "B),\n"
         "                                        _mm256_packus_epi32(C, "
         "D));\n"
         "    __m256i Cl = _mm256_and_si256(\n"
         "        _mm256_shuffle_epi8(Lo2, _mm256_and_si256(Bytes, Nib)),\n"
         "        _mm256_shuffle_epi8(Hi2,\n"
         "            _mm256_and_si256(_mm256_srli_epi16(Bytes, 4), "
         "Nib)));\n"
         "    unsigned Esc = (unsigned)_mm256_movemask_epi8(\n"
         "        _mm256_cmpeq_epi8(Cl, Zero));\n"
         "    if (Esc & 0x55555555u) break;\n"
         "    i += 16;\n"
         "  }\n"
         "  return i;\n"
         "}\n"
         "__attribute__((target(\"avx512f,avx512bw,avx512vl,avx2\"))) "
         "static size_t\n"
         "efc_scan_nib_avx512(const uint64_t *in, size_t i, size_t n,\n"
         "                    const unsigned char *lo, const unsigned char "
         "*hi) {\n"
         "  const __m256i Lo2 = _mm256_broadcastsi128_si256(\n"
         "      _mm_loadu_si128((const __m128i *)lo));\n"
         "  const __m256i Hi2 = _mm256_broadcastsi128_si256(\n"
         "      _mm_loadu_si128((const __m128i *)hi));\n"
         "  const __m512i Wide = _mm512_set1_epi64(~0xFFll);\n"
         "  const __m256i Nib = _mm256_set1_epi8(0x0F);\n"
         "  const __m256i Zero = _mm256_setzero_si256();\n"
         "  while (i + 32 <= n) {\n"
         "    __m512i A = _mm512_loadu_si512(in + i);\n"
         "    __m512i B = _mm512_loadu_si512(in + i + 8);\n"
         "    __m512i C = _mm512_loadu_si512(in + i + 16);\n"
         "    __m512i D = _mm512_loadu_si512(in + i + 24);\n"
         "    __m512i Or = _mm512_or_si512(_mm512_or_si512(A, B),\n"
         "                                 _mm512_or_si512(C, D));\n"
         "    if (_mm512_test_epi64_mask(Or, Wide)) break;\n"
         "    __m128i B0 = _mm512_cvtepi64_epi8(A);\n"
         "    __m128i B1 = _mm512_cvtepi64_epi8(B);\n"
         "    __m128i B2 = _mm512_cvtepi64_epi8(C);\n"
         "    __m128i B3 = _mm512_cvtepi64_epi8(D);\n"
         "    __m256i Bytes = _mm256_set_m128i(_mm_unpacklo_epi64(B2, "
         "B3),\n"
         "                                     _mm_unpacklo_epi64(B0, "
         "B1));\n"
         "    __m256i Cl = _mm256_and_si256(\n"
         "        _mm256_shuffle_epi8(Lo2, _mm256_and_si256(Bytes, Nib)),\n"
         "        _mm256_shuffle_epi8(Hi2,\n"
         "            _mm256_and_si256(_mm256_srli_epi16(Bytes, 4), "
         "Nib)));\n"
         "    if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(Cl, Zero))) "
         "break;\n"
         "    i += 32;\n"
         "  }\n"
         "  return efc_scan_nib_avx2(in, i, n, lo, hi);\n"
         "}\n"
         "static size_t efc_scan_nib(const uint64_t *in, size_t i, size_t "
         "n,\n"
         "                           const unsigned char *lo,\n"
         "                           const unsigned char *hi) {\n"
         "  const int L = efc_simd_level();\n"
         "  if (L >= 3) return efc_scan_nib_avx512(in, i, n, lo, hi);\n"
         "  if (L >= 2) return efc_scan_nib_avx2(in, i, n, lo, hi);\n"
         "  return i;\n"
         "}\n"
         "#else\n"
         "static inline size_t efc_scan_nib(const uint64_t *, size_t i, "
         "size_t,\n"
         "                                  const unsigned char *,\n"
         "                                  const unsigned char *) {\n"
         "  return i;\n"
         "}\n"
         "#endif\n\n";
  }
  S += U.tables();
  S += "[[maybe_unused]] static const unsigned long long " +
       Opts.FunctionName + "_classifier_hash = " + hex(classifierHash(A)) +
       ";\n\n";
  S += U.function();
  if (Opts.EmitStreaming) {
    S += "\n";
    S += U.streaming();
  }

  if (Opts.EmitMain) {
    S += "\nint main() {\n";
    unsigned Idx = 0;
    for (const CodeGenTestVector &V : Vectors) {
      std::string In = "in" + std::to_string(Idx);
      S += "  {\n    const uint64_t " + In + "[] = {0";
      for (uint64_t X : V.Input)
        S += ", " + hex(X);
      S += "};\n    std::vector<uint64_t> out;\n";
      S += "    bool ok = " + Opts.FunctionName + "(" + In + " + 1, " +
           std::to_string(V.Input.size()) + ", out);\n";
      if (!V.Accepts) {
        S += "    if (ok) return " + std::to_string(Idx + 1) + ";\n";
      } else {
        S += "    if (!ok) return " + std::to_string(Idx + 1) + ";\n";
        S += "    const uint64_t want[] = {0";
        for (uint64_t X : V.Output)
          S += ", " + hex(X);
        S += "};\n    if (out.size() != " + std::to_string(V.Output.size()) +
             ") return " + std::to_string(Idx + 1) + ";\n";
        S += "    for (size_t k = 0; k < out.size(); ++k)\n"
             "      if (out[k] != want[k + 1]) return " +
             std::to_string(Idx + 1) + ";\n";
      }
      S += "  }\n";
      ++Idx;
    }
    S += "  return 0;\n}\n";
  }
  return S;
}

namespace {

/// Structural FNV-1a hasher for the classifier fingerprint.  Variables
/// hash by name and types by shape, never by pointer or interning id, so
/// the result is stable across TermContexts and across processes (it
/// guards the on-disk native-artifact cache).
class ClassifierHasher {
public:
  explicit ClassifierHasher(const TermContext &Ctx) : Ctx(Ctx) {}

  void mix(uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (8 * I)) & 0xff;
      H *= 1099511628211ull;
    }
  }

  uint64_t typeHash(const Type *Ty) {
    auto It = TypeMemo.find(Ty);
    if (It != TypeMemo.end())
      return It->second;
    uint64_t X = fnv(uint64_t(Ty->kind()) + 1);
    if (Ty->isBitVec())
      X = fnv(X ^ Ty->width());
    for (unsigned I = 0; I < Ty->arity(); ++I)
      X = fnv(X ^ typeHash(Ty->elems()[I]));
    TypeMemo.emplace(Ty, X);
    return X;
  }

  uint64_t termHash(TermRef T) {
    auto It = TermMemo.find(T);
    if (It != TermMemo.end())
      return It->second;
    uint64_t X = fnv(uint64_t(T->op()) + 1);
    X = fnv(X ^ typeHash(T->type()));
    if (T->isVar()) {
      for (char C : Ctx.varName(T->varId()))
        X = fnv(X ^ uint8_t(C));
    } else {
      X = fnv(X ^ T->aux());
    }
    for (TermRef O : T->operands())
      X = fnv(X ^ termHash(O));
    TermMemo.emplace(T, X);
    return X;
  }

  void mixRule(const Rule *R) {
    switch (R->kind()) {
    case Rule::Kind::Undef:
      mix(3);
      return;
    case Rule::Kind::Ite:
      mix(1);
      mix(termHash(R->cond()));
      mixRule(R->thenRule().get());
      mixRule(R->elseRule().get());
      return;
    case Rule::Kind::Base:
      mix(2);
      mix(R->outputs().size());
      for (TermRef O : R->outputs())
        mix(termHash(O));
      mix(R->target());
      mix(termHash(R->update()));
      return;
    }
  }

  void mixValue(const Value &V) {
    switch (V.kind()) {
    case TypeKind::Bool:
    case TypeKind::BitVec:
      mix(V.bits());
      return;
    case TypeKind::Unit:
      return;
    case TypeKind::Tuple:
      for (const Value &E : V.elems())
        mixValue(E);
      return;
    }
  }

  uint64_t hash() const { return H; }

private:
  static uint64_t fnv(uint64_t V) {
    uint64_t X = 1469598103934665603ull;
    for (int I = 0; I < 8; ++I) {
      X ^= (V >> (8 * I)) & 0xff;
      X *= 1099511628211ull;
    }
    return X;
  }

  const TermContext &Ctx;
  uint64_t H = 1469598103934665603ull;
  std::unordered_map<const Type *, uint64_t> TypeMemo;
  std::unordered_map<TermRef, uint64_t> TermMemo;
};

} // namespace

uint64_t efc::classifierHash(const Bst &A) {
  ClassifierHasher CH(A.context());
  CH.mix(0xefc0de02ull); // fingerprint format version (02: nibble tables)
  CH.mix(A.numStates());
  CH.mix(A.initialState());
  CH.mix(CH.typeHash(A.inputType()));
  CH.mix(CH.typeHash(A.outputType()));
  CH.mix(CH.typeHash(A.registerType()));
  CH.mixValue(A.initialRegister());
  for (unsigned Q = 0; Q < A.numStates(); ++Q) {
    CH.mixRule(A.delta(Q).get());
    CH.mixRule(A.finalizer(Q).get());
    // The classification artifacts codegen actually bakes into tables,
    // recomputed exactly as UnitEmitter computes them.
    ByteClassTable C = classifyDeltaByteClasses(A, Q);
    CH.mix(C.Eligible);
    CH.mix(C.ValidBytes);
    if (C.Eligible)
      for (unsigned B = 0; B < 256; ++B)
        CH.mix(C.Class[B]);
    for (const RunKernel &RK : classifyRunKernels(A, Q, C)) {
      CH.mix(uint64_t(RK.K) + 1);
      for (uint64_t W : RK.Mask)
        CH.mix(W);
      CH.mix(uint64_t(int64_t(RK.SingleEscape)));
      CH.mix(RK.Emits.size());
      for (uint64_t E : RK.Emits)
        CH.mix(E);
      CH.mix(RK.Writes.size());
      for (auto [Slot, Imm] : RK.Writes) {
        CH.mix(Slot);
        CH.mix(Imm);
      }
      CH.mix(RK.NT.Valid);
      if (RK.NT.Valid)
        for (unsigned J = 0; J < 16; ++J) {
          CH.mix(RK.NT.Lo[J]);
          CH.mix(RK.NT.Hi[J]);
        }
    }
  }
  return CH.hash();
}
