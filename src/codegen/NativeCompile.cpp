//===- codegen/NativeCompile.cpp ------------------------------------------===//

#include "codegen/NativeCompile.h"

#include "codegen/CppCodeGen.h"

#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <unistd.h>

using namespace efc;

NativeTransducer::~NativeTransducer() {
  if (Handle)
    dlclose(Handle);
}

NativeTransducer::NativeTransducer(NativeTransducer &&O) noexcept
    : Handle(O.Handle), Func(O.Func) {
  O.Handle = nullptr;
  O.Func = nullptr;
}

NativeTransducer &NativeTransducer::operator=(NativeTransducer &&O) noexcept {
  if (this != &O) {
    if (Handle)
      dlclose(Handle);
    Handle = O.Handle;
    Func = O.Func;
    O.Handle = nullptr;
    O.Func = nullptr;
  }
  return *this;
}

std::optional<NativeTransducer>
NativeTransducer::compile(const Bst &A, const std::string &Tag,
                          std::string *Error) {
  CodeGenOptions Opts;
  Opts.FunctionName = "efc_impl";
  std::string Source = generateCpp(A, Opts);
  // Exported entry point with a stable name.
  Source += "\nextern \"C\" bool efc_transduce(const uint64_t *in, size_t "
            "n, std::vector<uint64_t> &out) { return efc_impl(in, n, out); "
            "}\n";

  std::string Base = "/tmp/efc_native_" + Tag + "_" +
                     std::to_string(uint64_t(getpid()));
  std::string Src = Base + ".cpp";
  std::string Lib = Base + ".so";
  {
    std::ofstream F(Src);
    F << Source;
  }
  std::string Cmd = "c++ -std=c++17 -O2 -fPIC -shared -o " + Lib + " " +
                    Src + " 2>" + Base + ".log";
  if (std::system(Cmd.c_str()) != 0) {
    if (Error)
      *Error = "native compilation failed; see " + Base + ".log";
    return std::nullopt;
  }

  NativeTransducer T;
  T.Handle = dlopen(Lib.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!T.Handle) {
    if (Error)
      *Error = std::string("dlopen: ") + dlerror();
    return std::nullopt;
  }
  T.Func = reinterpret_cast<Fn>(dlsym(T.Handle, "efc_transduce"));
  if (!T.Func) {
    if (Error)
      *Error = "missing efc_transduce symbol";
    return std::nullopt;
  }
  return T;
}

std::optional<std::vector<uint64_t>>
NativeTransducer::run(const uint64_t *In, size_t N) const {
  std::vector<uint64_t> Out;
  if (!Func(In, N, Out))
    return std::nullopt;
  return Out;
}
