//===- codegen/NativeCompile.cpp ------------------------------------------===//

#include "codegen/NativeCompile.h"

#include "codegen/CppCodeGen.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"
#include "support/Trace.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace efc;

namespace {

/// FNV-1a over the generated source: the artifact cache key.  Two
/// pipelines whose generated units are identical share one .so.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string hex16(uint64_t V) {
  char Buf[24];
  snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

/// mkdir -p: creates every missing component; existing directories are
/// fine.  Returns false only when a component cannot be created.
bool makeDirs(const std::string &Path) {
  std::string Cur;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I < Path.size() && Path[I] != '/') {
      Cur.push_back(Path[I]);
      continue;
    }
    if (I < Path.size())
      Cur.push_back('/');
    if (Cur.empty() || Cur == "/")
      continue;
    if (mkdir(Cur.c_str(), 0755) != 0 && errno != EEXIST)
      return false;
  }
  return true;
}

std::string sanitizeTag(const std::string &Tag) {
  std::string S;
  for (char C : Tag)
    S.push_back(isalnum((unsigned char)C) ? C : '_');
  if (S.size() > 48)
    S.resize(48);
  return S.empty() ? std::string("t") : S;
}

std::string readFile(const std::string &Path) {
  std::ifstream F(Path);
  std::ostringstream Buf;
  Buf << F.rdbuf();
  return Buf.str();
}

} // namespace

NativeTransducer::~NativeTransducer() {
  if (Handle)
    dlclose(Handle);
}

NativeTransducer::NativeTransducer(NativeTransducer &&O) noexcept
    : Handle(O.Handle), Func(O.Func), WordsFn(O.WordsFn), InitFn(O.InitFn),
      FeedFn(O.FeedFn), FinishFn(O.FinishFn),
      ClassifierHash(O.ClassifierHash) {
  O.Handle = nullptr;
  O.Func = nullptr;
  O.WordsFn = nullptr;
  O.InitFn = nullptr;
  O.FeedFn = nullptr;
  O.FinishFn = nullptr;
  O.ClassifierHash = 0;
}

NativeTransducer &NativeTransducer::operator=(NativeTransducer &&O) noexcept {
  if (this != &O) {
    if (Handle)
      dlclose(Handle);
    Handle = O.Handle;
    Func = O.Func;
    WordsFn = O.WordsFn;
    InitFn = O.InitFn;
    FeedFn = O.FeedFn;
    FinishFn = O.FinishFn;
    ClassifierHash = O.ClassifierHash;
    O.Handle = nullptr;
    O.Func = nullptr;
    O.WordsFn = nullptr;
    O.InitFn = nullptr;
    O.FeedFn = nullptr;
    O.FinishFn = nullptr;
    O.ClassifierHash = 0;
  }
  return *this;
}

std::string NativeTransducer::cacheDir() {
  const char *E = std::getenv("EFC_CACHE_DIR");
  std::string Dir = E && *E ? E : ".efc-cache";
  makeDirs(Dir);
  return Dir;
}

namespace {

struct NativeMetrics {
  metrics::Counter &Compiles;
  metrics::Counter &Failures;
  metrics::Counter &DiskHits;
  metrics::DoubleCounter &Seconds;
  static NativeMetrics &get() {
    namespace mx = metrics;
    static NativeMetrics M{
        mx::Registry::instance().counter("efc_native_compiles_total",
                                         "Host-compiler invocations"),
        mx::Registry::instance().counter("efc_native_compile_failures_total",
                                         "Native compile/load failures"),
        mx::Registry::instance().counter(
            "efc_native_disk_hits_total",
            "Compiles satisfied by the on-disk artifact cache"),
        mx::Registry::instance().dcounter("efc_native_compile_seconds_total",
                                          "Host-compiler wall time")};
    return M;
  }
};

} // namespace

std::optional<NativeTransducer>
NativeTransducer::compile(const Bst &A, const std::string &Tag,
                          std::string *Error, NativeCompileInfo *Info) {
  trace::Span NativeSp("native");
  CodeGenOptions Opts;
  Opts.FunctionName = "efc_impl";
  Opts.EmitStreaming = true;
  std::string Source;
  {
    trace::Span CgSp("codegen");
    Source = generateCpp(A, Opts);
    CgSp.note("bytes", (uint64_t)Source.size());
  }
  // Exported entry points with stable names.
  Source +=
      "\nextern \"C\" bool efc_transduce(const uint64_t *in, size_t "
      "n, std::vector<uint64_t> &out) { return efc_impl(in, n, out); }\n"
      "extern \"C\" size_t efc_stream_state_words() { return "
      "efc_impl_state_words; }\n"
      "extern \"C\" void efc_stream_init(uint64_t *st) { efc_impl_init(st); "
      "}\n"
      "extern \"C\" bool efc_stream_feed(uint64_t *st, const uint64_t *in, "
      "size_t n, std::vector<uint64_t> &out) { return efc_impl_feed(st, in, "
      "n, out); }\n"
      "extern \"C\" bool efc_stream_finish(uint64_t *st, "
      "std::vector<uint64_t> &out) { return efc_impl_finish(st, out); }\n"
      "extern \"C\" unsigned long long efc_classifier_hash() { return "
      "efc_impl_classifier_hash; }\n";
  // The certification anchor: the .so re-exports the classifier hash baked
  // into its source, and tryLoad below rejects a cached artifact whose
  // exported hash disagrees with the hash of this Bst — "what was
  // certified" and "what got loaded" are tied structurally, not just by
  // file name.
  uint64_t WantHash = ::efc::classifierHash(A);

  std::string Lib = cacheDir() + "/efc_" + sanitizeTag(Tag) + "_" +
                    hex16(fnv1a(Source)) + ".so";
  if (Info) {
    *Info = NativeCompileInfo();
    Info->SoPath = Lib;
  }

  auto tryLoad = [&](std::string *Err) -> std::optional<NativeTransducer> {
    NativeTransducer T;
    T.Handle = dlopen(Lib.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!T.Handle) {
      if (Err)
        *Err = std::string("dlopen: ") + dlerror();
      return std::nullopt;
    }
    T.Func = reinterpret_cast<Fn>(dlsym(T.Handle, "efc_transduce"));
    if (!T.Func) {
      if (Err)
        *Err = "missing efc_transduce symbol";
      return std::nullopt;
    }
    T.WordsFn =
        reinterpret_cast<WordsFnTy>(dlsym(T.Handle, "efc_stream_state_words"));
    T.InitFn = reinterpret_cast<InitFnTy>(dlsym(T.Handle, "efc_stream_init"));
    T.FeedFn = reinterpret_cast<FeedFnTy>(dlsym(T.Handle, "efc_stream_feed"));
    T.FinishFn =
        reinterpret_cast<FinishFnTy>(dlsym(T.Handle, "efc_stream_finish"));
    if (auto HashFn = reinterpret_cast<HashFnTy>(
            dlsym(T.Handle, "efc_classifier_hash"))) {
      T.ClassifierHash = HashFn();
      if (T.ClassifierHash != WantHash) {
        if (Err)
          *Err = "cached artifact classifier hash mismatch (stale .so)";
        return std::nullopt;
      }
    }
    return T;
  };

  // Artifact cache probe: same source hash → same semantics, load the
  // existing .so without touching the compiler.  A stale or corrupt
  // artifact falls through to a fresh compile.
  if (access(Lib.c_str(), R_OK) == 0) {
    std::string LoadErr;
    if (auto T = tryLoad(&LoadErr)) {
      if (Info)
        Info->DiskCacheHit = true;
      NativeMetrics::get().DiskHits.inc();
      NativeSp.note("disk_cache_hit", (uint64_t)1);
      return T;
    }
    unlink(Lib.c_str());
  }

  // Unique temporaries next to the final artifact; the publish is an
  // atomic rename so concurrent compiles of the same spec are safe.
  std::string Uniq = std::to_string(uint64_t(getpid()));
  std::string Src = Lib + "." + Uniq + ".cpp";
  std::string Tmp = Lib + "." + Uniq + ".tmp";
  std::string Log = Lib + "." + Uniq + ".log";
  auto Cleanup = [&] {
    unlink(Src.c_str());
    unlink(Tmp.c_str());
    unlink(Log.c_str());
  };
  // All failure modes from here on are environmental (toolchain missing,
  // disk full, cc OOM, dlopen): the generated source is machine-produced
  // and compiles whenever the toolchain works.  Mark them Transient so
  // callers retry instead of negative-caching the spec forever.
  auto Fail = [&] {
    if (Info)
      Info->Transient = true;
    NativeMetrics::get().Failures.inc();
    return std::nullopt;
  };
  {
    std::ofstream F(Src);
    if (!F) {
      if (Error)
        *Error = "cannot write " + Src;
      return Fail();
    }
    F << Source;
  }
  // EFC_CXX overrides the host compiler (also the lever regression tests
  // use to simulate a transient toolchain outage).
  const char *Cxx = std::getenv("EFC_CXX");
  std::string Cmd = std::string(Cxx && *Cxx ? Cxx : "c++") +
                    " -std=c++17 -O2 -fPIC -shared -o " + Tmp + " " + Src +
                    " 2>" + Log;
  Stopwatch Compile;
  {
    trace::Span CcSp("cc");
    if (std::system(Cmd.c_str()) != 0) {
      if (Error) {
        std::string Diag = readFile(Log);
        if (Diag.size() > 2000)
          Diag.resize(2000);
        *Error = "native compilation failed: " + Diag;
      }
      Cleanup();
      return Fail();
    }
    CcSp.note("ms", Compile.millis());
  }
  if (Info)
    Info->CompileMs = Compile.millis();
  NativeMetrics::get().Compiles.inc();
  NativeMetrics::get().Seconds.add(Compile.seconds());
  if (rename(Tmp.c_str(), Lib.c_str()) != 0) {
    if (Error)
      *Error = "cannot publish " + Lib;
    Cleanup();
    return Fail();
  }
  Cleanup();

  std::string LoadErr;
  trace::Span DlSp("dlopen");
  auto T = tryLoad(&LoadErr);
  if (!T) {
    if (Error)
      *Error = LoadErr;
    return Fail();
  }
  return T;
}

std::optional<std::vector<uint64_t>>
NativeTransducer::run(const uint64_t *In, size_t N) const {
  std::vector<uint64_t> Out;
  if (!Func(In, N, Out))
    return std::nullopt;
  return Out;
}
