//===- codegen/NativeCompile.h - Runtime-compiled transducers ---*- C++ -*-===//
///
/// \file
/// The paper's actual deployment story: the tool generates source code
/// for the fused transducer and compiles it ahead of time (C# + NGen in
/// the paper).  Here, the generated C++ is compiled with the host
/// compiler into a shared object and loaded with dlopen, yielding a
/// native function with the same semantics as the BST.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_CODEGEN_NATIVECOMPILE_H
#define EFC_CODEGEN_NATIVECOMPILE_H

#include "bst/Bst.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace efc {

/// A natively compiled transducer loaded from a shared object.
class NativeTransducer {
public:
  ~NativeTransducer();
  NativeTransducer(NativeTransducer &&) noexcept;
  NativeTransducer &operator=(NativeTransducer &&) noexcept;

  /// Generates C++ for \p A, compiles it (host `c++ -O2 -shared`), and
  /// loads it.  Returns std::nullopt when no compiler is available or
  /// compilation fails (diagnostics in \p Error when non-null).
  static std::optional<NativeTransducer>
  compile(const Bst &A, const std::string &Tag, std::string *Error = nullptr);

  /// Runs the transduction; std::nullopt when the input is rejected.
  std::optional<std::vector<uint64_t>>
  run(const uint64_t *In, size_t N) const;
  std::optional<std::vector<uint64_t>>
  run(const std::vector<uint64_t> &In) const {
    return run(In.data(), In.size());
  }

private:
  NativeTransducer() = default;
  void *Handle = nullptr;
  using Fn = bool (*)(const uint64_t *, size_t, std::vector<uint64_t> &);
  Fn Func = nullptr;
};

} // namespace efc

#endif // EFC_CODEGEN_NATIVECOMPILE_H
