//===- codegen/NativeCompile.h - Runtime-compiled transducers ---*- C++ -*-===//
///
/// \file
/// The paper's actual deployment story: the tool generates source code
/// for the fused transducer and compiles it ahead of time (C# + NGen in
/// the paper).  Here, the generated C++ is compiled with the host
/// compiler into a shared object and loaded with dlopen, yielding a
/// native function with the same semantics as the BST.
///
/// Compiled artifacts are cached on disk keyed by a content hash of the
/// generated source, so re-compiling the same pipeline reloads the .so
/// without invoking the host compiler (see cacheDir()).  Every unit also
/// exports the streaming suspend/resume entry points used by the runtime
/// subsystem (runtime/StreamSession.h).
///
//===----------------------------------------------------------------------===//

#ifndef EFC_CODEGEN_NATIVECOMPILE_H
#define EFC_CODEGEN_NATIVECOMPILE_H

#include "bst/Bst.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace efc {

/// How a NativeTransducer::compile call was satisfied.
struct NativeCompileInfo {
  /// The .so came out of the on-disk artifact cache; the host compiler
  /// was not invoked.
  bool DiskCacheHit = false;
  /// Host compiler wall time in milliseconds (0 on a disk cache hit).
  double CompileMs = 0;
  /// Path of the cached shared object.
  std::string SoPath;
  /// On failure: the failure is an environment problem (no compiler, disk
  /// full, cc OOM, dlopen) that a later retry may clear — as opposed to a
  /// deterministic property of the spec.  Every failure mode of this
  /// backend is environmental: the generated source itself is
  /// machine-produced and compiles whenever the toolchain works, so
  /// callers should only negative-cache these with a retry budget.
  bool Transient = false;
};

/// A natively compiled transducer loaded from a shared object.
class NativeTransducer {
public:
  ~NativeTransducer();
  NativeTransducer(NativeTransducer &&) noexcept;
  NativeTransducer &operator=(NativeTransducer &&) noexcept;

  /// Generates C++ for \p A and loads the corresponding shared object,
  /// either from the artifact cache or by compiling it (host
  /// `c++ -O2 -shared`; override the compiler with EFC_CXX).  Returns
  /// std::nullopt when no compiler is available or compilation fails
  /// (diagnostics in \p Error when non-null); temporary files are removed
  /// on every path.
  static std::optional<NativeTransducer>
  compile(const Bst &A, const std::string &Tag, std::string *Error = nullptr,
          NativeCompileInfo *Info = nullptr);

  /// Artifact cache directory: the EFC_CACHE_DIR environment variable
  /// when set, ".efc-cache" otherwise.  Created on demand.
  static std::string cacheDir();

  /// Runs the transduction; std::nullopt when the input is rejected.
  std::optional<std::vector<uint64_t>>
  run(const uint64_t *In, size_t N) const;
  std::optional<std::vector<uint64_t>>
  run(const std::vector<uint64_t> &In) const {
    return run(In.data(), In.size());
  }

  /// Suspend/resume execution (generated *_feed/*_finish entry points).
  /// A state block of stateWords() uint64s persists the control state and
  /// registers across feed calls; chunked feeding over any boundaries is
  /// byte-identical to one run().  All four symbols are exported by every
  /// freshly generated unit; streamingAvailable() guards artifacts built
  /// before streaming existed.
  bool streamingAvailable() const { return InitFn && FeedFn && FinishFn; }
  size_t stateWords() const { return WordsFn ? WordsFn() : 0; }
  void streamInit(uint64_t *St) const { InitFn(St); }
  bool streamFeed(uint64_t *St, const uint64_t *In, size_t N,
                  std::vector<uint64_t> &Out) const {
    return FeedFn(St, In, N, Out);
  }
  bool streamFinish(uint64_t *St, std::vector<uint64_t> &Out) const {
    return FinishFn(St, Out);
  }

  /// Classifier hash the loaded unit was generated from (see
  /// codegen/CppCodeGen.h classifierHash).  compile() refuses to reuse a
  /// cached artifact whose exported hash disagrees with the hash of the
  /// requesting Bst, so a loaded transducer always matches the IR that
  /// certification (verify/EquivChecker.h) ran on.  0 for artifacts built
  /// before the hash existed.
  uint64_t classifierHash() const { return ClassifierHash; }

private:
  NativeTransducer() = default;
  void *Handle = nullptr;
  using Fn = bool (*)(const uint64_t *, size_t, std::vector<uint64_t> &);
  using WordsFnTy = size_t (*)();
  using InitFnTy = void (*)(uint64_t *);
  using FeedFnTy = bool (*)(uint64_t *, const uint64_t *, size_t,
                            std::vector<uint64_t> &);
  using FinishFnTy = bool (*)(uint64_t *, std::vector<uint64_t> &);
  using HashFnTy = uint64_t (*)();
  Fn Func = nullptr;
  WordsFnTy WordsFn = nullptr;
  InitFnTy InitFn = nullptr;
  FeedFnTy FeedFn = nullptr;
  FinishFnTy FinishFn = nullptr;
  uint64_t ClassifierHash = 0;
};

} // namespace efc

#endif // EFC_CODEGEN_NATIVECOMPILE_H
