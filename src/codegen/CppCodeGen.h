//===- codegen/CppCodeGen.h - C++ source generation from BSTs ---*- C++ -*-===//
///
/// \file
/// Serial code generation as described in paper §6: for each control state
/// a labeled code block implements its transition rule as a tree of
/// if/else statements whose leaves emit outputs, update register fields
/// and jump (goto) to the target state's block.  The generated unit is
/// self-contained C++17 operating on uint64_t elements.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_CODEGEN_CPPCODEGEN_H
#define EFC_CODEGEN_CPPCODEGEN_H

#include "bst/Bst.h"

#include <string>
#include <vector>

namespace efc {

/// Options for the generated unit.
struct CodeGenOptions {
  /// Name of the generated function.
  std::string FunctionName = "transduce";
  /// Also emit a main() that checks embedded test vectors and returns 0
  /// on success (used by the self-check test which compiles and runs the
  /// generated code with the host compiler).
  bool EmitMain = false;
  /// Also emit the suspend/resume entry points used by the streaming
  /// runtime (StreamSession):
  ///
  ///   <name>_state_words          constant: control state + register leaves
  ///   <name>_init(uint64_t *st)   resets st to the initial configuration
  ///   <name>_feed(st, in, n, out) consumes a chunk, suspends at its end
  ///   <name>_finish(st, out)      runs the finalizer of the saved state
  ///
  /// The state block persists the control state (st[0]) and every register
  /// leaf (st[1..]) across calls, so feeding a split input chunk by chunk
  /// is byte-identical to one <name>(in, n, out) call over the whole
  /// input.  feed/finish return false on rejection.
  bool EmitStreaming = false;
  /// Emit bulk run loops for self-loop byte classes (the same kernels the
  /// VM fast path drives; see vm/FastPath.h RunKernel).  Off only for A/B
  /// measurement — generated code stays semantically identical either way.
  bool RunAccel = true;
};

/// One embedded test vector for EmitMain.
struct CodeGenTestVector {
  std::vector<uint64_t> Input;
  bool Accepts = true;
  std::vector<uint64_t> Output; // checked only when Accepts
};

/// Generates a self-contained C++ translation unit implementing ⟦A⟧ as
///   bool <name>(const uint64_t *in, size_t n, std::vector<uint64_t> &out)
/// returning false on rejection.  Input and output types must be scalar.
std::string generateCpp(const Bst &A, const CodeGenOptions &Opts = {},
                        const std::vector<CodeGenTestVector> &Vectors = {});

/// Context- and process-independent fingerprint of everything code
/// generation derives from \p A: the structural rule trees, state/register
/// layout, initial configuration, and the byte-class tables and run
/// kernels recomputed by classifyDeltaByteClasses / classifyRunKernels.
/// generateCpp embeds it in the emitted source as
/// `<name>_classifier_hash`, NativeCompile re-exports it from the shared
/// object and re-checks it at dlopen, and the equivalence checker
/// (verify/EquivChecker.h) recomputes it from the certified BST — tying
/// "what was certified" to "what was compiled" structurally.  Variables
/// hash by name, types by shape, so the value is stable across
/// TermContexts and across processes (it guards the on-disk .so cache).
uint64_t classifierHash(const Bst &A);

} // namespace efc

#endif // EFC_CODEGEN_CPPCODEGEN_H
