//===- data/Datasets.cpp --------------------------------------------------===//

#include "data/Datasets.h"

#include "stdlib/Reference.h"

#include <cstring>

using namespace efc;

namespace {

const char *const Words[] = {
    "the",    "whale",  "sea",     "ship",    "captain", "white",  "man",
    "water",  "time",   "hand",    "head",    "world",   "way",    "day",
    "boat",   "old",    "great",   "long",    "last",    "deck",   "side",
    "night",  "sperm",  "air",     "eye",     "life",    "crew",   "wind",
    "sail",   "harpoon","voyage",  "ocean",   "mast",    "rope",   "wave",
    "storm",  "quiet",  "deep",    "bone",    "oil"};
constexpr size_t NumWords = sizeof(Words) / sizeof(Words[0]);

/// Short alphanumeric token without commas/newlines.
void appendToken(SplitMix64 &Rng, std::string &Out) {
  size_t N = 2 + Rng.below(8);
  for (size_t I = 0; I < N; ++I) {
    uint64_t K = Rng.below(36);
    Out.push_back(K < 26 ? char('a' + K) : char('0' + (K - 26)));
  }
}

void appendUInt(uint64_t V, std::string &Out) {
  char Buf[24];
  int N = snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
  Out.append(Buf, size_t(N));
}

} // namespace

std::string data::makeCsv(uint64_t Seed, size_t ApproxBytes,
                          unsigned Columns, unsigned IntColumn,
                          uint32_t MaxValue) {
  SplitMix64 Rng(Seed);
  std::string Out;
  Out.reserve(ApproxBytes + 256);
  while (Out.size() < ApproxBytes) {
    for (unsigned C = 0; C < Columns; ++C) {
      if (C == IntColumn)
        appendUInt(Rng.below(uint64_t(MaxValue) + 1), Out);
      else
        appendToken(Rng, Out);
      Out.push_back(C + 1 == Columns ? '\n' : ',');
    }
  }
  return Out;
}

std::string data::makeChsiCsv(uint64_t Seed, size_t ApproxBytes,
                              unsigned IntColumn) {
  return makeCsv(Seed, ApproxBytes, /*Columns=*/10, IntColumn,
                 /*MaxValue=*/500000);
}

std::string data::makeSboCsv(uint64_t Seed, size_t ApproxBytes,
                             unsigned IntColumn) {
  // 9 columns so the deepest queried column (payroll, index 7) still has
  // a trailing comma-separated column after it.
  return makeCsv(Seed, ApproxBytes, /*Columns=*/9, IntColumn,
                 /*MaxValue=*/90000000);
}

std::string data::makeCcCsv(uint64_t Seed, size_t ApproxBytes) {
  // Complaint id in column 0, many text columns.
  return makeCsv(Seed, ApproxBytes, /*Columns=*/18, /*IntColumn=*/0,
                 /*MaxValue=*/4000000);
}

//===----------------------------------------------------------------------===
// XML
//===----------------------------------------------------------------------===

std::string data::makeTpcDiXml(uint64_t Seed, size_t ApproxBytes) {
  SplitMix64 Rng(Seed);
  std::string Out = "<?xml version='1.0'?><customers>";
  Out.reserve(ApproxBytes + 512);
  while (Out.size() < ApproxBytes) {
    Out += "<customer id='";
    appendUInt(Rng.below(1000000), Out);
    Out += "'><name>";
    appendToken(Rng, Out);
    Out += "</name><address><city>";
    appendToken(Rng, Out);
    Out += "</city><zip>";
    appendUInt(10000 + Rng.below(90000), Out);
    Out += "</zip></address><account>";
    appendUInt(Rng.below(100000000), Out);
    Out += "</account><phone>";
    appendUInt(Rng.below(10000000), Out);
    Out += "</phone></customer>";
  }
  Out += "</customers>";
  return Out;
}

std::string data::makePirXml(uint64_t Seed, size_t ApproxBytes) {
  SplitMix64 Rng(Seed);
  std::string Out = "<proteins>";
  Out.reserve(ApproxBytes + 512);
  const char *Acids = "ACDEFGHIKLMNPQRSTVWY";
  while (Out.size() < ApproxBytes) {
    size_t SeqLen = 40 + Rng.below(400);
    Out += "<protein><header><id>PIR";
    appendUInt(Rng.below(1000000), Out);
    Out += "</id><organism>";
    appendToken(Rng, Out);
    Out += "</organism></header><sequence>";
    for (size_t I = 0; I < SeqLen; ++I)
      Out.push_back(Acids[Rng.below(20)]);
    Out += "</sequence><length>";
    appendUInt(SeqLen, Out);
    Out += "</length></protein>";
  }
  Out += "</proteins>";
  return Out;
}

std::string data::makeDblpXml(uint64_t Seed, size_t ApproxBytes) {
  SplitMix64 Rng(Seed);
  std::string Out = "<dblp>";
  Out.reserve(ApproxBytes + 512);
  while (Out.size() < ApproxBytes) {
    Out += "<article key='journals/";
    appendToken(Rng, Out);
    Out += "'><author>";
    appendToken(Rng, Out);
    Out += " ";
    appendToken(Rng, Out);
    Out += "</author><title>";
    for (int W = 0; W < 6; ++W) {
      Out += Words[Rng.below(NumWords)];
      Out.push_back(W == 5 ? '.' : ' ');
    }
    Out += "</title><year>";
    appendUInt(1950 + Rng.below(75), Out);
    Out += "</year><journal>";
    appendToken(Rng, Out);
    Out += "</journal></article>";
  }
  Out += "</dblp>";
  return Out;
}

std::string data::makeMondialXml(uint64_t Seed, size_t ApproxBytes) {
  SplitMix64 Rng(Seed);
  std::string Out = "<mondial>";
  Out.reserve(ApproxBytes + 512);
  while (Out.size() < ApproxBytes) {
    Out += "<country name='";
    appendToken(Rng, Out);
    Out += "'>";
    size_t Cities = 1 + Rng.below(6);
    for (size_t C = 0; C < Cities; ++C) {
      Out += "<city><name>";
      appendToken(Rng, Out);
      Out += "</name><population>";
      appendUInt(Rng.below(30000000), Out);
      Out += "</population><located><latitude>";
      appendUInt(Rng.below(90), Out);
      Out += "</latitude></located></city>";
    }
    Out += "<gdp>";
    appendUInt(Rng.below(1000000), Out);
    Out += "</gdp></country>";
  }
  Out += "</mondial>";
  return Out;
}

//===----------------------------------------------------------------------===
// Text
//===----------------------------------------------------------------------===

std::string data::makeEnglishText(uint64_t Seed, size_t ApproxBytes) {
  SplitMix64 Rng(Seed);
  std::string Out;
  Out.reserve(ApproxBytes + 64);
  size_t LineLen = 0;
  while (Out.size() < ApproxBytes) {
    const char *W = Words[Rng.below(NumWords)];
    Out += W;
    LineLen += strlen(W) + 1;
    if (LineLen > 60 + Rng.below(20)) {
      Out.push_back('\n');
      LineLen = 0;
    } else {
      Out.push_back(Rng.below(12) ? ' ' : ',');
    }
  }
  Out.push_back('\n');
  return Out;
}

std::u16string data::makeChineseText(uint64_t Seed, size_t ApproxChars) {
  SplitMix64 Rng(Seed);
  std::u16string Out;
  Out.reserve(ApproxChars + 16);
  while (Out.size() < ApproxChars) {
    // CJK Unified Ideographs block.
    Out.push_back(char16_t(0x4E00 + Rng.below(0x51A5)));
    if (Rng.below(18) == 0)
      Out.push_back(u'\x3002'); // ideographic full stop
    if (Rng.below(40) == 0)
      Out.push_back(u'\n');
  }
  return Out;
}

std::u16string data::makeRandomUtf16(uint64_t Seed, size_t Chars,
                                     bool IncludeSurrogates) {
  SplitMix64 Rng(Seed);
  std::u16string Out;
  Out.reserve(Chars);
  while (Out.size() < Chars) {
    uint16_t C = uint16_t(Rng.below(0x10000));
    if (!IncludeSurrogates && C >= 0xD800 && C <= 0xDFFF)
      C = uint16_t(C - 0xD800 + 0x400);
    Out.push_back(char16_t(C));
  }
  return Out;
}

//===----------------------------------------------------------------------===
// Base64 streams
//===----------------------------------------------------------------------===

std::vector<uint32_t> data::base64IntsPayload(uint64_t Seed, size_t Count,
                                              uint32_t MaxValue) {
  SplitMix64 Rng(Seed);
  std::vector<uint32_t> Out;
  Out.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Out.push_back(uint32_t(Rng.below(uint64_t(MaxValue) + 1)));
  return Out;
}

std::string data::makeBase64Ints(uint64_t Seed, size_t Count,
                                 uint32_t MaxValue) {
  std::vector<uint32_t> Ints = base64IntsPayload(Seed, Count, MaxValue);
  std::string Raw;
  Raw.reserve(Ints.size() * 4);
  for (uint32_t V : Ints) {
    Raw.push_back(char(V & 0xFF));
    Raw.push_back(char((V >> 8) & 0xFF));
    Raw.push_back(char((V >> 16) & 0xFF));
    Raw.push_back(char((V >> 24) & 0xFF));
  }
  return ref::base64Encode(Raw);
}
