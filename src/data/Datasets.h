//===- data/Datasets.h - Synthetic benchmark datasets -----------*- C++ -*-===//
///
/// \file
/// Deterministic synthetic stand-ins for the paper's evaluation datasets
/// (see DESIGN.md, Substitutions).  Each generator reproduces the schema
/// and value distributions the pipelines actually observe:
///
///  * CSV: CHSI health indicators, SBO business owners, CC consumer
///    complaints — column counts, digit columns at the queried positions,
///    free-text elsewhere.
///  * XML: TPC-DI customers, PIR protein entries, DBLP articles, MONDIAL
///    cities — nesting structure with the queried tag paths.
///  * Text: English-like prose (word sampling with newlines, "Moby Dick"
///    stand-in), Chinese text (CJK range, "Three Kingdoms" stand-in),
///    uniform random chars.
///  * Base64 streams of serialized 32-bit integers.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_DATA_DATASETS_H
#define EFC_DATA_DATASETS_H

#include "support/Stopwatch.h"

#include <cstdint>
#include <string>
#include <vector>

namespace efc::data {

/// CSV with \p Columns columns; the 0-based \p IntColumn holds decimal
/// integers in [0, MaxValue]; other columns are short alphanumeric text
/// free of commas and newlines.  Returns ASCII text of roughly
/// \p ApproxBytes bytes.
std::string makeCsv(uint64_t Seed, size_t ApproxBytes, unsigned Columns,
                    unsigned IntColumn, uint32_t MaxValue);

/// The CHSI-style health-indicator table: 10 columns, column 3 (deaths),
/// column 5 (births), column 7 (lung cancer) are integer-valued; the
/// generator exposes the requested one at \p IntColumn.
std::string makeChsiCsv(uint64_t Seed, size_t ApproxBytes,
                        unsigned IntColumn);

/// SBO-style business-owner table: 8 columns, integer employees /
/// receipts / payroll at columns 5, 6, 7.
std::string makeSboCsv(uint64_t Seed, size_t ApproxBytes,
                       unsigned IntColumn);

/// CC-style consumer complaints: 18 columns, integer complaint id at
/// column 0, longer free-text columns.
std::string makeCcCsv(uint64_t Seed, size_t ApproxBytes);

/// XML documents.  All return ASCII text.
std::string makeTpcDiXml(uint64_t Seed, size_t ApproxBytes);   // /customers/customer/account
std::string makePirXml(uint64_t Seed, size_t ApproxBytes);     // /proteins/protein/length
std::string makeDblpXml(uint64_t Seed, size_t ApproxBytes);    // /dblp/article/year
std::string makeMondialXml(uint64_t Seed, size_t ApproxBytes); // /mondial/country/city/population

/// English-like prose with newlines (UTF-8 == ASCII here).
std::string makeEnglishText(uint64_t Seed, size_t ApproxBytes);

/// Chinese-like text: CJK ideographs with occasional ASCII punctuation,
/// returned as UTF-16 code units.
std::u16string makeChineseText(uint64_t Seed, size_t ApproxChars);

/// Uniform random UTF-16 code units, surrogates excluded unless
/// \p IncludeSurrogates (Figure 13's Random dataset repairs them).
std::u16string makeRandomUtf16(uint64_t Seed, size_t Chars,
                               bool IncludeSurrogates);

/// Base64 text encoding \p Count serialized little-endian 32-bit ints.
std::string makeBase64Ints(uint64_t Seed, size_t Count, uint32_t MaxValue);

/// The raw integers that makeBase64Ints(Seed, Count, MaxValue) encodes
/// (for computing expected results).
std::vector<uint32_t> base64IntsPayload(uint64_t Seed, size_t Count,
                                        uint32_t MaxValue);

} // namespace efc::data

#endif // EFC_DATA_DATASETS_H
