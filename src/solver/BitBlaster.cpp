//===- solver/BitBlaster.cpp ----------------------------------------------===//

#include "solver/BitBlaster.h"

using namespace efc;
using sat::Lit;

BitBlaster::BitBlaster(TermContext &Ctx, sat::SatSolver &S) : Ctx(Ctx), S(S) {
  True = sat::mkLit(S.newVar());
  S.addUnit(True);
}

Lit BitBlaster::freshLit() { return sat::mkLit(S.newVar()); }

//===----------------------------------------------------------------------===
// Gates
//===----------------------------------------------------------------------===

Lit BitBlaster::gateAnd(Lit A, Lit B) {
  if (litIsFalse(A) || litIsFalse(B))
    return litConst(false);
  if (litIsTrue(A))
    return B;
  if (litIsTrue(B))
    return A;
  if (A == B)
    return A;
  if (A == ~B)
    return litConst(false);
  Lit G = freshLit();
  S.addBinary(~G, A);
  S.addBinary(~G, B);
  S.addTernary(G, ~A, ~B);
  return G;
}

Lit BitBlaster::gateOr(Lit A, Lit B) { return ~gateAnd(~A, ~B); }

Lit BitBlaster::gateXor(Lit A, Lit B) {
  if (litIsFalse(A))
    return B;
  if (litIsFalse(B))
    return A;
  if (litIsTrue(A))
    return ~B;
  if (litIsTrue(B))
    return ~A;
  if (A == B)
    return litConst(false);
  if (A == ~B)
    return litConst(true);
  Lit G = freshLit();
  S.addTernary(~G, A, B);
  S.addTernary(~G, ~A, ~B);
  S.addTernary(G, ~A, B);
  S.addTernary(G, A, ~B);
  return G;
}

Lit BitBlaster::gateIte(Lit C, Lit T, Lit E) {
  if (litIsTrue(C))
    return T;
  if (litIsFalse(C))
    return E;
  if (T == E)
    return T;
  if (litIsTrue(T))
    return gateOr(C, E);
  if (litIsFalse(T))
    return gateAnd(~C, E);
  if (litIsTrue(E))
    return gateOr(~C, T);
  if (litIsFalse(E))
    return gateAnd(C, T);
  if (T == ~E)
    return gateXor(~C, T) /* C ? T : ~T  ==  C xnor T */;
  Lit G = freshLit();
  S.addTernary(~G, ~C, T);
  S.addTernary(~G, C, E);
  S.addTernary(G, ~C, ~T);
  S.addTernary(G, C, ~E);
  return G;
}

Lit BitBlaster::gateAndMany(const std::vector<Lit> &Ls) {
  Lit Acc = litConst(true);
  for (Lit L : Ls)
    Acc = gateAnd(Acc, L);
  return Acc;
}

//===----------------------------------------------------------------------===
// Circuits
//===----------------------------------------------------------------------===

std::vector<Lit> BitBlaster::adder(const std::vector<Lit> &A,
                                   const std::vector<Lit> &B, Lit Cin) {
  assert(A.size() == B.size());
  std::vector<Lit> Sum(A.size(), Lit{});
  Lit C = Cin;
  for (size_t I = 0; I < A.size(); ++I) {
    Lit AxB = gateXor(A[I], B[I]);
    Sum[I] = gateXor(AxB, C);
    // Carry-out: majority(a, b, c) = (a & b) | (c & (a ^ b)).
    C = gateOr(gateAnd(A[I], B[I]), gateAnd(C, AxB));
  }
  return Sum;
}

std::vector<Lit> BitBlaster::negate(const std::vector<Lit> &A) {
  std::vector<Lit> NotA(A.size(), Lit{});
  for (size_t I = 0; I < A.size(); ++I)
    NotA[I] = ~A[I];
  std::vector<Lit> Zero(A.size(), litConst(false));
  return adder(NotA, Zero, litConst(true));
}

std::vector<Lit> BitBlaster::multiplier(const std::vector<Lit> &A,
                                        const std::vector<Lit> &B) {
  size_t W = A.size();
  std::vector<Lit> Acc(W, litConst(false));
  for (size_t I = 0; I < W; ++I) {
    if (litIsFalse(B[I]))
      continue;
    // Row: (A << I) masked by B[I].
    std::vector<Lit> Row(W, litConst(false));
    for (size_t J = I; J < W; ++J)
      Row[J] = gateAnd(A[J - I], B[I]);
    Acc = adder(Acc, Row, litConst(false));
  }
  return Acc;
}

Lit BitBlaster::compareUlt(const std::vector<Lit> &A,
                           const std::vector<Lit> &B) {
  assert(A.size() == B.size());
  // MSB-first chain: lt = (~a & b) | ((a xnor b) & ltRest).
  Lit Lt = litConst(false);
  for (size_t I = 0; I < A.size(); ++I) {
    Lit AI = A[I], BI = B[I];
    Lit Here = gateAnd(~AI, BI);
    Lit Same = ~gateXor(AI, BI);
    Lt = gateOr(Here, gateAnd(Same, Lt));
  }
  return Lt;
}

Lit BitBlaster::compareUle(const std::vector<Lit> &A,
                           const std::vector<Lit> &B) {
  return ~compareUlt(B, A);
}

std::vector<Lit> BitBlaster::shifter(Op O, const std::vector<Lit> &A,
                                     const std::vector<Lit> &B) {
  size_t W = A.size();
  Lit Fill = O == Op::AShr ? A[W - 1] : litConst(false);
  std::vector<Lit> Cur = A;
  size_t Stages = 0;
  while ((size_t(1) << Stages) < W)
    ++Stages;
  for (size_t K = 0; K < Stages && K < B.size(); ++K) {
    size_t Amount = size_t(1) << K;
    std::vector<Lit> Shifted(W, Fill);
    if (O == Op::Shl) {
      for (size_t I = Amount; I < W; ++I)
        Shifted[I] = Cur[I - Amount];
      for (size_t I = 0; I < Amount && I < W; ++I)
        Shifted[I] = litConst(false);
    } else {
      for (size_t I = 0; I + Amount < W; ++I)
        Shifted[I] = Cur[I + Amount];
    }
    std::vector<Lit> Next(W, Lit{});
    for (size_t I = 0; I < W; ++I)
      Next[I] = gateIte(B[K], Shifted[I], Cur[I]);
    Cur = std::move(Next);
  }
  // If any shift-amount bit at or above `Stages` is set, or the in-range
  // bits encode an amount >= W, the result is pure fill.  The barrel above
  // already produces fill for amounts in [W, 2^Stages); only the high bits
  // remain to check.
  Lit Big = litConst(false);
  for (size_t K = Stages; K < B.size(); ++K)
    Big = gateOr(Big, B[K]);
  if (!litIsFalse(Big)) {
    for (size_t I = 0; I < W; ++I)
      Cur[I] = gateIte(Big, Fill, Cur[I]);
  }
  return Cur;
}

void BitBlaster::divider(TermRef AT, TermRef BT, std::vector<Lit> &Quot,
                         std::vector<Lit> &Rem) {
  auto Key = std::make_pair(AT, BT);
  auto It = DivCache.find(Key);
  if (It != DivCache.end()) {
    Quot = It->second.first;
    Rem = It->second.second;
    return;
  }
  const std::vector<Lit> A = blastBv(AT);
  size_t W = A.size();

  if (BT->isConst() && BT->constBits() != 0) {
    // Constant divisor: introduce defined atoms q, rem with the Euclidean
    // characterization  a = q*c + rem  (computed in 2W bits so nothing
    // wraps)  and  rem < c.  For every value of `a` exactly one (q, rem)
    // satisfies this, so asserting it globally is definitional.  The
    // multiplier degenerates to one adder row per set bit of c — far
    // cheaper than a restoring divider.
    uint64_t C = BT->constBits();
    std::vector<Lit> Q = freshAtom(unsigned(W));
    std::vector<Lit> Rm = freshAtom(unsigned(W));
    // 2W-bit product Q * C.
    std::vector<Lit> Acc(2 * W, litConst(false));
    for (size_t I = 0; I < W; ++I) {
      if (!((C >> I) & 1))
        continue;
      std::vector<Lit> Row(2 * W, litConst(false));
      for (size_t J = 0; J < W; ++J)
        Row[J + I] = Q[J];
      Acc = adder(Acc, Row, litConst(false));
    }
    // Plus rem (zero-extended).
    std::vector<Lit> RmExt = Rm;
    RmExt.resize(2 * W, litConst(false));
    Acc = adder(Acc, RmExt, litConst(false));
    // Equal to zext(a): low bits match, high bits are zero.
    auto forceEqual = [&](Lit L1, Lit L2) {
      S.addBinary(~L1, L2);
      S.addBinary(L1, ~L2);
    };
    for (size_t I = 0; I < W; ++I)
      forceEqual(Acc[I], A[I]);
    for (size_t I = W; I < 2 * W; ++I)
      S.addUnit(~Acc[I]);
    // rem < c.
    std::vector<Lit> CBits(W, Lit{});
    for (size_t I = 0; I < W; ++I)
      CBits[I] = litConst((C >> I) & 1);
    S.addUnit(compareUlt(Rm, CBits));
    Quot = Q;
    Rem = Rm;
    DivCache.emplace(Key, std::make_pair(Quot, Rem));
    return;
  }

  const std::vector<Lit> B = blastBv(BT);
  // Restoring division, MSB first, with a (W+1)-bit partial remainder.
  std::vector<Lit> R(W + 1, litConst(false));
  std::vector<Lit> BExt = B;
  BExt.push_back(litConst(false));
  std::vector<Lit> Q(W, litConst(false));
  for (size_t Step = 0; Step < W; ++Step) {
    size_t BitIdx = W - 1 - Step;
    // R = (R << 1) | a[bitIdx]
    for (size_t I = W; I > 0; --I)
      R[I] = R[I - 1];
    R[0] = A[BitIdx];
    // If R >= B then R -= B and the quotient bit is 1.
    Lit Geq = compareUle(BExt, R);
    std::vector<Lit> Diff = adder(R, negate(BExt), litConst(false));
    for (size_t I = 0; I <= W; ++I)
      R[I] = gateIte(Geq, Diff[I], R[I]);
    Q[BitIdx] = Geq;
  }
  // Division by zero: SMT-LIB says q = all-ones, r = a.  The circuit above
  // already produces that (B == 0 makes every Geq true and subtracting zero
  // leaves R accumulating A).
  Rem.assign(R.begin(), R.begin() + W);
  Quot = Q;
  DivCache.emplace(Key, std::make_pair(Quot, Rem));
}

//===----------------------------------------------------------------------===
// Term translation
//===----------------------------------------------------------------------===

std::vector<Lit> BitBlaster::freshAtom(unsigned Width) {
  std::vector<Lit> Bits(Width, Lit{});
  for (unsigned I = 0; I < Width; ++I)
    Bits[I] = freshLit();
  return Bits;
}

const std::vector<Lit> &BitBlaster::blastBv(TermRef T) {
  auto It = BvCache.find(T);
  if (It != BvCache.end())
    return It->second;
  std::vector<Lit> Bits = computeBv(T);
  return BvCache.emplace(T, std::move(Bits)).first->second;
}

std::vector<Lit> BitBlaster::computeBv(TermRef T) {
  assert(T->type()->isBitVec());
  unsigned W = T->type()->width();
  switch (T->op()) {
  case Op::ConstBv: {
    std::vector<Lit> Bits(W, Lit{});
    for (unsigned I = 0; I < W; ++I)
      Bits[I] = litConst((T->constBits() >> I) & 1);
    return Bits;
  }
  case Op::Var:
  case Op::TupleGet:
    // Scalar leaf (variable or projection chain rooted at a tuple
    // variable): allocate fresh SAT variables.
    assert(T->op() == Op::Var || T->operand(0)->op() == Op::Var ||
           T->operand(0)->op() == Op::TupleGet);
    return freshAtom(W);
  case Op::Ite: {
    Lit C = blastBool(T->operand(0));
    const std::vector<Lit> A = blastBv(T->operand(1));
    const std::vector<Lit> B = blastBv(T->operand(2));
    std::vector<Lit> Bits(W, Lit{});
    for (unsigned I = 0; I < W; ++I)
      Bits[I] = gateIte(C, A[I], B[I]);
    return Bits;
  }
  case Op::Add: {
    const std::vector<Lit> A = blastBv(T->operand(0));
    const std::vector<Lit> B = blastBv(T->operand(1));
    return adder(A, B, litConst(false));
  }
  case Op::Sub: {
    const std::vector<Lit> A = blastBv(T->operand(0));
    std::vector<Lit> NotB = blastBv(T->operand(1));
    for (Lit &L : NotB)
      L = ~L;
    return adder(A, NotB, litConst(true));
  }
  case Op::Neg:
    return negate(blastBv(T->operand(0)));
  case Op::Mul: {
    const std::vector<Lit> A = blastBv(T->operand(0));
    const std::vector<Lit> B = blastBv(T->operand(1));
    return multiplier(A, B);
  }
  case Op::UDiv: {
    std::vector<Lit> Q, R;
    divider(T->operand(0), T->operand(1), Q, R);
    return Q;
  }
  case Op::URem: {
    std::vector<Lit> Q, R;
    divider(T->operand(0), T->operand(1), Q, R);
    return R;
  }
  case Op::BvAnd:
  case Op::BvOr:
  case Op::BvXor: {
    const std::vector<Lit> A = blastBv(T->operand(0));
    const std::vector<Lit> B = blastBv(T->operand(1));
    std::vector<Lit> Bits(W, Lit{});
    for (unsigned I = 0; I < W; ++I)
      Bits[I] = T->op() == Op::BvAnd  ? gateAnd(A[I], B[I])
                : T->op() == Op::BvOr ? gateOr(A[I], B[I])
                                      : gateXor(A[I], B[I]);
    return Bits;
  }
  case Op::BvNot: {
    std::vector<Lit> Bits = blastBv(T->operand(0));
    for (Lit &L : Bits)
      L = ~L;
    return Bits;
  }
  case Op::Shl:
  case Op::LShr:
  case Op::AShr: {
    const std::vector<Lit> A = blastBv(T->operand(0));
    TermRef BT = T->operand(1);
    if (BT->isConst()) {
      uint64_t K = BT->constBits();
      Lit Fill = T->op() == Op::AShr ? A[W - 1] : litConst(false);
      std::vector<Lit> Bits(W, Fill);
      if (K < W) {
        if (T->op() == Op::Shl) {
          for (unsigned I = unsigned(K); I < W; ++I)
            Bits[I] = A[I - K];
          for (unsigned I = 0; I < K; ++I)
            Bits[I] = litConst(false);
        } else {
          for (unsigned I = 0; I + K < W; ++I)
            Bits[I] = A[I + K];
        }
      } else if (T->op() == Op::Shl || T->op() == Op::LShr) {
        Bits.assign(W, litConst(false));
      }
      return Bits;
    }
    return shifter(T->op(), A, blastBv(BT));
  }
  case Op::ZExt: {
    const std::vector<Lit> A = blastBv(T->operand(0));
    std::vector<Lit> Bits = A;
    Bits.resize(W, litConst(false));
    return Bits;
  }
  case Op::SExt: {
    const std::vector<Lit> A = blastBv(T->operand(0));
    std::vector<Lit> Bits = A;
    Bits.resize(W, A.back());
    return Bits;
  }
  case Op::Extract: {
    const std::vector<Lit> A = blastBv(T->operand(0));
    std::vector<Lit> Bits(A.begin() + T->extractLo(),
                          A.begin() + T->extractHi() + 1);
    return Bits;
  }
  default:
    assert(false && "unexpected op for bitvector blasting");
    return freshAtom(W);
  }
}

Lit BitBlaster::blastBool(TermRef T) {
  auto It = BoolCache.find(T);
  if (It != BoolCache.end())
    return It->second;
  Lit L = computeBool(T);
  BoolCache.emplace(T, L);
  return L;
}

Lit BitBlaster::computeBool(TermRef T) {
  assert(T->type()->isBool());
  switch (T->op()) {
  case Op::ConstBool:
    return litConst(T->constBits() != 0);
  case Op::Var:
  case Op::TupleGet:
    return freshLit();
  case Op::Not:
    return ~blastBool(T->operand(0));
  case Op::And:
    return gateAnd(blastBool(T->operand(0)), blastBool(T->operand(1)));
  case Op::Or:
    return gateOr(blastBool(T->operand(0)), blastBool(T->operand(1)));
  case Op::Ite:
    return gateIte(blastBool(T->operand(0)), blastBool(T->operand(1)),
                   blastBool(T->operand(2)));
  case Op::Eq: {
    TermRef A = T->operand(0), B = T->operand(1);
    if (A->type()->isBool())
      return ~gateXor(blastBool(A), blastBool(B));
    // Copy: a second blastBv call may rehash the cache.
    const std::vector<Lit> AB = blastBv(A);
    const std::vector<Lit> BB = blastBv(B);
    std::vector<Lit> Eqs(AB.size(), Lit{});
    for (size_t I = 0; I < AB.size(); ++I)
      Eqs[I] = ~gateXor(AB[I], BB[I]);
    return gateAndMany(Eqs);
  }
  case Op::Ult:
    return compareUlt(blastBv(T->operand(0)), blastBv(T->operand(1)));
  case Op::Ule:
    return compareUle(blastBv(T->operand(0)), blastBv(T->operand(1)));
  case Op::Slt:
  case Op::Sle: {
    // Signed comparison: flip the MSBs and compare unsigned.
    std::vector<Lit> A = blastBv(T->operand(0));
    std::vector<Lit> B = blastBv(T->operand(1));
    A.back() = ~A.back();
    B.back() = ~B.back();
    return T->op() == Op::Slt ? compareUlt(A, B) : compareUle(A, B);
  }
  default:
    assert(false && "unexpected op for boolean blasting");
    return litConst(false);
  }
}

Value BitBlaster::readValue(TermRef T) {
  const Type *Ty = T->type();
  switch (Ty->kind()) {
  case TypeKind::Bool: {
    auto It = BoolCache.find(T);
    if (It == BoolCache.end())
      return Value::boolV(false);
    Lit L = It->second;
    bool B = S.modelBool(sat::var(L));
    return Value::boolV(sat::sign(L) ? !B : B);
  }
  case TypeKind::BitVec: {
    auto It = BvCache.find(T);
    if (It == BvCache.end())
      return Value::bv(Ty->width(), 0);
    uint64_t Bits = 0;
    for (unsigned I = 0; I < Ty->width(); ++I) {
      Lit L = It->second[I];
      bool B = S.modelBool(sat::var(L));
      if (sat::sign(L))
        B = !B;
      if (B)
        Bits |= uint64_t(1) << I;
    }
    return Value::bv(Ty->width(), Bits);
  }
  case TypeKind::Unit:
    return Value::unit();
  case TypeKind::Tuple: {
    std::vector<Value> Es;
    Es.reserve(Ty->arity());
    for (unsigned I = 0; I < Ty->arity(); ++I)
      Es.push_back(readValue(Ctx.mkTupleGet(T, I)));
    return Value::tuple(std::move(Es));
  }
  }
  return Value::unit();
}
