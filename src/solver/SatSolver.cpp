//===- solver/SatSolver.cpp - CDCL SAT solver -----------------------------===//

#include "solver/SatSolver.h"

#include <algorithm>
#include <cmath>

using namespace efc::sat;

SatSolver::SatSolver() = default;
SatSolver::~SatSolver() = default;

Var SatSolver::newVar() {
  Var V = Var(Assigns.size());
  Assigns.push_back(LBool::Undef);
  Reasons.push_back(nullptr);
  Levels.push_back(0);
  Activity.push_back(0.0);
  Polarity.push_back(false);
  HeapPos.push_back(-1);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

//===----------------------------------------------------------------------===
// Variable order heap (max-heap on activity)
//===----------------------------------------------------------------------===

void SatSolver::heapInsert(Var V) {
  if (HeapPos[V] != -1)
    return;
  HeapPos[V] = int(OrderHeap.size());
  OrderHeap.push_back(V);
  heapPercolateUp(HeapPos[V]);
}

void SatSolver::heapPercolateUp(int Pos) {
  Var V = OrderHeap[Pos];
  while (Pos > 0) {
    int Parent = (Pos - 1) >> 1;
    if (Activity[OrderHeap[Parent]] >= Activity[V])
      break;
    OrderHeap[Pos] = OrderHeap[Parent];
    HeapPos[OrderHeap[Pos]] = Pos;
    Pos = Parent;
  }
  OrderHeap[Pos] = V;
  HeapPos[V] = Pos;
}

void SatSolver::heapPercolateDown(int Pos) {
  Var V = OrderHeap[Pos];
  int N = int(OrderHeap.size());
  for (;;) {
    int Child = 2 * Pos + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N &&
        Activity[OrderHeap[Child + 1]] > Activity[OrderHeap[Child]])
      ++Child;
    if (Activity[OrderHeap[Child]] <= Activity[V])
      break;
    OrderHeap[Pos] = OrderHeap[Child];
    HeapPos[OrderHeap[Pos]] = Pos;
    Pos = Child;
  }
  OrderHeap[Pos] = V;
  HeapPos[V] = Pos;
}

Var SatSolver::heapRemoveMax() {
  Var V = OrderHeap[0];
  HeapPos[V] = -1;
  Var Last = OrderHeap.back();
  OrderHeap.pop_back();
  if (!OrderHeap.empty()) {
    OrderHeap[0] = Last;
    HeapPos[Last] = 0;
    heapPercolateDown(0);
  }
  return V;
}

void SatSolver::varBumpActivity(Var V) {
  if ((Activity[V] += VarInc) > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
    // Activities kept heap order (uniform rescale).
  }
  if (HeapPos[V] != -1)
    heapPercolateUp(HeapPos[V]);
}

void SatSolver::claBumpActivity(Clause &C) {
  if ((C.Activity += ClaInc) > 1e20f) {
    for (auto &L : Learnts)
      L->Activity *= 1e-20f;
    ClaInc *= 1e-20f;
  }
}

//===----------------------------------------------------------------------===
// Clause management
//===----------------------------------------------------------------------===

void SatSolver::attachClause(Clause *C) {
  assert(C->Lits.size() >= 2);
  Watches[toInt(C->Lits[0])].push_back(C);
  Watches[toInt(C->Lits[1])].push_back(C);
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  if (!OkFlag)
    return false;
  assert(decisionLevel() == 0 && "clauses must be added at the root level");

  // Normalize: sort, dedupe, drop false literals, detect tautologies.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.X < B.X; });
  std::vector<Lit> Out;
  Lit Prev = LitUndef;
  for (Lit L : Lits) {
    if (value(L) == LBool::True || L == ~Prev)
      return true; // satisfied or tautological
    if (value(L) == LBool::False || L == Prev)
      continue; // falsified at root or duplicate
    Out.push_back(L);
    Prev = L;
  }

  if (Out.empty()) {
    OkFlag = false;
    return false;
  }
  if (Out.size() == 1) {
    uncheckedEnqueue(Out[0], nullptr);
    if (propagate() != nullptr)
      OkFlag = false;
    return OkFlag;
  }
  auto C = std::make_unique<Clause>();
  C->Lits = std::move(Out);
  attachClause(C.get());
  Problem.push_back(std::move(C));
  ++ProblemClauses;
  return true;
}

//===----------------------------------------------------------------------===
// Search
//===----------------------------------------------------------------------===

void SatSolver::uncheckedEnqueue(Lit L, Clause *From) {
  assert(value(L) == LBool::Undef);
  Assigns[var(L)] = lboolOf(!sign(L));
  Reasons[var(L)] = From;
  Levels[var(L)] = decisionLevel();
  Trail.push_back(L);
}

SatSolver::Clause *SatSolver::propagate() {
  Clause *Confl = nullptr;
  while (QHead < Trail.size()) {
    Lit P = Trail[QHead++];
    ++Propagations;
    // Clauses watching ~P may have become unit or conflicting.
    std::vector<Clause *> &WS = Watches[toInt(~P)];
    size_t I = 0, J = 0;
    while (I < WS.size()) {
      Clause &C = *WS[I++];
      Lit FalseLit = ~P;
      if (C.Lits[0] == FalseLit)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == FalseLit);
      Lit First = C.Lits[0];
      if (value(First) == LBool::True) {
        WS[J++] = &C;
        continue;
      }
      // Look for a new literal to watch.
      bool Found = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (value(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[toInt(C.Lits[1])].push_back(&C);
          Found = true;
          break;
        }
      }
      if (Found)
        continue; // moved to another watch list
      WS[J++] = &C;
      if (value(First) == LBool::False) {
        Confl = &C;
        QHead = Trail.size();
        while (I < WS.size())
          WS[J++] = WS[I++];
        break;
      }
      uncheckedEnqueue(First, &C);
    }
    WS.resize(J);
    if (Confl)
      break;
  }
  return Confl;
}

void SatSolver::analyze(Clause *Confl, std::vector<Lit> &OutLearnt,
                        int &OutBtLevel) {
  static thread_local std::vector<char> Seen;
  Seen.assign(Assigns.size(), 0);

  int PathC = 0;
  Lit P = LitUndef;
  OutLearnt.clear();
  OutLearnt.push_back(LitUndef); // slot for the asserting literal
  int Index = int(Trail.size()) - 1;

  do {
    assert(Confl && "reason must exist on the conflict side");
    claBumpActivity(*Confl);
    for (size_t J = (P == LitUndef ? 0 : 1); J < Confl->Lits.size(); ++J) {
      Lit Q = Confl->Lits[J];
      Var V = var(Q);
      if (!Seen[V] && Levels[V] > 0) {
        Seen[V] = 1;
        varBumpActivity(V);
        if (Levels[V] >= decisionLevel())
          ++PathC;
        else
          OutLearnt.push_back(Q);
      }
    }
    // Next clause to look at: reason of the most recent seen trail literal.
    while (!Seen[var(Trail[Index--])])
      ;
    P = Trail[Index + 1];
    Confl = Reasons[var(P)];
    Seen[var(P)] = 0;
    --PathC;
  } while (PathC > 0);
  OutLearnt[0] = ~P;

  // Backtrack level: second highest level in the learnt clause.
  if (OutLearnt.size() == 1) {
    OutBtLevel = 0;
  } else {
    size_t MaxI = 1;
    for (size_t I = 2; I < OutLearnt.size(); ++I)
      if (Levels[var(OutLearnt[I])] > Levels[var(OutLearnt[MaxI])])
        MaxI = I;
    std::swap(OutLearnt[1], OutLearnt[MaxI]);
    OutBtLevel = Levels[var(OutLearnt[1])];
  }
}

void SatSolver::backtrackTo(int Level) {
  if (decisionLevel() <= Level)
    return;
  for (int I = int(Trail.size()) - 1; I >= TrailLim[Level]; --I) {
    Var V = var(Trail[I]);
    Assigns[V] = LBool::Undef;
    Polarity[V] = !sign(Trail[I]); // phase saving: remember assigned value
    Reasons[V] = nullptr;
    heapInsert(V);
  }
  Trail.resize(TrailLim[Level]);
  TrailLim.resize(Level);
  QHead = Trail.size();
}

Lit SatSolver::pickBranchLit() {
  while (!OrderHeap.empty()) {
    Var V = heapRemoveMax();
    if (value(V) == LBool::Undef)
      return mkLit(V, !Polarity[V]);
  }
  return LitUndef;
}

void SatSolver::reduceDB() {
  // Drop the least active half of learnt clauses (keep binary clauses and
  // clauses that are reasons for current assignments).
  std::sort(Learnts.begin(), Learnts.end(),
            [](const std::unique_ptr<Clause> &A,
               const std::unique_ptr<Clause> &B) {
              return A->Activity > B->Activity;
            });
  size_t Keep = Learnts.size() / 2;
  std::vector<std::unique_ptr<Clause>> Kept;
  Kept.reserve(Learnts.size());
  auto isLocked = [&](Clause *C) {
    Var V = var(C->Lits[0]);
    return Reasons[V] == C && value(C->Lits[0]) == LBool::True;
  };
  auto detach = [&](Clause *C) {
    for (int K = 0; K < 2; ++K) {
      auto &WS = Watches[toInt(C->Lits[K])];
      WS.erase(std::remove(WS.begin(), WS.end(), C), WS.end());
    }
  };
  for (size_t I = 0; I < Learnts.size(); ++I) {
    Clause *C = Learnts[I].get();
    if (I < Keep || C->Lits.size() == 2 || isLocked(C))
      Kept.push_back(std::move(Learnts[I]));
    else
      detach(C);
  }
  Learnts = std::move(Kept);
}

static int64_t lubySequence(int64_t X) {
  // Luby restart sequence 1,1,2,1,1,2,4,... (0-based index).
  int64_t Size = 1, Seq = 0;
  while (Size < X + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != X) {
    Size = (Size - 1) >> 1;
    --Seq;
    X = X % Size;
  }
  return int64_t(1) << Seq;
}

SolveStatus SatSolver::solve(const std::vector<Lit> &Assumptions,
                             int64_t ConflictBudget) {
  if (!OkFlag)
    return SolveStatus::Unsat;
  backtrackTo(0);

  int64_t ConflictsThisSolve = 0;
  int64_t RestartNum = 0;
  int64_t RestartLimit = 100 * lubySequence(RestartNum);
  int64_t ConflictsSinceRestart = 0;

  for (;;) {
    Clause *Confl = propagate();
    if (Confl != nullptr) {
      ++Conflicts;
      ++ConflictsThisSolve;
      ++ConflictsSinceRestart;
      if (decisionLevel() == 0) {
        OkFlag = false;
        return SolveStatus::Unsat;
      }
      std::vector<Lit> Learnt;
      int BtLevel = 0;
      analyze(Confl, Learnt, BtLevel);
      backtrackTo(BtLevel);
      if (Learnt.size() == 1) {
        uncheckedEnqueue(Learnt[0], nullptr);
      } else {
        auto C = std::make_unique<Clause>();
        C->Learnt = true;
        C->Lits = std::move(Learnt);
        attachClause(C.get());
        claBumpActivity(*C);
        uncheckedEnqueue(C->Lits[0], C.get());
        Learnts.push_back(std::move(C));
      }
      varDecayActivity();
      ClaInc *= (1 / 0.999f);
      continue;
    }

    if (ConflictBudget >= 0 && ConflictsThisSolve > ConflictBudget) {
      backtrackTo(0);
      return SolveStatus::Budget;
    }
    if (ConflictsSinceRestart >= RestartLimit) {
      ConflictsSinceRestart = 0;
      RestartLimit = 100 * lubySequence(++RestartNum);
      backtrackTo(0);
      continue;
    }
    // Keep the learnt database bounded: this solver lives across many
    // incremental checks, so tying the limit to the (monotonically
    // growing) problem size would let propagation degrade over time.
    if (Learnts.size() >= 10000)
      reduceDB();

    // Establish pending assumptions as decisions.
    Lit Next = LitUndef;
    while (decisionLevel() < int(Assumptions.size())) {
      Lit A = Assumptions[decisionLevel()];
      if (value(A) == LBool::True) {
        TrailLim.push_back(int(Trail.size())); // dummy level
      } else if (value(A) == LBool::False) {
        backtrackTo(0);
        return SolveStatus::Unsat;
      } else {
        Next = A;
        break;
      }
    }
    if (Next == LitUndef) {
      ++Decisions;
      Next = pickBranchLit();
      if (Next == LitUndef) {
        // All variables assigned: model found.
        Model = Assigns;
        backtrackTo(0);
        return SolveStatus::Sat;
      }
    }
    TrailLim.push_back(int(Trail.size()));
    uncheckedEnqueue(Next, nullptr);
  }
}
