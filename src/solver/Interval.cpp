//===- solver/Interval.cpp ------------------------------------------------===//

#include "solver/Interval.h"

#include "term/ScalarOps.h"

using namespace efc;

namespace {

Tri triAnd(Tri A, Tri B) {
  if (A == Tri::False || B == Tri::False)
    return Tri::False;
  if (A == Tri::True && B == Tri::True)
    return Tri::True;
  return Tri::Unknown;
}

Tri triOr(Tri A, Tri B) {
  if (A == Tri::True || B == Tri::True)
    return Tri::True;
  if (A == Tri::False && B == Tri::False)
    return Tri::False;
  return Tri::Unknown;
}

Tri triNot(Tri A) {
  if (A == Tri::Unknown)
    return A;
  return A == Tri::True ? Tri::False : Tri::True;
}

} // namespace

// Sharp interval bounds for bitwise AND/OR (Warren, Hacker's Delight,
// §4-3): given a in [ALo,AHi], b in [BLo,BHi], the extreme values of a&b
// and a|b.
static uint64_t minOR(uint64_t A, uint64_t B, uint64_t C, uint64_t D,
                      uint64_t TopBit) {
  for (uint64_t M = TopBit; M != 0; M >>= 1) {
    if (~A & C & M) {
      uint64_t T = (A | M) & ~(M - 1);
      if (T <= B) {
        A = T;
        break;
      }
    } else if (A & ~C & M) {
      uint64_t T = (C | M) & ~(M - 1);
      if (T <= D) {
        C = T;
        break;
      }
    }
  }
  return A | C;
}

static uint64_t maxOR(uint64_t A, uint64_t B, uint64_t C, uint64_t D,
                      uint64_t TopBit) {
  for (uint64_t M = TopBit; M != 0; M >>= 1) {
    if (B & D & M) {
      uint64_t T = (B - M) | (M - 1);
      if (T >= A) {
        B = T;
        break;
      }
      T = (D - M) | (M - 1);
      if (T >= C) {
        D = T;
        break;
      }
    }
  }
  return B | D;
}

static uint64_t minAND(uint64_t A, uint64_t B, uint64_t C, uint64_t D,
                       uint64_t TopBit) {
  for (uint64_t M = TopBit; M != 0; M >>= 1) {
    if (~A & ~C & M) {
      uint64_t T = (A | M) & ~(M - 1);
      if (T <= B) {
        A = T;
        break;
      }
      T = (C | M) & ~(M - 1);
      if (T <= D) {
        C = T;
        break;
      }
    }
  }
  return A & C;
}

static uint64_t maxAND(uint64_t A, uint64_t B, uint64_t C, uint64_t D,
                       uint64_t TopBit) {
  for (uint64_t M = TopBit; M != 0; M >>= 1) {
    if (B & ~D & M) {
      uint64_t T = (B & ~M) | (M - 1);
      if (T >= A) {
        B = T;
        break;
      }
    } else if (~B & D & M) {
      uint64_t T = (D & ~M) | (M - 1);
      if (T >= C) {
        D = T;
        break;
      }
    }
  }
  return B & D;
}

void IntervalAnalysis::boundAtomHi(TermRef Atom, uint64_t Hi) {
  Interval &IV = AtomBounds[Atom]; // default full range
  if (IV.Hi > Hi)
    IV.Hi = Hi;
  if (IV.isEmpty())
    Contradiction = true;
}

void IntervalAnalysis::boundAtomLo(TermRef Atom, uint64_t Lo) {
  Interval &IV = AtomBounds[Atom];
  if (IV.Lo < Lo)
    IV.Lo = Lo;
  if (IV.isEmpty())
    Contradiction = true;
}

void IntervalAnalysis::pinAtomBool(TermRef Atom, bool B) {
  auto [It, Inserted] = AtomBools.emplace(Atom, B ? Tri::True : Tri::False);
  if (!Inserted && It->second != (B ? Tri::True : Tri::False))
    Contradiction = true;
}

void IntervalAnalysis::harvest(TermRef C) {
  switch (C->op()) {
  case Op::And:
    harvest(C->operand(0));
    harvest(C->operand(1));
    return;
  case Op::Ule: {
    TermRef A = C->operand(0), B = C->operand(1);
    if (A->isConst() && isAtom(B))
      boundAtomLo(B, A->constBits());
    else if (isAtom(A) && B->isConst())
      boundAtomHi(A, B->constBits());
    return;
  }
  case Op::Ult: {
    TermRef A = C->operand(0), B = C->operand(1);
    if (A->isConst() && isAtom(B))
      boundAtomLo(B, A->constBits() + 1); // const < atom, const < mask here
    else if (isAtom(A) && B->isConst() && B->constBits() > 0)
      boundAtomHi(A, B->constBits() - 1);
    return;
  }
  case Op::Eq: {
    TermRef A = C->operand(0), B = C->operand(1);
    if (A->isConst())
      std::swap(A, B);
    if (!isAtom(A) || !B->isConst())
      return;
    if (A->type()->isBool()) {
      pinAtomBool(A, B->constBits() != 0);
    } else {
      boundAtomLo(A, B->constBits());
      boundAtomHi(A, B->constBits());
    }
    return;
  }
  case Op::Var:
  case Op::TupleGet:
    if (C->type()->isBool())
      pinAtomBool(C, true);
    return;
  case Op::Not:
    if (isAtom(C->operand(0)) && C->operand(0)->type()->isBool())
      pinAtomBool(C->operand(0), false);
    return;
  default:
    return;
  }
}

Interval IntervalAnalysis::evalBv(TermRef T) {
  auto It = BvCache.find(T);
  if (It != BvCache.end())
    return It->second;

  const uint64_t Mask = T->type()->mask();
  Interval R{0, Mask}; // default: full range

  switch (T->op()) {
  case Op::ConstBv:
    R = {T->constBits(), T->constBits()};
    break;
  case Op::Var:
  case Op::TupleGet: {
    auto BIt = AtomBounds.find(T);
    if (BIt != AtomBounds.end())
      R = BIt->second;
    break;
  }
  case Op::Ite: {
    Tri C = evalBool(T->operand(0));
    Interval A = evalBv(T->operand(1));
    Interval B = evalBv(T->operand(2));
    if (C == Tri::True)
      R = A;
    else if (C == Tri::False)
      R = B;
    else
      R = {std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
    break;
  }
  case Op::Add: {
    Interval A = evalBv(T->operand(0));
    Interval B = evalBv(T->operand(1));
    __uint128_t SL = __uint128_t(A.Lo) + B.Lo;
    __uint128_t SH = __uint128_t(A.Hi) + B.Hi;
    if (SH <= Mask)
      R = {uint64_t(SL), uint64_t(SH)};
    else if (SL > Mask && SH <= 2 * __uint128_t(Mask) + 1)
      // Both endpoints wrap exactly once (e.g. `x + (-0x30)` encoding a
      // subtraction): order is preserved modulo 2^w.
      R = {uint64_t(SL - Mask - 1), uint64_t(SH - Mask - 1)};
    break;
  }
  case Op::Sub: {
    Interval A = evalBv(T->operand(0));
    Interval B = evalBv(T->operand(1));
    if (A.Lo >= B.Hi)
      R = {A.Lo - B.Hi, A.Hi - B.Lo};
    break;
  }
  case Op::Mul: {
    Interval A = evalBv(T->operand(0));
    Interval B = evalBv(T->operand(1));
    __uint128_t Hi = __uint128_t(A.Hi) * B.Hi;
    if (Hi <= Mask)
      R = {A.Lo * B.Lo, uint64_t(Hi)};
    break;
  }
  case Op::UDiv: {
    Interval A = evalBv(T->operand(0));
    Interval B = evalBv(T->operand(1));
    if (B.Lo > 0)
      R = {A.Lo / B.Hi, A.Hi / B.Lo};
    break;
  }
  case Op::URem: {
    Interval B = evalBv(T->operand(1));
    Interval A = evalBv(T->operand(0));
    if (B.Lo > 0)
      R = {0, std::min(A.Hi, B.Hi - 1)};
    break;
  }
  case Op::BvAnd: {
    Interval A = evalBv(T->operand(0));
    Interval B = evalBv(T->operand(1));
    unsigned W = T->type()->width();
    uint64_t Top = uint64_t(1) << (W - 1);
    R = {minAND(A.Lo, A.Hi, B.Lo, B.Hi, Top),
         maxAND(A.Lo, A.Hi, B.Lo, B.Hi, Top)};
    break;
  }
  case Op::BvOr: {
    Interval A = evalBv(T->operand(0));
    Interval B = evalBv(T->operand(1));
    unsigned W = T->type()->width();
    uint64_t Top = uint64_t(1) << (W - 1);
    R = {minOR(A.Lo, A.Hi, B.Lo, B.Hi, Top),
         maxOR(A.Lo, A.Hi, B.Lo, B.Hi, Top)};
    break;
  }
  case Op::BvXor: {
    Interval A = evalBv(T->operand(0));
    Interval B = evalBv(T->operand(1));
    uint64_t HiOr = A.Hi | B.Hi;
    uint64_t Ceil = HiOr;
    Ceil |= Ceil >> 1;
    Ceil |= Ceil >> 2;
    Ceil |= Ceil >> 4;
    Ceil |= Ceil >> 8;
    Ceil |= Ceil >> 16;
    Ceil |= Ceil >> 32;
    R = {0, std::min(Mask, Ceil)};
    break;
  }
  case Op::Shl: {
    Interval A = evalBv(T->operand(0));
    Interval B = evalBv(T->operand(1));
    if (B.isSingleton() && B.Lo < 64) {
      __uint128_t Hi = __uint128_t(A.Hi) << B.Lo;
      if (Hi <= Mask)
        R = {A.Lo << B.Lo, uint64_t(Hi)};
    }
    break;
  }
  case Op::LShr: {
    Interval A = evalBv(T->operand(0));
    Interval B = evalBv(T->operand(1));
    if (B.isSingleton())
      R = B.Lo >= 64 ? Interval{0, 0}
                     : Interval{A.Lo >> B.Lo, A.Hi >> B.Lo};
    else
      R = {0, A.Hi};
    break;
  }
  case Op::ZExt: {
    Interval A = evalBv(T->operand(0));
    R = A;
    break;
  }
  case Op::SExt: {
    Interval A = evalBv(T->operand(0));
    unsigned InnerW = T->operand(0)->type()->width();
    uint64_t SignBit = uint64_t(1) << (InnerW - 1);
    if (A.Hi < SignBit)
      R = A; // stays non-negative: zero-fill equals sign-fill
    break;
  }
  case Op::Extract: {
    if (T->extractLo() == 0) {
      Interval A = evalBv(T->operand(0));
      if (A.Hi <= Mask)
        R = A;
    }
    break;
  }
  default:
    break; // conservative full range (Neg, AShr, ...)
  }
  BvCache.emplace(T, R);
  return R;
}

Tri IntervalAnalysis::evalBool(TermRef T) {
  auto It = BoolCache.find(T);
  if (It != BoolCache.end())
    return It->second;

  Tri R = Tri::Unknown;
  switch (T->op()) {
  case Op::ConstBool:
    R = T->constBits() ? Tri::True : Tri::False;
    break;
  case Op::Var:
  case Op::TupleGet: {
    auto BIt = AtomBools.find(T);
    if (BIt != AtomBools.end())
      R = BIt->second;
    break;
  }
  case Op::Not:
    R = triNot(evalBool(T->operand(0)));
    break;
  case Op::And:
    R = triAnd(evalBool(T->operand(0)), evalBool(T->operand(1)));
    break;
  case Op::Or:
    R = triOr(evalBool(T->operand(0)), evalBool(T->operand(1)));
    break;
  case Op::Ite: {
    Tri C = evalBool(T->operand(0));
    Tri A = evalBool(T->operand(1));
    Tri B = evalBool(T->operand(2));
    if (C == Tri::True)
      R = A;
    else if (C == Tri::False)
      R = B;
    else if (A == B)
      R = A;
    break;
  }
  case Op::Eq: {
    TermRef A = T->operand(0), B = T->operand(1);
    if (A->type()->isBool()) {
      Tri TA = evalBool(A), TB = evalBool(B);
      if (TA != Tri::Unknown && TB != Tri::Unknown)
        R = TA == TB ? Tri::True : Tri::False;
    } else {
      Interval IA = evalBv(A), IB = evalBv(B);
      if (IA.Hi < IB.Lo || IB.Hi < IA.Lo)
        R = Tri::False;
      else if (IA.isSingleton() && IB.isSingleton() && IA.Lo == IB.Lo)
        R = Tri::True;
    }
    break;
  }
  case Op::Ult: {
    Interval IA = evalBv(T->operand(0)), IB = evalBv(T->operand(1));
    if (IA.Hi < IB.Lo)
      R = Tri::True;
    else if (IA.Lo >= IB.Hi)
      R = Tri::False;
    break;
  }
  case Op::Ule: {
    Interval IA = evalBv(T->operand(0)), IB = evalBv(T->operand(1));
    if (IA.Hi <= IB.Lo)
      R = Tri::True;
    else if (IA.Lo > IB.Hi)
      R = Tri::False;
    break;
  }
  case Op::Slt:
  case Op::Sle: {
    // Compare only when both intervals avoid the sign boundary.
    unsigned W = T->operand(0)->type()->width();
    uint64_t SignBit = uint64_t(1) << (W - 1);
    Interval IA = evalBv(T->operand(0)), IB = evalBv(T->operand(1));
    bool ANonNeg = IA.Hi < SignBit, ANeg = IA.Lo >= SignBit;
    bool BNonNeg = IB.Hi < SignBit, BNeg = IB.Lo >= SignBit;
    if ((ANonNeg || ANeg) && (BNonNeg || BNeg)) {
      if (ANeg && BNonNeg)
        R = Tri::True;
      else if (ANonNeg && BNeg)
        R = Tri::False;
      else {
        // Same sign: signed order coincides with unsigned order.
        if (IA.Hi < IB.Lo)
          R = Tri::True;
        else if (T->op() == Op::Slt && IA.Lo >= IB.Hi)
          R = Tri::False;
        else if (T->op() == Op::Sle && IA.Hi <= IB.Lo)
          R = Tri::True;
        else if (T->op() == Op::Sle && IA.Lo > IB.Hi)
          R = Tri::False;
      }
    }
    break;
  }
  default:
    break;
  }
  BoolCache.emplace(T, R);
  return R;
}

Tri IntervalAnalysis::checkConjunction(std::span<const TermRef> Asserts) {
  for (TermRef A : Asserts)
    harvest(A);
  if (Contradiction)
    return Tri::False;
  bool AllTrue = true;
  for (TermRef A : Asserts) {
    Tri R = evalBool(A);
    if (R == Tri::False)
      return Tri::False;
    if (R != Tri::True)
      AllTrue = false;
  }
  return AllTrue ? Tri::True : Tri::Unknown;
}

Value IntervalAnalysis::modelOf(TermRef T) {
  const Type *Ty = T->type();
  switch (Ty->kind()) {
  case TypeKind::Bool: {
    auto It = AtomBools.find(T);
    return Value::boolV(It != AtomBools.end() && It->second == Tri::True);
  }
  case TypeKind::BitVec: {
    auto It = AtomBounds.find(T);
    return Value::bv(Ty->width(), It == AtomBounds.end() ? 0 : It->second.Lo);
  }
  case TypeKind::Unit:
    return Value::unit();
  case TypeKind::Tuple: {
    std::vector<Value> Es;
    Es.reserve(Ty->arity());
    for (unsigned I = 0; I < Ty->arity(); ++I)
      Es.push_back(modelOf(Ctx.mkTupleGet(T, I)));
    return Value::tuple(std::move(Es));
  }
  }
  return Value::unit();
}
