//===- solver/QueryBuilder.h - Distinguishing-element queries ---*- C++ -*-===//
///
/// \file
/// A small query-builder on top of Solver for the shape every backend
/// equivalence check reduces to: "does there exist an element (and a
/// register valuation) on which branch f and branch g disagree?"  The
/// caller accumulates the shared path constraint and the observation
/// pairs the branches must agree on; check() then discharges
///
///   SAT( path  ∧  ( f_1 ≠ g_1 ∨ ... ∨ f_n ≠ g_n ) )
///
/// Unsat proves the branches equal on the path, Sat yields a concrete
/// distinguishing witness, Unknown (conflict budget) leaves the pair
/// unverified.  Observation pairs that are pointer-identical after
/// hash-consing are dropped up front, so structurally equal branches
/// never reach the SAT solver at all.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_SOLVER_QUERYBUILDER_H
#define EFC_SOLVER_QUERYBUILDER_H

#include "solver/Solver.h"

#include <span>
#include <vector>

namespace efc {

/// Outcome of one distinguishing query.
struct DistinguishResult {
  SatResult R = SatResult::Unsat;
  /// When Sat: model values of the requested witness variables, in the
  /// order they were passed to check().
  std::vector<uint64_t> Witness;
};

/// Builder for one "∃ element distinguishing f and g" query.  Cheap to
/// construct; intended to be rebuilt per branch pair.
class DistinguishQuery {
public:
  explicit DistinguishQuery(Solver &S) : S(S) {}

  /// Adds a conjunct of the shared path constraint.
  void assume(TermRef Cond);
  void assumeAll(std::span<const TermRef> Conds);

  /// Registers an observation pair the branches must agree on.  A
  /// pointer-identical pair is semantically equal (hash-consing) and is
  /// discarded without any solver work.
  void requireEqual(TermRef F, TermRef G);

  /// Marks the branches as disagreeing on every element of the path
  /// (different emit counts, targets, or accept/reject verdicts): the
  /// query degenerates to satisfiability of the path itself.
  void requireDisagree();

  /// True when no disagreement is possible: every observation pair was
  /// pointer-identical.  check() then returns Unsat without a SAT call.
  bool trivial() const { return !ConstDisagree && Disagrees.empty(); }

  /// Discharges the query.  On Sat, \p Out receives the model values of
  /// \p WitnessVars (variables or projection-chain leaves).  The solver
  /// scope opened for the query is always closed again.
  DistinguishResult check(std::span<const TermRef> WitnessVars = {});

  /// Number of SAT-level checks issued so far through this builder's
  /// solver (for report accounting the caller keeps itself).
  Solver &solver() { return S; }

private:
  Solver &S;
  std::vector<TermRef> Assumes;
  std::vector<TermRef> Disagrees;
  bool ConstDisagree = false;
};

} // namespace efc

#endif // EFC_SOLVER_QUERYBUILDER_H
