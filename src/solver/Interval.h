//===- solver/Interval.h - Interval / constant presolve ---------*- C++ -*-===//
///
/// \file
/// A cheap sound presolve for conjunctions: harvests unsigned bounds for
/// scalar leaves from range-shaped conjuncts (the dominant guard shape in
/// fused transducers, e.g. `0x30 <= x && x <= 0x39`), then evaluates the
/// remaining conjuncts in a three-valued interval domain.  Answers
/// definitely-unsat, definitely-sat (with a model), or unknown — in which
/// case the caller falls back to bit-blasting.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_SOLVER_INTERVAL_H
#define EFC_SOLVER_INTERVAL_H

#include "term/Term.h"
#include "term/TermContext.h"
#include "term/Value.h"

#include <span>
#include <unordered_map>

namespace efc {

enum class Tri : uint8_t { False, True, Unknown };

/// Unsigned interval within a bitvector type's mask.  Empty when Lo > Hi.
struct Interval {
  uint64_t Lo = 0;
  uint64_t Hi = ~uint64_t(0);

  bool isSingleton() const { return Lo == Hi; }
  bool isEmpty() const { return Lo > Hi; }
};

/// One-shot interval analysis over a conjunction of boolean terms.
class IntervalAnalysis {
public:
  explicit IntervalAnalysis(TermContext &Ctx) : Ctx(Ctx) {}

  /// Analyzes the conjunction of \p Asserts.
  Tri checkConjunction(std::span<const TermRef> Asserts);

  /// After checkConjunction returned True: a satisfying value for a
  /// variable (or projection-chain leaf) term.
  Value modelOf(TermRef T);

  /// Harvested per-atom bounds / boolean pins (valid after
  /// checkConjunction; used by the solver's witness guessing).
  const std::unordered_map<TermRef, Interval> &atomBounds() const {
    return AtomBounds;
  }
  const std::unordered_map<TermRef, Tri> &atomBools() const {
    return AtomBools;
  }

private:
  TermContext &Ctx;
  std::unordered_map<TermRef, Interval> AtomBounds;
  std::unordered_map<TermRef, Tri> AtomBools;
  std::unordered_map<TermRef, Interval> BvCache;
  std::unordered_map<TermRef, Tri> BoolCache;
  bool Contradiction = false;

  static bool isAtom(TermRef T) {
    return T->op() == Op::Var || T->op() == Op::TupleGet;
  }

  void harvest(TermRef Conjunct);
  void boundAtomHi(TermRef Atom, uint64_t Hi);
  void boundAtomLo(TermRef Atom, uint64_t Lo);
  void pinAtomBool(TermRef Atom, bool B);

  Interval evalBv(TermRef T);
  Tri evalBool(TermRef T);
};

} // namespace efc

#endif // EFC_SOLVER_INTERVAL_H
