//===- solver/SatSolver.h - CDCL SAT solver ---------------------*- C++ -*-===//
///
/// \file
/// A self-contained CDCL SAT solver in the MiniSat lineage: two-watched
/// literals, VSIDS branching, first-UIP clause learning, phase saving, Luby
/// restarts, activity-based learnt-clause reduction, and solving under
/// assumptions.  The assumption interface is what gives the term-level
/// Solver its incremental push/pop (activation literals), mirroring how the
/// paper uses Z3's incremental solver contexts during fusion.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_SOLVER_SATSOLVER_H
#define EFC_SOLVER_SATSOLVER_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace efc::sat {

using Var = int;
constexpr Var VarUndef = -1;

/// A literal: variable with a sign, packed as 2*var + sign.
struct Lit {
  int X = -2;

  bool operator==(const Lit &O) const { return X == O.X; }
  bool operator!=(const Lit &O) const { return X != O.X; }
};

constexpr Lit mkLit(Var V, bool Negated = false) {
  return Lit{2 * V + (Negated ? 1 : 0)};
}
constexpr Lit operator~(Lit L) { return Lit{L.X ^ 1}; }
constexpr bool sign(Lit L) { return L.X & 1; }
constexpr Var var(Lit L) { return L.X >> 1; }
constexpr int toInt(Lit L) { return L.X; }
constexpr Lit LitUndef{-2};

enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lboolOf(bool B) { return B ? LBool::True : LBool::False; }
inline LBool negate(LBool B) {
  return B == LBool::Undef ? B : lboolOf(B == LBool::False);
}

enum class SolveStatus : uint8_t { Sat, Unsat, Budget };

/// CDCL solver.  Variables are created with newVar(); clauses over those
/// variables are added with addClause(); solve() optionally takes
/// assumption literals that hold only for that call.
class SatSolver {
public:
  SatSolver();
  ~SatSolver();
  SatSolver(const SatSolver &) = delete;
  SatSolver &operator=(const SatSolver &) = delete;

  Var newVar();
  int numVars() const { return int(Assigns.size()); }

  /// Adds a clause.  Returns false when the solver becomes trivially
  /// unsatisfiable at the top level (empty clause).
  bool addClause(std::vector<Lit> Lits);
  bool addUnit(Lit L) { return addClause({L}); }
  bool addBinary(Lit A, Lit B) { return addClause({A, B}); }
  bool addTernary(Lit A, Lit B, Lit C) { return addClause({A, B, C}); }

  /// Solves under the given assumptions.  `ConflictBudget` < 0 means no
  /// limit; exceeding the budget yields SolveStatus::Budget.
  SolveStatus solve(const std::vector<Lit> &Assumptions,
                    int64_t ConflictBudget = -1);

  /// Model access; valid after solve() returned Sat.
  LBool modelValue(Var V) const { return Model[V]; }
  bool modelBool(Var V) const { return Model[V] == LBool::True; }

  // Statistics.
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numPropagations() const { return Propagations; }
  size_t numClauses() const { return ProblemClauses; }

private:
  struct Clause {
    float Activity = 0;
    bool Learnt = false;
    std::vector<Lit> Lits;
  };

  // Clause database.
  std::vector<std::unique_ptr<Clause>> Problem;
  std::vector<std::unique_ptr<Clause>> Learnts;
  size_t ProblemClauses = 0;

  // Watch lists, indexed by toInt(lit): clauses in which `lit` is watched.
  std::vector<std::vector<Clause *>> Watches;

  // Assignment state.
  std::vector<LBool> Assigns;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  std::vector<Clause *> Reasons;
  std::vector<int> Levels;
  size_t QHead = 0;
  bool OkFlag = true;

  // Branching heuristics.
  std::vector<double> Activity;
  double VarInc = 1.0;
  std::vector<bool> Polarity;
  std::vector<int> HeapPos; // position in OrderHeap, -1 if absent
  std::vector<Var> OrderHeap;
  float ClaInc = 1.0f;

  // Model (copy of assignments on Sat).
  std::vector<LBool> Model;

  // Statistics.
  uint64_t Conflicts = 0, Decisions = 0, Propagations = 0;

  LBool value(Lit L) const {
    LBool B = Assigns[var(L)];
    return sign(L) ? negate(B) : B;
  }
  LBool value(Var V) const { return Assigns[V]; }
  int decisionLevel() const { return int(TrailLim.size()); }

  void attachClause(Clause *C);
  void uncheckedEnqueue(Lit L, Clause *From);
  Clause *propagate();
  void analyze(Clause *Confl, std::vector<Lit> &OutLearnt, int &OutBtLevel);
  void backtrackTo(int Level);
  Lit pickBranchLit();
  void varBumpActivity(Var V);
  void varDecayActivity() { VarInc /= 0.95; }
  void claBumpActivity(Clause &C);
  void heapInsert(Var V);
  void heapPercolateUp(int Pos);
  void heapPercolateDown(int Pos);
  Var heapRemoveMax();
  void reduceDB();
};

} // namespace efc::sat

#endif // EFC_SOLVER_SATSOLVER_H
