//===- solver/BitBlaster.h - Terms to CNF via Tseitin gates -----*- C++ -*-===//
///
/// \file
/// Translates terms of the QF_BV + tuples fragment into CNF over a
/// SatSolver.  Scalar leaves (variables, or projection chains applied to
/// tuple variables) become vectors of fresh SAT variables; operators become
/// standard circuits (ripple-carry adders, shift-add multipliers, restoring
/// dividers, barrel shifters, comparison chains).  Encodings are cached per
/// term, which together with hash-consing gives structural sharing in the
/// generated CNF.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_SOLVER_BITBLASTER_H
#define EFC_SOLVER_BITBLASTER_H

#include "solver/SatSolver.h"
#include "term/Term.h"
#include "term/TermContext.h"
#include "term/Value.h"

#include <unordered_map>

namespace efc {

class BitBlaster {
public:
  BitBlaster(TermContext &Ctx, sat::SatSolver &S);

  /// Encodes a boolean term, returning a literal equivalent to it.
  sat::Lit blastBool(TermRef T);

  /// Encodes a bitvector term, returning its bits LSB first.
  const std::vector<sat::Lit> &blastBv(TermRef T);

  /// The always-true literal.
  sat::Lit trueLit() const { return True; }

  /// After a Sat answer: reconstructs the model value of a variable (or a
  /// projection-chain leaf).  Never-encoded leaves default to zero/false.
  Value readValue(TermRef T);

private:
  TermContext &Ctx;
  sat::SatSolver &S;
  sat::Lit True;

  std::unordered_map<TermRef, sat::Lit> BoolCache;
  std::unordered_map<TermRef, std::vector<sat::Lit>> BvCache;
  struct PairHash {
    size_t operator()(const std::pair<TermRef, TermRef> &P) const {
      return std::hash<const void *>()(P.first) * 31 +
             std::hash<const void *>()(P.second);
    }
  };
  std::unordered_map<std::pair<TermRef, TermRef>,
                     std::pair<std::vector<sat::Lit>, std::vector<sat::Lit>>,
                     PairHash>
      DivCache; // (dividend, divisor) -> (quotient, remainder)

  sat::Lit freshLit();
  sat::Lit litConst(bool B) { return B ? True : ~True; }
  bool litIsTrue(sat::Lit L) const { return L == True; }
  bool litIsFalse(sat::Lit L) const { return L == ~True; }

  // Gates with peephole simplification.
  sat::Lit gateAnd(sat::Lit A, sat::Lit B);
  sat::Lit gateOr(sat::Lit A, sat::Lit B);
  sat::Lit gateXor(sat::Lit A, sat::Lit B);
  sat::Lit gateIte(sat::Lit C, sat::Lit T, sat::Lit E);
  sat::Lit gateAndMany(const std::vector<sat::Lit> &Ls);

  // Circuits (bit vectors LSB first).
  std::vector<sat::Lit> adder(const std::vector<sat::Lit> &A,
                              const std::vector<sat::Lit> &B, sat::Lit Cin);
  std::vector<sat::Lit> negate(const std::vector<sat::Lit> &A);
  std::vector<sat::Lit> multiplier(const std::vector<sat::Lit> &A,
                                   const std::vector<sat::Lit> &B);
  void divider(TermRef AT, TermRef BT, std::vector<sat::Lit> &Quot,
               std::vector<sat::Lit> &Rem);
  sat::Lit compareUlt(const std::vector<sat::Lit> &A,
                      const std::vector<sat::Lit> &B);
  sat::Lit compareUle(const std::vector<sat::Lit> &A,
                      const std::vector<sat::Lit> &B);
  std::vector<sat::Lit> shifter(Op O, const std::vector<sat::Lit> &A,
                                const std::vector<sat::Lit> &B);

  std::vector<sat::Lit> computeBv(TermRef T);
  sat::Lit computeBool(TermRef T);
  std::vector<sat::Lit> freshAtom(unsigned Width);
};

} // namespace efc

#endif // EFC_SOLVER_BITBLASTER_H
