//===- solver/QueryBuilder.cpp - Distinguishing-element queries -----------===//

#include "solver/QueryBuilder.h"

namespace efc {

void DistinguishQuery::assume(TermRef Cond) {
  if (Cond->isTrue())
    return;
  Assumes.push_back(Cond);
}

void DistinguishQuery::assumeAll(std::span<const TermRef> Conds) {
  for (TermRef C : Conds)
    assume(C);
}

void DistinguishQuery::requireEqual(TermRef F, TermRef G) {
  if (F == G) // hash-consed: semantically equal, nothing to prove
    return;
  Disagrees.push_back(S.context().mkNeq(F, G));
}

void DistinguishQuery::requireDisagree() { ConstDisagree = true; }

DistinguishResult DistinguishQuery::check(
    std::span<const TermRef> WitnessVars) {
  DistinguishResult Res;
  if (trivial()) {
    Res.R = SatResult::Unsat;
    return Res;
  }

  TermContext &Ctx = S.context();
  S.push();
  for (TermRef A : Assumes)
    S.add(A);
  if (!ConstDisagree) {
    TermRef D = Ctx.falseConst();
    for (TermRef N : Disagrees)
      D = Ctx.mkOr(D, N);
    S.add(D);
  }
  Res.R = S.check();
  if (Res.R == SatResult::Sat) {
    Res.Witness.reserve(WitnessVars.size());
    for (TermRef V : WitnessVars) {
      Value MV = S.modelValue(V);
      Res.Witness.push_back(MV.isBool() ? uint64_t(MV.boolValue())
                                        : MV.bits());
    }
  }
  S.pop();
  return Res;
}

} // namespace efc
