//===- solver/Solver.h - Incremental SMT-lite solver ------------*- C++ -*-===//
///
/// \file
/// The decision procedure used by fusion and RBBE: an incremental
/// satisfiability solver for the QF_BV + tuples term fragment, standing in
/// for Z3 in the paper.  Supports push/pop scopes (implemented with
/// activation-literal assumptions so learned clauses survive, mirroring the
/// paper's use of incremental solver contexts), a fast interval presolve,
/// and model extraction.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_SOLVER_SOLVER_H
#define EFC_SOLVER_SOLVER_H

#include "solver/BitBlaster.h"
#include "solver/Interval.h"
#include "solver/SatSolver.h"
#include "term/TermContext.h"

#include <memory>
#include <optional>
#include <vector>

namespace efc {

enum class SatResult : uint8_t { Sat, Unsat, Unknown };

/// Incremental solver over boolean terms.
class Solver {
public:
  struct Stats {
    uint64_t Checks = 0;
    uint64_t TrivialUnsat = 0; ///< a `false` assertion was present
    uint64_t TrivialSat = 0;   ///< no (non-trivial) assertions
    uint64_t FastUnsat = 0;    ///< decided by interval presolve
    uint64_t FastSat = 0;      ///< decided by interval presolve
    uint64_t GuessSat = 0;     ///< witnessed by concrete evaluation
    uint64_t CacheHits = 0;    ///< repeated checkWith contexts
    uint64_t SatCalls = 0;     ///< fell through to CDCL
    uint64_t BudgetExceeded = 0;
  };

  explicit Solver(TermContext &Ctx, int64_t ConflictBudget = 1000000);

  TermContext &context() { return Ctx; }

  /// Opens a new assertion scope.
  void push();
  /// Closes the innermost scope, retracting its assertions.
  void pop();
  unsigned numScopes() const { return unsigned(Frames.size()) - 1; }

  /// Asserts a boolean term in the current scope.
  void add(TermRef Assertion);

  /// Checks satisfiability of all active assertions.
  SatResult check();

  /// Convenience: check() with \p Extra temporarily asserted.
  SatResult checkWith(TermRef Extra);

  /// After check() returned Sat: the model value of a variable (or a
  /// projection-chain leaf).  Unconstrained variables default to zero.
  Value modelValue(TermRef VarLike);

  /// Disables the interval presolve (for ablation benchmarks).
  void setPresolveEnabled(bool Enabled) { PresolveEnabled = Enabled; }

  /// Disables the concrete-evaluation witness search (ablation).
  void setGuessingEnabled(bool Enabled) { GuessingEnabled = Enabled; }

  /// Disables checkWith() result caching (ablation).  After a cache hit
  /// no model is available.
  void setCacheEnabled(bool Enabled) { CacheEnabled = Enabled; }

  /// Per-check CDCL conflict budget; exceeding it yields Unknown.  Fusion
  /// and RBBE lower this: an Unknown conservatively keeps branches, and
  /// hard instances are rarely the ones worth proving.
  void setConflictBudget(int64_t Budget) { ConflictBudget = Budget; }
  int64_t conflictBudget() const { return ConflictBudget; }

  const Stats &stats() const { return S; }
  const sat::SatSolver &satSolver() const { return Sat; }

private:
  TermContext &Ctx;
  sat::SatSolver Sat;
  BitBlaster Blaster;
  int64_t ConflictBudget;
  bool PresolveEnabled = true;
  bool GuessingEnabled = true;
  bool CacheEnabled = true;
  Stats S;
  std::unordered_map<size_t, SatResult> CheckCache;
  std::unordered_map<TermRef, Value> GuessedLeaves;

  struct Frame {
    sat::Lit Act;
    std::vector<TermRef> Asserts;
    size_t NumEncoded = 0;
  };
  std::vector<Frame> Frames;

  enum class ModelSrc {
    None,
    FromSat,
    FromInterval,
    FromGuess,
    Trivial
  } LastModel = ModelSrc::None;
  std::unique_ptr<IntervalAnalysis> LastInterval;

  SatResult checkImpl();
  std::vector<TermRef> activeAssertions() const;
  bool tryGuess(const std::vector<TermRef> &Asserts,
                const IntervalAnalysis *IA);
  Value guessedValue(TermRef T);
};

} // namespace efc

#endif // EFC_SOLVER_SOLVER_H
