//===- solver/Solver.cpp --------------------------------------------------===//

#include "solver/Solver.h"

#include "support/Metrics.h"
#include "term/Eval.h"
#include "term/Rewrite.h"

#include <algorithm>
#include <unordered_set>

using namespace efc;

namespace {

/// Collects the scalar leaves (variables and projection chains) of a term.
void collectLeaves(TermRef T, std::unordered_set<TermRef> &Atoms,
                   std::unordered_set<TermRef> &Seen) {
  if (!Seen.insert(T).second)
    return;
  if (T->op() == Op::Var || T->op() == Op::TupleGet) {
    if (T->type()->isScalar()) {
      Atoms.insert(T);
      return;
    }
  }
  for (TermRef O : T->operands())
    collectLeaves(O, Atoms, Seen);
}

/// Collects the bitvector constants appearing in a term DAG.
void collectConsts(TermRef T, std::vector<uint64_t> &Pool,
                   std::unordered_set<TermRef> &Seen) {
  if (!Seen.insert(T).second)
    return;
  if (T->op() == Op::ConstBv)
    Pool.push_back(T->constBits());
  for (TermRef O : T->operands())
    collectConsts(O, Pool, Seen);
}

/// Root variable of a projection chain.
TermRef rootVarOf(TermRef Leaf) {
  while (Leaf->op() == Op::TupleGet)
    Leaf = Leaf->operand(0);
  assert(Leaf->isVar());
  return Leaf;
}

/// Assembles a Value for \p Ty, reading scalar leaves of the chain rooted
/// at \p Chain from \p LeafVals (default zero).
Value assembleValue(TermContext &Ctx, const Type *Ty, TermRef Chain,
                    const std::unordered_map<TermRef, Value> &LeafVals) {
  switch (Ty->kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec: {
    auto It = LeafVals.find(Chain);
    if (It != LeafVals.end())
      return It->second;
    return Value::defaultOf(Ty);
  }
  case TypeKind::Unit:
    return Value::unit();
  case TypeKind::Tuple: {
    std::vector<Value> Es;
    Es.reserve(Ty->arity());
    for (unsigned I = 0; I < Ty->arity(); ++I)
      Es.push_back(assembleValue(Ctx, Ty->elems()[I],
                                 Ctx.mkTupleGet(Chain, I), LeafVals));
    return Value::tuple(std::move(Es));
  }
  }
  return Value::unit();
}

} // namespace

Solver::Solver(TermContext &Ctx, int64_t ConflictBudget)
    : Ctx(Ctx), Blaster(Ctx, Sat), ConflictBudget(ConflictBudget) {
  // Base scope.
  Frames.push_back(Frame{sat::mkLit(Sat.newVar()), {}, 0});
}

void Solver::push() {
  Frames.push_back(Frame{sat::mkLit(Sat.newVar()), {}, 0});
}

void Solver::pop() {
  assert(Frames.size() > 1 && "pop without matching push");
  // Permanently deactivate the scope's clauses so the SAT solver can
  // simplify them away.
  Sat.addUnit(~Frames.back().Act);
  Frames.pop_back();
  LastModel = ModelSrc::None;
}

void Solver::add(TermRef Assertion) {
  assert(Assertion->type()->isBool());
  Frames.back().Asserts.push_back(Assertion);
}

std::vector<TermRef> Solver::activeAssertions() const {
  std::vector<TermRef> Out;
  for (const Frame &F : Frames)
    for (TermRef A : F.Asserts)
      if (!A->isTrue())
        Out.push_back(A);
  return Out;
}

SatResult Solver::check() {
  // Registry mirror of the per-instance Stats: process-wide totals for
  // `efcc --metrics` / the 'M' frame.  CDCL conflicts are metered as a
  // delta around the underlying solve, since SatSolver counts lifetime
  // conflicts.
  namespace mx = metrics;
  static mx::Counter &Checks = mx::Registry::instance().counter(
      "efc_solver_checks_total", "Solver::check() calls");
  static mx::Counter &SatR = mx::Registry::instance().counter(
      "efc_solver_results_total", "check() outcomes by result",
      "result=\"sat\"");
  static mx::Counter &UnsatR = mx::Registry::instance().counter(
      "efc_solver_results_total", "check() outcomes by result",
      "result=\"unsat\"");
  static mx::Counter &UnknownR = mx::Registry::instance().counter(
      "efc_solver_results_total", "check() outcomes by result",
      "result=\"unknown\"");
  static mx::Counter &Presolve = mx::Registry::instance().counter(
      "efc_solver_presolve_hits_total",
      "Checks decided by the interval presolve");
  static mx::Counter &Guess = mx::Registry::instance().counter(
      "efc_solver_guess_sat_total",
      "Checks witnessed by concrete evaluation");
  static mx::Counter &Cdcl = mx::Registry::instance().counter(
      "efc_solver_cdcl_calls_total", "Checks that fell through to CDCL");
  static mx::Counter &Conflicts = mx::Registry::instance().counter(
      "efc_solver_cdcl_conflicts_total", "CDCL conflicts across all checks");

  uint64_t Fast0 = S.FastUnsat + S.FastSat;
  uint64_t Guess0 = S.GuessSat;
  uint64_t SatCalls0 = S.SatCalls;
  uint64_t Conf0 = Sat.numConflicts();

  SatResult R = checkImpl();

  Checks.inc();
  (R == SatResult::Sat     ? SatR
   : R == SatResult::Unsat ? UnsatR
                           : UnknownR)
      .inc();
  Presolve.inc(S.FastUnsat + S.FastSat - Fast0);
  Guess.inc(S.GuessSat - Guess0);
  if (S.SatCalls != SatCalls0) {
    Cdcl.inc();
    Conflicts.inc(Sat.numConflicts() - Conf0);
  }
  return R;
}

SatResult Solver::checkImpl() {
  ++S.Checks;
  LastModel = ModelSrc::None;

  std::vector<TermRef> Asserts = activeAssertions();
  for (TermRef A : Asserts) {
    if (A->isFalse()) {
      ++S.TrivialUnsat;
      return SatResult::Unsat;
    }
  }
  if (Asserts.empty()) {
    ++S.TrivialSat;
    LastModel = ModelSrc::Trivial;
    return SatResult::Sat;
  }

  std::unique_ptr<IntervalAnalysis> IA;
  if (PresolveEnabled) {
    IA = std::make_unique<IntervalAnalysis>(Ctx);
    Tri R = IA->checkConjunction(Asserts);
    if (R == Tri::False) {
      ++S.FastUnsat;
      return SatResult::Unsat;
    }
    if (R == Tri::True) {
      ++S.FastSat;
      LastInterval = std::move(IA);
      LastModel = ModelSrc::FromInterval;
      return SatResult::Sat;
    }
  }

  // Concrete-evaluation witness search: satisfiable contexts (the common
  // case during fusion) usually have easy witnesses inside the harvested
  // bounds, found far cheaper than by bit-blasting.
  if (GuessingEnabled && tryGuess(Asserts, IA.get())) {
    ++S.GuessSat;
    LastModel = ModelSrc::FromGuess;
    return SatResult::Sat;
  }

  // A zero conflict budget means "cheap procedures only": skip encoding
  // and report Unknown (callers treat Unknown conservatively).
  if (ConflictBudget == 0) {
    ++S.BudgetExceeded;
    return SatResult::Unknown;
  }

  // Encode assertions that have not been encoded yet, guarded by their
  // scope's activation literal.
  for (Frame &F : Frames) {
    for (size_t I = F.NumEncoded; I < F.Asserts.size(); ++I) {
      sat::Lit L = Blaster.blastBool(F.Asserts[I]);
      Sat.addBinary(~F.Act, L);
    }
    F.NumEncoded = F.Asserts.size();
  }

  std::vector<sat::Lit> Assumptions;
  Assumptions.reserve(Frames.size());
  for (const Frame &F : Frames)
    Assumptions.push_back(F.Act);

  ++S.SatCalls;
  switch (Sat.solve(Assumptions, ConflictBudget)) {
  case sat::SolveStatus::Sat:
    LastModel = ModelSrc::FromSat;
    return SatResult::Sat;
  case sat::SolveStatus::Unsat:
    return SatResult::Unsat;
  case sat::SolveStatus::Budget:
    ++S.BudgetExceeded;
    return SatResult::Unknown;
  }
  return SatResult::Unknown;
}

SatResult Solver::checkWith(TermRef Extra) {
  // Result cache: fusion re-checks structurally identical contexts when
  // product states share rules; terms are interned, so the assertion
  // pointer sequence identifies the context exactly.
  size_t Key = 0;
  if (CacheEnabled) {
    auto Mix = [&](uint64_t V) {
      Key ^= V + 0x9e3779b97f4a7c15ull + (Key << 6) + (Key >> 2);
    };
    for (const Frame &F : Frames)
      for (TermRef A : F.Asserts)
        Mix(A->id());
    Mix(0xabcdef);
    Mix(Extra->id());
    auto It = CheckCache.find(Key);
    if (It != CheckCache.end()) {
      ++S.CacheHits;
      static metrics::Counter &CacheHits = metrics::Registry::instance().counter(
          "efc_solver_cache_hits_total", "checkWith() result-cache hits");
      CacheHits.inc();
      LastModel = ModelSrc::None;
      return It->second;
    }
  }

  push();
  add(Extra);
  SatResult R = check();
  ModelSrc Saved = LastModel;
  std::unique_ptr<IntervalAnalysis> SavedIA = std::move(LastInterval);
  pop();
  // pop() clears the model source; restore it so callers can read a model
  // from a checkWith() that answered Sat.  (The SAT model itself persists
  // inside the SAT solver; interval models persist in SavedIA.)
  LastModel = Saved;
  LastInterval = std::move(SavedIA);
  if (CacheEnabled && R != SatResult::Unknown)
    CheckCache.emplace(Key, R);
  return R;
}

Value Solver::modelValue(TermRef VarLike) {
  switch (LastModel) {
  case ModelSrc::FromSat:
    return Blaster.readValue(VarLike);
  case ModelSrc::FromInterval:
    assert(LastInterval);
    return LastInterval->modelOf(VarLike);
  case ModelSrc::FromGuess:
    return guessedValue(VarLike);
  case ModelSrc::Trivial:
  case ModelSrc::None:
    return Value::defaultOf(VarLike->type());
  }
  return Value::defaultOf(VarLike->type());
}

Value Solver::guessedValue(TermRef T) {
  return assembleValue(Ctx, T->type(), T, GuessedLeaves);
}

bool Solver::tryGuess(const std::vector<TermRef> &Asserts,
                      const IntervalAnalysis *IA) {
  // Atoms and constant pool.
  std::unordered_set<TermRef> Atoms, Seen;
  std::vector<uint64_t> Pool{0, 1};
  std::unordered_set<TermRef> SeenC;
  for (TermRef A : Asserts) {
    collectLeaves(A, Atoms, Seen);
    collectConsts(A, Pool, SeenC);
  }
  if (Atoms.size() > 64)
    return false; // too many dimensions for random probing
  // Neighbourhoods of constants are likely witnesses for range guards.
  size_t N = Pool.size();
  for (size_t I = 0; I < N; ++I) {
    Pool.push_back(Pool[I] + 1);
    Pool.push_back(Pool[I] - 1);
  }

  std::vector<TermRef> AtomList(Atoms.begin(), Atoms.end());
  // Iterate atoms in interned-id order, not unordered_set (pointer) order:
  // each atom's guess draws from a shared PRNG stream, so the probe
  // sequence must not depend on heap addresses or results become
  // process-history dependent (and cached native artifacts stop matching
  // across restarts).
  std::sort(AtomList.begin(), AtomList.end(),
            [](TermRef A, TermRef B) { return A->id() < B->id(); });
  std::unordered_set<TermRef> Roots;
  for (TermRef A : AtomList)
    Roots.insert(rootVarOf(A));

  uint64_t Rng = 0x9E3779B97F4A7C15ull;
  auto Next = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };

  constexpr int Tries = 24;
  for (int T = 0; T < Tries; ++T) {
    GuessedLeaves.clear();
    for (TermRef A : AtomList) {
      // Respect harvested bounds/pins when available: range guards on
      // atoms are the dominant constraint shape.
      const Interval *B = nullptr;
      if (IA) {
        auto It = IA->atomBounds().find(A);
        if (It != IA->atomBounds().end())
          B = &It->second;
      }
      if (A->type()->isBool()) {
        Tri Pin = Tri::Unknown;
        if (IA) {
          auto It = IA->atomBools().find(A);
          if (It != IA->atomBools().end())
            Pin = It->second;
        }
        bool V = Pin == Tri::Unknown ? (T == 0 ? false : (Next() & 1))
                                     : Pin == Tri::True;
        GuessedLeaves[A] = Value::boolV(V);
      } else if (B && !B->isEmpty()) {
        uint64_t Span = B->Hi - B->Lo + 1;
        uint64_t V = T == 0          ? B->Lo
                     : T == 1        ? B->Hi
                     : Span == 0     ? Next() // full 64-bit range wrapped
                                     : B->Lo + Next() % Span;
        GuessedLeaves[A] = Value::bv(A->type()->width(), V);
      } else {
        uint64_t V = T == 0 ? 0 : Pool[Next() % Pool.size()];
        GuessedLeaves[A] = Value::bv(A->type()->width(), V);
      }
    }
    Env E;
    for (TermRef Root : Roots)
      E.bind(Root, assembleValue(Ctx, Root->type(), Root, GuessedLeaves));
    bool AllTrue = true;
    for (TermRef A : Asserts) {
      if (!evalTerm(A, E).boolValue()) {
        AllTrue = false;
        break;
      }
    }
    if (AllTrue)
      return true;
  }
  GuessedLeaves.clear();
  return false;
}
