//===- verify/EquivChecker.h - Solver-certified backend equivalence -*- C++ -*-===//
///
/// \file
/// Certifies that the executable backends of one pipeline agree, promoting
/// cross-backend trust from randomized differential testing to per-state
/// proof (ROADMAP "solver-certified backend equivalence"; cf. the certified
/// symbolic-finite-transducer line in PAPERS.md).  Three artifacts are
/// related:
///
///  1. Fused/optimized BST vs VM bytecode.  Each state's transition and
///     finalizer programs are symbolically executed path-by-path and
///     compared against the rule tree: for every input element and register
///     valuation in range, guard outcomes, emitted outputs, register
///     updates, and successor states must match.  Each obligation is
///     discharged as an UNSAT query through the in-house Solver; because
///     the symbolic executor and the rule translator build terms through
///     the same hash-consing factory with identical operator encodings,
///     most obligations collapse to pointer equality and never reach SAT.
///
///  2. Byte-class fast-path tables and run kernels vs that bytecode.  For
///     every table-eligible state and all 256 dispatch entries, the table
///     action at byte b must equal the bytecode evaluation at b; run
///     kernels additionally satisfy the self-loop / constant-write /
///     uniform-output side conditions that justify consuming whole spans.
///
///  3. Structural certification that CppCodeGen emits from the same
///     certified IR and tables: a classifier hash over the rule trees,
///     byte-class tables, and run kernels is embedded in generated source
///     and checked again at dlopen time (codegen/NativeCompile.cpp).
///
/// Certification is bounded: each state gets a time budget, and exceeding
/// it (or a solver conflict-budget Unknown) degrades that state to
/// "unverified" — never to "certified".  Counterexamples carry a concrete
/// input element and register valuation, rendered as inputs the
/// differential oracle can replay as regression seeds.
///
/// What "certified" claims — and does not claim — is spelled out in
/// DESIGN.md "Certification".
///
//===----------------------------------------------------------------------===//

#ifndef EFC_VERIFY_EQUIVCHECKER_H
#define EFC_VERIFY_EQUIVCHECKER_H

#include "bst/Bst.h"
#include "vm/FastPath.h"
#include "vm/Vm.h"

#include <cstdint>
#include <string>
#include <vector>

namespace efc::verify {

/// Certification verdict for one pipeline (or one state).
enum class CertStatus : uint8_t {
  Unchecked,  ///< certification was not attempted
  Certified,  ///< every obligation discharged UNSAT
  Unverified, ///< budget exhausted or solver Unknown; no disagreement found
  Refuted,    ///< a concrete disagreement witness exists
};

const char *certStatusName(CertStatus S);

/// A concrete disagreement witness.  The input element / register
/// valuation refute equivalence *of one state's step function*; the state
/// itself may or may not be reachable with that register valuation, so a
/// counterexample is a definite backend bug but not always a whole-input
/// divergence (see DESIGN.md "Certification" for the soundness fine
/// print).
struct Counterexample {
  std::string Part; ///< "init", "bytecode", "finalizer", "table", "kernel",
                    ///< "codegen"
  unsigned State = 0;
  bool Finalizer = false;
  bool HasInput = false;
  uint64_t Input = 0;              ///< input element (when HasInput)
  std::vector<uint64_t> Regs;      ///< register-slot valuation (leaf order)
  std::string Detail;              ///< human-readable disagreement

  /// One-line rendering for logs and tool output.
  std::string str() const;

  /// The witness as a concrete input sequence suitable for oracle replay /
  /// the regression corpus (empty for finalizer-only witnesses).
  std::vector<uint64_t> seedInput() const;
};

struct CertOptions {
  /// Wall-clock budget per control state; <= 0 means "no time at all":
  /// every state degrades to Unverified immediately (used to test the
  /// budget-exhaustion path).
  double StateBudgetSeconds = 5.0;
  /// CDCL conflict budget per solver query; Unknown degrades the state to
  /// Unverified.
  int64_t ConflictBudget = 200000;
  /// Cap on symbolic paths enumerated per bytecode program; exceeding it
  /// degrades the state to Unverified.
  unsigned MaxPathsPerProgram = 4096;
  /// Also certify part 3 (codegen classifier hash).
  bool CheckCodegen = true;
};

struct CertReport {
  CertStatus Status = CertStatus::Unchecked;
  unsigned StatesCertified = 0;
  unsigned StatesUnverified = 0;
  unsigned StatesRefuted = 0;
  unsigned TimedOutStates = 0; ///< subset of unverified: budget exhaustion
  uint64_t SolverQueries = 0;
  uint64_t TrivialMatches = 0; ///< obligations closed by hash-consing alone
  double Seconds = 0;
  bool CodegenChecked = false;
  bool CodegenOk = false;
  uint64_t ClassifierHash = 0;
  std::vector<Counterexample> Counterexamples;

  /// One-line summary for tool output and logs.
  std::string summary() const;
};

/// Certifies one compiled pipeline stage set: fused BST \p A against its
/// compiled transducer \p T, and (when \p Plan is non-null) the fast-path
/// tables and run kernels of \p Plan.  The referenced objects must outlive
/// the checker.
class EquivChecker {
public:
  EquivChecker(const Bst &A, const CompiledTransducer &T,
               const FastPathPlan *Plan = nullptr, CertOptions Opts = {});

  /// Runs all enabled parts; idempotent (the report is cached).
  const CertReport &run();

  const CertReport &report() const { return R; }

private:
  const Bst &A;
  const CompiledTransducer &T;
  const FastPathPlan *Plan;
  CertOptions Opts;
  CertReport R;
  bool Ran = false;
};

/// Convenience wrapper: certify and return the report.
CertReport certifyPipeline(const Bst &A, const CompiledTransducer &T,
                           const FastPathPlan *Plan = nullptr,
                           const CertOptions &Opts = {});

} // namespace efc::verify

#endif // EFC_VERIFY_EQUIVCHECKER_H
