//===- verify/EquivChecker.cpp - Solver-certified backend equivalence -----===//
//
// The checker relates three artifacts per pipeline stage set:
//
//  Part 1 (bytecode):  every state's delta/finalizer program is symbolically
//  executed into path predicates + observations, and the rule tree is
//  translated into the same 64-bit term encoding through shared helper
//  functions, so matching branches produce pointer-identical terms and
//  discharge by hash-consing; residual obligations go to the solver as
//  "∃ element distinguishing branch f and g" queries (solver/QueryBuilder.h).
//
//  Part 2 (tables):  for table-eligible states, each of the 256 dispatch
//  entries is compared against the concrete bytecode evaluation at that
//  byte (guards of table states are input-only, so the reference term
//  evaluator decides which symbolic path the byte takes), and run kernels
//  are checked for the self-loop / constant-write / uniform-output side
//  conditions that make span consumption sound.
//
//  Part 3 (codegen):  the classifier hash over rule trees + tables +
//  kernels (codegen/CppCodeGen.h) must appear verbatim in the source
//  CppCodeGen generates for this BST.
//
// The VM does not mask its input slot, so equivalence is certified on the
// in-range input domain x < 2^W (the domain every upstream stage and the
// byte-oriented drivers produce); register leaves are likewise constrained
// to their declared widths, matching the VM's slots-hold-masked-values
// invariant.  See DESIGN.md "Certification".
//
//===----------------------------------------------------------------------===//

#include "verify/EquivChecker.h"

#include "codegen/CppCodeGen.h"
#include "solver/QueryBuilder.h"
#include "support/Stopwatch.h"
#include "term/Eval.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

using namespace efc;
using namespace efc::verify;

namespace efc::verify {

const char *certStatusName(CertStatus S) {
  switch (S) {
  case CertStatus::Unchecked:
    return "unchecked";
  case CertStatus::Certified:
    return "certified";
  case CertStatus::Unverified:
    return "unverified";
  case CertStatus::Refuted:
    return "refuted";
  }
  return "?";
}

std::string Counterexample::str() const {
  std::string S = "[" + Part + "] state " + std::to_string(State);
  if (Finalizer)
    S += " (finalizer)";
  if (HasInput) {
    char Buf[32];
    snprintf(Buf, sizeof(Buf), " input=0x%" PRIx64, Input);
    S += Buf;
  }
  if (!Regs.empty()) {
    S += " regs=[";
    for (size_t I = 0; I < Regs.size(); ++I) {
      char Buf[32];
      snprintf(Buf, sizeof(Buf), "%s0x%" PRIx64, I ? "," : "", Regs[I]);
      S += Buf;
    }
    S += "]";
  }
  if (!Detail.empty())
    S += ": " + Detail;
  return S;
}

std::vector<uint64_t> Counterexample::seedInput() const {
  if (!HasInput)
    return {};
  // Kernel witnesses exercise span consumption; replay a length-2 run so
  // the driver actually enters the kernel loop.
  if (Part == "kernel")
    return {Input, Input};
  return {Input};
}

std::string CertReport::summary() const {
  char Buf[256];
  snprintf(Buf, sizeof(Buf),
           "status=%s states=%u/%u/%u (certified/unverified/refuted) "
           "timeouts=%u queries=%" PRIu64 " trivial=%" PRIu64
           " codegen=%s hash=0x%016" PRIx64 " (%.2fs)",
           certStatusName(Status), StatesCertified, StatesUnverified,
           StatesRefuted, TimedOutStates, SolverQueries, TrivialMatches,
           !CodegenChecked ? "skipped" : CodegenOk ? "ok" : "MISMATCH",
           ClassifierHash, Seconds);
  return Buf;
}

} // namespace efc::verify

namespace {

/// Flattens a register-shaped term into its scalar leaves, in the same
/// order the VM's slot layout uses (vm/Vm.cpp collectLeafTerms): the
/// projection chains go through the factory, so they are the interned
/// terms that appear in rules.
void flattenLeaves(TermContext &Ctx, TermRef T, std::vector<TermRef> &Out) {
  const Type *Ty = T->type();
  switch (Ty->kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(T);
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (unsigned I = 0; I < Ty->arity(); ++I)
      flattenLeaves(Ctx, Ctx.mkTupleGet(T, I), Out);
    return;
  }
}

void flattenValue(const Value &V, std::vector<uint64_t> &Out) {
  switch (V.kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(V.bits());
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (const Value &E : V.elems())
      flattenValue(E, Out);
    return;
  }
}

/// Shared 64-bit operator encodings.  Both the symbolic VM executor and
/// the rule translator build through these helpers, so a rule branch and
/// its compiled program yield pointer-identical terms whenever the
/// compiler was faithful — which is what turns most proof obligations
/// into hash-cons lookups.  Each helper mirrors one case of
/// CompiledTransducer::Cursor::exec() exactly (vm/Vm.cpp).
struct Cx {
  TermContext &Ctx;
  const Type *B64;
  TermRef Zero, One;

  explicit Cx(TermContext &Ctx)
      : Ctx(Ctx), B64(Ctx.bv(64)), Zero(Ctx.bvConst(B64, 0)),
        One(Ctx.bvConst(B64, 1)) {}

  TermRef k(uint64_t V) { return Ctx.bvConst(B64, V); }
  TermRef maskT(unsigned W) { return k(Value::maskOf(W)); }
  TermRef mask(TermRef T, unsigned W) {
    return W >= 64 ? T : Ctx.mkBvAnd(T, maskT(W));
  }
  /// The low W bits of T sign-extended to 64 (exec's toSigned).
  TermRef sx(TermRef T, unsigned W) {
    if (W >= 64)
      return T;
    if (W == 0)
      return Zero;
    return Ctx.mkSExt(Ctx.mkExtract(T, W - 1, 0), 64);
  }
  /// Bool -> {0,1} as a 64-bit value.
  TermRef b2v(TermRef B) {
    if (B->isTrue())
      return One;
    if (B->isFalse())
      return Zero;
    return Ctx.mkIte(B, One, Zero);
  }

  TermRef opAdd(TermRef A, TermRef B, unsigned W) {
    return mask(Ctx.mkAdd(A, B), W);
  }
  TermRef opSub(TermRef A, TermRef B, unsigned W) {
    return mask(Ctx.mkSub(A, B), W);
  }
  TermRef opMul(TermRef A, TermRef B, unsigned W) {
    return mask(Ctx.mkMul(A, B), W);
  }
  TermRef opUDiv(TermRef A, TermRef B, unsigned W) {
    // exec: b ? a / b : maskTo(W, ~0).  64-bit SMT udiv-by-zero yields
    // 64 set bits, not W, so the zero case is made explicit.
    return Ctx.mkIte(Ctx.mkEq(B, Zero), maskT(W), Ctx.mkUDiv(A, B));
  }
  TermRef opURem(TermRef A, TermRef B) {
    // exec: b ? a % b : a — exactly SMT-LIB bvurem.
    return Ctx.mkURem(A, B);
  }
  TermRef opNeg(TermRef A, unsigned W) { return mask(Ctx.mkNeg(A), W); }
  TermRef opNotBits(TermRef A, unsigned W) {
    return mask(Ctx.mkBvNot(A), W);
  }
  TermRef opShl(TermRef A, TermRef B, unsigned W) {
    return Ctx.mkIte(Ctx.mkUlt(B, k(W)), mask(Ctx.mkShl(A, B), W), Zero);
  }
  TermRef opLShr(TermRef A, TermRef B, unsigned W) {
    return Ctx.mkIte(Ctx.mkUlt(B, k(W)), Ctx.mkLShr(A, B), Zero);
  }
  TermRef opAShr(TermRef A, TermRef B, unsigned W) {
    TermRef V = sx(A, W);
    TermRef Fill = Ctx.mkIte(Ctx.mkSlt(V, Zero), maskT(W), Zero);
    return Ctx.mkIte(Ctx.mkUlt(B, k(W)), mask(Ctx.mkAShr(V, B), W), Fill);
  }
  TermRef opSlt(TermRef A, TermRef B, unsigned W) {
    return Ctx.mkSlt(sx(A, W), sx(B, W));
  }
  TermRef opSle(TermRef A, TermRef B, unsigned W) {
    return Ctx.mkSle(sx(A, W), sx(B, W));
  }
  TermRef opSExt(TermRef A, unsigned SrcW, unsigned DstW) {
    return mask(sx(A, SrcW), DstW);
  }
  TermRef opExtract(TermRef A, unsigned Lo, unsigned W) {
    return mask(Lo ? Ctx.mkLShrC(A, Lo) : A, W);
  }
};

/// A slot during symbolic execution.  V is the 64-bit value; B, when
/// non-null, is a boolean view with the invariant V == b2v(B) (so V is
/// {0,1} and B <=> V != 0).  The view keeps guard terms in the same shape
/// the rule translator produces.
struct SlotVal {
  TermRef V = nullptr;
  TermRef B = nullptr;
};

/// One explored program path: path predicate + observations.
struct SymPath {
  std::vector<TermRef> Conds; ///< boolean conjuncts, branch order
  bool Reject = false;
  unsigned Target = 0;          ///< delta paths: Next target state
  std::vector<TermRef> Emits;   ///< 64-bit emitted values
  std::vector<TermRef> RegOut;  ///< delta paths: register slots at Next
};

/// One root-to-leaf path of a rule tree, with translated guards.
struct RulePath {
  std::vector<TermRef> Conds;
  const Rule *Leaf = nullptr; // Base or Undef
};

class Checker {
public:
  Checker(const Bst &A, const CompiledTransducer &T, const FastPathPlan *Plan,
          const CertOptions &Opts)
      : A(A), T(T), Plan(Plan), Opts(Opts), Ctx(A.context()), C(Ctx),
        S(Ctx, Opts.ConflictBudget) {
    X64 = Ctx.var("__cert.x", C.B64);
    flattenLeaves(Ctx, A.regVar(), RegLeaves);
    for (size_t I = 0; I < RegLeaves.size(); ++I)
      RegVars.push_back(
          Ctx.var("__cert.r" + std::to_string(I), C.B64));
    for (size_t I = 0; I < RegLeaves.size(); ++I)
      LeafSlot.emplace(RegLeaves[I], unsigned(I));
    buildDomain();
  }

  CertReport run();

private:
  const Bst &A;
  const CompiledTransducer &T;
  const FastPathPlan *Plan;
  CertOptions Opts;
  TermContext &Ctx;
  Cx C;
  Solver S;

  TermRef X64 = nullptr;
  std::vector<TermRef> RegLeaves; ///< projection-chain leaf terms
  std::vector<TermRef> RegVars;   ///< 64-bit solver variables per slot
  std::unordered_map<TermRef, unsigned> LeafSlot;
  std::vector<TermRef> DomainConds;

  std::unordered_map<TermRef, TermRef> ValMemo, CondMemo;
  std::unordered_map<TermRef, bool> XOnlyMemo;

  CertReport R;
  Stopwatch StateTimer;
  CertStatus StateStatus = CertStatus::Certified;
  bool StateTimedOut = false;

  //===------------------------------------------------------------------===//
  // Setup
  //===------------------------------------------------------------------===//

  void buildDomain() {
    // The VM never masks its input slot; certification covers the
    // in-range domain every byte/char-oriented driver produces.
    if (A.inputType()->isBitVec() && A.inputType()->width() < 64)
      DomainConds.push_back(
          Ctx.mkUlt(X64, C.k(uint64_t(1) << A.inputType()->width())));
    for (size_t I = 0; I < RegLeaves.size(); ++I) {
      const Type *Ty = RegLeaves[I]->type();
      if (Ty->isBool())
        DomainConds.push_back(Ctx.mkUle(RegVars[I], C.One));
      else if (Ty->width() < 64)
        DomainConds.push_back(
            Ctx.mkUlt(RegVars[I], C.k(uint64_t(1) << Ty->width())));
    }
  }

  TermRef boolView(unsigned Slot) {
    return Ctx.mkNeq(RegVars[Slot], C.Zero);
  }

  //===------------------------------------------------------------------===//
  // Rule translation (mirrors vm/Vm.cpp RuleCompiler encodings)
  //===------------------------------------------------------------------===//

  static unsigned widthOf(TermRef T) {
    return T->type()->isBool() ? 1 : T->type()->width();
  }

  /// 64-bit value encoding of a scalar rule term; null when the term
  /// cannot be translated (degrades the state to Unverified).
  TermRef value(TermRef T) {
    auto It = ValMemo.find(T);
    if (It != ValMemo.end())
      return It->second;
    TermRef V = valueImpl(T);
    ValMemo.emplace(T, V);
    return V;
  }

  TermRef valueImpl(TermRef T) {
    if (T->type()->isBool()) {
      TermRef B = cond(T);
      return B ? C.b2v(B) : nullptr;
    }
    switch (T->op()) {
    case Op::ConstBv:
      return C.k(T->constBits());
    case Op::Var:
      if (T == A.inputVar())
        return X64;
      [[fallthrough]];
    case Op::TupleGet: {
      auto F = LeafSlot.find(T);
      if (F != LeafSlot.end())
        return RegVars[F->second];
      // Non-leaf projection: push through a syntactic MkTuple.
      if (T->op() == Op::TupleGet &&
          T->operand(0)->op() == Op::MkTuple)
        return value(T->operand(0)->operand(T->tupleIndex()));
      return nullptr;
    }
    case Op::Ite: {
      TermRef Cc = cond(T->operand(0));
      TermRef Vt = value(T->operand(1));
      TermRef Ve = value(T->operand(2));
      return Cc && Vt && Ve ? Ctx.mkIte(Cc, Vt, Ve) : nullptr;
    }
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::UDiv:
    case Op::URem:
    case Op::BvAnd:
    case Op::BvOr:
    case Op::BvXor:
    case Op::Shl:
    case Op::LShr:
    case Op::AShr: {
      TermRef Va = value(T->operand(0));
      TermRef Vb = value(T->operand(1));
      if (!Va || !Vb)
        return nullptr;
      unsigned W = widthOf(T);
      switch (T->op()) {
      case Op::Add:
        return C.opAdd(Va, Vb, W);
      case Op::Sub:
        return C.opSub(Va, Vb, W);
      case Op::Mul:
        return C.opMul(Va, Vb, W);
      case Op::UDiv:
        return C.opUDiv(Va, Vb, W);
      case Op::URem:
        return C.opURem(Va, Vb);
      case Op::BvAnd:
        return Ctx.mkBvAnd(Va, Vb);
      case Op::BvOr:
        return Ctx.mkBvOr(Va, Vb);
      case Op::BvXor:
        return Ctx.mkBvXor(Va, Vb);
      case Op::Shl:
        return C.opShl(Va, Vb, W);
      case Op::LShr:
        return C.opLShr(Va, Vb, W);
      default:
        return C.opAShr(Va, Vb, W);
      }
    }
    case Op::Neg: {
      TermRef Va = value(T->operand(0));
      return Va ? C.opNeg(Va, widthOf(T)) : nullptr;
    }
    case Op::BvNot: {
      TermRef Va = value(T->operand(0));
      return Va ? C.opNotBits(Va, widthOf(T)) : nullptr;
    }
    case Op::ZExt:
      // The VM compiles ZExt to nothing: slots hold masked values.
      return value(T->operand(0));
    case Op::SExt: {
      TermRef Va = value(T->operand(0));
      return Va ? C.opSExt(Va, widthOf(T->operand(0)), widthOf(T))
                : nullptr;
    }
    case Op::Extract: {
      TermRef Va = value(T->operand(0));
      return Va ? C.opExtract(Va, T->extractLo(), widthOf(T)) : nullptr;
    }
    default:
      return nullptr;
    }
  }

  /// Boolean encoding of a bool-typed rule term; null on failure.
  TermRef cond(TermRef T) {
    auto It = CondMemo.find(T);
    if (It != CondMemo.end())
      return It->second;
    TermRef B = condImpl(T);
    CondMemo.emplace(T, B);
    return B;
  }

  TermRef condImpl(TermRef T) {
    switch (T->op()) {
    case Op::ConstBool:
      return Ctx.boolConst(T->constBits() != 0);
    case Op::Var:
    case Op::TupleGet: {
      auto F = LeafSlot.find(T);
      if (F != LeafSlot.end())
        return boolView(F->second);
      if (T->op() == Op::TupleGet &&
          T->operand(0)->op() == Op::MkTuple)
        return cond(T->operand(0)->operand(T->tupleIndex()));
      return nullptr;
    }
    case Op::Not: {
      TermRef B = cond(T->operand(0));
      return B ? Ctx.mkNot(B) : nullptr;
    }
    case Op::And:
    case Op::Or: {
      TermRef Ba = cond(T->operand(0));
      TermRef Bb = cond(T->operand(1));
      if (!Ba || !Bb)
        return nullptr;
      return T->op() == Op::And ? Ctx.mkAnd(Ba, Bb) : Ctx.mkOr(Ba, Bb);
    }
    case Op::Ite: {
      TermRef Bc = cond(T->operand(0));
      TermRef Bt = cond(T->operand(1));
      TermRef Be = cond(T->operand(2));
      return Bc && Bt && Be ? Ctx.mkIte(Bc, Bt, Be) : nullptr;
    }
    case Op::Eq:
    case Op::Ult:
    case Op::Ule:
    case Op::Slt:
    case Op::Sle: {
      TermRef Va = value(T->operand(0));
      TermRef Vb = value(T->operand(1));
      if (!Va || !Vb)
        return nullptr;
      unsigned W = widthOf(T->operand(0));
      switch (T->op()) {
      case Op::Eq:
        return Ctx.mkEq(Va, Vb);
      case Op::Ult:
        return Ctx.mkUlt(Va, Vb);
      case Op::Ule:
        return Ctx.mkUle(Va, Vb);
      case Op::Slt:
        return C.opSlt(Va, Vb, W);
      default:
        return C.opSle(Va, Vb, W);
      }
    }
    default:
      return nullptr;
    }
  }

  /// Value encoding for any scalar term (bool leaves in the VM's {0,1}
  /// slot representation).
  TermRef encTerm(TermRef T) {
    if (T->type()->isBool()) {
      TermRef B = cond(T);
      return B ? C.b2v(B) : nullptr;
    }
    return value(T);
  }

  //===------------------------------------------------------------------===//
  // Symbolic VM execution
  //===------------------------------------------------------------------===//

  bool symExec(const VmProgram &P, bool IsFinalizer,
               std::vector<SymPath> &Out) {
    std::vector<SlotVal> Slots(T.numSlots());
    for (unsigned I = 0; I < T.numRegSlots(); ++I) {
      if (I >= Slots.size())
        return false;
      Slots[I].V = RegVars[I];
      if (RegLeaves[I]->type()->isBool())
        Slots[I].B = boolView(I);
      else
        Slots[I].B = nullptr;
    }
    if (T.numRegSlots() < Slots.size())
      Slots[T.numRegSlots()].V = IsFinalizer ? C.Zero : X64;
    for (SlotVal &SV : Slots)
      if (!SV.V)
        SV.V = C.Zero;
    size_t Fuel = 4 * P.Code.size() + 16;
    return walk(P, 0, std::move(Slots), {}, {}, Fuel, Out);
  }

  bool walk(const VmProgram &P, size_t Pc, std::vector<SlotVal> Slots,
            std::vector<TermRef> Conds, std::vector<TermRef> Emits,
            size_t Fuel, std::vector<SymPath> &Out) {
    const std::vector<VmInstr> &Code = P.Code;
    auto Slot = [&](uint16_t I) -> SlotVal * {
      return I < Slots.size() ? &Slots[I] : nullptr;
    };
    for (;;) {
      if (Pc >= Code.size() || Fuel-- == 0)
        return false; // ran off the end / runaway loop: malformed
      const VmInstr &I = Code[Pc++];
      SlotVal *D = Slot(I.Dst), *Av = Slot(I.A), *Bv = Slot(I.B),
              *Cv = Slot(I.C);
      switch (I.Op) {
      case VmOp::Const:
        if (!D)
          return false;
        D->V = C.k(I.Imm);
        D->B = I.Imm <= 1 ? Ctx.boolConst(I.Imm == 1) : nullptr;
        break;
      case VmOp::Mov:
        if (!D || !Av)
          return false;
        *D = *Av;
        break;
      case VmOp::Add:
      case VmOp::Sub:
      case VmOp::Mul:
      case VmOp::UDiv:
      case VmOp::URem:
      case VmOp::Shl:
      case VmOp::LShr:
      case VmOp::AShr: {
        if (!D || !Av || !Bv)
          return false;
        TermRef Va = Av->V, Vb = Bv->V;
        switch (I.Op) {
        case VmOp::Add:
          D->V = C.opAdd(Va, Vb, I.Width);
          break;
        case VmOp::Sub:
          D->V = C.opSub(Va, Vb, I.Width);
          break;
        case VmOp::Mul:
          D->V = C.opMul(Va, Vb, I.Width);
          break;
        case VmOp::UDiv:
          D->V = C.opUDiv(Va, Vb, I.Width);
          break;
        case VmOp::URem:
          D->V = C.opURem(Va, Vb);
          break;
        case VmOp::Shl:
          D->V = C.opShl(Va, Vb, I.Width);
          break;
        case VmOp::LShr:
          D->V = C.opLShr(Va, Vb, I.Width);
          break;
        default:
          D->V = C.opAShr(Va, Vb, I.Width);
          break;
        }
        D->B = nullptr;
        break;
      }
      case VmOp::Neg:
        if (!D || !Av)
          return false;
        D->V = C.opNeg(Av->V, I.Width);
        D->B = nullptr;
        break;
      case VmOp::And:
      case VmOp::Or:
        if (!D || !Av || !Bv)
          return false;
        if (Av->B && Bv->B) {
          // Boolean connective: keep the bool view so guards match the
          // rule translator's terms pointer-for-pointer.
          setBool(*D, I.Op == VmOp::And ? Ctx.mkAnd(Av->B, Bv->B)
                                        : Ctx.mkOr(Av->B, Bv->B));
        } else {
          D->V = I.Op == VmOp::And ? Ctx.mkBvAnd(Av->V, Bv->V)
                                   : Ctx.mkBvOr(Av->V, Bv->V);
          D->B = nullptr;
        }
        break;
      case VmOp::Xor:
        if (!D || !Av || !Bv)
          return false;
        D->V = Ctx.mkBvXor(Av->V, Bv->V);
        D->B = nullptr;
        break;
      case VmOp::NotBits:
        if (!D || !Av)
          return false;
        D->V = C.opNotBits(Av->V, I.Width);
        D->B = nullptr;
        break;
      case VmOp::NotBool:
        if (!D || !Av)
          return false;
        if (Av->B) {
          setBool(*D, Ctx.mkNot(Av->B));
        } else {
          D->V = Ctx.mkBvXor(Av->V, C.One);
          D->B = nullptr;
        }
        break;
      case VmOp::Eq:
        if (!D || !Av || !Bv)
          return false;
        setBool(*D, Ctx.mkEq(Av->V, Bv->V));
        break;
      case VmOp::Ult:
        if (!D || !Av || !Bv)
          return false;
        setBool(*D, Ctx.mkUlt(Av->V, Bv->V));
        break;
      case VmOp::Ule:
        if (!D || !Av || !Bv)
          return false;
        setBool(*D, Ctx.mkUle(Av->V, Bv->V));
        break;
      case VmOp::Slt:
        if (!D || !Av || !Bv)
          return false;
        setBool(*D, C.opSlt(Av->V, Bv->V, I.Width));
        break;
      case VmOp::Sle:
        if (!D || !Av || !Bv)
          return false;
        setBool(*D, C.opSle(Av->V, Bv->V, I.Width));
        break;
      case VmOp::SExt:
        if (!D || !Av)
          return false;
        D->V = C.opSExt(Av->V, I.Width, unsigned(uint8_t(I.Imm)));
        D->B = nullptr;
        break;
      case VmOp::Extract:
        if (!D || !Av || I.Imm >= 64)
          return false;
        D->V = C.opExtract(Av->V, unsigned(I.Imm), I.Width);
        D->B = nullptr;
        break;
      case VmOp::Select:
        if (!D || !Av || !Bv || !Cv)
          return false;
        if (Av->B && Bv->B && Cv->B) {
          setBool(*D, Ctx.mkIte(Av->B, Bv->B, Cv->B));
        } else {
          TermRef Cond =
              Av->B ? Av->B : Ctx.mkNeq(Av->V, C.Zero);
          D->V = Ctx.mkIte(Cond, Bv->V, Cv->V);
          D->B = nullptr;
        }
        break;
      case VmOp::Jz: {
        if (!Av || I.Imm > Code.size())
          return false;
        TermRef FallC = Av->B ? Av->B : Ctx.mkNeq(Av->V, C.Zero);
        if (FallC->isTrue())
          break; // never jumps
        if (FallC->isFalse()) {
          Pc = size_t(I.Imm); // always jumps
          break;
        }
        // Fork.  Fall-through first: the rule compiler lays the then-arm
        // out before the else-arm, and path enumeration on the rule side
        // visits then first, so aligned pairing lines up positionally.
        {
          std::vector<TermRef> FallConds = Conds;
          FallConds.push_back(FallC);
          if (!walk(P, Pc, Slots, std::move(FallConds), Emits, Fuel, Out))
            return false;
        }
        Conds.push_back(Ctx.mkNot(FallC));
        Pc = size_t(I.Imm);
        break;
      }
      case VmOp::Jmp:
        if (I.Imm > Code.size())
          return false;
        Pc = size_t(I.Imm);
        break;
      case VmOp::Emit:
        if (!Av)
          return false;
        Emits.push_back(Av->V);
        break;
      case VmOp::Next:
      case VmOp::Accept:
      case VmOp::Reject: {
        if (Out.size() >= Opts.MaxPathsPerProgram)
          return false;
        SymPath SP;
        SP.Conds = std::move(Conds);
        SP.Emits = std::move(Emits);
        SP.Reject = I.Op == VmOp::Reject;
        if (I.Op == VmOp::Next) {
          SP.Target = unsigned(I.Imm);
          SP.RegOut.reserve(T.numRegSlots());
          for (unsigned K = 0; K < T.numRegSlots(); ++K)
            SP.RegOut.push_back(Slots[K].V);
        }
        Out.push_back(std::move(SP));
        return true;
      }
      }
    }
  }

  void setBool(SlotVal &D, TermRef B) {
    D.B = B;
    D.V = C.b2v(B);
  }

  //===------------------------------------------------------------------===//
  // Rule path enumeration
  //===------------------------------------------------------------------===//

  bool rulePaths(const Rule *Rl, std::vector<TermRef> &Conds,
                 std::vector<RulePath> &Out) {
    if (Out.size() >= Opts.MaxPathsPerProgram)
      return false;
    switch (Rl->kind()) {
    case Rule::Kind::Base:
    case Rule::Kind::Undef:
      Out.push_back(RulePath{Conds, Rl});
      return true;
    case Rule::Kind::Ite: {
      TermRef Cc = cond(Rl->cond());
      if (!Cc)
        return false;
      if (Cc->isTrue())
        return rulePaths(Rl->thenRule().get(), Conds, Out);
      if (Cc->isFalse())
        return rulePaths(Rl->elseRule().get(), Conds, Out);
      Conds.push_back(Cc);
      if (!rulePaths(Rl->thenRule().get(), Conds, Out))
        return false;
      Conds.back() = Ctx.mkNot(Cc);
      bool Ok = rulePaths(Rl->elseRule().get(), Conds, Out);
      Conds.pop_back();
      return Ok;
    }
    }
    return false;
  }

  /// Observations of a rule leaf in the VM's slot encoding; false when a
  /// term cannot be translated.
  bool leafObs(const Rule *Leaf, bool IsFinalizer, SymPath &Obs) {
    if (Leaf->isUndef()) {
      Obs.Reject = true;
      return true;
    }
    for (TermRef O : Leaf->outputs()) {
      TermRef V = encTerm(O);
      if (!V)
        return false;
      Obs.Emits.push_back(V);
    }
    if (IsFinalizer)
      return true;
    Obs.Target = Leaf->target();
    std::vector<TermRef> NewLeaves;
    flattenLeaves(Ctx, Leaf->update(), NewLeaves);
    if (NewLeaves.size() != T.numRegSlots())
      return false;
    for (unsigned I = 0; I < NewLeaves.size(); ++I) {
      TermRef V = NewLeaves[I] == RegLeaves[I] ? RegVars[I]
                                               : encTerm(NewLeaves[I]);
      if (!V)
        return false;
      Obs.RegOut.push_back(V);
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Budget / status plumbing
  //===------------------------------------------------------------------===//

  bool budgetLeft() {
    if (Opts.StateBudgetSeconds <= 0 ||
        StateTimer.seconds() >= Opts.StateBudgetSeconds) {
      StateTimedOut = true;
      degrade(CertStatus::Unverified);
      return false;
    }
    return true;
  }

  void degrade(CertStatus To) {
    if (unsigned(To) > unsigned(StateStatus))
      StateStatus = To;
  }

  void refute(Counterexample CE) {
    degrade(CertStatus::Refuted);
    if (R.Counterexamples.size() < 64)
      R.Counterexamples.push_back(std::move(CE));
  }

  std::vector<TermRef> witnessVars(bool IsFinalizer) {
    std::vector<TermRef> W;
    if (!IsFinalizer)
      W.push_back(X64);
    W.insert(W.end(), RegVars.begin(), RegVars.end());
    return W;
  }

  Counterexample makeCe(std::string Part, unsigned Q, bool IsFinalizer,
                        const std::vector<uint64_t> &Witness,
                        std::string Detail) {
    Counterexample CE;
    CE.Part = std::move(Part);
    CE.State = Q;
    CE.Finalizer = IsFinalizer;
    size_t I = 0;
    if (!IsFinalizer && !Witness.empty()) {
      CE.HasInput = true;
      CE.Input = Witness[0];
      I = 1;
    }
    CE.Regs.assign(Witness.begin() + I, Witness.end());
    CE.Detail = std::move(Detail);
    return CE;
  }

  //===------------------------------------------------------------------===//
  // Part 1: bytecode vs rules
  //===------------------------------------------------------------------===//

  /// Compares the observations of one rule path against one VM path under
  /// the given assumptions.  Returns false when the state should stop
  /// (refuted with a recorded witness, or budget exhausted).
  enum class PairVerdict { Equal, Distinct, Unknown, Trivial };

  PairVerdict comparePair(const SymPath &RuleObs,
                          const std::vector<TermRef> &RuleConds,
                          const SymPath &Vm,
                          const std::vector<TermRef> *VmConds,
                          bool IsFinalizer,
                          std::vector<uint64_t> &WitnessOut,
                          std::string &DetailOut) {
    DistinguishQuery Q(S);
    Q.assumeAll(DomainConds);
    Q.assumeAll(RuleConds);
    if (VmConds)
      Q.assumeAll(*VmConds);
    if (RuleObs.Reject != Vm.Reject) {
      Q.requireDisagree();
      DetailOut = RuleObs.Reject ? "rule rejects, bytecode accepts"
                                 : "rule accepts, bytecode rejects";
    } else if (RuleObs.Reject) {
      return PairVerdict::Trivial; // both reject: no observations
    } else {
      if (!IsFinalizer && RuleObs.Target != Vm.Target) {
        Q.requireDisagree();
        DetailOut = "target state " + std::to_string(RuleObs.Target) +
                    " vs " + std::to_string(Vm.Target);
      } else if (RuleObs.Emits.size() != Vm.Emits.size()) {
        Q.requireDisagree();
        DetailOut = "emit count " + std::to_string(RuleObs.Emits.size()) +
                    " vs " + std::to_string(Vm.Emits.size());
      } else {
        for (size_t I = 0; I < RuleObs.Emits.size(); ++I)
          Q.requireEqual(RuleObs.Emits[I], Vm.Emits[I]);
        for (size_t I = 0; I < RuleObs.RegOut.size(); ++I)
          Q.requireEqual(RuleObs.RegOut[I], Vm.RegOut[I]);
        DetailOut = "emitted or updated values differ";
      }
    }
    if (Q.trivial()) {
      ++R.TrivialMatches;
      return PairVerdict::Trivial;
    }
    std::vector<TermRef> WV = witnessVars(IsFinalizer);
    ++R.SolverQueries;
    DistinguishResult DR = Q.check(WV);
    if (DR.R == SatResult::Unsat)
      return PairVerdict::Equal;
    if (DR.R == SatResult::Unknown)
      return PairVerdict::Unknown;
    WitnessOut = std::move(DR.Witness);
    return PairVerdict::Distinct;
  }

  /// SAT(domain ∧ A ∧ ¬B) — is predicate A not contained in B?
  SatResult checkNotImplies(const std::vector<TermRef> &Ac, TermRef B) {
    S.push();
    for (TermRef D : DomainConds)
      S.add(D);
    for (TermRef Cn : Ac)
      S.add(Cn);
    S.add(Ctx.mkNot(B));
    ++R.SolverQueries;
    SatResult Res = S.check();
    S.pop();
    return Res;
  }

  void checkProgram(unsigned Q, bool IsFinalizer, const std::string &Part,
                    const std::vector<SymPath> &VPaths) {
    const Rule *Rl =
        IsFinalizer ? A.finalizer(Q).get() : A.delta(Q).get();
    std::vector<RulePath> RPaths;
    std::vector<TermRef> Scratch;
    if (!rulePaths(Rl, Scratch, RPaths)) {
      degrade(CertStatus::Unverified);
      return;
    }

    // Precompute leaf observations; a translation failure degrades.
    std::vector<SymPath> RObs(RPaths.size());
    for (size_t I = 0; I < RPaths.size(); ++I)
      if (!leafObs(RPaths[I].Leaf, IsFinalizer, RObs[I])) {
        degrade(CertStatus::Unverified);
        return;
      }

    // Aligned attempt: the compiler emits one VM path per rule path in
    // DFS order, so counts and leaf kinds normally match positionally
    // and each pair's path predicates are pointer-identical.
    bool Aligned = RPaths.size() == VPaths.size();
    if (Aligned)
      for (size_t I = 0; I < RPaths.size(); ++I)
        if (RPaths[I].Leaf->isUndef() != VPaths[I].Reject) {
          Aligned = false;
          break;
        }
    if (Aligned) {
      for (size_t I = 0; I < RPaths.size() && Aligned; ++I) {
        TermRef Cr = Ctx.mkAnd(std::span<const TermRef>(RPaths[I].Conds));
        TermRef Cv = Ctx.mkAnd(std::span<const TermRef>(VPaths[I].Conds));
        if (Cr != Cv) {
          // Prove the predicates coextensive, else fall back to the full
          // pairwise product (reordered branches are still equivalent).
          if (!budgetLeft())
            return;
          if (checkNotImplies(RPaths[I].Conds, Cv) != SatResult::Unsat ||
              checkNotImplies(VPaths[I].Conds, Cr) != SatResult::Unsat) {
            Aligned = false;
            break;
          }
        } else {
          ++R.TrivialMatches;
        }
        if (!budgetLeft())
          return;
        std::vector<uint64_t> Witness;
        std::string Detail;
        switch (comparePair(RObs[I], RPaths[I].Conds, VPaths[I], nullptr,
                            IsFinalizer, Witness, Detail)) {
        case PairVerdict::Equal:
        case PairVerdict::Trivial:
          break;
        case PairVerdict::Unknown:
          degrade(CertStatus::Unverified);
          break;
        case PairVerdict::Distinct:
          refute(makeCe(Part, Q, IsFinalizer, Witness, Detail));
          return;
        }
      }
      if (Aligned)
        return;
    }

    // Full pairwise product: ground truth for reordered or restructured
    // branches.  Infeasible pairs are discharged by one SAT call each.
    for (size_t Ri = 0; Ri < RPaths.size(); ++Ri) {
      for (size_t Vi = 0; Vi < VPaths.size(); ++Vi) {
        if (!budgetLeft())
          return;
        std::vector<uint64_t> Witness;
        std::string Detail;
        switch (comparePair(RObs[Ri], RPaths[Ri].Conds, VPaths[Vi],
                            &VPaths[Vi].Conds, IsFinalizer, Witness,
                            Detail)) {
        case PairVerdict::Equal:
        case PairVerdict::Trivial:
          break;
        case PairVerdict::Unknown:
          degrade(CertStatus::Unverified);
          break;
        case PairVerdict::Distinct:
          refute(makeCe(Part, Q, IsFinalizer, Witness, Detail));
          return;
        }
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Part 2: fast-path tables and run kernels vs bytecode
  //===------------------------------------------------------------------===//

  bool usesOnlyX(TermRef Tm) {
    auto It = XOnlyMemo.find(Tm);
    if (It != XOnlyMemo.end())
      return It->second;
    bool Ok = true;
    if (Tm->isVar())
      Ok = Tm == X64;
    else
      for (TermRef O : Tm->operands())
        if (!usesOnlyX(O)) {
          Ok = false;
          break;
        }
    XOnlyMemo.emplace(Tm, Ok);
    return Ok;
  }

  std::optional<uint64_t> evalAtByte(TermRef Tm, uint64_t B) {
    if (!usesOnlyX(Tm))
      return std::nullopt;
    Env E;
    E.bind(X64, Value::bv(64, B));
    Value V = evalTerm(Tm, E);
    return V.isBool() ? uint64_t(V.boolValue()) : V.bits();
  }

  /// The VM path byte B takes (guards of table states are input-only);
  /// nullptr when a guard unexpectedly reads a register.
  const SymPath *pathAtByte(const std::vector<SymPath> &VPaths, uint64_t B) {
    for (const SymPath &P : VPaths) {
      bool All = true;
      for (TermRef Cn : P.Conds) {
        std::optional<uint64_t> V = evalAtByte(Cn, B);
        if (!V) // register-dependent guard: caller degrades
          return nullptr;
        if (!*V) {
          All = false;
          break;
        }
      }
      if (All)
        return &P;
    }
    return nullptr;
  }

  /// Proves Term == Want at input byte B (concrete evaluation when the
  /// term is input-only, otherwise one solver query over the registers).
  /// Returns Equal/Distinct/Unknown.
  PairVerdict equalAtByte(TermRef Term, uint64_t Want, uint64_t B,
                          std::vector<uint64_t> &WitnessOut) {
    if (std::optional<uint64_t> V = evalAtByte(Term, B)) {
      ++R.TrivialMatches;
      return *V == Want ? PairVerdict::Equal : PairVerdict::Distinct;
    }
    DistinguishQuery Q(S);
    Q.assumeAll(DomainConds);
    Q.assume(Ctx.mkEq(X64, C.k(B)));
    Q.requireEqual(Term, C.k(Want));
    if (Q.trivial()) {
      ++R.TrivialMatches;
      return PairVerdict::Equal;
    }
    std::vector<TermRef> WV = witnessVars(false);
    ++R.SolverQueries;
    DistinguishResult DR = Q.check(WV);
    if (DR.R == SatResult::Unsat)
      return PairVerdict::Equal;
    if (DR.R == SatResult::Unknown)
      return PairVerdict::Unknown;
    WitnessOut = std::move(DR.Witness);
    return PairVerdict::Distinct;
  }

  /// Checks that RegOut leaves register slot I at Imm (written) or
  /// unchanged; shared by Const actions and run kernels.
  bool checkRegEffect(const SymPath &Vm,
                      const std::vector<std::pair<uint16_t, uint64_t>> &Writes,
                      uint64_t B, unsigned Q, const std::string &Part,
                      const char *What) {
    std::vector<int64_t> WriteImm(T.numRegSlots(), -1);
    for (auto [SlotI, Imm] : Writes) {
      if (SlotI >= T.numRegSlots()) {
        refute(makeCe(Part, Q, false, {B},
                      std::string(What) + " writes out-of-range slot " +
                          std::to_string(SlotI)));
        return false;
      }
      WriteImm[SlotI] = int64_t(Imm);
    }
    for (unsigned I = 0; I < T.numRegSlots(); ++I) {
      TermRef Out = Vm.RegOut[I];
      if (WriteImm[I] >= 0) {
        std::vector<uint64_t> W;
        PairVerdict PV = equalAtByte(Out, uint64_t(WriteImm[I]), B, W);
        if (PV == PairVerdict::Distinct) {
          refute(makeCe(Part, Q, false, {B},
                        std::string(What) + " register write to slot " +
                            std::to_string(I) + " disagrees with bytecode"));
          return false;
        }
        if (PV == PairVerdict::Unknown)
          degrade(CertStatus::Unverified);
      } else if (Out != RegVars[I]) {
        // Claimed unchanged; prove it.
        DistinguishQuery Qr(S);
        Qr.assumeAll(DomainConds);
        Qr.assume(Ctx.mkEq(X64, C.k(B)));
        Qr.requireEqual(Out, RegVars[I]);
        ++R.SolverQueries;
        DistinguishResult DR = Qr.check(witnessVars(false));
        if (DR.R == SatResult::Sat) {
          refute(makeCe(Part, Q, false, DR.Witness,
                        std::string(What) +
                            " leaves a register slot unwritten that "
                            "bytecode changes (slot " +
                            std::to_string(I) + ")"));
          return false;
        }
        if (DR.R == SatResult::Unknown)
          degrade(CertStatus::Unverified);
      } else {
        ++R.TrivialMatches;
      }
    }
    return true;
  }

  void checkTable(unsigned Q, const std::vector<SymPath> &VPaths) {
    if (!Plan || Q >= Plan->numStates())
      return;
    const FastPathPlan::StateTable &ST = Plan->stateTable(Q);
    if (!ST.HasTable) {
      if (!ST.Runs.empty())
        refute(makeCe("kernel", Q, false, {},
                      "run kernels attached to a state without a table"));
      return;
    }
    const Type *ITy = A.inputType();
    unsigned VB = !ITy->isBitVec() || ITy->width() >= 8
                      ? 256u
                      : (1u << ITy->width());

    // Every dispatch entry against the bytecode evaluation at that byte.
    for (unsigned B = 0; B < 256; ++B) {
      if (!budgetLeft())
        return;
      if (ST.Dispatch[B] >= ST.Actions.size()) {
        refute(makeCe("table", Q, false, {B}, "dispatch index out of range"));
        return;
      }
      const FastPathPlan::Action &Act = ST.Actions[ST.Dispatch[B]];
      if (B >= VB) {
        if (Act.K != FastPathPlan::Action::Kind::Fallback ||
            ST.RunId[B] != FastPathPlan::NoRun)
          refute(makeCe("table", Q, false, {B},
                        "padding byte has a non-fallback action"));
        continue;
      }
      if (Act.K == FastPathPlan::Action::Kind::Fallback)
        continue; // dispatches to the bytecode program itself
      const SymPath *Vp = pathAtByte(VPaths, B);
      if (!Vp) {
        // A guard read a register in a table-eligible state; the table
        // cannot be validated byte-concretely.
        degrade(CertStatus::Unverified);
        return;
      }
      switch (Act.K) {
      case FastPathPlan::Action::Kind::Reject:
        if (!Vp->Reject)
          refute(makeCe("table", Q, false, {B},
                        "table rejects, bytecode accepts"));
        break;
      case FastPathPlan::Action::Kind::Jump:
      case FastPathPlan::Action::Kind::Const: {
        bool IsJump = Act.K == FastPathPlan::Action::Kind::Jump;
        if (Vp->Reject) {
          refute(makeCe("table", Q, false, {B},
                        "table accepts, bytecode rejects"));
          break;
        }
        if (Vp->Target != Act.Target) {
          refute(makeCe("table", Q, false, {B},
                        "table target " + std::to_string(Act.Target) +
                            " vs bytecode " + std::to_string(Vp->Target)));
          break;
        }
        size_t WantEmits = IsJump ? 0 : Act.Emits.size();
        if (Vp->Emits.size() != WantEmits) {
          refute(makeCe("table", Q, false, {B},
                        "table emits " + std::to_string(WantEmits) +
                            " elements, bytecode " +
                            std::to_string(Vp->Emits.size())));
          break;
        }
        bool EmitOk = true;
        for (size_t I = 0; I < WantEmits && EmitOk; ++I) {
          std::vector<uint64_t> W;
          PairVerdict PV = equalAtByte(Vp->Emits[I], Act.Emits[I], B, W);
          if (PV == PairVerdict::Distinct) {
            refute(makeCe("table", Q, false, {B},
                          "table emit #" + std::to_string(I) +
                              " disagrees with bytecode"));
            EmitOk = false;
          } else if (PV == PairVerdict::Unknown) {
            degrade(CertStatus::Unverified);
          }
        }
        if (!EmitOk)
          break;
        checkRegEffect(*Vp, IsJump ? std::vector<std::pair<uint16_t, uint64_t>>{}
                                   : Act.Writes,
                       B, Q, "table", "table action");
        break;
      }
      case FastPathPlan::Action::Kind::Program: {
        std::vector<SymPath> APaths;
        if (!symExec(Act.Code, /*IsFinalizer=*/false, APaths) ||
            APaths.empty()) {
          degrade(CertStatus::Unverified);
          break;
        }
        // Leaf programs are straight-line (exactly one path); compare it
        // against the byte's bytecode path under x == B.  Identical terms
        // short-circuit without the solver.
        const SymPath &Ap = APaths.front();
        if (APaths.size() != 1) {
          degrade(CertStatus::Unverified);
          break;
        }
        if (Ap.Reject != Vp->Reject ||
            (!Ap.Reject &&
             (Ap.Target != Vp->Target ||
              Ap.Emits.size() != Vp->Emits.size()))) {
          refute(makeCe("table", Q, false, {B},
                        "leaf program structure disagrees with bytecode"));
          break;
        }
        if (Ap.Reject)
          break;
        DistinguishQuery Qr(S);
        Qr.assumeAll(DomainConds);
        Qr.assume(Ctx.mkEq(X64, C.k(B)));
        for (size_t I = 0; I < Ap.Emits.size(); ++I)
          Qr.requireEqual(Ap.Emits[I], Vp->Emits[I]);
        for (size_t I = 0; I < Ap.RegOut.size(); ++I)
          Qr.requireEqual(Ap.RegOut[I], Vp->RegOut[I]);
        if (Qr.trivial()) {
          ++R.TrivialMatches;
          break;
        }
        ++R.SolverQueries;
        DistinguishResult DR = Qr.check(witnessVars(false));
        if (DR.R == SatResult::Sat)
          refute(makeCe("table", Q, false, DR.Witness,
                        "leaf program effect disagrees with bytecode"));
        else if (DR.R == SatResult::Unknown)
          degrade(CertStatus::Unverified);
        break;
      }
      case FastPathPlan::Action::Kind::Fallback:
        break;
      }
      if (StateStatus == CertStatus::Refuted)
        return;
    }

    // Run kernels: membership consistency plus the self-loop /
    // constant-write / uniform-output side conditions.
    for (size_t Rk = 0; Rk < ST.Runs.size(); ++Rk) {
      const RunKernel &RK = ST.Runs[Rk];
      for (unsigned B = 0; B < 256; ++B) {
        if (!budgetLeft())
          return;
        bool InMask = RK.covers(B);
        bool ById = ST.RunId[B] == uint8_t(Rk);
        if (InMask != ById) {
          refute(makeCe("kernel", Q, false, {B},
                        "kernel byte mask and dispatch map disagree"));
          return;
        }
        if (!InMask)
          continue;
        if (B >= VB) {
          refute(makeCe("kernel", Q, false, {B},
                        "kernel covers a padding byte"));
          return;
        }
        const SymPath *Vp = pathAtByte(VPaths, B);
        if (!Vp) {
          degrade(CertStatus::Unverified);
          return;
        }
        if (Vp->Reject || Vp->Target != Q) {
          refute(makeCe("kernel", Q, false, {B},
                        "kernel byte is not a self-loop in the bytecode"));
          return;
        }
        // Uniform per-element output effect.
        bool EmitOk = true;
        switch (RK.K) {
        case RunKernel::Kind::Skip:
          EmitOk = Vp->Emits.empty();
          break;
        case RunKernel::Kind::Copy:
          EmitOk = Vp->Emits.size() == 1;
          if (EmitOk) {
            std::vector<uint64_t> W;
            EmitOk =
                equalAtByte(Vp->Emits[0], B, B, W) == PairVerdict::Equal;
          }
          break;
        case RunKernel::Kind::ConstAppend:
          EmitOk = Vp->Emits.size() == RK.Emits.size();
          for (size_t I = 0; EmitOk && I < RK.Emits.size(); ++I) {
            std::vector<uint64_t> W;
            EmitOk = equalAtByte(Vp->Emits[I], RK.Emits[I], B, W) ==
                     PairVerdict::Equal;
          }
          break;
        }
        if (!EmitOk) {
          refute(makeCe("kernel", Q, false, {B},
                        "kernel output effect disagrees with bytecode"));
          return;
        }
        // Constant register writes: applying them once per span must be
        // what every element does (idempotence is then structural).
        if (!checkRegEffect(*Vp, RK.Writes, B, Q, "kernel", "run kernel"))
          return;
      }
      // Nibble encoding: the shuffle tables drive the SIMD block scans,
      // the 256-bit mask drives the SWAR/scalar ladder that finishes the
      // span — they must agree on membership at every byte or different
      // ISA levels would find different span ends.
      if (RK.NT.Valid)
        for (unsigned B = 0; B < 256; ++B)
          if (RK.NT.contains(uint8_t(B)) != RK.covers(B)) {
            refute(makeCe("kernel", Q, false, {B},
                          "nibble table disagrees with kernel byte mask"));
            return;
          }
    }
  }

  /// Speculative pairs are justified purely against the (already
  /// certified) dispatch tables: every byte of each leg mask must take
  /// exactly the Const/Jump action the pair replays in bulk, so the
  /// alternating scanner commits the same effects element-wise dispatch
  /// would have.
  void checkSpec(unsigned Q) {
    if (!Plan || Q >= Plan->numStates())
      return;
    const FastPathPlan::StateTable &ST = Plan->stateTable(Q);
    for (unsigned B = 0; B < 256; ++B) {
      uint8_t Sp = ST.SpecId[B];
      if (Sp == FastPathPlan::NoRun)
        continue;
      if (Sp >= ST.Specs.size() ||
          !SpecPair::maskCovers(ST.Specs[Sp].M1, B)) {
        refute(makeCe("spec", Q, false, {B},
                      "spec dispatch map points outside its pair mask"));
        return;
      }
    }
    for (const SpecPair &SP : ST.Specs) {
      if (SP.Other >= Plan->numStates() ||
          !Plan->stateTable(SP.Other).HasTable || !ST.HasTable) {
        refute(makeCe("spec", Q, false, {},
                      "spec pair references a state without a table"));
        return;
      }
      if (!checkSpecLeg(Q, Q, SP.Other, SP.M1, SP.NT1, SP.Emits1,
                        SP.Writes1) ||
          !checkSpecLeg(Q, SP.Other, Q, SP.M2, SP.NT2, SP.Emits2,
                        SP.Writes2))
        return;
    }
  }

  /// One leg of a speculative pair: in state \p From, every byte of
  /// \p M must dispatch to a Const/Jump action targeting \p To with
  /// exactly \p Emits / \p Writes, and must not belong to a run kernel
  /// (the driver's probe order would never reach the pair otherwise).
  bool checkSpecLeg(unsigned Q, unsigned From, unsigned To,
                    const std::array<uint64_t, 4> &M, const NibbleTable &NT,
                    const std::vector<uint64_t> &Emits,
                    const std::vector<std::pair<uint16_t, uint64_t>> &Writes) {
    const FastPathPlan::StateTable &FT = Plan->stateTable(From);
    for (unsigned B = 0; B < 256; ++B) {
      if (NT.Valid && NT.contains(uint8_t(B)) != SpecPair::maskCovers(M, B)) {
        refute(makeCe("spec", Q, false, {B},
                      "spec nibble table disagrees with its leg mask"));
        return false;
      }
      if (!SpecPair::maskCovers(M, B))
        continue;
      if (FT.RunId[B] != FastPathPlan::NoRun) {
        refute(makeCe("spec", Q, false, {B},
                      "spec leg byte is owned by a run kernel"));
        return false;
      }
      if (FT.Dispatch[B] >= FT.Actions.size()) {
        refute(makeCe("spec", Q, false, {B},
                      "spec leg dispatch index out of range"));
        return false;
      }
      const FastPathPlan::Action &Act = FT.Actions[FT.Dispatch[B]];
      bool IsJump = Act.K == FastPathPlan::Action::Kind::Jump;
      if ((!IsJump && Act.K != FastPathPlan::Action::Kind::Const) ||
          Act.Target != To) {
        refute(makeCe("spec", Q, false, {B},
                      "spec leg byte is not a Const/Jump to the partner "
                      "state"));
        return false;
      }
      const std::vector<uint64_t> &WantE = IsJump ? EmptyEmits : Act.Emits;
      const std::vector<std::pair<uint16_t, uint64_t>> &WantW =
          IsJump ? EmptyWrites : Act.Writes;
      if (WantE != Emits || WantW != Writes) {
        refute(makeCe("spec", Q, false, {B},
                      "spec leg effects disagree with the table action"));
        return false;
      }
    }
    return true;
  }

  /// Wide-domain tables: a full differential sweep of [256, Limit)
  /// against the bytecode paths, using the plan builder's own
  /// memoized-bitmap discipline so the sweep stays within the state
  /// budget.  Structure (reject/target/program equivalence) is checked
  /// once per (wide class, bytecode path) pair; the memoized effect
  /// pools are checked per element.
  void checkWide(unsigned Q, const std::vector<SymPath> &VPaths) {
    if (!Plan || Q >= Plan->numStates())
      return;
    const WideTable &WT = Plan->stateTable(Q).Wide;
    if (!WT.Has)
      return;
    const Type *ITy = A.inputType();
    const unsigned W = ITy->isBitVec() ? ITy->width() : 0;
    if (W <= 8 || W > 16 || WT.Limit != (1u << W) ||
        WT.ClassOf.size() != WT.Limit) {
      refute(makeCe("wide", Q, false, {}, "wide table domain mismatch"));
      return;
    }
    const bool Pools = !WT.EmitOff.empty();
    if (Pools && (WT.EmitOff.size() != WT.Limit + 1 ||
                  WT.WriteOff.size() != WT.Limit + 1)) {
      refute(makeCe("wide", Q, false, {}, "memo pool offsets malformed"));
      return;
    }
    for (const WideTable::Class &C : WT.Classes)
      if (C.K == WideTable::Class::Kind::Memo && !Pools) {
        refute(makeCe("wide", Q, false, {}, "memo class without pools"));
        return;
      }
    // Register-dependent guards make the table unvalidatable concretely
    // (the builder would not have produced one, so reaching this is
    // itself suspicious — but degrade, don't refute).
    for (const SymPath &P : VPaths)
      for (TermRef Cn : P.Conds)
        if (!usesOnlyX(Cn)) {
          degrade(CertStatus::Unverified);
          return;
        }

    // One reference-evaluator sweep per distinct guard term, then each
    // element's path is O(depth) bit tests.
    std::unordered_map<TermRef, std::vector<uint64_t>> CondBits;
    auto condAt = [&](TermRef Cn, uint32_t V) -> bool {
      auto It = CondBits.find(Cn);
      if (It == CondBits.end()) {
        std::vector<uint64_t> Bits((WT.Limit + 63) / 64);
        for (uint32_t U = 0; U < WT.Limit; ++U) {
          Env E;
          E.bind(X64, Value::bv(64, U));
          if (evalTerm(Cn, E).boolValue())
            Bits[U >> 6] |= uint64_t(1) << (U & 63);
        }
        It = CondBits.emplace(Cn, std::move(Bits)).first;
      }
      return (It->second[V >> 6] >> (V & 63)) & 1;
    };
    // Input-only effect terms get one value table each.
    std::unordered_map<TermRef, std::vector<uint64_t>> ValMemo;
    auto valAt = [&](TermRef Tm, uint32_t V) -> std::optional<uint64_t> {
      if (!usesOnlyX(Tm))
        return std::nullopt;
      auto It = ValMemo.find(Tm);
      if (It == ValMemo.end()) {
        std::vector<uint64_t> Vals(WT.Limit);
        for (uint32_t U = 0; U < WT.Limit; ++U) {
          Env E;
          E.bind(X64, Value::bv(64, U));
          Value R = evalTerm(Tm, E);
          Vals[U] = R.isBool() ? uint64_t(R.boolValue()) : R.bits();
        }
        It = ValMemo.emplace(Tm, std::move(Vals)).first;
      }
      return It->second[V];
    };

    const size_t NP = VPaths.size();
    std::vector<uint8_t> PairSeen(WT.Classes.size() * NP, 0);
    std::vector<std::optional<std::vector<SymPath>>> ClassPaths(
        WT.Classes.size());
    for (uint32_t V = 256; V < WT.Limit; ++V) {
      if ((V & 1023u) == 0 && !budgetLeft())
        return;
      if (WT.ClassOf[V] >= WT.Classes.size()) {
        refute(makeCe("wide", Q, false, {V}, "class index out of range"));
        return;
      }
      const uint16_t CI = WT.ClassOf[V];
      const WideTable::Class &C = WT.Classes[CI];
      if (C.K == WideTable::Class::Kind::Fallback)
        continue; // dispatches to the bytecode program itself
      int PI = -1;
      for (size_t I = 0; I < NP; ++I) {
        bool All = true;
        for (TermRef Cn : VPaths[I].Conds)
          if (!condAt(Cn, V)) {
            All = false;
            break;
          }
        if (All) {
          PI = int(I);
          break;
        }
      }
      if (PI < 0) {
        degrade(CertStatus::Unverified);
        return;
      }
      const SymPath &Vp = VPaths[size_t(PI)];
      uint8_t &Seen = PairSeen[size_t(CI) * NP + size_t(PI)];
      switch (C.K) {
      case WideTable::Class::Kind::Reject:
        if (!Vp.Reject) {
          refute(makeCe("wide", Q, false, {V},
                        "wide class rejects, bytecode accepts"));
          return;
        }
        break;
      case WideTable::Class::Kind::Memo: {
        if (Vp.Reject || Vp.Target != C.Target) {
          refute(makeCe("wide", Q, false, {V},
                        "wide class target disagrees with bytecode"));
          return;
        }
        const uint32_t E0 = WT.EmitOff[V], E1 = WT.EmitOff[V + 1];
        if (size_t(E1 - E0) != Vp.Emits.size()) {
          refute(makeCe("wide", Q, false, {V},
                        "memoized emit count disagrees with bytecode"));
          return;
        }
        for (uint32_t I = 0; I < E1 - E0; ++I) {
          std::optional<uint64_t> Got = valAt(Vp.Emits[I], V);
          if (!Got) {
            degrade(CertStatus::Unverified);
            return;
          }
          if (*Got != WT.EmitPool[E0 + I]) {
            refute(makeCe("wide", Q, false, {V},
                          "memoized emit disagrees with bytecode"));
            return;
          }
        }
        const uint32_t W0 = WT.WriteOff[V], W1 = WT.WriteOff[V + 1];
        for (size_t I = 0; I < Vp.RegOut.size(); ++I) {
          const std::pair<uint16_t, uint64_t> *Wr = nullptr;
          for (uint32_t J = W0; J < W1; ++J)
            if (WT.WritePool[J].first == I) {
              Wr = &WT.WritePool[J];
              break;
            }
          if (Wr) {
            std::optional<uint64_t> Got = valAt(Vp.RegOut[I], V);
            if (!Got) {
              degrade(CertStatus::Unverified);
              return;
            }
            if (*Got != Wr->second) {
              refute(makeCe("wide", Q, false, {V},
                            "memoized register write disagrees with "
                            "bytecode (slot " +
                                std::to_string(I) + ")"));
              return;
            }
          } else if (Vp.RegOut[I] != RegVars[I]) {
            // Claimed unchanged; prove it once per (class, path) for the
            // whole domain (stronger than the element set, so SAT only
            // degrades — the witness may lie outside the class).
            if (!Seen) {
              DistinguishQuery Qr(S);
              Qr.assumeAll(DomainConds);
              Qr.requireEqual(Vp.RegOut[I], RegVars[I]);
              if (Qr.trivial()) {
                ++R.TrivialMatches;
              } else {
                ++R.SolverQueries;
                DistinguishResult DR = Qr.check(witnessVars(false));
                if (DR.R != SatResult::Unsat) {
                  degrade(CertStatus::Unverified);
                  return;
                }
              }
            }
          } else {
            ++R.TrivialMatches;
          }
        }
        break;
      }
      case WideTable::Class::Kind::Program: {
        if (Vp.Reject || Vp.Target != C.Target) {
          refute(makeCe("wide", Q, false, {V},
                        "wide program target disagrees with bytecode"));
          return;
        }
        if (Seen)
          break;
        if (!ClassPaths[CI]) {
          std::vector<SymPath> APaths;
          if (!symExec(C.Code, /*IsFinalizer=*/false, APaths)) {
            degrade(CertStatus::Unverified);
            return;
          }
          ClassPaths[CI] = std::move(APaths);
        }
        // Leaf programs are straight-line; require equal effects over the
        // whole domain (a superset of the class's elements), so UNSAT
        // certifies every element of the pair at once.
        const std::vector<SymPath> &APaths = *ClassPaths[CI];
        if (APaths.size() != 1 || APaths.front().Reject ||
            APaths.front().Emits.size() != Vp.Emits.size()) {
          degrade(CertStatus::Unverified);
          return;
        }
        const SymPath &Ap = APaths.front();
        DistinguishQuery Qr(S);
        Qr.assumeAll(DomainConds);
        for (size_t I = 0; I < Ap.Emits.size(); ++I)
          Qr.requireEqual(Ap.Emits[I], Vp.Emits[I]);
        for (size_t I = 0; I < Ap.RegOut.size(); ++I)
          Qr.requireEqual(Ap.RegOut[I], Vp.RegOut[I]);
        if (Qr.trivial()) {
          ++R.TrivialMatches;
          break;
        }
        ++R.SolverQueries;
        DistinguishResult DR = Qr.check(witnessVars(false));
        if (DR.R != SatResult::Unsat) {
          // The witness ranges over the whole domain, not just this
          // class's elements — inconclusive, not a refutation.
          degrade(CertStatus::Unverified);
          return;
        }
        break;
      }
      case WideTable::Class::Kind::Fallback:
        break;
      }
      Seen = 1;
    }
  }

  const std::vector<uint64_t> EmptyEmits;
  const std::vector<std::pair<uint16_t, uint64_t>> EmptyWrites;

  //===------------------------------------------------------------------===//
  // Part 3: codegen classifier hash
  //===------------------------------------------------------------------===//

  void checkCodegen() {
    R.ClassifierHash = classifierHash(A);
    if (!Opts.CheckCodegen)
      return;
    R.CodegenChecked = true;
    CodeGenOptions O;
    O.FunctionName = "efc_impl";
    O.EmitStreaming = true;
    std::string Src = generateCpp(A, O);
    std::string Needle = "efc_impl_classifier_hash = ";
    size_t Pos = Src.find(Needle);
    uint64_t Embedded = 0;
    bool Found = false;
    if (Pos != std::string::npos) {
      Found = sscanf(Src.c_str() + Pos + Needle.size(), "0x%" SCNx64,
                     &Embedded) == 1;
    }
    R.CodegenOk = Found && Embedded == R.ClassifierHash;
    if (!R.CodegenOk) {
      Counterexample CE;
      CE.Part = "codegen";
      CE.Detail = !Found
                      ? "generated source carries no classifier hash"
                      : "generated source was produced from a different "
                        "classification than the certified IR";
      R.Counterexamples.push_back(std::move(CE));
    }
  }

  //===------------------------------------------------------------------===//
  // Driver
  //===------------------------------------------------------------------===//

  bool checkInit() {
    if (T.initialState() != A.initialState()) {
      Counterexample CE;
      CE.Part = "init";
      CE.Detail = "initial control state differs";
      R.Counterexamples.push_back(std::move(CE));
      return false;
    }
    if (RegLeaves.size() != T.numRegSlots()) {
      Counterexample CE;
      CE.Part = "init";
      CE.Detail = "register slot layout differs";
      R.Counterexamples.push_back(std::move(CE));
      return false;
    }
    std::vector<uint64_t> Want;
    flattenValue(A.initialRegister(), Want);
    std::span<const uint64_t> Got = T.initialRegs();
    if (Want.size() != Got.size() ||
        !std::equal(Want.begin(), Want.end(), Got.begin())) {
      Counterexample CE;
      CE.Part = "init";
      CE.Detail = "initial register image differs";
      R.Counterexamples.push_back(std::move(CE));
      return false;
    }
    return true;
  }
};

CertReport Checker::run() {
  Stopwatch Total;
  if (A.numStates() != T.numStates() || !checkInit()) {
    if (R.Counterexamples.empty()) {
      Counterexample CE;
      CE.Part = "init";
      CE.Detail = "state count differs";
      R.Counterexamples.push_back(std::move(CE));
    }
    R.Status = CertStatus::Refuted;
    R.StatesRefuted = A.numStates();
    R.Seconds = Total.seconds();
    return std::move(R);
  }

  for (unsigned Q = 0; Q < A.numStates(); ++Q) {
    StateTimer.reset();
    StateStatus = CertStatus::Certified;
    StateTimedOut = false;
    if (Opts.StateBudgetSeconds <= 0) {
      StateStatus = CertStatus::Unverified;
      StateTimedOut = true;
    } else {
      std::vector<SymPath> VPaths;
      if (!symExec(T.deltaProgram(Q), /*IsFinalizer=*/false, VPaths)) {
        degrade(CertStatus::Unverified);
      } else {
        checkProgram(Q, /*IsFinalizer=*/false, "bytecode", VPaths);
        if (StateStatus != CertStatus::Refuted)
          checkTable(Q, VPaths);
        if (StateStatus != CertStatus::Refuted)
          checkSpec(Q);
        if (StateStatus != CertStatus::Refuted)
          checkWide(Q, VPaths);
      }
      if (StateStatus != CertStatus::Refuted) {
        std::vector<SymPath> FPaths;
        if (!symExec(T.finalizerProgram(Q), /*IsFinalizer=*/true, FPaths))
          degrade(CertStatus::Unverified);
        else
          checkProgram(Q, /*IsFinalizer=*/true, "finalizer", FPaths);
      }
    }
    switch (StateStatus) {
    case CertStatus::Certified:
      ++R.StatesCertified;
      break;
    case CertStatus::Unverified:
    case CertStatus::Unchecked:
      ++R.StatesUnverified;
      break;
    case CertStatus::Refuted:
      ++R.StatesRefuted;
      break;
    }
    if (StateTimedOut)
      ++R.TimedOutStates;
  }

  checkCodegen();

  R.Status = R.StatesRefuted || (R.CodegenChecked && !R.CodegenOk)
                 ? CertStatus::Refuted
             : R.StatesUnverified ? CertStatus::Unverified
                                  : CertStatus::Certified;
  R.Seconds = Total.seconds();
  return std::move(R);
}

} // namespace

EquivChecker::EquivChecker(const Bst &A, const CompiledTransducer &T,
                           const FastPathPlan *Plan, CertOptions Opts)
    : A(A), T(T), Plan(Plan), Opts(Opts) {}

const CertReport &EquivChecker::run() {
  if (!Ran) {
    Checker Ck(A, T, Plan, Opts);
    R = Ck.run();
    Ran = true;
  }
  return R;
}

CertReport efc::verify::certifyPipeline(const Bst &A,
                                        const CompiledTransducer &T,
                                        const FastPathPlan *Plan,
                                        const CertOptions &Opts) {
  EquivChecker Ck(A, T, Plan, Opts);
  return Ck.run();
}
