//===- frontends/comprehension/Comprehension.h ------------------*- C++ -*-===//
///
/// \file
/// The effectful-comprehension authoring frontend (paper §5.1).  In the
/// paper users subclass `Transducer<I, O>` in C#, overriding Update and
/// Finish; Roslyn extracts an execution tree per method.  Here the same
/// content is expressed as an imperative statement EDSL over symbolic
/// expressions:
///
/// \code
///   ComprehensionBuilder B(Ctx, Ctx.charTy(), Ctx.intTy());
///   auto I = B.field("i", Ctx.intTy(), Value::bv(32, 0));
///   auto Defined = B.field("defined", Ctx.boolTy(), Value::boolV(false));
///   auto X = B.input();
///   B.update(block({
///       ifS(Ctx.mkInRange(X, 0x30, 0x39),
///           set(I, ...),
///           reject()),
///       set(Defined, Ctx.trueConst())}));
///   B.finish(block({ifS(Ctx.mkNot(Defined), reject(), emit(I))}));
///   Bst A = B.build(S); // execution-tree extraction + finite exploration
/// \endcode
///
/// `build` performs the paper's two steps: symbolic execution of the
/// statement tree into a single-state BST with a branching rule (pruning
/// infeasible paths with the solver), then *finite exploration* migrating
/// finite register components (booleans) into control states.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_FRONTENDS_COMPREHENSION_H
#define EFC_FRONTENDS_COMPREHENSION_H

#include "bst/Bst.h"
#include "solver/Solver.h"

#include <memory>
#include <string>
#include <vector>

namespace efc::fe {

class Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

/// A statement of an Update/Finish body.
class Stmt {
public:
  enum class Kind : uint8_t { Block, If, Emit, Set, Reject };

  Kind kind() const { return K; }
  const std::vector<StmtPtr> &stmts() const { return Stmts; }
  TermRef cond() const { return Cond; }
  const StmtPtr &thenStmt() const { return Then; }
  const StmtPtr &elseStmt() const { return Else; }
  TermRef expr() const { return Expr; }
  unsigned field() const { return Field; }

private:
  friend StmtPtr block(std::vector<StmtPtr> Stmts);
  friend StmtPtr ifS(TermRef Cond, StmtPtr Then, StmtPtr Else);
  friend StmtPtr emit(TermRef Expr);
  friend StmtPtr set(TermRef FieldRef, TermRef Expr);
  friend StmtPtr reject();

  explicit Stmt(Kind K) : K(K) {}
  Kind K;
  std::vector<StmtPtr> Stmts;
  TermRef Cond = nullptr;
  StmtPtr Then, Else;
  TermRef Expr = nullptr;
  unsigned Field = 0;
};

/// Sequential composition.
StmtPtr block(std::vector<StmtPtr> Stmts);
/// Conditional; pass nullptr for an empty branch.
StmtPtr ifS(TermRef Cond, StmtPtr Then, StmtPtr Else = nullptr);
/// `yield return Expr`.
StmtPtr emit(TermRef Expr);
/// Partial state update `field = Expr` (FieldRef must come from
/// ComprehensionBuilder::field).
StmtPtr set(TermRef FieldRef, TermRef Expr);
/// `throw` — reject the input.
StmtPtr reject();

/// Builds a BST from Update/Finish statement trees.
class ComprehensionBuilder {
public:
  ComprehensionBuilder(TermContext &Ctx, const Type *InputTy,
                       const Type *OutputTy);

  /// Declares a register field and returns the term referring to it
  /// (usable in expressions and as the first argument of set()).
  TermRef field(const std::string &Name, const Type *Ty, Value Init);

  /// The input element variable, for use inside update().
  TermRef input() const;

  void update(StmtPtr Body) { UpdateBody = std::move(Body); }
  void finish(StmtPtr Body) { FinishBody = std::move(Body); }

  struct BuildOptions {
    /// Prune infeasible execution paths with the solver (§5.1).
    bool PrunePaths = true;
    /// Run finite exploration of boolean register fields afterwards.
    bool Explore = true;
  };

  /// Translates to a BST.  \p S is used for path pruning and exploration.
  Bst build(Solver &S, const BuildOptions &Opts);
  Bst build(Solver &S) { return build(S, BuildOptions()); }

private:
  TermContext &Ctx;
  const Type *InputTy, *OutputTy;
  std::vector<std::string> FieldNames;
  std::vector<const Type *> FieldTys;
  std::vector<Value> FieldInits;
  StmtPtr UpdateBody, FinishBody;

  const Type *registerType() const;
};

/// The paper's finite-exploration pass: partially evaluates \p A over the
/// reachable values of its finite register components, migrating them into
/// control states.  All Bool leaves are candidates by default;
/// \p ExtraFiniteLeaves adds enum-like bitvector leaves (indices into the
/// flattened register).  Leaves whose updates are not compile-time
/// constants under exploration are dropped from the candidate set; a
/// reachable-value explosion keeps the register representation.
Bst exploreFiniteRegisters(const Bst &A, Solver &S,
                           std::vector<unsigned> ExtraFiniteLeaves = {});

} // namespace efc::fe

#endif // EFC_FRONTENDS_COMPREHENSION_H
