//===- frontends/comprehension/Comprehension.cpp --------------------------===//

#include "frontends/comprehension/Comprehension.h"

#include "bst/Transform.h"
#include "term/Rewrite.h"

#include <algorithm>
#include <functional>
#include <map>

using namespace efc;
using namespace efc::fe;

//===----------------------------------------------------------------------===
// Statement constructors
//===----------------------------------------------------------------------===

StmtPtr efc::fe::block(std::vector<StmtPtr> Stmts) {
  auto S = new Stmt(Stmt::Kind::Block);
  S->Stmts = std::move(Stmts);
  return StmtPtr(S);
}

StmtPtr efc::fe::ifS(TermRef Cond, StmtPtr Then, StmtPtr Else) {
  auto S = new Stmt(Stmt::Kind::If);
  S->Cond = Cond;
  S->Then = std::move(Then);
  S->Else = std::move(Else);
  return StmtPtr(S);
}

StmtPtr efc::fe::emit(TermRef Expr) {
  auto S = new Stmt(Stmt::Kind::Emit);
  S->Expr = Expr;
  return StmtPtr(S);
}

StmtPtr efc::fe::set(TermRef FieldRef, TermRef Expr) {
  assert(FieldRef->isVar() && "set() takes a field reference");
  auto S = new Stmt(Stmt::Kind::Set);
  S->Field = FieldRef->varId();
  S->Expr = Expr;
  S->Cond = FieldRef; // stash the placeholder for the builder
  return StmtPtr(S);
}

StmtPtr efc::fe::reject() { return StmtPtr(new Stmt(Stmt::Kind::Reject)); }

//===----------------------------------------------------------------------===
// ComprehensionBuilder
//===----------------------------------------------------------------------===

ComprehensionBuilder::ComprehensionBuilder(TermContext &Ctx,
                                           const Type *InputTy,
                                           const Type *OutputTy)
    : Ctx(Ctx), InputTy(InputTy), OutputTy(OutputTy) {}

const Type *ComprehensionBuilder::registerType() const {
  if (FieldTys.empty())
    return Ctx.unitTy();
  if (FieldTys.size() == 1)
    return FieldTys[0];
  return Ctx.tupleTy(FieldTys);
}

TermRef ComprehensionBuilder::field(const std::string &Name, const Type *Ty,
                                    Value Init) {
  assert(Init.hasType(Ty));
  FieldNames.push_back(Name);
  FieldTys.push_back(Ty);
  FieldInits.push_back(std::move(Init));
  // Placeholder variable, replaced during build().
  return Ctx.var("field$" + Name, Ty);
}

TermRef ComprehensionBuilder::input() const {
  return Ctx.var("x", InputTy);
}

namespace {

/// Symbolic execution of statement trees into rules (the execution-tree
/// extraction of §5.1).
class StmtExecutor {
public:
  StmtExecutor(TermContext &Ctx, Solver &S, bool Prune,
               const std::vector<TermRef> &Placeholders)
      : Ctx(Ctx), S(S), Prune(Prune), Placeholders(Placeholders) {}

  struct ExecState {
    std::vector<TermRef> Fields;
    std::vector<TermRef> Outputs;
  };
  using Cont = std::function<RulePtr(ExecState)>;

  RulePtr exec(const Stmt *St, ExecState State, const Cont &K) {
    if (!St)
      return K(std::move(State));
    switch (St->kind()) {
    case Stmt::Kind::Block:
      return execSeq(St->stmts(), 0, std::move(State), K);
    case Stmt::Kind::If: {
      TermRef C = resolve(St->cond(), State);
      RulePtr T = Rule::undef(), E = Rule::undef();
      bool ThenFeasible = feasible(C);
      bool ElseFeasible = feasible(Ctx.mkNot(C));
      if (ThenFeasible) {
        S.push();
        S.add(C);
        T = exec(St->thenStmt().get(), State, K);
        S.pop();
      }
      if (ElseFeasible) {
        S.push();
        S.add(Ctx.mkNot(C));
        E = exec(St->elseStmt().get(), std::move(State), K);
        S.pop();
      }
      return Rule::ite(C, std::move(T), std::move(E));
    }
    case Stmt::Kind::Emit:
      State.Outputs.push_back(resolve(St->expr(), State));
      return K(std::move(State));
    case Stmt::Kind::Set: {
      unsigned Idx = fieldIndexOf(St->cond());
      State.Fields[Idx] = resolve(St->expr(), State);
      return K(std::move(State));
    }
    case Stmt::Kind::Reject:
      return Rule::undef();
    }
    return Rule::undef();
  }

private:
  TermContext &Ctx;
  Solver &S;
  bool Prune;
  const std::vector<TermRef> &Placeholders;

  unsigned fieldIndexOf(TermRef Placeholder) const {
    for (unsigned I = 0; I < Placeholders.size(); ++I)
      if (Placeholders[I] == Placeholder)
        return I;
    assert(false && "set() on an undeclared field");
    return 0;
  }

  bool feasible(TermRef C) {
    if (C->isFalse())
      return false;
    if (!Prune)
      return true;
    return S.checkWith(C) != SatResult::Unsat;
  }

  TermRef resolve(TermRef T, const ExecState &State) {
    Subst Sub;
    for (unsigned I = 0; I < Placeholders.size(); ++I)
      Sub.set(Placeholders[I], State.Fields[I]);
    return substitute(Ctx, T, Sub);
  }

  RulePtr execSeq(const std::vector<StmtPtr> &Sts, size_t I,
                  ExecState State, const Cont &K) {
    if (I == Sts.size())
      return K(std::move(State));
    return exec(Sts[I].get(), std::move(State),
                [&, I](ExecState St2) {
                  return execSeq(Sts, I + 1, std::move(St2), K);
                });
  }
};

} // namespace

Bst ComprehensionBuilder::build(Solver &S, const BuildOptions &Opts) {
  const Type *RegTy = registerType();
  Value Init = FieldTys.empty()    ? Value::unit()
               : FieldTys.size() == 1 ? FieldInits[0]
                                      : Value::tuple(FieldInits);
  Bst A(Ctx, InputTy, OutputTy, RegTy, 1, 0, std::move(Init));

  std::vector<TermRef> Placeholders;
  for (unsigned I = 0; I < FieldNames.size(); ++I)
    Placeholders.push_back(Ctx.var("field$" + FieldNames[I], FieldTys[I]));

  // Field values at entry: projections of the register variable.
  StmtExecutor::ExecState Entry;
  for (unsigned I = 0; I < FieldTys.size(); ++I)
    Entry.Fields.push_back(FieldTys.size() == 1 ? A.regVar()
                                                : Ctx.mkTupleGet(A.regVar(),
                                                                 I));

  auto PackRegister = [&](const std::vector<TermRef> &Fields) -> TermRef {
    if (FieldTys.empty())
      return Ctx.unitConst();
    if (FieldTys.size() == 1)
      return Fields[0];
    return Ctx.mkTuple(Fields);
  };

  StmtExecutor Exec(Ctx, S, Opts.PrunePaths, Placeholders);
  A.setDelta(0, Exec.exec(UpdateBody.get(), Entry,
                          [&](StmtExecutor::ExecState St) {
                            return Rule::base(St.Outputs, 0,
                                              PackRegister(St.Fields));
                          }));
  A.setFinalizer(0, Exec.exec(FinishBody.get(), Entry,
                              [&](StmtExecutor::ExecState St) {
                                return Rule::base(St.Outputs, 0, A.regVar());
                              }));

  assert(A.wellFormed());
  if (Opts.Explore)
    return exploreFiniteRegisters(A, S);
  return A;
}

//===----------------------------------------------------------------------===
// Finite exploration (§5.1)
//===----------------------------------------------------------------------===

namespace {

constexpr unsigned MaxExploredStates = 4096;

struct ExploreResult {
  bool Ok = false;
  unsigned FailingLeaf = 0; ///< when !Ok: leaf whose update is not constant
  std::optional<Bst> Result;
};

ExploreResult tryExplore(const Bst &A, const std::vector<unsigned> &F) {
  TermContext &Ctx = A.context();
  const Type *RegTy = A.registerType();
  std::vector<const Type *> LeafTys;
  RegTy->flatten(LeafTys);
  unsigned NumLeaves = unsigned(LeafTys.size());

  std::vector<bool> IsFinite(NumLeaves, false);
  for (unsigned I : F)
    IsFinite[I] = true;

  // Remaining (register) leaves.
  std::vector<const Type *> KeepTys;
  std::vector<unsigned> KeepIdx;
  for (unsigned I = 0; I < NumLeaves; ++I)
    if (!IsFinite[I]) {
      KeepTys.push_back(LeafTys[I]);
      KeepIdx.push_back(I);
    }
  const Type *NewRegTy = KeepTys.empty()    ? Ctx.unitTy()
                         : KeepTys.size() == 1 ? KeepTys[0]
                                               : Ctx.tupleTy(KeepTys);

  // Helpers to view the old register leaves.
  auto OldLeaf = [&](TermRef OldVar, unsigned I) -> TermRef {
    return RegTy->isTuple() ? Ctx.mkTupleGet(OldVar, I) : OldVar;
  };

  Bst B(Ctx, A.inputType(), A.outputType(), NewRegTy, 1, 0,
        Value::unit() /* placeholder, set below */);
  // Rebuild with the proper initial register.
  std::vector<Value> InitLeaves;
  {
    std::vector<Value> AllLeaves;
    const Value &V = A.initialRegister();
    if (RegTy->isTuple())
      AllLeaves = V.elems();
    else if (!RegTy->isUnit())
      AllLeaves = {V};
    for (unsigned I : KeepIdx)
      InitLeaves.push_back(AllLeaves[I]);
  }
  Value NewInit = KeepTys.empty()    ? Value::unit()
                  : KeepTys.size() == 1 ? InitLeaves[0]
                                        : Value::tuple(InitLeaves);
  B = Bst(Ctx, A.inputType(), A.outputType(), NewRegTy, 1, 0, NewInit);

  // Initial kappa: F-leaf values of the initial register.
  using Kappa = std::vector<uint64_t>;
  Kappa Kappa0;
  {
    std::vector<Value> AllLeaves;
    const Value &V = A.initialRegister();
    if (RegTy->isTuple())
      AllLeaves = V.elems();
    else if (!RegTy->isUnit())
      AllLeaves = {V};
    for (unsigned I : F)
      Kappa0.push_back(AllLeaves[I].bits());
  }

  std::map<std::pair<unsigned, Kappa>, unsigned> StateIds;
  std::vector<std::pair<unsigned, Kappa>> Worklist;
  auto stateId = [&](unsigned Q, const Kappa &K) -> unsigned {
    auto [It, Inserted] = StateIds.try_emplace({Q, K}, 0);
    if (Inserted) {
      unsigned Id = StateIds.size() == 1 ? 0 : B.addState();
      It->second = Id;
      std::string Name = A.stateName(Q);
      for (uint64_t V : K)
        Name += "." + std::to_string(V);
      B.setStateName(Id, Name);
      Worklist.push_back({Q, K});
    }
    return It->second;
  };

  // The old register expressed over (kappa constants, new register var).
  auto oldRegFor = [&](const Kappa &K) -> TermRef {
    std::vector<TermRef> Leaves(NumLeaves, nullptr);
    for (unsigned J = 0; J < F.size(); ++J)
      Leaves[F[J]] = LeafTys[F[J]]->isBool()
                         ? Ctx.boolConst(K[J] != 0)
                         : Ctx.bvConst(LeafTys[F[J]], K[J]);
    for (unsigned J = 0; J < KeepIdx.size(); ++J)
      Leaves[KeepIdx[J]] =
          KeepTys.size() == 1 ? B.regVar() : Ctx.mkTupleGet(B.regVar(), J);
    if (RegTy->isUnit())
      return Ctx.unitConst();
    if (!RegTy->isTuple())
      return Leaves[0];
    return Ctx.mkTuple(Leaves);
  };

  ExploreResult Res;

  // Rewrites one rule under a kappa assignment.
  std::function<RulePtr(const Rule *, const Kappa &, bool)> Rewrite =
      [&](const Rule *R, const Kappa &K, bool IsFinalizer) -> RulePtr {
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return Rule::undef();
    case Rule::Kind::Ite: {
      Subst Sub;
      Sub.set(A.regVar(), oldRegFor(K));
      TermRef C = substitute(Ctx, R->cond(), Sub);
      RulePtr T = C->isFalse()
                      ? Rule::undef()
                      : Rewrite(R->thenRule().get(), K, IsFinalizer);
      if (!Res.Ok && Res.FailingLeaf != UINT_MAX)
        return Rule::undef(); // abort fast on failure
      RulePtr E = C->isTrue()
                      ? Rule::undef()
                      : Rewrite(R->elseRule().get(), K, IsFinalizer);
      return Rule::ite(C, std::move(T), std::move(E));
    }
    case Rule::Kind::Base: {
      Subst Sub;
      Sub.set(A.regVar(), oldRegFor(K));
      std::vector<TermRef> Outs;
      for (TermRef O : R->outputs())
        Outs.push_back(substitute(Ctx, O, Sub));
      if (IsFinalizer)
        return Rule::base(std::move(Outs), 0 /* remapped later */,
                          B.regVar());
      TermRef U = substitute(Ctx, R->update(), Sub);
      // F components must be constants under kappa.
      Kappa NextK;
      for (unsigned J = 0; J < F.size(); ++J) {
        TermRef Leaf = OldLeaf(U, F[J]);
        if (!Leaf->isConst()) {
          Res.FailingLeaf = F[J];
          return Rule::undef();
        }
        NextK.push_back(Leaf->constBits());
      }
      std::vector<TermRef> KeepLeaves;
      for (unsigned I : KeepIdx)
        KeepLeaves.push_back(OldLeaf(U, I));
      TermRef NewU = KeepTys.empty()    ? Ctx.unitConst()
                     : KeepTys.size() == 1 ? KeepLeaves[0]
                                           : Ctx.mkTuple(KeepLeaves);
      unsigned Tgt = stateId(R->target(), NextK);
      return Rule::base(std::move(Outs), Tgt, NewU);
    }
    }
    return Rule::undef();
  };

  Res.FailingLeaf = UINT_MAX;
  stateId(A.initialState(), Kappa0);
  while (!Worklist.empty()) {
    auto [Q, K] = Worklist.back();
    Worklist.pop_back();
    unsigned Id = StateIds.at({Q, K});
    RulePtr D = Rewrite(A.delta(Q).get(), K, /*IsFinalizer=*/false);
    if (Res.FailingLeaf != UINT_MAX)
      return Res;
    RulePtr Fn = Rewrite(A.finalizer(Q).get(), K, /*IsFinalizer=*/true);
    if (Res.FailingLeaf != UINT_MAX)
      return Res;
    B.setDelta(Id, std::move(D));
    B.setFinalizer(Id, std::move(Fn));
    if (B.numStates() > MaxExploredStates) {
      Res.FailingLeaf = UINT_MAX;
      Res.Ok = false;
      return Res; // explosion: give up entirely
    }
  }
  Res.Ok = true;
  Res.Result.emplace(std::move(B));
  return Res;
}

} // namespace

Bst efc::fe::exploreFiniteRegisters(const Bst &A0, Solver &S,
                                    std::vector<unsigned> ExtraFiniteLeaves) {
  (void)S;
  Bst A = flattenRegisters(A0);
  std::vector<const Type *> LeafTys;
  A.registerType()->flatten(LeafTys);

  std::vector<unsigned> F;
  for (unsigned I = 0; I < LeafTys.size(); ++I)
    if (LeafTys[I]->isBool() ||
        std::find(ExtraFiniteLeaves.begin(), ExtraFiniteLeaves.end(), I) !=
            ExtraFiniteLeaves.end())
      F.push_back(I);

  while (!F.empty()) {
    ExploreResult R = tryExplore(A, F);
    if (R.Ok)
      return std::move(*R.Result);
    if (R.FailingLeaf == UINT_MAX)
      break; // state explosion: keep the register representation
    F.erase(std::remove(F.begin(), F.end(), R.FailingLeaf), F.end());
  }
  return A;
}
