//===- frontends/regex/CharClass.cpp --------------------------------------===//

#include "frontends/regex/CharClass.h"

#include <algorithm>

using namespace efc;
using namespace efc::fe;

CharClass CharClass::range(uint16_t Lo, uint16_t Hi) {
  CharClass C;
  if (Lo <= Hi)
    C.Ranges.push_back({Lo, Hi});
  return C;
}

CharClass CharClass::fromRanges(std::vector<CharRange> Rs) {
  CharClass C;
  C.Ranges = std::move(Rs);
  C.normalize();
  return C;
}

void CharClass::normalize() {
  std::sort(Ranges.begin(), Ranges.end(),
            [](const CharRange &A, const CharRange &B) {
              return A.Lo < B.Lo;
            });
  std::vector<CharRange> Out;
  for (const CharRange &R : Ranges) {
    if (R.Lo > R.Hi)
      continue;
    if (!Out.empty() && uint32_t(Out.back().Hi) + 1 >= R.Lo) {
      Out.back().Hi = std::max(Out.back().Hi, R.Hi);
    } else {
      Out.push_back(R);
    }
  }
  Ranges = std::move(Out);
}

bool CharClass::contains(uint16_t C) const {
  for (const CharRange &R : Ranges) {
    if (C < R.Lo)
      return false;
    if (C <= R.Hi)
      return true;
  }
  return false;
}

uint64_t CharClass::size() const {
  uint64_t N = 0;
  for (const CharRange &R : Ranges)
    N += uint64_t(R.Hi) - R.Lo + 1;
  return N;
}

uint16_t CharClass::smallest() const {
  assert(!Ranges.empty());
  return Ranges.front().Lo;
}

CharClass CharClass::unionWith(const CharClass &O) const {
  std::vector<CharRange> Rs = Ranges;
  Rs.insert(Rs.end(), O.Ranges.begin(), O.Ranges.end());
  return fromRanges(std::move(Rs));
}

CharClass CharClass::intersectWith(const CharClass &O) const {
  std::vector<CharRange> Out;
  size_t I = 0, J = 0;
  while (I < Ranges.size() && J < O.Ranges.size()) {
    uint16_t Lo = std::max(Ranges[I].Lo, O.Ranges[J].Lo);
    uint16_t Hi = std::min(Ranges[I].Hi, O.Ranges[J].Hi);
    if (Lo <= Hi)
      Out.push_back({Lo, Hi});
    if (Ranges[I].Hi < O.Ranges[J].Hi)
      ++I;
    else
      ++J;
  }
  return fromRanges(std::move(Out));
}

CharClass CharClass::complement() const {
  std::vector<CharRange> Out;
  uint32_t Next = 0;
  for (const CharRange &R : Ranges) {
    if (R.Lo > Next)
      Out.push_back({uint16_t(Next), uint16_t(R.Lo - 1)});
    Next = uint32_t(R.Hi) + 1;
  }
  if (Next <= 0xFFFF)
    Out.push_back({uint16_t(Next), 0xFFFF});
  return fromRanges(std::move(Out));
}

TermRef CharClass::toPredicate(TermContext &Ctx, TermRef X) const {
  TermRef P = Ctx.falseConst();
  for (const CharRange &R : Ranges)
    P = Ctx.mkOr(P, Ctx.mkInRange(X, R.Lo, R.Hi));
  return P;
}

std::string CharClass::str() const {
  std::string S = "[";
  for (const CharRange &R : Ranges) {
    char Buf[32];
    if (R.Lo == R.Hi)
      snprintf(Buf, sizeof(Buf), "%x", R.Lo);
    else
      snprintf(Buf, sizeof(Buf), "%x-%x", R.Lo, R.Hi);
    S += Buf;
    S += ' ';
  }
  S += ']';
  return S;
}
