//===- frontends/regex/Automata.h - Symbolic NFA and DFA --------*- C++ -*-===//
///
/// \file
/// Thompson construction and minterm-based subset determinization for
/// regexes with capture tags (paper §5.2, step 1 and 2).  Edges carry
/// character classes; edges created inside a capture group are tagged
/// with its index so the determinizer can attribute each DFA transition
/// to "inside capture i" or "skip" — the paper's no-ambiguity assumption
/// is checked and violations are reported.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_FRONTENDS_REGEX_AUTOMATA_H
#define EFC_FRONTENDS_REGEX_AUTOMATA_H

#include "frontends/regex/Regex.h"

#include <optional>

namespace efc::fe {

constexpr int NoCapture = -1;

/// Nondeterministic symbolic automaton with epsilon edges.
struct Nfa {
  struct Edge {
    unsigned From;
    unsigned To;
    CharClass Cls;
    int Tag; ///< capture index or NoCapture
  };
  unsigned NumStates = 0;
  unsigned Start = 0;
  unsigned Accept = 0;
  std::vector<Edge> Edges;
  std::vector<std::pair<unsigned, unsigned>> EpsEdges;
};

/// Thompson construction; capture nodes tag the edges of their bodies.
Nfa buildNfa(const RegexPtr &Root);

/// Deterministic symbolic automaton over class-labelled transitions.
struct Dfa {
  struct Transition {
    CharClass Cls;
    unsigned Target;
    int Tag; ///< capture the consumed char belongs to, or NoCapture
  };
  struct State {
    std::vector<Transition> Out;
    bool Accepting = false;
    int Cap = NoCapture; ///< capture context this state lives in
  };
  std::vector<State> States;
  unsigned Start = 0;
};

/// Subset construction with minterms.  Fails (with a diagnostic) when the
/// pattern violates the paper's capture-boundary unambiguity assumption.
std::optional<Dfa> determinize(const Nfa &N, std::string *Error = nullptr);

} // namespace efc::fe

#endif // EFC_FRONTENDS_REGEX_AUTOMATA_H
