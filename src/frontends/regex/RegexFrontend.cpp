//===- frontends/regex/RegexFrontend.cpp ----------------------------------===//

#include "frontends/regex/RegexFrontend.h"

#include "term/Rewrite.h"

#include <functional>
#include <map>

using namespace efc;
using namespace efc::fe;

namespace {

/// Inlines a sub-transducer rule: substitutes \p Theta into guards,
/// outputs and updates, and rebuilds leaves through \p LeafFn.
RulePtr inlineRule(TermContext &Ctx, const Rule *R, const Subst &Theta,
                   const std::function<RulePtr(std::vector<TermRef>,
                                               unsigned, TermRef)> &LeafFn) {
  switch (R->kind()) {
  case Rule::Kind::Undef:
    return Rule::undef();
  case Rule::Kind::Ite: {
    TermRef C = substitute(Ctx, R->cond(), Theta);
    RulePtr T = inlineRule(Ctx, R->thenRule().get(), Theta, LeafFn);
    RulePtr E = inlineRule(Ctx, R->elseRule().get(), Theta, LeafFn);
    return Rule::ite(C, std::move(T), std::move(E));
  }
  case Rule::Kind::Base: {
    std::vector<TermRef> Outs;
    Outs.reserve(R->outputs().size());
    for (TermRef O : R->outputs())
      Outs.push_back(substitute(Ctx, O, Theta));
    return LeafFn(std::move(Outs), R->target(),
                  substitute(Ctx, R->update(), Theta));
  }
  }
  return Rule::undef();
}

class RegexBstBuilder {
public:
  RegexBstBuilder(TermContext &Ctx, const Dfa &D,
                  const std::vector<const Bst *> &Subs,
                  const Type *OutputTy)
      : Ctx(Ctx), D(D), Subs(Subs),
        Product(Ctx, Ctx.bv(16), OutputTy, regTy(Ctx, Subs), 1, 0,
                regInit(Subs)) {
    StateIds[{D.Start, 0}] = 0;
    Product.setStateName(0, "d" + std::to_string(D.Start));
    Worklist.push_back({D.Start, 0});
  }

  Bst run() {
    while (!Worklist.empty()) {
      auto [Dq, Sq] = Worklist.back();
      Worklist.pop_back();
      unsigned Id = StateIds.at({Dq, Sq});
      Product.setDelta(Id, buildDelta(Dq, Sq));
      Product.setFinalizer(Id, buildFin(Dq, Sq, Id));
    }
    return std::move(Product);
  }

private:
  TermContext &Ctx;
  const Dfa &D;
  const std::vector<const Bst *> &Subs;
  Bst Product;
  std::map<std::pair<unsigned, unsigned>, unsigned> StateIds;
  std::vector<std::pair<unsigned, unsigned>> Worklist;

  static const Type *regTy(TermContext &Ctx,
                           const std::vector<const Bst *> &Subs) {
    if (Subs.empty())
      return Ctx.unitTy();
    std::vector<const Type *> Tys;
    for (const Bst *S : Subs)
      Tys.push_back(S->registerType());
    return Ctx.tupleTy(std::move(Tys));
  }

  static Value regInit(const std::vector<const Bst *> &Subs) {
    if (Subs.empty())
      return Value::unit();
    std::vector<Value> Vs;
    for (const Bst *S : Subs)
      Vs.push_back(S->initialRegister());
    return Value::tuple(std::move(Vs));
  }

  unsigned stateId(unsigned Dq, unsigned Sq) {
    auto [It, Inserted] = StateIds.try_emplace({Dq, Sq}, 0);
    if (Inserted) {
      It->second = Product.addState(
          "d" + std::to_string(Dq) +
          (D.States[Dq].Cap != NoCapture ? "." + std::to_string(Sq) : ""));
      Worklist.push_back({Dq, Sq});
    }
    return It->second;
  }

  TermRef slice(unsigned I) {
    return Ctx.mkTupleGet(Product.regVar(), I);
  }

  /// Register with slice \p I replaced by \p U.
  TermRef sliceUpdate(unsigned I, TermRef U) {
    std::vector<TermRef> Es;
    for (unsigned J = 0; J < Subs.size(); ++J)
      Es.push_back(J == I ? U : slice(J));
    return Ctx.mkTuple(std::move(Es));
  }

  /// Feeds the current input char to capture \p I starting from sub-state
  /// \p SubState with register term \p RegTerm; leaves transition to
  /// (\p Dq, its sub-target).
  RulePtr feed(unsigned I, unsigned SubState, TermRef RegTerm, unsigned Dq,
               std::vector<TermRef> Prefix) {
    const Bst &A = *Subs[I];
    Subst Theta;
    Theta.set(A.regVar(), RegTerm);
    // The product's input variable coincides with A's (both bv16 "x").
    return inlineRule(
        Ctx, A.delta(SubState).get(), Theta,
        [&](std::vector<TermRef> Outs, unsigned SubTgt, TermRef Upd) {
          std::vector<TermRef> All = Prefix;
          All.insert(All.end(), Outs.begin(), Outs.end());
          return Rule::base(std::move(All), stateId(Dq, SubTgt),
                            sliceUpdate(I, Upd));
        });
  }

  /// Runs capture \p I's finalizer from sub-state \p SubState; \p Then
  /// receives the finalizer outputs and builds the remainder.
  RulePtr finalizeThen(
      unsigned I, unsigned SubState,
      const std::function<RulePtr(std::vector<TermRef>)> &Then) {
    const Bst &A = *Subs[I];
    Subst Theta;
    Theta.set(A.regVar(), slice(I));
    return inlineRule(Ctx, A.finalizer(SubState).get(), Theta,
                      [&](std::vector<TermRef> Outs, unsigned, TermRef) {
                        return Then(std::move(Outs));
                      });
  }

  RulePtr buildTransition(int CapHere, unsigned Sq,
                          const Dfa::Transition &T) {
    unsigned Dq = T.Target;
    int Tag = T.Tag;
    if (CapHere == NoCapture && Tag == NoCapture)
      return Rule::base({}, stateId(Dq, 0), Product.regVar());
    if (CapHere == NoCapture) {
      // Capture Tag starts with this character: reset its register.
      const Bst &A = *Subs[Tag];
      return feed(unsigned(Tag), A.initialState(),
                  A.initialRegisterTerm(), Dq, {});
    }
    if (Tag == CapHere)
      return feed(unsigned(CapHere), Sq, slice(unsigned(CapHere)), Dq, {});
    if (Tag == NoCapture) {
      // Capture ends before this (skip) character.
      return finalizeThen(unsigned(CapHere), Sq,
                          [&](std::vector<TermRef> Outs) {
                            return Rule::base(std::move(Outs),
                                              stateId(Dq, 0),
                                              Product.regVar());
                          });
    }
    // Capture CapHere ends and capture Tag starts on the same character.
    return finalizeThen(
        unsigned(CapHere), Sq, [&](std::vector<TermRef> Outs) {
          const Bst &A = *Subs[Tag];
          return feed(unsigned(Tag), A.initialState(),
                      A.initialRegisterTerm(), Dq, std::move(Outs));
        });
  }

  RulePtr buildDelta(unsigned Dq, unsigned Sq) {
    const Dfa::State &St = D.States[Dq];
    TermRef X = Product.inputVar();
    RulePtr R = Rule::undef();
    // Ite chain, most-populated class first for the §2 branch-order point.
    std::vector<const Dfa::Transition *> Ts;
    for (const Dfa::Transition &T : St.Out)
      Ts.push_back(&T);
    std::stable_sort(Ts.begin(), Ts.end(),
                     [](const Dfa::Transition *A, const Dfa::Transition *B) {
                       return A->Cls.size() < B->Cls.size();
                     });
    for (const Dfa::Transition *T : Ts)
      R = Rule::ite(T->Cls.toPredicate(Ctx, X),
                    buildTransition(St.Cap, Sq, *T), std::move(R));
    return R;
  }

  RulePtr buildFin(unsigned Dq, unsigned Sq, unsigned SelfId) {
    const Dfa::State &St = D.States[Dq];
    if (!St.Accepting)
      return Rule::undef();
    if (St.Cap == NoCapture)
      return Rule::base({}, SelfId, Product.regVar());
    return finalizeThen(unsigned(St.Cap), Sq,
                        [&](std::vector<TermRef> Outs) {
                          return Rule::base(std::move(Outs), SelfId,
                                            Product.regVar());
                        });
  }
};

} // namespace

RegexBstResult efc::fe::buildRegexBst(
    TermContext &Ctx, const std::string &Pattern,
    const std::vector<CaptureBinding> &Captures, const Type *OutputTy) {
  RegexBstResult Res;
  std::string Err;
  auto Parsed = parseRegex(Pattern, &Err);
  if (!Parsed) {
    Res.Error = "regex parse error: " + Err;
    return Res;
  }

  // Bind captures by name, in the pattern's capture order.
  std::vector<const Bst *> Subs;
  for (const std::string &Name : Parsed->CaptureNames) {
    const Bst *Found = nullptr;
    for (const CaptureBinding &B : Captures)
      if (B.Name == Name)
        Found = B.Transducer;
    if (!Found) {
      Res.Error = "no transducer bound for capture '" + Name + "'";
      return Res;
    }
    if (Found->inputType() != Ctx.bv(16)) {
      Res.Error = "capture transducer for '" + Name +
                  "' must consume chars (bv16)";
      return Res;
    }
    Subs.push_back(Found);
  }

  // Common output type.
  const Type *OutTy = OutputTy;
  for (const Bst *S : Subs) {
    if (!OutTy)
      OutTy = S->outputType();
    else if (OutTy != S->outputType()) {
      Res.Error = "capture transducers must share one output type";
      return Res;
    }
  }
  if (!OutTy)
    OutTy = Ctx.bv(16);

  Nfa N = buildNfa(Parsed->Root);
  auto Dfa = determinize(N, &Err);
  if (!Dfa) {
    Res.Error = Err;
    return Res;
  }
  Res.DfaStates = unsigned(Dfa->States.size());

  RegexBstBuilder B(Ctx, *Dfa, Subs, OutTy);
  Res.Result.emplace(B.run());
  return Res;
}
