//===- frontends/regex/Regex.h - Regex AST and parser -----------*- C++ -*-===//
///
/// \file
/// Regular expressions with named captures (paper §5.2).  The supported
/// syntax covers everything the paper's benchmarks use: literals, escapes
/// (\n \t \r \\ \d \D \w \W \s \S \xHH \uHHHH and escaped
/// metacharacters), '.', character classes with ranges and negation,
/// grouping `(?:...)`, named captures `(?<name>...)`, alternation, and the
/// quantifiers `* + ? {n} {n,m}`.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_FRONTENDS_REGEX_REGEX_H
#define EFC_FRONTENDS_REGEX_REGEX_H

#include "frontends/regex/CharClass.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace efc::fe {

class RegexNode;
using RegexPtr = std::shared_ptr<const RegexNode>;

/// A node of the regex AST.
class RegexNode {
public:
  enum class Kind : uint8_t {
    Epsilon, ///< empty string
    Chars,   ///< one character from a class
    Concat,
    Alt,
    Star,    ///< zero or more
    Plus,    ///< one or more
    Opt,     ///< zero or one
    Capture, ///< named capture group
  };

  Kind kind() const { return K; }
  const CharClass &chars() const { return Cls; }
  const std::vector<RegexPtr> &children() const { return Children; }
  const std::string &captureName() const { return Name; }
  unsigned captureIndex() const { return CaptureIdx; }

  static RegexPtr epsilon();
  static RegexPtr chars(CharClass C);
  static RegexPtr concat(std::vector<RegexPtr> Parts);
  static RegexPtr alt(std::vector<RegexPtr> Parts);
  static RegexPtr star(RegexPtr Inner);
  static RegexPtr plus(RegexPtr Inner);
  static RegexPtr opt(RegexPtr Inner);
  static RegexPtr capture(std::string Name, unsigned Index, RegexPtr Inner);

private:
  explicit RegexNode(Kind K) : K(K) {}
  Kind K;
  CharClass Cls;
  std::vector<RegexPtr> Children;
  std::string Name;
  unsigned CaptureIdx = 0;
};

/// Result of parsing: the AST plus capture names in index order.
struct ParsedRegex {
  RegexPtr Root;
  std::vector<std::string> CaptureNames;
};

/// Parses \p Pattern; returns std::nullopt and fills \p Error on failure.
std::optional<ParsedRegex> parseRegex(const std::string &Pattern,
                                      std::string *Error = nullptr);

} // namespace efc::fe

#endif // EFC_FRONTENDS_REGEX_REGEX_H
