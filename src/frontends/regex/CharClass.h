//===- frontends/regex/CharClass.h - Symbolic character classes -*- C++ -*-===//
///
/// \file
/// Character classes as sorted sets of inclusive ranges over the 16-bit
/// char domain — the predicate algebra of symbolic automata: union,
/// intersection, complement, and conversion to guard terms.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_FRONTENDS_REGEX_CHARCLASS_H
#define EFC_FRONTENDS_REGEX_CHARCLASS_H

#include "term/TermContext.h"

#include <cstdint>
#include <string>
#include <vector>

namespace efc::fe {

/// An inclusive character range.
struct CharRange {
  uint16_t Lo;
  uint16_t Hi;
  bool operator==(const CharRange &O) const = default;
};

/// A set of characters, kept as sorted, disjoint, non-adjacent ranges.
class CharClass {
public:
  CharClass() = default;

  static CharClass empty() { return CharClass(); }
  static CharClass all() { return range(0, 0xFFFF); }
  static CharClass singleton(uint16_t C) { return range(C, C); }
  static CharClass range(uint16_t Lo, uint16_t Hi);
  static CharClass fromRanges(std::vector<CharRange> Ranges);

  bool isEmpty() const { return Ranges.empty(); }
  bool contains(uint16_t C) const;
  /// Total number of characters in the class.
  uint64_t size() const;
  /// The smallest member (class must be non-empty).
  uint16_t smallest() const;

  CharClass unionWith(const CharClass &O) const;
  CharClass intersectWith(const CharClass &O) const;
  CharClass complement() const;
  CharClass minus(const CharClass &O) const {
    return intersectWith(O.complement());
  }

  bool operator==(const CharClass &O) const { return Ranges == O.Ranges; }

  const std::vector<CharRange> &ranges() const { return Ranges; }

  /// Guard term: disjunction of range tests on \p X.
  TermRef toPredicate(TermContext &Ctx, TermRef X) const;

  std::string str() const;

private:
  std::vector<CharRange> Ranges;

  void normalize();
};

} // namespace efc::fe

#endif // EFC_FRONTENDS_REGEX_CHARCLASS_H
