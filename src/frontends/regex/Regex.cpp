//===- frontends/regex/Regex.cpp - Regex parser ---------------------------===//

#include "frontends/regex/Regex.h"

using namespace efc;
using namespace efc::fe;

//===----------------------------------------------------------------------===
// AST constructors
//===----------------------------------------------------------------------===

RegexPtr RegexNode::epsilon() {
  static const RegexPtr E = RegexPtr(new RegexNode(Kind::Epsilon));
  return E;
}

RegexPtr RegexNode::chars(CharClass C) {
  auto N = new RegexNode(Kind::Chars);
  N->Cls = std::move(C);
  return RegexPtr(N);
}

RegexPtr RegexNode::concat(std::vector<RegexPtr> Parts) {
  if (Parts.empty())
    return epsilon();
  if (Parts.size() == 1)
    return Parts[0];
  auto N = new RegexNode(Kind::Concat);
  N->Children = std::move(Parts);
  return RegexPtr(N);
}

RegexPtr RegexNode::alt(std::vector<RegexPtr> Parts) {
  assert(!Parts.empty());
  if (Parts.size() == 1)
    return Parts[0];
  auto N = new RegexNode(Kind::Alt);
  N->Children = std::move(Parts);
  return RegexPtr(N);
}

RegexPtr RegexNode::star(RegexPtr Inner) {
  auto N = new RegexNode(Kind::Star);
  N->Children = {std::move(Inner)};
  return RegexPtr(N);
}

RegexPtr RegexNode::plus(RegexPtr Inner) {
  auto N = new RegexNode(Kind::Plus);
  N->Children = {std::move(Inner)};
  return RegexPtr(N);
}

RegexPtr RegexNode::opt(RegexPtr Inner) {
  auto N = new RegexNode(Kind::Opt);
  N->Children = {std::move(Inner)};
  return RegexPtr(N);
}

RegexPtr RegexNode::capture(std::string Name, unsigned Index,
                            RegexPtr Inner) {
  auto N = new RegexNode(Kind::Capture);
  N->Name = std::move(Name);
  N->CaptureIdx = Index;
  N->Children = {std::move(Inner)};
  return RegexPtr(N);
}

//===----------------------------------------------------------------------===
// Parser
//===----------------------------------------------------------------------===

namespace {

class Parser {
public:
  Parser(const std::string &Pattern, std::string *Error)
      : S(Pattern), Err(Error) {}

  std::optional<ParsedRegex> parse() {
    RegexPtr R = parseAlt();
    if (!R)
      return std::nullopt;
    if (Pos != S.size()) {
      fail("unexpected character at position " + std::to_string(Pos));
      return std::nullopt;
    }
    ParsedRegex P;
    P.Root = std::move(R);
    P.CaptureNames = std::move(CaptureNames);
    return P;
  }

private:
  const std::string &S;
  std::string *Err;
  size_t Pos = 0;
  std::vector<std::string> CaptureNames;

  void fail(const std::string &Msg) {
    if (Err && Err->empty())
      *Err = Msg;
  }

  bool eof() const { return Pos >= S.size(); }
  char peek() const { return S[Pos]; }
  bool eat(char C) {
    if (!eof() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  RegexPtr parseAlt() {
    std::vector<RegexPtr> Parts;
    RegexPtr First = parseConcat();
    if (!First)
      return nullptr;
    Parts.push_back(std::move(First));
    while (eat('|')) {
      RegexPtr Next = parseConcat();
      if (!Next)
        return nullptr;
      Parts.push_back(std::move(Next));
    }
    return RegexNode::alt(std::move(Parts));
  }

  RegexPtr parseConcat() {
    std::vector<RegexPtr> Parts;
    while (!eof() && peek() != '|' && peek() != ')') {
      RegexPtr Atom = parseRepeat();
      if (!Atom)
        return nullptr;
      Parts.push_back(std::move(Atom));
    }
    return RegexNode::concat(std::move(Parts));
  }

  RegexPtr parseRepeat() {
    RegexPtr Atom = parseAtom();
    if (!Atom)
      return nullptr;
    for (;;) {
      if (eat('*')) {
        Atom = RegexNode::star(std::move(Atom));
      } else if (eat('+')) {
        Atom = RegexNode::plus(std::move(Atom));
      } else if (eat('?')) {
        Atom = RegexNode::opt(std::move(Atom));
      } else if (!eof() && peek() == '{') {
        size_t Save = Pos;
        ++Pos;
        unsigned Lo = 0, Hi = 0;
        bool HasHi = true;
        if (!parseUInt(Lo)) {
          Pos = Save;
          break;
        }
        if (eat(',')) {
          if (!eof() && peek() == '}')
            HasHi = false; // {n,} unbounded
          else if (!parseUInt(Hi)) {
            fail("bad repetition bound");
            return nullptr;
          }
        } else {
          Hi = Lo;
        }
        if (!eat('}')) {
          fail("expected '}' in repetition");
          return nullptr;
        }
        if (HasHi && Hi < Lo) {
          fail("repetition upper bound below lower bound");
          return nullptr;
        }
        // Expand: r{n,m} = r^n (r?)^(m-n);  r{n,} = r^n r*.
        std::vector<RegexPtr> Parts;
        for (unsigned I = 0; I < Lo; ++I)
          Parts.push_back(Atom);
        if (!HasHi)
          Parts.push_back(RegexNode::star(Atom));
        else
          for (unsigned I = Lo; I < Hi; ++I)
            Parts.push_back(RegexNode::opt(Atom));
        Atom = RegexNode::concat(std::move(Parts));
      } else {
        break;
      }
    }
    return Atom;
  }

  bool parseUInt(unsigned &Out) {
    if (eof() || !isdigit((unsigned char)peek()))
      return false;
    Out = 0;
    while (!eof() && isdigit((unsigned char)peek()))
      Out = Out * 10 + unsigned(S[Pos++] - '0');
    return true;
  }

  RegexPtr parseAtom() {
    if (eof()) {
      fail("unexpected end of pattern");
      return nullptr;
    }
    char C = S[Pos];
    switch (C) {
    case '(': {
      ++Pos;
      if (eat('?')) {
        if (eat(':')) {
          RegexPtr Inner = parseAlt();
          if (!Inner || !eat(')')) {
            fail("unterminated group");
            return nullptr;
          }
          return Inner;
        }
        if (eat('<')) {
          std::string Name;
          while (!eof() && peek() != '>')
            Name.push_back(S[Pos++]);
          if (!eat('>') || Name.empty()) {
            fail("bad capture name");
            return nullptr;
          }
          unsigned Idx = unsigned(CaptureNames.size());
          CaptureNames.push_back(Name);
          RegexPtr Inner = parseAlt();
          if (!Inner || !eat(')')) {
            fail("unterminated capture");
            return nullptr;
          }
          return RegexNode::capture(Name, Idx, std::move(Inner));
        }
        fail("unsupported group kind");
        return nullptr;
      }
      // Plain parentheses group (non-capturing here).
      RegexPtr Inner = parseAlt();
      if (!Inner || !eat(')')) {
        fail("unterminated group");
        return nullptr;
      }
      return Inner;
    }
    case '[':
      return parseClass();
    case '.':
      ++Pos;
      // Any char except newline (as in .NET default mode).
      return RegexNode::chars(
          CharClass::singleton('\n').complement());
    case '\\': {
      ++Pos;
      CharClass Cls;
      if (!parseEscape(Cls))
        return nullptr;
      return RegexNode::chars(std::move(Cls));
    }
    case '^':
    case '$':
      // Anchors are no-ops: matching is whole-input.
      ++Pos;
      return RegexNode::epsilon();
    case '*':
    case '+':
    case '?':
    case ')':
    case '|':
      fail(std::string("unexpected '") + C + "'");
      return nullptr;
    default:
      ++Pos;
      return RegexNode::chars(CharClass::singleton(uint16_t(C)));
    }
  }

  bool parseEscape(CharClass &Out) {
    if (eof()) {
      fail("dangling escape");
      return false;
    }
    char C = S[Pos++];
    switch (C) {
    case 'n':
      Out = CharClass::singleton('\n');
      return true;
    case 't':
      Out = CharClass::singleton('\t');
      return true;
    case 'r':
      Out = CharClass::singleton('\r');
      return true;
    case '0':
      Out = CharClass::singleton(0);
      return true;
    case 'd':
      Out = CharClass::range('0', '9');
      return true;
    case 'D':
      Out = CharClass::range('0', '9').complement();
      return true;
    case 'w':
      Out = CharClass::range('a', 'z')
                .unionWith(CharClass::range('A', 'Z'))
                .unionWith(CharClass::range('0', '9'))
                .unionWith(CharClass::singleton('_'));
      return true;
    case 'W':
      Out = CharClass::range('a', 'z')
                .unionWith(CharClass::range('A', 'Z'))
                .unionWith(CharClass::range('0', '9'))
                .unionWith(CharClass::singleton('_'))
                .complement();
      return true;
    case 's':
      Out = CharClass::fromRanges(
          {{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\r', '\r'},
           {0x0B, 0x0C}});
      return true;
    case 'S':
      Out = CharClass::fromRanges(
                {{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\r', '\r'},
                 {0x0B, 0x0C}})
                .complement();
      return true;
    case 'x':
    case 'u': {
      unsigned Digits = C == 'x' ? 2 : 4;
      uint32_t V = 0;
      for (unsigned I = 0; I < Digits; ++I) {
        if (eof() || !isxdigit((unsigned char)peek())) {
          fail("bad hex escape");
          return false;
        }
        char H = S[Pos++];
        V = V * 16 + (isdigit((unsigned char)H) ? unsigned(H - '0')
                                                : unsigned(tolower(H) - 'a') +
                                                      10);
      }
      Out = CharClass::singleton(uint16_t(V));
      return true;
    }
    default:
      // Escaped metacharacter or literal.
      Out = CharClass::singleton(uint16_t((unsigned char)C));
      return true;
    }
  }

  RegexPtr parseClass() {
    assert(peek() == '[');
    ++Pos;
    bool Negated = eat('^');
    CharClass Cls = CharClass::empty();
    bool First = true;
    while (!eof() && (peek() != ']' || First)) {
      First = false;
      CharClass Item;
      uint16_t LoChar = 0;
      bool SingleChar = false;
      if (peek() == '\\') {
        ++Pos;
        if (!parseEscape(Item))
          return nullptr;
        if (Item.ranges().size() == 1 &&
            Item.ranges()[0].Lo == Item.ranges()[0].Hi) {
          SingleChar = true;
          LoChar = Item.ranges()[0].Lo;
        }
      } else {
        LoChar = uint16_t((unsigned char)S[Pos++]);
        Item = CharClass::singleton(LoChar);
        SingleChar = true;
      }
      // Range a-b?
      if (SingleChar && !eof() && peek() == '-' && Pos + 1 < S.size() &&
          S[Pos + 1] != ']') {
        ++Pos; // '-'
        uint16_t HiChar;
        if (peek() == '\\') {
          ++Pos;
          CharClass HiCls;
          if (!parseEscape(HiCls))
            return nullptr;
          if (HiCls.ranges().size() != 1 ||
              HiCls.ranges()[0].Lo != HiCls.ranges()[0].Hi) {
            fail("bad class range endpoint");
            return nullptr;
          }
          HiChar = HiCls.ranges()[0].Lo;
        } else {
          HiChar = uint16_t((unsigned char)S[Pos++]);
        }
        if (HiChar < LoChar) {
          fail("inverted class range");
          return nullptr;
        }
        Item = CharClass::range(LoChar, HiChar);
      }
      Cls = Cls.unionWith(Item);
    }
    if (!eat(']')) {
      fail("unterminated character class");
      return nullptr;
    }
    if (Negated)
      Cls = Cls.complement();
    return RegexNode::chars(std::move(Cls));
  }
};

} // namespace

std::optional<ParsedRegex> efc::fe::parseRegex(const std::string &Pattern,
                                               std::string *Error) {
  if (Error)
    Error->clear();
  Parser P(Pattern, Error);
  return P.parse();
}
