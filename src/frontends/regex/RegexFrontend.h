//===- frontends/regex/RegexFrontend.h - Regex comprehensions ---*- C++ -*-===//
///
/// \file
/// Effectful regex comprehensions (paper §5.2): given a pattern of shape
/// `(S1 (?<cap1>P1) S2 ... Sn (?<capn>Pn) Sn+1)*` and a transducer per
/// capture, builds one fused BST that parses matching input and streams
/// each capture's outputs.  The capture sub-transducers are composed
/// *hierarchically*: the start of a capture match (re)initializes the
/// sub-transducer, each matched character is fed to its Update, and
/// leaving the capture region triggers its finalizer — all inlined into
/// the match automaton's rules.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_FRONTENDS_REGEX_REGEXFRONTEND_H
#define EFC_FRONTENDS_REGEX_REGEXFRONTEND_H

#include "bst/Bst.h"
#include "frontends/regex/Automata.h"

#include <optional>
#include <string>
#include <vector>

namespace efc::fe {

/// Binds a capture name to the transducer applied to its matches.  The
/// transducer's input type must be the char type (bv16).
struct CaptureBinding {
  std::string Name;
  const Bst *Transducer;
};

struct RegexBstResult {
  std::optional<Bst> Result;
  std::string Error;
  unsigned DfaStates = 0;
};

/// Compiles \p Pattern with the given capture bindings into a BST.  With
/// no captures the result is a pure matcher with output type \p OutputTy
/// (it emits nothing; rejection signals mismatch).
RegexBstResult buildRegexBst(TermContext &Ctx, const std::string &Pattern,
                             const std::vector<CaptureBinding> &Captures,
                             const Type *OutputTy = nullptr);

} // namespace efc::fe

#endif // EFC_FRONTENDS_REGEX_REGEXFRONTEND_H
