//===- frontends/xpath/XPathFrontend.cpp ----------------------------------===//

#include "frontends/xpath/XPathFrontend.h"

#include "term/Rewrite.h"

#include <functional>
#include <map>
#include <tuple>

using namespace efc;
using namespace efc::fe;

namespace {

/// Builder for the streaming XML matcher product automaton.  Control
/// states are allocated lazily per (kind, level, position-in-name,
/// sub-transducer state).
class XPathBuilder {
public:
  XPathBuilder(TermContext &Ctx, std::vector<std::string> Tags,
               const Bst &A)
      : Ctx(Ctx), Tags(std::move(Tags)), A(A), N(unsigned(this->Tags.size())),
        Product(Ctx, Ctx.bv(16), A.outputType(),
                Ctx.pairTy(Ctx.bv(32), A.registerType()), 1, 0,
                Value::tuple({Value::bv(32, 0), A.initialRegister()})) {}

  Bst run() {
    // State id 0 is Content(level 0, sub init).
    Key Init{Kind::Content, 0, 0, A.initialState()};
    StateIds[Init] = 0;
    Product.setStateName(0, nameOf(Init));
    Worklist.push_back(Init);
    while (!Worklist.empty()) {
      Key K = Worklist.back();
      Worklist.pop_back();
      unsigned Id = StateIds.at(K);
      Product.setDelta(Id, buildDelta(K));
      Product.setFinalizer(Id, buildFin(K, Id));
    }
    return std::move(Product);
  }

private:
  enum class Kind : uint8_t {
    Content,   ///< scanning content at matched level L (depth reg = 0)
    Tag1,      ///< just consumed '<' at level L
    OpenName,  ///< matching tag L+1's name, Pos chars matched
    InAttrs,   ///< inside the matched element's attribute list
    AttrSlash, ///< after '/' inside the matched element's attributes
    CloseName, ///< matching the closing name of tag L, Pos chars matched
    SkipOpen,  ///< consuming a non-matching open tag
    SkipSlash, ///< after '/' in a non-matching open tag
    SkipC,     ///< content inside a skipped subtree (depth reg >= 1)
    SkipTag,   ///< '<' seen inside a skipped subtree
    SkipClose, ///< consuming a closing tag inside a skipped subtree
    Decl,      ///< <? ... ?> / <! ... > declaration, outside skip mode
    SkipDecl,  ///< declaration inside a skipped subtree
  };

  struct Key {
    Kind K;
    unsigned Level;
    unsigned Pos;
    unsigned Sub; ///< sub-transducer control state (live at Level == N)
    bool operator<(const Key &O) const {
      return std::tie(K, Level, Pos, Sub) <
             std::tie(O.K, O.Level, O.Pos, O.Sub);
    }
  };

  TermContext &Ctx;
  std::vector<std::string> Tags;
  const Bst &A;
  unsigned N;
  Bst Product;
  std::map<Key, unsigned> StateIds;
  std::vector<Key> Worklist;

  std::string nameOf(const Key &K) const {
    static const char *Names[] = {"C",  "T",  "ON", "IA", "AS", "CN", "SO",
                                  "SS", "SC", "ST", "SX", "D",  "SD"};
    std::string S = Names[unsigned(K.K)];
    S += std::to_string(K.Level);
    if (K.K == Kind::OpenName || K.K == Kind::CloseName)
      S += "_" + std::to_string(K.Pos);
    if (K.Level == N)
      S += "s" + std::to_string(K.Sub);
    return S;
  }

  unsigned stateId(Key K) {
    // Sub state only matters while the matched element is open.
    if (K.Level != N)
      K.Sub = A.initialState();
    auto [It, Inserted] = StateIds.try_emplace(K, 0);
    if (Inserted) {
      It->second = Product.addState(nameOf(K));
      Worklist.push_back(K);
    }
    return It->second;
  }

  TermRef depthReg() { return Ctx.mkProj1(Product.regVar()); }
  TermRef subReg() { return Ctx.mkProj2(Product.regVar()); }
  TermRef regWith(TermRef Depth, TermRef Sub) {
    return Ctx.mkPair(Depth, Sub);
  }
  TermRef keepReg() { return Product.regVar(); }

  RulePtr go(Key K, TermRef Update) {
    return Rule::base({}, stateId(K), Update);
  }
  RulePtr go(Key K) { return go(K, keepReg()); }

  /// Feeds the current char to A from sub-state \p Sub with register term
  /// \p SubR; leaves land in Content(N, subTarget).
  RulePtr feedContent(unsigned Sub, TermRef SubR) {
    Subst Theta;
    Theta.set(A.regVar(), SubR);
    return inlineRule(A.delta(Sub).get(), Theta,
                      [&](std::vector<TermRef> Outs, unsigned SubTgt,
                          TermRef Upd) {
                        return Rule::base(
                            std::move(Outs),
                            stateId({Kind::Content, N, 0, SubTgt}),
                            regWith(depthReg(), Upd));
                      });
  }

  /// Runs A's finalizer from \p Sub; \p Then builds the remainder from
  /// its outputs.
  RulePtr finalizeThen(
      unsigned Sub,
      const std::function<RulePtr(std::vector<TermRef>)> &Then) {
    Subst Theta;
    Theta.set(A.regVar(), subReg());
    return inlineRule(A.finalizer(Sub).get(), Theta,
                      [&](std::vector<TermRef> Outs, unsigned, TermRef) {
                        return Then(std::move(Outs));
                      });
  }

  RulePtr inlineRule(
      const Rule *R, const Subst &Theta,
      const std::function<RulePtr(std::vector<TermRef>, unsigned, TermRef)>
          &LeafFn) {
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return Rule::undef();
    case Rule::Kind::Ite:
      return Rule::ite(substitute(Ctx, R->cond(), Theta),
                       inlineRule(R->thenRule().get(), Theta, LeafFn),
                       inlineRule(R->elseRule().get(), Theta, LeafFn));
    case Rule::Kind::Base: {
      std::vector<TermRef> Outs;
      for (TermRef O : R->outputs())
        Outs.push_back(substitute(Ctx, O, Theta));
      return LeafFn(std::move(Outs), R->target(),
                    substitute(Ctx, R->update(), Theta));
    }
    }
    return Rule::undef();
  }

  TermRef is(char C) {
    return Ctx.mkEq(Product.inputVar(), Ctx.bvConst(16, uint64_t(C)));
  }
  TermRef isChar(char16_t C) {
    return Ctx.mkEq(Product.inputVar(), Ctx.bvConst(16, uint64_t(C)));
  }
  TermRef isSpace() {
    TermRef X = Product.inputVar();
    return Ctx.mkOr(
        Ctx.mkEq(X, Ctx.bvConst(16, ' ')),
        Ctx.mkOr(Ctx.mkEq(X, Ctx.bvConst(16, '\n')),
                 Ctx.mkOr(Ctx.mkEq(X, Ctx.bvConst(16, '\t')),
                          Ctx.mkEq(X, Ctx.bvConst(16, '\r')))));
  }

  /// Entering (having fully consumed '>') the element that completes the
  /// match at level N: reinitialize A.
  RulePtr enterMatched() {
    return Rule::base({}, stateId({Kind::Content, N, 0, A.initialState()}),
                      regWith(depthReg(), A.initialRegisterTerm()));
  }

  /// A matched element opened and immediately self-closed: run A on empty
  /// content (initialize then finalize).
  RulePtr emptyMatched(unsigned Level) {
    Subst Theta;
    Theta.set(A.regVar(), A.initialRegisterTerm());
    return inlineRule(A.finalizer(A.initialState()).get(), Theta,
                      [&](std::vector<TermRef> Outs, unsigned, TermRef) {
                        return Rule::base(std::move(Outs),
                                          stateId({Kind::Content, Level, 0,
                                                   0}),
                                          keepReg());
                      });
  }

  RulePtr buildDelta(const Key &K) {
    unsigned L = K.Level;
    switch (K.K) {
    case Kind::Content:
      if (L == N)
        return Rule::ite(is('<'), go({Kind::Tag1, L, 0, K.Sub}),
                         feedContent(K.Sub, subReg()));
      return Rule::ite(is('<'), go({Kind::Tag1, L, 0, 0}),
                       go({Kind::Content, L, 0, 0}) /* skip text */);

    case Kind::Tag1: {
      // '</': closing the current matched element (requires L >= 1).
      RulePtr OnClose =
          L == 0 ? Rule::undef() : go({Kind::CloseName, L, 0, K.Sub});
      RulePtr OnDecl = go({Kind::Decl, L, 0, K.Sub});
      // An opening name: either progresses the path match (first char of
      // tag L+1) or starts a non-matching element.
      RulePtr OnName;
      if (L < N) {
        char First = Tags[L][0];
        OnName = Rule::ite(isChar(First), go({Kind::OpenName, L, 1, 0}),
                           go({Kind::SkipOpen, L, 0, K.Sub}));
      } else {
        OnName = go({Kind::SkipOpen, L, 0, K.Sub});
      }
      return Rule::ite(is('/'), std::move(OnClose),
                       Rule::ite(Ctx.mkOr(is('?'), is('!')),
                                 std::move(OnDecl), std::move(OnName)));
    }

    case Kind::OpenName: {
      const std::string &Tag = Tags[L];
      if (K.Pos < Tag.size()) {
        // Next expected name character; anything else diverges.
        RulePtr OnMatch = go({Kind::OpenName, L, K.Pos + 1, 0});
        // Divergence: '>' or '/' or space end the (shorter) foreign name;
        // other chars continue a foreign name.
        return Rule::ite(
            isChar(Tag[K.Pos]), std::move(OnMatch),
            Rule::ite(is('>'),
                      Rule::base({}, stateId({Kind::SkipC, L, 0, K.Sub}),
                                 bumpDepth(1)),
                      Rule::ite(is('/'), go({Kind::SkipSlash, L, 0, K.Sub}),
                                go({Kind::SkipOpen, L, 0, K.Sub}))));
      }
      // Full name matched; a delimiter confirms the tag.
      RulePtr Confirmed =
          L + 1 == N ? enterMatched()
                     : go({Kind::Content, L + 1, 0, 0});
      return Rule::ite(
          is('>'), std::move(Confirmed),
          Rule::ite(isSpace(), go({Kind::InAttrs, L, 0, K.Sub}),
                    Rule::ite(is('/'), go({Kind::AttrSlash, L, 0, K.Sub}),
                              go({Kind::SkipOpen, L, 0, K.Sub}))));
    }

    case Kind::InAttrs:
      // Attributes of the (about to be) matched element at level L+1.
      return Rule::ite(
          is('>'),
          L + 1 == N ? enterMatched() : go({Kind::Content, L + 1, 0, 0}),
          Rule::ite(is('/'), go({Kind::AttrSlash, L, 0, K.Sub}),
                    go({Kind::InAttrs, L, 0, K.Sub})));

    case Kind::AttrSlash:
      // '/>' self-closes the matched element; a stray '/' returns to the
      // attribute scan.
      return Rule::ite(is('>'),
                       L + 1 == N ? emptyMatched(L)
                                  : go({Kind::Content, L, 0, 0}),
                       go({Kind::InAttrs, L, 0, K.Sub}));

    case Kind::CloseName: {
      const std::string &Tag = Tags[L - 1];
      if (K.Pos < Tag.size())
        return Rule::ite(isChar(Tag[K.Pos]),
                         go({Kind::CloseName, L, K.Pos + 1, K.Sub}),
                         Rule::undef());
      // Name consumed: '>' closes the element.  When it closes the fully
      // matched element, A's finalizer runs here.
      if (L == N)
        return Rule::ite(
            is('>'),
            finalizeThen(K.Sub,
                         [&](std::vector<TermRef> Outs) {
                           return Rule::base(
                               std::move(Outs),
                               stateId({Kind::Content, L - 1, 0, 0}),
                               keepReg());
                         }),
            Rule::undef());
      return Rule::ite(is('>'), go({Kind::Content, L - 1, 0, 0}),
                       Rule::undef());
    }

    case Kind::SkipOpen:
      return Rule::ite(
          is('>'),
          Rule::base({}, stateId({Kind::SkipC, L, 0, K.Sub}), bumpDepth(1)),
          Rule::ite(is('/'), go({Kind::SkipSlash, L, 0, K.Sub}),
                    go({Kind::SkipOpen, L, 0, K.Sub})));

    case Kind::SkipSlash:
      // '/>' self-closed: depth unchanged; back to where we were.
      return Rule::ite(is('>'), backFromSkip(K),
                       go({Kind::SkipOpen, L, 0, K.Sub}));

    case Kind::SkipC:
      return Rule::ite(is('<'), go({Kind::SkipTag, L, 0, K.Sub}),
                       go({Kind::SkipC, L, 0, K.Sub}));

    case Kind::SkipTag:
      return Rule::ite(
          is('/'), go({Kind::SkipClose, L, 0, K.Sub}),
          Rule::ite(Ctx.mkOr(is('?'), is('!')),
                    go({Kind::SkipDecl, L, 0, K.Sub}),
                    go({Kind::SkipOpen, L, 0, K.Sub})));

    case Kind::SkipClose:
      // Consume the closing name; at '>' decrement the depth register.
      return Rule::ite(
          is('>'),
          Rule::ite(Ctx.mkEq(depthReg(), Ctx.bvConst(32, 1)),
                    Rule::base({}, stateId({Kind::Content, L, 0, K.Sub}),
                               regWith(Ctx.bvConst(32, 0), subReg())),
                    Rule::base({}, stateId({Kind::SkipC, L, 0, K.Sub}),
                               bumpDepth(-1))),
          go({Kind::SkipClose, L, 0, K.Sub}));

    case Kind::Decl:
      return Rule::ite(is('>'), go({Kind::Content, L, 0, K.Sub}),
                       go({Kind::Decl, L, 0, K.Sub}));

    case Kind::SkipDecl:
      return Rule::ite(is('>'), go({Kind::SkipC, L, 0, K.Sub}),
                       go({Kind::SkipDecl, L, 0, K.Sub}));
    }
    return Rule::undef();
  }

  /// From SkipSlash: where does a '/>': return to?  Depth 0 means the
  /// element was opened directly under the matched prefix.
  RulePtr backFromSkip(const Key &K) {
    return Rule::ite(
        Ctx.mkEq(depthReg(), Ctx.bvConst(32, 0)),
        go({Kind::Content, K.Level, 0, K.Sub}),
        go({Kind::SkipC, K.Level, 0, K.Sub}));
  }

  TermRef bumpDepth(int Delta) {
    TermRef D = Delta >= 0
                    ? Ctx.mkAdd(depthReg(), Ctx.bvConst(32, uint64_t(Delta)))
                    : Ctx.mkSub(depthReg(),
                                Ctx.bvConst(32, uint64_t(-Delta)));
    return regWith(D, subReg());
  }

  RulePtr buildFin(const Key &K, unsigned SelfId) {
    // Only a fully closed document accepts.
    if (K.K == Kind::Content && K.Level == 0)
      return Rule::base({}, SelfId, keepReg());
    return Rule::undef();
  }
};

} // namespace

XPathBstResult efc::fe::buildXPathBst(TermContext &Ctx,
                                      const std::string &Query,
                                      const Bst &A) {
  XPathBstResult Res;
  if (A.inputType() != Ctx.bv(16)) {
    Res.Error = "content transducer must consume chars (bv16)";
    return Res;
  }
  if (Query.empty() || Query[0] != '/') {
    Res.Error = "query must start with '/'";
    return Res;
  }
  std::vector<std::string> Tags;
  std::string Cur;
  for (size_t I = 1; I <= Query.size(); ++I) {
    if (I == Query.size() || Query[I] == '/') {
      if (Cur.empty()) {
        Res.Error = "empty path component";
        return Res;
      }
      Tags.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(Query[I]);
    }
  }
  if (Tags.empty()) {
    Res.Error = "empty query";
    return Res;
  }

  XPathBuilder B(Ctx, std::move(Tags), A);
  Res.Result.emplace(B.run());
  return Res;
}
