//===- frontends/xpath/XPathFrontend.h - XPath comprehensions ---*- C++ -*-===//
///
/// \file
/// Effectful XPath comprehensions (paper §5.3): compiles a query of shape
/// `/tag1/tag2/.../tagn` plus a content transducer A into one streaming
/// BST over XML text (UTF-16 chars).  The matcher tracks how much of the
/// path the open-element stack currently matches; non-matching subtrees
/// are skipped with an integer depth register, exactly as the paper
/// describes.  The direct text content of every matched element is fed to
/// a fresh instance of A; closing the element triggers A's finalizer.
///
/// Supported XML subset (all the synthetic datasets stay inside it):
/// elements, attributes (values free of `<" >`), text, `<?...?>` /
/// `<!...>` declarations, self-closing tags.  Entity references and
/// CDATA are not interpreted.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_FRONTENDS_XPATH_XPATHFRONTEND_H
#define EFC_FRONTENDS_XPATH_XPATHFRONTEND_H

#include "bst/Bst.h"

#include <optional>
#include <string>

namespace efc::fe {

struct XPathBstResult {
  std::optional<Bst> Result;
  std::string Error;
};

/// Compiles `/a/b/c`-style \p Query with content transducer \p A
/// (input type bv16).  The result consumes XML chars (bv16) and produces
/// A's output type.
XPathBstResult buildXPathBst(TermContext &Ctx, const std::string &Query,
                             const Bst &A);

} // namespace efc::fe

#endif // EFC_FRONTENDS_XPATH_XPATHFRONTEND_H
