//===- support/Trace.h - JSONL trace spans ----------------------*- C++ -*-===//
///
/// \file
/// Lightweight tracing: set `EFC_TRACE=<file>` and compile phases emit one
/// JSON line per span on destruction:
///
///   {"name":"fuse","id":3,"parent":2,"tid":1,"ts_us":12,"dur_us":8012,
///    "states":41}
///
/// Spans nest through a thread-local stack, so the compile pipeline shows
/// up as a tree (compile -> fuse -> rbbe -> ... -> native -> codegen ->
/// cc).  When EFC_TRACE is unset the whole facility is one relaxed atomic
/// load per span — cheap enough to leave permanently in the phase code
/// (but not in per-element loops; spans are for phases, not elements).
///
/// Lines are written with a single fwrite under a mutex, so concurrent
/// spans from worker threads interleave at line granularity only.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_SUPPORT_TRACE_H
#define EFC_SUPPORT_TRACE_H

#include <cstdint>
#include <string>
#include <string_view>

namespace efc::trace {

/// True when EFC_TRACE named a writable file at first use (or at the last
/// reinitFromEnv()).  One relaxed atomic load after initialization.
bool enabled();

/// Re-read EFC_TRACE and reopen/close the sink.  Test hook — production
/// code never calls this; the env var is read once, lazily.
void reinitFromEnv();

/// RAII span.  Construct at phase entry, destroy at exit; attach numeric
/// or string attributes with note().  All methods are no-ops when tracing
/// is disabled, and a Span constructed while disabled stays inert even if
/// tracing is enabled before it dies.
class Span {
public:
  /// \p Name must outlive the span (string literals at every call site).
  explicit Span(const char *Name);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  void note(std::string_view Key, uint64_t V);
  void note(std::string_view Key, int64_t V);
  void note(std::string_view Key, double V);
  void note(std::string_view Key, std::string_view V);

private:
  const char *Name;
  uint64_t Id = 0;     // 0 = inert (tracing was off at construction)
  uint64_t Parent = 0; // 0 = root
  uint64_t StartUs = 0;
  std::string Attrs; // pre-rendered ,"key":value fragments
};

} // namespace efc::trace

#endif // EFC_SUPPORT_TRACE_H
