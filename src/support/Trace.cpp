//===- support/Trace.cpp --------------------------------------------------===//

#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

using namespace efc::trace;

namespace {

struct Sink {
  std::mutex Mu;
  FILE *F = nullptr;
};

Sink &sink() {
  static Sink *S = new Sink(); // leaked: spans may die during shutdown
  return *S;
}

std::atomic<int> State{-1}; // -1 uninit, 0 off, 1 on
std::atomic<uint64_t> NextId{1};
std::atomic<uint64_t> EpochUs{0};

thread_local std::vector<uint64_t> SpanStack;

uint64_t nowUs() {
  return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void initLocked() {
  Sink &S = sink();
  if (S.F) {
    fclose(S.F);
    S.F = nullptr;
  }
  const char *Path = std::getenv("EFC_TRACE");
  if (Path && *Path)
    S.F = fopen(Path, "a");
  if (S.F && EpochUs.load(std::memory_order_relaxed) == 0)
    EpochUs.store(nowUs(), std::memory_order_relaxed);
  State.store(S.F ? 1 : 0, std::memory_order_release);
}

bool enabledSlow() {
  Sink &S = sink();
  std::lock_guard<std::mutex> L(S.Mu);
  if (State.load(std::memory_order_relaxed) < 0)
    initLocked();
  return State.load(std::memory_order_relaxed) == 1;
}

void escapeInto(std::string &Out, std::string_view V) {
  for (char C : V) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

} // namespace

namespace efc::trace {

bool enabled() {
  int S = State.load(std::memory_order_acquire);
  if (S >= 0)
    return S == 1;
  return enabledSlow();
}

void reinitFromEnv() {
  Sink &S = sink();
  std::lock_guard<std::mutex> L(S.Mu);
  initLocked();
}

Span::Span(const char *N) : Name(N) {
  if (!enabled())
    return;
  Id = NextId.fetch_add(1, std::memory_order_relaxed);
  Parent = SpanStack.empty() ? 0 : SpanStack.back();
  SpanStack.push_back(Id);
  StartUs = nowUs();
}

Span::~Span() {
  if (Id == 0)
    return;
  uint64_t End = nowUs();
  if (!SpanStack.empty() && SpanStack.back() == Id)
    SpanStack.pop_back();
  std::string Line = "{\"name\":\"";
  escapeInto(Line, Name);
  Line += "\",\"id\":" + std::to_string(Id);
  if (Parent)
    Line += ",\"parent\":" + std::to_string(Parent);
  char Buf[96];
  snprintf(Buf, sizeof(Buf), ",\"ts_us\":%llu,\"dur_us\":%llu",
           (unsigned long long)(StartUs -
                                EpochUs.load(std::memory_order_relaxed)),
           (unsigned long long)(End - StartUs));
  Line += Buf;
  Line += Attrs;
  Line += "}\n";
  Sink &S = sink();
  std::lock_guard<std::mutex> L(S.Mu);
  if (S.F) {
    fwrite(Line.data(), 1, Line.size(), S.F);
    fflush(S.F);
  }
}

void Span::note(std::string_view Key, uint64_t V) {
  if (Id == 0)
    return;
  Attrs += ",\"";
  escapeInto(Attrs, Key);
  Attrs += "\":" + std::to_string(V);
}

void Span::note(std::string_view Key, int64_t V) {
  if (Id == 0)
    return;
  Attrs += ",\"";
  escapeInto(Attrs, Key);
  Attrs += "\":" + std::to_string(V);
}

void Span::note(std::string_view Key, double V) {
  if (Id == 0)
    return;
  char Buf[48];
  snprintf(Buf, sizeof(Buf), "%.6g", V);
  Attrs += ",\"";
  escapeInto(Attrs, Key);
  Attrs += "\":";
  Attrs += Buf;
}

void Span::note(std::string_view Key, std::string_view V) {
  if (Id == 0)
    return;
  Attrs += ",\"";
  escapeInto(Attrs, Key);
  Attrs += "\":\"";
  escapeInto(Attrs, V);
  Attrs += "\"";
}

} // namespace efc::trace
