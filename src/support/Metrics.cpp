//===- support/Metrics.cpp ------------------------------------------------===//

#include "support/Metrics.h"

#include <cassert>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

using namespace efc::metrics;

namespace {

/// %g loses precision on large counters and %f drools zeros; print
/// doubles the way Prometheus clients do — shortest round-trippable.
std::string num(double V) {
  char Buf[64];
  snprintf(Buf, sizeof(Buf), "%.17g", V);
  // Trim to the shortest representation that still round-trips.
  for (int Prec = 1; Prec < 17; ++Prec) {
    char Short[64];
    snprintf(Short, sizeof(Short), "%.*g", Prec, V);
    double Back;
    if (sscanf(Short, "%lf", &Back) == 1 && Back == V)
      return Short;
  }
  return Buf;
}

std::string num(uint64_t V) { return std::to_string(V); }
std::string num(int64_t V) { return std::to_string(V); }

} // namespace

struct Registry::Impl {
  enum class Kind : uint8_t { Counter, DCounter, Gauge, Histogram };

  struct Item {
    std::string Labels;
    Kind K;
    void *M;
  };
  struct Family {
    std::string Help;
    Kind K;
    std::vector<Item> Items;
  };

  mutable std::mutex Mu;
  /// family name -> metadata + label variants (ordered for rendering).
  std::map<std::string, Family> Families;
  /// "name\x01labels" -> metric object (interning index).
  std::unordered_map<std::string, void *> Index;
  // Deques: stable addresses, append-only.
  std::deque<Counter> Counters;
  std::deque<DoubleCounter> DCounters;
  std::deque<Gauge> Gauges;
  std::deque<Histogram> Hists;

  void *find(std::string_view Name, std::string_view Labels, Kind K) {
    std::string Key = std::string(Name) + '\x01' + std::string(Labels);
    auto It = Index.find(Key);
    if (It == Index.end())
      return nullptr;
    auto F = Families.find(std::string(Name));
    assert(F != Families.end() && F->second.K == K &&
           "metric re-registered with a different kind");
    (void)K;
    (void)F;
    return It->second;
  }

  void publish(std::string_view Name, std::string_view Help,
               std::string_view Labels, Kind K, void *M) {
    std::string N(Name);
    auto [F, New] = Families.try_emplace(N);
    if (New) {
      F->second.Help = std::string(Help);
      F->second.K = K;
    } else if (F->second.Help.empty() && !Help.empty()) {
      F->second.Help = std::string(Help);
    }
    F->second.Items.push_back(Item{std::string(Labels), K, M});
    Index.emplace(N + '\x01' + std::string(Labels), M);
  }
};

Registry::Registry() : I(new Impl) {}
Registry::~Registry() { delete I; }

Registry &Registry::instance() {
  // Leaked on purpose: metrics are incremented from threads that may
  // outlive static destruction order.
  static Registry *R = new Registry();
  return *R;
}

Counter &Registry::counter(std::string_view Name, std::string_view Help,
                           std::string_view Labels) {
  std::lock_guard<std::mutex> L(I->Mu);
  if (void *M = I->find(Name, Labels, Impl::Kind::Counter))
    return *static_cast<Counter *>(M);
  Counter &C = I->Counters.emplace_back();
  I->publish(Name, Help, Labels, Impl::Kind::Counter, &C);
  return C;
}

DoubleCounter &Registry::dcounter(std::string_view Name,
                                  std::string_view Help,
                                  std::string_view Labels) {
  std::lock_guard<std::mutex> L(I->Mu);
  if (void *M = I->find(Name, Labels, Impl::Kind::DCounter))
    return *static_cast<DoubleCounter *>(M);
  DoubleCounter &C = I->DCounters.emplace_back();
  I->publish(Name, Help, Labels, Impl::Kind::DCounter, &C);
  return C;
}

Gauge &Registry::gauge(std::string_view Name, std::string_view Help,
                       std::string_view Labels) {
  std::lock_guard<std::mutex> L(I->Mu);
  if (void *M = I->find(Name, Labels, Impl::Kind::Gauge))
    return *static_cast<Gauge *>(M);
  Gauge &G = I->Gauges.emplace_back();
  I->publish(Name, Help, Labels, Impl::Kind::Gauge, &G);
  return G;
}

Histogram &Registry::histogram(std::string_view Name, std::string_view Help,
                               std::initializer_list<double> Bounds,
                               std::string_view Labels) {
  assert(Bounds.size() <= Histogram::MaxBuckets &&
         "histogram bucket count exceeds the fixed layout");
  std::lock_guard<std::mutex> L(I->Mu);
  if (void *M = I->find(Name, Labels, Impl::Kind::Histogram))
    return *static_cast<Histogram *>(M);
  Histogram &H = I->Hists.emplace_back();
  unsigned N = 0;
  double Prev = -1e308;
  for (double B : Bounds) {
    assert(B > Prev && "histogram bounds must be strictly ascending");
    Prev = B;
    if (N < Histogram::MaxBuckets)
      H.Bounds[N++] = B;
  }
  (void)Prev;
  H.NumBounds = N;
  I->publish(Name, Help, Labels, Impl::Kind::Histogram, &H);
  return H;
}

std::string Registry::renderPrometheus() const {
  std::lock_guard<std::mutex> L(I->Mu);
  std::string S;
  auto Braced = [](const std::string &Labels) {
    return Labels.empty() ? std::string() : "{" + Labels + "}";
  };
  for (const auto &[Name, F] : I->Families) {
    if (!F.Help.empty())
      S += "# HELP " + Name + " " + F.Help + "\n";
    const char *Type = F.K == Impl::Kind::Gauge       ? "gauge"
                       : F.K == Impl::Kind::Histogram ? "histogram"
                                                      : "counter";
    S += "# TYPE " + Name + " " + Type + "\n";
    for (const Impl::Item &It : F.Items) {
      switch (It.K) {
      case Impl::Kind::Counter:
        S += Name + Braced(It.Labels) + " " +
             num(static_cast<Counter *>(It.M)->value()) + "\n";
        break;
      case Impl::Kind::DCounter:
        S += Name + Braced(It.Labels) + " " +
             num(static_cast<DoubleCounter *>(It.M)->value()) + "\n";
        break;
      case Impl::Kind::Gauge:
        S += Name + Braced(It.Labels) + " " +
             num(static_cast<Gauge *>(It.M)->value()) + "\n";
        break;
      case Impl::Kind::Histogram: {
        const Histogram *H = static_cast<Histogram *>(It.M);
        std::string Base = It.Labels.empty() ? "" : It.Labels + ",";
        uint64_t Cum = 0;
        for (unsigned B = 0; B < H->numBounds(); ++B) {
          Cum += H->bucketCount(B);
          S += Name + "_bucket{" + Base + "le=\"" + num(H->bound(B)) +
               "\"} " + num(Cum) + "\n";
        }
        Cum += H->bucketCount(H->numBounds());
        S += Name + "_bucket{" + Base + "le=\"+Inf\"} " + num(Cum) + "\n";
        S += Name + "_sum" + Braced(It.Labels) + " " + num(H->sum()) + "\n";
        S += Name + "_count" + Braced(It.Labels) + " " + num(Cum) + "\n";
        break;
      }
      }
    }
  }
  return S;
}
