//===- support/EnvParse.cpp -----------------------------------------------===//

#include "support/EnvParse.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

namespace efc::env {

namespace {

/// One warning per (variable, value-class) for the process: a bad value in
/// a hot loop must not flood stderr, but the operator has to see it once.
std::mutex WarnMu;
std::set<std::string> Warned;

void warnOnce(const char *Name, const char *Val, const char *Why,
              const std::string &Def) {
  std::lock_guard<std::mutex> L(WarnMu);
  if (!Warned.insert(Name).second)
    return;
  fprintf(stderr, "efc: ignoring %s='%s' (%s); using default %s\n", Name,
          Val, Why, Def.c_str());
}

bool wholeToken(const char *S, const char *End) {
  // strto* skips leading whitespace; reject it for flags/env alike so
  // "  5" and "5 " read as malformed rather than silently truncating.
  return S && *S && End && *End == '\0' && !isspace((unsigned char)*S);
}

} // namespace

bool parseU64(const char *S, uint64_t &Out, int Base) {
  if (!S || !*S || *S == '-')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = strtoull(S, &End, Base);
  if (!wholeToken(S, End) || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

bool parseI64(const char *S, int64_t &Out, int Base) {
  if (!S || !*S)
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = strtoll(S, &End, Base);
  if (!wholeToken(S, End) || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

bool parseF64(const char *S, double &Out) {
  if (!S || !*S)
    return false;
  errno = 0;
  char *End = nullptr;
  double V = strtod(S, &End);
  if (!wholeToken(S, End) || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

uint64_t u64(const char *Name, uint64_t Def, uint64_t Min, uint64_t Max,
             int Base) {
  const char *E = std::getenv(Name);
  if (!E)
    return Def;
  uint64_t V = 0;
  if (!parseU64(E, V, Base)) {
    warnOnce(Name, E, "not an unsigned integer", std::to_string(Def));
    return Def;
  }
  if (V < Min || V > Max) {
    warnOnce(Name, E,
             ("out of range [" + std::to_string(Min) + ", " +
              std::to_string(Max) + "]")
                 .c_str(),
             std::to_string(Def));
    return Def;
  }
  return V;
}

int64_t i64(const char *Name, int64_t Def, int64_t Min, int64_t Max) {
  const char *E = std::getenv(Name);
  if (!E)
    return Def;
  int64_t V = 0;
  if (!parseI64(E, V)) {
    warnOnce(Name, E, "not an integer", std::to_string(Def));
    return Def;
  }
  if (V < Min || V > Max) {
    warnOnce(Name, E,
             ("out of range [" + std::to_string(Min) + ", " +
              std::to_string(Max) + "]")
                 .c_str(),
             std::to_string(Def));
    return Def;
  }
  return V;
}

double f64(const char *Name, double Def, double Min, double Max) {
  const char *E = std::getenv(Name);
  if (!E)
    return Def;
  double V = 0;
  if (!parseF64(E, V)) {
    warnOnce(Name, E, "not a number", std::to_string(Def));
    return Def;
  }
  if (!(V >= Min && V <= Max)) { // also rejects NaN
    warnOnce(Name, E, "out of range", std::to_string(Def));
    return Def;
  }
  return V;
}

bool flag(const char *Name, bool Def) {
  const char *E = std::getenv(Name);
  if (!E)
    return Def;
  int64_t V = 0;
  if (!parseI64(E, V)) {
    warnOnce(Name, E, "not a 0/1 flag", Def ? "1" : "0");
    return Def;
  }
  return V != 0;
}

unsigned resetWarnings() {
  std::lock_guard<std::mutex> L(WarnMu);
  unsigned N = unsigned(Warned.size());
  Warned.clear();
  return N;
}

} // namespace efc::env
