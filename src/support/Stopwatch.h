//===- support/Stopwatch.h - Wall-clock timing ------------------*- C++ -*-===//
///
/// \file
/// Small wall-clock timer plus a deterministic RNG shared by tests, data
/// generators and benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_SUPPORT_STOPWATCH_H
#define EFC_SUPPORT_STOPWATCH_H

#include <chrono>
#include <cstdint>

namespace efc {

/// Wall-clock stopwatch; starts running on construction.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// SplitMix64: tiny deterministic RNG for reproducible synthetic data.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound).
  uint64_t below(uint64_t Bound) { return Bound == 0 ? 0 : next() % Bound; }

  /// Uniform in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    return Lo + below(Hi - Lo + 1);
  }

  double unitReal() { return double(next() >> 11) * (1.0 / 9007199254740992.0); }

private:
  uint64_t State;
};

} // namespace efc

#endif // EFC_SUPPORT_STOPWATCH_H
