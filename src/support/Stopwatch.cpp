//===- support/Stopwatch.cpp ----------------------------------------------===//

#include "support/Stopwatch.h"

// Header-only for now; this TU anchors the library.
