//===- support/EnvParse.h - Validated env/flag numeric parsing --*- C++ -*-===//
///
/// \file
/// One shared parser for every numeric environment knob and CLI flag.
/// The historical call sites used bare `atoi`/`strtoull(V, nullptr, 10)`,
/// which silently map garbage to 0 — `EFC_SESSION_IDLE_MS=abc` became
/// "reap immediately" and `EFC_PARALLEL_MIN_BYTES=1M` became
/// "always parallel".  Two disciplines replace that:
///
///  * env vars (`env::u64` / `env::i64` / `env::f64` / `env::flag`):
///    endptr- and range-checked; a malformed or out-of-range value warns
///    once per variable on stderr and falls back to the documented
///    default, so a typo can never change semantics silently.
///  * CLI flags (`env::parseU64` / `parseI64` / `parseF64`): strict
///    parse returning false on any trailing garbage, overflow or empty
///    string — the caller turns that into a usage error.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_SUPPORT_ENVPARSE_H
#define EFC_SUPPORT_ENVPARSE_H

#include <cstdint>
#include <limits>

namespace efc::env {

/// Strict parses for CLI flags: the whole string must be one number in
/// range (leading/trailing whitespace rejected).  \p Base follows strtoull
/// (0 = accept 0x-prefixed hex).  On failure \p Out is untouched.
bool parseU64(const char *S, uint64_t &Out, int Base = 10);
bool parseI64(const char *S, int64_t &Out, int Base = 10);
bool parseF64(const char *S, double &Out);

/// Reads \p Name from the environment as an unsigned integer in
/// [\p Min, \p Max].  Unset → \p Def.  Malformed or out of range → warn
/// once on stderr, return \p Def.  \p Base as above (EFC_FUZZ_SEED uses
/// base 0 for 0x-hex seeds).
uint64_t u64(const char *Name, uint64_t Def, uint64_t Min = 0,
             uint64_t Max = std::numeric_limits<uint64_t>::max(),
             int Base = 10);

/// Signed variant (EFC_NATIVE_RETRY_MS and friends).
int64_t i64(const char *Name, int64_t Def,
            int64_t Min = std::numeric_limits<int64_t>::min(),
            int64_t Max = std::numeric_limits<int64_t>::max());

/// Floating-point variant (EFC_CERTIFY_BUDGET_MS).
double f64(const char *Name, double Def,
           double Min = -std::numeric_limits<double>::infinity(),
           double Max = std::numeric_limits<double>::infinity());

/// Boolean knob: unset → \p Def; "0" → false; any other *numeric* value
/// → true; malformed → warn once, return \p Def.  (Matches the historical
/// `atoi(E) != 0` contract for well-formed values.)
bool flag(const char *Name, bool Def);

/// Test hook: forget which variables have already warned, so suites can
/// assert the warning fires.  Returns the number of entries dropped.
unsigned resetWarnings();

} // namespace efc::env

#endif // EFC_SUPPORT_ENVPARSE_H
