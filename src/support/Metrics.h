//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
///
/// \file
/// One registry for every counter the system exposes (see DESIGN.md
/// "Observability").  Subsystems register named metrics once (typically
/// through a function-local static reference, so the by-name lookup is
/// paid a single time) and then update them with relaxed atomic
/// operations — cheap enough for hot paths, though the convention for the
/// hottest loops (fast-path run kernels) remains: accumulate locally and
/// fold into the registry at session / run end.
///
/// Metric kinds:
///   * Counter        — monotonically increasing uint64 (events).
///   * DoubleCounter  — monotonically increasing double (seconds totals).
///   * Gauge          — int64 that can go up and down (queue depths).
///   * Histogram      — fixed upper-bound buckets, Prometheus `le`
///                      semantics (a sample equal to a bound lands in
///                      that bound's bucket).  Bucket layout is immutable
///                      after registration, so observe() is lock-free.
///
/// renderPrometheus() produces the text exposition format served by the
/// efc-serve 'M' frame and `efcc --metrics`:
///
///   # HELP efc_cache_hits_total Lookups served from memory
///   # TYPE efc_cache_hits_total counter
///   efc_cache_hits_total 12
///   efc_stream_bytes_in_total{backend="vm"} 4096
///
/// Metrics with the same family name but different label sets share one
/// HELP/TYPE header.  The registry is append-only and never deallocates,
/// so references stay valid for the life of the process.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_SUPPORT_METRICS_H
#define EFC_SUPPORT_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace efc::metrics {

/// Monotonic event counter.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Monotonic floating-point counter (cumulative seconds and the like).
/// CAS loop instead of atomic<double>::fetch_add for toolchain
/// portability; contention is negligible at the call sites (per phase,
/// not per element).
class DoubleCounter {
public:
  void add(double X) {
    double Cur = V.load(std::memory_order_relaxed);
    while (!V.compare_exchange_weak(Cur, Cur + X, std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
    }
  }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0};
};

/// Up/down instantaneous value.
class Gauge {
public:
  void set(int64_t X) { V.store(X, std::memory_order_relaxed); }
  void add(int64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  void sub(int64_t N = 1) { V.fetch_sub(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Fixed-bucket histogram.  Bounds are upper bounds in ascending order;
/// an implicit +Inf bucket catches the rest.  Fixed buckets (rather than
/// HDR/t-digest) keep observe() to one bounded scan plus two relaxed
/// atomics — the overhead budget for the serving path.
class Histogram {
public:
  static constexpr unsigned MaxBuckets = 24;

  void observe(double X) {
    unsigned I = 0;
    while (I < NumBounds && X > Bounds[I])
      ++I;
    B[I].fetch_add(1, std::memory_order_relaxed);
    Sum.add(X);
  }

  unsigned numBounds() const { return NumBounds; }
  double bound(unsigned I) const { return Bounds[I]; }
  /// Raw (non-cumulative) count of bucket \p I; index NumBounds is +Inf.
  uint64_t bucketCount(unsigned I) const {
    return B[I].load(std::memory_order_relaxed);
  }
  uint64_t count() const {
    uint64_t N = 0;
    for (unsigned I = 0; I <= NumBounds; ++I)
      N += bucketCount(I);
    return N;
  }
  double sum() const { return Sum.value(); }

  /// Default-constructed histograms have no finite bounds (one +Inf
  /// bucket); registration through Registry::histogram installs the
  /// layout.  Not movable/copyable — atomics pin the address.
  Histogram() = default;

private:
  friend class Registry;

  std::array<double, MaxBuckets> Bounds{};
  unsigned NumBounds = 0;
  std::array<std::atomic<uint64_t>, MaxBuckets + 1> B{};
  DoubleCounter Sum;
};

/// The process-wide registry.  Registration interns by (name, labels);
/// repeated registration returns the same object, so call sites can hold
/// `static Counter &C = Registry::instance().counter(...)`.
class Registry {
public:
  static Registry &instance();

  /// \p Labels is a pre-rendered Prometheus label body without braces,
  /// e.g. `backend="vm"`; empty for an unlabeled metric.
  Counter &counter(std::string_view Name, std::string_view Help = {},
                   std::string_view Labels = {});
  DoubleCounter &dcounter(std::string_view Name, std::string_view Help = {},
                          std::string_view Labels = {});
  Gauge &gauge(std::string_view Name, std::string_view Help = {},
               std::string_view Labels = {});
  Histogram &histogram(std::string_view Name, std::string_view Help,
                       std::initializer_list<double> Bounds,
                       std::string_view Labels = {});

  /// Prometheus text exposition of every registered metric, families
  /// sorted by name, label variants in registration order.
  std::string renderPrometheus() const;

private:
  Registry();
  ~Registry();
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  struct Impl;
  Impl *I;
};

} // namespace efc::metrics

#endif // EFC_SUPPORT_METRICS_H
