//===- rbbe/Rbbe.h - Reachability based branch elimination ------*- C++ -*-===//
///
/// \file
/// Paper §4: removes rule branches that are unreachable due to
/// state-carried constraints — satisfiable in isolation, but no reachable
/// register value can enable them.  Combines a forward breadth-first
/// under-approximation (cheaply tagging definitely-reachable moves) with a
/// bounded backward reachability search with subsumption (ISREACHABLE of
/// Figure 8).
///
/// The paper's input-list variable `w` is Skolemized: every backward step
/// substitutes the register variable with `g(x_k, r)` for a globally fresh
/// input variable `x_k`.  All quantification over `w` in the paper is
/// existential, so satisfiability — and hence every verdict — is preserved
/// exactly (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef EFC_RBBE_RBBE_H
#define EFC_RBBE_RBBE_H

#include "bst/Bst.h"
#include "solver/Solver.h"

namespace efc {

struct RbbeStats {
  unsigned BranchesRemoved = 0;      ///< transition branches eliminated
  unsigned FinalBranchesRemoved = 0; ///< finalizer branches eliminated
  unsigned BranchesLeft = 0;         ///< Base leaves remaining afterwards
  unsigned StatesRemoved = 0;
  unsigned UnderApproxHits = 0; ///< moves the forward pass proved reachable
  unsigned ReachCalls = 0;      ///< ISREACHABLE invocations
  uint64_t SolverChecks = 0;
  double Seconds = 0;
};

struct RbbeOptions {
  /// Run the forward under-approximation first (ablatable).
  bool UnderApprox = true;
  /// Layer budget for the forward pass; 0 means `numStates()` layers.
  unsigned ForwardLayers = 0;
  /// Max configurations carried per forward layer.
  unsigned ForwardWidth = 32;
  /// Backward depth bound k; 0 means `numStates()` (the paper's choice).
  unsigned BackwardDepth = 0;
  /// Node budget for backward reachability predicates: when a candidate
  /// γ exceeds this size the search gives up on that branch (keeps it).
  /// The Ψ formulas of Figure 8 can grow multiplicatively per layer.
  unsigned MaxPredicateNodes = 20000;
  /// Total solver-check budget for one eliminate() run; exhausted means
  /// remaining branches are conservatively kept.  The forward pass may
  /// spend at most half of it, so the backward search always gets a share.
  uint64_t MaxSolverChecks = 2000;
  /// Per-check CDCL conflict budget (Unknown is handled conservatively).
  int64_t ConflictBudget = 100;
  /// Wall-clock budget in seconds; 0 means unlimited.  Check counts alone
  /// do not bound cost: one check on a wide-bitvector formula can take
  /// seconds in CNF encoding before any conflict is counted.  On expiry
  /// the run finishes conservatively (remaining branches are kept).
  double TimeBudgetSeconds = 0;
};

/// Applies RBBE to \p A and returns the cleaned transducer
/// (⟦result⟧ = ⟦A⟧).  Dead-end and unreachable control states left behind
/// by branch removal are pruned as in the paper's ELIMINATE (line 12).
Bst eliminateUnreachableBranches(const Bst &A, Solver &S,
                                 const RbbeOptions &Opts = {},
                                 RbbeStats *Stats = nullptr);

} // namespace efc

#endif // EFC_RBBE_RBBE_H
