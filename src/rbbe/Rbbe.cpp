//===- rbbe/Rbbe.cpp - Reachability based branch elimination (Figure 8) ---===//

#include "rbbe/Rbbe.h"

#include "bst/Moves.h"
#include "bst/Transform.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"
#include "support/Trace.h"
#include "term/Rewrite.h"

#include <unordered_set>

using namespace efc;

namespace {

/// Three-valued reachability verdict.
enum class Reach { Yes, No, Bound };

class Eliminator {
public:
  Eliminator(const Bst &A, Solver &S, const RbbeOptions &Opts,
             RbbeStats &Stats)
      : W(cloneBst(A)), Ctx(A.context()), S(S), Opts(Opts), Stats(Stats) {}

  Bst run() {
    std::unordered_set<const Rule *> Known;
    if (Opts.UnderApprox)
      Known = computeUnderApproximation();

    unsigned K = Opts.BackwardDepth ? Opts.BackwardDepth : W.numStates();

    // Transition moves.  The move list is snapshotted up front (leaf
    // pointers stay valid: rules are immutable and shared), while each
    // ISREACHABLE call walks the *current* W for maximal pruning.
    for (const Move &M : movesOf(W)) {
      if (Known.count(M.Leaf) || !budgetLeft())
        continue;
      TermRef Psi = withFreshInput(M.Guard, nullptr);
      ++Stats.ReachCalls;
      if (isReachable(M.Src, Psi, K) == Reach::No) {
        W.setDelta(M.Src, eliminateLeaf(W.delta(M.Src), M.Leaf));
        ++Stats.BranchesRemoved;
      }
    }
    // Finalizer moves (guards over r only; no input consumed).
    for (const FinalMove &M : finalMovesOf(W)) {
      if (Known.count(M.Leaf) || !budgetLeft())
        continue;
      ++Stats.ReachCalls;
      if (isReachable(M.Src, M.Guard, K) == Reach::No) {
        W.setFinalizer(M.Src, eliminateLeaf(W.finalizer(M.Src), M.Leaf));
        ++Stats.FinalBranchesRemoved;
      }
    }

    unsigned Before = W.numStates();
    Bst Result = eliminateDeadEnds(W);
    Stats.StatesRemoved = Before - Result.numStates();
    Stats.BranchesLeft = Result.countBranches();
    return Result;
  }

private:
  Bst W;
  TermContext &Ctx;
  Solver &S;
  const RbbeOptions &Opts;
  RbbeStats &Stats;
  Stopwatch Timer;

  /// Substitutes a globally fresh input variable for `x` in \p T.  When
  /// \p OutVar is non-null the variable is returned.
  TermRef withFreshInput(TermRef T, TermRef *OutVar) {
    TermRef X = W.inputVar();
    if (!mentionsVar(T, X)) {
      if (OutVar)
        *OutVar = nullptr;
      return T;
    }
    TermRef Fresh = Ctx.freshVar("w", W.inputType());
    if (OutVar)
      *OutVar = Fresh;
    Subst Sub;
    Sub.set(X, Fresh);
    return substitute(Ctx, T, Sub);
  }

  bool timeLeft() const {
    return Opts.TimeBudgetSeconds <= 0 ||
           Timer.seconds() < Opts.TimeBudgetSeconds;
  }

  bool budgetLeft() const {
    return Stats.SolverChecks < Opts.MaxSolverChecks && timeLeft();
  }

  /// The forward pass must leave budget for the backward search: if it
  /// spends everything, run() degrades to an expensive no-op.
  bool forwardBudgetLeft() const {
    return Stats.SolverChecks < Opts.MaxSolverChecks / 2 && timeLeft();
  }

  /// Under-approximation tagging must be *definite*: an Unknown must not
  /// mark a move reachable, or budgetless runs would tag everything.
  bool provenSat(TermRef Phi) {
    ++Stats.SolverChecks;
    return S.checkWith(Phi) == SatResult::Sat;
  }

  /// ISREACHABLE of Figure 8: can control state \p Tgt be reached with a
  /// register satisfying \p PsiTgt (a predicate over r and fresh input
  /// variables)?
  ///
  /// The paper's Ψ[q] disjunctions are kept as *sets of disjuncts*: each
  /// backward step produces γ = φ{x_k/x} ∧ ψ{g{x_k/x}/r}, a pure
  /// conjunction that the interval presolve can usually decide outright.
  /// Subsumption (the paper's Σ check) is weakened to syntactic identity
  /// of interned terms — sound, since subsumption only limits
  /// re-exploration and every search is depth-bounded anyway.
  Reach isReachable(unsigned Tgt, TermRef PsiTgt, unsigned K) {
    TermRef RVar = W.regVar();
    std::vector<Move> Ms = movesOf(W);
    TermRef R0 = W.initialRegisterTerm();

    // Per-state disjunct sets: current layer and ever-seen (Σ).
    std::vector<std::vector<TermRef>> Layer(W.numStates());
    std::vector<std::unordered_set<TermRef>> Sigma(W.numStates());
    Layer[Tgt].push_back(PsiTgt);
    Sigma[Tgt].insert(PsiTgt);
    bool SawUnknown = false;
    bool AnyLive = true;

    while (AnyLive) {
      std::vector<std::vector<TermRef>> Next(W.numStates());
      AnyLive = false;
      for (unsigned Q = 0; Q < W.numStates(); ++Q) {
        for (TermRef Psi : Layer[Q]) {
          if (!budgetLeft())
            return Reach::Bound;
          if (Q == W.initialState()) {
            Subst Init;
            Init.set(RVar, R0);
            TermRef AtInit = substitute(Ctx, Psi, Init);
            ++Stats.SolverChecks;
            SatResult R = S.checkWith(AtInit);
            if (R == SatResult::Sat)
              return Reach::Yes;
            if (R == SatResult::Unknown)
              SawUnknown = true;
          }
          for (const Move &M : Ms) {
            if (M.Dst != Q)
              continue;
            TermRef Fresh = Ctx.freshVar("w", W.inputType());
            Subst StepIn;
            StepIn.set(W.inputVar(), Fresh);
            TermRef Guard = substitute(Ctx, M.Guard, StepIn);
            TermRef Update = substitute(Ctx, M.Update, StepIn);
            Subst RegSub;
            RegSub.set(RVar, Update);
            TermRef Gamma =
                Ctx.mkAnd(Guard, substitute(Ctx, Psi, RegSub));
            if (Gamma->isFalse())
              continue;
            if (termSize(Gamma, Opts.MaxPredicateNodes + 1) >
                    Opts.MaxPredicateNodes ||
                !budgetLeft())
              return Reach::Bound;
            // Is this path alive at all?
            ++Stats.SolverChecks;
            SatResult R = S.checkWith(Gamma);
            if (R == SatResult::Unsat)
              continue;
            if (R == SatResult::Unknown)
              SawUnknown = true;
            if (!Sigma[M.Src].insert(Gamma).second)
              continue; // syntactic subsumption
            Next[M.Src].push_back(Gamma);
            AnyLive = true;
          }
        }
      }
      if (K == 0 && AnyLive)
        return Reach::Bound;
      if (K > 0)
        --K;
      Layer = std::move(Next);
    }
    return SawUnknown ? Reach::Bound : Reach::No;
  }

  /// COMPUTEUNDERAPPROXIMATION: forward BFS tagging moves whose path
  /// condition from the initial state is satisfiable.
  std::unordered_set<const Rule *> computeUnderApproximation() {
    struct Config {
      unsigned State;
      TermRef Reg;      ///< register as a term over fresh input vars
      TermRef PathCond; ///< conjunction of guards along the way
    };
    std::unordered_set<const Rule *> Tagged;
    unsigned MaxLayers =
        Opts.ForwardLayers ? Opts.ForwardLayers : W.numStates();

    std::vector<Config> Layer{
        {W.initialState(), W.initialRegisterTerm(), Ctx.trueConst()}};
    std::vector<FinalMove> Fs = finalMovesOf(W);

    for (unsigned Depth = 0; Depth <= MaxLayers && !Layer.empty(); ++Depth) {
      std::vector<Config> Next;
      for (const Config &C : Layer) {
        // Finalizer branches reachable here?
        Subst RegSub;
        RegSub.set(W.regVar(), C.Reg);
        for (const FinalMove &F : Fs) {
          if (F.Src != C.State || Tagged.count(F.Leaf))
            continue;
          if (!forwardBudgetLeft())
            return Tagged;
          TermRef Cond =
              Ctx.mkAnd(C.PathCond, substitute(Ctx, F.Guard, RegSub));
          if (!Cond->isFalse() && provenSat(Cond))
            Tagged.insert(F.Leaf);
        }
        if (Depth == MaxLayers)
          continue;
        std::vector<Move> Ms;
        appendMovesOf(W, C.State, Ms);
        for (const Move &M : Ms) {
          if (!forwardBudgetLeft())
            return Tagged;
          TermRef Fresh = Ctx.freshVar("u", W.inputType());
          Subst Step;
          Step.set(W.inputVar(), Fresh);
          Step.set(W.regVar(), C.Reg);
          TermRef Guard = substitute(Ctx, M.Guard, Step);
          TermRef Cond = Ctx.mkAnd(C.PathCond, Guard);
          if (Cond->isFalse() || !provenSat(Cond))
            continue;
          if (Tagged.insert(M.Leaf).second)
            ++Stats.UnderApproxHits;
          if (Next.size() < Opts.ForwardWidth)
            Next.push_back(
                {M.Dst, substitute(Ctx, M.Update, Step), Cond});
        }
      }
      Layer = std::move(Next);
    }
    return Tagged;
  }
};

} // namespace

Bst efc::eliminateUnreachableBranches(const Bst &A, Solver &S,
                                      const RbbeOptions &Opts,
                                      RbbeStats *Stats) {
  Stopwatch Timer;
  trace::Span Sp("rbbe");
  RbbeStats Local;
  RbbeStats &St = Stats ? *Stats : Local;
  int64_t SavedBudget = S.conflictBudget();
  S.setConflictBudget(Opts.ConflictBudget);
  Eliminator E(A, S, Opts, St);
  Bst Result = E.run();
  S.setConflictBudget(SavedBudget);
  St.Seconds = Timer.seconds();

  namespace mx = metrics;
  static mx::Counter &Runs = mx::Registry::instance().counter(
      "efc_rbbe_runs_total", "eliminateUnreachableBranches() invocations");
  static mx::Counter &Removed = mx::Registry::instance().counter(
      "efc_rbbe_branches_removed_total", "Unreachable branches eliminated");
  static mx::Counter &StatesRm = mx::Registry::instance().counter(
      "efc_rbbe_states_removed_total", "States removed as unreachable");
  static mx::Counter &Reach = mx::Registry::instance().counter(
      "efc_rbbe_reach_calls_total", "Reachability queries issued");
  static mx::Counter &Under = mx::Registry::instance().counter(
      "efc_rbbe_underapprox_hits_total",
      "Leaves proven reachable by the forward under-approximation");
  static mx::DoubleCounter &Secs = mx::Registry::instance().dcounter(
      "efc_rbbe_seconds_total",
      "Wall time spent in eliminateUnreachableBranches()");
  Runs.inc();
  Removed.inc(St.BranchesRemoved + St.FinalBranchesRemoved);
  StatesRm.inc(St.StatesRemoved);
  Reach.inc(St.ReachCalls);
  Under.inc(St.UnderApproxHits);
  Secs.add(St.Seconds);

  Sp.note("branches_removed",
          (uint64_t)(St.BranchesRemoved + St.FinalBranchesRemoved));
  Sp.note("states_removed", (uint64_t)St.StatesRemoved);
  Sp.note("solver_checks", (uint64_t)St.SolverChecks);
  return Result;
}
