//===- vm/Pipeline.h - Staged pipeline execution strategies -----*- C++ -*-===//
///
/// \file
/// The two unfused pipeline execution strategies measured in the paper's
/// evaluation, built over CompiledTransducer:
///
///  * Pull ("LINQ"): each stage is a virtual enumerator pulling from its
///    upstream through a per-stage buffer, modelling IEnumerable<T>.
///  * Push ("Method call"): each element is pushed through the stages by
///    direct per-element calls, modelling the method-call composition.
///
/// The fused variant is simply CompiledTransducer::run on the fused BST.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_VM_PIPELINE_H
#define EFC_VM_PIPELINE_H

#include "vm/Vm.h"

#include <memory>
#include <optional>

namespace efc {

/// Pull-based enumerator interface ("IEnumerable").
class Enumerator {
public:
  virtual ~Enumerator() = default;
  /// Produces the next element; false at end of stream.
  virtual bool next(uint64_t &V) = 0;
  /// True when the stream ended because a stage rejected its input.
  virtual bool failed() const = 0;
};

/// Runs the pipeline in pull style; std::nullopt when any stage rejects.
std::optional<std::vector<uint64_t>>
runPullPipeline(const std::vector<const CompiledTransducer *> &Stages,
                std::span<const uint64_t> In);

/// Runs the pipeline in push style; std::nullopt when any stage rejects.
std::optional<std::vector<uint64_t>>
runPushPipeline(const std::vector<const CompiledTransducer *> &Stages,
                std::span<const uint64_t> In);

/// Reusable push-pipeline (keeps cursors/buffers across runs for
/// benchmarking).
class PushPipeline {
public:
  explicit PushPipeline(std::vector<const CompiledTransducer *> Stages);

  bool run(std::span<const uint64_t> In, std::vector<uint64_t> &Out);

private:
  std::vector<const CompiledTransducer *> Stages;
  std::vector<CompiledTransducer::Cursor> Cursors;
  std::vector<std::vector<uint64_t>> Scratch;

  bool push(size_t Stage, uint64_t V, std::vector<uint64_t> &Out);
  bool flush(size_t Stage, std::vector<uint64_t> &Out);
};

} // namespace efc

#endif // EFC_VM_PIPELINE_H
