//===- vm/FastPath.cpp - Byte-class table construction and driver ---------===//

#include "vm/FastPath.h"

#include "support/EnvParse.h"
#include "support/Metrics.h"

#include "term/Eval.h"
#include "vm/Simd.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_map>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

using namespace efc;

namespace {

/// True when \p T references no variable other than \p InputVar.  Terms
/// are interned, so sharing makes memoization effective on the large fused
/// rule trees.
bool inputOnly(TermRef T, TermRef InputVar,
               std::unordered_map<TermRef, bool> &Memo) {
  if (T->isVar())
    return T == InputVar;
  if (T->numOperands() == 0)
    return true;
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  bool R = true;
  for (TermRef O : T->operands())
    if (!inputOnly(O, InputVar, Memo)) {
      R = false;
      break;
    }
  Memo.emplace(T, R);
  return R;
}

bool guardsInputOnly(const Rule *R, TermRef InputVar,
                     std::unordered_map<TermRef, bool> &Memo) {
  while (R->isIte()) {
    if (!inputOnly(R->cond(), InputVar, Memo))
      return false;
    if (!guardsInputOnly(R->thenRule().get(), InputVar, Memo))
      return false;
    R = R->elseRule().get();
  }
  return true;
}

/// Same flattening order as the VM compiler's slot layout (Vm.cpp).
void collectRegLeaves(TermContext &Ctx, TermRef T, std::vector<TermRef> &Out) {
  const Type *Ty = T->type();
  switch (Ty->kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(T);
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (unsigned I = 0; I < Ty->arity(); ++I)
      collectRegLeaves(Ctx, Ctx.mkTupleGet(T, I), Out);
    return;
  }
}

Value inputValueAt(const Type *ITy, unsigned W, unsigned B) {
  return ITy->isBool() ? Value::boolV(B != 0) : Value::bv(W, B);
}

} // namespace

FastPathOptions FastPathOptions::fromEnv() {
  FastPathOptions O;
  O.RunAccel = env::flag("EFC_FASTPATH_ACCEL", O.RunAccel);
  O.WideTables = env::flag("EFC_FASTPATH_WIDE", O.WideTables);
  O.SpecAccel = env::flag("EFC_FASTPATH_SPEC", O.SpecAccel);
  return O;
}

NibbleTable efc::tryEncodeNibbleTable(const std::array<uint64_t, 4> &Mask) {
  NibbleTable NT;
  // Row r(h) = the set of low nibbles present under high nibble h.  Each
  // distinct nonzero row gets one bucket bit; 16 rows but only 8 bucket
  // bits, so > 8 distinct rows is inexpressible in one shuffle pair.
  uint16_t Rows[16];
  for (unsigned H = 0; H < 16; ++H) {
    uint16_t R = 0;
    for (unsigned L = 0; L < 16; ++L) {
      unsigned B = H * 16 + L;
      if ((Mask[B >> 6] >> (B & 63)) & 1)
        R |= uint16_t(1u << L);
    }
    Rows[H] = R;
  }
  uint16_t Distinct[8];
  unsigned NumBuckets = 0;
  for (unsigned H = 0; H < 16; ++H) {
    if (!Rows[H])
      continue; // empty row: Hi stays 0, no byte under h matches
    unsigned Bkt = 0;
    while (Bkt < NumBuckets && Distinct[Bkt] != Rows[H])
      ++Bkt;
    if (Bkt == NumBuckets) {
      if (NumBuckets == 8)
        return NT; // needs a 9th bucket: not encodable
      Distinct[NumBuckets++] = Rows[H];
    }
    NT.Hi[H] = uint8_t(1u << Bkt);
  }
  for (unsigned Bkt = 0; Bkt < NumBuckets; ++Bkt)
    for (unsigned L = 0; L < 16; ++L)
      if ((Distinct[Bkt] >> L) & 1)
        NT.Lo[L] |= uint8_t(1u << Bkt);
  NT.Valid = true;
  return NT;
}

ByteClassTable efc::classifyDeltaByteClasses(const Bst &A, unsigned Q) {
  ByteClassTable R;
  const Type *ITy = A.inputType();
  if (!ITy->isScalar())
    return R;
  unsigned W = ITy->isBool() ? 1 : ITy->width();
  TermRef X = A.inputVar();
  const Rule *Root = A.delta(Q).get();

  std::unordered_map<TermRef, bool> Memo;
  if (!guardsInputOnly(Root, X, Memo))
    return R;

  R.Eligible = true;
  R.ValidBytes = W >= 8 ? 256u : (1u << W);
  std::unordered_map<const Rule *, uint16_t> Ids;
  for (unsigned B = 0; B < R.ValidBytes; ++B) {
    Env E;
    E.bind(X, inputValueAt(ITy, W, B));
    const Rule *L = Root;
    while (L->isIte())
      L = evalTerm(L->cond(), E).boolValue() ? L->thenRule().get()
                                             : L->elseRule().get();
    auto [It, New] = Ids.emplace(L, uint16_t(R.Leaves.size()));
    if (New)
      R.Leaves.push_back(L);
    R.Class[B] = It->second;
  }
  // Padding entries (only when W < 8) get the sentinel class; the VM
  // dispatches them to bytecode and the codegen switch falls through to
  // the original guard chain.
  for (unsigned B = R.ValidBytes; B < 256; ++B)
    R.Class[B] = uint16_t(R.Leaves.size());
  return R;
}

std::vector<RunKernel> efc::classifyRunKernels(const Bst &A, unsigned Q,
                                               const ByteClassTable &C) {
  std::vector<RunKernel> Runs;
  if (!C.Eligible)
    return Runs;
  TermContext &Ctx = A.context();
  TermRef X = A.inputVar();
  std::vector<TermRef> OldLeaves;
  collectRegLeaves(Ctx, A.regVar(), OldLeaves);

  // One kernel per distinct (kind, emits, writes) effect; classes sharing
  // an effect share the kernel's byte mask.
  std::map<std::string, unsigned> Ids;
  std::vector<TermRef> NewLeaves;
  for (uint16_t K = 0; K < C.numClasses(); ++K) {
    const Rule *L = C.Leaves[K];
    if (L->isUndef() || L->target() != Q)
      continue;
    // Every changed register leaf must be a constant term: constant
    // writes repeated over a span are idempotent, so the kernel applies
    // them once.  Leaves are compared syntactically (interned terms, so
    // pointer equality is exact).
    NewLeaves.clear();
    collectRegLeaves(Ctx, L->update(), NewLeaves);
    std::vector<std::pair<uint16_t, uint64_t>> Writes;
    bool Ok = NewLeaves.size() == OldLeaves.size();
    for (unsigned I = 0; Ok && I < OldLeaves.size(); ++I) {
      if (NewLeaves[I] == OldLeaves[I])
        continue;
      if (NewLeaves[I]->isConst())
        Writes.push_back({uint16_t(I), NewLeaves[I]->constBits()});
      else
        Ok = false;
    }
    if (!Ok)
      continue;

    RunKernel::Kind Kind;
    std::vector<uint64_t> Emits;
    if (L->outputs().empty()) {
      Kind = RunKernel::Kind::Skip;
    } else if (L->outputs().size() == 1 && L->outputs()[0] == X) {
      Kind = RunKernel::Kind::Copy;
    } else {
      Kind = RunKernel::Kind::ConstAppend;
      bool AllConst = true;
      for (TermRef O : L->outputs()) {
        if (!O->isConst()) {
          AllConst = false;
          break;
        }
        Emits.push_back(O->constBits());
      }
      if (!AllConst)
        continue;
    }

    std::string Key(1, char(Kind));
    for (uint64_t V : Emits)
      Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
    Key.push_back('|');
    for (auto &[Slot, V] : Writes) {
      Key.append(reinterpret_cast<const char *>(&Slot), sizeof(Slot));
      Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
    }
    auto It = Ids.find(Key);
    if (It == Ids.end()) {
      if (Runs.size() >= FastPathPlan::NoRun)
        continue;
      It = Ids.emplace(Key, unsigned(Runs.size())).first;
      RunKernel RK;
      RK.K = Kind;
      RK.Emits = std::move(Emits);
      RK.Writes = std::move(Writes);
      Runs.push_back(std::move(RK));
    }
    RunKernel &RK = Runs[It->second];
    RK.Classes.push_back(K);
    for (unsigned B = 0; B < C.ValidBytes; ++B)
      if (C.Class[B] == K)
        RK.Mask[B >> 6] |= uint64_t(1) << (B & 63);
  }

  for (RunKernel &RK : Runs) {
    unsigned N = 0;
    for (uint64_t Wd : RK.Mask)
      N += unsigned(__builtin_popcountll(Wd));
    RK.Bytes = N;
    // memchr-style specialization: every in-range byte loops except one.
    if (C.ValidBytes == 256 && N == 255)
      for (unsigned B = 0; B < 256; ++B)
        if (!RK.covers(B)) {
          RK.SingleEscape = int(B);
          break;
        }
    // Shuffle-table encoding for the AVX2/AVX-512 block scanners.  Part
    // of the kernel (and therefore of the codegen classifier hash): the
    // VM and generated C++ must classify with the same tables.
    RK.NT = tryEncodeNibbleTable(RK.Mask);
  }
  return Runs;
}

//===----------------------------------------------------------------------===//
// SIMD scan kernels.  One function pointer per ISA level, selected once
// by cpuid (simd::activeLevel); EFC_SIMD forces a lower level.  Every
// vectorized loop bails out of the vector stride on the first block
// containing an escape (or an element >= 256) and lets the narrower
// kernel below it pin down the exact span end, so all levels return
// identical indices and ASan-exact buffers see no overread beyond the
// checked stride.
//===----------------------------------------------------------------------===//

namespace {

/// Scalar SWAR: four elements per iteration, one range test on the OR.
size_t scanMaskScalar(const uint64_t *In, size_t I, size_t N,
                      const RunKernel &RK) {
  const std::array<uint64_t, 4> &M = RK.Mask;
  if (RK.SingleEscape >= 0) {
    const uint64_t Esc = uint64_t(RK.SingleEscape);
    while (I + 4 <= N) {
      uint64_t A = In[I], B = In[I + 1], C = In[I + 2], D = In[I + 3];
      if (((A | B | C | D) >> 8) || A == Esc || B == Esc || C == Esc ||
          D == Esc)
        break;
      I += 4;
    }
    while (I < N && In[I] < 256 && In[I] != Esc)
      ++I;
    return I;
  }
  while (I + 4 <= N) {
    uint64_t A = In[I], B = In[I + 1], C = In[I + 2], D = In[I + 3];
    if ((A | B | C | D) >> 8)
      break;
    if (!((M[A >> 6] >> (A & 63)) & (M[B >> 6] >> (B & 63)) &
          (M[C >> 6] >> (C & 63)) & (M[D >> 6] >> (D & 63)) & 1))
      break;
    I += 4;
  }
  while (I < N && In[I] < 256 && ((M[In[I] >> 6] >> (In[I] & 63)) & 1))
    ++I;
  return I;
}

#if defined(__x86_64__)

/// SSE2 (x86-64 baseline): 8 elements per iteration for single-escape
/// masks — range-check via the OR of the high 56 bits, then 64-bit
/// equality against the escape (both 32-bit lanes must match, hence the
/// AND with the lane-swapped compare).  Multi-class masks stay on SWAR
/// (pshufb needs SSSE3).
size_t scanMaskSse2(const uint64_t *In, size_t I, size_t N,
                    const RunKernel &RK) {
  if (RK.SingleEscape >= 0) {
    const uint64_t Esc = uint64_t(RK.SingleEscape);
    const __m128i VEsc = _mm_set1_epi64x(int64_t(Esc));
    const __m128i Zero = _mm_setzero_si128();
    while (I + 8 <= N) {
      __m128i V0 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(In + I));
      __m128i V1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i *>(In + I + 2));
      __m128i V2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i *>(In + I + 4));
      __m128i V3 =
          _mm_loadu_si128(reinterpret_cast<const __m128i *>(In + I + 6));
      __m128i Hi = _mm_srli_epi64(
          _mm_or_si128(_mm_or_si128(V0, V1), _mm_or_si128(V2, V3)), 8);
      if (_mm_movemask_epi8(_mm_cmpeq_epi8(Hi, Zero)) != 0xFFFF)
        break;
      __m128i E0 = _mm_cmpeq_epi32(V0, VEsc), E1 = _mm_cmpeq_epi32(V1, VEsc);
      __m128i E2 = _mm_cmpeq_epi32(V2, VEsc), E3 = _mm_cmpeq_epi32(V3, VEsc);
      __m128i AnyEq = _mm_or_si128(
          _mm_or_si128(_mm_and_si128(E0, _mm_shuffle_epi32(E0, 0xB1)),
                       _mm_and_si128(E1, _mm_shuffle_epi32(E1, 0xB1))),
          _mm_or_si128(_mm_and_si128(E2, _mm_shuffle_epi32(E2, 0xB1)),
                       _mm_and_si128(E3, _mm_shuffle_epi32(E3, 0xB1))));
      if (_mm_movemask_epi8(AnyEq))
        break;
      I += 8;
    }
  }
  return scanMaskScalar(In, I, N, RK);
}

/// AVX2: 16 elements per iteration through the two-nibble-table shuffle.
/// Four 256-bit loads are range-checked, packed u64 -> u8 (real bytes at
/// even positions, zero padding at odd, lane-interleaved — the order is
/// irrelevant to the all-bytes-pass test), and classified with one
/// pshufb pair: byte in set <=> Lo[b & 15] & Hi[b >> 4] != 0.
__attribute__((target("avx2"))) size_t
scanMaskAvx2(const uint64_t *In, size_t I, size_t N, const RunKernel &RK) {
  if (RK.NT.Valid) {
    const __m256i Lo2 = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(RK.NT.Lo.data())));
    const __m256i Hi2 = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(RK.NT.Hi.data())));
    const __m256i HiBits = _mm256_set1_epi64x(~0xFFll);
    const __m256i Nib = _mm256_set1_epi8(0x0F);
    const __m256i Zero = _mm256_setzero_si256();
    while (I + 16 <= N) {
      __m256i V0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(In + I));
      __m256i V1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(In + I + 4));
      __m256i V2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(In + I + 8));
      __m256i V3 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(In + I + 12));
      __m256i OrAll =
          _mm256_or_si256(_mm256_or_si256(V0, V1), _mm256_or_si256(V2, V3));
      if (!_mm256_testz_si256(OrAll, HiBits))
        break; // some element >= 256
      __m256i P01 = _mm256_packus_epi32(V0, V1);
      __m256i P23 = _mm256_packus_epi32(V2, V3);
      __m256i B = _mm256_packus_epi16(P01, P23);
      __m256i Cls = _mm256_and_si256(
          _mm256_shuffle_epi8(Lo2, _mm256_and_si256(B, Nib)),
          _mm256_shuffle_epi8(Hi2,
                              _mm256_and_si256(_mm256_srli_epi16(B, 4), Nib)));
      unsigned Esc = unsigned(_mm256_movemask_epi8(_mm256_cmpeq_epi8(
          Cls, Zero))); // bit set <=> byte at that position escapes
      if (Esc & 0x55555555u) // real bytes sit at even positions
        break;
      I += 16;
    }
  }
  return scanMaskSse2(In, I, N, RK);
}

/// AVX-512: 32 elements per iteration.  vpmovqb packs each 512-bit load
/// to 8 contiguous bytes (no padding), so one 256-bit shuffle pair
/// classifies 32 real bytes.
__attribute__((target("avx512f,avx512bw,avx512vl,avx2"))) size_t
scanMaskAvx512(const uint64_t *In, size_t I, size_t N, const RunKernel &RK) {
  if (RK.NT.Valid) {
    const __m256i Lo2 = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(RK.NT.Lo.data())));
    const __m256i Hi2 = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(RK.NT.Hi.data())));
    const __m512i HiBits = _mm512_set1_epi64(~0xFFll);
    const __m256i Nib = _mm256_set1_epi8(0x0F);
    const __m256i Zero = _mm256_setzero_si256();
    while (I + 32 <= N) {
      __m512i V0 = _mm512_loadu_si512(In + I);
      __m512i V1 = _mm512_loadu_si512(In + I + 8);
      __m512i V2 = _mm512_loadu_si512(In + I + 16);
      __m512i V3 = _mm512_loadu_si512(In + I + 24);
      __m512i OrAll =
          _mm512_or_si512(_mm512_or_si512(V0, V1), _mm512_or_si512(V2, V3));
      if (_mm512_test_epi64_mask(OrAll, HiBits))
        break; // some element >= 256
      __m128i B0 = _mm512_cvtepi64_epi8(V0);
      __m128i B1 = _mm512_cvtepi64_epi8(V1);
      __m128i B2 = _mm512_cvtepi64_epi8(V2);
      __m128i B3 = _mm512_cvtepi64_epi8(V3);
      __m256i B = _mm256_set_m128i(_mm_unpacklo_epi64(B2, B3),
                                   _mm_unpacklo_epi64(B0, B1));
      __m256i Cls = _mm256_and_si256(
          _mm256_shuffle_epi8(Lo2, _mm256_and_si256(B, Nib)),
          _mm256_shuffle_epi8(Hi2,
                              _mm256_and_si256(_mm256_srli_epi16(B, 4), Nib)));
      if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(Cls, Zero)))
        break;
      I += 32;
    }
  }
  return scanMaskAvx2(In, I, N, RK);
}

#endif // __x86_64__

/// Scalar alternation: legs must strictly interleave M1,M2,M1,...
/// starting on M1 at \p I.
size_t scanAltScalar(const uint64_t *In, size_t I, size_t N,
                     const SpecPair &SP) {
  for (;;) {
    if (I >= N || !SpecPair::maskCovers(SP.M1, In[I]))
      return I;
    ++I;
    if (I >= N || !SpecPair::maskCovers(SP.M2, In[I]))
      return I;
    ++I;
  }
}

#if defined(__x86_64__)

/// AVX2 alternation: classify one packed block against BOTH states'
/// nibble tables, then require leg-1 membership at even element indices
/// and leg-2 at odd.  In the packed (lane-interleaved) byte order the
/// element parity at byte position p is (p >> 1) & 1, so even elements
/// sit at positions p % 4 == 0 (mask 0x11111111) and odd elements at
/// p % 4 == 2 (mask 0x44444444).  The stride (16) is even, so blocks
/// always start on a leg-1 element and the scalar tail does too.
__attribute__((target("avx2"))) size_t
scanAltAvx2(const uint64_t *In, size_t I, size_t N, const SpecPair &SP) {
  if (SP.NT1.Valid && SP.NT2.Valid) {
    const __m256i Lo1 = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(SP.NT1.Lo.data())));
    const __m256i Hi1 = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(SP.NT1.Hi.data())));
    const __m256i Lo2 = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(SP.NT2.Lo.data())));
    const __m256i Hi2 = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(SP.NT2.Hi.data())));
    const __m256i HiBits = _mm256_set1_epi64x(~0xFFll);
    const __m256i Nib = _mm256_set1_epi8(0x0F);
    const __m256i Zero = _mm256_setzero_si256();
    while (I + 16 <= N) {
      __m256i V0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(In + I));
      __m256i V1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(In + I + 4));
      __m256i V2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(In + I + 8));
      __m256i V3 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(In + I + 12));
      __m256i OrAll =
          _mm256_or_si256(_mm256_or_si256(V0, V1), _mm256_or_si256(V2, V3));
      if (!_mm256_testz_si256(OrAll, HiBits))
        break;
      __m256i B = _mm256_packus_epi16(_mm256_packus_epi32(V0, V1),
                                      _mm256_packus_epi32(V2, V3));
      __m256i LoIdx = _mm256_and_si256(B, Nib);
      __m256i HiIdx = _mm256_and_si256(_mm256_srli_epi16(B, 4), Nib);
      __m256i C1 = _mm256_and_si256(_mm256_shuffle_epi8(Lo1, LoIdx),
                                    _mm256_shuffle_epi8(Hi1, HiIdx));
      __m256i C2 = _mm256_and_si256(_mm256_shuffle_epi8(Lo2, LoIdx),
                                    _mm256_shuffle_epi8(Hi2, HiIdx));
      unsigned Fail1 =
          unsigned(_mm256_movemask_epi8(_mm256_cmpeq_epi8(C1, Zero)));
      unsigned Fail2 =
          unsigned(_mm256_movemask_epi8(_mm256_cmpeq_epi8(C2, Zero)));
      if ((Fail1 & 0x11111111u) | (Fail2 & 0x44444444u))
        break;
      I += 16;
    }
  }
  return scanAltScalar(In, I, N, SP);
}

#endif // __x86_64__

using ScanFn = size_t (*)(const uint64_t *, size_t, size_t, const RunKernel &);
using AltFn = size_t (*)(const uint64_t *, size_t, size_t, const SpecPair &);

#if defined(__x86_64__)
constexpr ScanFn ScanKernels[4] = {scanMaskScalar, scanMaskSse2, scanMaskAvx2,
                                   scanMaskAvx512};
constexpr AltFn AltKernels[4] = {scanAltScalar, scanAltScalar, scanAltAvx2,
                                 scanAltAvx2};
#else
constexpr ScanFn ScanKernels[4] = {scanMaskScalar, scanMaskScalar,
                                   scanMaskScalar, scanMaskScalar};
constexpr AltFn AltKernels[4] = {scanAltScalar, scanAltScalar, scanAltScalar,
                                 scanAltScalar};
#endif

} // namespace

size_t efc::scanRunEnd(const uint64_t *In, size_t I, size_t N,
                       const RunKernel &RK) {
  return ScanKernels[int(simd::activeLevel())](In, I, N, RK);
}

size_t efc::scanAlternating(const uint64_t *In, size_t I, size_t N,
                            const SpecPair &SP) {
  return AltKernels[int(simd::activeLevel())](In, I, N, SP);
}

std::string efc::explainFastPath(const Bst &A) {
  std::string S;
  char Buf[192];
  std::snprintf(Buf, sizeof Buf, "simd: detected %s, active %s\n",
                simd::levelName(simd::detectedLevel()),
                simd::levelName(simd::activeLevel()));
  S += Buf;
  const Type *ITy = A.inputType();
  unsigned IW = !ITy->isScalar() ? 0 : ITy->isBool() ? 1 : ITy->width();
  unsigned TableStates = 0, AccelStates = 0;
  for (unsigned Q = 0, N = A.numStates(); Q < N; ++Q) {
    ByteClassTable C = classifyDeltaByteClasses(A, Q);
    if (!C.Eligible) {
      std::snprintf(Buf, sizeof Buf,
                    "state %u: fallback (register-guarded or non-scalar "
                    "input), bytecode only\n",
                    Q);
      S += Buf;
      continue;
    }
    ++TableStates;
    std::vector<RunKernel> Runs = classifyRunKernels(A, Q, C);
    unsigned SelfLoop = 0;
    for (const RunKernel &RK : Runs)
      SelfLoop += unsigned(RK.Classes.size());
    std::snprintf(Buf, sizeof Buf,
                  "state %u: eligible, %u valid bytes, %u classes, "
                  "%u self-loop class%s, %zu run kernel%s\n",
                  Q, C.ValidBytes, C.numClasses(), SelfLoop,
                  SelfLoop == 1 ? "" : "es", Runs.size(),
                  Runs.size() == 1 ? "" : "s");
    S += Buf;
    if (!Runs.empty())
      ++AccelStates;
    for (const RunKernel &RK : Runs) {
      const char *Kind = RK.K == RunKernel::Kind::Skip   ? "skip"
                         : RK.K == RunKernel::Kind::Copy ? "copy"
                                                         : "const-append";
      std::snprintf(Buf, sizeof Buf, "  kernel %s: %u byte%s", Kind, RK.Bytes,
                    RK.Bytes == 1 ? "" : "s");
      S += Buf;
      if (RK.SingleEscape >= 0) {
        std::snprintf(Buf, sizeof Buf, ", single escape 0x%02x",
                      unsigned(RK.SingleEscape));
        S += Buf;
      }
      if (!RK.Emits.empty()) {
        S += ", emits [";
        for (size_t J = 0; J < RK.Emits.size(); ++J) {
          std::snprintf(Buf, sizeof Buf, "%s%llu", J ? " " : "",
                        (unsigned long long)RK.Emits[J]);
          S += Buf;
        }
        S += "]";
      }
      if (!RK.Writes.empty()) {
        S += ", writes {";
        for (size_t J = 0; J < RK.Writes.size(); ++J) {
          std::snprintf(Buf, sizeof Buf, "%sr%u<-%llu", J ? " " : "",
                        unsigned(RK.Writes[J].first),
                        (unsigned long long)RK.Writes[J].second);
          S += Buf;
        }
        S += "}";
      }
      S += ", classes {";
      for (size_t J = 0; J < RK.Classes.size(); ++J) {
        std::snprintf(Buf, sizeof Buf, "%s%u", J ? " " : "",
                      unsigned(RK.Classes[J]));
        S += Buf;
      }
      S += "}\n";
      if (RK.NT.Valid) {
        S += "    nibble lo=[";
        for (unsigned J = 0; J < 16; ++J) {
          std::snprintf(Buf, sizeof Buf, "%s%02x", J ? " " : "", RK.NT.Lo[J]);
          S += Buf;
        }
        S += "] hi=[";
        for (unsigned J = 0; J < 16; ++J) {
          std::snprintf(Buf, sizeof Buf, "%s%02x", J ? " " : "", RK.NT.Hi[J]);
          S += Buf;
        }
        S += "]\n";
      } else {
        S += "    nibble: not encodable (> 8 bucket rows), SWAR fallback\n";
      }
    }
    if (IW > 8 && IW <= 16) {
      std::snprintf(Buf, sizeof Buf,
                    "  wide tier: elements [256, %u) memoized at plan "
                    "build (EFC_FASTPATH_WIDE=0 disables)\n",
                    1u << IW);
      S += Buf;
    }
  }
  // Spec pairs are detected across states on the built plan, not per
  // state on the rule trees — build one to report them.
  if (auto T = CompiledTransducer::compile(A)) {
    FastPathPlan P = FastPathPlan::build(A, *T);
    for (unsigned Q = 0; Q < P.numStates(); ++Q)
      for (const SpecPair &SP : P.stateTable(Q).Specs) {
        std::snprintf(Buf, sizeof Buf,
                      "state %u: spec pair with state %u, %u/%u bytes "
                      "per leg%s\n",
                      Q, SP.Other, SP.Bytes1, SP.Bytes2,
                      SP.NT1.Valid && SP.NT2.Valid ? ", nibble-encoded"
                                                   : "");
        S += Buf;
      }
  }
  std::snprintf(Buf, sizeof Buf,
                "summary: %u/%u states tabulated, %u run-accelerated\n",
                TableStates, A.numStates(), AccelStates);
  S += Buf;
  return S;
}

namespace {

/// Builds the wide-domain table of state \p Q: classifies every element
/// of [0, 2^W) to its leaf via per-guard bitmaps (each distinct guard
/// term is evaluated once per element with the reference evaluator,
/// memoized across the whole domain), then memoizes constant effects
/// into the shared pools.  The driver consults the table for elements
/// in [256, Limit); entries below 256 are kept so the equivalence
/// checker can cross-validate against the byte tables.
void buildWideTable(const Bst &A, const CompiledTransducer &T, unsigned Q,
                    FastPathPlan::StateTable &ST, unsigned W,
                    const std::vector<TermRef> &OldLeaves,
                    std::unordered_map<TermRef, bool> &IOMemo,
                    FastPathPlan::Stats &S) {
  TermContext &Ctx = A.context();
  TermRef X = A.inputVar();
  const Rule *Root = A.delta(Q).get();
  const uint32_t Limit = 1u << W;

  WideTable WT;
  WT.Limit = Limit;
  WT.ClassOf.resize(Limit);

  // Distinct guard terms are shared heavily across the fused rule tree;
  // one bitmap per term makes the per-element walk O(depth) bit tests.
  std::unordered_map<TermRef, std::vector<uint64_t>> CondBits;
  auto condAt = [&](TermRef C, uint32_t B) -> bool {
    auto It = CondBits.find(C);
    if (It == CondBits.end()) {
      std::vector<uint64_t> Bits((Limit + 63) / 64);
      for (uint32_t V = 0; V < Limit; ++V) {
        Env E;
        E.bind(X, Value::bv(W, V));
        if (evalTerm(C, E).boolValue())
          Bits[V >> 6] |= uint64_t(1) << (V & 63);
      }
      It = CondBits.emplace(C, std::move(Bits)).first;
    }
    return (It->second[B >> 6] >> (B & 63)) & 1;
  };

  std::unordered_map<const Rule *, uint16_t> Ids;
  std::vector<const Rule *> Leaves;
  for (uint32_t B = 0; B < Limit; ++B) {
    const Rule *L = Root;
    while (L->isIte())
      L = condAt(L->cond(), B) ? L->thenRule().get() : L->elseRule().get();
    auto [It, New] = Ids.emplace(L, uint16_t(Leaves.size()));
    if (New) {
      if (Leaves.size() >= 0xFFFE)
        return; // class id space exhausted; keep bytecode for wide elements
      Leaves.push_back(L);
    }
    WT.ClassOf[B] = It->second;
  }

  struct MemoInfo {
    std::vector<unsigned> ChangedIdx;
    std::vector<TermRef> NewLeaves;
  };
  std::vector<MemoInfo> MI(Leaves.size());
  bool AnyMemo = false;
  for (size_t K = 0; K < Leaves.size(); ++K) {
    const Rule *L = Leaves[K];
    WideTable::Class C;
    if (L->isUndef()) {
      C.K = WideTable::Class::Kind::Reject;
      ++S.WideRejectClasses;
      WT.Classes.push_back(std::move(C));
      continue;
    }
    MemoInfo &M = MI[K];
    collectRegLeaves(Ctx, L->update(), M.NewLeaves);
    assert(M.NewLeaves.size() == OldLeaves.size());
    for (unsigned I = 0; I < OldLeaves.size(); ++I)
      if (M.NewLeaves[I] != OldLeaves[I])
        M.ChangedIdx.push_back(I);
    bool Foldable = true;
    for (TermRef O : L->outputs())
      if (!inputOnly(O, X, IOMemo)) {
        Foldable = false;
        break;
      }
    if (Foldable)
      for (unsigned I : M.ChangedIdx)
        if (!inputOnly(M.NewLeaves[I], X, IOMemo)) {
          Foldable = false;
          break;
        }
    if (Foldable) {
      C.K = WideTable::Class::Kind::Memo;
      C.Target = L->target();
      AnyMemo = true;
      ++S.WideMemoClasses;
    } else {
      unsigned MaxSlot = 0;
      auto Prog = compileRuleProgram(A, L, /*IsFinalizer=*/false, &MaxSlot);
      if (Prog && MaxSlot + 1 <= T.numSlots()) {
        C.K = WideTable::Class::Kind::Program;
        C.Target = L->target();
        C.Code = std::move(*Prog);
        ++S.WideProgramClasses;
      } // else: defensive Fallback (bytecode per element)
    }
    WT.Classes.push_back(std::move(C));
  }

  if (AnyMemo) {
    WT.EmitOff.resize(Limit + 1);
    WT.WriteOff.resize(Limit + 1);
    const Type *ITy = A.inputType();
    for (uint32_t B = 0; B < Limit; ++B) {
      WT.EmitOff[B] = uint32_t(WT.EmitPool.size());
      WT.WriteOff[B] = uint32_t(WT.WritePool.size());
      uint16_t K = WT.ClassOf[B];
      if (WT.Classes[K].K != WideTable::Class::Kind::Memo)
        continue;
      const Rule *L = Leaves[K];
      Env E;
      E.bind(X, Value::bv(ITy->width(), B));
      for (TermRef O : L->outputs())
        WT.EmitPool.push_back(evalTerm(O, E).bits());
      for (unsigned I : MI[K].ChangedIdx)
        WT.WritePool.push_back(
            {uint16_t(I), evalTerm(MI[K].NewLeaves[I], E).bits()});
      if (B >= 256)
        ++S.WideMemoElements;
    }
    WT.EmitOff[Limit] = uint32_t(WT.EmitPool.size());
    WT.WriteOff[Limit] = uint32_t(WT.WritePool.size());
  }

  WT.Has = true;
  ++S.WideStates;
  ST.Wide = std::move(WT);
}

/// Second pass over a built plan: pair up (Q, P) states whose tables
/// ping-pong through one shared Const/Jump action in each direction,
/// producing SpecPairs for the alternating-span scanner.  For each
/// direction the single action id covering the most bytes wins; bytes
/// already owned by a run kernel are excluded (RunId is checked first by
/// the driver anyway).
void detectSpecPairs(std::vector<FastPathPlan::StateTable> &States,
                     FastPathPlan::Stats &S) {
  using Action = FastPathPlan::Action;
  const unsigned N = unsigned(States.size());
  // bestTo[Q][P] = action id in Q covering the most non-run bytes with
  // Target == P (Const/Jump only), or -1.
  auto bestAction = [&](unsigned Q, unsigned P,
                        std::array<uint64_t, 4> &MaskOut) -> int {
    const FastPathPlan::StateTable &ST = States[Q];
    std::vector<unsigned> Count(ST.Actions.size(), 0);
    for (unsigned B = 0; B < 256; ++B) {
      if (ST.RunId[B] != FastPathPlan::NoRun)
        continue;
      uint16_t A = ST.Dispatch[B];
      const Action &Act = ST.Actions[A];
      if ((Act.K == Action::Kind::Jump || Act.K == Action::Kind::Const) &&
          Act.Target == P)
        ++Count[A];
    }
    int Best = -1;
    unsigned BestN = 0;
    for (unsigned A = 0; A < Count.size(); ++A)
      if (Count[A] > BestN) {
        BestN = Count[A];
        Best = int(A);
      }
    if (Best < 0)
      return -1;
    MaskOut = {};
    for (unsigned B = 0; B < 256; ++B)
      if (ST.RunId[B] == FastPathPlan::NoRun && ST.Dispatch[B] == unsigned(Best))
        MaskOut[B >> 6] |= uint64_t(1) << (B & 63);
    return Best;
  };

  for (unsigned Q = 0; Q < N; ++Q) {
    if (!States[Q].HasTable)
      continue;
    for (unsigned P = Q + 1; P < N; ++P) {
      if (!States[P].HasTable)
        continue;
      if (States[Q].Specs.size() >= FastPathPlan::NoRun ||
          States[P].Specs.size() >= FastPathPlan::NoRun)
        continue;
      std::array<uint64_t, 4> MQ{}, MP{};
      int AQ = bestAction(Q, P, MQ);
      if (AQ < 0)
        continue;
      int AP = bestAction(P, Q, MP);
      if (AP < 0)
        continue;
      const Action &ActQ = States[Q].Actions[AQ];
      const Action &ActP = States[P].Actions[AP];
      auto popcount = [](const std::array<uint64_t, 4> &M) {
        unsigned C = 0;
        for (uint64_t W : M)
          C += unsigned(__builtin_popcountll(W));
        return C;
      };
      // Forward pair (spans starting in Q) and its mirror in P.
      SpecPair F;
      F.Other = P;
      F.M1 = MQ;
      F.M2 = MP;
      F.NT1 = tryEncodeNibbleTable(MQ);
      F.NT2 = tryEncodeNibbleTable(MP);
      F.Emits1 = ActQ.Emits;
      F.Emits2 = ActP.Emits;
      F.Writes1 = ActQ.Writes;
      F.Writes2 = ActP.Writes;
      F.Bytes1 = popcount(MQ);
      F.Bytes2 = popcount(MP);
      SpecPair R;
      R.Other = Q;
      R.M1 = F.M2;
      R.M2 = F.M1;
      R.NT1 = F.NT2;
      R.NT2 = F.NT1;
      R.Emits1 = F.Emits2;
      R.Emits2 = F.Emits1;
      R.Writes1 = F.Writes2;
      R.Writes2 = F.Writes1;
      R.Bytes1 = F.Bytes2;
      R.Bytes2 = F.Bytes1;
      uint8_t FI = uint8_t(States[Q].Specs.size());
      uint8_t RI = uint8_t(States[P].Specs.size());
      for (unsigned B = 0; B < 256; ++B) {
        if (SpecPair::maskCovers(F.M1, B))
          States[Q].SpecId[B] = FI;
        if (SpecPair::maskCovers(R.M1, B))
          States[P].SpecId[B] = RI;
      }
      States[Q].Specs.push_back(std::move(F));
      States[P].Specs.push_back(std::move(R));
      S.SpecPairs += 2;
    }
  }
}

} // namespace

FastPathPlan FastPathPlan::build(const Bst &A, const CompiledTransducer &T,
                                 const FastPathOptions &Opts) {
  FastPathPlan P;
  unsigned N = A.numStates();
  P.States.resize(N);
  // NoRun (0xFF) is the "no owner" sentinel for both per-byte maps, but
  // the arrays zero-initialize — and 0 is a valid kernel/pair index.
  // Fill every state, table-eligible or not, so stale zeros can never
  // alias kernel 0 / pair 0.
  for (StateTable &ST : P.States) {
    ST.RunId.fill(NoRun);
    ST.SpecId.fill(NoRun);
  }

  const Type *ITy = A.inputType();
  if (!ITy->isScalar()) {
    P.S.FallbackStates = N;
    return P;
  }
  unsigned W = ITy->isBool() ? 1 : ITy->width();
  TermRef X = A.inputVar();
  TermContext &Ctx = A.context();

  std::vector<TermRef> OldLeaves;
  collectRegLeaves(Ctx, A.regVar(), OldLeaves);
  std::unordered_map<TermRef, bool> IOMemo;

  for (unsigned Q = 0; Q < N; ++Q) {
    ByteClassTable C = classifyDeltaByteClasses(A, Q);
    if (!C.Eligible) {
      ++P.S.FallbackStates;
      continue;
    }
    StateTable &ST = P.States[Q];
    ST.Actions.emplace_back(); // index 0: the Fallback action
    for (unsigned B = C.ValidBytes; B < 256; ++B)
      ST.Dispatch[B] = 0;

    // Per-class action resolution: Undef -> Reject; leaves whose outputs
    // and changed register updates are input-only fold to per-byte Const
    // (or Jump) actions; anything else gets one straight-line program
    // shared by every byte of the class.
    struct ClassPlan {
      int FixedAction = -1; // Reject / Program / Fallback action id
      bool ConstAble = false;
      std::vector<unsigned> ChangedIdx; // register leaves that change
      std::vector<TermRef> NewLeaves;
    };
    std::vector<ClassPlan> CP(C.numClasses());
    for (unsigned K = 0; K < C.numClasses(); ++K) {
      const Rule *L = C.Leaves[K];
      ClassPlan &Plan = CP[K];
      if (L->isUndef()) {
        Plan.FixedAction = int(ST.Actions.size());
        Action Rej;
        Rej.K = Action::Kind::Reject;
        ST.Actions.push_back(std::move(Rej));
        continue;
      }
      collectRegLeaves(Ctx, L->update(), Plan.NewLeaves);
      assert(Plan.NewLeaves.size() == OldLeaves.size());
      for (unsigned I = 0; I < OldLeaves.size(); ++I)
        if (Plan.NewLeaves[I] != OldLeaves[I])
          Plan.ChangedIdx.push_back(I);

      bool Foldable = true;
      for (TermRef O : L->outputs())
        if (!inputOnly(O, X, IOMemo)) {
          Foldable = false;
          break;
        }
      if (Foldable)
        for (unsigned I : Plan.ChangedIdx)
          if (!inputOnly(Plan.NewLeaves[I], X, IOMemo)) {
            Foldable = false;
            break;
          }
      if (Foldable) {
        Plan.ConstAble = true;
        continue;
      }
      unsigned MaxSlot = 0;
      auto Prog = compileRuleProgram(A, L, /*IsFinalizer=*/false, &MaxSlot);
      if (!Prog || MaxSlot + 1 > T.numSlots()) {
        // Leaf needs more temp slots than the cursor allocates (cannot
        // happen for leaves of this Bst's own rules, but stay defensive):
        // keep those bytes on the bytecode path.
        Plan.FixedAction = 0;
        continue;
      }
      Plan.FixedAction = int(ST.Actions.size());
      Action PA;
      PA.K = Action::Kind::Program;
      // Leaf programs have a statically known successor (their single
      // Next); record it so the parallel planner can enumerate plausible
      // post-boundary states without running the program.
      PA.Target = L->target();
      PA.Code = std::move(*Prog);
      ST.Actions.push_back(std::move(PA));
      ++P.S.ProgramActions;
    }

    // Per-byte dispatch: fold Const/Jump actions and dedup them so runs of
    // equivalent bytes share one action (cache-friendly tables).
    std::map<std::string, uint16_t> ConstIds;
    for (unsigned B = 0; B < C.ValidBytes; ++B) {
      const ClassPlan &Plan = CP[C.Class[B]];
      if (Plan.FixedAction >= 0) {
        ST.Dispatch[B] = uint16_t(Plan.FixedAction);
        continue;
      }
      const Rule *L = C.Leaves[C.Class[B]];
      Env E;
      E.bind(X, inputValueAt(ITy, W, B));
      Action Act;
      Act.Target = L->target();
      for (TermRef O : L->outputs())
        Act.Emits.push_back(evalTerm(O, E).bits());
      for (unsigned I : Plan.ChangedIdx)
        Act.Writes.push_back(
            {uint16_t(I), evalTerm(Plan.NewLeaves[I], E).bits()});
      Act.K = (Act.Emits.empty() && Act.Writes.empty()) ? Action::Kind::Jump
                                                        : Action::Kind::Const;
      std::string Key;
      Key.reserve(16 + 8 * Act.Emits.size() + 10 * Act.Writes.size());
      Key.append(reinterpret_cast<const char *>(&Act.Target),
                 sizeof(Act.Target));
      Key.push_back(char(Act.K));
      for (uint64_t V : Act.Emits)
        Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
      Key.push_back('|');
      for (auto &[Slot, V] : Act.Writes) {
        Key.append(reinterpret_cast<const char *>(&Slot), sizeof(Slot));
        Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
      }
      auto [It, New] = ConstIds.emplace(Key, uint16_t(ST.Actions.size()));
      if (New) {
        if (Act.K == Action::Kind::Jump)
          ++P.S.JumpActions;
        else
          ++P.S.ConstActions;
        ST.Actions.push_back(std::move(Act));
      }
      ST.Dispatch[B] = It->second;
    }
    ST.HasTable = true;
    ++P.S.TableStates;

    // Run acceleration: fold self-loop classes into bulk kernels.  The
    // byte -> kernel map is consulted before Dispatch, so a kernel byte
    // short-circuits per-element dispatch for the whole span.
    if (Opts.RunAccel) {
      ST.Runs = classifyRunKernels(A, Q, C);
      for (unsigned R = 0; R < ST.Runs.size(); ++R)
        for (unsigned B = 0; B < 256; ++B)
          if (ST.Runs[R].covers(B))
            ST.RunId[B] = uint8_t(R);
      if (!ST.Runs.empty())
        ++P.S.AccelStates;
      for (const RunKernel &RK : ST.Runs) {
        P.S.AccelBytes += RK.Bytes;
        if (RK.NT.Valid)
          ++P.S.NibbleKernels;
        switch (RK.K) {
        case RunKernel::Kind::Skip:
          ++P.S.SkipKernels;
          break;
        case RunKernel::Kind::Copy:
          ++P.S.CopyKernels;
          break;
        case RunKernel::Kind::ConstAppend:
          ++P.S.ConstAppendKernels;
          break;
        }
      }
    }

    // Wide-domain tier: elements a byte table cannot reach (UTF-16 and
    // similar 9..16-bit alphabets) get per-element memoized actions.
    if (Opts.WideTables && W > 8 && W <= 16)
      buildWideTable(A, T, Q, ST, W, OldLeaves, IOMemo, P.S);
  }

  if (Opts.SpecAccel)
    detectSpecPairs(P.States, P.S);
  return P;
}

bool FastPathCursor::feed(std::span<const uint64_t> In,
                          std::vector<uint64_t> &Out) {
  // Bulk emit buffer: one reservation per chunk instead of a capacity
  // check per Emit (stages emit at most about one element per input).
  if (Out.capacity() - Out.size() < In.size())
    Out.reserve(Out.size() + In.size() + 16);

  const CompiledTransducer &T = *Inner.T;
  uint64_t *Slots = Inner.Slots.data();
  const unsigned InSlot = T.NumRegSlots;
  unsigned State = Inner.State;
  const FastPathPlan::StateTable *Tables = Plan->States.data();

  for (size_t I = 0, N = In.size(); I < N; ++I) {
    uint64_t X = In[I];
    const FastPathPlan::StateTable &ST = Tables[State];
    if (ST.HasTable && X >= 256 && ST.Wide.Has && X < ST.Wide.Limit) {
      // Wide-domain tier: the element is beyond the byte tables but
      // inside the 2^W domain, so its action was memoized at plan build.
      const WideTable &WT = ST.Wide;
      const WideTable::Class &WC = WT.Classes[WT.ClassOf[X]];
      switch (WC.K) {
      case WideTable::Class::Kind::Memo: {
        uint32_t E0 = WT.EmitOff[X];
        Out.insert(Out.end(), WT.EmitPool.begin() + E0,
                   WT.EmitPool.begin() + WT.EmitOff[X + 1]);
        for (uint32_t J = WT.WriteOff[X], JE = WT.WriteOff[X + 1]; J < JE; ++J)
          Slots[WT.WritePool[J].first] = WT.WritePool[J].second;
        State = WC.Target;
        ++RC.WideElements;
        continue;
      }
      case WideTable::Class::Kind::Program:
        Slots[InSlot] = X;
        Inner.State = State;
        if (!Inner.exec(WC.Code, Out))
          return false;
        State = Inner.State;
        ++RC.WideElements;
        continue;
      case WideTable::Class::Kind::Reject:
        Inner.State = State;
        return false;
      case WideTable::Class::Kind::Fallback:
        break; // defensive: per-element bytecode below
      }
    } else if (ST.HasTable && X < 256) {
      if (uint8_t R = ST.RunId[X]; R != FastPathPlan::NoRun) {
        // Run kernel: consume the whole span [I, End) in one step.  The
        // kernel self-loops, so State and registers are untouched and a
        // run cut short by the chunk boundary resumes on the next feed.
        const RunKernel &RK = ST.Runs[R];
        size_t End = scanRunEnd(In.data(), I + 1, N, RK);
        switch (RK.K) {
        case RunKernel::Kind::Skip:
          break;
        case RunKernel::Kind::Copy:
          Out.insert(Out.end(), In.data() + I, In.data() + End);
          break;
        case RunKernel::Kind::ConstAppend:
          if (RK.Emits.size() == 1)
            Out.insert(Out.end(), End - I, RK.Emits[0]);
          else
            for (size_t J = I; J < End; ++J)
              Out.insert(Out.end(), RK.Emits.begin(), RK.Emits.end());
          break;
        }
        for (auto [Slot, V] : RK.Writes)
          Slots[Slot] = V;
        ++RC.Runs;
        RC.RunElements += End - I;
        I = End - 1;
        continue;
      }
      if (uint8_t Sp = ST.SpecId[X]; Sp != FastPathPlan::NoRun) {
        // Two-state speculation: probe for an alternating span through
        // the partner state.  Both legs are single shared Const/Jump
        // actions, so a confirmed span bulk-applies both legs' constant
        // effects; a failed probe (< 4 elements) costs two mask tests
        // and falls through to ordinary dispatch of this element.
        const SpecPair &SP = ST.Specs[Sp];
        size_t End = scanAlternating(In.data(), I, N, SP);
        size_t K = End - I;
        if (K >= 4) {
          for (size_t J = 0; J + 1 < K; J += 2) {
            Out.insert(Out.end(), SP.Emits1.begin(), SP.Emits1.end());
            Out.insert(Out.end(), SP.Emits2.begin(), SP.Emits2.end());
          }
          if (K & 1) {
            Out.insert(Out.end(), SP.Emits1.begin(), SP.Emits1.end());
            // Sequential write order ends ...W2, W1: the span's last
            // element ran leg 1.
            for (auto [Slot, V] : SP.Writes2)
              Slots[Slot] = V;
            for (auto [Slot, V] : SP.Writes1)
              Slots[Slot] = V;
            State = SP.Other;
          } else {
            for (auto [Slot, V] : SP.Writes1)
              Slots[Slot] = V;
            for (auto [Slot, V] : SP.Writes2)
              Slots[Slot] = V;
            // Even-length span: back in this state.
          }
          ++RC.SpecRuns;
          RC.SpecElements += K;
          I = End - 1;
          continue;
        }
      }
      const FastPathPlan::Action &A = ST.Actions[ST.Dispatch[X]];
      switch (A.K) {
      case FastPathPlan::Action::Kind::Jump:
        State = A.Target;
        continue;
      case FastPathPlan::Action::Kind::Const:
        Out.insert(Out.end(), A.Emits.begin(), A.Emits.end());
        for (auto [Slot, V] : A.Writes)
          Slots[Slot] = V;
        State = A.Target;
        continue;
      case FastPathPlan::Action::Kind::Reject:
        Inner.State = State;
        return false;
      case FastPathPlan::Action::Kind::Program:
        Slots[InSlot] = X;
        Inner.State = State;
        if (!Inner.exec(A.Code, Out))
          return false;
        State = Inner.State;
        continue;
      case FastPathPlan::Action::Kind::Fallback:
        break;
      }
    }
    // Mixed-mode fallback: out-of-range element or bytecode-only state.
    Slots[InSlot] = X;
    Inner.State = State;
    if (!Inner.exec(T.Delta[State], Out))
      return false;
    State = Inner.State;
  }
  Inner.State = State;
  return true;
}

std::optional<std::vector<uint64_t>>
efc::runFastPath(const FastPathPlan &P, const CompiledTransducer &T,
                 std::span<const uint64_t> In) {
  FastPathCursor C(P, T);
  std::vector<uint64_t> Out;
  bool Ok = C.feed(In, Out) && C.finish(Out);
  // One registry fold per run, not per span: the kernel loop stays free
  // of shared-state traffic.
  static metrics::Counter &Runs = metrics::Registry::instance().counter(
      "efc_fastpath_runs_total", "Bulk spans driven through run kernels");
  static metrics::Counter &Elems = metrics::Registry::instance().counter(
      "efc_fastpath_run_elements_total", "Elements consumed by run kernels");
  static metrics::Counter &Wide = metrics::Registry::instance().counter(
      "efc_fastpath_wide_elements_total",
      "Elements resolved through wide-domain memo tables");
  static metrics::Counter &SpecRuns = metrics::Registry::instance().counter(
      "efc_fastpath_spec_runs_total",
      "Alternating spans taken by two-state speculation");
  static metrics::Counter &SpecElems = metrics::Registry::instance().counter(
      "efc_fastpath_spec_elements_total",
      "Elements consumed by two-state speculation");
  Runs.inc(C.runCounters().Runs);
  Elems.inc(C.runCounters().RunElements);
  Wide.inc(C.runCounters().WideElements);
  SpecRuns.inc(C.runCounters().SpecRuns);
  SpecElems.inc(C.runCounters().SpecElements);
  if (!Ok)
    return std::nullopt;
  return Out;
}
