//===- vm/FastPath.cpp - Byte-class table construction and driver ---------===//

#include "vm/FastPath.h"

#include "term/Eval.h"

#include <map>
#include <unordered_map>

using namespace efc;

namespace {

/// True when \p T references no variable other than \p InputVar.  Terms
/// are interned, so sharing makes memoization effective on the large fused
/// rule trees.
bool inputOnly(TermRef T, TermRef InputVar,
               std::unordered_map<TermRef, bool> &Memo) {
  if (T->isVar())
    return T == InputVar;
  if (T->numOperands() == 0)
    return true;
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  bool R = true;
  for (TermRef O : T->operands())
    if (!inputOnly(O, InputVar, Memo)) {
      R = false;
      break;
    }
  Memo.emplace(T, R);
  return R;
}

bool guardsInputOnly(const Rule *R, TermRef InputVar,
                     std::unordered_map<TermRef, bool> &Memo) {
  while (R->isIte()) {
    if (!inputOnly(R->cond(), InputVar, Memo))
      return false;
    if (!guardsInputOnly(R->thenRule().get(), InputVar, Memo))
      return false;
    R = R->elseRule().get();
  }
  return true;
}

/// Same flattening order as the VM compiler's slot layout (Vm.cpp).
void collectRegLeaves(TermContext &Ctx, TermRef T, std::vector<TermRef> &Out) {
  const Type *Ty = T->type();
  switch (Ty->kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(T);
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (unsigned I = 0; I < Ty->arity(); ++I)
      collectRegLeaves(Ctx, Ctx.mkTupleGet(T, I), Out);
    return;
  }
}

Value inputValueAt(const Type *ITy, unsigned W, unsigned B) {
  return ITy->isBool() ? Value::boolV(B != 0) : Value::bv(W, B);
}

} // namespace

ByteClassTable efc::classifyDeltaByteClasses(const Bst &A, unsigned Q) {
  ByteClassTable R;
  const Type *ITy = A.inputType();
  if (!ITy->isScalar())
    return R;
  unsigned W = ITy->isBool() ? 1 : ITy->width();
  TermRef X = A.inputVar();
  const Rule *Root = A.delta(Q).get();

  std::unordered_map<TermRef, bool> Memo;
  if (!guardsInputOnly(Root, X, Memo))
    return R;

  R.Eligible = true;
  R.ValidBytes = W >= 8 ? 256u : (1u << W);
  std::unordered_map<const Rule *, uint16_t> Ids;
  for (unsigned B = 0; B < R.ValidBytes; ++B) {
    Env E;
    E.bind(X, inputValueAt(ITy, W, B));
    const Rule *L = Root;
    while (L->isIte())
      L = evalTerm(L->cond(), E).boolValue() ? L->thenRule().get()
                                             : L->elseRule().get();
    auto [It, New] = Ids.emplace(L, uint16_t(R.Leaves.size()));
    if (New)
      R.Leaves.push_back(L);
    R.Class[B] = It->second;
  }
  // Padding entries (only when W < 8) get the sentinel class; the VM
  // dispatches them to bytecode and the codegen switch falls through to
  // the original guard chain.
  for (unsigned B = R.ValidBytes; B < 256; ++B)
    R.Class[B] = uint16_t(R.Leaves.size());
  return R;
}

FastPathPlan FastPathPlan::build(const Bst &A, const CompiledTransducer &T) {
  FastPathPlan P;
  unsigned N = A.numStates();
  P.States.resize(N);

  const Type *ITy = A.inputType();
  if (!ITy->isScalar()) {
    P.S.FallbackStates = N;
    return P;
  }
  unsigned W = ITy->isBool() ? 1 : ITy->width();
  TermRef X = A.inputVar();
  TermContext &Ctx = A.context();

  std::vector<TermRef> OldLeaves;
  collectRegLeaves(Ctx, A.regVar(), OldLeaves);
  std::unordered_map<TermRef, bool> IOMemo;

  for (unsigned Q = 0; Q < N; ++Q) {
    ByteClassTable C = classifyDeltaByteClasses(A, Q);
    if (!C.Eligible) {
      ++P.S.FallbackStates;
      continue;
    }
    StateTable &ST = P.States[Q];
    ST.Actions.emplace_back(); // index 0: the Fallback action
    for (unsigned B = C.ValidBytes; B < 256; ++B)
      ST.Dispatch[B] = 0;

    // Per-class action resolution: Undef -> Reject; leaves whose outputs
    // and changed register updates are input-only fold to per-byte Const
    // (or Jump) actions; anything else gets one straight-line program
    // shared by every byte of the class.
    struct ClassPlan {
      int FixedAction = -1; // Reject / Program / Fallback action id
      bool ConstAble = false;
      std::vector<unsigned> ChangedIdx; // register leaves that change
      std::vector<TermRef> NewLeaves;
    };
    std::vector<ClassPlan> CP(C.numClasses());
    for (unsigned K = 0; K < C.numClasses(); ++K) {
      const Rule *L = C.Leaves[K];
      ClassPlan &Plan = CP[K];
      if (L->isUndef()) {
        Plan.FixedAction = int(ST.Actions.size());
        Action Rej;
        Rej.K = Action::Kind::Reject;
        ST.Actions.push_back(std::move(Rej));
        continue;
      }
      collectRegLeaves(Ctx, L->update(), Plan.NewLeaves);
      assert(Plan.NewLeaves.size() == OldLeaves.size());
      for (unsigned I = 0; I < OldLeaves.size(); ++I)
        if (Plan.NewLeaves[I] != OldLeaves[I])
          Plan.ChangedIdx.push_back(I);

      bool Foldable = true;
      for (TermRef O : L->outputs())
        if (!inputOnly(O, X, IOMemo)) {
          Foldable = false;
          break;
        }
      if (Foldable)
        for (unsigned I : Plan.ChangedIdx)
          if (!inputOnly(Plan.NewLeaves[I], X, IOMemo)) {
            Foldable = false;
            break;
          }
      if (Foldable) {
        Plan.ConstAble = true;
        continue;
      }
      unsigned MaxSlot = 0;
      auto Prog = compileRuleProgram(A, L, /*IsFinalizer=*/false, &MaxSlot);
      if (!Prog || MaxSlot + 1 > T.numSlots()) {
        // Leaf needs more temp slots than the cursor allocates (cannot
        // happen for leaves of this Bst's own rules, but stay defensive):
        // keep those bytes on the bytecode path.
        Plan.FixedAction = 0;
        continue;
      }
      Plan.FixedAction = int(ST.Actions.size());
      Action PA;
      PA.K = Action::Kind::Program;
      PA.Code = std::move(*Prog);
      ST.Actions.push_back(std::move(PA));
      ++P.S.ProgramActions;
    }

    // Per-byte dispatch: fold Const/Jump actions and dedup them so runs of
    // equivalent bytes share one action (cache-friendly tables).
    std::map<std::string, uint16_t> ConstIds;
    for (unsigned B = 0; B < C.ValidBytes; ++B) {
      const ClassPlan &Plan = CP[C.Class[B]];
      if (Plan.FixedAction >= 0) {
        ST.Dispatch[B] = uint16_t(Plan.FixedAction);
        continue;
      }
      const Rule *L = C.Leaves[C.Class[B]];
      Env E;
      E.bind(X, inputValueAt(ITy, W, B));
      Action Act;
      Act.Target = L->target();
      for (TermRef O : L->outputs())
        Act.Emits.push_back(evalTerm(O, E).bits());
      for (unsigned I : Plan.ChangedIdx)
        Act.Writes.push_back(
            {uint16_t(I), evalTerm(Plan.NewLeaves[I], E).bits()});
      Act.K = (Act.Emits.empty() && Act.Writes.empty()) ? Action::Kind::Jump
                                                        : Action::Kind::Const;
      std::string Key;
      Key.reserve(16 + 8 * Act.Emits.size() + 10 * Act.Writes.size());
      Key.append(reinterpret_cast<const char *>(&Act.Target),
                 sizeof(Act.Target));
      Key.push_back(char(Act.K));
      for (uint64_t V : Act.Emits)
        Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
      Key.push_back('|');
      for (auto &[Slot, V] : Act.Writes) {
        Key.append(reinterpret_cast<const char *>(&Slot), sizeof(Slot));
        Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
      }
      auto [It, New] = ConstIds.emplace(Key, uint16_t(ST.Actions.size()));
      if (New) {
        if (Act.K == Action::Kind::Jump)
          ++P.S.JumpActions;
        else
          ++P.S.ConstActions;
        ST.Actions.push_back(std::move(Act));
      }
      ST.Dispatch[B] = It->second;
    }
    ST.HasTable = true;
    ++P.S.TableStates;
  }
  return P;
}

bool FastPathCursor::feed(std::span<const uint64_t> In,
                          std::vector<uint64_t> &Out) {
  // Bulk emit buffer: one reservation per chunk instead of a capacity
  // check per Emit (stages emit at most about one element per input).
  if (Out.capacity() - Out.size() < In.size())
    Out.reserve(Out.size() + In.size() + 16);

  const CompiledTransducer &T = *Inner.T;
  uint64_t *Slots = Inner.Slots.data();
  const unsigned InSlot = T.NumRegSlots;
  unsigned State = Inner.State;
  const FastPathPlan::StateTable *Tables = Plan->States.data();

  for (size_t I = 0, N = In.size(); I < N; ++I) {
    uint64_t X = In[I];
    const FastPathPlan::StateTable &ST = Tables[State];
    if (ST.HasTable && X < 256) {
      const FastPathPlan::Action &A = ST.Actions[ST.Dispatch[X]];
      switch (A.K) {
      case FastPathPlan::Action::Kind::Jump:
        State = A.Target;
        continue;
      case FastPathPlan::Action::Kind::Const:
        Out.insert(Out.end(), A.Emits.begin(), A.Emits.end());
        for (auto [Slot, V] : A.Writes)
          Slots[Slot] = V;
        State = A.Target;
        continue;
      case FastPathPlan::Action::Kind::Reject:
        Inner.State = State;
        return false;
      case FastPathPlan::Action::Kind::Program:
        Slots[InSlot] = X;
        Inner.State = State;
        if (!Inner.exec(A.Code, Out))
          return false;
        State = Inner.State;
        continue;
      case FastPathPlan::Action::Kind::Fallback:
        break;
      }
    }
    // Mixed-mode fallback: out-of-range element or bytecode-only state.
    Slots[InSlot] = X;
    Inner.State = State;
    if (!Inner.exec(T.Delta[State], Out))
      return false;
    State = Inner.State;
  }
  Inner.State = State;
  return true;
}

std::optional<std::vector<uint64_t>>
efc::runFastPath(const FastPathPlan &P, const CompiledTransducer &T,
                 std::span<const uint64_t> In) {
  FastPathCursor C(P, T);
  std::vector<uint64_t> Out;
  if (!C.feed(In, Out))
    return std::nullopt;
  if (!C.finish(Out))
    return std::nullopt;
  return Out;
}
