//===- vm/FastPath.cpp - Byte-class table construction and driver ---------===//

#include "vm/FastPath.h"

#include "support/Metrics.h"

#include "term/Eval.h"

#include <cstdio>
#include <map>
#include <unordered_map>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

using namespace efc;

namespace {

/// True when \p T references no variable other than \p InputVar.  Terms
/// are interned, so sharing makes memoization effective on the large fused
/// rule trees.
bool inputOnly(TermRef T, TermRef InputVar,
               std::unordered_map<TermRef, bool> &Memo) {
  if (T->isVar())
    return T == InputVar;
  if (T->numOperands() == 0)
    return true;
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  bool R = true;
  for (TermRef O : T->operands())
    if (!inputOnly(O, InputVar, Memo)) {
      R = false;
      break;
    }
  Memo.emplace(T, R);
  return R;
}

bool guardsInputOnly(const Rule *R, TermRef InputVar,
                     std::unordered_map<TermRef, bool> &Memo) {
  while (R->isIte()) {
    if (!inputOnly(R->cond(), InputVar, Memo))
      return false;
    if (!guardsInputOnly(R->thenRule().get(), InputVar, Memo))
      return false;
    R = R->elseRule().get();
  }
  return true;
}

/// Same flattening order as the VM compiler's slot layout (Vm.cpp).
void collectRegLeaves(TermContext &Ctx, TermRef T, std::vector<TermRef> &Out) {
  const Type *Ty = T->type();
  switch (Ty->kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(T);
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (unsigned I = 0; I < Ty->arity(); ++I)
      collectRegLeaves(Ctx, Ctx.mkTupleGet(T, I), Out);
    return;
  }
}

Value inputValueAt(const Type *ITy, unsigned W, unsigned B) {
  return ITy->isBool() ? Value::boolV(B != 0) : Value::bv(W, B);
}

} // namespace

ByteClassTable efc::classifyDeltaByteClasses(const Bst &A, unsigned Q) {
  ByteClassTable R;
  const Type *ITy = A.inputType();
  if (!ITy->isScalar())
    return R;
  unsigned W = ITy->isBool() ? 1 : ITy->width();
  TermRef X = A.inputVar();
  const Rule *Root = A.delta(Q).get();

  std::unordered_map<TermRef, bool> Memo;
  if (!guardsInputOnly(Root, X, Memo))
    return R;

  R.Eligible = true;
  R.ValidBytes = W >= 8 ? 256u : (1u << W);
  std::unordered_map<const Rule *, uint16_t> Ids;
  for (unsigned B = 0; B < R.ValidBytes; ++B) {
    Env E;
    E.bind(X, inputValueAt(ITy, W, B));
    const Rule *L = Root;
    while (L->isIte())
      L = evalTerm(L->cond(), E).boolValue() ? L->thenRule().get()
                                             : L->elseRule().get();
    auto [It, New] = Ids.emplace(L, uint16_t(R.Leaves.size()));
    if (New)
      R.Leaves.push_back(L);
    R.Class[B] = It->second;
  }
  // Padding entries (only when W < 8) get the sentinel class; the VM
  // dispatches them to bytecode and the codegen switch falls through to
  // the original guard chain.
  for (unsigned B = R.ValidBytes; B < 256; ++B)
    R.Class[B] = uint16_t(R.Leaves.size());
  return R;
}

std::vector<RunKernel> efc::classifyRunKernels(const Bst &A, unsigned Q,
                                               const ByteClassTable &C) {
  std::vector<RunKernel> Runs;
  if (!C.Eligible)
    return Runs;
  TermContext &Ctx = A.context();
  TermRef X = A.inputVar();
  std::vector<TermRef> OldLeaves;
  collectRegLeaves(Ctx, A.regVar(), OldLeaves);

  // One kernel per distinct (kind, emits, writes) effect; classes sharing
  // an effect share the kernel's byte mask.
  std::map<std::string, unsigned> Ids;
  std::vector<TermRef> NewLeaves;
  for (uint16_t K = 0; K < C.numClasses(); ++K) {
    const Rule *L = C.Leaves[K];
    if (L->isUndef() || L->target() != Q)
      continue;
    // Every changed register leaf must be a constant term: constant
    // writes repeated over a span are idempotent, so the kernel applies
    // them once.  Leaves are compared syntactically (interned terms, so
    // pointer equality is exact).
    NewLeaves.clear();
    collectRegLeaves(Ctx, L->update(), NewLeaves);
    std::vector<std::pair<uint16_t, uint64_t>> Writes;
    bool Ok = NewLeaves.size() == OldLeaves.size();
    for (unsigned I = 0; Ok && I < OldLeaves.size(); ++I) {
      if (NewLeaves[I] == OldLeaves[I])
        continue;
      if (NewLeaves[I]->isConst())
        Writes.push_back({uint16_t(I), NewLeaves[I]->constBits()});
      else
        Ok = false;
    }
    if (!Ok)
      continue;

    RunKernel::Kind Kind;
    std::vector<uint64_t> Emits;
    if (L->outputs().empty()) {
      Kind = RunKernel::Kind::Skip;
    } else if (L->outputs().size() == 1 && L->outputs()[0] == X) {
      Kind = RunKernel::Kind::Copy;
    } else {
      Kind = RunKernel::Kind::ConstAppend;
      bool AllConst = true;
      for (TermRef O : L->outputs()) {
        if (!O->isConst()) {
          AllConst = false;
          break;
        }
        Emits.push_back(O->constBits());
      }
      if (!AllConst)
        continue;
    }

    std::string Key(1, char(Kind));
    for (uint64_t V : Emits)
      Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
    Key.push_back('|');
    for (auto &[Slot, V] : Writes) {
      Key.append(reinterpret_cast<const char *>(&Slot), sizeof(Slot));
      Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
    }
    auto It = Ids.find(Key);
    if (It == Ids.end()) {
      if (Runs.size() >= FastPathPlan::NoRun)
        continue;
      It = Ids.emplace(Key, unsigned(Runs.size())).first;
      RunKernel RK;
      RK.K = Kind;
      RK.Emits = std::move(Emits);
      RK.Writes = std::move(Writes);
      Runs.push_back(std::move(RK));
    }
    RunKernel &RK = Runs[It->second];
    RK.Classes.push_back(K);
    for (unsigned B = 0; B < C.ValidBytes; ++B)
      if (C.Class[B] == K)
        RK.Mask[B >> 6] |= uint64_t(1) << (B & 63);
  }

  for (RunKernel &RK : Runs) {
    unsigned N = 0;
    for (uint64_t Wd : RK.Mask)
      N += unsigned(__builtin_popcountll(Wd));
    RK.Bytes = N;
    // memchr-style specialization: every in-range byte loops except one.
    if (C.ValidBytes == 256 && N == 255)
      for (unsigned B = 0; B < 256; ++B)
        if (!RK.covers(B)) {
          RK.SingleEscape = int(B);
          break;
        }
  }
  return Runs;
}

size_t efc::scanRunEnd(const uint64_t *In, size_t I, size_t N,
                       const RunKernel &RK) {
  const std::array<uint64_t, 4> &M = RK.Mask;
  if (RK.SingleEscape >= 0) {
    const uint64_t Esc = uint64_t(RK.SingleEscape);
#if defined(__SSE2__)
    // 8 elements per iteration: range-check via the OR of the high 56
    // bits, then 64-bit equality against the escape (both 32-bit lanes
    // must match, hence the AND with the lane-swapped compare).
    const __m128i VEsc = _mm_set1_epi64x(int64_t(Esc));
    const __m128i Zero = _mm_setzero_si128();
    while (I + 8 <= N) {
      __m128i V0 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(In + I));
      __m128i V1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i *>(In + I + 2));
      __m128i V2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i *>(In + I + 4));
      __m128i V3 =
          _mm_loadu_si128(reinterpret_cast<const __m128i *>(In + I + 6));
      __m128i Hi = _mm_srli_epi64(
          _mm_or_si128(_mm_or_si128(V0, V1), _mm_or_si128(V2, V3)), 8);
      if (_mm_movemask_epi8(_mm_cmpeq_epi8(Hi, Zero)) != 0xFFFF)
        break;
      __m128i E0 = _mm_cmpeq_epi32(V0, VEsc), E1 = _mm_cmpeq_epi32(V1, VEsc);
      __m128i E2 = _mm_cmpeq_epi32(V2, VEsc), E3 = _mm_cmpeq_epi32(V3, VEsc);
      __m128i AnyEq = _mm_or_si128(
          _mm_or_si128(_mm_and_si128(E0, _mm_shuffle_epi32(E0, 0xB1)),
                       _mm_and_si128(E1, _mm_shuffle_epi32(E1, 0xB1))),
          _mm_or_si128(_mm_and_si128(E2, _mm_shuffle_epi32(E2, 0xB1)),
                       _mm_and_si128(E3, _mm_shuffle_epi32(E3, 0xB1))));
      if (_mm_movemask_epi8(AnyEq))
        break;
      I += 8;
    }
#endif
    // SWAR: four elements per iteration, one range test on the OR.
    while (I + 4 <= N) {
      uint64_t A = In[I], B = In[I + 1], C = In[I + 2], D = In[I + 3];
      if (((A | B | C | D) >> 8) || A == Esc || B == Esc || C == Esc ||
          D == Esc)
        break;
      I += 4;
    }
    while (I < N && In[I] < 256 && In[I] != Esc)
      ++I;
    return I;
  }
  while (I + 4 <= N) {
    uint64_t A = In[I], B = In[I + 1], C = In[I + 2], D = In[I + 3];
    if ((A | B | C | D) >> 8)
      break;
    if (!((M[A >> 6] >> (A & 63)) & (M[B >> 6] >> (B & 63)) &
          (M[C >> 6] >> (C & 63)) & (M[D >> 6] >> (D & 63)) & 1))
      break;
    I += 4;
  }
  while (I < N && In[I] < 256 && ((M[In[I] >> 6] >> (In[I] & 63)) & 1))
    ++I;
  return I;
}

std::string efc::explainFastPath(const Bst &A) {
  std::string S;
  char Buf[192];
  unsigned TableStates = 0, AccelStates = 0;
  for (unsigned Q = 0, N = A.numStates(); Q < N; ++Q) {
    ByteClassTable C = classifyDeltaByteClasses(A, Q);
    if (!C.Eligible) {
      std::snprintf(Buf, sizeof Buf,
                    "state %u: fallback (register-guarded or non-scalar "
                    "input), bytecode only\n",
                    Q);
      S += Buf;
      continue;
    }
    ++TableStates;
    std::vector<RunKernel> Runs = classifyRunKernels(A, Q, C);
    unsigned SelfLoop = 0;
    for (const RunKernel &RK : Runs)
      SelfLoop += unsigned(RK.Classes.size());
    std::snprintf(Buf, sizeof Buf,
                  "state %u: eligible, %u valid bytes, %u classes, "
                  "%u self-loop class%s, %zu run kernel%s\n",
                  Q, C.ValidBytes, C.numClasses(), SelfLoop,
                  SelfLoop == 1 ? "" : "es", Runs.size(),
                  Runs.size() == 1 ? "" : "s");
    S += Buf;
    if (!Runs.empty())
      ++AccelStates;
    for (const RunKernel &RK : Runs) {
      const char *Kind = RK.K == RunKernel::Kind::Skip   ? "skip"
                         : RK.K == RunKernel::Kind::Copy ? "copy"
                                                         : "const-append";
      std::snprintf(Buf, sizeof Buf, "  kernel %s: %u byte%s", Kind, RK.Bytes,
                    RK.Bytes == 1 ? "" : "s");
      S += Buf;
      if (RK.SingleEscape >= 0) {
        std::snprintf(Buf, sizeof Buf, ", single escape 0x%02x",
                      unsigned(RK.SingleEscape));
        S += Buf;
      }
      if (!RK.Emits.empty()) {
        S += ", emits [";
        for (size_t J = 0; J < RK.Emits.size(); ++J) {
          std::snprintf(Buf, sizeof Buf, "%s%llu", J ? " " : "",
                        (unsigned long long)RK.Emits[J]);
          S += Buf;
        }
        S += "]";
      }
      if (!RK.Writes.empty()) {
        S += ", writes {";
        for (size_t J = 0; J < RK.Writes.size(); ++J) {
          std::snprintf(Buf, sizeof Buf, "%sr%u<-%llu", J ? " " : "",
                        unsigned(RK.Writes[J].first),
                        (unsigned long long)RK.Writes[J].second);
          S += Buf;
        }
        S += "}";
      }
      S += ", classes {";
      for (size_t J = 0; J < RK.Classes.size(); ++J) {
        std::snprintf(Buf, sizeof Buf, "%s%u", J ? " " : "",
                      unsigned(RK.Classes[J]));
        S += Buf;
      }
      S += "}\n";
    }
  }
  std::snprintf(Buf, sizeof Buf,
                "summary: %u/%u states tabulated, %u run-accelerated\n",
                TableStates, A.numStates(), AccelStates);
  S += Buf;
  return S;
}

FastPathPlan FastPathPlan::build(const Bst &A, const CompiledTransducer &T,
                                 const FastPathOptions &Opts) {
  FastPathPlan P;
  unsigned N = A.numStates();
  P.States.resize(N);

  const Type *ITy = A.inputType();
  if (!ITy->isScalar()) {
    P.S.FallbackStates = N;
    return P;
  }
  unsigned W = ITy->isBool() ? 1 : ITy->width();
  TermRef X = A.inputVar();
  TermContext &Ctx = A.context();

  std::vector<TermRef> OldLeaves;
  collectRegLeaves(Ctx, A.regVar(), OldLeaves);
  std::unordered_map<TermRef, bool> IOMemo;

  for (unsigned Q = 0; Q < N; ++Q) {
    ByteClassTable C = classifyDeltaByteClasses(A, Q);
    if (!C.Eligible) {
      ++P.S.FallbackStates;
      continue;
    }
    StateTable &ST = P.States[Q];
    ST.Actions.emplace_back(); // index 0: the Fallback action
    for (unsigned B = C.ValidBytes; B < 256; ++B)
      ST.Dispatch[B] = 0;

    // Per-class action resolution: Undef -> Reject; leaves whose outputs
    // and changed register updates are input-only fold to per-byte Const
    // (or Jump) actions; anything else gets one straight-line program
    // shared by every byte of the class.
    struct ClassPlan {
      int FixedAction = -1; // Reject / Program / Fallback action id
      bool ConstAble = false;
      std::vector<unsigned> ChangedIdx; // register leaves that change
      std::vector<TermRef> NewLeaves;
    };
    std::vector<ClassPlan> CP(C.numClasses());
    for (unsigned K = 0; K < C.numClasses(); ++K) {
      const Rule *L = C.Leaves[K];
      ClassPlan &Plan = CP[K];
      if (L->isUndef()) {
        Plan.FixedAction = int(ST.Actions.size());
        Action Rej;
        Rej.K = Action::Kind::Reject;
        ST.Actions.push_back(std::move(Rej));
        continue;
      }
      collectRegLeaves(Ctx, L->update(), Plan.NewLeaves);
      assert(Plan.NewLeaves.size() == OldLeaves.size());
      for (unsigned I = 0; I < OldLeaves.size(); ++I)
        if (Plan.NewLeaves[I] != OldLeaves[I])
          Plan.ChangedIdx.push_back(I);

      bool Foldable = true;
      for (TermRef O : L->outputs())
        if (!inputOnly(O, X, IOMemo)) {
          Foldable = false;
          break;
        }
      if (Foldable)
        for (unsigned I : Plan.ChangedIdx)
          if (!inputOnly(Plan.NewLeaves[I], X, IOMemo)) {
            Foldable = false;
            break;
          }
      if (Foldable) {
        Plan.ConstAble = true;
        continue;
      }
      unsigned MaxSlot = 0;
      auto Prog = compileRuleProgram(A, L, /*IsFinalizer=*/false, &MaxSlot);
      if (!Prog || MaxSlot + 1 > T.numSlots()) {
        // Leaf needs more temp slots than the cursor allocates (cannot
        // happen for leaves of this Bst's own rules, but stay defensive):
        // keep those bytes on the bytecode path.
        Plan.FixedAction = 0;
        continue;
      }
      Plan.FixedAction = int(ST.Actions.size());
      Action PA;
      PA.K = Action::Kind::Program;
      // Leaf programs have a statically known successor (their single
      // Next); record it so the parallel planner can enumerate plausible
      // post-boundary states without running the program.
      PA.Target = L->target();
      PA.Code = std::move(*Prog);
      ST.Actions.push_back(std::move(PA));
      ++P.S.ProgramActions;
    }

    // Per-byte dispatch: fold Const/Jump actions and dedup them so runs of
    // equivalent bytes share one action (cache-friendly tables).
    std::map<std::string, uint16_t> ConstIds;
    for (unsigned B = 0; B < C.ValidBytes; ++B) {
      const ClassPlan &Plan = CP[C.Class[B]];
      if (Plan.FixedAction >= 0) {
        ST.Dispatch[B] = uint16_t(Plan.FixedAction);
        continue;
      }
      const Rule *L = C.Leaves[C.Class[B]];
      Env E;
      E.bind(X, inputValueAt(ITy, W, B));
      Action Act;
      Act.Target = L->target();
      for (TermRef O : L->outputs())
        Act.Emits.push_back(evalTerm(O, E).bits());
      for (unsigned I : Plan.ChangedIdx)
        Act.Writes.push_back(
            {uint16_t(I), evalTerm(Plan.NewLeaves[I], E).bits()});
      Act.K = (Act.Emits.empty() && Act.Writes.empty()) ? Action::Kind::Jump
                                                        : Action::Kind::Const;
      std::string Key;
      Key.reserve(16 + 8 * Act.Emits.size() + 10 * Act.Writes.size());
      Key.append(reinterpret_cast<const char *>(&Act.Target),
                 sizeof(Act.Target));
      Key.push_back(char(Act.K));
      for (uint64_t V : Act.Emits)
        Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
      Key.push_back('|');
      for (auto &[Slot, V] : Act.Writes) {
        Key.append(reinterpret_cast<const char *>(&Slot), sizeof(Slot));
        Key.append(reinterpret_cast<const char *>(&V), sizeof(V));
      }
      auto [It, New] = ConstIds.emplace(Key, uint16_t(ST.Actions.size()));
      if (New) {
        if (Act.K == Action::Kind::Jump)
          ++P.S.JumpActions;
        else
          ++P.S.ConstActions;
        ST.Actions.push_back(std::move(Act));
      }
      ST.Dispatch[B] = It->second;
    }
    ST.HasTable = true;
    ++P.S.TableStates;

    // Run acceleration: fold self-loop classes into bulk kernels.  The
    // byte -> kernel map is consulted before Dispatch, so a kernel byte
    // short-circuits per-element dispatch for the whole span.
    ST.RunId.fill(NoRun);
    if (Opts.RunAccel) {
      ST.Runs = classifyRunKernels(A, Q, C);
      for (unsigned R = 0; R < ST.Runs.size(); ++R)
        for (unsigned B = 0; B < 256; ++B)
          if (ST.Runs[R].covers(B))
            ST.RunId[B] = uint8_t(R);
      if (!ST.Runs.empty())
        ++P.S.AccelStates;
      for (const RunKernel &RK : ST.Runs) {
        P.S.AccelBytes += RK.Bytes;
        switch (RK.K) {
        case RunKernel::Kind::Skip:
          ++P.S.SkipKernels;
          break;
        case RunKernel::Kind::Copy:
          ++P.S.CopyKernels;
          break;
        case RunKernel::Kind::ConstAppend:
          ++P.S.ConstAppendKernels;
          break;
        }
      }
    }
  }
  return P;
}

bool FastPathCursor::feed(std::span<const uint64_t> In,
                          std::vector<uint64_t> &Out) {
  // Bulk emit buffer: one reservation per chunk instead of a capacity
  // check per Emit (stages emit at most about one element per input).
  if (Out.capacity() - Out.size() < In.size())
    Out.reserve(Out.size() + In.size() + 16);

  const CompiledTransducer &T = *Inner.T;
  uint64_t *Slots = Inner.Slots.data();
  const unsigned InSlot = T.NumRegSlots;
  unsigned State = Inner.State;
  const FastPathPlan::StateTable *Tables = Plan->States.data();

  for (size_t I = 0, N = In.size(); I < N; ++I) {
    uint64_t X = In[I];
    const FastPathPlan::StateTable &ST = Tables[State];
    if (ST.HasTable && X < 256) {
      if (uint8_t R = ST.RunId[X]; R != FastPathPlan::NoRun) {
        // Run kernel: consume the whole span [I, End) in one step.  The
        // kernel self-loops, so State and registers are untouched and a
        // run cut short by the chunk boundary resumes on the next feed.
        const RunKernel &RK = ST.Runs[R];
        size_t End = scanRunEnd(In.data(), I + 1, N, RK);
        switch (RK.K) {
        case RunKernel::Kind::Skip:
          break;
        case RunKernel::Kind::Copy:
          Out.insert(Out.end(), In.data() + I, In.data() + End);
          break;
        case RunKernel::Kind::ConstAppend:
          if (RK.Emits.size() == 1)
            Out.insert(Out.end(), End - I, RK.Emits[0]);
          else
            for (size_t J = I; J < End; ++J)
              Out.insert(Out.end(), RK.Emits.begin(), RK.Emits.end());
          break;
        }
        for (auto [Slot, V] : RK.Writes)
          Slots[Slot] = V;
        ++RC.Runs;
        RC.RunElements += End - I;
        I = End - 1;
        continue;
      }
      const FastPathPlan::Action &A = ST.Actions[ST.Dispatch[X]];
      switch (A.K) {
      case FastPathPlan::Action::Kind::Jump:
        State = A.Target;
        continue;
      case FastPathPlan::Action::Kind::Const:
        Out.insert(Out.end(), A.Emits.begin(), A.Emits.end());
        for (auto [Slot, V] : A.Writes)
          Slots[Slot] = V;
        State = A.Target;
        continue;
      case FastPathPlan::Action::Kind::Reject:
        Inner.State = State;
        return false;
      case FastPathPlan::Action::Kind::Program:
        Slots[InSlot] = X;
        Inner.State = State;
        if (!Inner.exec(A.Code, Out))
          return false;
        State = Inner.State;
        continue;
      case FastPathPlan::Action::Kind::Fallback:
        break;
      }
    }
    // Mixed-mode fallback: out-of-range element or bytecode-only state.
    Slots[InSlot] = X;
    Inner.State = State;
    if (!Inner.exec(T.Delta[State], Out))
      return false;
    State = Inner.State;
  }
  Inner.State = State;
  return true;
}

std::optional<std::vector<uint64_t>>
efc::runFastPath(const FastPathPlan &P, const CompiledTransducer &T,
                 std::span<const uint64_t> In) {
  FastPathCursor C(P, T);
  std::vector<uint64_t> Out;
  bool Ok = C.feed(In, Out) && C.finish(Out);
  // One registry fold per run, not per span: the kernel loop stays free
  // of shared-state traffic.
  static metrics::Counter &Runs = metrics::Registry::instance().counter(
      "efc_fastpath_runs_total", "Bulk spans driven through run kernels");
  static metrics::Counter &Elems = metrics::Registry::instance().counter(
      "efc_fastpath_run_elements_total", "Elements consumed by run kernels");
  Runs.inc(C.runCounters().Runs);
  Elems.inc(C.runCounters().RunElements);
  if (!Ok)
    return std::nullopt;
  return Out;
}
