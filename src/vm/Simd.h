//===- vm/Simd.h - Runtime ISA level detection and override -----*- C++ -*-===//
///
/// \file
/// One cpuid probe at startup picks the widest vector ISA the machine
/// supports; the fast-path scan kernels (FastPath.cpp) and anything else
/// that keeps per-level function pointers index off the returned Level.
/// `EFC_SIMD=scalar|sse2|avx2|avx512` clamps the active level below the
/// detected one (never above: requesting avx512 on an sse2 box degrades
/// to the detected level with a one-time stderr note), so the scalar and
/// SSE2 fallback paths stay testable on wide machines.  The same
/// environment contract is honored by CppCodeGen-emitted native code, so
/// a forced level applies to every backend at once.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_VM_SIMD_H
#define EFC_VM_SIMD_H

#include <optional>
#include <string_view>

namespace efc::simd {

/// Vector ISA tiers the scan kernels are compiled for.  Values are
/// ordered: a machine at level L can run every kernel at level <= L.
/// SSE2 is the x86-64 baseline; AVX2 adds pshufb-classified 32-byte
/// blocks (the two-nibble-table idiom); AVX512 adds 64-byte blocks with
/// vpmovqb element packing.  Non-x86 builds detect Scalar.
enum class Level : int { Scalar = 0, SSE2 = 1, AVX2 = 2, AVX512 = 3 };

/// What the hardware supports (cpuid, probed once and cached).
Level detectedLevel();

/// detectedLevel() clamped by the EFC_SIMD override; cached after the
/// first call.  This is what kernel dispatch reads.
Level activeLevel();

/// "scalar" / "sse2" / "avx2" / "avx512".
const char *levelName(Level L);

/// Parses an EFC_SIMD value; nullopt for unrecognized strings.
std::optional<Level> parseLevel(std::string_view S);

/// Testing hook: force the active level (clamped to detectedLevel(), so
/// a test sweep over all levels is safe on any machine).  Returns the
/// level actually installed.
Level setActiveLevelForTesting(Level L);

} // namespace efc::simd

#endif // EFC_VM_SIMD_H
