//===- vm/Vm.cpp - Rule compiler and bytecode interpreter -----------------===//

#include "vm/Vm.h"

#include "term/ScalarOps.h"

#include <cassert>
#include <unordered_map>

using namespace efc;

namespace {

/// Enumerates the scalar leaf terms of a register variable in flattening
/// order (projection chains built through the factory, so they are the
/// same interned terms that appear in rules).
void collectLeafTerms(TermContext &Ctx, TermRef T,
                      std::vector<TermRef> &Out) {
  const Type *Ty = T->type();
  switch (Ty->kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(T);
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (unsigned I = 0; I < Ty->arity(); ++I)
      collectLeafTerms(Ctx, Ctx.mkTupleGet(T, I), Out);
    return;
  }
}

void flattenValue(const Value &V, std::vector<uint64_t> &Out) {
  switch (V.kind()) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(V.bits());
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (const Value &E : V.elems())
      flattenValue(E, Out);
    return;
  }
}

class RuleCompiler {
public:
  RuleCompiler(const Bst &A, unsigned NumRegSlots,
               const std::unordered_map<TermRef, uint16_t> &FixedSlots,
               unsigned FirstTemp)
      : A(A), NumRegSlots(NumRegSlots), FixedSlots(FixedSlots),
        FirstTemp(FirstTemp) {}

  VmProgram compile(const Rule *R, bool IsFinalizer) {
    P.Code.clear();
    Memo.clear();
    NextTemp = FirstTemp;
    MaxSlot = FirstTemp;
    emitRule(R, IsFinalizer);
    return std::move(P);
  }

  unsigned maxSlot() const { return MaxSlot; }

private:
  const Bst &A;
  unsigned NumRegSlots;
  const std::unordered_map<TermRef, uint16_t> &FixedSlots;
  unsigned FirstTemp;
  VmProgram P;
  std::unordered_map<TermRef, uint16_t> Memo;
  unsigned NextTemp = 0;
  unsigned MaxSlot = 0;

  uint16_t fresh() {
    uint16_t S = uint16_t(NextTemp++);
    if (NextTemp > MaxSlot)
      MaxSlot = NextTemp;
    return S;
  }

  void emit(VmOp Op, uint8_t Width, uint16_t Dst, uint16_t OpA = 0,
            uint16_t OpB = 0, uint16_t OpC = 0, uint64_t Imm = 0) {
    P.Code.push_back(VmInstr{Op, Width, Dst, OpA, OpB, OpC, Imm});
  }

  static uint8_t widthOf(TermRef T) {
    return T->type()->isBool() ? 1 : uint8_t(T->type()->width());
  }

  uint16_t compileTerm(TermRef T) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    uint16_t S = emitTerm(T);
    Memo.emplace(T, S);
    return S;
  }

  uint16_t emitTerm(TermRef T) {
    switch (T->op()) {
    case Op::ConstBool:
    case Op::ConstBv: {
      uint16_t D = fresh();
      emit(VmOp::Const, widthOf(T), D, 0, 0, 0, T->constBits());
      return D;
    }
    case Op::Var:
    case Op::TupleGet: {
      auto F = FixedSlots.find(T);
      assert(F != FixedSlots.end() && "unmapped leaf in rule term");
      return F->second;
    }
    case Op::Not: {
      uint16_t S = compileTerm(T->operand(0));
      uint16_t D = fresh();
      emit(VmOp::NotBool, 1, D, S);
      return D;
    }
    case Op::And:
    case Op::Or: {
      uint16_t S1 = compileTerm(T->operand(0));
      uint16_t S2 = compileTerm(T->operand(1));
      uint16_t D = fresh();
      emit(T->op() == Op::And ? VmOp::And : VmOp::Or, 1, D, S1, S2);
      return D;
    }
    case Op::Ite: {
      uint16_t C = compileTerm(T->operand(0));
      uint16_t S1 = compileTerm(T->operand(1));
      uint16_t S2 = compileTerm(T->operand(2));
      uint16_t D = fresh();
      emit(VmOp::Select, widthOf(T), D, C, S1, S2);
      return D;
    }
    case Op::Eq:
    case Op::Ult:
    case Op::Ule:
    case Op::Slt:
    case Op::Sle: {
      uint16_t S1 = compileTerm(T->operand(0));
      uint16_t S2 = compileTerm(T->operand(1));
      uint16_t D = fresh();
      VmOp O = T->op() == Op::Eq    ? VmOp::Eq
               : T->op() == Op::Ult ? VmOp::Ult
               : T->op() == Op::Ule ? VmOp::Ule
               : T->op() == Op::Slt ? VmOp::Slt
                                    : VmOp::Sle;
      emit(O, widthOf(T->operand(0)), D, S1, S2);
      return D;
    }
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::UDiv:
    case Op::URem:
    case Op::BvAnd:
    case Op::BvOr:
    case Op::BvXor:
    case Op::Shl:
    case Op::LShr:
    case Op::AShr: {
      uint16_t S1 = compileTerm(T->operand(0));
      uint16_t S2 = compileTerm(T->operand(1));
      uint16_t D = fresh();
      VmOp O;
      switch (T->op()) {
      case Op::Add:
        O = VmOp::Add;
        break;
      case Op::Sub:
        O = VmOp::Sub;
        break;
      case Op::Mul:
        O = VmOp::Mul;
        break;
      case Op::UDiv:
        O = VmOp::UDiv;
        break;
      case Op::URem:
        O = VmOp::URem;
        break;
      case Op::BvAnd:
        O = VmOp::And;
        break;
      case Op::BvOr:
        O = VmOp::Or;
        break;
      case Op::BvXor:
        O = VmOp::Xor;
        break;
      case Op::Shl:
        O = VmOp::Shl;
        break;
      case Op::LShr:
        O = VmOp::LShr;
        break;
      default:
        O = VmOp::AShr;
        break;
      }
      emit(O, widthOf(T), D, S1, S2);
      return D;
    }
    case Op::Neg: {
      uint16_t S = compileTerm(T->operand(0));
      uint16_t D = fresh();
      emit(VmOp::Neg, widthOf(T), D, S);
      return D;
    }
    case Op::BvNot: {
      uint16_t S = compileTerm(T->operand(0));
      uint16_t D = fresh();
      emit(VmOp::NotBits, widthOf(T), D, S);
      return D;
    }
    case Op::ZExt:
      // Slots always hold masked values; widening is a no-op.
      return compileTerm(T->operand(0));
    case Op::SExt: {
      uint16_t S = compileTerm(T->operand(0));
      uint16_t D = fresh();
      // Sign-extend from the *source* width, mask to the target width.
      emit(VmOp::SExt, widthOf(T->operand(0)), D, S, 0, 0,
           widthOf(T));
      return D;
    }
    case Op::Extract: {
      uint16_t S = compileTerm(T->operand(0));
      uint16_t D = fresh();
      emit(VmOp::Extract, widthOf(T), D, S, 0, 0, T->extractLo());
      return D;
    }
    case Op::MkTuple:
    case Op::ConstUnit:
      break;
    }
    assert(false && "non-scalar term reached the VM compiler");
    return 0;
  }

  void emitRule(const Rule *R, bool IsFinalizer) {
    switch (R->kind()) {
    case Rule::Kind::Undef:
      emit(VmOp::Reject, 0, 0);
      return;
    case Rule::Kind::Ite: {
      uint16_t C = compileTerm(R->cond());
      size_t JzIdx = P.Code.size();
      emit(VmOp::Jz, 0, 0, C);
      // Then-arm: temps allocated inside are path-local.
      auto SavedMemo = Memo;
      unsigned SavedTemp = NextTemp;
      emitRule(R->thenRule().get(), IsFinalizer);
      Memo = std::move(SavedMemo);
      NextTemp = SavedTemp;
      P.Code[JzIdx].Imm = P.Code.size();
      emitRule(R->elseRule().get(), IsFinalizer);
      return;
    }
    case Rule::Kind::Base: {
      for (TermRef O : R->outputs()) {
        uint16_t S = compileTerm(O);
        emit(VmOp::Emit, 0, 0, S);
      }
      if (IsFinalizer) {
        emit(VmOp::Accept, 0, 0);
        return;
      }
      // Compute all new register leaves before overwriting any of them.
      TermContext &Ctx = A.context();
      std::vector<TermRef> NewLeaves;
      collectLeafTerms(Ctx, R->update(), NewLeaves);
      assert(NewLeaves.size() == NumRegSlots);
      std::vector<std::pair<uint16_t, uint16_t>> Writes; // reg slot <- src
      std::vector<TermRef> OldLeaves;
      collectLeafTerms(Ctx, A.regVar(), OldLeaves);
      for (unsigned I = 0; I < NumRegSlots; ++I) {
        if (NewLeaves[I] == OldLeaves[I])
          continue; // unchanged field
        Writes.push_back({uint16_t(I), compileTerm(NewLeaves[I])});
      }
      // A source that is itself a register slot could be clobbered by an
      // earlier write (e.g. a field swap); stage such sources in temps.
      for (auto &[RegSlot, Src] : Writes) {
        if (Src < NumRegSlots) {
          uint16_t Tmp = fresh();
          emit(VmOp::Mov, 0, Tmp, Src);
          Src = Tmp;
        }
      }
      for (auto [RegSlot, Src] : Writes)
        emit(VmOp::Mov, 0, RegSlot, Src);
      emit(VmOp::Next, 0, 0, 0, 0, 0, R->target());
      return;
    }
    }
  }
};

} // namespace

std::optional<VmProgram> efc::compileRuleProgram(const Bst &A, const Rule *R,
                                                 bool IsFinalizer,
                                                 unsigned *MaxSlotOut) {
  if (!A.inputType()->isScalar() || !A.outputType()->isScalar())
    return std::nullopt;
  TermContext &Ctx = A.context();
  std::vector<TermRef> RegLeaves;
  collectLeafTerms(Ctx, A.regVar(), RegLeaves);
  unsigned NumRegSlots = unsigned(RegLeaves.size());

  std::unordered_map<TermRef, uint16_t> Fixed;
  for (unsigned I = 0; I < RegLeaves.size(); ++I)
    Fixed[RegLeaves[I]] = uint16_t(I);
  Fixed[A.inputVar()] = uint16_t(NumRegSlots);

  RuleCompiler RC(A, NumRegSlots, Fixed, NumRegSlots + 1);
  VmProgram P = RC.compile(R, IsFinalizer);
  if (MaxSlotOut)
    *MaxSlotOut = RC.maxSlot();
  return P;
}

std::optional<CompiledTransducer> CompiledTransducer::compile(const Bst &A) {
  if (!A.inputType()->isScalar() || !A.outputType()->isScalar())
    return std::nullopt;

  CompiledTransducer T;
  TermContext &Ctx = A.context();

  std::vector<TermRef> RegLeaves;
  collectLeafTerms(Ctx, A.regVar(), RegLeaves);
  T.NumRegSlots = unsigned(RegLeaves.size());

  std::unordered_map<TermRef, uint16_t> Fixed;
  for (unsigned I = 0; I < RegLeaves.size(); ++I)
    Fixed[RegLeaves[I]] = uint16_t(I);
  Fixed[A.inputVar()] = uint16_t(T.NumRegSlots); // input slot

  unsigned FirstTemp = T.NumRegSlots + 1;
  RuleCompiler RC(A, T.NumRegSlots, Fixed, FirstTemp);

  unsigned MaxSlot = FirstTemp;
  for (unsigned Q = 0; Q < A.numStates(); ++Q) {
    T.Delta.push_back(RC.compile(A.delta(Q).get(), /*IsFinalizer=*/false));
    MaxSlot = std::max(MaxSlot, RC.maxSlot());
    T.Fin.push_back(RC.compile(A.finalizer(Q).get(), /*IsFinalizer=*/true));
    MaxSlot = std::max(MaxSlot, RC.maxSlot());
  }
  T.NumSlots = MaxSlot + 1;
  T.InitState = A.initialState();
  flattenValue(A.initialRegister(), T.InitRegs);
  assert(T.InitRegs.size() == T.NumRegSlots);
  return T;
}

const char *efc::vmOpName(VmOp Op) {
  switch (Op) {
  case VmOp::Const:
    return "const";
  case VmOp::Mov:
    return "mov";
  case VmOp::Add:
    return "add";
  case VmOp::Sub:
    return "sub";
  case VmOp::Mul:
    return "mul";
  case VmOp::UDiv:
    return "udiv";
  case VmOp::URem:
    return "urem";
  case VmOp::Neg:
    return "neg";
  case VmOp::And:
    return "and";
  case VmOp::Or:
    return "or";
  case VmOp::Xor:
    return "xor";
  case VmOp::NotBits:
    return "notb";
  case VmOp::NotBool:
    return "not";
  case VmOp::Shl:
    return "shl";
  case VmOp::LShr:
    return "lshr";
  case VmOp::AShr:
    return "ashr";
  case VmOp::Eq:
    return "eq";
  case VmOp::Ult:
    return "ult";
  case VmOp::Ule:
    return "ule";
  case VmOp::Slt:
    return "slt";
  case VmOp::Sle:
    return "sle";
  case VmOp::SExt:
    return "sext";
  case VmOp::Extract:
    return "extract";
  case VmOp::Select:
    return "select";
  case VmOp::Jz:
    return "jz";
  case VmOp::Jmp:
    return "jmp";
  case VmOp::Emit:
    return "emit";
  case VmOp::Next:
    return "next";
  case VmOp::Reject:
    return "reject";
  case VmOp::Accept:
    return "accept";
  }
  return "?";
}

std::string efc::disassemble(const VmProgram &P) {
  std::string S;
  char Buf[128];
  for (size_t I = 0; I < P.Code.size(); ++I) {
    const VmInstr &In = P.Code[I];
    snprintf(Buf, sizeof(Buf),
             "  %3zu: %-8s w%-2u d%-3u a%-3u b%-3u c%-3u imm=%llu\n", I,
             vmOpName(In.Op), In.Width, In.Dst, In.A, In.B, In.C,
             (unsigned long long)In.Imm);
    S += Buf;
  }
  return S;
}

std::string CompiledTransducer::disassembleAll() const {
  std::string S;
  for (unsigned Q = 0; Q < numStates(); ++Q) {
    S += "state " + std::to_string(Q) + " delta:\n" +
         disassemble(Delta[Q]);
    S += "state " + std::to_string(Q) + " finalizer:\n" +
         disassemble(Fin[Q]);
  }
  return S;
}

size_t CompiledTransducer::codeSize() const {
  size_t N = 0;
  for (const VmProgram &P : Delta)
    N += P.Code.size();
  for (const VmProgram &P : Fin)
    N += P.Code.size();
  return N;
}

void CompiledTransducer::Cursor::reset() {
  State = T->InitState;
  Slots.assign(T->NumSlots, 0);
  for (unsigned I = 0; I < T->NumRegSlots; ++I)
    Slots[I] = T->InitRegs[I];
}

void CompiledTransducer::Cursor::restore(unsigned NewState,
                                         std::span<const uint64_t> Regs) {
  assert(NewState < T->Delta.size() && "restore to out-of-range state");
  assert(Regs.size() == T->NumRegSlots && "register file size mismatch");
  State = NewState;
  Slots.assign(T->NumSlots, 0);
  for (unsigned I = 0; I < T->NumRegSlots; ++I)
    Slots[I] = Regs[I];
}

bool CompiledTransducer::Cursor::exec(const VmProgram &P,
                                      std::vector<uint64_t> &Out) {
  const VmInstr *Code = P.Code.data();
  uint64_t *S = Slots.data();
  size_t Pc = 0;
  for (;;) {
    const VmInstr &I = Code[Pc++];
    switch (I.Op) {
    case VmOp::Jz:
      if (S[I.A] == 0)
        Pc = size_t(I.Imm);
      break;
    case VmOp::Jmp:
      Pc = size_t(I.Imm);
      break;
    case VmOp::Emit:
      Out.push_back(S[I.A]);
      break;
    case VmOp::Next:
      State = unsigned(I.Imm);
      return true;
    case VmOp::Accept:
      return true;
    case VmOp::Reject:
      return false;
    default:
      // Pure ops share one evaluator with the planner's abstract
      // interpretation (evalVmPureOp), so the two cannot drift.
      S[I.Dst] = evalVmPureOp(I, S);
      break;
    }
  }
}

bool CompiledTransducer::Cursor::execProgramTracked(const VmProgram &P,
                                                    std::vector<uint64_t> &Out,
                                                    uint64_t &WrittenRegs) {
  const VmInstr *Code = P.Code.data();
  uint64_t *S = Slots.data();
  const unsigned NR = T->NumRegSlots;
  size_t Pc = 0;
  for (;;) {
    const VmInstr &I = Code[Pc++];
    switch (I.Op) {
    case VmOp::Jz:
      if (S[I.A] == 0)
        Pc = size_t(I.Imm);
      break;
    case VmOp::Jmp:
      Pc = size_t(I.Imm);
      break;
    case VmOp::Emit:
      Out.push_back(S[I.A]);
      break;
    case VmOp::Next:
      State = unsigned(I.Imm);
      return true;
    case VmOp::Accept:
      return true;
    case VmOp::Reject:
      return false;
    default:
      S[I.Dst] = evalVmPureOp(I, S);
      if (I.Dst < NR)
        WrittenRegs |= uint64_t(1) << I.Dst;
      break;
    }
  }
}

bool CompiledTransducer::Cursor::feed(uint64_t X, std::vector<uint64_t> &Out) {
  Slots[T->NumRegSlots] = X;
  return exec(T->Delta[State], Out);
}

bool CompiledTransducer::Cursor::finish(std::vector<uint64_t> &Out) {
  return exec(T->Fin[State], Out);
}

std::optional<std::vector<uint64_t>>
CompiledTransducer::run(std::span<const uint64_t> In) const {
  Cursor C(*this);
  std::vector<uint64_t> Out;
  // Most pipeline stages emit at most about one element per input element
  // (decoders shrink, formatters expand only the aggregate tail), so one
  // up-front reservation makes the common case allocation-free instead of
  // growing the vector once per Emit.
  Out.reserve(In.size() + 16);
  for (uint64_t X : In)
    if (!C.feed(X, Out))
      return std::nullopt;
  if (!C.finish(Out))
    return std::nullopt;
  return Out;
}
