//===- vm/FastPath.h - Byte-class dispatch fast path ------------*- C++ -*-===//
///
/// \file
/// A DFA-style execution engine layered over the bytecode VM.  For each
/// control state whose guards depend only on the current input element (no
/// register reads in any Ite condition), the transition rule is a pure
/// function of the input byte, so it can be tabulated: a 256-entry
/// byte -> action table, partitioned into equivalence classes (bytes that
/// reach the same Base leaf), maps each byte directly to its effect
/// (emit constants / register writes / next state) without re-walking the
/// guard tree.  States whose guards read registers keep the existing
/// bytecode program, so the engine is mixed-mode: the driver loop hits the
/// table when it can and falls back to the interpreter when it must.
///
/// Eligibility and exactness (see DESIGN.md "Mixed-mode fast path"):
///  - The input type must be scalar.  For width W, table entries cover
///    bytes b < min(2^W, 256); the dispatch loop additionally requires the
///    *unmasked* element value X < 256 and X < 2^W, so every dispatched
///    element satisfies masked == unmasked and the table action agrees
///    with the bytecode program instruction-for-instruction.  Elements out
///    of that range (possible: the VM does not mask its input slot) run
///    the ordinary bytecode program for that one element.
///  - Actions are precomputed with the reference term evaluator at
///    x = b, which shares its scalar semantics (term/ScalarOps.h) with the
///    interpreter, so tables cannot drift from the bytecode.
///
/// On top of the tables sits run acceleration (DESIGN.md "Run
/// acceleration"): byte classes whose leaf self-loops with constant-only
/// register writes and a uniform output shape (nothing / the input
/// element / a constant sequence) are folded into RunKernels, and the
/// driver consumes
/// whole spans of such bytes with one vectorized scan + one bulk append.
/// Kernels never change the state, so runs split across feed() chunks
/// resume exactly where they stopped.
///
/// A FastPathPlan is plain data (tables, constants, straight-line
/// programs); it holds no pointers into the Bst or the
/// CompiledTransducer, so plans stay valid when the owning pipeline
/// objects are moved.  Execution binds (plan, transducer) at use time via
/// FastPathCursor / runFastPath.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_VM_FASTPATH_H
#define EFC_VM_FASTPATH_H

#include "vm/Vm.h"

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace efc {

/// Byte -> equivalence-class map for one state's transition rule.  Shared
/// between the VM fast path and CppCodeGen, so the generated C++ lookup
/// tables partition bytes exactly like the interpreter's action tables.
struct ByteClassTable {
  /// True when every guard in the state's rule tree references only the
  /// input variable (and the input type is scalar).
  bool Eligible = false;
  /// Number of in-range byte values: min(2^inputWidth, 256).  Entries at
  /// b >= ValidBytes hold the sentinel class numClasses().
  unsigned ValidBytes = 0;
  /// byte -> index into Leaves (or the sentinel for padded entries).
  std::array<uint16_t, 256> Class{};
  /// Distinct Base/Undef leaves reached, in first-hit byte order.  Borrowed
  /// from the Bst's rule trees; valid only while the Bst is alive.
  std::vector<const Rule *> Leaves;

  unsigned numClasses() const { return unsigned(Leaves.size()); }
};

/// Analyzes delta(Q) of \p A.  Returns an ineligible table when the input
/// type is not scalar or some guard reads a register.
ByteClassTable classifyDeltaByteClasses(const Bst &A, unsigned Q);

/// Two 16-byte shuffle tables encoding a 256-bit byte set (the
/// Hyperscan/simdjson "shufti" idiom): byte b is in the set iff
/// `Lo[b & 15] & Hi[b >> 4] != 0`.  Encodable whenever the set's hi
/// nibbles fall into at most 8 distinct low-nibble row patterns (each
/// distinct row gets one bucket bit); beyond that the scan falls back to
/// the SWAR mask ladder.  Shared between the VM scan kernels and
/// CppCodeGen, and folded into the codegen classifier hash, so generated
/// native code classifies with byte-identical tables.
struct NibbleTable {
  bool Valid = false;
  std::array<uint8_t, 16> Lo{};
  std::array<uint8_t, 16> Hi{};

  bool contains(uint8_t B) const {
    return (Lo[B & 15] & Hi[B >> 4]) != 0;
  }
};

/// Encodes \p Mask as nibble tables; Valid=false when the set needs more
/// than 8 bucket rows (one pshufb cannot encode it).
NibbleTable tryEncodeNibbleTable(const std::array<uint64_t, 4> &Mask);

/// One bulk self-loop kernel for a table state: a set of bytes whose
/// action keeps the machine in the same state with at most constant
/// register writes and a uniform per-element output effect.  A span of
/// such bytes is consumed with one vectorized scan (findFirstNonLoopByte)
/// plus one bulk append instead of per-element dispatch.
struct RunKernel {
  enum class Kind : uint8_t {
    Skip,       // no output: the span is consumed silently
    Copy,       // emit the input element itself (memcpy of the span)
    ConstAppend // emit a fixed constant sequence per element
  };
  Kind K = Kind::Skip;
  /// 256-bit membership mask: bit b set <=> byte b is driven by this
  /// kernel.  Padding bytes (input width < 8) are never set.
  std::array<uint64_t, 4> Mask{};
  /// When >= 0 the mask covers every byte except this one, so the scan
  /// degenerates to a memchr-style compare against the single escape byte
  /// instead of per-element mask-bit tests.
  int SingleEscape = -1;
  /// ConstAppend payload: constants emitted for each consumed element.
  std::vector<uint64_t> Emits;
  /// Constant register writes (slot <- imm).  Every element of the span
  /// performs these same writes, and no guard in a table state reads
  /// registers, so applying them once per span is equivalent to once per
  /// element — including across feed() boundaries (idempotent).
  std::vector<std::pair<uint16_t, uint64_t>> Writes;
  /// Number of bytes covered (popcount of Mask).
  unsigned Bytes = 0;
  /// Byte-class ids folded into this kernel (for --explain-fastpath).
  std::vector<uint16_t> Classes;
  /// Shuffle-table encoding of Mask (Valid=false when inexpressible);
  /// the AVX2/AVX-512 scan kernels classify 16/32/64-byte blocks with it.
  NibbleTable NT;

  bool covers(uint64_t X) const {
    return X < 256 && ((Mask[X >> 6] >> (X & 63)) & 1);
  }
};

/// Detects the self-loop run kernels of state \p Q from its byte-class
/// table \p C (as returned by classifyDeltaByteClasses).  Shared between
/// FastPathPlan::build and CppCodeGen, so the VM driver and the generated
/// C++ accelerate exactly the same byte sets with the same effects; the
/// criteria are syntactic on the Base leaves (target == Q, register
/// update leaves unchanged, outputs empty / the input variable / all
/// constants), never re-derived per backend.
std::vector<RunKernel> classifyRunKernels(const Bst &A, unsigned Q,
                                          const ByteClassTable &C);

/// Returns the first index in [I, N) whose element leaves \p RK's byte
/// set (value >= 256 or mask miss) — the end of the current run.
/// Dispatched once per process (cpuid) to the widest available kernel:
/// scalar SWAR, the SSE2 single-escape specialization, or
/// nibble-table-classified AVX2/AVX-512 blocks; `EFC_SIMD` (vm/Simd.h)
/// forces a lower level.
size_t scanRunEnd(const uint64_t *In, size_t I, size_t N, const RunKernel &RK);

/// Two-state speculative transition pair: in state Q, bytes of M1 all
/// share one Const/Jump action into state P, and in P bytes of M2 all
/// share one Const/Jump action back into Q.  A block that alternates
/// M1,M2,M1,... (short alternating runs: delimiter/payload ping-pong)
/// is then consumed in one span — classify the block against both
/// states' masks, check the parity pattern, bulk-apply both legs'
/// constant effects — instead of per-element dispatch that changes
/// state on every element.
struct SpecPair {
  uint32_t Other = 0;                  // partner state P
  std::array<uint64_t, 4> M1{}, M2{};  // leg masks: Q-side / P-side
  NibbleTable NT1, NT2;                // SIMD encodings (when expressible)
  std::vector<uint64_t> Emits1, Emits2;
  std::vector<std::pair<uint16_t, uint64_t>> Writes1, Writes2;
  unsigned Bytes1 = 0, Bytes2 = 0; // popcounts, for explain/stats

  static bool maskCovers(const std::array<uint64_t, 4> &M, uint64_t X) {
    return X < 256 && ((M[X >> 6] >> (X & 63)) & 1);
  }
};

/// Returns the end of the longest alternating span starting at \p I:
/// elements at even offsets from I must be in SP.M1, odd offsets in
/// SP.M2 (all < 256).  In[I] is required to be in M1.  SIMD-dispatched
/// like scanRunEnd.
size_t scanAlternating(const uint64_t *In, size_t I, size_t N,
                       const SpecPair &SP);

/// Per-element action table for wide scalar inputs (8 < width <= 16,
/// e.g. the UTF-16 HTML pipelines): the byte tables cover elements
/// < 256, this covers [256, 2^W).  Same eligibility as the byte table
/// (guards read only the input), same per-class action resolution, but
/// with the per-element constant effects memoized into shared pools at
/// plan-build time, so the hot loop does two offset loads and a memcpy
/// instead of re-walking the guard tree per element.  This is the
/// "range-compare ladder" tier of the classification ladder: elements a
/// 16-byte shuffle cannot reach are still classified in O(1).
struct WideTable {
  bool Has = false;
  uint32_t Limit = 0; // 2^W; ClassOf/EmitOff/WriteOff cover [0, Limit)

  struct Class {
    enum class Kind : uint8_t {
      Memo,    // constant effects, memoized per element in the pools
      Program, // straight-line leaf program (register-reading effects)
      Reject,  // Undef leaf
      Fallback // defensive: leaf program would not compile
    };
    Kind K = Kind::Fallback;
    uint32_t Target = 0; // Memo / Program successor state
    VmProgram Code;      // Program
  };

  std::vector<uint16_t> ClassOf; // element -> index into Classes
  std::vector<Class> Classes;
  /// Memo pools: element X emits EmitPool[EmitOff[X] .. EmitOff[X+1])
  /// and writes WritePool[WriteOff[X] .. WriteOff[X+1)) (slot <- imm).
  /// Entries of non-Memo elements are zero-length slices.
  std::vector<uint32_t> EmitOff; // Limit + 1 prefix offsets
  std::vector<uint64_t> EmitPool;
  std::vector<uint32_t> WriteOff; // Limit + 1
  std::vector<std::pair<uint16_t, uint64_t>> WritePool;
};

/// Options controlling plan construction (EFC_FASTPATH_ACCEL / A-B
/// benchmarking disable run acceleration while keeping the tables).
struct FastPathOptions {
  bool RunAccel = true;
  /// Build WideTables for 8 < width <= 16 inputs (costs one reference-
  /// evaluator sweep over the 2^W domain at plan build; disable via
  /// EFC_FASTPATH_WIDE=0).
  bool WideTables = true;
  /// Detect two-state speculative alternating pairs.
  bool SpecAccel = true;

  /// Reads EFC_FASTPATH_ACCEL / EFC_FASTPATH_WIDE / EFC_FASTPATH_SPEC
  /// ("0" disables); shared by PipelineCache and the benches so A/B
  /// switches mean the same thing everywhere.
  static FastPathOptions fromEnv();
};

/// Human-readable per-state dump of byte-class eligibility, class counts,
/// self-loop classes, and the chosen run kernels (efcc --explain-fastpath).
std::string explainFastPath(const Bst &A);

/// Per-state dispatch tables for one compiled transducer.
class FastPathPlan {
public:
  /// Sentinel for StateTable::RunId entries with no run kernel.
  static constexpr uint8_t NoRun = 0xFF;

  struct Stats {
    unsigned TableStates = 0;    // states with a dispatch table
    unsigned FallbackStates = 0; // states kept on bytecode only
    unsigned ConstActions = 0;   // fully-folded (emit consts, write consts)
    unsigned JumpActions = 0;    // state change only
    unsigned ProgramActions = 0; // straight-line leaf programs
    unsigned AccelStates = 0;    // table states with >= 1 run kernel
    unsigned SkipKernels = 0;    // run kernels by kind
    unsigned CopyKernels = 0;
    unsigned ConstAppendKernels = 0;
    unsigned AccelBytes = 0;     // total bytes covered by run kernels
    unsigned NibbleKernels = 0;  // run kernels with a shufti encoding
    unsigned WideStates = 0;     // states with a wide-domain table
    unsigned WideMemoClasses = 0;
    unsigned WideProgramClasses = 0;
    unsigned WideRejectClasses = 0;
    uint64_t WideMemoElements = 0; // elements resolved to memoized effects
    unsigned SpecPairs = 0;        // two-state speculative pairs
  };

  /// Builds the plan for \p A as compiled into \p T.  Always succeeds: a
  /// state that cannot be tabulated simply stays on the bytecode path.
  static FastPathPlan build(const Bst &A, const CompiledTransducer &T,
                            const FastPathOptions &Opts = {});

  struct Action {
    enum class Kind : uint8_t {
      Fallback, // run the state's bytecode program for this element
      Reject,   // Undef leaf
      Jump,     // no emits, no register writes: just change state
      Const,    // emit constants, write constants, change state
      Program   // straight-line bytecode for one leaf (register-reading
                // outputs/updates under input-only guards)
    };
    Kind K = Kind::Fallback;
    uint32_t Target = 0;                               // Jump / Const
    std::vector<uint64_t> Emits;                       // Const
    std::vector<std::pair<uint16_t, uint64_t>> Writes; // Const: slot <- imm
    VmProgram Code;                                    // Program
  };

  struct StateTable {
    bool HasTable = false;
    /// byte -> index into Actions; all 256 entries valid (padding bytes
    /// dispatch to the Fallback action at index 0).
    std::array<uint16_t, 256> Dispatch{};
    std::vector<Action> Actions;
    /// byte -> index into Runs, or NoRun.  Checked before Dispatch: a hit
    /// consumes the whole run span in one kernel application.  Filled for
    /// every table state (all NoRun when acceleration is disabled).
    std::array<uint8_t, 256> RunId{};
    std::vector<RunKernel> Runs;
    /// byte -> index into Specs, or NoRun.  Checked after RunId, before
    /// Dispatch: a hit probes for an alternating two-state span.
    std::array<uint8_t, 256> SpecId{};
    std::vector<SpecPair> Specs;
    /// Wide-domain table for elements in [256, Wide.Limit); Has=false
    /// when the input width is <= 8 or > 16 or wide tables are disabled.
    WideTable Wide;
  };

  unsigned numStates() const { return unsigned(States.size()); }
  bool stateHasTable(unsigned Q) const {
    return Q < States.size() && States[Q].HasTable;
  }
  const Stats &stats() const { return S; }

  /// Table introspection for the equivalence checker
  /// (verify/EquivChecker.h): the checker re-derives the expected action
  /// of every byte from the bytecode and compares it against these
  /// entries, so it reads the plan exactly as the driver loop does.
  const StateTable &stateTable(unsigned Q) const { return States[Q]; }

  /// Testing hook: mutable access to one state's table, so
  /// mutation-injection suites can corrupt a dispatch entry or a run
  /// kernel in-memory and assert the checker produces a counterexample.
  /// Never used by production code paths.
  StateTable &mutableStateTable(unsigned Q) { return States[Q]; }

private:
  friend class FastPathCursor;

  std::vector<StateTable> States;
  Stats S;
};

/// Streaming executor: the mixed-mode driver loop.  Holds a bytecode
/// cursor for fallback states/elements and for finalizers, so its
/// observable behavior (outputs, rejection, state) is byte-identical to
/// CompiledTransducer::Cursor fed one element at a time.
class FastPathCursor {
public:
  /// Cumulative run-acceleration telemetry (spans driven through kernels
  /// and the elements they consumed); surfaced by StreamSession /
  /// efc-serve --stats.
  struct RunCounters {
    uint64_t Runs = 0;
    uint64_t RunElements = 0;
    /// Elements resolved through the wide-domain memo/program tables
    /// instead of per-element bytecode.
    uint64_t WideElements = 0;
    /// Speculative alternating spans taken, and elements they consumed.
    uint64_t SpecRuns = 0;
    uint64_t SpecElements = 0;
  };

  FastPathCursor(const FastPathPlan &P, const CompiledTransducer &T)
      : Plan(&P), Inner(T) {}

  void reset() {
    Inner.reset();
    RC = RunCounters();
  }

  /// Feeds a chunk of elements; outputs are appended to \p Out (bulk
  /// reserved).  Returns false when the transducer rejects.
  bool feed(std::span<const uint64_t> In, std::vector<uint64_t> &Out);

  /// Feeds one element.
  bool feed(uint64_t X, std::vector<uint64_t> &Out) {
    return feed(std::span<const uint64_t>(&X, 1), Out);
  }

  /// Runs the finalizer; returns false on rejection.
  bool finish(std::vector<uint64_t> &Out) { return Inner.finish(Out); }

  unsigned state() const { return Inner.state(); }

  /// Suspend/resume for the data-parallel executor: expose the register
  /// file and allow restoring a cursor to an arbitrary stream position's
  /// (state, registers) pair without disturbing the run counters.
  std::span<const uint64_t> regSlots() const { return Inner.regSlots(); }
  void restore(unsigned State, std::span<const uint64_t> Regs) {
    Inner.restore(State, Regs);
  }

  const RunCounters &runCounters() const { return RC; }

private:
  const FastPathPlan *Plan;
  CompiledTransducer::Cursor Inner;
  RunCounters RC;
};

/// Whole-input transduction through the fast path; std::nullopt on
/// rejection.  Semantically identical to CompiledTransducer::run.
std::optional<std::vector<uint64_t>>
runFastPath(const FastPathPlan &P, const CompiledTransducer &T,
            std::span<const uint64_t> In);

} // namespace efc

#endif // EFC_VM_FASTPATH_H
