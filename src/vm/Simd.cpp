//===- vm/Simd.cpp - Runtime ISA level detection and override -------------===//

#include "vm/Simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace efc;

namespace {

simd::Level probe() {
#if defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports reads cpuid once per process under the hood
  // (libgcc caches the feature words).
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl"))
    return simd::Level::AVX512;
  if (__builtin_cpu_supports("avx2"))
    return simd::Level::AVX2;
  return simd::Level::SSE2; // x86-64 baseline
#else
  return simd::Level::Scalar;
#endif
}

std::atomic<int> GActive{-1};

int resolveActive() {
  simd::Level Det = simd::detectedLevel();
  simd::Level L = Det;
  if (const char *E = std::getenv("EFC_SIMD"); E && *E) {
    if (auto Req = simd::parseLevel(E)) {
      if (*Req > Det)
        std::fprintf(stderr,
                     "efc: EFC_SIMD=%s not supported by this machine, "
                     "using %s\n",
                     E, simd::levelName(Det));
      else
        L = *Req;
    } else {
      std::fprintf(stderr,
                   "efc: unrecognized EFC_SIMD=%s "
                   "(want scalar|sse2|avx2|avx512), using %s\n",
                   E, simd::levelName(Det));
    }
  }
  return int(L);
}

} // namespace

simd::Level simd::detectedLevel() {
  static const Level L = probe();
  return L;
}

simd::Level simd::activeLevel() {
  int L = GActive.load(std::memory_order_acquire);
  if (L < 0) {
    L = resolveActive();
    // Racing first calls resolve to the same value; last store wins.
    GActive.store(L, std::memory_order_release);
  }
  return Level(L);
}

const char *simd::levelName(Level L) {
  switch (L) {
  case Level::Scalar:
    return "scalar";
  case Level::SSE2:
    return "sse2";
  case Level::AVX2:
    return "avx2";
  case Level::AVX512:
    return "avx512";
  }
  return "?";
}

std::optional<simd::Level> simd::parseLevel(std::string_view S) {
  if (S == "scalar")
    return Level::Scalar;
  if (S == "sse2")
    return Level::SSE2;
  if (S == "avx2")
    return Level::AVX2;
  if (S == "avx512")
    return Level::AVX512;
  return std::nullopt;
}

simd::Level simd::setActiveLevelForTesting(Level L) {
  if (L > detectedLevel())
    L = detectedLevel();
  GActive.store(int(L), std::memory_order_release);
  return L;
}
