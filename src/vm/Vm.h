//===- vm/Vm.h - Compiled execution of BSTs ---------------------*- C++ -*-===//
///
/// \file
/// A register-slot bytecode VM for BSTs.  Rules compile to branchy
/// three-address programs over uint64 slots (register leaves live in fixed
/// slots); the driver loop executes one program per input element.  This
/// is the executable backend of the benchmark harness: the fused, method-
/// call and LINQ-style pipeline variants all run on this same substrate,
/// so their relative throughputs reflect the paper's comparison rather
/// than interpreter-vs-native artifacts (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef EFC_VM_VM_H
#define EFC_VM_VM_H

#include "bst/Bst.h"
#include "term/ScalarOps.h"

#include <cstdint>
#include <optional>
#include <string>
#include <span>
#include <vector>

namespace efc {

enum class VmOp : uint8_t {
  Const,   // dst = imm
  Mov,     // dst = a
  Add,     // dst = (a + b) & mask
  Sub,     // dst = (a - b) & mask
  Mul,     // dst = (a * b) & mask
  UDiv,    // dst = b ? a / b : mask
  URem,    // dst = b ? a % b : a
  Neg,     // dst = (-a) & mask
  And,     // dst = a & b
  Or,      // dst = a | b
  Xor,     // dst = a ^ b
  NotBits, // dst = (~a) & mask
  NotBool, // dst = a ^ 1
  Shl,     // dst = b < width ? (a << b) & mask : 0
  LShr,    // dst = b < width ? a >> b : 0
  AShr,    // dst = sext(a) >> min(b, width-1), masked
  Eq,      // dst = a == b
  Ult,     // dst = a < b
  Ule,     // dst = a <= b
  Slt,     // dst = sext(a) < sext(b)
  Sle,     // dst = sext(a) <= sext(b)
  SExt,    // dst = sign-extend a from width, masked to 64 bits
  Extract, // dst = (a >> imm) & mask
  Select,  // dst = a ? b : c
  Jz,      // if slot a == 0 jump to imm
  Jmp,     // jump to imm
  Emit,    // append slot a to the output
  Next,    // commit: state = imm, copy staged register slots, end element
  Reject,  // reject the input
  Accept,  // end of a finalizer program: accept
};

struct VmInstr {
  VmOp Op;
  uint8_t Width = 0; // operand bit width for masking / sign extension
  uint16_t Dst = 0;
  uint16_t A = 0, B = 0, C = 0;
  uint64_t Imm = 0;
};

/// One rule compiled to straight-line code with conditional jumps.
struct VmProgram {
  std::vector<VmInstr> Code;
};

/// Evaluates one pure (non-control, non-effect) instruction against the
/// slot array \p S and returns the destination value.  This is the single
/// definition of the VM's arithmetic: Cursor::exec stores its result, and
/// the parallel planner's per-byte abstract evaluation
/// (parallel/ChunkPlanner.cpp) calls it to fold input-only guards exactly
/// as the interpreter would — successor predictions can never drift from
/// execution.  \p I.Op must be one of Const..Select.
inline uint64_t evalVmPureOp(const VmInstr &I, const uint64_t *S) {
  switch (I.Op) {
  case VmOp::Const:
    return I.Imm;
  case VmOp::Mov:
    return S[I.A];
  case VmOp::Add:
    return maskTo(I.Width, S[I.A] + S[I.B]);
  case VmOp::Sub:
    return maskTo(I.Width, S[I.A] - S[I.B]);
  case VmOp::Mul:
    return maskTo(I.Width, S[I.A] * S[I.B]);
  case VmOp::UDiv:
    return S[I.B] ? S[I.A] / S[I.B] : maskTo(I.Width, ~uint64_t(0));
  case VmOp::URem:
    return S[I.B] ? S[I.A] % S[I.B] : S[I.A];
  case VmOp::Neg:
    return maskTo(I.Width, ~S[I.A] + 1);
  case VmOp::And:
    return S[I.A] & S[I.B];
  case VmOp::Or:
    return S[I.A] | S[I.B];
  case VmOp::Xor:
    return S[I.A] ^ S[I.B];
  case VmOp::NotBits:
    return maskTo(I.Width, ~S[I.A]);
  case VmOp::NotBool:
    return S[I.A] ^ 1;
  case VmOp::Shl:
    return S[I.B] >= I.Width ? 0 : maskTo(I.Width, S[I.A] << S[I.B]);
  case VmOp::LShr:
    return S[I.B] >= I.Width ? 0 : S[I.A] >> S[I.B];
  case VmOp::AShr: {
    int64_t V = toSigned(I.Width, S[I.A]);
    uint64_t Sh = S[I.B];
    return maskTo(I.Width,
                  Sh >= I.Width ? uint64_t(V < 0 ? -1 : 0) : uint64_t(V >> Sh));
  }
  case VmOp::Eq:
    return S[I.A] == S[I.B];
  case VmOp::Ult:
    return S[I.A] < S[I.B];
  case VmOp::Ule:
    return S[I.A] <= S[I.B];
  case VmOp::Slt:
    return uint64_t(toSigned(I.Width, S[I.A]) < toSigned(I.Width, S[I.B]));
  case VmOp::Sle:
    return uint64_t(toSigned(I.Width, S[I.A]) <= toSigned(I.Width, S[I.B]));
  case VmOp::SExt:
    return maskTo(uint8_t(I.Imm), uint64_t(toSigned(I.Width, S[I.A])));
  case VmOp::Extract:
    return maskTo(I.Width, S[I.A] >> I.Imm);
  case VmOp::Select:
    return S[I.A] ? S[I.B] : S[I.C];
  default:
    return 0; // control/effect ops never reach here
  }
}

/// Human-readable mnemonic for a VM opcode.
const char *vmOpName(VmOp Op);

/// Disassembles one program, one instruction per line.
std::string disassemble(const VmProgram &P);

class FastPathCursor;

/// Compiles a single rule of \p A with the same slot layout the full
/// compile() uses (register leaves in fixed slots, input at slot
/// numRegSlots(), temporaries above), so the resulting program can run on
/// a CompiledTransducer cursor for the same Bst.  Returns std::nullopt
/// when the input or output type is not scalar.  When \p MaxSlotOut is
/// non-null it receives the compiler's max-slot watermark; callers must
/// check MaxSlotOut + 1 <= numSlots() before executing the program on an
/// existing cursor.  Used by the byte-class fast path (vm/FastPath.h) to
/// build straight-line per-leaf programs.
std::optional<VmProgram> compileRuleProgram(const Bst &A, const Rule *R,
                                            bool IsFinalizer,
                                            unsigned *MaxSlotOut = nullptr);

/// A BST compiled for execution.  Input and output types must be scalar
/// (every pipeline stage in the paper is char/byte/int valued).
class CompiledTransducer {
public:
  /// Compiles \p A; returns std::nullopt when the input or output type is
  /// not scalar.
  static std::optional<CompiledTransducer> compile(const Bst &A);

  unsigned numStates() const { return unsigned(Delta.size()); }
  unsigned numRegSlots() const { return NumRegSlots; }
  unsigned numSlots() const { return NumSlots; }
  size_t codeSize() const;

  /// Bytecode introspection for the equivalence checker
  /// (verify/EquivChecker.h) and diagnostics: the compiled transition /
  /// finalizer program of one state, the initial control state, and the
  /// initial register-slot image (flattened in leaf order).
  const VmProgram &deltaProgram(unsigned Q) const { return Delta[Q]; }
  const VmProgram &finalizerProgram(unsigned Q) const { return Fin[Q]; }
  unsigned initialState() const { return InitState; }
  std::span<const uint64_t> initialRegs() const { return InitRegs; }

  /// Testing hook: mutable access to one state's transition program, so
  /// mutation-injection suites can corrupt a guard in-memory and assert
  /// the equivalence checker refutes the result.  Never used by
  /// production code paths.
  VmProgram &mutableDeltaProgram(unsigned Q) { return Delta[Q]; }

  /// Full disassembly of all state programs (diagnostics).
  std::string disassembleAll() const;

  /// Streaming execution state, used both by run() and by the push-based
  /// pipeline variants.
  class Cursor {
  public:
    explicit Cursor(const CompiledTransducer &T) : T(&T) { reset(); }

    void reset();

    /// Feeds one element; outputs are appended to \p Out.  Returns false
    /// when the transducer rejects.
    bool feed(uint64_t X, std::vector<uint64_t> &Out);

    /// Runs the finalizer; returns false on rejection.
    bool finish(std::vector<uint64_t> &Out);

    unsigned state() const { return State; }

    /// Suspend/resume hooks for the data-parallel executor
    /// (src/parallel/): a speculative lane is a cursor restored to an
    /// arbitrary (control state, register file) pair, and deferred
    /// effect replay re-runs individual leaf programs against patched
    /// registers.  restore() zeroes the temporaries; \p Regs must have
    /// numRegSlots() elements.
    void restore(unsigned NewState, std::span<const uint64_t> Regs);

    std::span<const uint64_t> regSlots() const {
      return {Slots.data(), T->NumRegSlots};
    }
    std::span<uint64_t> regSlots() { return {Slots.data(), T->NumRegSlots}; }

    /// Stages the input element the next program execution will read.
    void setInput(uint64_t X) { Slots[T->NumRegSlots] = X; }

    /// Executes one program (a delta leaf program or finalizer) against
    /// the current slot file; emits append to \p Out.  Returns false on
    /// Reject.  The caller is responsible for having staged the input
    /// element via setInput().
    bool execProgram(const VmProgram &P, std::vector<uint64_t> &Out) {
      return exec(P, Out);
    }

    /// execProgram plus a bitmask of the register slots the executed
    /// path actually wrote.  Register-guarded programs have
    /// path-dependent write sets; the speculative executor runs them
    /// concretely once their reads are known and needs the exact set of
    /// slots holding real values afterwards.
    bool execProgramTracked(const VmProgram &P, std::vector<uint64_t> &Out,
                            uint64_t &WrittenRegs);

  private:
    friend class efc::FastPathCursor;
    const CompiledTransducer *T;
    unsigned State = 0;
    std::vector<uint64_t> Slots;

    bool exec(const VmProgram &P, std::vector<uint64_t> &Out);
  };

  /// Whole-input transduction; std::nullopt on rejection.
  std::optional<std::vector<uint64_t>> run(std::span<const uint64_t> In) const;

private:
  friend class Cursor;
  friend class efc::FastPathCursor;
  std::vector<VmProgram> Delta;
  std::vector<VmProgram> Fin;
  unsigned InitState = 0;
  unsigned NumRegSlots = 0;
  unsigned NumSlots = 0; // total including temporaries
  std::vector<uint64_t> InitRegs;
};

} // namespace efc

#endif // EFC_VM_VM_H
