//===- vm/Pipeline.cpp ----------------------------------------------------===//

#include "vm/Pipeline.h"

using namespace efc;

namespace {

/// Source stage: enumerates a span.
class SourceEnumerator final : public Enumerator {
public:
  explicit SourceEnumerator(std::span<const uint64_t> In) : In(In) {}

  bool next(uint64_t &V) override {
    if (Pos >= In.size())
      return false;
    V = In[Pos++];
    return true;
  }
  bool failed() const override { return false; }

private:
  std::span<const uint64_t> In;
  size_t Pos = 0;
};

/// One transducer stage pulling from an upstream enumerator.
class StageEnumerator final : public Enumerator {
public:
  StageEnumerator(const CompiledTransducer &T, Enumerator &Upstream)
      : Cursor(T), Upstream(Upstream) {}

  bool next(uint64_t &V) override {
    while (BufPos >= Buffer.size()) {
      if (Failed || Upstream.failed()) {
        Failed = true;
        return false;
      }
      Buffer.clear();
      BufPos = 0;
      uint64_t X;
      if (Upstream.next(X)) {
        if (!Cursor.feed(X, Buffer)) {
          Failed = true;
          return false;
        }
      } else {
        if (Upstream.failed()) {
          Failed = true;
          return false;
        }
        if (Finished)
          return false;
        Finished = true;
        if (!Cursor.finish(Buffer)) {
          Failed = true;
          return false;
        }
        if (Buffer.empty())
          return false;
      }
    }
    V = Buffer[BufPos++];
    return true;
  }

  bool failed() const override { return Failed; }

private:
  CompiledTransducer::Cursor Cursor;
  Enumerator &Upstream;
  std::vector<uint64_t> Buffer;
  size_t BufPos = 0;
  bool Finished = false;
  bool Failed = false;
};

} // namespace

std::optional<std::vector<uint64_t>>
efc::runPullPipeline(const std::vector<const CompiledTransducer *> &Stages,
                     std::span<const uint64_t> In) {
  SourceEnumerator Source(In);
  std::vector<std::unique_ptr<StageEnumerator>> Chain;
  Enumerator *Up = &Source;
  for (const CompiledTransducer *T : Stages) {
    Chain.push_back(std::make_unique<StageEnumerator>(*T, *Up));
    Up = Chain.back().get();
  }
  std::vector<uint64_t> Out;
  uint64_t V;
  while (Up->next(V))
    Out.push_back(V);
  if (Up->failed())
    return std::nullopt;
  return Out;
}

PushPipeline::PushPipeline(std::vector<const CompiledTransducer *> S)
    : Stages(std::move(S)) {
  for (const CompiledTransducer *T : Stages) {
    Cursors.emplace_back(*T);
    Scratch.emplace_back();
  }
}

bool PushPipeline::push(size_t Stage, uint64_t V,
                        std::vector<uint64_t> &Out) {
  if (Stage == Stages.size()) {
    Out.push_back(V);
    return true;
  }
  std::vector<uint64_t> &Buf = Scratch[Stage];
  size_t Before = Buf.size();
  if (!Cursors[Stage].feed(V, Buf))
    return false;
  // Forward what this stage just produced, then shrink the buffer back.
  for (size_t I = Before; I < Buf.size(); ++I)
    if (!push(Stage + 1, Buf[I], Out))
      return false;
  Buf.resize(Before);
  return true;
}

bool PushPipeline::flush(size_t Stage, std::vector<uint64_t> &Out) {
  if (Stage == Stages.size())
    return true;
  std::vector<uint64_t> &Buf = Scratch[Stage];
  Buf.clear();
  if (!Cursors[Stage].finish(Buf))
    return false;
  for (uint64_t V : Buf)
    if (!push(Stage + 1, V, Out))
      return false;
  return flush(Stage + 1, Out);
}

bool PushPipeline::run(std::span<const uint64_t> In,
                       std::vector<uint64_t> &Out) {
  for (size_t I = 0; I < Cursors.size(); ++I) {
    Cursors[I].reset();
    Scratch[I].clear();
  }
  for (uint64_t V : In)
    if (!push(0, V, Out))
      return false;
  return flush(0, Out);
}

std::optional<std::vector<uint64_t>>
efc::runPushPipeline(const std::vector<const CompiledTransducer *> &Stages,
                     std::span<const uint64_t> In) {
  PushPipeline P(Stages);
  std::vector<uint64_t> Out;
  if (!P.run(In, Out))
    return std::nullopt;
  return Out;
}
