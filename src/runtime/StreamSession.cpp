//===- runtime/StreamSession.cpp ------------------------------------------===//

#include "runtime/StreamSession.h"

#include "parallel/Parallel.h"
#include "support/EnvParse.h"

#include <cstdlib>
#include <thread>

using namespace efc;
using namespace efc::runtime;

void StreamSession::bindMetrics() {
  namespace mx = metrics;
  auto &R = mx::Registry::instance();
  const char *Label = Kind == Backend::Vm     ? "backend=\"vm\""
                      : Kind == Backend::Fast ? "backend=\"fastpath\""
                                              : "backend=\"native\"";
  R.counter("efc_stream_sessions_total", "Stream sessions opened", Label)
      .inc();
  MBytesIn = &R.counter("efc_stream_bytes_in_total",
                        "Input bytes fed into stream sessions", Label);
  MBytesOut = &R.counter("efc_stream_bytes_out_total",
                         "Output bytes drained from stream sessions", Label);
  if (Kind == Backend::Fast) {
    MRuns = &R.counter("efc_fastpath_runs_total",
                       "Bulk spans driven through run kernels");
    MRunElems = &R.counter("efc_fastpath_run_elements_total",
                           "Elements consumed by run kernels");
  }
}

StreamSession StreamSession::overVm(const CompiledTransducer &T) {
  StreamSession S;
  S.Kind = Backend::Vm;
  S.Cur.emplace(T);
  S.bindMetrics();
  return S;
}

StreamSession StreamSession::overFast(const FastPathPlan &P,
                                      const CompiledTransducer &T) {
  StreamSession S;
  S.Kind = Backend::Fast;
  S.FCur.emplace(P, T);
  S.FPlan = &P;
  S.FVm = &T;
  S.bindMetrics();
  return S;
}

void StreamSession::enableParallel(const parallel::ParallelPlan &Plan,
                                   unsigned Threads, size_t MinBytes) {
  if (Kind != Backend::Fast || !Plan.eligible() || Threads < 2 || !MinBytes)
    return;
  ParPlan = &Plan;
  ParThreads = Threads;
  ParMinBytes = MinBytes;
}

std::optional<StreamSession>
StreamSession::overNative(const NativeTransducer &T) {
  if (!T.streamingAvailable())
    return std::nullopt;
  StreamSession S;
  S.Kind = Backend::Native;
  S.Nat = &T;
  S.NatState.assign(T.stateWords(), 0);
  T.streamInit(S.NatState.data());
  S.bindMetrics();
  return S;
}

std::optional<StreamSession>
StreamSession::open(std::shared_ptr<const CompiledPipeline> P, Backend B,
                    std::string *Err) {
  if (!P || !P->Vm) {
    if (Err)
      *Err = "no compiled pipeline";
    return std::nullopt;
  }
  std::optional<StreamSession> S;
  if (B == Backend::Vm) {
    S = overVm(*P->Vm);
  } else if (B == Backend::Fast) {
    // Entries always carry a plan; a hand-built CompiledPipeline without
    // one transparently degrades to plain bytecode.
    if (P->Fast)
      S = overFast(*P->Fast, *P->Vm);
    else
      S = overVm(*P->Vm);
  } else {
    std::string NErr;
    const NativeTransducer *N = P->native(&NErr);
    if (!N) {
      if (Err)
        *Err = "native backend unavailable: " + NErr;
      return std::nullopt;
    }
    S = overNative(*N);
    if (!S) {
      if (Err)
        *Err = "native artifact lacks streaming entry points";
      return std::nullopt;
    }
  }
  // Large feeds on the fast path can fan out across cores; the
  // threshold keeps ordinary streaming chunks on the sequential cursor.
  // EFC_PARALLEL_MIN_BYTES=0 disables (default 8 MB);
  // EFC_PARALLEL_THREADS defaults to min(4, hardware threads).
  if (S->Kind == Backend::Fast && P->Par && P->Par->eligible()) {
    size_t MinBytes =
        size_t(env::u64("EFC_PARALLEL_MIN_BYTES", 8u << 20, 0,
                        UINT64_MAX, /*Base=*/0));
    unsigned HW = std::thread::hardware_concurrency();
    unsigned Threads = std::min(4u, HW ? HW : 1u);
    Threads = unsigned(env::u64("EFC_PARALLEL_THREADS", Threads, 1, 1024));
    S->enableParallel(*P->Par, Threads, MinBytes);
  }
  S->Keep = std::move(P);
  return S;
}

void StreamSession::drain() {
  // Pipeline boundaries are byte valued (utf8-encode is the last stage),
  // so each emitted element is one output byte.
  Output.reserve(Output.size() + Staged.size());
  for (uint64_t V : Staged)
    Output.push_back(char(V));
  BytesOut += Staged.size();
  if (MBytesOut && !Staged.empty())
    MBytesOut->inc(Staged.size());
  Staged.clear();
  if (MRuns) {
    // Fold the cursor's local run counters as a delta, so counts survive
    // sessions that are dropped without finish().
    const auto &RC = FCur->runCounters();
    MRuns->inc(RC.Runs - FoldedRuns);
    MRunElems->inc(RC.RunElements - FoldedRunElems);
    FoldedRuns = RC.Runs;
    FoldedRunElems = RC.RunElements;
  }
}

bool StreamSession::feed(const void *Data, size_t N) {
  if (Rejected || Finished)
    return !Rejected && N == 0;
  BytesIn += N;
  if (MBytesIn)
    MBytesIn->inc(N);
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  if (Kind == Backend::Vm) {
    if (Staged.capacity() < N)
      Staged.reserve(N);
    for (size_t I = 0; I < N; ++I) {
      if (!Cur->feed(Bytes[I], Staged)) {
        Rejected = true;
        drain();
        return false;
      }
    }
  } else if (Kind == Backend::Fast) {
    // Widen into the reused chunk buffer so the cursor gets one
    // contiguous span per feed (the fast loop is chunk-oriented).
    Chunk.clear();
    Chunk.reserve(N);
    for (size_t I = 0; I < N; ++I)
      Chunk.push_back(Bytes[I]);
    if (ParPlan && N >= ParMinBytes) {
      // Large feed: suspend the cursor, run the chunk through the
      // data-parallel executor, resume at its exit state.  Output is
      // byte-identical to the sequential cursor by construction.
      unsigned St = FCur->state();
      std::span<const uint64_t> RS = FCur->regSlots();
      std::vector<uint64_t> Regs(RS.begin(), RS.end());
      parallel::ParallelOptions PO;
      PO.Threads = ParThreads;
      bool Ok =
          parallel::parallelFeed(*ParPlan, *FPlan, *FVm, St, Regs, Chunk,
                                 Staged, PO);
      FCur->restore(St, Regs);
      ++ParFeeds;
      if (!Ok) {
        Rejected = true;
        drain();
        return false;
      }
    } else if (!FCur->feed(Chunk, Staged)) {
      Rejected = true;
      drain();
      return false;
    }
  } else {
    Chunk.clear();
    Chunk.reserve(N);
    for (size_t I = 0; I < N; ++I)
      Chunk.push_back(Bytes[I]);
    if (!Nat->streamFeed(NatState.data(), Chunk.data(), Chunk.size(),
                         Staged)) {
      Rejected = true;
      drain();
      return false;
    }
  }
  drain();
  return true;
}

bool StreamSession::finish() {
  if (Rejected)
    return false;
  if (Finished)
    return true;
  Finished = true;
  bool Ok = Kind == Backend::Vm     ? Cur->finish(Staged)
            : Kind == Backend::Fast ? FCur->finish(Staged)
                                    : Nat->streamFinish(NatState.data(),
                                                        Staged);
  if (!Ok)
    Rejected = true;
  drain();
  return Ok;
}
