//===- runtime/PipelineCache.h - Compiled-pipeline cache --------*- C++ -*-===//
///
/// \file
/// First layer of the serving runtime (see DESIGN.md "Runtime
/// subsystem"): a pipeline *spec* — frontend kind + pattern + aggregate +
/// format + optimization flags — content-hashes to a cache key, and the
/// cache holds the expensive derived artifacts behind that key:
///
///   * the fused + RBBE'd (+ minimized) BST,
///   * its bytecode-VM compilation, and
///   * lazily, the dlopen'd native .so (whose build is additionally
///     backed by NativeTransducer's on-disk artifact cache, so a warm
///     disk cache never invokes the host compiler).
///
/// Lookups are single-flight: N concurrent requests for the same spec
/// trigger exactly one fusion and at most one host-compiler invocation;
/// the others block until the artifact is published.  Eviction is LRU.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_RUNTIME_PIPELINECACHE_H
#define EFC_RUNTIME_PIPELINECACHE_H

#include "bst/Bst.h"
#include "bst/Minimize.h"
#include "codegen/NativeCompile.h"
#include "fusion/Fusion.h"
#include "pipeline/PassManager.h"
#include "rbbe/Rbbe.h"
#include "parallel/ChunkPlanner.h"
#include "verify/EquivChecker.h"
#include "vm/FastPath.h"
#include "vm/Vm.h"

#include <chrono>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace efc::runtime {

/// Everything that determines a compiled pipeline's semantics.  The
/// pipeline shape mirrors efcc: utf8-decode → extract (regex capture or
/// XPath contents, parsed as decimal ints) → aggregate → format →
/// utf8-encode.
struct PipelineSpec {
  enum class Frontend { Regex, XPath };
  Frontend Kind = Frontend::Regex;
  std::string Pattern;          ///< regex pattern or XPath query
  std::string Agg = "none";     ///< max | min | avg | none
  std::string Format = "lines"; ///< decimal | lines | sql
  bool Rbbe = true;             ///< reachability-based branch elimination
  bool Minimize = false;        ///< control-state minimization
  /// RBBE solver-check budget override; 0 keeps RbbeOptions'
  /// MaxSolverChecks default.  Serialized (and therefore part of the
  /// cache key / wire format) only when non-zero, so existing keys and
  /// OPEN frames are unchanged.
  uint64_t RbbeBudget = 0;

  bool operator==(const PipelineSpec &) const = default;

  /// Stable serialization, `key=value` lines; the cache key and the wire
  /// format of efc-serve OPEN frames.
  std::string canonical() const;
  /// FNV-1a of canonical() (used for artifact tags and diagnostics).
  uint64_t hash() const;
  /// Inverse of canonical(); unknown keys and malformed values are
  /// rejected with a message in \p Err.
  static std::optional<PipelineSpec> parse(const std::string &Text,
                                           std::string *Err = nullptr);
};

/// Builds the unfused stage chain for \p Spec in \p Ctx (the shared
/// assembly used by efcc and the cache).  std::nullopt + \p Err when the
/// pattern does not compile or an enum field is unknown.
std::optional<std::vector<Bst>> assembleStages(const PipelineSpec &Spec,
                                               TermContext &Ctx,
                                               std::string *Err = nullptr);

/// A fully built cache entry.  Immutable after publication except for
/// the lazily-built native artifact (internally synchronized).
class CompiledPipeline {
public:
  PipelineSpec Spec;
  /// Owns the TermContext the artifacts' terms live in plus the lock
  /// serializing term creation there.  Shared with the per-pass artifact
  /// cache: entries whose upstream passes hit the cache alias the same
  /// chain (and the same Bst) rather than re-deriving it.
  std::shared_ptr<pipeline::IrChain> Chain;
  std::shared_ptr<TermContext> Ctx; ///< == Chain->Ctx (convenience alias)
  std::shared_ptr<const Bst> Fused; ///< fused, optimized per Spec
  std::shared_ptr<const CompiledTransducer> Vm;
  /// Byte-class dispatch tables over Vm (vm/FastPath.h); built with every
  /// entry — states the analysis cannot tabulate just stay on bytecode.
  std::shared_ptr<const FastPathPlan> Fast;
  /// Data-parallel chunking plan over Fast (parallel/ChunkPlanner.h):
  /// per-byte plausible-successor sets and per-action register
  /// footprints.  Built with every entry; ineligible plans make
  /// parallelFeed degrade to the sequential fast path.
  std::shared_ptr<const parallel::ParallelPlan> Par;

  FusionStats FStats;
  RbbeStats RStats;
  MinimizeStats MStats;
  size_t NumStages = 0;
  /// One row per compile pass (pass name, in/out IR hash, seconds,
  /// cache-hit flag) — `efcc --explain-passes` and diagnostics.
  std::vector<pipeline::PassRun> PassRuns;
  double BuildSeconds = 0; ///< fusion + optimization + VM compile

  /// Backend-equivalence certification verdict for this entry (see
  /// verify/EquivChecker.h).  Unchecked unless EFC_CERTIFY=1 at build
  /// time; with certification on, a Refuted verdict is a cache-admission
  /// failure — the entry is never published, so nothing refuted ever
  /// serves.  Unverified (budget exhaustion) entries serve normally; the
  /// degradation is visible here and in the cache counters.
  verify::CertStatus Cert = verify::CertStatus::Unchecked;
  std::string CertSummary;   ///< CertReport::summary() one-liner
  double CertifySeconds = 0; ///< certification wall time
  unsigned CertTimeouts = 0; ///< per-state budget exhaustions

  /// How a native() call was satisfied (for cache counters).
  enum class NativeOutcome {
    Ready,    ///< already resident in this entry
    Compiled, ///< host compiler invoked now
    DiskHit,  ///< loaded from the on-disk artifact cache
    Failed,   ///< no compiler / compile error (negative-cached)
  };

  /// The native artifact, built at most once per entry (thread-safe).
  /// nullptr when unavailable.  A *transient* failure (toolchain missing,
  /// disk full — NativeCompileInfo::Transient) is re-attempted after a
  /// backoff rather than cached forever: the delay starts at
  /// EFC_NATIVE_RETRY_MS milliseconds (default 1000, 0 = retry
  /// immediately) and doubles per consecutive failure, capped at 64x.
  /// Non-transient errors stay sticky for the life of the entry.
  const NativeTransducer *native(std::string *Err = nullptr,
                                 NativeOutcome *Outcome = nullptr,
                                 NativeCompileInfo *Info = nullptr) const;

private:
  mutable std::mutex NativeMu;
  mutable bool NativeTried = false;
  mutable std::optional<NativeTransducer> Native;
  mutable NativeCompileInfo NInfo;
  mutable std::string NativeErr;
  mutable unsigned NativeFailures = 0; ///< consecutive transient failures
  mutable std::chrono::steady_clock::time_point NativeRetryAt{};
};

/// In-memory LRU of CompiledPipelines with single-flight builds.
class PipelineCache {
public:
  struct Stats {
    uint64_t Hits = 0;         ///< served from memory
    uint64_t Misses = 0;       ///< triggered a build
    uint64_t Coalesced = 0;    ///< waited on another caller's build
    uint64_t NegativeHits = 0; ///< served a cached spec *error*
    uint64_t Evictions = 0;
    uint64_t Builds = 0;         ///< fusions performed
    uint64_t NativeCompiles = 0; ///< host-compiler invocations
    uint64_t NativeDiskHits = 0; ///< .so served from the artifact cache
    double BuildSeconds = 0;     ///< cumulative fusion+opt+VM time
    double NativeCompileMs = 0;  ///< cumulative host-compiler time
    uint64_t FastTableStates = 0; ///< fast-path plan stats, summed over
    uint64_t FastAccelStates = 0; ///< built entries (coverage telemetry)
    uint64_t FastRunKernels = 0;
    uint64_t FastNibbleKernels = 0; ///< kernels with a shufti encoding
    uint64_t FastWideStates = 0;    ///< states with a wide-domain table
    uint64_t FastSpecPairs = 0;     ///< speculative alternating pairs
    uint64_t ParEligible = 0; ///< builds whose parallel plan is usable
    uint64_t CertCertified = 0;  ///< builds certified end-to-end
    uint64_t CertUnverified = 0; ///< builds degraded by budget/Unknown
    uint64_t CertRefuted = 0;    ///< builds rejected at admission
    uint64_t CertTimeouts = 0;   ///< per-state budget exhaustions, summed
    std::string str() const; ///< one-line rendering for stats dumps
  };

  explicit PipelineCache(size_t Capacity = 32);

  /// Returns the entry for \p Spec, building it at most once across all
  /// concurrent callers.  With \p WantNative, also ensures the native
  /// artifact exists (a VM-only entry is upgraded in place; failure to
  /// native-compile fails only native requests).  nullptr + \p Err when
  /// the spec is invalid or the build failed.
  std::shared_ptr<const CompiledPipeline>
  get(const PipelineSpec &Spec, bool WantNative = false,
      std::string *Err = nullptr);

  Stats stats() const;
  size_t size() const;

private:
  /// Single-flight slot: holds either the build-in-progress marker or
  /// the published entry / error.
  struct Slot {
    bool Building = true;
    std::shared_ptr<CompiledPipeline> Ready;
    std::string Error;
    std::condition_variable Cv;
  };
  struct MapEntry {
    std::shared_ptr<Slot> S;
    std::list<std::string>::iterator LruIt;
  };

  void touch(MapEntry &E);
  void evictOverflow(); ///< caller holds Mu

  mutable std::mutex Mu;
  size_t Capacity;
  std::list<std::string> Lru; ///< front = most recently used key
  std::unordered_map<std::string, MapEntry> Map;
  Stats Counters;
};

} // namespace efc::runtime

#endif // EFC_RUNTIME_PIPELINECACHE_H
