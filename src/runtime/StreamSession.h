//===- runtime/StreamSession.h - Incremental pipeline execution -*- C++ -*-===//
///
/// \file
/// Second layer of the serving runtime: a long-lived execution of one
/// compiled pipeline over a byte stream that arrives in chunks.  feed()
/// consumes an arbitrary slice of input (any boundary, including
/// mid-UTF-8-sequence and single bytes) and stages whatever output bytes
/// the transducer emits; finish() runs the finalizer.  For any split of
/// an input into chunks, the concatenated drained output is byte-
/// identical to one-shot CompiledTransducer::run / NativeTransducer::run
/// over the whole input — the suspended state (control state + register
/// leaves) carries everything between calls.
///
/// Backends: the bytecode VM (CompiledTransducer::Cursor), the mixed-mode
/// byte-class fast path (vm/FastPath.h, the default), and the native .so
/// (the *_feed/*_finish suspend/resume entry points generated under
/// CodeGenOptions::EmitStreaming).
///
//===----------------------------------------------------------------------===//

#ifndef EFC_RUNTIME_STREAMSESSION_H
#define EFC_RUNTIME_STREAMSESSION_H

#include "runtime/PipelineCache.h"
#include "support/Metrics.h"
#include "vm/Vm.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace efc::runtime {

class StreamSession {
public:
  enum class Backend { Vm, Fast, Native };

  /// Opens a session over a cache entry (shared ownership keeps the
  /// entry alive across evictions).  The native backend requires the
  /// entry's artifact to export the streaming symbols.
  static std::optional<StreamSession>
  open(std::shared_ptr<const CompiledPipeline> P, Backend B,
       std::string *Err = nullptr);

  /// Borrowing constructors for tests and embedding; the caller keeps
  /// the transducer alive for the session's lifetime.
  static StreamSession overVm(const CompiledTransducer &T);
  static StreamSession overFast(const FastPathPlan &P,
                                const CompiledTransducer &T);
  static std::optional<StreamSession> overNative(const NativeTransducer &T);

  /// Consumes \p N input bytes.  Returns false once the pipeline has
  /// rejected the stream (sticky; later calls keep returning false).
  bool feed(const void *Data, size_t N);
  bool feed(std::string_view Bytes) {
    return feed(Bytes.data(), Bytes.size());
  }

  /// Runs the finalizer.  Idempotent; false when the stream was
  /// rejected (by a feed or by the finalizer itself).
  bool finish();

  bool rejected() const { return Rejected; }
  bool finished() const { return Finished; }
  Backend backend() const { return Kind; }

  /// Drains the output bytes produced since the last drain.
  std::string takeOutput() { return std::move(Output); }
  const std::string &output() const { return Output; }

  uint64_t bytesIn() const { return BytesIn; }
  uint64_t bytesOut() const { return BytesOut; }

  /// Run-acceleration telemetry (fast-path backend only; zero elsewhere):
  /// bulk spans driven through run kernels and the elements they consumed.
  uint64_t fastRuns() const {
    return FCur ? FCur->runCounters().Runs : 0;
  }
  uint64_t fastRunElements() const {
    return FCur ? FCur->runCounters().RunElements : 0;
  }
  /// Wide-domain table hits (elements >= 256 served from memo pools) and
  /// two-state speculative alternating spans.
  uint64_t fastWideElements() const {
    return FCur ? FCur->runCounters().WideElements : 0;
  }
  uint64_t fastSpecRuns() const {
    return FCur ? FCur->runCounters().SpecRuns : 0;
  }
  uint64_t fastSpecElements() const {
    return FCur ? FCur->runCounters().SpecElements : 0;
  }

  /// Arms data-parallel execution for large feeds (fast-path backend
  /// only; ignored elsewhere).  A single feed() of at least \p MinBytes
  /// runs through the parallel executor with \p Threads workers and
  /// resumes the sequential cursor at the resulting (state, registers).
  /// open() arms this automatically from EFC_PARALLEL_MIN_BYTES /
  /// EFC_PARALLEL_THREADS when the entry's plan is eligible.
  void enableParallel(const parallel::ParallelPlan &Plan, unsigned Threads,
                      size_t MinBytes);

  /// Feeds served by the parallel executor so far.
  uint64_t parallelFeeds() const { return ParFeeds; }

private:
  StreamSession() = default;

  void drain(); ///< moves staged elements into Output as bytes
  void bindMetrics(); ///< resolves per-backend registry counters once

  Backend Kind = Backend::Vm;
  std::shared_ptr<const CompiledPipeline> Keep;

  // VM backend.
  std::optional<CompiledTransducer::Cursor> Cur;

  // Fast-path backend.
  std::optional<FastPathCursor> FCur;
  const FastPathPlan *FPlan = nullptr;
  const CompiledTransducer *FVm = nullptr;

  // Data-parallel large-feed execution (see enableParallel).
  const parallel::ParallelPlan *ParPlan = nullptr;
  unsigned ParThreads = 0;
  size_t ParMinBytes = 0;
  uint64_t ParFeeds = 0;

  // Native backend.
  const NativeTransducer *Nat = nullptr;
  std::vector<uint64_t> NatState;
  std::vector<uint64_t> Chunk; ///< reused element-widening buffer

  std::vector<uint64_t> Staged;
  std::string Output;
  bool Rejected = false;
  bool Finished = false;
  uint64_t BytesIn = 0, BytesOut = 0;

  // Registry counters, resolved once per session (bindMetrics) and
  // bumped per feed chunk — never per element.  Raw pointers into the
  // append-only registry, so copies/moves of the session stay valid.
  metrics::Counter *MBytesIn = nullptr;
  metrics::Counter *MBytesOut = nullptr;
  metrics::Counter *MRuns = nullptr;
  metrics::Counter *MRunElems = nullptr;
  uint64_t FoldedRuns = 0, FoldedRunElems = 0; ///< already in the registry
};

} // namespace efc::runtime

#endif // EFC_RUNTIME_STREAMSESSION_H
