//===- runtime/NetBuffers.cpp ---------------------------------------------===//

#include "runtime/NetBuffers.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/uio.h>

using namespace efc::runtime;

void InputSlab::reserveWritable(size_t N) {
  if (Buf.size() - Tail >= N)
    return;
  size_t Live = Tail - Head;
  // Compact first: if sliding the unparsed remainder to the front frees
  // enough room, no allocation happens.  memmove, not memcpy — the
  // ranges overlap whenever less than half the slab is consumed.
  if (Head > 0) {
    std::memmove(Buf.data(), Buf.data() + Head, Live);
    Head = 0;
    Tail = Live;
    if (Buf.size() - Tail >= N)
      return;
  }
  size_t Want = Tail + N;
  size_t Cap = std::max<size_t>(Buf.size() ? Buf.size() * 2 : 4096, Want);
  Buf.resize(Cap);
}

InputSlab::ParseResult InputSlab::nextFrame(size_t MaxFrame,
                                            std::string_view *Out) const {
  size_t Avail = Tail - Head;
  if (Avail < 4)
    return ParseResult::NeedMore;
  const unsigned char *H =
      reinterpret_cast<const unsigned char *>(Buf.data() + Head);
  uint32_t Len = uint32_t(H[0]) | (uint32_t(H[1]) << 8) |
                 (uint32_t(H[2]) << 16) | (uint32_t(H[3]) << 24);
  if (Len > MaxFrame)
    return ParseResult::TooLarge;
  if (Avail < 4 + size_t(Len))
    return ParseResult::NeedMore;
  *Out = std::string_view(Buf.data() + Head + 4, Len);
  return ParseResult::Frame;
}

void OutQueue::push(char Status, std::string_view Name, std::string &&Body,
                    std::string_view Sess) {
  OutMsg M;
  uint32_t Len = uint32_t(2 + Name.size() + Body.size());
  M.Prefix.reserve(4 + 2 + Name.size());
  M.Prefix.push_back(char(Len & 0xFF));
  M.Prefix.push_back(char((Len >> 8) & 0xFF));
  M.Prefix.push_back(char((Len >> 16) & 0xFF));
  M.Prefix.push_back(char((Len >> 24) & 0xFF));
  M.Prefix.push_back(Status);
  M.Prefix.append(Name.data(), Name.size());
  M.Prefix.push_back('\n');
  M.Body = std::move(Body);
  M.Sess.assign(Sess.data(), Sess.size());
  Bytes += M.Prefix.size() + M.Body.size();
  Q.push_back(std::move(M));
}

OutQueue::FlushResult OutQueue::flush(int Fd, uint64_t *WroteOut,
                                      unsigned MaxIov) {
  while (!Q.empty()) {
    iovec Iov[64];
    unsigned N = 0;
    unsigned Cap = std::min<unsigned>(MaxIov, 64);
    for (const OutMsg &M : Q) {
      if (N + 2 > Cap)
        break;
      size_t Off = M.Off;
      if (Off < M.Prefix.size()) {
        Iov[N].iov_base = const_cast<char *>(M.Prefix.data()) + Off;
        Iov[N].iov_len = M.Prefix.size() - Off;
        ++N;
        Off = 0;
      } else {
        Off -= M.Prefix.size();
      }
      if (Off < M.Body.size()) {
        Iov[N].iov_base = const_cast<char *>(M.Body.data()) + Off;
        Iov[N].iov_len = M.Body.size() - Off;
        ++N;
      }
    }
    if (N == 0) { // fully-written empty-body edge: retire and continue
      Bytes -= Q.front().Prefix.size() + Q.front().Body.size();
      Q.pop_front();
      continue;
    }
    msghdr Msg{};
    Msg.msg_iov = Iov;
    Msg.msg_iovlen = N;
    ssize_t W = ::sendmsg(Fd, &Msg, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return FlushResult::Blocked;
      return FlushResult::Error;
    }
    if (WroteOut)
      *WroteOut += uint64_t(W);
    size_t Left = size_t(W);
    while (Left && !Q.empty()) {
      OutMsg &M = Q.front();
      size_t Total = M.Prefix.size() + M.Body.size();
      size_t Take = std::min(Left, Total - M.Off);
      M.Off += Take;
      Left -= Take;
      if (M.Off == Total) {
        Bytes -= Total;
        Q.pop_front();
      }
    }
  }
  return FlushResult::Drained;
}

size_t OutQueue::dropAll(std::vector<std::string> *LostSessions) {
  size_t N = Q.size();
  for (OutMsg &M : Q)
    if (LostSessions && !M.Sess.empty() &&
        std::find(LostSessions->begin(), LostSessions->end(), M.Sess) ==
            LostSessions->end())
      LostSessions->push_back(std::move(M.Sess));
  Q.clear();
  Bytes = 0;
  return N;
}
