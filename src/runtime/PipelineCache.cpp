//===- runtime/PipelineCache.cpp ------------------------------------------===//

#include "runtime/PipelineCache.h"

#include "frontends/regex/RegexFrontend.h"
#include "frontends/xpath/XPathFrontend.h"
#include "solver/Solver.h"
#include "stdlib/Transducers.h"
#include "support/EnvParse.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"
#include "support/Trace.h"
#include "vm/Simd.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace efc;
using namespace efc::runtime;

//===----------------------------------------------------------------------===//
// PipelineSpec
//===----------------------------------------------------------------------===//

std::string PipelineSpec::canonical() const {
  std::string S;
  S += "frontend=";
  S += Kind == Frontend::Regex ? "regex" : "xpath";
  S += "\npattern=" + Pattern;
  S += "\nagg=" + Agg;
  S += "\nformat=" + Format;
  S += "\nrbbe=";
  S += Rbbe ? '1' : '0';
  S += "\nminimize=";
  S += Minimize ? '1' : '0';
  S += "\n";
  // Emitted only when non-default so pre-existing cache keys and OPEN
  // wire frames are byte-identical.
  if (RbbeBudget != 0)
    S += "rbbe_budget=" + std::to_string(RbbeBudget) + "\n";
  return S;
}

uint64_t PipelineSpec::hash() const {
  std::string C = canonical();
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char Ch : C) {
    H ^= Ch;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::optional<PipelineSpec> PipelineSpec::parse(const std::string &Text,
                                                std::string *Err) {
  auto Fail = [&](const std::string &M) -> std::optional<PipelineSpec> {
    if (Err)
      *Err = M;
    return std::nullopt;
  };
  PipelineSpec Spec;
  bool SawFrontend = false, SawPattern = false;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string Line = Text.substr(
        Pos, Eol == std::string::npos ? std::string::npos : Eol - Pos);
    Pos = Eol == std::string::npos ? Text.size() : Eol + 1;
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return Fail("malformed spec line: " + Line);
    std::string Key = Line.substr(0, Eq), Val = Line.substr(Eq + 1);
    if (Key == "frontend") {
      if (Val == "regex")
        Spec.Kind = Frontend::Regex;
      else if (Val == "xpath")
        Spec.Kind = Frontend::XPath;
      else
        return Fail("unknown frontend '" + Val + "'");
      SawFrontend = true;
    } else if (Key == "pattern") {
      Spec.Pattern = Val;
      SawPattern = true;
    } else if (Key == "agg") {
      Spec.Agg = Val;
    } else if (Key == "format") {
      Spec.Format = Val;
    } else if (Key == "rbbe") {
      Spec.Rbbe = Val != "0";
    } else if (Key == "minimize") {
      Spec.Minimize = Val != "0";
    } else if (Key == "rbbe_budget") {
      if (!env::parseU64(Val.c_str(), Spec.RbbeBudget))
        return Fail("malformed rbbe_budget '" + Val + "'");
    } else {
      return Fail("unknown spec key '" + Key + "'");
    }
  }
  if (!SawFrontend || !SawPattern)
    return Fail("spec needs frontend= and pattern=");
  if (Spec.Agg != "max" && Spec.Agg != "min" && Spec.Agg != "avg" &&
      Spec.Agg != "none")
    return Fail("unknown agg '" + Spec.Agg + "'");
  if (Spec.Format != "decimal" && Spec.Format != "lines" &&
      Spec.Format != "sql")
    return Fail("unknown format '" + Spec.Format + "'");
  return Spec;
}

//===----------------------------------------------------------------------===//
// Stage assembly (shared with efcc)
//===----------------------------------------------------------------------===//

std::optional<std::vector<Bst>>
efc::runtime::assembleStages(const PipelineSpec &Spec, TermContext &Ctx,
                             std::string *Err) {
  auto Fail = [&](const std::string &M) -> std::optional<std::vector<Bst>> {
    if (Err)
      *Err = M;
    return std::nullopt;
  };
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeUtf8Decode2(Ctx));
  Bst ToInt = lib::makeToInt(Ctx);
  if (Spec.Kind == PipelineSpec::Frontend::Regex) {
    fe::RegexBstResult R =
        fe::buildRegexBst(Ctx, Spec.Pattern, {{"v", &ToInt}});
    if (!R.Result)
      return Fail("regex error: " + R.Error);
    Stages.push_back(std::move(*R.Result));
  } else {
    fe::XPathBstResult R = fe::buildXPathBst(Ctx, Spec.Pattern, ToInt);
    if (!R.Result)
      return Fail("xpath error: " + R.Error);
    Stages.push_back(std::move(*R.Result));
  }
  if (Spec.Agg == "max")
    Stages.push_back(lib::makeMax(Ctx));
  else if (Spec.Agg == "min")
    Stages.push_back(lib::makeMin(Ctx));
  else if (Spec.Agg == "avg")
    Stages.push_back(lib::makeAverage(Ctx));
  else if (Spec.Agg != "none")
    return Fail("unknown agg '" + Spec.Agg + "'");
  if (Spec.Format == "decimal")
    Stages.push_back(lib::makeIntToDecimal(Ctx));
  else if (Spec.Format == "lines")
    Stages.push_back(lib::makeIntToDecimalLines(Ctx));
  else if (Spec.Format == "sql")
    Stages.push_back(lib::makeIntWrap(Ctx, "INSERT INTO t VALUES (", ");\n"));
  else
    return Fail("unknown format '" + Spec.Format + "'");
  Stages.push_back(lib::makeUtf8Encode(Ctx));
  return Stages;
}

//===----------------------------------------------------------------------===//
// CompiledPipeline
//===----------------------------------------------------------------------===//

const NativeTransducer *
CompiledPipeline::native(std::string *Err, NativeOutcome *Outcome,
                         NativeCompileInfo *Info) const {
  std::lock_guard<std::mutex> L(NativeMu);
  bool Attempt = !NativeTried;
  if (NativeTried && !Native && NInfo.Transient &&
      std::chrono::steady_clock::now() >= NativeRetryAt) {
    // Transient failure past its backoff window: try again instead of
    // serving the stale error forever (a disk-full or OOM'd cc would
    // otherwise poison this spec for the cache's lifetime).
    Attempt = true;
    static metrics::Counter &Retries = metrics::Registry::instance().counter(
        "efc_native_retries_total",
        "Native compiles re-attempted after a transient failure");
    Retries.inc();
  }
  if (Attempt) {
    NativeTried = true;
    NativeErr.clear();
    char Tag[32];
    snprintf(Tag, sizeof(Tag), "p%016llx", (unsigned long long)Spec.hash());
    {
      // Codegen walks Fused's rule trees and may intern terms in the
      // shared TermContext; serialize with any concurrent pass run on
      // the same chain.  Lock order NativeMu -> Chain->Mu has no cycle:
      // the pass manager never calls native().
      std::unique_lock<std::mutex> ChainLock;
      if (Chain)
        ChainLock = std::unique_lock(Chain->Mu);
      Native = NativeTransducer::compile(*Fused, Tag, &NativeErr, &NInfo);
    }
    if (!Native && NInfo.Transient) {
      long BaseMs =
          long(env::i64("EFC_NATIVE_RETRY_MS", 1000, 0, 1 << 30));
      unsigned Shift = NativeFailures < 6 ? NativeFailures : 6;
      NativeRetryAt = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(BaseMs << Shift);
      ++NativeFailures;
    } else if (Native) {
      NativeFailures = 0;
    }
    if (Outcome)
      *Outcome = !Native              ? NativeOutcome::Failed
                 : NInfo.DiskCacheHit ? NativeOutcome::DiskHit
                                      : NativeOutcome::Compiled;
  } else if (Outcome) {
    *Outcome = Native ? NativeOutcome::Ready : NativeOutcome::Failed;
  }
  if (Info)
    *Info = NInfo;
  if (!Native) {
    if (Err)
      *Err = NativeErr;
    return nullptr;
  }
  return &*Native;
}

//===----------------------------------------------------------------------===//
// PipelineCache
//===----------------------------------------------------------------------===//

namespace {

/// Registry mirrors of PipelineCache::Stats.
struct CacheMetrics {
  metrics::Counter &Hits;
  metrics::Counter &Misses;
  metrics::Counter &Coalesced;
  metrics::Counter &NegativeHits;
  metrics::Counter &Evictions;
  metrics::Counter &Builds;
  metrics::DoubleCounter &BuildSeconds;
  metrics::Counter &PlanTableStates;
  metrics::Counter &PlanAccelStates;
  metrics::Counter &PlanRunKernels;
  metrics::Counter &PlanNibbleKernels;
  metrics::Counter &PlanWideStates;
  metrics::Counter &PlanSpecPairs;
  static CacheMetrics &get() {
    auto &R = metrics::Registry::instance();
    static CacheMetrics M{
        R.counter("efc_cache_hits_total",
                  "Pipeline lookups served from memory"),
        R.counter("efc_cache_misses_total", "Pipeline lookups that built"),
        R.counter("efc_cache_coalesced_total",
                  "Lookups that waited on another caller's build"),
        R.counter("efc_cache_negative_hits_total",
                  "Lookups served a cached spec error"),
        R.counter("efc_cache_evictions_total", "LRU evictions"),
        R.counter("efc_cache_builds_total", "Pipeline builds completed"),
        R.dcounter("efc_cache_build_seconds_total",
                   "Wall time in fusion+optimization+VM compile"),
        R.counter("efc_fastpath_plan_table_states_total",
                  "Byte-class-tabulated states across built plans"),
        R.counter("efc_fastpath_plan_accel_states_total",
                  "Run-accelerated states across built plans"),
        R.counter("efc_fastpath_plan_run_kernels_total",
                  "Run kernels across built plans"),
        R.counter("efc_fastpath_plan_nibble_kernels_total",
                  "Run kernels with a pshufb nibble encoding"),
        R.counter("efc_fastpath_plan_wide_states_total",
                  "States with a wide-domain (width > 8) table"),
        R.counter("efc_fastpath_plan_spec_pairs_total",
                  "Two-state speculative alternating pairs")};
    // The scan-kernel ISA level is process-wide and fixed after the
    // first probe; expose it once so dashboards can correlate
    // throughput with the dispatched instruction set.
    metrics::Registry::instance()
        .gauge("efc_simd_level",
               "Active SIMD dispatch level (0=scalar 1=sse2 2=avx2 "
               "3=avx512)")
        .set(int64_t(simd::activeLevel()));
    return M;
  }
};

/// Registry mirrors of the certification counters (EFC_CERTIFY builds).
struct CertifyMetrics {
  metrics::Counter &Certified;
  metrics::Counter &Unverified;
  metrics::Counter &Refuted;
  metrics::Counter &Timeouts;
  metrics::DoubleCounter &Seconds;
  static CertifyMetrics &get() {
    auto &R = metrics::Registry::instance();
    static CertifyMetrics M{
        R.counter("efc_certify_certified_total",
                  "Pipeline builds certified end-to-end"),
        R.counter("efc_certify_unverified_total",
                  "Pipeline builds degraded to unverified (budget/Unknown)"),
        R.counter("efc_certify_refuted_total",
                  "Pipeline builds rejected at cache admission"),
        R.counter("efc_certify_timeouts_total",
                  "Per-state certification budget exhaustions"),
        R.dcounter("efc_certify_seconds_total",
                   "Wall time spent in equivalence certification")};
    return M;
  }
};

} // namespace

PipelineCache::PipelineCache(size_t Capacity)
    : Capacity(Capacity ? Capacity : 1) {}

void PipelineCache::touch(MapEntry &E) {
  Lru.splice(Lru.begin(), Lru, E.LruIt);
}

void PipelineCache::evictOverflow() {
  // Never evict a slot that is still building: its builder will publish
  // into it and waiting callers hold references to it.
  auto It = Lru.end();
  while (Map.size() > Capacity && It != Lru.begin()) {
    --It;
    auto M = Map.find(*It);
    assert(M != Map.end());
    if (M->second.S->Building)
      continue;
    It = Lru.erase(It);
    Map.erase(M);
    ++Counters.Evictions;
    CacheMetrics::get().Evictions.inc();
  }
}

namespace {

/// The build itself: assemble the stage chain, then drive the registered
/// compile passes (pipeline/PassManager.h) over it.  Per-pass artifacts
/// are content-hash cached across specs: a spec differing only in a
/// downstream option (say RbbeBudget) re-runs `rbbe` but adopts the
/// cached `fuse` result.
std::shared_ptr<CompiledPipeline> buildPipeline(const PipelineSpec &Spec,
                                                std::string *Err) {
  // Root of the compile-phase span tree: fuse/rbbe spans open inside the
  // respective passes and nest under this one.
  trace::Span CompileSp("compile");
  CompileSp.note("spec_hash", Spec.hash());
  auto Owner = std::make_shared<TermContext>();
  auto Stages = assembleStages(Spec, *Owner, Err);
  if (!Stages)
    return nullptr;
  CompileSp.note("stages", (uint64_t)Stages->size());

  auto P = std::make_shared<CompiledPipeline>();
  P->Spec = Spec;
  P->NumStages = Stages->size();
  Stopwatch Total;

  pipeline::PassContext PC;
  PC.Chain = std::make_shared<pipeline::IrChain>(Owner);
  for (const Bst &St : *Stages)
    PC.Stages.push_back(&St);

  pipeline::PipelineOptions PO;
  PO.Rbbe.ConflictBudget = 0;
  if (Spec.RbbeBudget != 0)
    PO.Rbbe.MaxSolverChecks = Spec.RbbeBudget;
  PO.FastPath = FastPathOptions::fromEnv();

  pipeline::PassManager PM(
      pipeline::PassManager::defaultPasses(Spec.Rbbe, Spec.Minimize));
  if (!PM.run(PC, PO, Err))
    return nullptr;

  // On a fuse (or deeper) cache hit the context adopted the cached
  // artifact's chain; the entry must own *that* TermContext, not the one
  // the stages were assembled in.
  P->Chain = PC.Chain;
  P->Ctx = PC.Chain->Ctx;
  P->Fused = PC.Ir;
  P->Vm = PC.Vm;
  P->Fast = PC.Fast;
  P->Par = PC.Par;
  P->FStats = PC.FStats;
  P->RStats = PC.RStats;
  P->MStats = PC.MStats;
  P->PassRuns = std::move(PC.Runs);

  // Equivalence certification (verify/EquivChecker.h), gated by
  // EFC_CERTIFY=1: prove the bytecode, the fast-path tables, and the
  // codegen classification agree with the fused rules before the entry
  // can be admitted.  The per-state budget comes from
  // EFC_CERTIFY_BUDGET_MS (default 2000); exhaustion degrades to
  // "unverified", which still serves — only "refuted" blocks admission
  // (enforced by the caller).
  if (env::flag("EFC_CERTIFY", false)) {
    trace::Span CertSp("certify");
    verify::CertOptions COpts;
    COpts.StateBudgetSeconds =
        env::f64("EFC_CERTIFY_BUDGET_MS", 2000.0, 0.0, 1e9) / 1000.0;
    // The certifier's solver works over the entry's terms and may intern
    // new ones; serialize with other pass runs on the shared chain.
    std::unique_lock<std::mutex> ChainLock(P->Chain->Mu);
    verify::CertReport CR =
        verify::certifyPipeline(*P->Fused, *P->Vm, P->Fast.get(), COpts);
    ChainLock.unlock();
    P->Cert = CR.Status;
    P->CertSummary = CR.summary();
    P->CertifySeconds = CR.Seconds;
    P->CertTimeouts = CR.TimedOutStates;
    CertSp.note("status",
                std::string_view(verify::certStatusName(CR.Status)));
    CertifyMetrics::get().Seconds.add(CR.Seconds);
  }
  P->BuildSeconds = Total.seconds();
  return P;
}

} // namespace

std::shared_ptr<const CompiledPipeline>
PipelineCache::get(const PipelineSpec &Spec, bool WantNative,
                   std::string *Err) {
  std::string Key = Spec.canonical();
  std::shared_ptr<Slot> S;
  bool Builder = false;

  {
    std::unique_lock<std::mutex> L(Mu);
    auto It = Map.find(Key);
    if (It != Map.end()) {
      S = It->second.S;
      touch(It->second);
      if (S->Building) {
        ++Counters.Coalesced;
        CacheMetrics::get().Coalesced.inc();
        S->Cv.wait(L, [&] { return !S->Building; });
      } else if (S->Ready) {
        ++Counters.Hits;
        CacheMetrics::get().Hits.inc();
      } else {
        // Published spec *error*: deterministic (bad pattern / unknown
        // enum), so serving it from cache is correct — but it is not a
        // hit.  Transient native failures never land here; they are
        // retried at the entry level (CompiledPipeline::native).
        ++Counters.NegativeHits;
        CacheMetrics::get().NegativeHits.inc();
      }
    } else {
      S = std::make_shared<Slot>();
      Lru.push_front(Key);
      Map.emplace(Key, MapEntry{S, Lru.begin()});
      evictOverflow();
      ++Counters.Misses;
      CacheMetrics::get().Misses.inc();
      Builder = true;
    }
  }

  if (Builder) {
    std::string BuildErr;
    auto P = buildPipeline(Spec, &BuildErr);
    std::lock_guard<std::mutex> L(Mu);
    S->Building = false;
    if (P) {
      ++Counters.Builds;
      Counters.BuildSeconds += P->BuildSeconds;
      const FastPathPlan::Stats &FS = P->Fast->stats();
      Counters.FastTableStates += FS.TableStates;
      Counters.FastAccelStates += FS.AccelStates;
      Counters.FastRunKernels +=
          FS.SkipKernels + FS.CopyKernels + FS.ConstAppendKernels;
      Counters.FastNibbleKernels += FS.NibbleKernels;
      Counters.FastWideStates += FS.WideStates;
      Counters.FastSpecPairs += FS.SpecPairs;
      Counters.ParEligible += P->Par && P->Par->eligible() ? 1 : 0;
      CacheMetrics &CM = CacheMetrics::get();
      CM.Builds.inc();
      CM.BuildSeconds.add(P->BuildSeconds);
      CM.PlanTableStates.inc(FS.TableStates);
      CM.PlanAccelStates.inc(FS.AccelStates);
      CM.PlanRunKernels.inc(FS.SkipKernels + FS.CopyKernels +
                            FS.ConstAppendKernels);
      CM.PlanNibbleKernels.inc(FS.NibbleKernels);
      CM.PlanWideStates.inc(FS.WideStates);
      CM.PlanSpecPairs.inc(FS.SpecPairs);
      CertifyMetrics &XM = CertifyMetrics::get();
      Counters.CertTimeouts += P->CertTimeouts;
      XM.Timeouts.inc(P->CertTimeouts);
      switch (P->Cert) {
      case verify::CertStatus::Unchecked:
        break;
      case verify::CertStatus::Certified:
        ++Counters.CertCertified;
        XM.Certified.inc();
        break;
      case verify::CertStatus::Unverified:
        ++Counters.CertUnverified;
        XM.Unverified.inc();
        break;
      case verify::CertStatus::Refuted:
        ++Counters.CertRefuted;
        XM.Refuted.inc();
        break;
      }
      if (P->Cert == verify::CertStatus::Refuted) {
        // Certification is a cache-admission gate: a refuted entry is a
        // proven backend disagreement, so it never serves.  The error is
        // deterministic for this build and negative-cached like any other
        // spec error.
        S->Error =
            "backend equivalence refuted; refusing to serve (" +
            P->CertSummary + ")";
      } else {
        S->Ready = P;
      }
    } else {
      S->Error = BuildErr;
    }
    S->Cv.notify_all();
  }

  if (!S->Ready) {
    if (Err)
      *Err = S->Error;
    return nullptr;
  }

  if (WantNative) {
    // Outside Mu: a native compile can take seconds and must not stall
    // unrelated lookups.  The entry's own lock single-flights it.
    std::string NErr;
    CompiledPipeline::NativeOutcome Outcome;
    NativeCompileInfo NInfo;
    const NativeTransducer *N = S->Ready->native(&NErr, &Outcome, &NInfo);
    {
      std::lock_guard<std::mutex> L(Mu);
      if (Outcome == CompiledPipeline::NativeOutcome::Compiled) {
        ++Counters.NativeCompiles;
        Counters.NativeCompileMs += NInfo.CompileMs;
      } else if (Outcome == CompiledPipeline::NativeOutcome::DiskHit) {
        ++Counters.NativeDiskHits;
      }
    }
    if (!N) {
      if (Err)
        *Err = "native backend unavailable: " + NErr;
      return nullptr;
    }
  }
  return S->Ready;
}

PipelineCache::Stats PipelineCache::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Counters;
}

size_t PipelineCache::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Map.size();
}

std::string PipelineCache::Stats::str() const {
  char Buf[768];
  snprintf(Buf, sizeof(Buf),
           "hits=%llu misses=%llu coalesced=%llu negative_hits=%llu "
           "evictions=%llu "
           "builds=%llu build_s=%.3f native_compiles=%llu "
           "native_disk_hits=%llu native_compile_ms=%.1f "
           "fast_table_states=%llu fast_accel_states=%llu "
           "fast_run_kernels=%llu fast_nibble_kernels=%llu "
           "fast_wide_states=%llu fast_spec_pairs=%llu par_eligible=%llu "
           "cert_certified=%llu cert_unverified=%llu cert_refuted=%llu "
           "certify_timeouts=%llu",
           (unsigned long long)Hits, (unsigned long long)Misses,
           (unsigned long long)Coalesced, (unsigned long long)NegativeHits,
           (unsigned long long)Evictions,
           (unsigned long long)Builds, BuildSeconds,
           (unsigned long long)NativeCompiles,
           (unsigned long long)NativeDiskHits, NativeCompileMs,
           (unsigned long long)FastTableStates,
           (unsigned long long)FastAccelStates,
           (unsigned long long)FastRunKernels,
           (unsigned long long)FastNibbleKernels,
           (unsigned long long)FastWideStates,
           (unsigned long long)FastSpecPairs,
           (unsigned long long)ParEligible,
           (unsigned long long)CertCertified,
           (unsigned long long)CertUnverified,
           (unsigned long long)CertRefuted,
           (unsigned long long)CertTimeouts);
  return Buf;
}
