//===- runtime/Server.h - Concurrent streaming-session server ---*- C++ -*-===//
///
/// \file
/// Third layer of the serving runtime: many named StreamSessions served
/// concurrently over a Unix domain socket.  The wire protocol is
/// length-prefixed frames (little-endian u32 payload length, then the
/// payload); the first payload byte is the opcode:
///
///   requests                               responses
///   'O'  open:   name \n backend \n spec   'k' name        | 'e' name msg
///   'F'  feed:   name \n chunk-bytes       'k' name output | 'e' name msg
///   'E'  finish: name                      'k' name output | 'e' name msg
///   'C'  close:  name (discard session)    'k' name        | 'e' name msg
///   'S'  stats (counters dump)             'k' \n stats-text
///   'M'  metrics (Prometheus text)         'k' \n prometheus-text
///   'Q'  shutdown                          'k' \n
///
/// where `backend` is "vm" or "native", `spec` is PipelineSpec::parse
/// input, and every response payload is status byte + name + '\n' + body
/// (responses are self-identifying, so a client may pipeline requests).
///
/// Execution model: one reader thread per connection parses frames and
/// enqueues work onto per-session FIFO strands; a fixed pool of worker
/// threads executes strands (never two tasks of one session at a time,
/// so session state needs no locking).  Strand queues are bounded: a
/// full queue blocks the connection's reader, the kernel socket buffer
/// fills, and the client stalls — end-to-end backpressure.  Pipeline
/// builds go through a shared PipelineCache, so N sessions opening the
/// same spec cost one fusion and at most one host-compiler invocation.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_RUNTIME_SERVER_H
#define EFC_RUNTIME_SERVER_H

#include "runtime/PipelineCache.h"
#include "runtime/StreamSession.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace efc::runtime {

/// Frame helpers shared by the server and clients (tools/efc-serve).
/// Both return false on EOF or error; frames above ~64 MB are rejected.
bool sendFrame(int Fd, std::string_view Payload);
bool recvFrame(int Fd, std::string &Payload);

struct ServerOptions {
  std::string SocketPath;
  unsigned Threads = 4;          ///< worker pool size
  size_t MaxQueuePerSession = 16; ///< strand queue bound (backpressure)
  size_t CacheCapacity = 32;     ///< PipelineCache entries
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  /// Binds the socket and spawns the accept loop and worker pool.
  bool start(std::string *Err = nullptr);
  /// Requests shutdown (callable from any thread, including handlers).
  void signalStop();
  /// Joins every thread; returns once the server is fully down.
  void wait();
  /// signalStop() + wait().
  void stop();

  /// Counters dump served for 'S' frames (also usable in-process).
  std::string statsText() const;

  const ServerOptions &options() const { return Opts; }

private:
  struct Conn {
    /// Atomic: the reader thread closes the descriptor while workers may
    /// still be inspecting it for replies.  Writes to the socket and the
    /// close itself serialize on WriteMu.
    std::atomic<int> Fd{-1};
    std::mutex WriteMu; ///< response frames must not interleave
  };
  struct Task {
    char Op;             ///< 'O', 'F', 'E', 'C'
    std::string Payload; ///< body after the session name
    std::shared_ptr<Conn> C;
  };
  struct Session {
    std::string Name;
    std::optional<StreamSession> Stream;
    std::deque<Task> Q;
    bool Running = false; ///< a worker is executing this strand
    bool Doomed = false;  ///< erase after the queue drains
  };

  void acceptLoop();
  void readerLoop(std::shared_ptr<Conn> C);
  void workerLoop();
  void execute(const std::shared_ptr<Session> &Sess, Task &T);
  /// Sends a response frame.  On send failure (client gone mid-response)
  /// the connection is torn down and server_frames_dropped is bumped;
  /// returns false so callers owning a session can doom it — the client
  /// cannot know which replies it missed, so the session must not accept
  /// further frames as if nothing happened.
  bool reply(Conn &C, char Status, const std::string &Name,
             std::string_view Body);
  /// Marks the session for removal once its strand drains.
  void dropSession(const std::shared_ptr<Session> &Sess);

  ServerOptions Opts;
  PipelineCache Cache;

  mutable std::mutex Mu;
  std::condition_variable WorkCv;  ///< workers: ready strands / stopping
  std::condition_variable SpaceCv; ///< readers: strand queue has room
  std::unordered_map<std::string, std::shared_ptr<Session>> Sessions;
  std::deque<std::shared_ptr<Session>> Ready;
  bool Stopping = false;

  int ListenFd = -1;
  int StopPipe[2] = {-1, -1};
  std::thread Acceptor;
  std::vector<std::thread> Workers;
  std::vector<std::thread> Readers;
  std::vector<std::shared_ptr<Conn>> Conns;

  // Counters (guarded by Mu).
  struct {
    uint64_t SessionsOpened = 0;
    uint64_t FramesIn = 0;
    uint64_t Replies = 0;
    uint64_t Errors = 0;
    uint64_t Rejected = 0;
    uint64_t FramesDropped = 0; ///< responses lost to dead connections
    uint64_t BytesIn = 0;  ///< session input bytes fed
    uint64_t BytesOut = 0; ///< session output bytes produced
    uint64_t FastRuns = 0; ///< run-kernel spans driven, completed sessions
    uint64_t FastRunElements = 0; ///< elements those spans consumed
    uint64_t FastWideElements = 0; ///< wide-table memo hits (elems >= 256)
    uint64_t FastSpecRuns = 0;     ///< speculative alternating spans
    uint64_t FastSpecElements = 0; ///< elements those spans consumed
  } C;
};

} // namespace efc::runtime

#endif // EFC_RUNTIME_SERVER_H
