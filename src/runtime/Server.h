//===- runtime/Server.h - Sharded epoll streaming-session server -*-C++-*-===//
///
/// \file
/// Third layer of the serving runtime: many named StreamSessions served
/// concurrently over Unix-domain and/or TCP sockets.  The wire protocol
/// is length-prefixed frames (little-endian u32 payload length, then the
/// payload); the first payload byte is the opcode:
///
///   requests                               responses
///   'O'  open:   name \n backend \n spec   'k' name        | 'e' name msg
///   'F'  feed:   name \n chunk-bytes       'k' name output | 'e' name msg
///   'E'  finish: name                      'k' name output | 'e' name msg
///   'C'  close:  name (discard session)    'k' name        | 'e' name msg
///   'S'  stats (counters dump)             'k' \n stats-text
///   'M'  metrics (Prometheus text)         'k' \n prometheus-text
///   'Q'  shutdown (graceful drain)         'k' \n
///
/// where `backend` is "vm", "fastpath" or "native", `spec` is
/// PipelineSpec::parse input, and every response payload is status byte +
/// name + '\n' + body (responses are self-identifying, so a client may
/// pipeline requests; replies stay ordered per session).
///
/// Execution model (see DESIGN.md "Serving transport"): N *shards*, each
/// one thread owning one edge-triggered epoll instance.  A connection is
/// owned by exactly one shard for its whole life — only that shard reads,
/// writes or closes its descriptor, so the hot path (in-place frame parse
/// from the connection's InputSlab → StreamSession::feed → vectored
/// writev reply) takes no locks at all.  TCP accepts use one
/// SO_REUSEPORT listener per shard (kernel-balanced); Unix sockets — and
/// TCP where SO_REUSEPORT is unavailable — fall back to a single
/// listener on shard 0 that hands accepted fds to shards round-robin
/// through their mailboxes (an eventfd-woken closure queue, the only
/// cross-shard channel).  A session is pinned to the shard whose
/// connection opened it; the rare frame arriving on another shard's
/// connection is forwarded through the home shard's mailbox and its
/// reply routed back the same way, preserving per-session order.
///
/// Backpressure: replies queue on the connection's bounded OutQueue;
/// while the backlog is above a high-watermark the shard stops reading
/// that connection (the kernel socket buffer then fills and the client
/// stalls — end-to-end backpressure without threads blocking).  Past the
/// hard cap the connection is doomed: queued frames count into
/// frames_dropped and every session awaiting one of them is discarded —
/// the client cannot know which replies it missed.
///
/// Lifecycle: signalStop() (async-signal-safe, also the SIGTERM/SIGINT
/// path of efc-serve and the 'Q' frame) begins a graceful drain — every
/// shard closes its listeners, takes a final read of each connection's
/// socket, executes the frames already buffered, flushes replies, then
/// closes; a drain deadline bounds how long slow clients can hold the
/// exit.  Idle sessions are reaped: a session untouched for IdleMs
/// (EFC_SESSION_IDLE_MS) is evicted so abandoned clients cannot pin
/// StreamSession memory forever.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_RUNTIME_SERVER_H
#define EFC_RUNTIME_SERVER_H

#include "runtime/NetBuffers.h"
#include "runtime/PipelineCache.h"
#include "runtime/StreamSession.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace efc::runtime {

/// Frame helpers for blocking client sockets (tools/efc-serve, tests).
/// Both return false on EOF or error; frames above ~64 MB are rejected.
/// The server side never uses these — it parses in place (NetBuffers.h).
bool sendFrame(int Fd, std::string_view Payload);
bool recvFrame(int Fd, std::string &Payload);

struct ServerOptions {
  std::string SocketPath;    ///< Unix listener path (empty: none)
  bool Tcp = false;          ///< enable the TCP listener(s)
  uint16_t TcpPort = 0;      ///< TCP port (0: kernel-assigned, see tcpPort())
  std::string TcpHost = "0.0.0.0"; ///< TCP bind address
  unsigned Shards = 1;       ///< event-loop shard count
  size_t CacheCapacity = 32; ///< PipelineCache entries
  /// Reply-backlog hard cap per connection; past it the connection is
  /// doomed (frames_dropped).  Reads pause at half this watermark.
  size_t MaxConnBacklog = 64u << 20;
  /// Idle-session eviction threshold; 0 disables.  The constructor
  /// falls back to EFC_SESSION_IDLE_MS when left at 0.
  uint64_t IdleMs = 0;
  uint64_t DrainMs = 5000; ///< graceful-shutdown drain deadline
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  /// Binds the listeners and spawns the shard threads.
  bool start(std::string *Err = nullptr);
  /// Requests a graceful drain.  Async-signal-safe after start() —
  /// it only writes one byte to the stop pipe — so efc-serve calls it
  /// straight from its SIGTERM/SIGINT handler.
  void signalStop();
  /// Joins every shard; returns once the server is fully down.
  void wait();
  /// signalStop() + wait().
  void stop();

  /// Counters dump served for 'S' frames (also usable in-process).
  std::string statsText() const;

  /// Effective TCP port (resolves port 0 after start()).
  uint16_t tcpPort() const { return BoundTcpPort; }
  /// True when TCP accepts are kernel-balanced via SO_REUSEPORT; false
  /// when the single-listener fd-handoff fallback is in effect.
  bool tcpReusePort() const { return TcpReusePort; }

  const ServerOptions &options() const { return Opts; }

private:
  struct Shard;

  /// One shard-owned connection.  Every field below is touched only by
  /// the owner shard's thread (the fd-reuse hazard the old worker-pool
  /// server guarded with Conn::WriteMu is gone by construction: no other
  /// thread can ever write to or close this descriptor).  Cross-shard
  /// code sees a Conn only through shared_ptr + the Closed flag.
  struct Conn {
    int Fd = -1;
    unsigned Owner = 0; ///< owning shard index
    InputSlab In;
    OutQueue Out;
    bool WantWrite = false;  ///< EPOLLOUT armed (flush blocked)
    bool ReadPaused = false; ///< backlog above watermark: EPOLLIN parked
    bool PeerEof = false;    ///< read side done; close after flush
    bool Closed = false;
    uint64_t CrossPending = 0; ///< forwarded frames awaiting replies
  };
  using ConnPtr = std::shared_ptr<Conn>;

  /// A session living on its home shard.  No queue and no Running flag:
  /// execution is inline on the shard thread, so per-session FIFO order
  /// is the event order itself.
  struct Session {
    std::string Name;
    uint64_t Gen = 0; ///< global epoch — guards stale cross-shard dooms
    std::optional<StreamSession> Stream;
    uint64_t LastActiveMs = 0; ///< steady-clock ms of last frame
  };

  /// Per-shard counters: plain atomics so statsText()/metrics can read
  /// them from any thread while the owner increments lock-free.
  struct ShardCounters {
    std::atomic<uint64_t> Accepts{0};
    std::atomic<uint64_t> Wakeups{0};
    std::atomic<uint64_t> FramesIn{0};
    std::atomic<uint64_t> Replies{0};
    std::atomic<uint64_t> Errors{0};
    std::atomic<uint64_t> Rejected{0};
    std::atomic<uint64_t> FramesDropped{0};
    std::atomic<uint64_t> BytesIn{0};
    std::atomic<uint64_t> BytesOut{0};
    std::atomic<uint64_t> SessionsOpened{0};
    std::atomic<uint64_t> SessionsEvicted{0};
    std::atomic<uint64_t> CrossForwards{0};
    std::atomic<int64_t> ConnsLive{0};
    std::atomic<int64_t> SessionsLive{0};
    std::atomic<int64_t> BacklogBytes{0};
    std::atomic<uint64_t> FastRuns{0};
    std::atomic<uint64_t> FastRunElements{0};
    std::atomic<uint64_t> FastWideElements{0};
    std::atomic<uint64_t> FastSpecRuns{0};
    std::atomic<uint64_t> FastSpecElements{0};
  };

  struct Shard {
    unsigned Id = 0;
    int Ep = -1;         ///< epoll instance
    int WakeFd = -1;     ///< eventfd: mailbox signal
    int TcpListen = -1;  ///< per-shard SO_REUSEPORT listener (-1: none)
    std::thread Thr;
    std::mutex MailMu;
    std::vector<std::function<void()>> Mail;
    std::unordered_map<int, ConnPtr> Conns; ///< by fd, shard-owned
    std::unordered_map<std::string, std::unique_ptr<Session>> Sessions;
    /// Connections whose reads were parked by backpressure and whose
    /// backlog has since drained; resumed iteratively at the loop top
    /// (never recursively from inside a flush).
    std::vector<ConnPtr> Resume;
    ShardCounters Ct;
    bool Draining = false;
    uint64_t DrainByMs = 0; ///< steady ms deadline once draining
    uint64_t LastReapMs = 0;
    // Per-shard registry mirrors (label shard="N"), bound in start().
    metrics::Counter *MAccepts = nullptr;
    metrics::Counter *MWakeups = nullptr;
    metrics::Gauge *MBacklog = nullptr;
    metrics::Gauge *MQueueDepth = nullptr;
  };

  void shardLoop(Shard &S);
  void drainMail(Shard &S);
  void acceptReady(Shard &S, int ListenFd, bool Tcp);
  void adoptConn(Shard &S, int Fd);
  void handleConn(Shard &S, const ConnPtr &C, uint32_t Events);
  void readAndExecute(Shard &S, const ConnPtr &C);
  /// Parses every complete frame in C->In and executes it.  Returns
  /// false when the connection must die (oversized frame).
  bool parseFrames(Shard &S, const ConnPtr &C);
  void execute(Shard &S, const ConnPtr &C, std::string_view Frame);
  void executeSessionOp(Shard &S, const ConnPtr &C, char Op,
                        std::string_view Name, std::string_view Body,
                        Session &Sess);
  void openSession(Shard &S, const ConnPtr &C, std::string_view Name,
                   std::string_view Body);
  /// Queues a reply on C (routing through C's owner shard when this is
  /// not it) and flushes opportunistically.
  void reply(Shard &S, const ConnPtr &C, char Status, std::string_view Name,
             std::string &&Body, std::string_view SessTag);
  void queueOnOwner(Shard &Owner, const ConnPtr &C, char Status,
                    std::string_view Name, std::string &&Body,
                    std::string_view SessTag);
  /// Flushes C's out-queue; arms/disarms EPOLLOUT, pauses/resumes reads
  /// around the backlog watermarks, dooms on error or cap overflow.
  void flushConn(Shard &S, const ConnPtr &C);
  void closeConn(Shard &S, const ConnPtr &C, bool CountBacklogDropped);
  /// Removes the session (home shard only), folding its telemetry.
  void eraseSession(Shard &S, const std::string &Name);
  /// Dooms a session wherever it lives; \p Gen guards against a stale
  /// doom erasing a newer same-named session.
  void doomSessionByName(const std::string &Name, uint64_t Gen);
  void beginDrain(Shard &S);
  void reapIdle(Shard &S, uint64_t NowMs);
  void updateEpoll(Shard &S, const ConnPtr &C);
  void post(unsigned ShardId, std::function<void()> Fn);

  ServerOptions Opts;
  PipelineCache Cache;
  std::vector<std::unique_ptr<Shard>> Shards;

  /// Global session index: name → (home shard, generation).  Touched on
  /// open/close/evict and on shard-local lookup misses — never on the
  /// same-shard feed path.
  struct Home {
    unsigned ShardId;
    uint64_t Gen;
  };
  mutable std::mutex IndexMu;
  std::unordered_map<std::string, Home> SessionIndex;
  std::atomic<uint64_t> GenCounter{1};

  int UnixListenFd = -1; ///< shard 0-owned (fd handoff)
  int TcpListenFd = -1;  ///< fallback single TCP listener (shard 0)
  uint16_t BoundTcpPort = 0;
  bool TcpReusePort = false;
  int StopPipe[2] = {-1, -1};
  std::atomic<unsigned> RoundRobin{0};
  std::atomic<bool> StopRequested{false};
  /// Live connections across all shards; a draining shard may only exit
  /// once this hits zero (or its deadline passes) — while any connection
  /// lives anywhere, cross-shard forwards can still target this shard.
  std::atomic<int64_t> TotalConns{0};
  bool Started = false;
};

} // namespace efc::runtime

#endif // EFC_RUNTIME_SERVER_H
