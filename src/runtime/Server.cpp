//===- runtime/Server.cpp -------------------------------------------------===//

#include "runtime/Server.h"

#include "support/Metrics.h"
#include "support/Stopwatch.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace efc;
using namespace efc::runtime;

namespace {

/// Registry mirrors of the server counters plus serving-path
/// distributions.
struct ServerMetrics {
  metrics::Counter &SessionsOpened;
  metrics::Counter &FramesIn;
  metrics::Counter &Replies;
  metrics::Counter &Errors;
  metrics::Counter &Rejected;
  metrics::Counter &FramesDropped;
  metrics::Counter &BytesIn;
  metrics::Counter &BytesOut;
  metrics::Gauge &QueueDepth;
  metrics::Histogram &FeedLatency;
  metrics::Histogram &FeedBytes;
  static ServerMetrics &get() {
    auto &R = metrics::Registry::instance();
    static ServerMetrics M{
        R.counter("efc_server_sessions_opened_total", "Sessions opened"),
        R.counter("efc_server_frames_in_total", "Request frames received"),
        R.counter("efc_server_replies_total", "Response frames sent"),
        R.counter("efc_server_errors_total", "Error responses sent"),
        R.counter("efc_server_rejected_total",
                  "Streams rejected by a pipeline"),
        R.counter("efc_server_frames_dropped_total",
                  "Responses lost to dead connections"),
        R.counter("efc_server_bytes_in_total", "Session input bytes fed"),
        R.counter("efc_server_bytes_out_total",
                  "Session output bytes produced"),
        R.gauge("efc_server_queue_depth",
                "Tasks queued across all session strands"),
        R.histogram("efc_server_feed_latency_seconds",
                    "Per-frame feed execution time",
                    {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1,
                     0.3, 1.0, 3.0}),
        R.histogram("efc_server_feed_bytes", "Feed frame payload size",
                    {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576})};
    return M;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

namespace {

constexpr size_t MaxFrame = 64u << 20;

bool writeAll(int Fd, const void *Data, size_t N) {
  const char *P = static_cast<const char *>(Data);
  while (N) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as EPIPE,
    // not kill the process (in-process embedders included).
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W <= 0) {
      if (W < 0 && errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= size_t(W);
  }
  return true;
}

bool readAll(int Fd, void *Data, size_t N) {
  char *P = static_cast<char *>(Data);
  while (N) {
    ssize_t R = ::read(Fd, P, N);
    if (R <= 0) {
      if (R < 0 && errno == EINTR)
        continue;
      return false;
    }
    P += R;
    N -= size_t(R);
  }
  return true;
}

} // namespace

bool efc::runtime::sendFrame(int Fd, std::string_view Payload) {
  if (Payload.size() > MaxFrame)
    return false;
  unsigned char Hdr[4];
  uint32_t N = uint32_t(Payload.size());
  Hdr[0] = N & 0xFF;
  Hdr[1] = (N >> 8) & 0xFF;
  Hdr[2] = (N >> 16) & 0xFF;
  Hdr[3] = (N >> 24) & 0xFF;
  return writeAll(Fd, Hdr, 4) && writeAll(Fd, Payload.data(), Payload.size());
}

bool efc::runtime::recvFrame(int Fd, std::string &Payload) {
  unsigned char Hdr[4];
  if (!readAll(Fd, Hdr, 4))
    return false;
  uint32_t N = uint32_t(Hdr[0]) | (uint32_t(Hdr[1]) << 8) |
               (uint32_t(Hdr[2]) << 16) | (uint32_t(Hdr[3]) << 24);
  if (N > MaxFrame)
    return false;
  Payload.resize(N);
  return N == 0 || readAll(Fd, Payload.data(), N);
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheCapacity) {
  if (Opts.Threads == 0)
    Opts.Threads = 1;
  if (Opts.MaxQueuePerSession == 0)
    Opts.MaxQueuePerSession = 1;
}

Server::~Server() { stop(); }

bool Server::start(std::string *Err) {
  auto Fail = [&](const std::string &M) {
    if (Err)
      *Err = M + ": " + strerror(errno);
    return false;
  };
  if (Opts.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path))
    return Fail("socket path too long");
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  ::unlink(Opts.SocketPath.c_str());
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
          sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0)
    return Fail("bind " + Opts.SocketPath);
  if (::listen(ListenFd, 64) != 0)
    return Fail("listen");
  if (::pipe(StopPipe) != 0)
    return Fail("pipe");

  Acceptor = std::thread([this] { acceptLoop(); });
  for (unsigned I = 0; I < Opts.Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  return true;
}

void Server::signalStop() {
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Stopping)
      return;
    Stopping = true;
    // Unblock readers stuck in recv and the accept loop's poll.
    for (auto &Cn : Conns)
      if (Cn->Fd >= 0)
        ::shutdown(Cn->Fd, SHUT_RDWR);
  }
  if (StopPipe[1] >= 0) {
    // Retry EINTR: a lost wakeup here would leave the accept loop parked
    // in poll.  The loop also polls with a finite timeout as a backstop,
    // so even a full pipe (impossible with one byte, but cheap to cover)
    // cannot wedge shutdown.
    ssize_t W;
    do {
      W = ::write(StopPipe[1], "x", 1);
    } while (W < 0 && errno == EINTR);
  }
  WorkCv.notify_all();
  SpaceCv.notify_all();
}

void Server::wait() {
  if (Acceptor.joinable())
    Acceptor.join();
  for (auto &W : Workers)
    if (W.joinable())
      W.join();
  for (auto &R : Readers)
    if (R.joinable())
      R.join();
  Workers.clear();
  Readers.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
  }
  for (int I = 0; I < 2; ++I)
    if (StopPipe[I] >= 0) {
      ::close(StopPipe[I]);
      StopPipe[I] = -1;
    }
}

void Server::stop() {
  signalStop();
  wait();
}

void Server::acceptLoop() {
  for (;;) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {StopPipe[0], POLLIN, 0}};
    if (::poll(Fds, 2, /*timeout=*/200) < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    {
      std::lock_guard<std::mutex> L(Mu);
      if (Stopping)
        break;
    }
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    auto Cn = std::make_shared<Conn>();
    Cn->Fd = Fd;
    std::lock_guard<std::mutex> L(Mu);
    if (Stopping) {
      ::close(Fd);
      break;
    }
    Conns.push_back(Cn);
    Readers.emplace_back([this, Cn] { readerLoop(Cn); });
  }
}

bool Server::reply(Conn &Cn, char Status, const std::string &Name,
                   std::string_view Body) {
  std::string Out;
  Out.reserve(2 + Name.size() + Body.size());
  Out.push_back(Status);
  Out += Name;
  Out.push_back('\n');
  Out.append(Body.data(), Body.size());
  bool Sent;
  {
    std::lock_guard<std::mutex> L(Cn.WriteMu);
    int Fd = Cn.Fd.load();
    Sent = Fd >= 0 && sendFrame(Fd, Out);
    if (!Sent && Fd >= 0) {
      // The client is gone (EPIPE/ECONNRESET) or the frame was cut short:
      // nothing further sent on this connection can be framed correctly.
      // Shut it down so the reader unblocks and tears it down.
      ::shutdown(Fd, SHUT_RDWR);
    }
  }
  std::lock_guard<std::mutex> G(Mu);
  if (Sent) {
    ++C.Replies;
    ServerMetrics::get().Replies.inc();
    if (Status == 'e') {
      ++C.Errors;
      ServerMetrics::get().Errors.inc();
    }
  } else {
    ++C.FramesDropped;
    ServerMetrics::get().FramesDropped.inc();
  }
  return Sent;
}

void Server::readerLoop(std::shared_ptr<Conn> Cn) {
  std::string Frame;
  while (recvFrame(Cn->Fd, Frame)) {
    if (Frame.empty())
      continue;
    char Op = Frame[0];
    {
      std::lock_guard<std::mutex> L(Mu);
      ++C.FramesIn;
    }
    ServerMetrics::get().FramesIn.inc();
    if (Op == 'S') {
      reply(*Cn, 'k', "", statsText());
      continue;
    }
    if (Op == 'M') {
      reply(*Cn, 'k', "", metrics::Registry::instance().renderPrometheus());
      continue;
    }
    if (Op == 'Q') {
      reply(*Cn, 'k', "", "");
      signalStop();
      break;
    }
    if (Op != 'O' && Op != 'F' && Op != 'E' && Op != 'C') {
      reply(*Cn, 'e', "", "unknown opcode");
      continue;
    }
    size_t Nl = Frame.find('\n', 1);
    std::string Name = Frame.substr(1, Nl == std::string::npos
                                           ? std::string::npos
                                           : Nl - 1);
    std::string Body =
        Nl == std::string::npos ? std::string() : Frame.substr(Nl + 1);
    if (Name.empty()) {
      reply(*Cn, 'e', "", "missing session name");
      continue;
    }

    std::shared_ptr<Session> Sess;
    {
      std::unique_lock<std::mutex> L(Mu);
      auto It = Sessions.find(Name);
      if (Op == 'O') {
        if (It != Sessions.end() && !It->second->Doomed) {
          L.unlock();
          reply(*Cn, 'e', Name, "session already open");
          continue;
        }
        // A doomed predecessor may linger until its strand drains; the
        // worker's identity-checked erase won't touch the replacement.
        Sess = std::make_shared<Session>();
        Sess->Name = Name;
        Sessions.insert_or_assign(Name, Sess);
        ++C.SessionsOpened;
        ServerMetrics::get().SessionsOpened.inc();
      } else {
        if (It == Sessions.end() || It->second->Doomed) {
          L.unlock();
          reply(*Cn, 'e', Name, "no such session");
          continue;
        }
        Sess = It->second;
      }
      // Backpressure: a full strand parks this connection's reader until
      // a worker drains the queue (or the server stops).
      SpaceCv.wait(L, [&] {
        return Stopping || Sess->Q.size() < Opts.MaxQueuePerSession;
      });
      if (Stopping)
        break;
      Sess->Q.push_back(Task{Op, std::move(Body), Cn});
      ServerMetrics::get().QueueDepth.add(1);
      if (!Sess->Running && Sess->Q.size() == 1) {
        Ready.push_back(Sess);
        WorkCv.notify_one();
      }
    }
  }
  // Close under WriteMu: a worker may be mid-reply on this connection;
  // closing the descriptor out from under ::send could hand the fd number
  // to an unrelated accept.
  std::lock_guard<std::mutex> L(Cn->WriteMu);
  int Fd = Cn->Fd.exchange(-1);
  if (Fd >= 0)
    ::close(Fd);
}

void Server::workerLoop() {
  for (;;) {
    std::shared_ptr<Session> Sess;
    Task T{' ', {}, nullptr};
    {
      std::unique_lock<std::mutex> L(Mu);
      WorkCv.wait(L, [&] { return Stopping || !Ready.empty(); });
      if (Stopping)
        return;
      Sess = std::move(Ready.front());
      Ready.pop_front();
      if (Sess->Q.empty())
        continue;
      Sess->Running = true;
      T = std::move(Sess->Q.front());
      Sess->Q.pop_front();
      ServerMetrics::get().QueueDepth.sub(1);
      SpaceCv.notify_all();
    }

    execute(Sess, T);

    {
      std::lock_guard<std::mutex> L(Mu);
      Sess->Running = false;
      if (!Sess->Q.empty()) {
        Ready.push_back(Sess);
        WorkCv.notify_one();
      } else if (Sess->Doomed) {
        auto It = Sessions.find(Sess->Name);
        if (It != Sessions.end() && It->second == Sess)
          Sessions.erase(It);
      }
    }
  }
}

void Server::execute(const std::shared_ptr<Session> &Sess, Task &T) {
  switch (T.Op) {
  case 'O': {
    // Body: backend line, then the spec text.
    size_t Nl = T.Payload.find('\n');
    std::string BackendStr =
        Nl == std::string::npos ? T.Payload : T.Payload.substr(0, Nl);
    std::string SpecText =
        Nl == std::string::npos ? std::string() : T.Payload.substr(Nl + 1);
    // EFC_BACKEND overrides every OPEN's requested backend — operator
    // escape hatch for A/B measurement and for forcing plain bytecode if
    // the fast path ever misbehaves in production.
    if (const char *Forced = getenv("EFC_BACKEND"))
      BackendStr = Forced;
    StreamSession::Backend B;
    if (BackendStr == "vm")
      B = StreamSession::Backend::Vm;
    else if (BackendStr == "fastpath")
      B = StreamSession::Backend::Fast;
    else if (BackendStr == "native")
      B = StreamSession::Backend::Native;
    else {
      dropSession(Sess);
      reply(*T.C, 'e', Sess->Name, "unknown backend '" + BackendStr + "'");
      return;
    }
    std::string Err;
    auto Spec = PipelineSpec::parse(SpecText, &Err);
    if (!Spec) {
      dropSession(Sess);
      reply(*T.C, 'e', Sess->Name, Err);
      return;
    }
    auto P = Cache.get(*Spec, B == StreamSession::Backend::Native, &Err);
    if (!P) {
      dropSession(Sess);
      reply(*T.C, 'e', Sess->Name, Err);
      return;
    }
    auto S = StreamSession::open(std::move(P), B, &Err);
    if (!S) {
      dropSession(Sess);
      reply(*T.C, 'e', Sess->Name, Err);
      return;
    }
    Sess->Stream.emplace(std::move(*S));
    if (!reply(*T.C, 'k', Sess->Name, ""))
      dropSession(Sess);
    return;
  }
  case 'F': {
    if (!Sess->Stream) {
      reply(*T.C, 'e', Sess->Name, "session not open");
      return;
    }
    Stopwatch Timer;
    bool Ok = Sess->Stream->feed(T.Payload);
    std::string Out = Sess->Stream->takeOutput();
    ServerMetrics &M = ServerMetrics::get();
    M.FeedLatency.observe(Timer.seconds());
    M.FeedBytes.observe(double(T.Payload.size()));
    M.BytesIn.inc(T.Payload.size());
    M.BytesOut.inc(Out.size());
    {
      std::lock_guard<std::mutex> L(Mu);
      C.BytesIn += T.Payload.size();
      C.BytesOut += Out.size();
      if (!Ok)
        ++C.Rejected;
    }
    if (!Ok) {
      M.Rejected.inc();
      dropSession(Sess);
      reply(*T.C, 'e', Sess->Name, "input rejected by the pipeline");
      return;
    }
    if (!reply(*T.C, 'k', Sess->Name, Out)) {
      // The client never saw this output; feeding further chunks would
      // silently skip a hole in the stream.  Kill the session.
      dropSession(Sess);
    }
    return;
  }
  case 'E': {
    if (!Sess->Stream) {
      dropSession(Sess);
      reply(*T.C, 'e', Sess->Name, "session not open");
      return;
    }
    bool Ok = Sess->Stream->finish();
    std::string Out = Sess->Stream->takeOutput();
    ServerMetrics::get().BytesOut.inc(Out.size());
    {
      std::lock_guard<std::mutex> L(Mu);
      C.BytesOut += Out.size();
      if (!Ok)
        ++C.Rejected;
    }
    if (!Ok)
      ServerMetrics::get().Rejected.inc();
    dropSession(Sess);
    if (!Ok)
      reply(*T.C, 'e', Sess->Name, "stream rejected by the finalizer");
    else
      reply(*T.C, 'k', Sess->Name, Out);
    return;
  }
  case 'C':
    dropSession(Sess);
    reply(*T.C, 'k', Sess->Name, "");
    return;
  default:
    reply(*T.C, 'e', Sess->Name, "bad opcode");
    return;
  }
}

void Server::dropSession(const std::shared_ptr<Session> &Sess) {
  // The worker loop erases it once the strand drains; until then new
  // frames for the name are refused.
  std::lock_guard<std::mutex> L(Mu);
  if (!Sess->Doomed && Sess->Stream) {
    // Fold the session's run-acceleration telemetry into the server
    // totals exactly once, at end of life (strand-ordered, so the
    // stream is quiescent here).
    C.FastRuns += Sess->Stream->fastRuns();
    C.FastRunElements += Sess->Stream->fastRunElements();
    C.FastWideElements += Sess->Stream->fastWideElements();
    C.FastSpecRuns += Sess->Stream->fastSpecRuns();
    C.FastSpecElements += Sess->Stream->fastSpecElements();
  }
  Sess->Doomed = true;
}

std::string Server::statsText() const {
  PipelineCache::Stats CS = Cache.stats();
  std::lock_guard<std::mutex> L(Mu);
  char Buf[512];
  snprintf(Buf, sizeof(Buf),
           "sessions_opened=%llu sessions_active=%zu frames_in=%llu "
           "replies=%llu errors=%llu rejected=%llu frames_dropped=%llu "
           "bytes_in=%llu "
           "bytes_out=%llu fast_runs=%llu fast_run_elems=%llu "
           "fast_wide_elems=%llu fast_spec_runs=%llu "
           "fast_spec_elems=%llu "
           "threads=%u queue_cap=%zu",
           (unsigned long long)C.SessionsOpened, Sessions.size(),
           (unsigned long long)C.FramesIn, (unsigned long long)C.Replies,
           (unsigned long long)C.Errors, (unsigned long long)C.Rejected,
           (unsigned long long)C.FramesDropped,
           (unsigned long long)C.BytesIn, (unsigned long long)C.BytesOut,
           (unsigned long long)C.FastRuns,
           (unsigned long long)C.FastRunElements,
           (unsigned long long)C.FastWideElements,
           (unsigned long long)C.FastSpecRuns,
           (unsigned long long)C.FastSpecElements, Opts.Threads,
           Opts.MaxQueuePerSession);
  // Speculation telemetry, read back from the global registry (the
  // parallel executor folds its counters there; re-registration interns
  // to the same objects).  Convergence distance distribution is in the
  // Prometheus exposition (efc_parallel_convergence_bytes).
  auto &R = metrics::Registry::instance();
  metrics::Histogram &H =
      R.histogram("efc_parallel_convergence_bytes",
                  "elements consumed per chunk before lanes converged to one",
                  {16, 64, 256, 1024, 4096, 16384, 65536});
  char PBuf[320];
  snprintf(PBuf, sizeof(PBuf),
           "\nparallel: feeds=%llu chunks_planned=%llu "
           "chunks_speculated=%llu chunks_sequential=%llu "
           "lanes_started=%llu lanes_abandoned=%llu lanes_merged=%llu "
           "replay_elems=%llu converge_p50_bytes<=%.0f",
           (unsigned long long)R.counter("efc_parallel_feeds_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_chunks_planned_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_chunks_speculated_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_chunks_sequential_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_lanes_started_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_lanes_abandoned_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_lanes_merged_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_replay_elements_total").value(),
           [&H] {
             uint64_t Total = H.count(), Acc = 0;
             for (unsigned I = 0; I < H.numBounds(); ++I) {
               Acc += H.bucketCount(I);
               if (2 * Acc >= Total && Total)
                 return H.bound(I);
             }
             return H.numBounds() ? H.bound(H.numBounds() - 1) : 0.0;
           }());
  return std::string(Buf) + PBuf + "\ncache: " + CS.str() + "\n";
}
