//===- runtime/Server.cpp - Sharded epoll event-loop server ---------------===//

#include "runtime/Server.h"

#include "support/EnvParse.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace efc;
using namespace efc::runtime;

namespace {

constexpr size_t MaxFrame = 64u << 20;
constexpr size_t ReadChunk = 64u << 10;

uint64_t steadyMs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Registry mirrors of the aggregate server counters plus serving-path
/// distributions (per-shard families are bound per shard in start()).
struct ServerMetrics {
  metrics::Counter &SessionsOpened;
  metrics::Counter &SessionsEvicted;
  metrics::Counter &FramesIn;
  metrics::Counter &Replies;
  metrics::Counter &Errors;
  metrics::Counter &Rejected;
  metrics::Counter &FramesDropped;
  metrics::Counter &BytesIn;
  metrics::Counter &BytesOut;
  metrics::Counter &CrossForwards;
  metrics::Gauge &QueueDepth;
  metrics::Histogram &FeedLatency;
  metrics::Histogram &FeedBytes;
  static ServerMetrics &get() {
    auto &R = metrics::Registry::instance();
    static ServerMetrics M{
        R.counter("efc_server_sessions_opened_total", "Sessions opened"),
        R.counter("efc_server_sessions_evicted_total",
                  "Sessions reaped by the idle-eviction sweep"),
        R.counter("efc_server_frames_in_total", "Request frames received"),
        R.counter("efc_server_replies_total", "Response frames sent"),
        R.counter("efc_server_errors_total", "Error responses sent"),
        R.counter("efc_server_rejected_total",
                  "Streams rejected by a pipeline"),
        R.counter("efc_server_frames_dropped_total",
                  "Responses lost to dead or over-backlog connections"),
        R.counter("efc_server_bytes_in_total", "Session input bytes fed"),
        R.counter("efc_server_bytes_out_total",
                  "Session output bytes produced"),
        R.counter("efc_server_cross_shard_forwards_total",
                  "Frames forwarded to a session's home shard"),
        R.gauge("efc_server_queue_depth",
                "Reply frames queued across all connections"),
        R.histogram("efc_server_feed_latency_seconds",
                    "Per-frame feed execution time",
                    {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1,
                     0.3, 1.0, 3.0}),
        R.histogram("efc_server_feed_bytes", "Feed frame payload size",
                    {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576})};
    return M;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Blocking-client framing (tools/efc-serve, tests)
//===----------------------------------------------------------------------===//

namespace {

bool writeAll(int Fd, const void *Data, size_t N) {
  const char *P = static_cast<const char *>(Data);
  while (N) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as EPIPE,
    // not kill the process (in-process embedders included).
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W <= 0) {
      if (W < 0 && errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= size_t(W);
  }
  return true;
}

bool readAll(int Fd, void *Data, size_t N) {
  char *P = static_cast<char *>(Data);
  while (N) {
    ssize_t R = ::read(Fd, P, N);
    if (R <= 0) {
      if (R < 0 && errno == EINTR)
        continue;
      return false;
    }
    P += R;
    N -= size_t(R);
  }
  return true;
}

} // namespace

bool efc::runtime::sendFrame(int Fd, std::string_view Payload) {
  if (Payload.size() > MaxFrame)
    return false;
  unsigned char Hdr[4];
  uint32_t N = uint32_t(Payload.size());
  Hdr[0] = N & 0xFF;
  Hdr[1] = (N >> 8) & 0xFF;
  Hdr[2] = (N >> 16) & 0xFF;
  Hdr[3] = (N >> 24) & 0xFF;
  return writeAll(Fd, Hdr, 4) && writeAll(Fd, Payload.data(), Payload.size());
}

bool efc::runtime::recvFrame(int Fd, std::string &Payload) {
  unsigned char Hdr[4];
  if (!readAll(Fd, Hdr, 4))
    return false;
  uint32_t N = uint32_t(Hdr[0]) | (uint32_t(Hdr[1]) << 8) |
               (uint32_t(Hdr[2]) << 16) | (uint32_t(Hdr[3]) << 24);
  if (N > MaxFrame)
    return false;
  Payload.resize(N);
  return N == 0 || readAll(Fd, Payload.data(), N);
}

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheCapacity) {
  if (Opts.Shards == 0)
    Opts.Shards = 1;
  if (Opts.MaxConnBacklog < (1u << 16))
    Opts.MaxConnBacklog = 1u << 16;
  if (Opts.IdleMs == 0)
    Opts.IdleMs = env::u64("EFC_SESSION_IDLE_MS", Opts.IdleMs);
  Opts.DrainMs = env::u64("EFC_DRAIN_MS", Opts.DrainMs);
}

Server::~Server() { stop(); }

bool Server::start(std::string *Err) {
  auto Fail = [&](const std::string &M) {
    if (Err)
      *Err = M + ": " + strerror(errno);
    for (auto &S : Shards) {
      if (S->Ep >= 0)
        ::close(S->Ep);
      if (S->WakeFd >= 0)
        ::close(S->WakeFd);
      if (S->TcpListen >= 0)
        ::close(S->TcpListen);
    }
    Shards.clear();
    if (UnixListenFd >= 0) {
      ::close(UnixListenFd);
      UnixListenFd = -1;
      ::unlink(Opts.SocketPath.c_str());
    }
    if (TcpListenFd >= 0) {
      ::close(TcpListenFd);
      TcpListenFd = -1;
    }
    for (int I = 0; I < 2; ++I)
      if (StopPipe[I] >= 0) {
        ::close(StopPipe[I]);
        StopPipe[I] = -1;
      }
    return false;
  };

  if (Opts.SocketPath.empty() && !Opts.Tcp) {
    if (Err)
      *Err = "no listener configured (need a socket path or TCP)";
    return false;
  }

  for (unsigned I = 0; I < Opts.Shards; ++I) {
    Shards.push_back(std::make_unique<Shard>());
    Shards.back()->Id = I;
  }

  // Unix listener: single socket owned by shard 0, accepted fds handed
  // to shards round-robin (Unix sockets have no SO_REUSEPORT balancing).
  if (!Opts.SocketPath.empty()) {
    if (Opts.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path))
      return Fail("socket path too long");
    UnixListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (UnixListenFd < 0)
      return Fail("socket");
    ::unlink(Opts.SocketPath.c_str());
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
            sizeof(Addr.sun_path) - 1);
    if (::bind(UnixListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0)
      return Fail("bind " + Opts.SocketPath);
    if (::listen(UnixListenFd, 1024) != 0)
      return Fail("listen");
  }

  // TCP listeners: one SO_REUSEPORT socket per shard so the kernel
  // balances accepts with no handoff at all; when SO_REUSEPORT is
  // unavailable, one listener on shard 0 hands fds off round-robin.
  if (Opts.Tcp) {
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Opts.TcpPort);
    if (::inet_pton(AF_INET, Opts.TcpHost.c_str(), &Addr.sin_addr) != 1)
      Addr.sin_addr.s_addr = INADDR_ANY;
    auto makeListener = [&](bool ReusePort) -> int {
      int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
      if (Fd < 0)
        return -1;
      int One = 1;
      ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
      if (ReusePort &&
          ::setsockopt(Fd, SOL_SOCKET, SO_REUSEPORT, &One, sizeof(One)) !=
              0) {
        ::close(Fd);
        return -1;
      }
      if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
              0 ||
          ::listen(Fd, 1024) != 0) {
        ::close(Fd);
        return -1;
      }
      return Fd;
    };
    TcpReusePort = true;
    for (unsigned I = 0; I < Opts.Shards && TcpReusePort; ++I) {
      int Fd = makeListener(/*ReusePort=*/true);
      if (Fd < 0) {
        TcpReusePort = false;
        break;
      }
      Shards[I]->TcpListen = Fd;
      if (I == 0) {
        // Resolve an ephemeral port so the remaining shards bind it too.
        sockaddr_in Bound{};
        socklen_t Len = sizeof(Bound);
        if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) ==
            0) {
          BoundTcpPort = ntohs(Bound.sin_port);
          Addr.sin_port = Bound.sin_port;
        }
      }
    }
    if (!TcpReusePort) {
      for (auto &S : Shards)
        if (S->TcpListen >= 0) {
          ::close(S->TcpListen);
          S->TcpListen = -1;
        }
      TcpListenFd = makeListener(/*ReusePort=*/false);
      if (TcpListenFd < 0)
        return Fail("tcp listen " + Opts.TcpHost);
      sockaddr_in Bound{};
      socklen_t Len = sizeof(Bound);
      if (::getsockname(TcpListenFd, reinterpret_cast<sockaddr *>(&Bound),
                        &Len) == 0)
        BoundTcpPort = ntohs(Bound.sin_port);
    }
  }

  // O_NONBLOCK on the write end keeps signalStop() safe from a signal
  // handler even if the pipe were somehow full: the write fails instead
  // of blocking inside a handler.
  if (::pipe2(StopPipe, O_NONBLOCK) != 0)
    return Fail("pipe");

  auto &R = metrics::Registry::instance();
  for (auto &SP : Shards) {
    Shard &S = *SP;
    S.Ep = ::epoll_create1(EPOLL_CLOEXEC);
    if (S.Ep < 0)
      return Fail("epoll_create1");
    S.WakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (S.WakeFd < 0)
      return Fail("eventfd");
    auto Add = [&](int Fd, uint32_t Ev) {
      epoll_event E{};
      E.events = Ev;
      E.data.fd = Fd;
      return ::epoll_ctl(S.Ep, EPOLL_CTL_ADD, Fd, &E) == 0;
    };
    // Level-triggered wake + stop fds: the eventfd is read to clear on
    // each wake; the stop pipe is never read — it stays readable, and
    // beginDrain() deregisters it so the drain loop is not spun.
    if (!Add(S.WakeFd, EPOLLIN) || !Add(StopPipe[0], EPOLLIN))
      return Fail("epoll_ctl");
    if (S.TcpListen >= 0 && !Add(S.TcpListen, EPOLLIN | EPOLLET))
      return Fail("epoll_ctl tcp listener");
    if (S.Id == 0 && UnixListenFd >= 0 &&
        !Add(UnixListenFd, EPOLLIN | EPOLLET))
      return Fail("epoll_ctl unix listener");
    if (S.Id == 0 && TcpListenFd >= 0 &&
        !Add(TcpListenFd, EPOLLIN | EPOLLET))
      return Fail("epoll_ctl tcp listener");

    std::string L = "shard=\"" + std::to_string(S.Id) + "\"";
    S.MAccepts =
        &R.counter("efc_server_accepts_total", "Connections accepted", L);
    S.MWakeups = &R.counter("efc_server_epoll_wakeups_total",
                            "epoll_wait returns", L);
    S.MBacklog = &R.gauge("efc_server_out_backlog_bytes",
                          "Reply bytes queued on this shard's connections",
                          L);
    S.MQueueDepth = &R.gauge("efc_server_queue_depth",
                             "Reply frames queued on this shard", L);
  }

  for (auto &SP : Shards)
    SP->Thr = std::thread([this, S = SP.get()] { shardLoop(*S); });
  Started = true;
  return true;
}

void Server::signalStop() {
  StopRequested.store(true, std::memory_order_relaxed);
  if (StopPipe[1] >= 0) {
    ssize_t W;
    do {
      W = ::write(StopPipe[1], "x", 1);
    } while (W < 0 && errno == EINTR);
  }
}

void Server::wait() {
  for (auto &SP : Shards)
    if (SP->Thr.joinable())
      SP->Thr.join();
  for (auto &SP : Shards) {
    if (SP->Ep >= 0) {
      ::close(SP->Ep);
      SP->Ep = -1;
    }
    if (SP->WakeFd >= 0) {
      ::close(SP->WakeFd);
      SP->WakeFd = -1;
    }
    if (SP->TcpListen >= 0) {
      ::close(SP->TcpListen);
      SP->TcpListen = -1;
    }
  }
  if (UnixListenFd >= 0) {
    ::close(UnixListenFd);
    UnixListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
  }
  if (TcpListenFd >= 0) {
    ::close(TcpListenFd);
    TcpListenFd = -1;
  }
  for (int I = 0; I < 2; ++I)
    if (StopPipe[I] >= 0) {
      ::close(StopPipe[I]);
      StopPipe[I] = -1;
    }
}

void Server::stop() {
  signalStop();
  wait();
}

void Server::post(unsigned ShardId, std::function<void()> Fn) {
  Shard &S = *Shards[ShardId];
  {
    std::lock_guard<std::mutex> L(S.MailMu);
    S.Mail.push_back(std::move(Fn));
  }
  uint64_t One = 1;
  ssize_t W;
  do {
    W = ::write(S.WakeFd, &One, sizeof(One));
  } while (W < 0 && errno == EINTR);
}

void Server::drainMail(Shard &S) {
  std::vector<std::function<void()>> Batch;
  {
    std::lock_guard<std::mutex> L(S.MailMu);
    Batch.swap(S.Mail);
  }
  for (auto &Fn : Batch)
    Fn();
}

//===----------------------------------------------------------------------===//
// Shard event loop
//===----------------------------------------------------------------------===//

void Server::shardLoop(Shard &S) {
  epoll_event Events[128];
  for (;;) {
    drainMail(S);

    // Resume reads parked by backpressure — iteratively, so a flush
    // that frees the backlog never recurses back into the read path.
    while (!S.Resume.empty()) {
      ConnPtr C = std::move(S.Resume.back());
      S.Resume.pop_back();
      if (C->Closed || !C->ReadPaused)
        continue;
      if (C->Out.bytes() >= Opts.MaxConnBacklog / 2)
        continue; // still above watermark; EPOLLOUT will requeue
      C->ReadPaused = false;
      updateEpoll(S, C);
      if (!S.Draining)
        readAndExecute(S, C);
    }

    uint64_t Now = steadyMs();
    if (S.Draining) {
      // Close every connection with nothing left to deliver; force the
      // rest once the deadline passes.  Exit only when no connection
      // lives anywhere — while one does, forwards can still arrive.
      std::vector<ConnPtr> Open;
      Open.reserve(S.Conns.size());
      for (auto &[Fd, C] : S.Conns)
        Open.push_back(C);
      for (auto &C : Open)
        if (Now >= S.DrainByMs || (C->Out.empty() && C->CrossPending == 0))
          closeConn(S, C, /*CountBacklogDropped=*/Now >= S.DrainByMs);
      if (S.Conns.empty() &&
          (TotalConns.load(std::memory_order_acquire) == 0 ||
           Now >= S.DrainByMs))
        break;
    }
    if (Opts.IdleMs && !S.Draining &&
        Now - S.LastReapMs >= std::max<uint64_t>(Opts.IdleMs / 4, 10)) {
      S.LastReapMs = Now;
      reapIdle(S, Now);
    }

    int TimeoutMs = S.Draining ? 20
                    : Opts.IdleMs
                        ? int(std::clamp<uint64_t>(Opts.IdleMs / 4, 10, 200))
                        : 200;
    int N = ::epoll_wait(S.Ep, Events, 128, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    S.Ct.Wakeups.fetch_add(1, std::memory_order_relaxed);
    S.MWakeups->inc();
    for (int I = 0; I < N; ++I) {
      int Fd = Events[I].data.fd;
      uint32_t Ev = Events[I].events;
      if (Fd == S.WakeFd) {
        uint64_t Junk;
        while (::read(S.WakeFd, &Junk, sizeof(Junk)) > 0) {
        }
        continue; // mail drained at loop top
      }
      if (Fd == StopPipe[0]) {
        beginDrain(S);
        continue;
      }
      if (Fd == S.TcpListen) {
        acceptReady(S, Fd, /*Tcp=*/true);
        continue;
      }
      if (S.Id == 0 && Fd == UnixListenFd) {
        acceptReady(S, Fd, /*Tcp=*/false);
        continue;
      }
      if (S.Id == 0 && Fd == TcpListenFd) {
        acceptReady(S, Fd, /*Tcp=*/true);
        continue;
      }
      auto It = S.Conns.find(Fd);
      if (It == S.Conns.end())
        continue; // closed earlier in this batch's mail
      // Copy out of the map: closeConn erases the map entry, which would
      // otherwise destroy the very shared_ptr handleConn holds.
      ConnPtr C = It->second;
      handleConn(S, C, Ev);
    }
  }

  // Shard teardown: surviving connections and sessions die with it.
  std::vector<ConnPtr> Leftover;
  for (auto &[Fd, C] : S.Conns)
    Leftover.push_back(C);
  for (auto &C : Leftover)
    closeConn(S, C, /*CountBacklogDropped=*/true);
  std::vector<std::string> Names;
  for (auto &[Name, Sess] : S.Sessions)
    Names.push_back(Name);
  for (auto &Name : Names)
    eraseSession(S, Name);
}

void Server::beginDrain(Shard &S) {
  if (S.Draining)
    return;
  S.Draining = true;
  S.DrainByMs = steadyMs() + Opts.DrainMs;
  ::epoll_ctl(S.Ep, EPOLL_CTL_DEL, StopPipe[0], nullptr);
  if (S.TcpListen >= 0) {
    ::close(S.TcpListen);
    S.TcpListen = -1;
  }
  if (S.Id == 0) {
    if (UnixListenFd >= 0) {
      ::epoll_ctl(S.Ep, EPOLL_CTL_DEL, UnixListenFd, nullptr);
      ::close(UnixListenFd);
      UnixListenFd = -1;
      ::unlink(Opts.SocketPath.c_str());
    }
    if (TcpListenFd >= 0) {
      ::epoll_ctl(S.Ep, EPOLL_CTL_DEL, TcpListenFd, nullptr);
      ::close(TcpListenFd);
      TcpListenFd = -1;
    }
  }
  // Final read: everything the kernel already buffered for us counts as
  // in-flight and is executed before the connection closes — the old
  // server lost these frames on its stop path.
  std::vector<ConnPtr> Open;
  Open.reserve(S.Conns.size());
  for (auto &[Fd, C] : S.Conns)
    Open.push_back(C);
  for (auto &C : Open) {
    if (C->Closed)
      continue;
    if (C->ReadPaused) {
      C->ReadPaused = false;
      updateEpoll(S, C);
    }
    readAndExecute(S, C);
    if (!C->Closed)
      flushConn(S, C);
  }
}

void Server::reapIdle(Shard &S, uint64_t NowMs) {
  std::vector<std::string> Stale;
  for (auto &[Name, Sess] : S.Sessions)
    if (NowMs - Sess->LastActiveMs >= Opts.IdleMs)
      Stale.push_back(Name);
  for (auto &Name : Stale) {
    eraseSession(S, Name);
    S.Ct.SessionsEvicted.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().SessionsEvicted.inc();
  }
}

//===----------------------------------------------------------------------===//
// Accept & connection ownership
//===----------------------------------------------------------------------===//

void Server::acceptReady(Shard &S, int ListenFd, bool Tcp) {
  for (;;) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // EAGAIN or a transient accept error: wait for next edge
    }
    if (Tcp) {
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    }
    // Per-shard SO_REUSEPORT listeners adopt locally; the single-listener
    // paths (Unix socket, no-REUSEPORT TCP) hand off round-robin.
    if (ListenFd == S.TcpListen) {
      adoptConn(S, Fd);
      continue;
    }
    unsigned Target =
        RoundRobin.fetch_add(1, std::memory_order_relaxed) % Shards.size();
    if (Target == S.Id)
      adoptConn(S, Fd);
    else
      post(Target, [this, Target, Fd] {
        Shard &T = *Shards[Target];
        if (T.Draining)
          ::close(Fd);
        else
          adoptConn(T, Fd);
      });
  }
}

void Server::adoptConn(Shard &S, int Fd) {
  auto C = std::make_shared<Conn>();
  C->Fd = Fd;
  C->Owner = S.Id;
  epoll_event E{};
  E.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  E.data.fd = Fd;
  if (::epoll_ctl(S.Ep, EPOLL_CTL_ADD, Fd, &E) != 0) {
    ::close(Fd);
    return;
  }
  S.Conns.emplace(Fd, C);
  S.Ct.Accepts.fetch_add(1, std::memory_order_relaxed);
  S.MAccepts->inc();
  S.Ct.ConnsLive.fetch_add(1, std::memory_order_relaxed);
  TotalConns.fetch_add(1, std::memory_order_acq_rel);
}

void Server::updateEpoll(Shard &S, const ConnPtr &C) {
  epoll_event E{};
  E.events = EPOLLET | (C->ReadPaused ? 0u : (EPOLLIN | EPOLLRDHUP)) |
             (C->WantWrite ? uint32_t(EPOLLOUT) : 0u);
  E.data.fd = C->Fd;
  ::epoll_ctl(S.Ep, EPOLL_CTL_MOD, C->Fd, &E);
}

void Server::handleConn(Shard &S, const ConnPtr &C, uint32_t Events) {
  if (C->Closed)
    return;
  if (Events & EPOLLOUT) {
    C->WantWrite = false; // rearmed by flushConn if still blocked
    flushConn(S, C);
    if (C->Closed)
      return;
  }
  if (Events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
    if (S.Draining) {
      // No new input during drain; but a HUP with nothing left queued
      // means the peer is gone entirely.
      if ((Events & (EPOLLHUP | EPOLLERR)) && C->Out.empty())
        closeConn(S, C, false);
      return;
    }
    readAndExecute(S, C);
  }
}

void Server::readAndExecute(Shard &S, const ConnPtr &C) {
  for (;;) {
    C->In.reserveWritable(ReadChunk);
    ssize_t N = ::read(C->Fd, C->In.writePtr(), C->In.writable());
    if (N > 0) {
      C->In.commit(size_t(N));
      if (!parseFrames(S, C))
        return; // protocol error: connection already doomed
      if (C->Closed || C->ReadPaused)
        return;
      continue;
    }
    if (N == 0) {
      C->PeerEof = true;
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    closeConn(S, C, /*CountBacklogDropped=*/true);
    return;
  }
  if (C->PeerEof && C->Out.empty() && C->CrossPending == 0)
    closeConn(S, C, false);
}

bool Server::parseFrames(Shard &S, const ConnPtr &C) {
  for (;;) {
    std::string_view Frame;
    switch (C->In.nextFrame(MaxFrame, &Frame)) {
    case InputSlab::ParseResult::NeedMore:
      return true;
    case InputSlab::ParseResult::TooLarge:
      // The stream cannot be re-synchronized past a bogus length; say
      // why, then tear the connection down.
      reply(S, C, 'e', "", "frame exceeds 64 MB limit", "");
      closeConn(S, C, /*CountBacklogDropped=*/false);
      return false;
    case InputSlab::ParseResult::Frame: {
      size_t Len = Frame.size();
      execute(S, C, Frame);
      C->In.consumeFrame(Len);
      if (C->Closed)
        return true;
      break;
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// Frame execution
//===----------------------------------------------------------------------===//

void Server::execute(Shard &S, const ConnPtr &C, std::string_view Frame) {
  if (Frame.empty())
    return;
  S.Ct.FramesIn.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::get().FramesIn.inc();
  char Op = Frame[0];
  if (Op == 'S') {
    reply(S, C, 'k', "", statsText(), "");
    return;
  }
  if (Op == 'M') {
    reply(S, C, 'k', "", metrics::Registry::instance().renderPrometheus(),
          "");
    return;
  }
  if (Op == 'Q') {
    reply(S, C, 'k', "", "", "");
    signalStop();
    return;
  }
  if (Op != 'O' && Op != 'F' && Op != 'E' && Op != 'C') {
    reply(S, C, 'e', "", "unknown opcode", "");
    return;
  }
  size_t Nl = Frame.find('\n', 1);
  std::string_view Name = Nl == std::string_view::npos
                              ? Frame.substr(1)
                              : Frame.substr(1, Nl - 1);
  std::string_view Body =
      Nl == std::string_view::npos ? std::string_view() : Frame.substr(Nl + 1);
  if (Name.empty()) {
    reply(S, C, 'e', "", "missing session name", "");
    return;
  }
  if (Op == 'O') {
    openSession(S, C, Name, Body);
    return;
  }

  std::string NameS(Name);
  auto It = S.Sessions.find(NameS);
  if (It != S.Sessions.end()) {
    executeSessionOp(S, C, Op, Name, Body, *It->second);
    return;
  }
  // Not homed here: route through the session's home shard.  This is
  // the slow path — a client that opens and feeds on one connection
  // never takes it.
  unsigned HomeShard = 0;
  bool Found = false;
  {
    std::lock_guard<std::mutex> L(IndexMu);
    auto HIt = SessionIndex.find(NameS);
    if (HIt != SessionIndex.end()) {
      HomeShard = HIt->second.ShardId;
      Found = true;
    }
  }
  if (!Found || HomeShard == S.Id) {
    reply(S, C, 'e', Name, "no such session", "");
    return;
  }
  C->CrossPending++;
  S.Ct.CrossForwards.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::get().CrossForwards.inc();
  post(HomeShard,
       [this, HomeShard, Op, NameS = std::move(NameS),
        BodyS = std::string(Body), C] {
         Shard &H = *Shards[HomeShard];
         auto SIt = H.Sessions.find(NameS);
         if (SIt == H.Sessions.end()) {
           reply(H, C, 'e', NameS, "no such session", "");
           return;
         }
         executeSessionOp(H, C, Op, NameS, BodyS, *SIt->second);
       });
}

void Server::openSession(Shard &S, const ConnPtr &C, std::string_view Name,
                         std::string_view Body) {
  std::string NameS(Name);
  uint64_t Gen = GenCounter.fetch_add(1, std::memory_order_relaxed);
  bool Claimed;
  {
    std::lock_guard<std::mutex> L(IndexMu);
    Claimed = SessionIndex.try_emplace(NameS, Home{S.Id, Gen}).second;
  }
  if (!Claimed) {
    // Unlocked before the reply: reply may flush.
    reply(S, C, 'e', Name, "session already open", "");
    return;
  }
  {
    auto Unclaim = [&] {
      std::lock_guard<std::mutex> L(IndexMu);
      auto It = SessionIndex.find(NameS);
      if (It != SessionIndex.end() && It->second.Gen == Gen)
        SessionIndex.erase(It);
    };
    // Body: backend line, then the spec text.
    size_t Nl = Body.find('\n');
    std::string BackendStr(Nl == std::string_view::npos ? Body
                                                        : Body.substr(0, Nl));
    std::string SpecText(Nl == std::string_view::npos ? std::string_view()
                                                      : Body.substr(Nl + 1));
    // EFC_BACKEND overrides every OPEN's requested backend — operator
    // escape hatch for A/B measurement and for forcing plain bytecode if
    // the fast path ever misbehaves in production.
    if (const char *Forced = getenv("EFC_BACKEND"))
      BackendStr = Forced;
    StreamSession::Backend B;
    if (BackendStr == "vm")
      B = StreamSession::Backend::Vm;
    else if (BackendStr == "fastpath")
      B = StreamSession::Backend::Fast;
    else if (BackendStr == "native")
      B = StreamSession::Backend::Native;
    else {
      Unclaim();
      reply(S, C, 'e', Name, "unknown backend '" + BackendStr + "'", "");
      return;
    }
    std::string Err;
    auto Spec = PipelineSpec::parse(SpecText, &Err);
    if (!Spec) {
      Unclaim();
      reply(S, C, 'e', Name, std::move(Err), "");
      return;
    }
    // The build runs inline on the shard (single-flight through the
    // shared cache, so N shards opening one spec still fuse once).  A
    // cold native build can stall this shard's loop for its duration —
    // the documented tradeoff for a lock-free hot path; warm opens are
    // a hash lookup.
    auto P = Cache.get(*Spec, B == StreamSession::Backend::Native, &Err);
    if (!P) {
      Unclaim();
      reply(S, C, 'e', Name, std::move(Err), "");
      return;
    }
    auto St = StreamSession::open(std::move(P), B, &Err);
    if (!St) {
      Unclaim();
      reply(S, C, 'e', Name, std::move(Err), "");
      return;
    }
    auto Sess = std::make_unique<Session>();
    Sess->Name = NameS;
    Sess->Gen = Gen;
    Sess->Stream.emplace(std::move(*St));
    Sess->LastActiveMs = steadyMs();
    S.Sessions.emplace(NameS, std::move(Sess));
    S.Ct.SessionsOpened.fetch_add(1, std::memory_order_relaxed);
    S.Ct.SessionsLive.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().SessionsOpened.inc();
    reply(S, C, 'k', Name, "", NameS);
  }
}

void Server::executeSessionOp(Shard &S, const ConnPtr &C, char Op,
                              std::string_view Name, std::string_view Body,
                              Session &Sess) {
  Sess.LastActiveMs = steadyMs();
  ServerMetrics &M = ServerMetrics::get();
  switch (Op) {
  case 'F': {
    if (!Sess.Stream) {
      reply(S, C, 'e', Name, "session not open", "");
      return;
    }
    Stopwatch Timer;
    // Zero-copy: Body views the connection's input slab (or the
    // forwarded copy); the session consumes it in place.
    bool Ok = Sess.Stream->feed(Body.data(), Body.size());
    std::string Out = Sess.Stream->takeOutput();
    M.FeedLatency.observe(Timer.seconds());
    M.FeedBytes.observe(double(Body.size()));
    M.BytesIn.inc(Body.size());
    M.BytesOut.inc(Out.size());
    S.Ct.BytesIn.fetch_add(Body.size(), std::memory_order_relaxed);
    S.Ct.BytesOut.fetch_add(Out.size(), std::memory_order_relaxed);
    if (!Ok) {
      S.Ct.Rejected.fetch_add(1, std::memory_order_relaxed);
      M.Rejected.inc();
      eraseSession(S, Sess.Name);
      reply(S, C, 'e', Name, "input rejected by the pipeline", "");
      return;
    }
    reply(S, C, 'k', Name, std::move(Out), Name);
    return;
  }
  case 'E': {
    if (!Sess.Stream) {
      eraseSession(S, Sess.Name);
      reply(S, C, 'e', Name, "session not open", "");
      return;
    }
    bool Ok = Sess.Stream->finish();
    std::string Out = Sess.Stream->takeOutput();
    M.BytesOut.inc(Out.size());
    S.Ct.BytesOut.fetch_add(Out.size(), std::memory_order_relaxed);
    if (!Ok) {
      S.Ct.Rejected.fetch_add(1, std::memory_order_relaxed);
      M.Rejected.inc();
    }
    eraseSession(S, Sess.Name);
    if (!Ok)
      reply(S, C, 'e', Name, "stream rejected by the finalizer", "");
    else
      reply(S, C, 'k', Name, std::move(Out), Name);
    return;
  }
  case 'C':
    eraseSession(S, Sess.Name);
    reply(S, C, 'k', Name, "", "");
    return;
  default:
    reply(S, C, 'e', Name, "bad opcode", "");
    return;
  }
}

void Server::eraseSession(Shard &S, const std::string &Name) {
  auto It = S.Sessions.find(Name);
  if (It == S.Sessions.end())
    return;
  Session &Sess = *It->second;
  if (Sess.Stream) {
    // Fold the session's run-acceleration telemetry into the shard
    // totals exactly once, at end of life (home-shard-ordered, so the
    // stream is quiescent here).
    S.Ct.FastRuns.fetch_add(Sess.Stream->fastRuns(),
                            std::memory_order_relaxed);
    S.Ct.FastRunElements.fetch_add(Sess.Stream->fastRunElements(),
                                   std::memory_order_relaxed);
    S.Ct.FastWideElements.fetch_add(Sess.Stream->fastWideElements(),
                                    std::memory_order_relaxed);
    S.Ct.FastSpecRuns.fetch_add(Sess.Stream->fastSpecRuns(),
                                std::memory_order_relaxed);
    S.Ct.FastSpecElements.fetch_add(Sess.Stream->fastSpecElements(),
                                    std::memory_order_relaxed);
  }
  uint64_t Gen = Sess.Gen;
  // Copy before the erase: callers routinely pass the session's own Name
  // member, which dies with the map entry.
  std::string Key(Name);
  S.Sessions.erase(It);
  S.Ct.SessionsLive.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> L(IndexMu);
  auto HIt = SessionIndex.find(Key);
  if (HIt != SessionIndex.end() && HIt->second.Gen == Gen)
    SessionIndex.erase(HIt);
}

void Server::doomSessionByName(const std::string &Name, uint64_t Gen) {
  unsigned HomeShard = 0;
  uint64_t HomeGen = 0;
  {
    std::lock_guard<std::mutex> L(IndexMu);
    auto It = SessionIndex.find(Name);
    if (It == SessionIndex.end())
      return;
    if (Gen != 0 && It->second.Gen != Gen)
      return; // the name was reopened; the new epoch is healthy
    HomeShard = It->second.ShardId;
    HomeGen = It->second.Gen;
  }
  post(HomeShard, [this, HomeShard, Name, HomeGen] {
    Shard &H = *Shards[HomeShard];
    auto It = H.Sessions.find(Name);
    if (It != H.Sessions.end() && It->second->Gen == HomeGen)
      eraseSession(H, Name);
  });
}

//===----------------------------------------------------------------------===//
// Replies, flushing, backpressure
//===----------------------------------------------------------------------===//

void Server::reply(Shard &S, const ConnPtr &C, char Status,
                   std::string_view Name, std::string &&Body,
                   std::string_view SessTag) {
  if (C->Owner == S.Id) {
    if (C->Closed) {
      S.Ct.FramesDropped.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::get().FramesDropped.inc();
      if (!SessTag.empty())
        doomSessionByName(std::string(SessTag), 0);
      return;
    }
    size_t BytesBefore = C->Out.bytes();
    C->Out.push(Status, Name, std::move(Body), SessTag);
    S.Ct.Replies.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().Replies.inc();
    if (Status == 'e') {
      S.Ct.Errors.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::get().Errors.inc();
    }
    int64_t Delta = int64_t(C->Out.bytes()) - int64_t(BytesBefore);
    S.Ct.BacklogBytes.fetch_add(Delta, std::memory_order_relaxed);
    S.MBacklog->add(Delta);
    ServerMetrics::get().QueueDepth.add(1);
    S.MQueueDepth->add(1);
    flushConn(S, C);
    return;
  }
  // Cross-shard: hop to the owner, which is the only thread allowed to
  // touch this connection's queue or descriptor.
  queueOnOwner(*Shards[C->Owner], C, Status, Name, std::move(Body), SessTag);
}

void Server::queueOnOwner(Shard &Owner, const ConnPtr &C, char Status,
                          std::string_view Name, std::string &&Body,
                          std::string_view SessTag) {
  post(Owner.Id, [this, OwnerId = Owner.Id, C, Status,
                  NameS = std::string(Name), BodyS = std::move(Body),
                  TagS = std::string(SessTag)]() mutable {
    Shard &O = *Shards[OwnerId];
    if (C->CrossPending)
      C->CrossPending--;
    if (C->Closed) {
      O.Ct.FramesDropped.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::get().FramesDropped.inc();
      if (!TagS.empty())
        doomSessionByName(TagS, 0);
      return;
    }
    size_t BytesBefore = C->Out.bytes();
    C->Out.push(Status, NameS, std::move(BodyS), TagS);
    O.Ct.Replies.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().Replies.inc();
    if (Status == 'e') {
      O.Ct.Errors.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::get().Errors.inc();
    }
    int64_t Delta = int64_t(C->Out.bytes()) - int64_t(BytesBefore);
    O.Ct.BacklogBytes.fetch_add(Delta, std::memory_order_relaxed);
    O.MBacklog->add(Delta);
    ServerMetrics::get().QueueDepth.add(1);
    O.MQueueDepth->add(1);
    flushConn(O, C);
  });
}

void Server::flushConn(Shard &S, const ConnPtr &C) {
  if (C->Closed)
    return;
  size_t BytesBefore = C->Out.bytes();
  size_t FramesBefore = C->Out.frames();
  uint64_t Wrote = 0;
  OutQueue::FlushResult R = C->Out.flush(C->Fd, &Wrote);
  int64_t ByteDelta = int64_t(C->Out.bytes()) - int64_t(BytesBefore);
  int64_t FrameDelta = int64_t(C->Out.frames()) - int64_t(FramesBefore);
  S.Ct.BacklogBytes.fetch_add(ByteDelta, std::memory_order_relaxed);
  S.MBacklog->add(ByteDelta);
  ServerMetrics::get().QueueDepth.add(FrameDelta);
  S.MQueueDepth->add(FrameDelta);

  switch (R) {
  case OutQueue::FlushResult::Drained:
    if (C->WantWrite) {
      C->WantWrite = false;
      updateEpoll(S, C);
    }
    if (C->PeerEof && C->CrossPending == 0) {
      closeConn(S, C, false);
      return;
    }
    if (C->ReadPaused && !S.Draining)
      S.Resume.push_back(C);
    return;
  case OutQueue::FlushResult::Blocked:
    if (!C->WantWrite) {
      C->WantWrite = true;
      updateEpoll(S, C);
    }
    if (C->Out.bytes() > Opts.MaxConnBacklog) {
      // A client this far behind is dead weight: every queued reply is
      // undeliverable within bounded memory.  Doom it (and the sessions
      // whose replies it holds) rather than buffer without bound.
      closeConn(S, C, /*CountBacklogDropped=*/true);
      return;
    }
    if (!C->ReadPaused && C->Out.bytes() >= Opts.MaxConnBacklog / 2) {
      C->ReadPaused = true;
      updateEpoll(S, C);
    }
    return;
  case OutQueue::FlushResult::Error:
    closeConn(S, C, /*CountBacklogDropped=*/true);
    return;
  }
}

void Server::closeConn(Shard &S, const ConnPtr &C, bool CountBacklogDropped) {
  if (C->Closed)
    return;
  C->Closed = true;
  std::vector<std::string> Lost;
  size_t QueuedBytes = C->Out.bytes();
  size_t QueuedFrames = C->Out.frames();
  size_t Dropped = C->Out.dropAll(&Lost);
  S.Ct.BacklogBytes.fetch_sub(int64_t(QueuedBytes),
                              std::memory_order_relaxed);
  S.MBacklog->sub(int64_t(QueuedBytes));
  ServerMetrics::get().QueueDepth.sub(int64_t(QueuedFrames));
  S.MQueueDepth->sub(int64_t(QueuedFrames));
  if (CountBacklogDropped && Dropped) {
    S.Ct.FramesDropped.fetch_add(Dropped, std::memory_order_relaxed);
    ServerMetrics::get().FramesDropped.inc(Dropped);
  }
  // Undelivered replies: those sessions lost output the client can
  // never recover; discard them so they cannot serve a stream with a
  // silent hole in it.
  for (auto &Name : Lost)
    doomSessionByName(Name, 0);
  ::close(C->Fd); // shard-owned: no other thread can race this close
  S.Conns.erase(C->Fd);
  C->Fd = -1;
  S.Ct.ConnsLive.fetch_sub(1, std::memory_order_relaxed);
  TotalConns.fetch_sub(1, std::memory_order_acq_rel);
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

std::string Server::statsText() const {
  PipelineCache::Stats CS = Cache.stats();
  uint64_t Opened = 0, FramesIn = 0, Replies = 0, Errors = 0, Rejected = 0,
           Dropped = 0, BytesIn = 0, BytesOut = 0, Evicted = 0, Cross = 0,
           Accepts = 0, FastRuns = 0, FastRunElems = 0, FastWide = 0,
           FastSpecRuns = 0, FastSpecElems = 0;
  int64_t Live = 0, Conns = 0;
  std::string PerShard;
  for (const auto &SP : Shards) {
    const ShardCounters &Ct = SP->Ct;
    Opened += Ct.SessionsOpened.load(std::memory_order_relaxed);
    FramesIn += Ct.FramesIn.load(std::memory_order_relaxed);
    Replies += Ct.Replies.load(std::memory_order_relaxed);
    Errors += Ct.Errors.load(std::memory_order_relaxed);
    Rejected += Ct.Rejected.load(std::memory_order_relaxed);
    Dropped += Ct.FramesDropped.load(std::memory_order_relaxed);
    BytesIn += Ct.BytesIn.load(std::memory_order_relaxed);
    BytesOut += Ct.BytesOut.load(std::memory_order_relaxed);
    Evicted += Ct.SessionsEvicted.load(std::memory_order_relaxed);
    Cross += Ct.CrossForwards.load(std::memory_order_relaxed);
    Accepts += Ct.Accepts.load(std::memory_order_relaxed);
    FastRuns += Ct.FastRuns.load(std::memory_order_relaxed);
    FastRunElems += Ct.FastRunElements.load(std::memory_order_relaxed);
    FastWide += Ct.FastWideElements.load(std::memory_order_relaxed);
    FastSpecRuns += Ct.FastSpecRuns.load(std::memory_order_relaxed);
    FastSpecElems += Ct.FastSpecElements.load(std::memory_order_relaxed);
    Live += Ct.SessionsLive.load(std::memory_order_relaxed);
    Conns += Ct.ConnsLive.load(std::memory_order_relaxed);
    char SBuf[192];
    snprintf(SBuf, sizeof(SBuf),
             "\nshard%u: accepts=%llu wakeups=%llu frames=%llu conns=%lld "
             "sessions=%lld backlog_bytes=%lld forwards=%llu",
             SP->Id,
             (unsigned long long)Ct.Accepts.load(std::memory_order_relaxed),
             (unsigned long long)Ct.Wakeups.load(std::memory_order_relaxed),
             (unsigned long long)Ct.FramesIn.load(std::memory_order_relaxed),
             (long long)Ct.ConnsLive.load(std::memory_order_relaxed),
             (long long)Ct.SessionsLive.load(std::memory_order_relaxed),
             (long long)Ct.BacklogBytes.load(std::memory_order_relaxed),
             (unsigned long long)
                 Ct.CrossForwards.load(std::memory_order_relaxed));
    PerShard += SBuf;
  }

  char Buf[640];
  snprintf(Buf, sizeof(Buf),
           "sessions_opened=%llu sessions_active=%lld frames_in=%llu "
           "replies=%llu errors=%llu rejected=%llu frames_dropped=%llu "
           "evicted=%llu cross_forwards=%llu accepts=%llu conns=%lld "
           "bytes_in=%llu "
           "bytes_out=%llu fast_runs=%llu fast_run_elems=%llu "
           "fast_wide_elems=%llu fast_spec_runs=%llu "
           "fast_spec_elems=%llu "
           "shards=%u backlog_cap=%zu tcp=%s",
           (unsigned long long)Opened, (long long)Live,
           (unsigned long long)FramesIn, (unsigned long long)Replies,
           (unsigned long long)Errors, (unsigned long long)Rejected,
           (unsigned long long)Dropped, (unsigned long long)Evicted,
           (unsigned long long)Cross, (unsigned long long)Accepts,
           (long long)Conns, (unsigned long long)BytesIn,
           (unsigned long long)BytesOut, (unsigned long long)FastRuns,
           (unsigned long long)FastRunElems, (unsigned long long)FastWide,
           (unsigned long long)FastSpecRuns,
           (unsigned long long)FastSpecElems, Opts.Shards,
           Opts.MaxConnBacklog,
           !Opts.Tcp          ? "off"
           : TcpReusePort     ? "reuseport"
                              : "handoff");
  // Speculation telemetry, read back from the global registry (the
  // parallel executor folds its counters there; re-registration interns
  // to the same objects).  Convergence distance distribution is in the
  // Prometheus exposition (efc_parallel_convergence_bytes).
  auto &R = metrics::Registry::instance();
  metrics::Histogram &H =
      R.histogram("efc_parallel_convergence_bytes",
                  "elements consumed per chunk before lanes converged to one",
                  {16, 64, 256, 1024, 4096, 16384, 65536});
  char PBuf[320];
  snprintf(PBuf, sizeof(PBuf),
           "\nparallel: feeds=%llu chunks_planned=%llu "
           "chunks_speculated=%llu chunks_sequential=%llu "
           "lanes_started=%llu lanes_abandoned=%llu lanes_merged=%llu "
           "replay_elems=%llu converge_p50_bytes<=%.0f",
           (unsigned long long)R.counter("efc_parallel_feeds_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_chunks_planned_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_chunks_speculated_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_chunks_sequential_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_lanes_started_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_lanes_abandoned_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_lanes_merged_total").value(),
           (unsigned long long)
               R.counter("efc_parallel_replay_elements_total").value(),
           [&H] {
             uint64_t Total = H.count(), Acc = 0;
             for (unsigned I = 0; I < H.numBounds(); ++I) {
               Acc += H.bucketCount(I);
               if (2 * Acc >= Total && Total)
                 return H.bound(I);
             }
             return H.numBounds() ? H.bound(H.numBounds() - 1) : 0.0;
           }());
  return std::string(Buf) + PerShard + PBuf + "\ncache: " + CS.str() + "\n";
}
