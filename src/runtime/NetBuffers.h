//===- runtime/NetBuffers.h - Zero-copy frame buffers -----------*- C++ -*-===//
///
/// \file
/// The two per-connection buffers of the sharded event-loop server
/// (runtime/Server.h).  Both are single-owner: exactly one shard thread
/// touches a connection's buffers, so neither type carries a lock.
///
/// * `InputSlab` — a contiguous grow/compact byte slab the shard reads
///   socket bytes into.  Length-prefixed frames are parsed *in place*:
///   `nextFrame` hands out a `string_view` over the slab, so a feed
///   chunk travels socket → slab → `StreamSession::feed` without ever
///   being copied into a staging `std::string` (the old server copied
///   twice: recvFrame into a string, then a substr into the task).
///   Torn frames are the normal case, not an error: a header or payload
///   split at any byte simply stays buffered until the rest arrives.
///
/// * `OutQueue` — a FIFO of response frames awaiting the socket.  Each
///   message keeps its 4-byte length prefix + status line separate from
///   the (moved, never copied) body so a flush can gather many frames
///   into one `writev`.  The queue is bounded by the server: a slow
///   client whose backlog passes the cap is doomed rather than allowed
///   to pin server memory.  Messages carry the session name they answer,
///   so a doomed connection can doom exactly the sessions whose replies
///   were lost.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_RUNTIME_NETBUFFERS_H
#define EFC_RUNTIME_NETBUFFERS_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace efc::runtime {

/// Contiguous input slab with in-place frame parsing.  Layout:
/// [0, Head) consumed, [Head, Tail) buffered unparsed bytes,
/// [Tail, Buf.size()) writable.  Compaction happens only when more
/// write room is needed, so a hot connection that keeps up never moves
/// bytes at all.
class InputSlab {
public:
  /// Guarantees at least \p N writable bytes at writePtr(), compacting
  /// (memmove of the unparsed remainder to offset 0) and growing
  /// geometrically as needed.
  void reserveWritable(size_t N);

  char *writePtr() { return Buf.data() + Tail; }
  size_t writable() const { return Buf.size() - Tail; }
  /// Accounts \p N bytes just read into writePtr().
  void commit(size_t N) { Tail += N; }

  /// Bytes buffered but not yet consumed.
  size_t pending() const { return Tail - Head; }

  enum class ParseResult {
    Frame,    ///< *Out is one complete frame payload (in-place view)
    NeedMore, ///< header or payload incomplete; read more bytes
    TooLarge, ///< declared length exceeds \p MaxFrame — unrecoverable
  };

  /// Parses the next length-prefixed frame at Head.  On Frame, *Out
  /// views the payload inside the slab — valid until the next
  /// reserveWritable/consumeFrame — and the caller must consumeFrame()
  /// after dispatching it.
  ParseResult nextFrame(size_t MaxFrame, std::string_view *Out) const;

  /// Consumes the frame last returned by nextFrame (header + payload).
  void consumeFrame(size_t PayloadLen) { Head += 4 + PayloadLen; }

private:
  std::vector<char> Buf;
  size_t Head = 0, Tail = 0;
};

/// One queued response frame: Prefix is the 4-byte little-endian length
/// header plus the status byte, session name and '\n'; Body the payload
/// (moved from StreamSession::takeOutput, never copied).  Sess tags the
/// session this frame answers ("" for stats/metrics/shutdown replies).
struct OutMsg {
  std::string Prefix;
  std::string Body;
  std::string Sess;
  size_t Off = 0; ///< bytes of (Prefix+Body) already written
};

/// Bounded FIFO of response frames with gathering writev flush.
class OutQueue {
public:
  /// Builds the wire prefix and enqueues the frame.
  void push(char Status, std::string_view Name, std::string &&Body,
            std::string_view Sess);

  bool empty() const { return Q.empty(); }
  size_t bytes() const { return Bytes; }
  size_t frames() const { return Q.size(); }

  enum class FlushResult {
    Drained, ///< queue empty, nothing left to write
    Blocked, ///< kernel buffer full (EAGAIN) — wait for EPOLLOUT
    Error,   ///< peer gone (EPIPE/ECONNRESET/...) — doom the connection
  };

  /// Writes as much of the queue as the socket accepts, gathering up to
  /// \p MaxIov segments per writev (MSG_NOSIGNAL, so a vanished peer
  /// surfaces as Error, not SIGPIPE).  \p WroteOut accumulates bytes
  /// actually written.
  FlushResult flush(int Fd, uint64_t *WroteOut = nullptr,
                    unsigned MaxIov = 64);

  /// Drops every queued frame, appending each distinct non-empty session
  /// tag to \p LostSessions and returning the number of frames dropped.
  size_t dropAll(std::vector<std::string> *LostSessions);

private:
  std::deque<OutMsg> Q;
  size_t Bytes = 0;
};

} // namespace efc::runtime

#endif // EFC_RUNTIME_NETBUFFERS_H
