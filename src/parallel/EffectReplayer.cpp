//===- parallel/EffectReplayer.cpp - Ordered effect materialization -===//

#include "parallel/EffectReplayer.h"

#include <utility>

namespace efc::parallel {

ReplayOutcome replayLane(const ChunkSpecResult &CR,
                         const CompiledTransducer &T, unsigned &State,
                         std::vector<uint64_t> &Regs,
                         std::vector<uint64_t> &Out) {
  ReplayOutcome RO;
  if (!CR.Speculated)
    return RO;
  size_t Idx = SIZE_MAX;
  for (size_t I = 0; I < CR.Lanes.size(); ++I)
    if (CR.Lanes[I].EntryState == State) {
      Idx = I;
      break;
    }
  if (Idx == SIZE_MAX)
    return RO; // entry state reached only via fallback: planner miss
  // The merge chain must be clean end to end before anything is emitted.
  for (int I = int(Idx); I >= 0; I = CR.Lanes[I].MergedInto)
    if (CR.Lanes[I].Poisoned)
      return RO;

  const unsigned NR = T.numRegSlots();
  const size_t OutStart = Out.size();
  CompiledTransducer::Cursor Scratch(T);
  std::vector<uint64_t> Seed(NR);

  // One exact reservation for the whole merge chain: each link
  // contributes the slice of its recorded output past the previous
  // link's merge point, so the interleaved inserts below never
  // reallocate.  (Deferred log programs can emit on top of this — rare,
  // and vector growth covers them.)
  {
    size_t Need = 0, B = 0;
    for (int I = int(Idx);;) {
      const Lane &L = CR.Lanes[I];
      Need += L.Out.size() - B;
      if (L.MergedInto < 0)
        break;
      B = L.MergeOutPos;
      I = L.MergedInto;
    }
    Out.reserve(Out.size() + Need);
  }

  // Walk the merge chain: each link contributes the slice of its leader
  // recorded after the merge point, interleaving deferred log entries at
  // their recorded output positions.
  size_t OB = 0, LB = 0;
  for (int I = int(Idx);;) {
    const Lane &L = CR.Lanes[I];
    for (size_t E = LB; E < L.Log.size(); ++E) {
      const LogEntry &LE = L.Log[E];
      Out.insert(Out.end(), L.Out.begin() + OB, L.Out.begin() + LE.OutPos);
      OB = LE.OutPos;
      for (unsigned Rg = 0; Rg < NR; ++Rg)
        Seed[Rg] = ((LE.Known >> Rg) & 1) ? L.LogRegs[LE.RegsOff + Rg]
                                          : Regs[Rg];
      Scratch.restore(0, Seed);
      Scratch.setInput(LE.X);
      bool Ok = Scratch.execProgram(*LE.Prog, Out);
      std::span<const uint64_t> RS = std::as_const(Scratch).regSlots();
      Regs.assign(RS.begin(), RS.end());
      if (!Ok) {
        RO.Hit = RO.Rejected = true;
        RO.ElementsReplayed = Out.size() - OutStart;
        return RO;
      }
    }
    Out.insert(Out.end(), L.Out.begin() + OB, L.Out.end());
    if (L.MergedInto < 0) {
      RO.Hit = true;
      RO.ElementsReplayed = Out.size() - OutStart;
      if (L.Rejected) {
        RO.Rejected = true;
        State = L.ExitState;
        return RO;
      }
      // Exit registers: slots known at chunk end are exact from the
      // lane; the rest were only ever advanced by logged programs, whose
      // replay above kept Regs exact.
      for (unsigned Rg = 0; Rg < NR; ++Rg)
        if ((L.KnownAtExit >> Rg) & 1)
          Regs[Rg] = L.RegsAtExit[Rg];
      State = L.ExitState;
      return RO;
    }
    OB = L.MergeOutPos;
    LB = L.MergeLogPos;
    I = L.MergedInto;
  }
}

} // namespace efc::parallel
