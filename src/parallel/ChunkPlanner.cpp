//===- parallel/ChunkPlanner.cpp - Split-point planning ----------------===//

#include "parallel/ChunkPlanner.h"

#include <algorithm>

namespace efc::parallel {

namespace {

/// Linear read-before-write scan over one leaf program.  Leaf programs
/// compiled by compileRuleProgram are straight-line (one Next, no
/// branches), which makes the masks exact; if a program does carry
/// Jz/Jmp, read subtraction is disabled so both masks stay sound
/// over-approximations and HasJumps routes the action to the deferred
/// replay log.
void analyzeProgram(const VmProgram &P, unsigned NR,
                    ParallelPlan::ActionInfo &AI) {
  for (const VmInstr &I : P.Code)
    if (I.Op == VmOp::Jz || I.Op == VmOp::Jmp) {
      AI.HasJumps = true;
      break;
    }
  uint64_t Written = 0;
  auto Read = [&](uint16_t S) {
    if (S < NR && !((Written >> S) & 1))
      AI.ReadMask |= uint64_t(1) << S;
  };
  for (const VmInstr &I : P.Code) {
    switch (I.Op) {
    case VmOp::Const:
    case VmOp::Jmp:
    case VmOp::Next:
    case VmOp::Accept:
    case VmOp::Reject:
      break;
    case VmOp::Mov:
    case VmOp::Neg:
    case VmOp::NotBits:
    case VmOp::NotBool:
    case VmOp::SExt:
    case VmOp::Extract:
    case VmOp::Jz:
    case VmOp::Emit:
      Read(I.A);
      break;
    case VmOp::Select:
      Read(I.A);
      Read(I.B);
      Read(I.C);
      break;
    default: // all two-operand ALU ops
      Read(I.A);
      Read(I.B);
      break;
    }
    switch (I.Op) {
    case VmOp::Jz:
    case VmOp::Jmp:
    case VmOp::Emit:
    case VmOp::Next:
    case VmOp::Accept:
    case VmOp::Reject:
      break;
    default:
      if (I.Dst < NR) {
        AI.WriteMask |= uint64_t(1) << I.Dst;
        if (!AI.HasJumps)
          Written |= uint64_t(1) << I.Dst;
      }
    }
  }
  // Straight-line code executes top to bottom, so the first terminator
  // is the one that runs; when it is Next the successor is static.
  if (!AI.HasJumps)
    for (const VmInstr &I : P.Code) {
      if (I.Op == VmOp::Next) {
        AI.StaticTarget = int(I.Imm);
        break;
      }
      if (I.Op == VmOp::Accept || I.Op == VmOp::Reject)
        break;
    }
}

/// Abstractly evaluates \p P with the input slot pinned to \p X and every
/// register slot unknown, forking at branches whose condition depends on
/// a register.  Input-only guards fold with the interpreter's own
/// arithmetic (evalVmPureOp), so the enumerated paths are exactly the
/// executions possible at runtime for this byte over all register
/// valuations — a superset of the single real path, never a guess.
/// Returns false (caller degrades to the whole-program footprint) when
/// the path count or step budget overflows.
bool analyzeByte(const VmProgram &P, unsigned NR, unsigned NumSlots,
                 unsigned InSlot, uint64_t X, ParallelPlan::ByteInfo &BI) {
  struct Path {
    size_t Pc = 0;
    std::vector<uint64_t> V;
    std::vector<uint8_t> K;
    uint64_t Written = 0;
    uint64_t Reads = 0;
  };
  constexpr size_t MaxPaths = 64;
  const size_t MaxSteps = 64 * std::max<size_t>(P.Code.size(), 1);

  Path Init;
  Init.V.assign(NumSlots, 0);
  Init.K.assign(NumSlots, 0);
  Init.V[InSlot] = X;
  Init.K[InSlot] = 1;

  std::vector<Path> Work;
  Work.push_back(std::move(Init));
  size_t Steps = 0, Done = 0;
  bool AnyAccept = false, AnyReject = false;
  int Target = -2; // -2: none seen yet; -1: conflicting; >= 0: unique
  auto Finish = [&](Path &Pt, bool IsNext, bool IsReject, uint64_t Tgt) {
    BI.ReadMask |= Pt.Reads;
    BI.WriteMay |= Pt.Written;
    AnyReject |= IsReject;
    AnyAccept |= !IsNext && !IsReject;
    if (IsNext)
      Target = Target == -2 || Target == int(Tgt) ? int(Tgt) : -1;
    ++Done;
  };

  while (!Work.empty()) {
    Path Pt = std::move(Work.back());
    Work.pop_back();
    for (;;) {
      if (++Steps > MaxSteps || Pt.Pc >= P.Code.size())
        return false;
      const VmInstr &I = P.Code[Pt.Pc++];
      switch (I.Op) {
      case VmOp::Jz:
        if (I.A < NR && !((Pt.Written >> I.A) & 1))
          Pt.Reads |= uint64_t(1) << I.A;
        if (Pt.K[I.A]) {
          if (Pt.V[I.A] == 0)
            Pt.Pc = size_t(I.Imm);
          continue;
        }
        // Register-dependent guard: follow both outcomes.
        if (Work.size() + Done + 2 > MaxPaths)
          return false;
        {
          Path Fork = Pt;
          Fork.Pc = size_t(I.Imm);
          Work.push_back(std::move(Fork));
        }
        continue;
      case VmOp::Jmp:
        Pt.Pc = size_t(I.Imm);
        continue;
      case VmOp::Emit:
        if (I.A < NR && !((Pt.Written >> I.A) & 1))
          Pt.Reads |= uint64_t(1) << I.A;
        continue;
      case VmOp::Next:
        Finish(Pt, true, false, I.Imm);
        break;
      case VmOp::Accept:
        Finish(Pt, false, false, 0);
        break;
      case VmOp::Reject:
        Finish(Pt, false, true, 0);
        break;
      default: {
        auto ReadOp = [&](uint16_t S) {
          if (S < NR && !((Pt.Written >> S) & 1))
            Pt.Reads |= uint64_t(1) << S;
          return Pt.K[S] != 0;
        };
        bool Kn = true;
        switch (I.Op) {
        case VmOp::Const:
          break;
        case VmOp::Mov:
        case VmOp::Neg:
        case VmOp::NotBits:
        case VmOp::NotBool:
        case VmOp::SExt:
        case VmOp::Extract:
          Kn = ReadOp(I.A);
          break;
        case VmOp::Select: {
          bool Ka = ReadOp(I.A), Kb = ReadOp(I.B), Kc = ReadOp(I.C);
          Kn = Ka && Kb && Kc;
          break;
        }
        default:
          Kn = ReadOp(I.A) & ReadOp(I.B);
          break;
        }
        Pt.V[I.Dst] = Kn ? evalVmPureOp(I, Pt.V.data()) : 0;
        Pt.K[I.Dst] = Kn;
        if (I.Dst < NR)
          Pt.Written |= uint64_t(1) << I.Dst;
        continue;
      }
      }
      break; // path finished
    }
  }

  BI.Target = Target >= 0 && !AnyAccept ? Target : -1;
  BI.AlwaysRejects = Target == -2 && !AnyAccept && AnyReject;
  return true;
}

} // namespace

ParallelPlan ParallelPlan::build(const CompiledTransducer &T,
                                 const FastPathPlan &FP) {
  ParallelPlan P;
  P.NR = T.numRegSlots();
  P.Info.resize(FP.numStates());
  P.DInfo.resize(FP.numStates());
  P.BInfo.resize(FP.numStates());
  for (unsigned Q = 0; Q < FP.numStates() && Q < T.numStates(); ++Q) {
    const VmProgram &DP = T.deltaProgram(Q);
    analyzeProgram(DP, P.NR, P.DInfo[Q]);
    for (unsigned B = 0; B < 256; ++B) {
      ByteInfo &BI = P.BInfo[Q][B];
      if (!analyzeByte(DP, P.NR, T.numSlots(), P.NR, B, BI)) {
        // Analysis overflowed: degrade to the whole-program footprint.
        BI = ByteInfo();
        BI.ReadMask = P.DInfo[Q].ReadMask;
        BI.WriteMay = P.DInfo[Q].WriteMask;
        BI.Target = P.DInfo[Q].StaticTarget;
      }
    }
  }
  for (unsigned Q = 0; Q < FP.numStates(); ++Q) {
    const FastPathPlan::StateTable &ST = FP.stateTable(Q);
    if (!ST.HasTable)
      continue;
    ++P.NumTableStates;
    auto &AIs = P.Info[Q];
    AIs.resize(ST.Actions.size());
    for (size_t K = 0; K < ST.Actions.size(); ++K)
      if (ST.Actions[K].K == FastPathPlan::Action::Kind::Program)
        analyzeProgram(ST.Actions[K].Code, P.NR, AIs[K]);
    for (unsigned B = 0; B < 256; ++B) {
      const FastPathPlan::Action &A = ST.Actions[ST.Dispatch[B]];
      switch (A.K) {
      case FastPathPlan::Action::Kind::Jump:
      case FastPathPlan::Action::Kind::Const:
      case FastPathPlan::Action::Kind::Program:
        P.Sync[B].push_back(A.Target);
        break;
      case FastPathPlan::Action::Kind::Reject:
        // A rejecting byte ends the stream; it contributes no successor.
        break;
      case FastPathPlan::Action::Kind::Fallback:
        // Bytecode decides; the per-byte abstract evaluation below
        // enumerates its successor when it is register-independent.
        break;
      }
    }
  }
  // Fallback states (and Fallback dispatch entries of table states)
  // contribute the successors the per-byte analysis proved unique.
  // Bytes whose successor is register-dependent leave their set
  // incomplete: an entry miss at stitch time re-runs the chunk
  // sequentially, so incompleteness costs speed, not correctness.
  for (unsigned Q = 0; Q < FP.numStates() && Q < T.numStates(); ++Q) {
    const FastPathPlan::StateTable &ST = FP.stateTable(Q);
    for (unsigned B = 0; B < 256; ++B) {
      if (ST.HasTable &&
          ST.Actions[ST.Dispatch[B]].K != FastPathPlan::Action::Kind::Fallback)
        continue;
      if (int Tg = P.BInfo[Q][B].Target; Tg >= 0)
        P.Sync[B].push_back(uint32_t(Tg));
    }
  }
  for (auto &S : P.Sync) {
    std::sort(S.begin(), S.end());
    S.erase(std::unique(S.begin(), S.end()), S.end());
  }
  P.Eligible = P.NumTableStates > 0 && P.NR <= 64;
  return P;
}

std::vector<PlannedChunk> planChunks(const ParallelPlan &PP,
                                     std::span<const uint64_t> In,
                                     const ParallelOptions &Opts) {
  const size_t N = In.size();
  std::vector<size_t> Bounds;
  if (!Opts.ForcedBoundaries.empty()) {
    Bounds = Opts.ForcedBoundaries;
    std::sort(Bounds.begin(), Bounds.end());
    Bounds.erase(std::unique(Bounds.begin(), Bounds.end()), Bounds.end());
  } else {
    size_t K = Opts.Threads;
    if (Opts.MinChunkBytes)
      K = std::min<size_t>(K, std::max<size_t>(1, N / Opts.MinChunkBytes));
    for (size_t Kk = 1; Kk < K; ++Kk) {
      size_t Ideal = N / K * Kk;
      if (!Bounds.empty() && Ideal <= Bounds.back())
        continue;
      size_t Limit = std::min(N - 1, Ideal + Opts.SyncWindow);
      size_t Best = SIZE_MAX;
      // First byte in the window whose plausible-successor set fits in
      // MaxLanes; a singleton (perfectly synchronizing) byte wins
      // immediately.
      for (size_t Pz = Ideal; Pz < Limit; ++Pz) {
        uint64_t X = In[Pz];
        if (X >= 256)
          continue;
        size_t Sz = PP.targetsAfter(unsigned(X)).size();
        if (Sz == 0 || Sz > Opts.MaxLanes)
          continue;
        if (Sz == 1) {
          Best = Pz;
          break;
        }
        if (Best == SIZE_MAX)
          Best = Pz;
      }
      if (Best != SIZE_MAX)
        Bounds.push_back(Best + 1);
    }
  }

  std::vector<PlannedChunk> Cs;
  size_t Prev = 0;
  for (size_t B : Bounds) {
    if (B <= Prev || B >= N)
      continue;
    Cs.push_back({Prev, B, false, {}});
    Prev = B;
  }
  Cs.push_back({Prev, N, false, {}});

  for (size_t I = 1; I < Cs.size(); ++I) {
    uint64_t X = In[Cs[I].Begin - 1];
    if (X >= 256)
      continue;
    std::span<const uint32_t> Tg = PP.targetsAfter(unsigned(X));
    if (!Tg.empty() && Tg.size() <= Opts.MaxLanes) {
      Cs[I].EntryStates.assign(Tg.begin(), Tg.end());
      Cs[I].Speculate = true;
    }
  }
  return Cs;
}

} // namespace efc::parallel
