//===- parallel/EffectReplayer.h - Ordered effect materialization -===//
///
/// \file
/// Stitch-time half of the data-parallel executor: once the previous
/// chunk has established the true entry state and registers, the
/// replayer materializes the matching speculative lane — recorded output
/// is appended verbatim, and each deferred log entry re-executes its
/// leaf program on a scratch cursor seeded with the recorded snapshot
/// for slots that were known during speculation and the true running
/// registers for those that were not.  Output and register deltas are
/// therefore byte-identical to the sequential backends.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_PARALLEL_EFFECTREPLAYER_H
#define EFC_PARALLEL_EFFECTREPLAYER_H

#include "parallel/SpeculativeExecutor.h"

namespace efc::parallel {

struct ReplayOutcome {
  /// False: no usable lane for the true entry state — the caller re-runs
  /// the chunk sequentially.
  bool Hit = false;
  /// The stream rejected inside the chunk; the partial output up to the
  /// rejection point has been appended (matching sequential feed()).
  bool Rejected = false;
  uint64_t ElementsReplayed = 0;
};

/// Materializes the lane of \p CR whose entry state is the caller's
/// current \p State.  On a hit, appends the chunk's output to \p Out and
/// advances \p State / \p Regs past the chunk.
ReplayOutcome replayLane(const ChunkSpecResult &CR,
                         const CompiledTransducer &T, unsigned &State,
                         std::vector<uint64_t> &Regs,
                         std::vector<uint64_t> &Out);

} // namespace efc::parallel

#endif // EFC_PARALLEL_EFFECTREPLAYER_H
