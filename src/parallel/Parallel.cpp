//===- parallel/Parallel.cpp - Data-parallel stream execution ----------===//

#include "parallel/Parallel.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace efc::parallel {

namespace {

struct ParallelMetrics {
  metrics::Counter &Feeds;
  metrics::Counter &ChunksPlanned;
  metrics::Counter &ChunksSpeculated;
  metrics::Counter &ChunksSequential;
  metrics::Counter &LanesStarted;
  metrics::Counter &LanesAbandoned;
  metrics::Counter &LanesMerged;
  metrics::Counter &ReplayElements;
  metrics::Histogram &Convergence;

  static ParallelMetrics &instance() {
    auto &R = metrics::Registry::instance();
    static ParallelMetrics M{
        R.counter("efc_parallel_feeds_total",
                  "parallel feed() calls (including sequential fallbacks)"),
        R.counter("efc_parallel_chunks_planned_total",
                  "chunks produced by the chunk planner"),
        R.counter("efc_parallel_chunks_speculated_total",
                  "chunks stitched from a speculative lane replay"),
        R.counter("efc_parallel_chunks_sequential_total",
                  "chunks re-run sequentially at stitch time (planner "
                  "miss, abandoned speculation, or unsyncable boundary)"),
        R.counter("efc_parallel_lanes_started_total",
                  "speculative lanes started across all chunks"),
        R.counter("efc_parallel_lanes_abandoned_total",
                  "lanes poisoned by fallback states or wide elements"),
        R.counter("efc_parallel_lanes_merged_total",
                  "lanes merged into a converged leader"),
        R.counter("efc_parallel_replay_elements_total",
                  "output elements materialized from recorded effects"),
        R.histogram("efc_parallel_convergence_bytes",
                    "elements consumed per chunk before lanes converged "
                    "to one",
                    {16, 64, 256, 1024, 4096, 16384, 65536}),
    };
    return M;
  }
};

void fold(const ParallelStats &LS, ParallelStats *PS) {
  ParallelMetrics &M = ParallelMetrics::instance();
  M.Feeds.inc();
  M.ChunksPlanned.inc(LS.ChunksPlanned);
  M.ChunksSpeculated.inc(LS.ChunksSpeculated);
  M.ChunksSequential.inc(LS.ChunksSequential);
  M.LanesStarted.inc(LS.LanesStarted);
  M.LanesAbandoned.inc(LS.LanesAbandoned);
  M.LanesMerged.inc(LS.LanesMerged);
  M.ReplayElements.inc(LS.ReplayElements);
  for (uint64_t C : LS.ConvergeBytes)
    M.Convergence.observe(double(C));
  if (!PS)
    return;
  PS->ChunksPlanned += LS.ChunksPlanned;
  PS->ChunksSpeculated += LS.ChunksSpeculated;
  PS->ChunksSequential += LS.ChunksSequential;
  PS->LanesStarted += LS.LanesStarted;
  PS->LanesAbandoned += LS.LanesAbandoned;
  PS->LanesMerged += LS.LanesMerged;
  PS->ReplayElements += LS.ReplayElements;
  PS->ConvergeBytes.insert(PS->ConvergeBytes.end(), LS.ConvergeBytes.begin(),
                           LS.ConvergeBytes.end());
}

} // namespace

bool parallelFeed(const ParallelPlan &PP, const FastPathPlan &FP,
                  const CompiledTransducer &T, unsigned &State,
                  std::vector<uint64_t> &Regs, std::span<const uint64_t> In,
                  std::vector<uint64_t> &Out, const ParallelOptions &Opts,
                  ParallelStats *PS) {
  trace::Span Sp("parallel");
  Sp.note("bytes", uint64_t(In.size()));
  ParallelStats LS;
  // Sequential stitch for chunk 0, planner misses and abandoned chunks:
  // a real fast-path cursor restored to the running (state, registers).
  auto Sequential = [&](std::span<const uint64_t> Part) {
    FastPathCursor C(FP, T);
    C.restore(State, Regs);
    bool Ok = C.feed(Part, Out);
    State = C.state();
    std::span<const uint64_t> RS = C.regSlots();
    Regs.assign(RS.begin(), RS.end());
    return Ok;
  };

  const unsigned Threads = std::max(1u, Opts.Threads);
  std::vector<PlannedChunk> Chunks;
  {
    trace::Span PSp("parallel_plan");
    if (PP.eligible() && Threads > 1 && !In.empty())
      Chunks = planChunks(PP, In, Opts);
    PSp.note("chunks", uint64_t(Chunks.size()));
  }
  LS.ChunksPlanned = Chunks.size();
  if (Chunks.size() < 2) {
    LS.ChunksPlanned = In.empty() ? 0 : 1;
    LS.ChunksSequential = LS.ChunksPlanned;
    fold(LS, PS);
    return Sequential(In);
  }

  std::vector<ChunkSpecResult> Spec(Chunks.size());
  bool Ok0 = true;
  // Chunk 0 streams straight into the caller's buffer — the pool threads
  // only write their own Spec[] slots, so Out stays single-writer and
  // the old stage-then-copy temporary is unnecessary.  Reserve for the
  // whole input once; replayed chunks then append without reallocating.
  if (Out.capacity() - Out.size() < In.size())
    Out.reserve(Out.size() + In.size() + 16);
  {
    trace::Span SSp("parallel_speculate");
    SSp.note("threads", uint64_t(Threads));
    std::atomic<size_t> Next{1};
    auto Work = [&] {
      for (;;) {
        size_t W = Next.fetch_add(1, std::memory_order_relaxed);
        if (W >= Chunks.size())
          return;
        const PlannedChunk &C = Chunks[W];
        if (C.Speculate)
          Spec[W] = speculateChunk(PP, FP, T,
                                   In.subspan(C.Begin, C.End - C.Begin),
                                   C.EntryStates, Opts);
      }
    };
    std::vector<std::thread> Pool;
    for (unsigned W = 1, E = std::min<size_t>(Threads, Chunks.size()); W < E;
         ++W)
      Pool.emplace_back(Work);
    // Chunk 0 needs no speculation — it runs concretely on the calling
    // thread while the pool works the later chunks.
    {
      FastPathCursor C0(FP, T);
      C0.restore(State, Regs);
      Ok0 = C0.feed(In.subspan(0, Chunks[0].End), Out);
      State = C0.state();
      std::span<const uint64_t> RS = C0.regSlots();
      Regs.assign(RS.begin(), RS.end());
    }
    Work(); // the calling thread then joins the speculation pool
    for (std::thread &Th : Pool)
      Th.join();
  }

  if (getenv("EFC_PAR_DEBUG"))
    for (size_t CI = 1; CI < Chunks.size(); ++CI) {
      const PlannedChunk &C = Chunks[CI];
      fprintf(stderr, "chunk %zu [%zu,%zu) boundary byte=%llx spec=%d\n", CI,
              C.Begin, C.End, (unsigned long long)In[C.Begin - 1],
              int(C.Speculate));
      for (const Lane &L : Spec[CI].Lanes)
        fprintf(stderr,
                "  lane entry=%u exit=%u log=%zu out=%zu merged=%d poison=%d "
                "knownexit=%llx\n",
                L.EntryState, L.ExitState, L.Log.size(), L.Out.size(),
                L.MergedInto, int(L.Poisoned),
                (unsigned long long)L.KnownAtExit);
    }

  trace::Span RSp("parallel_replay");
  bool Ok = Ok0;
  if (Ok)
    for (size_t CI = 1; CI < Chunks.size(); ++CI) {
      const PlannedChunk &C = Chunks[CI];
      const ChunkSpecResult &CR = Spec[CI];
      LS.LanesStarted += CR.LanesStarted;
      LS.LanesAbandoned += CR.LanesAbandoned;
      LS.LanesMerged += CR.LanesMerged;
      if (CR.Speculated)
        LS.ConvergeBytes.push_back(CR.ConvergeBytes);
      ReplayOutcome RO = replayLane(CR, T, State, Regs, Out);
      if (RO.Hit) {
        ++LS.ChunksSpeculated;
        LS.ReplayElements += RO.ElementsReplayed;
        if (RO.Rejected) {
          Ok = false;
          break;
        }
        continue;
      }
      ++LS.ChunksSequential;
      if (!Sequential(In.subspan(C.Begin, C.End - C.Begin))) {
        Ok = false;
        break;
      }
    }
  RSp.note("chunks_speculated", LS.ChunksSpeculated);
  RSp.note("chunks_sequential", LS.ChunksSequential);
  // Chunk 0 is always sequential by construction.
  ++LS.ChunksSequential;
  fold(LS, PS);
  return Ok;
}

std::optional<std::vector<uint64_t>>
runParallel(const ParallelPlan &PP, const FastPathPlan &FP,
            const CompiledTransducer &T, std::span<const uint64_t> In,
            const ParallelOptions &Opts, ParallelStats *PS) {
  unsigned State = T.initialState();
  std::vector<uint64_t> Regs(T.initialRegs().begin(), T.initialRegs().end());
  std::vector<uint64_t> Out;
  Out.reserve(In.size() + 16);
  if (!parallelFeed(PP, FP, T, State, Regs, In, Out, Opts, PS))
    return std::nullopt;
  CompiledTransducer::Cursor C(T);
  C.restore(State, Regs);
  if (!C.finish(Out))
    return std::nullopt;
  return Out;
}

} // namespace efc::parallel
