//===- parallel/SpeculativeExecutor.cpp - Enumerative chunk execution -===//

#include "parallel/SpeculativeExecutor.h"

#include <utility>

namespace efc::parallel {

namespace {

/// Mutable per-run view over the lanes.  Each lane owns a real bytecode
/// cursor as its register file: concrete effects execute on it directly,
/// so there is no second interpreter to keep in sync with Vm.cpp.
struct SpecState {
  const ParallelPlan &PP;
  const FastPathPlan &FP;
  const CompiledTransducer &T;
  ChunkSpecResult &R;
  std::vector<CompiledTransducer::Cursor> Cur;
  std::vector<uint64_t> Known;
  std::vector<uint8_t> Live;
  unsigned Alive = 0;

  void poison(size_t I) {
    R.Lanes[I].Poisoned = true;
    Live[I] = 0;
    --Alive;
    ++R.LanesAbandoned;
  }

  void reject(size_t I) {
    R.Lanes[I].Rejected = true;
    Live[I] = 0;
    --Alive;
  }

  /// Advances lane \p I by one element through the dispatch table.  Run
  /// kernels are handled by the caller (bulk phase only); during
  /// lockstep, kernel bytes go through their ordinary dispatch action,
  /// which is per-element equivalent.
  /// Defers one program: snapshot the register file (the known slots are
  /// exact; unknown ones are resolved from the true registers at
  /// replay), suppress the emits, and conservatively mark everything the
  /// program may write as unknown.
  void defer(size_t I, const VmProgram &P, uint64_t X, uint64_t WriteMask,
             unsigned Target) {
    Lane &L = R.Lanes[I];
    LogEntry E;
    E.Prog = &P;
    E.X = X;
    E.OutPos = L.Out.size();
    E.Known = Known[I];
    E.RegsOff = L.LogRegs.size();
    std::span<const uint64_t> RS = std::as_const(Cur[I]).regSlots();
    L.LogRegs.insert(L.LogRegs.end(), RS.begin(), RS.end());
    L.Log.push_back(E);
    Known[I] &= ~WriteMask;
    L.ExitState = Target;
  }

  void step(size_t I, uint64_t X) {
    Lane &L = R.Lanes[I];
    const FastPathPlan::StateTable &ST = FP.stateTable(L.ExitState);
    if (ST.HasTable && X < 256) {
      const FastPathPlan::Action &A = ST.Actions[ST.Dispatch[X]];
      switch (A.K) {
      case FastPathPlan::Action::Kind::Jump:
        L.ExitState = A.Target;
        return;
      case FastPathPlan::Action::Kind::Const: {
        L.Out.insert(L.Out.end(), A.Emits.begin(), A.Emits.end());
        std::span<uint64_t> RS = Cur[I].regSlots();
        for (auto [Slot, V] : A.Writes) {
          RS[Slot] = V;
          Known[I] |= uint64_t(1) << Slot;
        }
        L.ExitState = A.Target;
        return;
      }
      case FastPathPlan::Action::Kind::Reject:
        reject(I);
        return;
      case FastPathPlan::Action::Kind::Program: {
        const ParallelPlan::ActionInfo &AI =
            PP.actionInfo(L.ExitState, ST.Dispatch[X]);
        if (!AI.HasJumps && (AI.ReadMask & ~Known[I]) == 0) {
          // Every slot the program reads holds a concrete value: run it
          // for real on the lane cursor.  Straight-line => WriteMask is
          // exact, so all written slots become known.
          Cur[I].setInput(X);
          bool Ok = Cur[I].execProgram(A.Code, L.Out);
          Known[I] |= AI.WriteMask;
          if (!Ok) {
            reject(I);
            return;
          }
          L.ExitState = Cur[I].state();
          return;
        }
        defer(I, A.Code, X, AI.WriteMask, A.Target);
        return;
      }
      case FastPathPlan::Action::Kind::Fallback:
        break; // handled below, like a bytecode-only state
      }
    }
    // Mixed-mode fallback: bytecode-only state, Fallback dispatch entry,
    // or out-of-range element.  The driver would run the state's full
    // delta program; mirror it with the per-byte footprint: run
    // concretely once every slot this byte's paths may read is known
    // (control flow then branches on concrete values, making the
    // execution exact even with register guards); defer the program when
    // its successor is byte-determined; give the lane up only when the
    // successor genuinely depends on register values we do not have.
    const VmProgram &DP = T.deltaProgram(L.ExitState);
    if (X < 256) {
      const ParallelPlan::ByteInfo &BI = PP.byteInfo(L.ExitState, unsigned(X));
      if ((BI.ReadMask & ~Known[I]) == 0) {
        // Every slot this byte's paths may read holds a concrete value,
        // so execution follows the real path — register guards included.
        // The write set is path-dependent, so track the writes that
        // actually happened: exactly those slots now hold real values.
        Cur[I].setInput(X);
        uint64_t W = 0;
        bool Ok = Cur[I].execProgramTracked(DP, L.Out, W);
        Known[I] |= W;
        if (!Ok) {
          reject(I);
          return;
        }
        L.ExitState = Cur[I].state();
        return;
      }
      if (BI.Target >= 0) {
        defer(I, DP, X, BI.WriteMay, unsigned(BI.Target));
        return;
      }
      if (BI.AlwaysRejects) {
        // Every register valuation rejects on this byte.  Log the
        // program so replay emits whatever the real path emits before
        // rejecting, and end the lane as terminally valid.
        defer(I, DP, X, BI.WriteMay, L.ExitState);
        reject(I);
        return;
      }
      poison(I);
      return;
    }
    // Out-of-range element (non-byte input): only the whole-program
    // footprint applies.
    const ParallelPlan::ActionInfo &AI = PP.deltaInfo(L.ExitState);
    if ((AI.ReadMask & ~Known[I]) == 0) {
      Cur[I].setInput(X);
      uint64_t W = 0;
      bool Ok = Cur[I].execProgramTracked(DP, L.Out, W);
      Known[I] |= W;
      if (!Ok) {
        reject(I);
        return;
      }
      L.ExitState = Cur[I].state();
      return;
    }
    if (!AI.HasJumps && AI.StaticTarget >= 0) {
      defer(I, DP, X, AI.WriteMask, unsigned(AI.StaticTarget));
      return;
    }
    poison(I);
  }
};

} // namespace

ChunkSpecResult speculateChunk(const ParallelPlan &PP, const FastPathPlan &FP,
                               const CompiledTransducer &T,
                               std::span<const uint64_t> In,
                               std::span<const uint32_t> EntryStates,
                               const ParallelOptions &Opts) {
  ChunkSpecResult R;
  if (!PP.eligible() || EntryStates.empty())
    return R;
  const unsigned NR = T.numRegSlots();
  const size_t NL = EntryStates.size();
  R.Lanes.resize(NL);
  R.LanesStarted = uint32_t(NL);

  SpecState S{PP, FP, T, R, {}, std::vector<uint64_t>(NL, 0),
              std::vector<uint8_t>(NL, 1), unsigned(NL)};
  S.Cur.reserve(NL);
  for (size_t I = 0; I < NL; ++I) {
    R.Lanes[I].EntryState = R.Lanes[I].ExitState = EntryStates[I];
    S.Cur.emplace_back(T);
  }

  const size_t N = In.size();
  size_t I = 0;
  const size_t Budget =
      Opts.ConvergeBudget ? std::min(N, Opts.ConvergeBudget) : N;

  // Lockstep phase: advance every live lane one element at a time,
  // merging lanes whose futures are provably identical — same control
  // state, same known-slot bitmap, same values on the known slots (the
  // unknown slots are origin-dependent by construction and resolved at
  // replay, so they cannot affect the shared future).
  while (I < Budget && S.Alive > 1) {
    uint64_t X = In[I];
    for (size_t L = 0; L < NL; ++L)
      if (S.Live[L])
        S.step(L, X);
    ++I;
    for (size_t A = 0; A < NL && S.Alive > 1; ++A) {
      if (!S.Live[A])
        continue;
      for (size_t B = A + 1; B < NL; ++B) {
        if (!S.Live[B] || R.Lanes[A].ExitState != R.Lanes[B].ExitState ||
            S.Known[A] != S.Known[B])
          continue;
        std::span<const uint64_t> RA = std::as_const(S.Cur[A]).regSlots();
        std::span<const uint64_t> RB = std::as_const(S.Cur[B]).regSlots();
        bool Eq = true;
        for (unsigned Rg = 0; Rg < NR && Eq; ++Rg)
          if (((S.Known[A] >> Rg) & 1) && RA[Rg] != RB[Rg])
            Eq = false;
        if (!Eq)
          continue;
        R.Lanes[B].MergedInto = int(A);
        R.Lanes[B].MergeOutPos = R.Lanes[A].Out.size();
        R.Lanes[B].MergeLogPos = R.Lanes[A].Log.size();
        S.Live[B] = 0;
        --S.Alive;
        ++R.LanesMerged;
      }
    }
  }
  R.ConvergeBytes = I;

  if (S.Alive > 1 && I < N)
    // Convergence budget exhausted with several lanes still live:
    // running them all to the end would multiply the work instead of
    // dividing it.  Abandon; the stitcher re-runs this chunk
    // sequentially.
    return R;

  // Bulk phase: a single live lane runs the rest of the chunk at
  // fast-path speed, run kernels included.
  if (S.Alive == 1 && I < N) {
    size_t Ld = 0;
    while (!S.Live[Ld])
      ++Ld;
    Lane &L = R.Lanes[Ld];
    while (I < N) {
      uint64_t X = In[I];
      const FastPathPlan::StateTable &ST = FP.stateTable(L.ExitState);
      if (ST.HasTable && X < 256) {
        if (uint8_t Rk = ST.RunId[X]; Rk != FastPathPlan::NoRun) {
          const RunKernel &RK = ST.Runs[Rk];
          size_t End = scanRunEnd(In.data(), I + 1, N, RK);
          switch (RK.K) {
          case RunKernel::Kind::Skip:
            break;
          case RunKernel::Kind::Copy:
            L.Out.insert(L.Out.end(), In.data() + I, In.data() + End);
            break;
          case RunKernel::Kind::ConstAppend:
            if (RK.Emits.size() == 1)
              L.Out.insert(L.Out.end(), End - I, RK.Emits[0]);
            else
              for (size_t J = I; J < End; ++J)
                L.Out.insert(L.Out.end(), RK.Emits.begin(), RK.Emits.end());
            break;
          }
          std::span<uint64_t> RS = S.Cur[Ld].regSlots();
          for (auto [Slot, V] : RK.Writes) {
            RS[Slot] = V;
            S.Known[Ld] |= uint64_t(1) << Slot;
          }
          I = End;
          continue;
        }
      }
      S.step(Ld, X);
      if (!S.Live[Ld])
        break;
      ++I;
    }
  }

  // Seal every unmerged, unpoisoned lane with its exit register image.
  bool AnyUsable = false;
  for (size_t L = 0; L < NL; ++L) {
    Lane &LN = R.Lanes[L];
    if (LN.Poisoned || LN.MergedInto >= 0)
      continue;
    AnyUsable = true;
    LN.KnownAtExit = S.Known[L];
    std::span<const uint64_t> RS = std::as_const(S.Cur[L]).regSlots();
    LN.RegsAtExit.assign(RS.begin(), RS.end());
  }
  R.Speculated = AnyUsable;
  return R;
}

} // namespace efc::parallel
