//===- parallel/SpeculativeExecutor.h - Enumerative chunk execution -===//
///
/// \file
/// Runs one non-first chunk from every plausible entry state ("lanes"),
/// in lockstep until the lanes converge, then at full fast-path speed.
/// Control flow in table states never reads registers, so each lane's
/// state trajectory is exact even though its registers start unknown;
/// register effects run concretely once their inputs become known
/// (tracked with a per-lane known-slot bitmap) and are otherwise
/// recorded in a deferred-replay log that the EffectReplayer resolves at
/// stitch time against the true entry registers.  See DESIGN.md
/// "Data-parallel execution" for the soundness argument.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_PARALLEL_SPECULATIVEEXECUTOR_H
#define EFC_PARALLEL_SPECULATIVEEXECUTOR_H

#include "parallel/ChunkPlanner.h"

#include <cstdint>
#include <span>
#include <vector>

namespace efc::parallel {

/// One deferred register-dependent effect: a leaf program that read a
/// slot whose value was still unknown when the lane passed it.  Replay
/// seeds a scratch cursor with the recorded snapshot for known slots and
/// the true running registers for unknown ones, then executes the
/// program for real — emits land at OutPos in the lane's output.
struct LogEntry {
  const VmProgram *Prog = nullptr;
  uint64_t X = 0;
  size_t OutPos = 0;
  uint64_t Known = 0;
  size_t RegsOff = 0; // into Lane::LogRegs, numRegSlots() values
};

/// One speculative lane: the chunk executed under the assumption that
/// the machine entered in EntryState.  Out and Log are append-only, so a
/// lane that converges with another simply records the leader's current
/// offsets (MergedInto/MergeOutPos/MergeLogPos) and stops; the replayer
/// walks the merge chain to materialize the full chunk.
struct Lane {
  uint32_t EntryState = 0;
  uint32_t ExitState = 0;
  bool Rejected = false; // stream rejected inside the chunk (valid result)
  bool Poisoned = false; // fallback state / wide element: lane unusable
  int MergedInto = -1;
  size_t MergeOutPos = 0;
  size_t MergeLogPos = 0;
  uint64_t KnownAtExit = 0;
  std::vector<uint64_t> Out;
  std::vector<LogEntry> Log;
  std::vector<uint64_t> LogRegs;
  std::vector<uint64_t> RegsAtExit;
};

struct ChunkSpecResult {
  /// False when the chunk must be stitched sequentially (ineligible
  /// plan, convergence budget exhausted, or every lane poisoned).
  bool Speculated = false;
  std::vector<Lane> Lanes;
  uint32_t LanesStarted = 0;
  uint32_t LanesAbandoned = 0;
  uint32_t LanesMerged = 0;
  /// Elements consumed before the live-lane count reached one (the
  /// convergence distance surfaced in the Prometheus histogram).
  uint64_t ConvergeBytes = 0;
};

/// Executes \p In speculatively from every state in \p EntryStates.
/// Pure function of its arguments — safe to call concurrently from the
/// worker pool with a shared plan.
ChunkSpecResult speculateChunk(const ParallelPlan &PP, const FastPathPlan &FP,
                               const CompiledTransducer &T,
                               std::span<const uint64_t> In,
                               std::span<const uint32_t> EntryStates,
                               const ParallelOptions &Opts);

} // namespace efc::parallel

#endif // EFC_PARALLEL_SPECULATIVEEXECUTOR_H
