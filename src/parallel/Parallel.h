//===- parallel/Parallel.h - Data-parallel stream execution -----*- C++ -*-===//
///
/// \file
/// Umbrella API for the data-parallel executor: plan chunk boundaries
/// from the byte-class tables (ChunkPlanner), run non-first chunks
/// speculatively from all plausible states on a worker pool
/// (SpeculativeExecutor), then stitch in order, replaying recorded
/// effects against the true entry registers (EffectReplayer).  The
/// result is byte-identical to FastPathCursor::feed on the same input —
/// chunks whose speculation missed or was abandoned are transparently
/// re-run sequentially.  Entry points: parallelFeed() mirrors
/// FastPathCursor::feed against an explicit (state, registers) pair;
/// runParallel() is the whole-input convenience mirroring runFastPath.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_PARALLEL_PARALLEL_H
#define EFC_PARALLEL_PARALLEL_H

#include "parallel/ChunkPlanner.h"
#include "parallel/EffectReplayer.h"
#include "parallel/SpeculativeExecutor.h"

#include <optional>

namespace efc::parallel {

/// Per-call telemetry (also folded into the global metrics registry by
/// parallelFeed itself: efc_parallel_* counters and the convergence
/// histogram).
struct ParallelStats {
  uint64_t ChunksPlanned = 0;
  uint64_t ChunksSpeculated = 0; ///< chunks stitched from a lane replay
  uint64_t ChunksSequential = 0; ///< chunks re-run sequentially at stitch
  uint64_t LanesStarted = 0;
  uint64_t LanesAbandoned = 0;
  uint64_t LanesMerged = 0;
  uint64_t ReplayElements = 0; ///< output elements materialized from logs
  std::vector<uint64_t> ConvergeBytes; ///< per speculated chunk
};

/// Feeds \p In through the parallel executor from (\p State, \p Regs),
/// appending output to \p Out and advancing state/registers past the
/// input.  Returns false when the stream rejects (partial output up to
/// the rejection point is appended, matching FastPathCursor::feed).
/// Falls back to a plain sequential feed when the plan is ineligible or
/// fewer than two chunks are planned.
bool parallelFeed(const ParallelPlan &PP, const FastPathPlan &FP,
                  const CompiledTransducer &T, unsigned &State,
                  std::vector<uint64_t> &Regs, std::span<const uint64_t> In,
                  std::vector<uint64_t> &Out, const ParallelOptions &Opts,
                  ParallelStats *PS = nullptr);

/// Whole-input transduction (initial state through finalizer);
/// std::nullopt on rejection.  Semantically identical to runFastPath.
std::optional<std::vector<uint64_t>>
runParallel(const ParallelPlan &PP, const FastPathPlan &FP,
            const CompiledTransducer &T, std::span<const uint64_t> In,
            const ParallelOptions &Opts, ParallelStats *PS = nullptr);

} // namespace efc::parallel

#endif // EFC_PARALLEL_PARALLEL_H
