//===- parallel/ChunkPlanner.h - Split-point planning for parallelism -===//
///
/// \file
/// Planning side of the data-parallel executor (DESIGN.md "Data-parallel
/// execution").  A ParallelPlan is derived once per pipeline from the
/// byte-class fast-path plan: for every byte value it enumerates the set
/// of control states the machine can be in *after* consuming that byte
/// from any table state (the enumerative trick of Mytkowicz et al. —
/// bytes whose set is small are state-synchronizing and make good chunk
/// boundaries), and for every Program action it records which register
/// slots the leaf program reads and writes, so the speculative executor
/// knows when an effect can run concretely and when it must be deferred.
///
/// planChunks() then splits one input span near the ideal per-thread
/// boundaries, sliding each split forward (bounded by SyncWindow) to the
/// byte with the smallest plausible-successor set.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_PARALLEL_CHUNKPLANNER_H
#define EFC_PARALLEL_CHUNKPLANNER_H

#include "vm/FastPath.h"
#include "vm/Vm.h"

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace efc::parallel {

/// Knobs for one parallel run.  The defaults suit large batch inputs;
/// tests shrink them to exercise chunking on small inputs.
struct ParallelOptions {
  /// Worker count (including the calling thread).  <= 1 disables
  /// chunking entirely.
  unsigned Threads = 1;
  /// Never split below this many input elements per chunk.
  size_t MinChunkBytes = 64 << 10;
  /// How far past the ideal boundary the planner may slide looking for a
  /// better-synchronizing byte.
  size_t SyncWindow = 4096;
  /// Upper bound on speculative lanes per chunk; boundaries whose
  /// plausible-successor set is larger leave the chunk unspeculated
  /// (sequential stitching).  0 forces sequential stitching everywhere.
  unsigned MaxLanes = 8;
  /// Lockstep budget: if the lanes of a chunk have not converged to one
  /// within this many elements, the chunk's speculation is abandoned.
  size_t ConvergeBudget = 64 << 10;
  /// Testing hook: exact split positions (element indices, exclusive end
  /// of each non-last chunk).  Overrides the boundary search so
  /// adversarial tests can cut mid-run, mid-UTF-8 or at
  /// never-synchronizing positions.
  std::vector<size_t> ForcedBoundaries;
};

/// Per-pipeline planning tables, built once (PipelineCache owns one per
/// compiled pipeline) and shared read-only by all parallel runs.
class ParallelPlan {
public:
  /// Read/write footprint of one Program action's leaf program over the
  /// register slots (bits 0..numRegSlots-1).  ReadMask is exact for
  /// straight-line programs (read-before-write analysis); when the
  /// program contains jumps both masks degrade to sound
  /// over-approximations and HasJumps forces the deferred-replay path.
  struct ActionInfo {
    uint64_t ReadMask = 0;
    uint64_t WriteMask = 0;
    bool HasJumps = false;
    /// Control state after the program runs, when it is statically known
    /// (straight-line code whose first terminator is Next); -1 when the
    /// successor depends on execution (jumps, or Accept/Reject first).
    /// Needed to log an effect whose operands are still unknown: the
    /// deferred-replay path must keep tracking the lane's control state
    /// without running the program.
    int StaticTarget = -1;
  };

  static ParallelPlan build(const CompiledTransducer &T,
                            const FastPathPlan &FP);

  /// False when the pipeline cannot be chunked at all (no table states,
  /// or more register slots than the 64-bit known-masks track); callers
  /// fall back to the sequential fast path.
  bool eligible() const { return Eligible; }

  /// Sorted unique set of control states the machine can occupy after
  /// consuming byte \p B from any table state.  Empty means B never
  /// synchronizes (or is out of the input width); states reachable only
  /// through fallback states are not enumerated — a miss at stitch time
  /// re-runs the chunk sequentially, so incompleteness costs speed, not
  /// correctness.
  std::span<const uint32_t> targetsAfter(unsigned B) const {
    return Sync[B];
  }

  const ActionInfo &actionInfo(unsigned State, unsigned ActionIdx) const {
    return Info[State][ActionIdx];
  }

  /// Footprint of the full delta program of \p State — what the mixed-mode
  /// driver runs for fallback states, Fallback dispatch entries, and
  /// out-of-range elements.  Lets the speculative executor run
  /// register-guarded bytecode concretely once the guarded slots are
  /// known, instead of abandoning the lane.
  const ActionInfo &deltaInfo(unsigned State) const { return DInfo[State]; }

  /// Per-(state, byte) refinement of deltaInfo: the delta program
  /// abstractly evaluated with the input byte concrete and every register
  /// unknown, forking at register-dependent branches.  Register-guarded
  /// states are usually input-routed — the guards select effects, not
  /// successors — so per-byte masks are far tighter than the whole-
  /// program union and the successor is often unique even though the
  /// code branches on registers.  Arithmetic is folded with the same
  /// evalVmPureOp the interpreter executes, so a non-dynamic entry's
  /// Target is exact, never a prediction.
  struct ByteInfo {
    /// Unique Next successor over every feasible path, or -1 when the
    /// successor genuinely depends on register values (or analysis
    /// overflowed and fell back to the whole-program footprint).
    int Target = -1;
    /// Every feasible path ends in Reject: the element kills the stream
    /// no matter what the registers hold.
    bool AlwaysRejects = false;
    uint64_t ReadMask = 0; ///< union over paths, read-before-write
    uint64_t WriteMay = 0; ///< union of register writes over paths
  };

  const ByteInfo &byteInfo(unsigned State, unsigned B) const {
    return BInfo[State][B];
  }

  unsigned numRegSlots() const { return NR; }
  unsigned numTableStates() const { return NumTableStates; }

private:
  bool Eligible = false;
  unsigned NR = 0;
  unsigned NumTableStates = 0;
  std::array<std::vector<uint32_t>, 256> Sync;
  std::vector<std::vector<ActionInfo>> Info;
  std::vector<ActionInfo> DInfo;
  std::vector<std::array<ByteInfo, 256>> BInfo;
};

/// One planned chunk of the input.  Chunk 0 always runs concretely from
/// the caller's current state; later chunks speculate from EntryStates
/// when Speculate is set, else they are stitched sequentially.
struct PlannedChunk {
  size_t Begin = 0;
  size_t End = 0;
  bool Speculate = false;
  std::vector<uint32_t> EntryStates;
};

/// Splits \p In into up to Opts.Threads chunks at state-synchronizing
/// bytes.  Always returns at least one chunk covering the whole input.
std::vector<PlannedChunk> planChunks(const ParallelPlan &PP,
                                     std::span<const uint64_t> In,
                                     const ParallelOptions &Opts);

} // namespace efc::parallel

#endif // EFC_PARALLEL_CHUNKPLANNER_H
