//===- term/Print.h - Human-readable term printing --------------*- C++ -*-===//
///
/// \file
/// Renders terms in a C-like infix syntax for diagnostics, tests and the
/// C++ code generator's expression emitter.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TERM_PRINT_H
#define EFC_TERM_PRINT_H

#include "term/Term.h"
#include "term/TermContext.h"

#include <string>

namespace efc {

/// C-like rendering of \p T, e.g. "((x & 0x3f) << 6) | (r.0 & 0x3f)".
std::string termToString(const TermContext &Ctx, TermRef T);

} // namespace efc

#endif // EFC_TERM_PRINT_H
