//===- term/Eval.cpp ------------------------------------------------------===//

#include "term/Eval.h"

#include "term/ScalarOps.h"

#include <unordered_map>

using namespace efc;

namespace {

class Evaluator {
public:
  explicit Evaluator(const Env &E) : E(E) {}

  const Value &eval(TermRef T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    Value V = compute(T);
    return Cache.emplace(T, std::move(V)).first->second;
  }

private:
  const Env &E;
  std::unordered_map<TermRef, Value> Cache;

  Value compute(TermRef T) {
    switch (T->op()) {
    case Op::ConstBool:
      return Value::boolV(T->constBits() != 0);
    case Op::ConstBv:
      return Value::bv(T->type()->width(), T->constBits());
    case Op::ConstUnit:
      return Value::unit();
    case Op::Var: {
      const Value *V = E.lookup(T->varId());
      assert(V && "unbound variable during evaluation");
      return *V;
    }
    case Op::Not:
      return Value::boolV(!eval(T->operand(0)).boolValue());
    case Op::And:
      return Value::boolV(eval(T->operand(0)).boolValue() &&
                          eval(T->operand(1)).boolValue());
    case Op::Or:
      return Value::boolV(eval(T->operand(0)).boolValue() ||
                          eval(T->operand(1)).boolValue());
    case Op::Ite:
      return eval(T->operand(0)).boolValue() ? eval(T->operand(1))
                                             : eval(T->operand(2));
    case Op::Eq:
      return Value::boolV(eval(T->operand(0)) == eval(T->operand(1)));
    case Op::Ult:
    case Op::Ule:
    case Op::Slt:
    case Op::Sle: {
      const Value &A = eval(T->operand(0));
      const Value &B = eval(T->operand(1));
      return Value::boolV(
          evalBvCompare(T->op(), A.width(), A.bits(), B.bits()));
    }
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::UDiv:
    case Op::URem:
    case Op::BvAnd:
    case Op::BvOr:
    case Op::BvXor:
    case Op::Shl:
    case Op::LShr:
    case Op::AShr: {
      const Value &A = eval(T->operand(0));
      const Value &B = eval(T->operand(1));
      return Value::bv(A.width(),
                       evalBvBinary(T->op(), A.width(), A.bits(), B.bits()));
    }
    case Op::Neg: {
      const Value &A = eval(T->operand(0));
      return Value::bv(A.width(), ~A.bits() + 1);
    }
    case Op::BvNot: {
      const Value &A = eval(T->operand(0));
      return Value::bv(A.width(), ~A.bits());
    }
    case Op::ZExt: {
      const Value &A = eval(T->operand(0));
      return Value::bv(T->type()->width(), A.bits());
    }
    case Op::SExt: {
      const Value &A = eval(T->operand(0));
      return Value::bv(T->type()->width(), uint64_t(A.signedBits()));
    }
    case Op::Extract: {
      const Value &A = eval(T->operand(0));
      return Value::bv(T->type()->width(), A.bits() >> T->extractLo());
    }
    case Op::MkTuple: {
      std::vector<Value> Es;
      Es.reserve(T->numOperands());
      for (TermRef O : T->operands())
        Es.push_back(eval(O));
      return Value::tuple(std::move(Es));
    }
    case Op::TupleGet:
      return eval(T->operand(0)).elem(T->tupleIndex());
    }
    assert(false && "unhandled op in evaluator");
    return Value::unit();
  }
};

} // namespace

Value efc::evalTerm(TermRef T, const Env &E) {
  Evaluator Ev(E);
  return Ev.eval(T);
}
