//===- term/TermContext.h - Term factory with normalization -----*- C++ -*-===//
///
/// \file
/// TermContext owns all types and terms of one analysis session and is the
/// only way to create them.  Construction performs aggressive local
/// normalization (constant folding, algebraic identities, tuple
/// cancellation), which keeps fused rules small and makes many of the
/// fusion algorithm's redundancy checks decidable by pointer comparison
/// before an SMT call is needed.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TERM_TERMCONTEXT_H
#define EFC_TERM_TERMCONTEXT_H

#include "term/Term.h"
#include "term/Type.h"
#include "term/Value.h"

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace efc {

/// Factory and owner of all terms and types.
class TermContext {
public:
  TermContext() = default;
  TermContext(const TermContext &) = delete;
  TermContext &operator=(const TermContext &) = delete;

  //===--------------------------------------------------------------------===
  // Types
  //===--------------------------------------------------------------------===
  const Type *boolTy() { return Types.boolTy(); }
  const Type *unitTy() { return Types.unitTy(); }
  const Type *bv(unsigned Width) { return Types.bv(Width); }
  const Type *byteTy() { return bv(8); }
  const Type *charTy() { return bv(16); } // UTF-16 code unit, as in the paper
  const Type *intTy() { return bv(32); }
  const Type *tupleTy(std::vector<const Type *> Elems) {
    return Types.tuple(std::move(Elems));
  }
  const Type *pairTy(const Type *A, const Type *B) {
    return Types.pair(A, B);
  }

  //===--------------------------------------------------------------------===
  // Variables
  //===--------------------------------------------------------------------===

  /// Returns the variable with this name, interning it on first use.  The
  /// same (name, type) pair always yields the same term; reusing a name at
  /// a different type creates a distinct variable (the paper's `x : iota`
  /// vs `x : rho` convention).
  TermRef var(std::string_view Name, const Type *Ty);

  /// A variable guaranteed not to collide with any existing one.
  TermRef freshVar(std::string_view Prefix, const Type *Ty);

  const std::string &varName(unsigned VarId) const;
  const Type *varType(unsigned VarId) const;
  unsigned numVars() const { return unsigned(Vars.size()); }

  //===--------------------------------------------------------------------===
  // Constants
  //===--------------------------------------------------------------------===
  TermRef boolConst(bool B);
  TermRef trueConst() { return boolConst(true); }
  TermRef falseConst() { return boolConst(false); }
  TermRef bvConst(const Type *Ty, uint64_t Bits);
  TermRef bvConst(unsigned Width, uint64_t Bits) {
    return bvConst(bv(Width), Bits);
  }
  TermRef unitConst();

  /// The term denoting a concrete value of the given type (tuples become
  /// MkTuple of constants).
  TermRef constOf(const Type *Ty, const Value &V);

  //===--------------------------------------------------------------------===
  // Boolean connectives
  //===--------------------------------------------------------------------===
  TermRef mkNot(TermRef A);
  TermRef mkAnd(TermRef A, TermRef B);
  TermRef mkOr(TermRef A, TermRef B);
  TermRef mkAnd(std::span<const TermRef> Ts);
  TermRef mkImplies(TermRef A, TermRef B) { return mkOr(mkNot(A), B); }

  //===--------------------------------------------------------------------===
  // Polymorphic
  //===--------------------------------------------------------------------===
  TermRef mkIte(TermRef C, TermRef T, TermRef E);
  TermRef mkEq(TermRef A, TermRef B);
  TermRef mkNeq(TermRef A, TermRef B) { return mkNot(mkEq(A, B)); }

  //===--------------------------------------------------------------------===
  // Bitvector comparisons
  //===--------------------------------------------------------------------===
  TermRef mkUlt(TermRef A, TermRef B);
  TermRef mkUle(TermRef A, TermRef B);
  TermRef mkSlt(TermRef A, TermRef B);
  TermRef mkSle(TermRef A, TermRef B);
  /// Unsigned Lo <= X <= Hi — the pervasive range guard of the paper.
  TermRef mkInRange(TermRef X, uint64_t Lo, uint64_t Hi);

  //===--------------------------------------------------------------------===
  // Bitvector arithmetic / bitwise
  //===--------------------------------------------------------------------===
  TermRef mkAdd(TermRef A, TermRef B);
  TermRef mkSub(TermRef A, TermRef B);
  TermRef mkMul(TermRef A, TermRef B);
  TermRef mkUDiv(TermRef A, TermRef B);
  TermRef mkURem(TermRef A, TermRef B);
  TermRef mkNeg(TermRef A);
  TermRef mkBvAnd(TermRef A, TermRef B);
  TermRef mkBvOr(TermRef A, TermRef B);
  TermRef mkBvXor(TermRef A, TermRef B);
  TermRef mkBvNot(TermRef A);
  TermRef mkShl(TermRef A, TermRef B);
  TermRef mkLShr(TermRef A, TermRef B);
  TermRef mkAShr(TermRef A, TermRef B);
  TermRef mkShlC(TermRef A, unsigned Amount);
  TermRef mkLShrC(TermRef A, unsigned Amount);

  //===--------------------------------------------------------------------===
  // Width changing
  //===--------------------------------------------------------------------===
  TermRef mkZExt(TermRef A, unsigned NewWidth);
  TermRef mkSExt(TermRef A, unsigned NewWidth);
  TermRef mkExtract(TermRef A, unsigned Hi, unsigned Lo);

  //===--------------------------------------------------------------------===
  // Tuples
  //===--------------------------------------------------------------------===
  TermRef mkTuple(std::vector<TermRef> Elems);
  TermRef mkPair(TermRef A, TermRef B) {
    return mkTuple(std::vector<TermRef>{A, B});
  }
  TermRef mkTupleGet(TermRef T, unsigned Index);
  /// pi_1 / pi_2 of the paper.
  TermRef mkProj1(TermRef T) { return mkTupleGet(T, 0); }
  TermRef mkProj2(TermRef T) { return mkTupleGet(T, 1); }

  size_t numTerms() const { return Pool.size(); }

private:
  struct VarInfo {
    std::string Name;
    const Type *Ty;
  };

  TypeFactory Types;
  std::deque<Term> Pool;
  std::vector<VarInfo> Vars;
  std::unordered_map<std::string, unsigned> VarByName;
  unsigned FreshCounter = 0;

  struct KeyHash {
    size_t operator()(const Term *T) const { return T->hash(); }
  };
  struct KeyEq {
    bool operator()(const Term *A, const Term *B) const;
  };
  std::unordered_map<const Term *, TermRef, KeyHash, KeyEq> Interned;

  /// Interns the described node, assuming no further simplification applies.
  TermRef intern(Op O, const Type *Ty, uint64_t Aux,
                 std::vector<TermRef> Operands);

  TermRef foldBinary(Op O, TermRef A, TermRef B);
  static bool isComplement(TermRef A, TermRef B);
};

} // namespace efc

#endif // EFC_TERM_TERMCONTEXT_H
