//===- term/Type.cpp ------------------------------------------------------===//

#include "term/Type.h"

using namespace efc;

void Type::flatten(std::vector<const Type *> &Out) const {
  switch (Kind) {
  case TypeKind::Bool:
  case TypeKind::BitVec:
    Out.push_back(this);
    return;
  case TypeKind::Unit:
    return;
  case TypeKind::Tuple:
    for (const Type *E : Elems)
      E->flatten(Out);
    return;
  }
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Unit:
    return "unit";
  case TypeKind::BitVec:
    return "bv" + std::to_string(Width);
  case TypeKind::Tuple: {
    std::string S = "(";
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        S += " x ";
      S += Elems[I]->str();
    }
    S += ")";
    return S;
  }
  }
  return "?";
}

TypeFactory::TypeFactory() {
  auto B = std::unique_ptr<Type>(new Type(TypeKind::Bool, 0, {}));
  B->NumLeaves = 1;
  BoolTy = intern(std::move(B));
  auto U = std::unique_ptr<Type>(new Type(TypeKind::Unit, 0, {}));
  U->NumLeaves = 0;
  UnitTy = intern(std::move(U));
}

const Type *TypeFactory::intern(std::unique_ptr<Type> T) {
  Owned.push_back(std::move(T));
  return Owned.back().get();
}

const Type *TypeFactory::bv(unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "bitvector width must be in [1,64]");
  auto It = BvCache.find(Width);
  if (It != BvCache.end())
    return It->second;
  auto T = std::unique_ptr<Type>(new Type(TypeKind::BitVec, Width, {}));
  T->NumLeaves = 1;
  const Type *Res = intern(std::move(T));
  BvCache.emplace(Width, Res);
  return Res;
}

const Type *TypeFactory::tuple(std::vector<const Type *> Elems) {
  // Key tuples by the pointer identities of their elements.
  std::string Key;
  Key.reserve(Elems.size() * sizeof(void *));
  for (const Type *E : Elems) {
    uintptr_t P = reinterpret_cast<uintptr_t>(E);
    Key.append(reinterpret_cast<const char *>(&P), sizeof(P));
  }
  auto It = TupleCache.find(Key);
  if (It != TupleCache.end())
    return It->second;
  unsigned Leaves = 0;
  for (const Type *E : Elems)
    Leaves += E->numLeaves();
  auto T = std::unique_ptr<Type>(new Type(TypeKind::Tuple, 0, std::move(Elems)));
  T->NumLeaves = Leaves;
  const Type *Res = intern(std::move(T));
  TupleCache.emplace(std::move(Key), Res);
  return Res;
}
