//===- term/Rewrite.h - Substitution and term traversal ---------*- C++ -*-===//
///
/// \file
/// Simultaneous substitution of variables by terms (the θ of the fusion
/// algorithm) and variable-collection utilities.  Substitution rebuilds
/// through TermContext, so the result is renormalized for free.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TERM_REWRITE_H
#define EFC_TERM_REWRITE_H

#include "term/Term.h"
#include "term/TermContext.h"

#include <unordered_map>
#include <unordered_set>

namespace efc {

/// A simultaneous substitution of variables by terms.  Keys must be Var
/// terms; replacements must have the same type as the variable.
class Subst {
public:
  void set(TermRef Var, TermRef Replacement) {
    assert(Var->isVar());
    assert(Var->type() == Replacement->type() &&
           "substitution must preserve types");
    Map[Var] = Replacement;
  }

  TermRef lookup(TermRef Var) const {
    auto It = Map.find(Var);
    return It == Map.end() ? nullptr : It->second;
  }

  bool empty() const { return Map.empty(); }

private:
  std::unordered_map<TermRef, TermRef> Map;
};

/// Applies \p S to \p T simultaneously (no re-substitution into
/// replacements).
TermRef substitute(TermContext &Ctx, TermRef T, const Subst &S);

/// Collects the free variables of \p T into \p Out.
void collectVars(TermRef T, std::unordered_set<TermRef> &Out);

/// True when \p T mentions the variable \p Var.
bool mentionsVar(TermRef T, TermRef Var);

/// True when \p T mentions any variable at all.
bool hasVars(TermRef T);

/// Number of distinct DAG nodes in \p T, counting at most \p Cap (cheap
/// size guard for algorithms whose formulas can blow up).
size_t termSize(TermRef T, size_t Cap = SIZE_MAX);

} // namespace efc

#endif // EFC_TERM_REWRITE_H
