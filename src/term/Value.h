//===- term/Value.h - Runtime values for the term language ------*- C++ -*-===//
///
/// \file
/// Concrete values of the term language: booleans, bitvectors (stored masked
/// in a uint64_t) and tuples.  Used by the reference interpreter for BSTs and
/// by solver models.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TERM_VALUE_H
#define EFC_TERM_VALUE_H

#include "term/Type.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace efc {

/// A concrete value.  Scalars carry their bit width so arithmetic can mask
/// correctly; tuples own their element values.
class Value {
public:
  Value() : Kind(TypeKind::Unit) {}

  static Value boolV(bool B) {
    Value V;
    V.Kind = TypeKind::Bool;
    V.Width = 1;
    V.Bits = B ? 1 : 0;
    return V;
  }

  static Value bv(unsigned Width, uint64_t Bits) {
    assert(Width >= 1 && Width <= 64);
    Value V;
    V.Kind = TypeKind::BitVec;
    V.Width = Width;
    V.Bits = Bits & maskOf(Width);
    return V;
  }

  static Value unit() { return Value(); }

  static Value tuple(std::vector<Value> Elems) {
    Value V;
    V.Kind = TypeKind::Tuple;
    V.Elems = std::move(Elems);
    return V;
  }

  /// The default value of a type: false / 0 / unit / tuple of defaults.
  static Value defaultOf(const Type *Ty);

  TypeKind kind() const { return Kind; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isBv() const { return Kind == TypeKind::BitVec; }
  bool isUnit() const { return Kind == TypeKind::Unit; }
  bool isTuple() const { return Kind == TypeKind::Tuple; }

  bool boolValue() const {
    assert(isBool());
    return Bits != 0;
  }

  uint64_t bits() const {
    assert(isBool() || isBv());
    return Bits;
  }

  unsigned width() const {
    assert(isBv());
    return Width;
  }

  /// Value sign-extended to 64 bits (BitVec only).
  int64_t signedBits() const {
    assert(isBv());
    if (Width == 64)
      return int64_t(Bits);
    uint64_t SignBit = uint64_t(1) << (Width - 1);
    return int64_t((Bits ^ SignBit)) - int64_t(SignBit);
  }

  const std::vector<Value> &elems() const {
    assert(isTuple());
    return Elems;
  }

  const Value &elem(size_t I) const {
    assert(isTuple() && I < Elems.size());
    return Elems[I];
  }

  bool operator==(const Value &O) const {
    if (Kind != O.Kind)
      return false;
    switch (Kind) {
    case TypeKind::Unit:
      return true;
    case TypeKind::Bool:
      return Bits == O.Bits;
    case TypeKind::BitVec:
      return Width == O.Width && Bits == O.Bits;
    case TypeKind::Tuple:
      return Elems == O.Elems;
    }
    return false;
  }
  bool operator!=(const Value &O) const { return !(*this == O); }

  /// True when the value conforms to the given type.
  bool hasType(const Type *Ty) const;

  std::string str() const;

  static uint64_t maskOf(unsigned Width) {
    return Width >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Width) - 1);
  }

private:
  TypeKind Kind;
  unsigned Width = 0;
  uint64_t Bits = 0;
  std::vector<Value> Elems;
};

} // namespace efc

#endif // EFC_TERM_VALUE_H
