//===- term/TermContext.cpp - Term factory with normalization ------------===//

#include "term/TermContext.h"

#include "term/ScalarOps.h"

#include <algorithm>

using namespace efc;

const char *efc::opName(Op O) {
  switch (O) {
  case Op::ConstBool:
    return "const.bool";
  case Op::ConstBv:
    return "const.bv";
  case Op::ConstUnit:
    return "const.unit";
  case Op::Var:
    return "var";
  case Op::Not:
    return "not";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Ite:
    return "ite";
  case Op::Eq:
    return "eq";
  case Op::Ult:
    return "ult";
  case Op::Ule:
    return "ule";
  case Op::Slt:
    return "slt";
  case Op::Sle:
    return "sle";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::UDiv:
    return "udiv";
  case Op::URem:
    return "urem";
  case Op::Neg:
    return "neg";
  case Op::BvAnd:
    return "bvand";
  case Op::BvOr:
    return "bvor";
  case Op::BvXor:
    return "bvxor";
  case Op::BvNot:
    return "bvnot";
  case Op::Shl:
    return "shl";
  case Op::LShr:
    return "lshr";
  case Op::AShr:
    return "ashr";
  case Op::ZExt:
    return "zext";
  case Op::SExt:
    return "sext";
  case Op::Extract:
    return "extract";
  case Op::MkTuple:
    return "tuple";
  case Op::TupleGet:
    return "get";
  }
  return "?";
}

bool TermContext::KeyEq::operator()(const Term *A, const Term *B) const {
  if (A->op() != B->op() || A->type() != B->type() || A->aux() != B->aux() ||
      A->numOperands() != B->numOperands())
    return false;
  for (size_t I = 0; I < A->numOperands(); ++I)
    if (A->operand(I) != B->operand(I))
      return false;
  return true;
}

static size_t hashNode(Op O, const Type *Ty, uint64_t Aux,
                       const std::vector<TermRef> &Ops) {
  size_t H = size_t(O) * 0x9e3779b97f4a7c15ull;
  H ^= std::hash<const void *>()(Ty) + 0x9e3779b9 + (H << 6) + (H >> 2);
  H ^= std::hash<uint64_t>()(Aux) + 0x9e3779b9 + (H << 6) + (H >> 2);
  for (TermRef T : Ops)
    H ^= std::hash<const void *>()(T) + 0x9e3779b9 + (H << 6) + (H >> 2);
  return H;
}

TermRef TermContext::intern(Op O, const Type *Ty, uint64_t Aux,
                            std::vector<TermRef> Operands) {
  size_t H = hashNode(O, Ty, Aux, Operands);
  Term Probe(O, Ty, Aux, std::move(Operands), 0, H);
  auto It = Interned.find(&Probe);
  if (It != Interned.end())
    return It->second;
  Probe.Id = unsigned(Pool.size());
  Pool.push_back(std::move(Probe));
  TermRef Res = &Pool.back();
  Interned.emplace(Res, Res);
  return Res;
}

//===----------------------------------------------------------------------===
// Variables and constants
//===----------------------------------------------------------------------===

TermRef TermContext::var(std::string_view Name, const Type *Ty) {
  // Distinct types with the same name are distinct variables; qualify the
  // interning key by the type pointer.
  std::string Key(Name);
  Key += '#';
  Key += std::to_string(reinterpret_cast<uintptr_t>(Ty));
  auto It = VarByName.find(Key);
  unsigned Id;
  if (It != VarByName.end()) {
    Id = It->second;
  } else {
    Id = unsigned(Vars.size());
    Vars.push_back(VarInfo{std::string(Name), Ty});
    VarByName.emplace(std::move(Key), Id);
  }
  return intern(Op::Var, Ty, Id, {});
}

TermRef TermContext::freshVar(std::string_view Prefix, const Type *Ty) {
  std::string Name(Prefix);
  Name += '!';
  Name += std::to_string(FreshCounter++);
  return var(Name, Ty);
}

const std::string &TermContext::varName(unsigned VarId) const {
  assert(VarId < Vars.size());
  return Vars[VarId].Name;
}

const Type *TermContext::varType(unsigned VarId) const {
  assert(VarId < Vars.size());
  return Vars[VarId].Ty;
}

TermRef TermContext::boolConst(bool B) {
  return intern(Op::ConstBool, boolTy(), B ? 1 : 0, {});
}

TermRef TermContext::bvConst(const Type *Ty, uint64_t Bits) {
  assert(Ty->isBitVec());
  return intern(Op::ConstBv, Ty, Bits & Ty->mask(), {});
}

TermRef TermContext::unitConst() {
  return intern(Op::ConstUnit, unitTy(), 0, {});
}

TermRef TermContext::constOf(const Type *Ty, const Value &V) {
  assert(V.hasType(Ty) && "value does not conform to type");
  switch (Ty->kind()) {
  case TypeKind::Bool:
    return boolConst(V.boolValue());
  case TypeKind::BitVec:
    return bvConst(Ty, V.bits());
  case TypeKind::Unit:
    return unitConst();
  case TypeKind::Tuple: {
    std::vector<TermRef> Es;
    Es.reserve(Ty->elems().size());
    for (size_t I = 0; I < Ty->elems().size(); ++I)
      Es.push_back(constOf(Ty->elems()[I], V.elem(I)));
    return mkTuple(std::move(Es));
  }
  }
  return unitConst();
}

//===----------------------------------------------------------------------===
// Boolean connectives
//===----------------------------------------------------------------------===

bool TermContext::isComplement(TermRef A, TermRef B) {
  return (A->op() == Op::Not && A->operand(0) == B) ||
         (B->op() == Op::Not && B->operand(0) == A);
}

TermRef TermContext::mkNot(TermRef A) {
  assert(A->type()->isBool());
  if (A->op() == Op::ConstBool)
    return boolConst(A->constBits() == 0);
  if (A->op() == Op::Not)
    return A->operand(0);
  // Push negation through comparisons; this keeps guards in a small normal
  // form (Ult/Ule only, positive).
  if (A->op() == Op::Ult)
    return mkUle(A->operand(1), A->operand(0));
  if (A->op() == Op::Ule)
    return mkUlt(A->operand(1), A->operand(0));
  if (A->op() == Op::Slt)
    return mkSle(A->operand(1), A->operand(0));
  if (A->op() == Op::Sle)
    return mkSlt(A->operand(1), A->operand(0));
  return intern(Op::Not, boolTy(), 0, {A});
}

TermRef TermContext::mkAnd(TermRef A, TermRef B) {
  assert(A->type()->isBool() && B->type()->isBool());
  if (A->isFalse() || B->isFalse())
    return falseConst();
  if (A->isTrue())
    return B;
  if (B->isTrue())
    return A;
  if (A == B)
    return A;
  if (isComplement(A, B))
    return falseConst();
  if (A->id() > B->id())
    std::swap(A, B);
  return intern(Op::And, boolTy(), 0, {A, B});
}

TermRef TermContext::mkOr(TermRef A, TermRef B) {
  assert(A->type()->isBool() && B->type()->isBool());
  if (A->isTrue() || B->isTrue())
    return trueConst();
  if (A->isFalse())
    return B;
  if (B->isFalse())
    return A;
  if (A == B)
    return A;
  if (isComplement(A, B))
    return trueConst();
  if (A->id() > B->id())
    std::swap(A, B);
  return intern(Op::Or, boolTy(), 0, {A, B});
}

TermRef TermContext::mkAnd(std::span<const TermRef> Ts) {
  TermRef Acc = trueConst();
  for (TermRef T : Ts)
    Acc = mkAnd(Acc, T);
  return Acc;
}

//===----------------------------------------------------------------------===
// Ite / Eq
//===----------------------------------------------------------------------===

TermRef TermContext::mkIte(TermRef C, TermRef T, TermRef E) {
  assert(C->type()->isBool());
  assert(T->type() == E->type() && "ite branches must share a type");
  if (C->isTrue())
    return T;
  if (C->isFalse())
    return E;
  if (T == E)
    return T;
  if (T->type()->isBool()) {
    if (T->isTrue() && E->isFalse())
      return C;
    if (T->isFalse() && E->isTrue())
      return mkNot(C);
    if (T->isTrue())
      return mkOr(C, E);
    if (T->isFalse())
      return mkAnd(mkNot(C), E);
    if (E->isTrue())
      return mkOr(mkNot(C), T);
    if (E->isFalse())
      return mkAnd(C, T);
  }
  // Nested selections on the same condition.
  if (T->op() == Op::Ite && T->operand(0) == C)
    T = T->operand(1);
  if (E->op() == Op::Ite && E->operand(0) == C)
    E = E->operand(2);
  if (T == E)
    return T;
  return intern(Op::Ite, T->type(), 0, {C, T, E});
}

TermRef TermContext::mkEq(TermRef A, TermRef B) {
  assert(A->type() == B->type() && "eq requires equal types");
  if (A == B)
    return trueConst();
  const Type *Ty = A->type();
  if (Ty->isUnit())
    return trueConst();
  if (Ty->isTuple()) {
    // Decompose structurally so the solver only sees scalar equalities.
    TermRef Acc = trueConst();
    for (unsigned I = 0; I < Ty->arity(); ++I)
      Acc = mkAnd(Acc, mkEq(mkTupleGet(A, I), mkTupleGet(B, I)));
    return Acc;
  }
  if (A->isConst() && B->isConst())
    return boolConst(A->constBits() == B->constBits());
  if (Ty->isBool()) {
    if (B->isTrue())
      return A;
    if (B->isFalse())
      return mkNot(A);
    if (A->isTrue())
      return B;
    if (A->isFalse())
      return mkNot(B);
    if (isComplement(A, B))
      return falseConst();
  }
  if (A->id() > B->id())
    std::swap(A, B);
  return intern(Op::Eq, boolTy(), 0, {A, B});
}

//===----------------------------------------------------------------------===
// Comparisons
//===----------------------------------------------------------------------===

TermRef TermContext::mkUlt(TermRef A, TermRef B) {
  assert(A->type() == B->type() && A->type()->isBitVec());
  unsigned W = A->type()->width();
  if (A->isConst() && B->isConst())
    return boolConst(evalBvCompare(Op::Ult, W, A->constBits(), B->constBits()));
  if (A == B)
    return falseConst();
  if (B->isConst() && B->constBits() == 0)
    return falseConst(); // x < 0 unsigned
  if (A->isConst() && A->constBits() == A->type()->mask())
    return falseConst(); // max < x
  if (A->isConst() && A->constBits() == 0)
    return mkNot(mkEq(B, A)); // 0 < x  <=>  x != 0
  if (B->isConst() && B->constBits() == B->type()->mask())
    return mkNot(mkEq(A, B)); // x < max  <=>  x != max
  return intern(Op::Ult, boolTy(), 0, {A, B});
}

TermRef TermContext::mkUle(TermRef A, TermRef B) {
  assert(A->type() == B->type() && A->type()->isBitVec());
  unsigned W = A->type()->width();
  if (A->isConst() && B->isConst())
    return boolConst(evalBvCompare(Op::Ule, W, A->constBits(), B->constBits()));
  if (A == B)
    return trueConst();
  if (A->isConst() && A->constBits() == 0)
    return trueConst(); // 0 <= x
  if (B->isConst() && B->constBits() == B->type()->mask())
    return trueConst(); // x <= max
  if (B->isConst() && B->constBits() == 0)
    return mkEq(A, B); // x <= 0  <=>  x == 0
  if (A->isConst() && A->constBits() == A->type()->mask())
    return mkEq(B, A); // max <= x  <=>  x == max
  return intern(Op::Ule, boolTy(), 0, {A, B});
}

TermRef TermContext::mkSlt(TermRef A, TermRef B) {
  assert(A->type() == B->type() && A->type()->isBitVec());
  unsigned W = A->type()->width();
  if (A->isConst() && B->isConst())
    return boolConst(evalBvCompare(Op::Slt, W, A->constBits(), B->constBits()));
  if (A == B)
    return falseConst();
  return intern(Op::Slt, boolTy(), 0, {A, B});
}

TermRef TermContext::mkSle(TermRef A, TermRef B) {
  assert(A->type() == B->type() && A->type()->isBitVec());
  unsigned W = A->type()->width();
  if (A->isConst() && B->isConst())
    return boolConst(evalBvCompare(Op::Sle, W, A->constBits(), B->constBits()));
  if (A == B)
    return trueConst();
  return intern(Op::Sle, boolTy(), 0, {A, B});
}

TermRef TermContext::mkInRange(TermRef X, uint64_t Lo, uint64_t Hi) {
  assert(X->type()->isBitVec());
  const Type *Ty = X->type();
  if (Lo == Hi)
    return mkEq(X, bvConst(Ty, Lo));
  return mkAnd(mkUle(bvConst(Ty, Lo), X), mkUle(X, bvConst(Ty, Hi)));
}

//===----------------------------------------------------------------------===
// Arithmetic / bitwise
//===----------------------------------------------------------------------===

TermRef TermContext::foldBinary(Op O, TermRef A, TermRef B) {
  assert(A->type() == B->type() && A->type()->isBitVec());
  unsigned W = A->type()->width();
  if (A->isConst() && B->isConst())
    return bvConst(A->type(),
                   evalBvBinary(O, W, A->constBits(), B->constBits()));
  return nullptr;
}

TermRef TermContext::mkAdd(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::Add, A, B))
    return F;
  if (A->isConst())
    std::swap(A, B); // constants to the right
  if (B->isConst() && B->constBits() == 0)
    return A;
  // (x + c1) + c2 -> x + (c1 + c2)
  if (B->isConst() && A->op() == Op::Add && A->operand(1)->isConst())
    return mkAdd(A->operand(0),
                 bvConst(A->type(), A->operand(1)->constBits() +
                                        B->constBits()));
  if (!A->isConst() && !B->isConst() && A->id() > B->id())
    std::swap(A, B);
  return intern(Op::Add, A->type(), 0, {A, B});
}

TermRef TermContext::mkSub(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::Sub, A, B))
    return F;
  if (B->isConst() && B->constBits() == 0)
    return A;
  if (A == B)
    return bvConst(A->type(), 0);
  // x - c  ->  x + (-c): reuse Add's reassociation.
  if (B->isConst())
    return mkAdd(A, bvConst(A->type(), ~B->constBits() + 1));
  if (A->isConst() && A->constBits() == 0)
    return mkNeg(B);
  return intern(Op::Sub, A->type(), 0, {A, B});
}

TermRef TermContext::mkMul(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::Mul, A, B))
    return F;
  if (A->isConst())
    std::swap(A, B);
  if (B->isConst()) {
    if (B->constBits() == 0)
      return B;
    if (B->constBits() == 1)
      return A;
    if (A->op() == Op::Mul && A->operand(1)->isConst())
      return mkMul(A->operand(0),
                   bvConst(A->type(), A->operand(1)->constBits() *
                                          B->constBits()));
  }
  if (!A->isConst() && !B->isConst() && A->id() > B->id())
    std::swap(A, B);
  return intern(Op::Mul, A->type(), 0, {A, B});
}

TermRef TermContext::mkUDiv(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::UDiv, A, B))
    return F;
  if (B->isConst() && B->constBits() == 1)
    return A;
  return intern(Op::UDiv, A->type(), 0, {A, B});
}

TermRef TermContext::mkURem(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::URem, A, B))
    return F;
  if (B->isConst() && B->constBits() == 1)
    return bvConst(A->type(), 0);
  return intern(Op::URem, A->type(), 0, {A, B});
}

TermRef TermContext::mkNeg(TermRef A) {
  assert(A->type()->isBitVec());
  if (A->isConst())
    return bvConst(A->type(), ~A->constBits() + 1);
  if (A->op() == Op::Neg)
    return A->operand(0);
  return intern(Op::Neg, A->type(), 0, {A});
}

TermRef TermContext::mkBvAnd(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::BvAnd, A, B))
    return F;
  if (A->isConst())
    std::swap(A, B);
  if (B->isConst()) {
    if (B->constBits() == 0)
      return B;
    if (B->constBits() == B->type()->mask())
      return A;
  }
  if (A == B)
    return A;
  if (!A->isConst() && !B->isConst() && A->id() > B->id())
    std::swap(A, B);
  return intern(Op::BvAnd, A->type(), 0, {A, B});
}

TermRef TermContext::mkBvOr(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::BvOr, A, B))
    return F;
  if (A->isConst())
    std::swap(A, B);
  if (B->isConst()) {
    if (B->constBits() == 0)
      return A;
    if (B->constBits() == B->type()->mask())
      return B;
  }
  if (A == B)
    return A;
  if (!A->isConst() && !B->isConst() && A->id() > B->id())
    std::swap(A, B);
  return intern(Op::BvOr, A->type(), 0, {A, B});
}

TermRef TermContext::mkBvXor(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::BvXor, A, B))
    return F;
  if (A->isConst())
    std::swap(A, B);
  if (B->isConst() && B->constBits() == 0)
    return A;
  if (A == B)
    return bvConst(A->type(), 0);
  if (!A->isConst() && !B->isConst() && A->id() > B->id())
    std::swap(A, B);
  return intern(Op::BvXor, A->type(), 0, {A, B});
}

TermRef TermContext::mkBvNot(TermRef A) {
  assert(A->type()->isBitVec());
  if (A->isConst())
    return bvConst(A->type(), ~A->constBits());
  if (A->op() == Op::BvNot)
    return A->operand(0);
  return intern(Op::BvNot, A->type(), 0, {A});
}

TermRef TermContext::mkShl(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::Shl, A, B))
    return F;
  if (B->isConst() && B->constBits() == 0)
    return A;
  return intern(Op::Shl, A->type(), 0, {A, B});
}

TermRef TermContext::mkLShr(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::LShr, A, B))
    return F;
  if (B->isConst() && B->constBits() == 0)
    return A;
  return intern(Op::LShr, A->type(), 0, {A, B});
}

TermRef TermContext::mkAShr(TermRef A, TermRef B) {
  if (TermRef F = foldBinary(Op::AShr, A, B))
    return F;
  if (B->isConst() && B->constBits() == 0)
    return A;
  return intern(Op::AShr, A->type(), 0, {A, B});
}

TermRef TermContext::mkShlC(TermRef A, unsigned Amount) {
  return mkShl(A, bvConst(A->type(), Amount));
}

TermRef TermContext::mkLShrC(TermRef A, unsigned Amount) {
  return mkLShr(A, bvConst(A->type(), Amount));
}

//===----------------------------------------------------------------------===
// Width changing
//===----------------------------------------------------------------------===

TermRef TermContext::mkZExt(TermRef A, unsigned NewWidth) {
  assert(A->type()->isBitVec());
  unsigned W = A->type()->width();
  assert(NewWidth >= W && "zext cannot narrow");
  if (NewWidth == W)
    return A;
  if (A->isConst())
    return bvConst(bv(NewWidth), A->constBits());
  if (A->op() == Op::ZExt)
    return mkZExt(A->operand(0), NewWidth);
  return intern(Op::ZExt, bv(NewWidth), 0, {A});
}

TermRef TermContext::mkSExt(TermRef A, unsigned NewWidth) {
  assert(A->type()->isBitVec());
  unsigned W = A->type()->width();
  assert(NewWidth >= W && "sext cannot narrow");
  if (NewWidth == W)
    return A;
  if (A->isConst())
    return bvConst(bv(NewWidth), uint64_t(toSigned(W, A->constBits())));
  if (A->op() == Op::SExt)
    return mkSExt(A->operand(0), NewWidth);
  return intern(Op::SExt, bv(NewWidth), 0, {A});
}

TermRef TermContext::mkExtract(TermRef A, unsigned Hi, unsigned Lo) {
  assert(A->type()->isBitVec());
  unsigned W = A->type()->width();
  assert(Lo <= Hi && Hi < W && "extract out of range");
  if (Lo == 0 && Hi == W - 1)
    return A;
  unsigned NewW = Hi - Lo + 1;
  if (A->isConst())
    return bvConst(bv(NewW), A->constBits() >> Lo);
  if (A->op() == Op::Extract)
    return mkExtract(A->operand(0), A->extractLo() + Hi, A->extractLo() + Lo);
  if (A->op() == Op::ZExt && Hi < A->operand(0)->type()->width())
    return mkExtract(A->operand(0), Hi, Lo);
  return intern(Op::Extract, bv(NewW), (uint64_t(Hi) << 32) | Lo, {A});
}

//===----------------------------------------------------------------------===
// Tuples
//===----------------------------------------------------------------------===

TermRef TermContext::mkTuple(std::vector<TermRef> Elems) {
  std::vector<const Type *> Tys;
  Tys.reserve(Elems.size());
  for (TermRef E : Elems)
    Tys.push_back(E->type());
  const Type *Ty = tupleTy(std::move(Tys));
  // Eta: <get(t,0), ..., get(t,n-1)> == t when t already has this type.
  if (!Elems.empty() && Elems[0]->op() == Op::TupleGet &&
      Elems[0]->tupleIndex() == 0) {
    TermRef Base = Elems[0]->operand(0);
    if (Base->type() == Ty) {
      bool AllMatch = true;
      for (size_t I = 0; I < Elems.size(); ++I)
        if (Elems[I]->op() != Op::TupleGet || Elems[I]->tupleIndex() != I ||
            Elems[I]->operand(0) != Base) {
          AllMatch = false;
          break;
        }
      if (AllMatch)
        return Base;
    }
  }
  return intern(Op::MkTuple, Ty, 0, std::move(Elems));
}

TermRef TermContext::mkTupleGet(TermRef T, unsigned Index) {
  assert(T->type()->isTuple() && Index < T->type()->arity());
  if (T->op() == Op::MkTuple)
    return T->operand(Index);
  // Push projections through selections so the solver and the blaster only
  // ever see projections applied to variables.
  if (T->op() == Op::Ite)
    return mkIte(T->operand(0), mkTupleGet(T->operand(1), Index),
                 mkTupleGet(T->operand(2), Index));
  return intern(Op::TupleGet, T->type()->elems()[Index], Index, {T});
}
