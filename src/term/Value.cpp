//===- term/Value.cpp -----------------------------------------------------===//

#include "term/Value.h"

using namespace efc;

Value Value::defaultOf(const Type *Ty) {
  switch (Ty->kind()) {
  case TypeKind::Bool:
    return boolV(false);
  case TypeKind::BitVec:
    return bv(Ty->width(), 0);
  case TypeKind::Unit:
    return unit();
  case TypeKind::Tuple: {
    std::vector<Value> Es;
    Es.reserve(Ty->elems().size());
    for (const Type *E : Ty->elems())
      Es.push_back(defaultOf(E));
    return tuple(std::move(Es));
  }
  }
  return unit();
}

bool Value::hasType(const Type *Ty) const {
  switch (Ty->kind()) {
  case TypeKind::Bool:
    return isBool();
  case TypeKind::BitVec:
    return isBv() && width() == Ty->width();
  case TypeKind::Unit:
    return isUnit();
  case TypeKind::Tuple: {
    if (!isTuple() || Elems.size() != Ty->elems().size())
      return false;
    for (size_t I = 0; I < Elems.size(); ++I)
      if (!Elems[I].hasType(Ty->elems()[I]))
        return false;
    return true;
  }
  }
  return false;
}

std::string Value::str() const {
  switch (Kind) {
  case TypeKind::Unit:
    return "()";
  case TypeKind::Bool:
    return Bits ? "true" : "false";
  case TypeKind::BitVec: {
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "0x%llx", (unsigned long long)Bits);
    return Buf;
  }
  case TypeKind::Tuple: {
    std::string S = "<";
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        S += ", ";
      S += Elems[I].str();
    }
    S += ">";
    return S;
  }
  }
  return "?";
}
