//===- term/ScalarOps.h - Concrete semantics of scalar operators -*- C++ -*-===//
///
/// \file
/// Shared concrete semantics for bitvector operators, used both by the
/// constant folder in TermContext and by the term evaluator, so the two can
/// never disagree.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TERM_SCALAROPS_H
#define EFC_TERM_SCALAROPS_H

#include "term/Term.h"

#include <cassert>
#include <cstdint>

namespace efc {

inline uint64_t maskTo(unsigned Width, uint64_t V) {
  return Width >= 64 ? V : (V & ((uint64_t(1) << Width) - 1));
}

inline int64_t toSigned(unsigned Width, uint64_t V) {
  if (Width == 64)
    return int64_t(V);
  uint64_t SignBit = uint64_t(1) << (Width - 1);
  return int64_t((V & ((uint64_t(1) << Width) - 1)) ^ SignBit) -
         int64_t(SignBit);
}

/// Evaluates a width-preserving binary bitvector operator on masked inputs.
inline uint64_t evalBvBinary(Op O, unsigned Width, uint64_t A, uint64_t B) {
  uint64_t R = 0;
  switch (O) {
  case Op::Add:
    R = A + B;
    break;
  case Op::Sub:
    R = A - B;
    break;
  case Op::Mul:
    R = A * B;
    break;
  case Op::UDiv:
    // SMT-LIB: division by zero yields all ones.
    R = B == 0 ? ~uint64_t(0) : A / B;
    break;
  case Op::URem:
    // SMT-LIB: remainder by zero yields the dividend.
    R = B == 0 ? A : A % B;
    break;
  case Op::BvAnd:
    R = A & B;
    break;
  case Op::BvOr:
    R = A | B;
    break;
  case Op::BvXor:
    R = A ^ B;
    break;
  case Op::Shl:
    R = B >= Width ? 0 : A << B;
    break;
  case Op::LShr:
    R = B >= Width ? 0 : A >> B;
    break;
  case Op::AShr: {
    int64_t SA = toSigned(Width, A);
    R = B >= Width ? uint64_t(SA < 0 ? -1 : 0) : uint64_t(SA >> B);
    break;
  }
  default:
    assert(false && "not a binary bitvector operator");
  }
  return maskTo(Width, R);
}

/// Evaluates a bitvector comparison on masked inputs.
inline bool evalBvCompare(Op O, unsigned Width, uint64_t A, uint64_t B) {
  switch (O) {
  case Op::Ult:
    return A < B;
  case Op::Ule:
    return A <= B;
  case Op::Slt:
    return toSigned(Width, A) < toSigned(Width, B);
  case Op::Sle:
    return toSigned(Width, A) <= toSigned(Width, B);
  default:
    assert(false && "not a comparison operator");
    return false;
  }
}

} // namespace efc

#endif // EFC_TERM_SCALAROPS_H
