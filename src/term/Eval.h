//===- term/Eval.h - Concrete evaluation of terms ---------------*- C++ -*-===//
///
/// \file
/// Reference evaluator for the term language.  Used by the BST interpreter
/// (the paper's transduction semantics) and by tests that cross-check the
/// solver and the VM against ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TERM_EVAL_H
#define EFC_TERM_EVAL_H

#include "term/Term.h"
#include "term/Value.h"

#include <unordered_map>

namespace efc {

/// Variable assignment: variable id -> value.
class Env {
public:
  void bind(TermRef Var, Value V) {
    assert(Var->isVar());
    Map[Var->varId()] = std::move(V);
  }
  void bind(unsigned VarId, Value V) { Map[VarId] = std::move(V); }

  const Value *lookup(unsigned VarId) const {
    auto It = Map.find(VarId);
    return It == Map.end() ? nullptr : &It->second;
  }

private:
  std::unordered_map<unsigned, Value> Map;
};

/// Evaluates \p T under \p E.  Every variable occurring in T must be bound.
Value evalTerm(TermRef T, const Env &E);

} // namespace efc

#endif // EFC_TERM_EVAL_H
