//===- term/Term.h - Hash-consed symbolic terms -----------------*- C++ -*-===//
///
/// \file
/// Immutable, hash-consed terms of the background theory used in BST rules.
/// Terms form a DAG owned by a TermContext; `TermRef` (a raw const pointer)
/// is the universal handle, and pointer equality is semantic equality up to
/// the normalization performed by the factory.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TERM_TERM_H
#define EFC_TERM_TERM_H

#include "term/Type.h"

#include <cstdint>
#include <span>
#include <vector>

namespace efc {

class Term;
using TermRef = const Term *;

/// Operators of the term language.  The fragment is quantifier-free
/// bitvectors plus booleans and tuples — the same decidable background
/// theory the paper uses through Z3.
enum class Op : uint8_t {
  // Nullary.
  ConstBool, // aux = 0/1
  ConstBv,   // aux = value (masked to width)
  ConstUnit,
  Var, // aux = variable id

  // Boolean connectives (operands and result bool).
  Not,
  And,
  Or,

  // Polymorphic.
  Ite, // (bool, T, T) -> T
  Eq,  // (S, S) -> bool, scalar S only after normalization

  // Bitvector comparisons -> bool.
  Ult,
  Ule,
  Slt,
  Sle,

  // Bitvector arithmetic (operands and result share a width).
  Add,
  Sub,
  Mul,
  UDiv, // SMT-LIB semantics: x udiv 0 = all-ones
  URem, // SMT-LIB semantics: x urem 0 = x
  Neg,

  // Bitvector bitwise / shifts (shift amount has the same width; shifts of
  // `width()` or more yield 0, AShr yields the sign fill).
  BvAnd,
  BvOr,
  BvXor,
  BvNot,
  Shl,
  LShr,
  AShr,

  // Width changing.
  ZExt,    // aux unused; result type carries new width
  SExt,    //
  Extract, // aux = (hi << 32) | lo; result width = hi - lo + 1

  // Tuples.
  MkTuple,
  TupleGet, // aux = element index
};

const char *opName(Op O);

/// A single immutable term node.  Create through TermContext only.
class Term {
public:
  Op op() const { return Opc; }
  const Type *type() const { return Ty; }
  uint64_t aux() const { return Aux; }
  unsigned id() const { return Id; }
  size_t hash() const { return HashVal; }

  std::span<const TermRef> operands() const {
    return {Operands.data(), Operands.size()};
  }
  TermRef operand(size_t I) const { return Operands[I]; }
  size_t numOperands() const { return Operands.size(); }

  bool isConst() const {
    return Opc == Op::ConstBool || Opc == Op::ConstBv || Opc == Op::ConstUnit;
  }
  bool isVar() const { return Opc == Op::Var; }

  bool isTrue() const { return Opc == Op::ConstBool && Aux == 1; }
  bool isFalse() const { return Opc == Op::ConstBool && Aux == 0; }

  /// Constant payload for ConstBool / ConstBv.
  uint64_t constBits() const { return Aux; }

  /// Variable id for Var terms.
  unsigned varId() const { return unsigned(Aux); }

  /// Extract bounds.
  unsigned extractHi() const { return unsigned(Aux >> 32); }
  unsigned extractLo() const { return unsigned(Aux & 0xffffffffu); }

  /// Tuple element index for TupleGet.
  unsigned tupleIndex() const { return unsigned(Aux); }

private:
  friend class TermContext;
  Term(Op O, const Type *T, uint64_t A, std::vector<TermRef> Os, unsigned I,
       size_t H)
      : Opc(O), Ty(T), Aux(A), Id(I), HashVal(H), Operands(std::move(Os)) {}

  Op Opc;
  const Type *Ty;
  uint64_t Aux;
  unsigned Id;
  size_t HashVal;
  std::vector<TermRef> Operands;
};

} // namespace efc

#endif // EFC_TERM_TERM_H
