//===- term/Print.cpp -----------------------------------------------------===//

#include "term/Print.h"

using namespace efc;

namespace {

void render(const TermContext &Ctx, TermRef T, std::string &Out) {
  auto binary = [&](const char *Sym) {
    Out += '(';
    render(Ctx, T->operand(0), Out);
    Out += ' ';
    Out += Sym;
    Out += ' ';
    render(Ctx, T->operand(1), Out);
    Out += ')';
  };
  switch (T->op()) {
  case Op::ConstBool:
    Out += T->constBits() ? "true" : "false";
    return;
  case Op::ConstBv: {
    char Buf[32];
    if (T->constBits() < 10)
      snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)T->constBits());
    else
      snprintf(Buf, sizeof(Buf), "0x%llx", (unsigned long long)T->constBits());
    Out += Buf;
    return;
  }
  case Op::ConstUnit:
    Out += "()";
    return;
  case Op::Var:
    Out += Ctx.varName(T->varId());
    return;
  case Op::Not:
    Out += '!';
    render(Ctx, T->operand(0), Out);
    return;
  case Op::And:
    binary("&&");
    return;
  case Op::Or:
    binary("||");
    return;
  case Op::Ite:
    Out += '(';
    render(Ctx, T->operand(0), Out);
    Out += " ? ";
    render(Ctx, T->operand(1), Out);
    Out += " : ";
    render(Ctx, T->operand(2), Out);
    Out += ')';
    return;
  case Op::Eq:
    binary("==");
    return;
  case Op::Ult:
    binary("<u");
    return;
  case Op::Ule:
    binary("<=u");
    return;
  case Op::Slt:
    binary("<s");
    return;
  case Op::Sle:
    binary("<=s");
    return;
  case Op::Add:
    binary("+");
    return;
  case Op::Sub:
    binary("-");
    return;
  case Op::Mul:
    binary("*");
    return;
  case Op::UDiv:
    binary("/");
    return;
  case Op::URem:
    binary("%");
    return;
  case Op::Neg:
    Out += '-';
    render(Ctx, T->operand(0), Out);
    return;
  case Op::BvAnd:
    binary("&");
    return;
  case Op::BvOr:
    binary("|");
    return;
  case Op::BvXor:
    binary("^");
    return;
  case Op::BvNot:
    Out += '~';
    render(Ctx, T->operand(0), Out);
    return;
  case Op::Shl:
    binary("<<");
    return;
  case Op::LShr:
    binary(">>");
    return;
  case Op::AShr:
    binary(">>s");
    return;
  case Op::ZExt:
    Out += "zext" + std::to_string(T->type()->width()) + "(";
    render(Ctx, T->operand(0), Out);
    Out += ')';
    return;
  case Op::SExt:
    Out += "sext" + std::to_string(T->type()->width()) + "(";
    render(Ctx, T->operand(0), Out);
    Out += ')';
    return;
  case Op::Extract:
    render(Ctx, T->operand(0), Out);
    Out += '[' + std::to_string(T->extractHi()) + ':' +
           std::to_string(T->extractLo()) + ']';
    return;
  case Op::MkTuple:
    Out += '<';
    for (size_t I = 0; I < T->numOperands(); ++I) {
      if (I)
        Out += ", ";
      render(Ctx, T->operand(I), Out);
    }
    Out += '>';
    return;
  case Op::TupleGet:
    render(Ctx, T->operand(0), Out);
    Out += '.' + std::to_string(T->tupleIndex());
    return;
  }
}

} // namespace

std::string efc::termToString(const TermContext &Ctx, TermRef T) {
  std::string Out;
  render(Ctx, T, Out);
  return Out;
}
