//===- term/Rewrite.cpp ---------------------------------------------------===//

#include "term/Rewrite.h"

using namespace efc;

namespace {

class SubstWalker {
public:
  SubstWalker(TermContext &Ctx, const Subst &S) : Ctx(Ctx), S(S) {}

  TermRef walk(TermRef T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    TermRef R = rebuild(T);
    Cache.emplace(T, R);
    return R;
  }

private:
  TermContext &Ctx;
  const Subst &S;
  std::unordered_map<TermRef, TermRef> Cache;

  TermRef rebuild(TermRef T) {
    if (T->isVar()) {
      if (TermRef R = S.lookup(T))
        return R;
      return T;
    }
    if (T->isConst())
      return T;

    // Rebuild operands first; if nothing changed, reuse the node.
    bool Changed = false;
    std::vector<TermRef> Ops;
    Ops.reserve(T->numOperands());
    for (TermRef O : T->operands()) {
      TermRef N = walk(O);
      Changed |= (N != O);
      Ops.push_back(N);
    }
    if (!Changed)
      return T;

    switch (T->op()) {
    case Op::Not:
      return Ctx.mkNot(Ops[0]);
    case Op::And:
      return Ctx.mkAnd(Ops[0], Ops[1]);
    case Op::Or:
      return Ctx.mkOr(Ops[0], Ops[1]);
    case Op::Ite:
      return Ctx.mkIte(Ops[0], Ops[1], Ops[2]);
    case Op::Eq:
      return Ctx.mkEq(Ops[0], Ops[1]);
    case Op::Ult:
      return Ctx.mkUlt(Ops[0], Ops[1]);
    case Op::Ule:
      return Ctx.mkUle(Ops[0], Ops[1]);
    case Op::Slt:
      return Ctx.mkSlt(Ops[0], Ops[1]);
    case Op::Sle:
      return Ctx.mkSle(Ops[0], Ops[1]);
    case Op::Add:
      return Ctx.mkAdd(Ops[0], Ops[1]);
    case Op::Sub:
      return Ctx.mkSub(Ops[0], Ops[1]);
    case Op::Mul:
      return Ctx.mkMul(Ops[0], Ops[1]);
    case Op::UDiv:
      return Ctx.mkUDiv(Ops[0], Ops[1]);
    case Op::URem:
      return Ctx.mkURem(Ops[0], Ops[1]);
    case Op::Neg:
      return Ctx.mkNeg(Ops[0]);
    case Op::BvAnd:
      return Ctx.mkBvAnd(Ops[0], Ops[1]);
    case Op::BvOr:
      return Ctx.mkBvOr(Ops[0], Ops[1]);
    case Op::BvXor:
      return Ctx.mkBvXor(Ops[0], Ops[1]);
    case Op::BvNot:
      return Ctx.mkBvNot(Ops[0]);
    case Op::Shl:
      return Ctx.mkShl(Ops[0], Ops[1]);
    case Op::LShr:
      return Ctx.mkLShr(Ops[0], Ops[1]);
    case Op::AShr:
      return Ctx.mkAShr(Ops[0], Ops[1]);
    case Op::ZExt:
      return Ctx.mkZExt(Ops[0], T->type()->width());
    case Op::SExt:
      return Ctx.mkSExt(Ops[0], T->type()->width());
    case Op::Extract:
      return Ctx.mkExtract(Ops[0], T->extractHi(), T->extractLo());
    case Op::MkTuple:
      return Ctx.mkTuple(std::move(Ops));
    case Op::TupleGet:
      return Ctx.mkTupleGet(Ops[0], T->tupleIndex());
    case Op::ConstBool:
    case Op::ConstBv:
    case Op::ConstUnit:
    case Op::Var:
      break; // handled above
    }
    assert(false && "unhandled op in substitution");
    return T;
  }
};

void collectVarsRec(TermRef T, std::unordered_set<TermRef> &Out,
                    std::unordered_set<TermRef> &Seen) {
  if (!Seen.insert(T).second)
    return;
  if (T->isVar()) {
    Out.insert(T);
    return;
  }
  for (TermRef O : T->operands())
    collectVarsRec(O, Out, Seen);
}

} // namespace

TermRef efc::substitute(TermContext &Ctx, TermRef T, const Subst &S) {
  if (S.empty())
    return T;
  SubstWalker W(Ctx, S);
  return W.walk(T);
}

void efc::collectVars(TermRef T, std::unordered_set<TermRef> &Out) {
  std::unordered_set<TermRef> Seen;
  collectVarsRec(T, Out, Seen);
}

bool efc::mentionsVar(TermRef T, TermRef Var) {
  std::unordered_set<TermRef> Vars;
  collectVars(T, Vars);
  return Vars.count(Var) != 0;
}

bool efc::hasVars(TermRef T) {
  std::unordered_set<TermRef> Vars;
  collectVars(T, Vars);
  return !Vars.empty();
}

size_t efc::termSize(TermRef T, size_t Cap) {
  std::unordered_set<TermRef> Seen;
  std::vector<TermRef> Work{T};
  while (!Work.empty() && Seen.size() < Cap) {
    TermRef Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    for (TermRef O : Cur->operands())
      Work.push_back(O);
  }
  return Seen.size();
}
