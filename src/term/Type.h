//===- term/Type.h - Interned types for the term language ------*- C++ -*-===//
//
// Part of the EFC project: a C++ reproduction of "Fusing Effectful
// Comprehensions" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types for the symbolic term language used in rules of branching symbolic
/// transducers: booleans, fixed-width bitvectors (up to 64 bits), the unit
/// type, and tuples thereof.  Types are interned by TypeFactory so pointer
/// equality coincides with structural equality.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TERM_TYPE_H
#define EFC_TERM_TYPE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace efc {

enum class TypeKind : uint8_t { Bool, BitVec, Unit, Tuple };

/// An interned type.  Instances are owned by a TypeFactory; users hold
/// `const Type *` and may compare types by pointer.
class Type {
public:
  TypeKind kind() const { return Kind; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isBitVec() const { return Kind == TypeKind::BitVec; }
  bool isUnit() const { return Kind == TypeKind::Unit; }
  bool isTuple() const { return Kind == TypeKind::Tuple; }
  bool isScalar() const { return isBool() || isBitVec(); }

  /// Bit width of a BitVec type (1..64).
  unsigned width() const {
    assert(isBitVec() && "width() requires a BitVec type");
    return Width;
  }

  /// Mask with the low `width()` bits set (BitVec only).
  uint64_t mask() const {
    assert(isBitVec());
    return Width >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Width) - 1);
  }

  /// Element types of a Tuple type.
  const std::vector<const Type *> &elems() const {
    assert(isTuple() && "elems() requires a Tuple type");
    return Elems;
  }

  unsigned arity() const { return isTuple() ? unsigned(Elems.size()) : 0; }

  /// Total number of scalar leaves when the type is flattened (Unit counts
  /// as zero leaves; scalars count as one).
  unsigned numLeaves() const { return NumLeaves; }

  /// Appends the scalar leaf types of this type, left to right.
  void flatten(std::vector<const Type *> &Out) const;

  /// Human-readable form, e.g. "bv8", "(bv32 x bool)".
  std::string str() const;

private:
  friend class TypeFactory;
  Type(TypeKind K, unsigned W, std::vector<const Type *> Es)
      : Kind(K), Width(W), Elems(std::move(Es)) {}

  TypeKind Kind;
  unsigned Width = 0;
  unsigned NumLeaves = 0;
  std::vector<const Type *> Elems;
};

/// Interning factory for types.  Owned by TermContext.
class TypeFactory {
public:
  TypeFactory();
  TypeFactory(const TypeFactory &) = delete;
  TypeFactory &operator=(const TypeFactory &) = delete;

  const Type *boolTy() const { return BoolTy; }
  const Type *unitTy() const { return UnitTy; }
  const Type *bv(unsigned Width);
  const Type *tuple(std::vector<const Type *> Elems);
  const Type *pair(const Type *A, const Type *B) { return tuple({A, B}); }

private:
  std::vector<std::unique_ptr<Type>> Owned;
  const Type *BoolTy;
  const Type *UnitTy;
  std::unordered_map<unsigned, const Type *> BvCache;
  std::unordered_map<std::string, const Type *> TupleCache;

  const Type *intern(std::unique_ptr<Type> T);
};

} // namespace efc

#endif // EFC_TERM_TYPE_H
