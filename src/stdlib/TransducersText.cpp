//===- stdlib/TransducersText.cpp - UTF-8, ToInt, ToBool, formatting ------===//

#include "stdlib/Transducers.h"

#include <functional>

using namespace efc;

namespace {

/// 10^k for k <= 10 as uint64.
uint64_t pow10(unsigned K) {
  uint64_t P = 1;
  while (K--)
    P *= 10;
  return P;
}

} // namespace

Bst efc::lib::makeUtf8Decode2(TermContext &Ctx) {
  const Type *ByteTy = Ctx.bv(8);
  const Type *CharTy = Ctx.bv(16);
  Bst A(Ctx, ByteTy, CharTy, CharTy, /*NumStates=*/2, /*Init=*/0,
        Value::bv(16, 0));
  A.setStateName(0, "q0");
  A.setStateName(1, "q1");
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef X16 = Ctx.mkZExt(X, 16);
  TermRef Zero = Ctx.bvConst(16, 0);

  // q0: ASCII passes through; 0xC2..0xDF starts a 2-byte sequence.
  A.setDelta(
      0, Rule::ite(Ctx.mkUle(X, Ctx.bvConst(8, 0x7F)),
                   Rule::base({X16}, 0, Zero),
                   Rule::ite(Ctx.mkInRange(X, 0xC2, 0xDF),
                             Rule::base({}, 1,
                                        Ctx.mkShlC(Ctx.mkBvAnd(
                                                       X16,
                                                       Ctx.bvConst(16, 0x3F)),
                                                   6)),
                             Rule::undef())));
  // q1: continuation byte completes the character.
  A.setDelta(
      1, Rule::ite(Ctx.mkInRange(X, 0x80, 0xBF),
                   Rule::base({Ctx.mkBvOr(
                                  R, Ctx.mkBvAnd(X16, Ctx.bvConst(16, 0x3F)))},
                              0, Zero),
                   Rule::undef()));
  A.setFinalizer(0, Rule::base({}, 0, Zero));
  // q1 finalizer stays Undef: truncated sequences reject.
  return A;
}

Bst efc::lib::makeUtf8Decode(TermContext &Ctx) {
  const Type *ByteTy = Ctx.bv(8);
  const Type *CharTy = Ctx.bv(16);
  const Type *RegTy = Ctx.bv(32);
  // States: 0 start/final, 1: one continuation pending, 2/3: two/one pending
  // (3-byte), 4/5/6: three/two/one pending (4-byte).
  Bst A(Ctx, ByteTy, CharTy, RegTy, 7, 0, Value::bv(32, 0));
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef X32 = Ctx.mkZExt(X, 32);
  TermRef Zero = Ctx.bvConst(32, 0);
  TermRef Cont = Ctx.mkInRange(X, 0x80, 0xBF);
  auto Low6 = Ctx.mkBvAnd(X32, Ctx.bvConst(32, 0x3F));
  auto ToChar = [&](TermRef T32) { return Ctx.mkExtract(T32, 15, 0); };

  A.setDelta(
      0,
      Rule::ite(
          Ctx.mkUle(X, Ctx.bvConst(8, 0x7F)),
          Rule::base({ToChar(X32)}, 0, Zero),
          Rule::ite(
              Ctx.mkInRange(X, 0xC2, 0xDF),
              Rule::base({}, 1,
                         Ctx.mkShlC(Ctx.mkBvAnd(X32, Ctx.bvConst(32, 0x1F)),
                                    6)),
              Rule::ite(
                  Ctx.mkInRange(X, 0xE0, 0xEF),
                  Rule::base({}, 2,
                             Ctx.mkShlC(
                                 Ctx.mkBvAnd(X32, Ctx.bvConst(32, 0x0F)), 12)),
                  Rule::ite(Ctx.mkInRange(X, 0xF0, 0xF4),
                            Rule::base({}, 4,
                                       Ctx.mkShlC(Ctx.mkBvAnd(
                                                      X32,
                                                      Ctx.bvConst(32, 0x07)),
                                                  18)),
                            Rule::undef())))));
  // 2-byte completion.
  A.setDelta(1, Rule::ite(Cont,
                          Rule::base({ToChar(Ctx.mkBvOr(R, Low6))}, 0, Zero),
                          Rule::undef()));
  // 3-byte middle and completion.
  A.setDelta(2, Rule::ite(Cont,
                          Rule::base({}, 3,
                                     Ctx.mkBvOr(R, Ctx.mkShlC(Low6, 6))),
                          Rule::undef()));
  A.setDelta(3, Rule::ite(Cont,
                          Rule::base({ToChar(Ctx.mkBvOr(R, Low6))}, 0, Zero),
                          Rule::undef()));
  // 4-byte chain; completion emits a surrogate pair.
  A.setDelta(4, Rule::ite(Cont,
                          Rule::base({}, 5,
                                     Ctx.mkBvOr(R, Ctx.mkShlC(Low6, 12))),
                          Rule::undef()));
  A.setDelta(5, Rule::ite(Cont,
                          Rule::base({}, 6,
                                     Ctx.mkBvOr(R, Ctx.mkShlC(Low6, 6))),
                          Rule::undef()));
  {
    TermRef Cp = Ctx.mkBvOr(R, Low6);
    TermRef Off = Ctx.mkSub(Cp, Ctx.bvConst(32, 0x10000));
    TermRef Hi = Ctx.mkAdd(Ctx.bvConst(32, 0xD800), Ctx.mkLShrC(Off, 10));
    TermRef Lo = Ctx.mkAdd(Ctx.bvConst(32, 0xDC00),
                           Ctx.mkBvAnd(Off, Ctx.bvConst(32, 0x3FF)));
    A.setDelta(6, Rule::ite(Cont,
                            Rule::base({ToChar(Hi), ToChar(Lo)}, 0, Zero),
                            Rule::undef()));
  }
  A.setFinalizer(0, Rule::base({}, 0, Zero));
  return A;
}

Bst efc::lib::makeUtf8Encode(TermContext &Ctx) {
  const Type *CharTy = Ctx.bv(16);
  const Type *ByteTy = Ctx.bv(8);
  const Type *RegTy = Ctx.bv(32);
  Bst A(Ctx, CharTy, ByteTy, RegTy, 2, 0, Value::bv(32, 0));
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef X32 = Ctx.mkZExt(X, 32);
  TermRef Zero = Ctx.bvConst(32, 0);
  auto Byte = [&](TermRef T32) { return Ctx.mkExtract(T32, 7, 0); };
  auto Or = [&](TermRef A2, uint64_t C) {
    return Ctx.mkBvOr(A2, Ctx.bvConst(32, C));
  };
  auto And = [&](TermRef A2, uint64_t C) {
    return Ctx.mkBvAnd(A2, Ctx.bvConst(32, C));
  };

  TermRef HighSurr = Ctx.mkInRange(X, 0xD800, 0xDBFF);
  TermRef LowSurr = Ctx.mkInRange(X, 0xDC00, 0xDFFF);

  A.setDelta(
      0,
      Rule::ite(
          Ctx.mkUle(X, Ctx.bvConst(16, 0x7F)),
          Rule::base({Byte(X32)}, 0, Zero),
          Rule::ite(
              Ctx.mkUle(X, Ctx.bvConst(16, 0x7FF)),
              Rule::base({Byte(Or(Ctx.mkLShrC(X32, 6), 0xC0)),
                          Byte(Or(And(X32, 0x3F), 0x80))},
                         0, Zero),
              Rule::ite(
                  HighSurr, Rule::base({}, 1, And(X32, 0x3FF)),
                  Rule::ite(
                      LowSurr, Rule::undef(),
                      Rule::base({Byte(Or(Ctx.mkLShrC(X32, 12), 0xE0)),
                                  Byte(Or(And(Ctx.mkLShrC(X32, 6), 0x3F),
                                          0x80)),
                                  Byte(Or(And(X32, 0x3F), 0x80))},
                                 0, Zero))))));
  {
    // Complete the surrogate pair: cp = 0x10000 + (hi10 << 10) + lo10.
    TermRef Cp = Ctx.mkAdd(Ctx.bvConst(32, 0x10000),
                           Ctx.mkAdd(Ctx.mkShlC(R, 10), And(X32, 0x3FF)));
    A.setDelta(
        1, Rule::ite(LowSurr,
                     Rule::base({Byte(Or(Ctx.mkLShrC(Cp, 18), 0xF0)),
                                 Byte(Or(And(Ctx.mkLShrC(Cp, 12), 0x3F), 0x80)),
                                 Byte(Or(And(Ctx.mkLShrC(Cp, 6), 0x3F), 0x80)),
                                 Byte(Or(And(Cp, 0x3F), 0x80))},
                                0, Zero),
                     Rule::undef()));
  }
  A.setFinalizer(0, Rule::base({}, 0, Zero));
  return A;
}

Bst efc::lib::makeToInt(TermContext &Ctx) {
  const Type *CharTy = Ctx.bv(16);
  const Type *IntTy = Ctx.bv(32);
  Bst A(Ctx, CharTy, IntTy, IntTy, 2, 0, Value::bv(32, 0));
  A.setStateName(0, "p0");
  A.setStateName(1, "p1");
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef Digit = Ctx.mkInRange(X, 0x30, 0x39);
  TermRef NewVal = Ctx.mkAdd(Ctx.mkMul(Ctx.bvConst(32, 10), R),
                             Ctx.mkSub(Ctx.mkZExt(X, 32),
                                       Ctx.bvConst(32, 0x30)));
  RulePtr Step = Rule::ite(Digit, Rule::base({}, 1, NewVal), Rule::undef());
  A.setDelta(0, Step);
  A.setDelta(1, Step);
  // p1's finalizer emits the accumulated integer.
  A.setFinalizer(1, Rule::base({R}, 1, Ctx.bvConst(32, 0)));
  return A;
}

Bst efc::lib::makeToBool(TermContext &Ctx) {
  const Type *CharTy = Ctx.bv(16);
  const Type *IntTy = Ctx.bv(32);
  // States: 0 init; 1..3 't','tr','tru'; 4 done-true;
  // 5..8 'f','fa','fal','fals'; 9 done-false.
  Bst A(Ctx, CharTy, IntTy, Ctx.unitTy(), 10, 0, Value::unit());
  TermRef X = A.inputVar();
  TermRef U = Ctx.unitConst();
  auto Expect = [&](unsigned From, char C, unsigned To) {
    A.setDelta(From,
               Rule::ite(Ctx.mkEq(X, Ctx.bvConst(16, uint64_t(C))),
                         Rule::base({}, To, U), Rule::undef()));
  };
  A.setDelta(0, Rule::ite(Ctx.mkEq(X, Ctx.bvConst(16, 't')),
                          Rule::base({}, 1, U),
                          Rule::ite(Ctx.mkEq(X, Ctx.bvConst(16, 'f')),
                                    Rule::base({}, 5, U), Rule::undef())));
  Expect(1, 'r', 2);
  Expect(2, 'u', 3);
  Expect(3, 'e', 4);
  Expect(5, 'a', 6);
  Expect(6, 'l', 7);
  Expect(7, 's', 8);
  Expect(8, 'e', 9);
  A.setFinalizer(4, Rule::base({Ctx.bvConst(32, 1)}, 4, U));
  A.setFinalizer(9, Rule::base({Ctx.bvConst(32, 0)}, 9, U));
  return A;
}

namespace {

/// Builds the decimal-formatting rule for one element: branch on the
/// magnitude of \p V (a bv32 term) and emit its digits as UTF-16 chars,
/// with \p Suffix appended.  Mirrors the paper's Encode/Digits pattern.
RulePtr decimalRule(TermContext &Ctx, TermRef V,
                    const std::vector<TermRef> &Suffix, unsigned Target,
                    TermRef Update) {
  auto Digits = [&](unsigned N) {
    std::vector<TermRef> Out;
    for (unsigned K = 0; K < N; ++K) {
      unsigned Power = N - 1 - K;
      TermRef D = Ctx.mkURem(Ctx.mkUDiv(V, Ctx.bvConst(32, pow10(Power))),
                             Ctx.bvConst(32, 10));
      Out.push_back(
          Ctx.mkExtract(Ctx.mkAdd(D, Ctx.bvConst(32, 0x30)), 15, 0));
    }
    for (TermRef S : Suffix)
      Out.push_back(S);
    return Out;
  };
  // 10 digits cover the full 32-bit range.
  RulePtr R = Rule::base(Digits(10), Target, Update);
  for (unsigned N = 9; N >= 1; --N)
    R = Rule::ite(Ctx.mkUlt(V, Ctx.bvConst(32, pow10(N))),
                  Rule::base(Digits(N), Target, Update), std::move(R));
  return R;
}

} // namespace

Bst efc::lib::makeIntToDecimal(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(32), Ctx.bv(16), Ctx.unitTy(), 1, 0, Value::unit());
  A.setDelta(0, decimalRule(Ctx, A.inputVar(), {}, 0, Ctx.unitConst()));
  A.setFinalizer(0, Rule::base({}, 0, Ctx.unitConst()));
  return A;
}

Bst efc::lib::makeIntWrap(TermContext &Ctx, const std::string &Prefix,
                          const std::string &Suffix) {
  Bst A(Ctx, Ctx.bv(32), Ctx.bv(16), Ctx.unitTy(), 1, 0, Value::unit());
  std::vector<TermRef> Suf;
  for (char C : Suffix)
    Suf.push_back(Ctx.bvConst(16, uint64_t((unsigned char)C)));
  RulePtr Digits = decimalRule(Ctx, A.inputVar(), Suf, 0, Ctx.unitConst());
  if (!Prefix.empty()) {
    // Prepend the prefix chars to every leaf.
    std::function<RulePtr(const Rule *)> Prepend =
        [&](const Rule *R) -> RulePtr {
      switch (R->kind()) {
      case Rule::Kind::Undef:
        return Rule::undef();
      case Rule::Kind::Ite:
        return Rule::ite(R->cond(), Prepend(R->thenRule().get()),
                         Prepend(R->elseRule().get()));
      case Rule::Kind::Base: {
        std::vector<TermRef> Outs;
        for (char C : Prefix)
          Outs.push_back(Ctx.bvConst(16, uint64_t((unsigned char)C)));
        Outs.insert(Outs.end(), R->outputs().begin(), R->outputs().end());
        return Rule::base(std::move(Outs), R->target(), R->update());
      }
      }
      return Rule::undef();
    };
    Digits = Prepend(Digits.get());
  }
  A.setDelta(0, std::move(Digits));
  A.setFinalizer(0, Rule::base({}, 0, Ctx.unitConst()));
  return A;
}

Bst efc::lib::makeIntToDecimalLines(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(32), Ctx.bv(16), Ctx.unitTy(), 1, 0, Value::unit());
  A.setDelta(0, decimalRule(Ctx, A.inputVar(), {Ctx.bvConst(16, 0x0A)}, 0,
                            Ctx.unitConst()));
  A.setFinalizer(0, Rule::base({}, 0, Ctx.unitConst()));
  return A;
}

Bst efc::lib::makeLineCount(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(16), Ctx.bv(32), Ctx.bv(32), 1, 0, Value::bv(32, 0));
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  A.setDelta(0, Rule::ite(Ctx.mkEq(X, Ctx.bvConst(16, 0x0A)),
                          Rule::base({}, 0,
                                     Ctx.mkAdd(R, Ctx.bvConst(32, 1))),
                          Rule::base({}, 0, R)));
  A.setFinalizer(0, Rule::base({R}, 0, Ctx.bvConst(32, 0)));
  return A;
}
