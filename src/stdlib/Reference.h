//===- stdlib/Reference.h - Hand-written reference pipelines ----*- C++ -*-===//
///
/// \file
/// Straightforward hand-written C++ implementations of the pipeline stages.
/// They serve two roles: ground truth for the transducer test-suite, and
/// the "Hand-written" variant measured in the benchmark harness (the
/// paper's hand-written baselines use arrays as buffers between phases;
/// these do the same).
///
//===----------------------------------------------------------------------===//

#ifndef EFC_STDLIB_REFERENCE_H
#define EFC_STDLIB_REFERENCE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace efc::ref {

/// UTF-8 (1..4 bytes) to UTF-16; nullopt on malformed input.
std::optional<std::u16string> utf8Decode(std::string_view Bytes);

/// UTF-8 decode restricted to 1- and 2-byte sequences (the paper's §1
/// example); decoded units are returned as UTF-16 code units.
std::optional<std::u16string> utf8Decode2(std::string_view Bytes);

/// UTF-16 to UTF-8; nullopt on lone surrogates.
std::optional<std::string> utf8Encode(std::u16string_view Chars);

std::string base64Encode(std::string_view Bytes);
std::optional<std::string> base64Decode(std::string_view Text);

/// Whole-string decimal parse, as ToInt: nullopt on empty or non-digit.
std::optional<uint32_t> toInt(std::u16string_view Chars);

std::u16string intToDecimal(uint32_t V);

/// Surrogate repair (paper Figure 12, Rep).
std::u16string repair(std::u16string_view Chars);

/// Hand-fused AntiXssEncoder.HtmlEncode equivalent: repair + HTML encode
/// in a single pass (decimal escape style).
std::u16string antiXssHtmlEncode(std::u16string_view Chars);

/// HTML encode assuming already-repaired input (HtmlEncode alone).
std::u16string htmlEncode(std::u16string_view Chars);

/// Running average with the given window; one output per input once the
/// window is full.
std::vector<uint32_t> windowedAverage(const std::vector<uint32_t> &In,
                                      unsigned Window);

std::vector<uint32_t> deltas(const std::vector<uint32_t> &In);

} // namespace efc::ref

#endif // EFC_STDLIB_REFERENCE_H
