//===- stdlib/Values.h - Converting host data to term values ----*- C++ -*-===//
///
/// \file
/// Helpers that bridge host data (byte strings, UTF-16 strings, integer
/// vectors) and the Value lists consumed/produced by the BST interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_STDLIB_VALUES_H
#define EFC_STDLIB_VALUES_H

#include "term/Value.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace efc::lib {

inline std::vector<Value> valuesFromBytes(std::string_view Bytes) {
  std::vector<Value> Out;
  Out.reserve(Bytes.size());
  for (unsigned char C : Bytes)
    Out.push_back(Value::bv(8, C));
  return Out;
}

inline std::vector<Value> valuesFromChars(std::u16string_view Chars) {
  std::vector<Value> Out;
  Out.reserve(Chars.size());
  for (char16_t C : Chars)
    Out.push_back(Value::bv(16, uint64_t(C)));
  return Out;
}

/// ASCII text as UTF-16 code-unit values.
inline std::vector<Value> valuesFromAscii(std::string_view Text) {
  std::vector<Value> Out;
  Out.reserve(Text.size());
  for (unsigned char C : Text)
    Out.push_back(Value::bv(16, C));
  return Out;
}

inline std::vector<Value> valuesFromInts(const std::vector<uint32_t> &Ints) {
  std::vector<Value> Out;
  Out.reserve(Ints.size());
  for (uint32_t V : Ints)
    Out.push_back(Value::bv(32, V));
  return Out;
}

inline std::string bytesFromValues(const std::vector<Value> &Vals) {
  std::string Out;
  Out.reserve(Vals.size());
  for (const Value &V : Vals)
    Out.push_back(char(V.bits() & 0xFF));
  return Out;
}

inline std::u16string charsFromValues(const std::vector<Value> &Vals) {
  std::u16string Out;
  Out.reserve(Vals.size());
  for (const Value &V : Vals)
    Out.push_back(char16_t(V.bits() & 0xFFFF));
  return Out;
}

/// UTF-16 values rendered as ASCII (lossy above 0x7F; for tests on ASCII
/// outputs).
inline std::string asciiFromValues(const std::vector<Value> &Vals) {
  std::string Out;
  Out.reserve(Vals.size());
  for (const Value &V : Vals)
    Out.push_back(V.bits() <= 0x7F ? char(V.bits()) : '?');
  return Out;
}

inline std::vector<uint32_t> intsFromValues(const std::vector<Value> &Vals) {
  std::vector<uint32_t> Out;
  Out.reserve(Vals.size());
  for (const Value &V : Vals)
    Out.push_back(uint32_t(V.bits()));
  return Out;
}

} // namespace efc::lib

#endif // EFC_STDLIB_VALUES_H
