//===- stdlib/Reference.cpp -----------------------------------------------===//

#include "stdlib/Reference.h"

using namespace efc;

std::optional<std::u16string> ref::utf8Decode2(std::string_view Bytes) {
  std::u16string Out;
  Out.reserve(Bytes.size());
  for (size_t I = 0; I < Bytes.size();) {
    unsigned char B = Bytes[I];
    if (B <= 0x7F) {
      Out.push_back(char16_t(B));
      ++I;
    } else if (B >= 0xC2 && B <= 0xDF) {
      if (I + 1 >= Bytes.size())
        return std::nullopt;
      unsigned char C = Bytes[I + 1];
      if (C < 0x80 || C > 0xBF)
        return std::nullopt;
      Out.push_back(char16_t(((B & 0x3F) << 6) | (C & 0x3F)));
      I += 2;
    } else {
      return std::nullopt;
    }
  }
  return Out;
}

std::optional<std::u16string> ref::utf8Decode(std::string_view Bytes) {
  std::u16string Out;
  Out.reserve(Bytes.size());
  size_t I = 0;
  while (I < Bytes.size()) {
    unsigned char B = Bytes[I];
    uint32_t Cp = 0;
    size_t Len = 0;
    if (B <= 0x7F) {
      Cp = B;
      Len = 1;
    } else if (B >= 0xC2 && B <= 0xDF) {
      Cp = B & 0x1F;
      Len = 2;
    } else if (B >= 0xE0 && B <= 0xEF) {
      Cp = B & 0x0F;
      Len = 3;
    } else if (B >= 0xF0 && B <= 0xF4) {
      Cp = B & 0x07;
      Len = 4;
    } else {
      return std::nullopt;
    }
    if (I + Len > Bytes.size())
      return std::nullopt;
    for (size_t K = 1; K < Len; ++K) {
      unsigned char C = Bytes[I + K];
      if (C < 0x80 || C > 0xBF)
        return std::nullopt;
      Cp = (Cp << 6) | (C & 0x3F);
    }
    if (Cp <= 0xFFFF) {
      Out.push_back(char16_t(Cp));
    } else {
      uint32_t Off = Cp - 0x10000;
      Out.push_back(char16_t(0xD800 + (Off >> 10)));
      Out.push_back(char16_t(0xDC00 + (Off & 0x3FF)));
    }
    I += Len;
  }
  return Out;
}

std::optional<std::string> ref::utf8Encode(std::u16string_view Chars) {
  std::string Out;
  Out.reserve(Chars.size() * 2);
  for (size_t I = 0; I < Chars.size(); ++I) {
    uint32_t C = Chars[I];
    if (C <= 0x7F) {
      Out.push_back(char(C));
    } else if (C <= 0x7FF) {
      Out.push_back(char(0xC0 | (C >> 6)));
      Out.push_back(char(0x80 | (C & 0x3F)));
    } else if (C >= 0xD800 && C <= 0xDBFF) {
      if (I + 1 >= Chars.size())
        return std::nullopt;
      uint32_t L = Chars[I + 1];
      if (L < 0xDC00 || L > 0xDFFF)
        return std::nullopt;
      uint32_t Cp = 0x10000 + ((C & 0x3FF) << 10) + (L & 0x3FF);
      Out.push_back(char(0xF0 | (Cp >> 18)));
      Out.push_back(char(0x80 | ((Cp >> 12) & 0x3F)));
      Out.push_back(char(0x80 | ((Cp >> 6) & 0x3F)));
      Out.push_back(char(0x80 | (Cp & 0x3F)));
      ++I;
    } else if (C >= 0xDC00 && C <= 0xDFFF) {
      return std::nullopt;
    } else {
      Out.push_back(char(0xE0 | (C >> 12)));
      Out.push_back(char(0x80 | ((C >> 6) & 0x3F)));
      Out.push_back(char(0x80 | (C & 0x3F)));
    }
  }
  return Out;
}

static const char Base64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::string ref::base64Encode(std::string_view Bytes) {
  std::string Out;
  Out.reserve((Bytes.size() + 2) / 3 * 4);
  size_t I = 0;
  for (; I + 3 <= Bytes.size(); I += 3) {
    uint32_t V = (uint32_t(uint8_t(Bytes[I])) << 16) |
                 (uint32_t(uint8_t(Bytes[I + 1])) << 8) |
                 uint32_t(uint8_t(Bytes[I + 2]));
    Out.push_back(Base64Alphabet[(V >> 18) & 0x3F]);
    Out.push_back(Base64Alphabet[(V >> 12) & 0x3F]);
    Out.push_back(Base64Alphabet[(V >> 6) & 0x3F]);
    Out.push_back(Base64Alphabet[V & 0x3F]);
  }
  size_t Rest = Bytes.size() - I;
  if (Rest == 1) {
    uint32_t V = uint32_t(uint8_t(Bytes[I]));
    Out.push_back(Base64Alphabet[(V >> 2) & 0x3F]);
    Out.push_back(Base64Alphabet[(V & 0x3) << 4]);
    Out.push_back('=');
    Out.push_back('=');
  } else if (Rest == 2) {
    uint32_t V = (uint32_t(uint8_t(Bytes[I])) << 8) |
                 uint32_t(uint8_t(Bytes[I + 1]));
    Out.push_back(Base64Alphabet[(V >> 10) & 0x3F]);
    Out.push_back(Base64Alphabet[(V >> 4) & 0x3F]);
    Out.push_back(Base64Alphabet[(V & 0xF) << 2]);
    Out.push_back('=');
  }
  return Out;
}

std::optional<std::string> ref::base64Decode(std::string_view Text) {
  auto SymValue = [](char C) -> int {
    if (C >= 'A' && C <= 'Z')
      return C - 'A';
    if (C >= 'a' && C <= 'z')
      return C - 'a' + 26;
    if (C >= '0' && C <= '9')
      return C - '0' + 52;
    if (C == '+')
      return 62;
    if (C == '/')
      return 63;
    return -1;
  };
  std::string Out;
  Out.reserve(Text.size() / 4 * 3);
  uint32_t Acc = 0;
  int Pos = 0;
  size_t I = 0;
  for (; I < Text.size(); ++I) {
    char C = Text[I];
    if (C == '=')
      break;
    int V = SymValue(C);
    if (V < 0)
      return std::nullopt;
    Acc = (Acc << 6) | uint32_t(V);
    if (++Pos == 4) {
      Out.push_back(char((Acc >> 16) & 0xFF));
      Out.push_back(char((Acc >> 8) & 0xFF));
      Out.push_back(char(Acc & 0xFF));
      Acc = 0;
      Pos = 0;
    }
  }
  // Padding handling.
  size_t Pads = 0;
  for (; I < Text.size(); ++I) {
    if (Text[I] != '=')
      return std::nullopt;
    ++Pads;
  }
  if (Pos == 0 && Pads == 0)
    return Out;
  if (Pos == 2 && Pads == 2) {
    Out.push_back(char((Acc >> 4) & 0xFF));
    return Out;
  }
  if (Pos == 3 && Pads == 1) {
    Out.push_back(char((Acc >> 10) & 0xFF));
    Out.push_back(char((Acc >> 2) & 0xFF));
    return Out;
  }
  return std::nullopt;
}

std::optional<uint32_t> ref::toInt(std::u16string_view Chars) {
  if (Chars.empty())
    return std::nullopt;
  uint32_t V = 0;
  for (char16_t C : Chars) {
    if (C < u'0' || C > u'9')
      return std::nullopt;
    V = V * 10 + uint32_t(C - u'0');
  }
  return V;
}

std::u16string ref::intToDecimal(uint32_t V) {
  char Buf[16];
  int N = snprintf(Buf, sizeof(Buf), "%u", V);
  std::u16string Out;
  for (int I = 0; I < N; ++I)
    Out.push_back(char16_t(Buf[I]));
  return Out;
}

std::u16string ref::repair(std::u16string_view Chars) {
  std::u16string Out;
  Out.reserve(Chars.size());
  bool Pending = false;
  char16_t High = 0;
  for (char16_t C : Chars) {
    bool IsHigh = C >= 0xD800 && C <= 0xDBFF;
    bool IsLow = C >= 0xDC00 && C <= 0xDFFF;
    if (Pending) {
      if (IsLow) {
        Out.push_back(High);
        Out.push_back(C);
        Pending = false;
        continue;
      }
      Out.push_back(u'\xFFFD');
      Pending = false;
    }
    if (IsHigh) {
      Pending = true;
      High = C;
    } else if (IsLow) {
      Out.push_back(u'\xFFFD');
    } else {
      Out.push_back(C);
    }
  }
  if (Pending)
    Out.push_back(u'\xFFFD');
  return Out;
}

namespace {

bool isHtmlSafe(uint32_t C) {
  return C == 0x20 || C == 0x21 || C == 0x3D || (C >= 0x23 && C <= 0x25) ||
         (C >= 0x28 && C <= 0x3B) || (C >= 0x3F && C <= 0x7E) ||
         (C >= 0xA1 && C <= 0xAC) || (C >= 0xAE && C <= 0x36F);
}

void encodeCodePoint(uint32_t C, std::u16string &Out) {
  auto Append = [&Out](const char *S) {
    while (*S)
      Out.push_back(char16_t(*S++));
  };
  switch (C) {
  case 0x22:
    Append("&quot;");
    return;
  case 0x26:
    Append("&amp;");
    return;
  case 0x3C:
    Append("&lt;");
    return;
  case 0x3E:
    Append("&gt;");
    return;
  default: {
    char Buf[16];
    int N = snprintf(Buf, sizeof(Buf), "&#%u;", C);
    for (int I = 0; I < N; ++I)
      Out.push_back(char16_t(Buf[I]));
    return;
  }
  }
}

} // namespace

std::u16string ref::htmlEncode(std::u16string_view Chars) {
  std::u16string Out;
  Out.reserve(Chars.size());
  for (size_t I = 0; I < Chars.size(); ++I) {
    uint32_t C = Chars[I];
    if (isHtmlSafe(C)) {
      Out.push_back(char16_t(C));
      continue;
    }
    if (C >= 0xD800 && C <= 0xDBFF && I + 1 < Chars.size()) {
      uint32_t L = Chars[I + 1];
      uint32_t Cp = (((C & 0x3FF) + 0x40) << 10) | (L & 0x3FF);
      encodeCodePoint(Cp, Out);
      ++I;
      continue;
    }
    encodeCodePoint(C, Out);
  }
  return Out;
}

std::u16string ref::antiXssHtmlEncode(std::u16string_view Chars) {
  // Hand-fused: repair and encode in one pass, no intermediate buffer.
  std::u16string Out;
  Out.reserve(Chars.size());
  bool Pending = false;
  char16_t High = 0;
  auto EmitRepaired = [&Out](uint32_t C) {
    if (isHtmlSafe(C))
      Out.push_back(char16_t(C));
    else
      encodeCodePoint(C, Out);
  };
  for (char16_t C : Chars) {
    bool IsHigh = C >= 0xD800 && C <= 0xDBFF;
    bool IsLow = C >= 0xDC00 && C <= 0xDFFF;
    if (Pending) {
      Pending = false;
      if (IsLow) {
        uint32_t Cp = (((High & 0x3FF) + 0x40) << 10) | (C & 0x3FF);
        encodeCodePoint(Cp, Out);
        continue;
      }
      EmitRepaired(0xFFFD);
    }
    if (IsHigh) {
      Pending = true;
      High = C;
    } else if (IsLow) {
      EmitRepaired(0xFFFD);
    } else {
      EmitRepaired(C);
    }
  }
  if (Pending)
    EmitRepaired(0xFFFD);
  return Out;
}

std::vector<uint32_t> ref::windowedAverage(const std::vector<uint32_t> &In,
                                           unsigned Window) {
  std::vector<uint32_t> Out;
  if (In.size() < Window)
    return Out;
  uint32_t Sum = 0;
  for (unsigned I = 0; I < Window; ++I)
    Sum += In[I];
  Out.push_back(Sum / Window);
  for (size_t I = Window; I < In.size(); ++I) {
    Sum += In[I] - In[I - Window];
    Out.push_back(Sum / Window);
  }
  return Out;
}

std::vector<uint32_t> ref::deltas(const std::vector<uint32_t> &In) {
  std::vector<uint32_t> Out;
  for (size_t I = 1; I < In.size(); ++I)
    Out.push_back(In[I] - In[I - 1]);
  return Out;
}
