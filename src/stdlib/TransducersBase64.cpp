//===- stdlib/TransducersBase64.cpp - Base64 and int (de)serialization ----===//

#include "stdlib/Transducers.h"

#include <functional>

using namespace efc;

namespace {

/// Instantiates per-class branches for a Base64 symbol: calls \p MakeLeaf
/// with the 6-bit value term for each character class, producing a rule
/// that rejects non-symbol characters (unless \p Tail overrides).
RulePtr forEachBase64Class(
    TermContext &Ctx, TermRef X,
    const std::function<RulePtr(TermRef V)> &MakeLeaf, RulePtr Tail) {
  TermRef X32 = Ctx.mkZExt(X, 32);
  auto Sub = [&](uint64_t C) {
    return Ctx.mkSub(X32, Ctx.bvConst(32, C));
  };
  auto Add = [&](uint64_t C) {
    return Ctx.mkAdd(X32, Ctx.bvConst(32, C));
  };
  // 'A'-'Z' -> 0..25, 'a'-'z' -> 26..51, '0'-'9' -> 52..61, '+' -> 62,
  // '/' -> 63.
  RulePtr R = std::move(Tail);
  R = Rule::ite(Ctx.mkEq(X, Ctx.bvConst(8, '/')),
                MakeLeaf(Ctx.bvConst(32, 63)), std::move(R));
  R = Rule::ite(Ctx.mkEq(X, Ctx.bvConst(8, '+')),
                MakeLeaf(Ctx.bvConst(32, 62)), std::move(R));
  R = Rule::ite(Ctx.mkInRange(X, '0', '9'), MakeLeaf(Add(4)), std::move(R));
  R = Rule::ite(Ctx.mkInRange(X, 'a', 'z'), MakeLeaf(Sub(71)), std::move(R));
  R = Rule::ite(Ctx.mkInRange(X, 'A', 'Z'), MakeLeaf(Sub(65)), std::move(R));
  return R;
}

/// The Base64 alphabet character for a 6-bit value term, as an ite-term.
TermRef base64Char(TermContext &Ctx, TermRef V) {
  auto C = [&](uint64_t K) { return Ctx.bvConst(32, K); };
  TermRef R = Ctx.mkIte(Ctx.mkUlt(V, C(26)), Ctx.mkAdd(V, C('A')),
                        Ctx.mkIte(Ctx.mkUlt(V, C(52)), Ctx.mkAdd(V, C(71)),
                                  Ctx.mkIte(Ctx.mkUlt(V, C(62)),
                                            Ctx.mkSub(V, C(4)),
                                            Ctx.mkIte(Ctx.mkEq(V, C(62)),
                                                      C('+'), C('/')))));
  return Ctx.mkExtract(R, 7, 0);
}

} // namespace

Bst efc::lib::makeBase64Decode(TermContext &Ctx) {
  const Type *ByteTy = Ctx.bv(8);
  const Type *RegTy = Ctx.bv(32);
  // States: 0..3 position within the quad; 4 = after first '=' of "==";
  // 5 = terminal after padding.
  Bst A(Ctx, ByteTy, ByteTy, RegTy, 6, 0, Value::bv(32, 0));
  A.setStateName(4, "pad1");
  A.setStateName(5, "end");
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef Zero = Ctx.bvConst(32, 0);
  TermRef EqPad = Ctx.mkEq(X, Ctx.bvConst(8, '='));
  auto Byte = [&](TermRef T32) { return Ctx.mkExtract(T32, 7, 0); };

  A.setDelta(0, forEachBase64Class(
                    Ctx, X,
                    [&](TermRef V) { return Rule::base({}, 1, V); },
                    Rule::undef()));
  A.setDelta(1, forEachBase64Class(
                    Ctx, X,
                    [&](TermRef V) {
                      // out = (r << 2) | (v >> 4); keep low 4 bits of v.
                      return Rule::base(
                          {Byte(Ctx.mkBvOr(Ctx.mkShlC(R, 2),
                                           Ctx.mkLShrC(V, 4)))},
                          2, Ctx.mkBvAnd(V, Ctx.bvConst(32, 0xF)));
                    },
                    Rule::undef()));
  A.setDelta(2, forEachBase64Class(
                    Ctx, X,
                    [&](TermRef V) {
                      return Rule::base(
                          {Byte(Ctx.mkBvOr(Ctx.mkShlC(R, 4),
                                           Ctx.mkLShrC(V, 2)))},
                          3, Ctx.mkBvAnd(V, Ctx.bvConst(32, 0x3)));
                    },
                    Rule::ite(EqPad, Rule::base({}, 4, Zero),
                              Rule::undef())));
  A.setDelta(3, forEachBase64Class(
                    Ctx, X,
                    [&](TermRef V) {
                      return Rule::base({Byte(Ctx.mkBvOr(Ctx.mkShlC(R, 6),
                                                         V))},
                                        0, Zero);
                    },
                    Rule::ite(EqPad, Rule::base({}, 5, Zero),
                              Rule::undef())));
  A.setDelta(4, Rule::ite(EqPad, Rule::base({}, 5, Zero), Rule::undef()));
  // State 5 accepts nothing further.
  A.setFinalizer(0, Rule::base({}, 0, Zero));
  A.setFinalizer(5, Rule::base({}, 5, Zero));
  return A;
}

Bst efc::lib::makeBase64Encode(TermContext &Ctx) {
  const Type *ByteTy = Ctx.bv(8);
  const Type *RegTy = Ctx.bv(32);
  Bst A(Ctx, ByteTy, ByteTy, RegTy, 3, 0, Value::bv(32, 0));
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef X32 = Ctx.mkZExt(X, 32);
  TermRef Zero = Ctx.bvConst(32, 0);
  TermRef Pad = Ctx.bvConst(8, '=');

  A.setDelta(0, Rule::base({base64Char(Ctx, Ctx.mkLShrC(X32, 2))}, 1,
                           Ctx.mkShlC(Ctx.mkBvAnd(X32, Ctx.bvConst(32, 0x3)),
                                      4)));
  A.setDelta(1, Rule::base({base64Char(
                               Ctx, Ctx.mkBvOr(R, Ctx.mkLShrC(X32, 4)))},
                           2,
                           Ctx.mkShlC(Ctx.mkBvAnd(X32, Ctx.bvConst(32, 0xF)),
                                      2)));
  A.setDelta(2, Rule::base({base64Char(
                                Ctx, Ctx.mkBvOr(R, Ctx.mkLShrC(X32, 6))),
                            base64Char(Ctx,
                                       Ctx.mkBvAnd(X32,
                                                   Ctx.bvConst(32, 0x3F)))},
                           0, Zero));
  A.setFinalizer(0, Rule::base({}, 0, Zero));
  A.setFinalizer(1, Rule::base({base64Char(Ctx, R), Pad, Pad}, 1, Zero));
  A.setFinalizer(2, Rule::base({base64Char(Ctx, R), Pad}, 2, Zero));
  return A;
}

Bst efc::lib::makeBytesToInt32(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(32), Ctx.bv(32), 4, 0, Value::bv(32, 0));
  TermRef X32 = Ctx.mkZExt(A.inputVar(), 32);
  TermRef R = A.regVar();
  TermRef Zero = Ctx.bvConst(32, 0);
  A.setDelta(0, Rule::base({}, 1, X32));
  A.setDelta(1, Rule::base({}, 2, Ctx.mkBvOr(R, Ctx.mkShlC(X32, 8))));
  A.setDelta(2, Rule::base({}, 3, Ctx.mkBvOr(R, Ctx.mkShlC(X32, 16))));
  A.setDelta(3, Rule::base({Ctx.mkBvOr(R, Ctx.mkShlC(X32, 24))}, 0, Zero));
  A.setFinalizer(0, Rule::base({}, 0, Zero));
  return A;
}

Bst efc::lib::makeInt32ToBytes(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(32), Ctx.bv(8), Ctx.unitTy(), 1, 0, Value::unit());
  TermRef X = A.inputVar();
  A.setDelta(0, Rule::base({Ctx.mkExtract(X, 7, 0), Ctx.mkExtract(X, 15, 8),
                            Ctx.mkExtract(X, 23, 16),
                            Ctx.mkExtract(X, 31, 24)},
                           0, Ctx.unitConst()));
  A.setFinalizer(0, Rule::base({}, 0, Ctx.unitConst()));
  return A;
}
