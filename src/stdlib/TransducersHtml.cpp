//===- stdlib/TransducersHtml.cpp - Rep and HtmlEncode (paper §6.1) -------===//

#include "stdlib/Transducers.h"

using namespace efc;

namespace {

/// UTF-16 char-code constants for an ASCII string.
std::vector<TermRef> chars16(TermContext &Ctx, const char *S) {
  std::vector<TermRef> Out;
  for (; *S; ++S)
    Out.push_back(Ctx.bvConst(16, uint64_t(*S)));
  return Out;
}

/// The n least-significant decimal digits of \p C (a bv32 term) as UTF-16
/// chars — the paper's Digits(c, n).
std::vector<TermRef> digits(TermContext &Ctx, TermRef C, unsigned N) {
  std::vector<TermRef> Out;
  uint64_t Pow = 1;
  for (unsigned I = 1; I < N; ++I)
    Pow *= 10;
  for (unsigned I = 0; I < N; ++I) {
    TermRef D = Ctx.mkURem(Ctx.mkUDiv(C, Ctx.bvConst(32, Pow)),
                           Ctx.bvConst(32, 10));
    Out.push_back(Ctx.mkExtract(Ctx.mkAdd(D, Ctx.bvConst(32, 0x30)), 15, 0));
    Pow /= 10;
  }
  return Out;
}

/// The paper's Encode(c) rule pattern (Figure: §6.1): named entities for
/// the four HTML metacharacters, decimal escapes otherwise.
RulePtr encodeRule(TermContext &Ctx, TermRef C, unsigned Target,
                   TermRef Update) {
  auto Escape = [&](unsigned NumDigits) {
    std::vector<TermRef> Out = chars16(Ctx, "&#");
    for (TermRef D : digits(Ctx, C, NumDigits))
      Out.push_back(D);
    Out.push_back(Ctx.bvConst(16, ';'));
    return Rule::base(std::move(Out), Target, Update);
  };
  auto Entity = [&](const char *S) {
    return Rule::base(chars16(Ctx, S), Target, Update);
  };
  auto Lt = [&](uint64_t K, RulePtr T, RulePtr E) {
    return Rule::ite(Ctx.mkUlt(C, Ctx.bvConst(32, K)), std::move(T),
                     std::move(E));
  };
  auto EqC = [&](uint64_t K, RulePtr T, RulePtr E) {
    return Rule::ite(Ctx.mkEq(C, Ctx.bvConst(32, K)), std::move(T),
                     std::move(E));
  };
  // Innermost: 7 digits cover the full Unicode range.
  RulePtr R = Escape(7);
  R = Lt(1000000, Escape(6), std::move(R));
  R = Lt(100000, Escape(5), std::move(R));
  R = Lt(10000, Escape(4), std::move(R));
  R = Lt(1000, Escape(3), std::move(R));
  R = Lt(100, Escape(2), std::move(R));
  R = Lt(10, Escape(1), std::move(R));
  R = EqC(0x3E, Entity("&gt;"), std::move(R));
  R = EqC(0x3C, Entity("&lt;"), std::move(R));
  R = EqC(0x26, Entity("&amp;"), std::move(R));
  R = EqC(0x22, Entity("&quot;"), std::move(R));
  return R;
}

/// The paper's whitelist predicate φ_safe.
TermRef safePredicate(TermContext &Ctx, TermRef X) {
  auto In = [&](uint64_t Lo, uint64_t Hi) {
    return Ctx.mkInRange(X, Lo, Hi);
  };
  TermRef P = Ctx.mkOr(In(0x20, 0x21), Ctx.mkEq(X, Ctx.bvConst(16, 0x3D)));
  P = Ctx.mkOr(P, In(0x23, 0x25));
  P = Ctx.mkOr(P, In(0x28, 0x3B));
  P = Ctx.mkOr(P, In(0x3F, 0x7E));
  P = Ctx.mkOr(P, In(0xA1, 0xAC));
  P = Ctx.mkOr(P, In(0xAE, 0x36F));
  return P;
}

} // namespace

Bst efc::lib::makeRep(TermContext &Ctx) {
  const Type *CharTy = Ctx.bv(16);
  Bst A(Ctx, CharTy, CharTy, CharTy, 2, 0, Value::bv(16, 0));
  A.setStateName(0, "r0");
  A.setStateName(1, "r1");
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef Zero = Ctx.bvConst(16, 0);
  TermRef Fffd = Ctx.bvConst(16, 0xFFFD);
  TermRef HighSurr = Ctx.mkInRange(X, 0xD800, 0xDBFF);
  TermRef LowSurr = Ctx.mkInRange(X, 0xDC00, 0xDFFF);

  A.setDelta(0, Rule::ite(HighSurr, Rule::base({}, 1, X),
                          Rule::ite(LowSurr, Rule::base({Fffd}, 0, Zero),
                                    Rule::base({X}, 0, Zero))));
  A.setDelta(1, Rule::ite(LowSurr, Rule::base({R, X}, 0, Zero),
                          Rule::ite(HighSurr, Rule::base({Fffd}, 1, X),
                                    Rule::base({Fffd, X}, 0, Zero))));
  A.setFinalizer(0, Rule::base({}, 0, Zero));
  A.setFinalizer(1, Rule::base({Fffd}, 1, Zero));
  return A;
}

Bst efc::lib::makeHtmlEncode(TermContext &Ctx) {
  const Type *CharTy = Ctx.bv(16);
  const Type *RegTy = Ctx.bv(32);
  Bst A(Ctx, CharTy, CharTy, RegTy, 2, 0, Value::bv(32, 0));
  A.setStateName(0, "h0");
  A.setStateName(1, "h1");
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef X32 = Ctx.mkZExt(X, 32);
  TermRef Zero = Ctx.bvConst(32, 0);
  TermRef HighSurr = Ctx.mkInRange(X, 0xD800, 0xDBFF);
  TermRef LowSurr = Ctx.mkInRange(X, 0xDC00, 0xDFFF);

  // h0: whitelisted chars pass; a high surrogate is buffered; a lone low
  // surrogate is invalid input (HtmlEncode assumes repaired input); other
  // BMP chars are escaped via Encode(x).
  A.setDelta(0, Rule::ite(safePredicate(Ctx, X), Rule::base({X}, 0, Zero),
                          Rule::ite(HighSurr, Rule::base({}, 1, X32),
                                    Rule::ite(LowSurr, Rule::undef(),
                                              encodeRule(Ctx, X32, 0,
                                                         Zero)))));
  // h1: Encode(CP(r, x)) where CP(h, l) computes the code point.  The
  // unmasked form (h - 0xD7C0) equals (h & 0x3FF) + 0x40 exactly when h is
  // a high surrogate — which here is a *state-carried* constraint (h0's
  // guard on the previous input), so proving the low Encode branches
  // unreachable requires RBBE, as in the paper's §6.1 discussion.
  TermRef Cp = Ctx.mkBvOr(
      Ctx.mkShlC(Ctx.mkSub(R, Ctx.bvConst(32, 0xD7C0)), 10),
      Ctx.mkBvAnd(X32, Ctx.bvConst(32, 0x3FF)));
  A.setDelta(1, Rule::ite(LowSurr, encodeRule(Ctx, Cp, 0, Zero),
                          Rule::undef()));
  A.setFinalizer(0, Rule::base({}, 0, Zero));
  return A;
}
