//===- stdlib/TransducersAgg.cpp - Aggregators, delta, windowed average ---===//

#include "stdlib/Transducers.h"

using namespace efc;

namespace {

/// Common shape for max/min/sum: register (acc : bv32, defined : bool).
Bst makeFold(TermContext &Ctx,
             TermRef (*Combine)(TermContext &, TermRef Acc, TermRef X)) {
  const Type *IntTy = Ctx.bv(32);
  const Type *RegTy = Ctx.pairTy(IntTy, Ctx.boolTy());
  Bst A(Ctx, IntTy, IntTy, RegTy, 1, 0,
        Value::tuple({Value::bv(32, 0), Value::boolV(false)}));
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef Acc = Ctx.mkProj1(R);
  TermRef Defined = Ctx.mkProj2(R);
  A.setDelta(0, Rule::ite(Defined,
                          Rule::base({}, 0,
                                     Ctx.mkPair(Combine(Ctx, Acc, X),
                                                Ctx.trueConst())),
                          Rule::base({}, 0, Ctx.mkPair(X, Ctx.trueConst()))));
  A.setFinalizer(0, Rule::ite(Defined,
                              Rule::base({Acc}, 0,
                                         Ctx.constOf(RegTy,
                                                     A.initialRegister())),
                              Rule::undef()));
  return A;
}

} // namespace

Bst efc::lib::makeMax(TermContext &Ctx) {
  return makeFold(Ctx, +[](TermContext &C, TermRef Acc, TermRef X) {
    return C.mkIte(C.mkUlt(Acc, X), X, Acc);
  });
}

Bst efc::lib::makeMin(TermContext &Ctx) {
  return makeFold(Ctx, +[](TermContext &C, TermRef Acc, TermRef X) {
    return C.mkIte(C.mkUlt(X, Acc), X, Acc);
  });
}

Bst efc::lib::makeSum(TermContext &Ctx) {
  return makeFold(Ctx, +[](TermContext &C, TermRef Acc, TermRef X) {
    return C.mkAdd(Acc, X);
  });
}

Bst efc::lib::makeAverage(TermContext &Ctx) {
  const Type *IntTy = Ctx.bv(32);
  const Type *RegTy = Ctx.pairTy(IntTy, IntTy); // (sum, count)
  Bst A(Ctx, IntTy, IntTy, RegTy, 1, 0,
        Value::tuple({Value::bv(32, 0), Value::bv(32, 0)}));
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef Sum = Ctx.mkProj1(R);
  TermRef Cnt = Ctx.mkProj2(R);
  A.setDelta(0, Rule::base({}, 0,
                           Ctx.mkPair(Ctx.mkAdd(Sum, X),
                                      Ctx.mkAdd(Cnt, Ctx.bvConst(32, 1)))));
  A.setFinalizer(0, Rule::ite(Ctx.mkEq(Cnt, Ctx.bvConst(32, 0)),
                              Rule::undef(),
                              Rule::base({Ctx.mkUDiv(Sum, Cnt)}, 0,
                                         Ctx.constOf(RegTy,
                                                     A.initialRegister()))));
  return A;
}

Bst efc::lib::makeDelta(TermContext &Ctx) {
  const Type *IntTy = Ctx.bv(32);
  const Type *RegTy = Ctx.pairTy(IntTy, Ctx.boolTy()); // (prev, defined)
  Bst A(Ctx, IntTy, IntTy, RegTy, 1, 0,
        Value::tuple({Value::bv(32, 0), Value::boolV(false)}));
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef Prev = Ctx.mkProj1(R);
  TermRef Defined = Ctx.mkProj2(R);
  TermRef Next = Ctx.mkPair(X, Ctx.trueConst());
  A.setDelta(0, Rule::ite(Defined,
                          Rule::base({Ctx.mkSub(X, Prev)}, 0, Next),
                          Rule::base({}, 0, Next)));
  A.setFinalizer(0, Rule::base({}, 0,
                               Ctx.constOf(RegTy, A.initialRegister())));
  return A;
}

Bst efc::lib::makeWindowedAverage(TermContext &Ctx, unsigned Window) {
  assert(Window >= 2 && Window <= 32);
  const Type *IntTy = Ctx.bv(32);
  // Register: Window slots, running sum, position, full flag.
  std::vector<const Type *> Fields(Window, IntTy);
  Fields.push_back(IntTy); // sum
  Fields.push_back(IntTy); // pos
  Fields.push_back(Ctx.boolTy());
  const Type *RegTy = Ctx.tupleTy(Fields);
  std::vector<Value> Init(Window, Value::bv(32, 0));
  Init.push_back(Value::bv(32, 0));
  Init.push_back(Value::bv(32, 0));
  Init.push_back(Value::boolV(false));
  Bst A(Ctx, IntTy, IntTy, RegTy, 1, 0, Value::tuple(Init));

  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  const unsigned SumIdx = Window, PosIdx = Window + 1, FullIdx = Window + 2;
  TermRef Sum = Ctx.mkTupleGet(R, SumIdx);
  TermRef Pos = Ctx.mkTupleGet(R, PosIdx);
  TermRef Full = Ctx.mkTupleGet(R, FullIdx);

  // Oldest slot: selected by position.
  TermRef Oldest = Ctx.mkTupleGet(R, 0);
  for (unsigned I = 1; I < Window; ++I)
    Oldest = Ctx.mkIte(Ctx.mkEq(Pos, Ctx.bvConst(32, I)),
                       Ctx.mkTupleGet(R, I), Oldest);

  TermRef Evicted = Ctx.mkIte(Full, Oldest, Ctx.bvConst(32, 0));
  TermRef NewSum = Ctx.mkSub(Ctx.mkAdd(Sum, X), Evicted);
  TermRef AtWrap = Ctx.mkEq(Pos, Ctx.bvConst(32, Window - 1));
  TermRef NewPos = Ctx.mkIte(AtWrap, Ctx.bvConst(32, 0),
                             Ctx.mkAdd(Pos, Ctx.bvConst(32, 1)));
  TermRef NewFull = Ctx.mkOr(Full, AtWrap);

  std::vector<TermRef> NewFields;
  for (unsigned I = 0; I < Window; ++I)
    NewFields.push_back(Ctx.mkIte(Ctx.mkEq(Pos, Ctx.bvConst(32, I)), X,
                                  Ctx.mkTupleGet(R, I)));
  NewFields.push_back(NewSum);
  NewFields.push_back(NewPos);
  NewFields.push_back(NewFull);
  TermRef Update = Ctx.mkTuple(NewFields);

  // Emit the running average whenever the window is (or just became) full.
  TermRef Ready = Ctx.mkOr(Full, AtWrap);
  TermRef Avg = Ctx.mkUDiv(NewSum, Ctx.bvConst(32, Window));
  A.setDelta(0, Rule::ite(Ready, Rule::base({Avg}, 0, Update),
                          Rule::base({}, 0, Update)));
  A.setFinalizer(0, Rule::base({}, 0, R));
  return A;
}
