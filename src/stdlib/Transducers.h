//===- stdlib/Transducers.h - The paper's transducer zoo --------*- C++ -*-===//
///
/// \file
/// Ready-made BSTs for the comprehensions used throughout the paper:
/// UTF-8 decode/encode, Base64, integer parsing/formatting, HTML encoding
/// with surrogate repair, aggregators, deltas and windowed averages.
/// Each factory returns a well-formed transducer over the given context.
///
/// Conventions: bytes are bv8, UTF-16 code units ("char") are bv16, ints
/// are bv32.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_STDLIB_TRANSDUCERS_H
#define EFC_STDLIB_TRANSDUCERS_H

#include "bst/Bst.h"

namespace efc::lib {

/// Paper Figure 2(a)/4(a): UTF-8 decoder restricted to 1- and 2-byte
/// encodings.  bv8 -> bv16, register bv16.
Bst makeUtf8Decode2(TermContext &Ctx);

/// Full UTF-8 decoder (1..4 byte sequences) producing UTF-16 code units
/// (surrogate pairs for supplementary planes).  bv8 -> bv16.
Bst makeUtf8Decode(TermContext &Ctx);

/// UTF-16 to UTF-8 encoder.  bv16 -> bv8.  Assumes well-formed surrogate
/// pairs (rejects lone surrogates).
Bst makeUtf8Encode(TermContext &Ctx);

/// Paper Figure 2(b)/4(b): parses the whole input as one non-negative
/// decimal integer.  bv16 -> bv32.
Bst makeToInt(TermContext &Ctx);

/// Parses "true" / "false" (as UTF-16 chars) into a single boolean-as-int
/// output (1/0).  bv16 -> bv32.
Bst makeToBool(TermContext &Ctx);

/// Formats each input int as its decimal digits (as UTF-16 chars) followed
/// by '\n'.  bv32 -> bv16.  Handles values up to 10 digits.
Bst makeIntToDecimalLines(TermContext &Ctx);

/// Formats each input int as decimal digits with no separator; used as the
/// final single-value formatting stage.  bv32 -> bv16.
Bst makeIntToDecimal(TermContext &Ctx);

/// Formats each input int as `Prefix<digits>Suffix` (ASCII affixes), e.g.
/// the TPC-DI pipeline's "INSERT INTO account VALUES (<id>);\n".
/// bv32 -> bv16.
Bst makeIntWrap(TermContext &Ctx, const std::string &Prefix,
                const std::string &Suffix);

/// Base64 decoder: 4 symbol chars -> 3 bytes ('=' padding supported at
/// end of input).  bv8 -> bv8 (ASCII in, raw bytes out).
Bst makeBase64Decode(TermContext &Ctx);

/// Base64 encoder: 3 bytes -> 4 ASCII chars with '=' padding emitted by
/// the finalizer.  bv8 -> bv8.
Bst makeBase64Encode(TermContext &Ctx);

/// Assembles each 4 consecutive little-endian bytes into one int.
/// bv8 -> bv32.  Rejects trailing partial groups.
Bst makeBytesToInt32(TermContext &Ctx);

/// Serializes each int to 4 little-endian bytes.  bv32 -> bv8.
Bst makeInt32ToBytes(TermContext &Ctx);

/// Running average with the given window (paper's Base64-avg uses 10):
/// once the window is full, outputs the average of the last `Window`
/// inputs for every new input.  bv32 -> bv32.
Bst makeWindowedAverage(TermContext &Ctx, unsigned Window);

/// Deltas of successive inputs (x_i - x_{i-1}); nothing for the first.
/// bv32 -> bv32.
Bst makeDelta(TermContext &Ctx);

/// Aggregators over the whole stream, emitting one value at end of input.
/// bv32 -> bv32.
Bst makeMax(TermContext &Ctx);
Bst makeMin(TermContext &Ctx);
Bst makeSum(TermContext &Ctx);
/// Average = sum / count (count in register; emits 0 for empty input? no:
/// rejects empty input like the paper's Aggregate with no seed).
Bst makeAverage(TermContext &Ctx);

/// Counts '\n' characters and emits the count at end of input.
/// bv16 -> bv32.
Bst makeLineCount(TermContext &Ctx);

/// Paper Figure 12 (left): surrogate repair — replaces misplaced
/// surrogates with U+FFFD.  bv16 -> bv16.
Bst makeRep(TermContext &Ctx);

/// Paper Figure 12 (right): HTML encoder with decimal escapes, assuming
/// well-formed surrogate pairs.  bv16 -> bv16.
Bst makeHtmlEncode(TermContext &Ctx);

} // namespace efc::lib

#endif // EFC_STDLIB_TRANSDUCERS_H
