//===- fusion/Fusion.cpp - Fusion of BSTs (paper Figures 6 and 7) ---------===//

#include "fusion/Fusion.h"

#include "bst/Transform.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"
#include "support/Trace.h"
#include "term/Rewrite.h"

#include <cstdlib>
#include <cstdio>
#include <deque>
#include <map>

using namespace efc;

namespace {

/// One fusion run.  Holds the product-state map, the frontier, and the
/// solver whose assertion stack carries the branch context γ.
class Fuser {
public:
  Fuser(const Bst &A, const Bst &B, Solver &S, const FusionOptions &Opts,
        FusionStats &Stats)
      : A(A), B(B), Ctx(A.context()), S(S), Opts(Opts), Stats(Stats),
        FusedRegTy(Ctx.pairTy(A.registerType(), B.registerType())),
        Fused(Ctx, A.inputType(), B.outputType(), FusedRegTy,
              /*NumStates=*/1, /*Init=*/0,
              Value::tuple({A.initialRegister(), B.initialRegister()})) {
    assert(A.outputType() == B.inputType() &&
           "fusion requires o_A == iota_B");
    RegVar = Fused.regVar();
    // theta_A of Figure 6: A's register variable becomes pi1(r).
    ThetaA.set(A.regVar(), Ctx.mkProj1(RegVar));
    StateIds[{A.initialState(), B.initialState()}] = 0;
    Fused.setStateName(0, name(A.initialState(), B.initialState()));
    Frontier.push_back({A.initialState(), B.initialState()});
  }

  Bst run() {
    const bool Debug = std::getenv("EFC_FUSE_DEBUG") != nullptr;
    while (!Frontier.empty()) {
      auto [P, Q] = Frontier.front();
      Frontier.pop_front();
      unsigned Id = StateIds.at({P, Q});
      if (Debug)
        fprintf(stderr, "[fuse] state %u (%s) frontier=%zu checks=%llu\n",
                Id, Fused.stateName(Id).c_str(), Frontier.size(),
                (unsigned long long)S.stats().Checks);
      Fused.setDelta(Id, fuseDelta(A.delta(P).get(), Q));
      Fused.setFinalizer(Id, fuseFin(A.finalizer(P).get(), Q, Id));
    }
    Stats.ProductStates = Fused.numStates();
    return std::move(Fused);
  }

private:
  const Bst &A;
  const Bst &B;
  TermContext &Ctx;
  Solver &S;
  const FusionOptions &Opts;
  FusionStats &Stats;
  const Type *FusedRegTy;
  Bst Fused;
  TermRef RegVar = nullptr;
  Subst ThetaA;
  std::map<std::pair<unsigned, unsigned>, unsigned> StateIds;
  std::deque<std::pair<unsigned, unsigned>> Frontier;

  std::string name(unsigned P, unsigned Q) const {
    return A.stateName(P) + "." + B.stateName(Q);
  }

  /// True when the current solver context conjoined with \p Phi may be
  /// satisfiable (Unknown counts as satisfiable — conservative).
  bool maySat(TermRef Phi) {
    if (!Opts.SolverPruning)
      return !Phi->isFalse();
    ++Stats.SolverChecks;
    return S.checkWith(Phi) != SatResult::Unsat;
  }

  /// Builds a term expressing ⟦R1⟧(x, r) != ⟦R2⟧(x, r) (cf. FUSE line 7:
  /// the branching condition is redundant when this is unsat under γ).
  TermRef ruleNeq(const Rule *R1, const Rule *R2) {
    if (R1->isIte())
      return Ctx.mkIte(R1->cond(), ruleNeq(R1->thenRule().get(), R2),
                       ruleNeq(R1->elseRule().get(), R2));
    if (R2->isIte())
      return Ctx.mkIte(R2->cond(), ruleNeq(R1, R2->thenRule().get()),
                       ruleNeq(R1, R2->elseRule().get()));
    if (R1->isUndef() || R2->isUndef())
      return Ctx.boolConst(R1->isUndef() != R2->isUndef());
    if (R1->target() != R2->target() ||
        R1->outputs().size() != R2->outputs().size())
      return Ctx.trueConst();
    TermRef Neq = Ctx.mkNeq(R1->update(), R2->update());
    for (size_t I = 0; I < R1->outputs().size(); ++I)
      Neq = Ctx.mkOr(Neq, Ctx.mkNeq(R1->outputs()[I], R2->outputs()[I]));
    return Neq;
  }

  /// Merges two fused branches: drops the Ite when the branches are
  /// structurally equal or semantically equal under the context.  The
  /// semantic check builds an O(|R1| * |R2|) inequality formula, so it is
  /// only attempted for small subtrees — larger redundant pairs are
  /// almost always caught by the structural test anyway.
  RulePtr mergeBranches(TermRef Cond, RulePtr R1, RulePtr R2) {
    if (Rule::equal(R1, R2)) {
      ++Stats.ItesCollapsed;
      return R1;
    }
    ++MergeCalls;
    if (Opts.SolverPruning) {
      unsigned L1 = R1->countBaseLeaves() + 1;
      unsigned L2 = R2->countBaseLeaves() + 1;
      if (L1 * L2 <= 16) {
        TermRef Neq = ruleNeq(R1.get(), R2.get());
        ++Stats.SolverChecks;
        if (S.checkWith(Neq) == SatResult::Unsat) {
          ++Stats.ItesCollapsed;
          return R1;
        }
      }
    }
    return Rule::ite(Cond, std::move(R1), std::move(R2));
  }

  /// FUSE_delta of Figure 6.
  RulePtr fuseDelta(const Rule *R, unsigned Q) {
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return Rule::undef();
    case Rule::Kind::Ite: {
      TermRef Phi = substitute(Ctx, R->cond(), ThetaA);
      RulePtr R1 = Rule::undef(), R2 = Rule::undef();
      if (maySat(Phi)) {
        S.push();
        S.add(Phi);
        R1 = fuseDelta(R->thenRule().get(), Q);
        S.pop();
      } else {
        ++Stats.BranchesPruned;
      }
      TermRef NotPhi = Ctx.mkNot(Phi);
      if (maySat(NotPhi)) {
        S.push();
        S.add(NotPhi);
        R2 = fuseDelta(R->elseRule().get(), Q);
        S.pop();
      } else {
        ++Stats.BranchesPruned;
      }
      return mergeBranches(Phi, std::move(R1), std::move(R2));
    }
    case Rule::Kind::Base: {
      // Outputs of A (over x, pi1(r)) become the symbolic inputs of B.
      std::vector<TermRef> Vs;
      Vs.reserve(R->outputs().size());
      for (TermRef O : R->outputs())
        Vs.push_back(substitute(Ctx, O, ThetaA));
      TermRef G = substitute(Ctx, R->update(), ThetaA);
      return prod(R->target(), G,
                  runB(Vs, 0, Q, Ctx.mkProj2(RegVar)));
    }
    }
    return Rule::undef();
  }

  /// RUN of Figure 7: symbolically steps B over Vs[From..], starting in
  /// control state Q with register term Sr.  Leaves carry B's target state
  /// and B's register term.
  RulePtr runB(const std::vector<TermRef> &Vs, size_t From, unsigned Q,
               TermRef Sr) {
    if (From == Vs.size())
      return Rule::base({}, Q, Sr);
    return stepB(Vs, From, B.delta(Q).get(), Sr);
  }

  uint64_t StepCalls = 0;
  uint64_t MergeCalls = 0;

  /// STEP of Figure 7.
  RulePtr stepB(const std::vector<TermRef> &Vs, size_t From, const Rule *R,
                TermRef Sr) {
    if ((++StepCalls & 0xFFFFF) == 0 && std::getenv("EFC_FUSE_DEBUG"))
      fprintf(stderr, "[fuse] stepB calls=%llu merges=%llu terms=%zu\n",
              (unsigned long long)StepCalls,
              (unsigned long long)MergeCalls, Ctx.numTerms());
    Subst Theta;
    Theta.set(B.inputVar(), Vs[From]);
    Theta.set(B.regVar(), Sr);
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return Rule::undef();
    case Rule::Kind::Ite: {
      TermRef Phi = substitute(Ctx, R->cond(), Theta);
      RulePtr R1 = Rule::undef(), R2 = Rule::undef();
      if (maySat(Phi)) {
        S.push();
        S.add(Phi);
        R1 = stepB(Vs, From, R->thenRule().get(), Sr);
        S.pop();
      } else {
        ++Stats.BranchesPruned;
      }
      TermRef NotPhi = Ctx.mkNot(Phi);
      if (maySat(NotPhi)) {
        S.push();
        S.add(NotPhi);
        R2 = stepB(Vs, From, R->elseRule().get(), Sr);
        S.pop();
      } else {
        ++Stats.BranchesPruned;
      }
      return mergeBranches(Phi, std::move(R1), std::move(R2));
    }
    case Rule::Kind::Base: {
      std::vector<TermRef> Outs;
      Outs.reserve(R->outputs().size());
      for (TermRef O : R->outputs())
        Outs.push_back(substitute(Ctx, O, Theta));
      TermRef G = substitute(Ctx, R->update(), Theta);
      return concat(std::move(Outs), runB(Vs, From + 1, R->target(), G));
    }
    }
    return Rule::undef();
  }

  /// CONCAT of Figure 7.
  RulePtr concat(std::vector<TermRef> Outs, RulePtr R) {
    if (Outs.empty())
      return R;
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return Rule::undef();
    case Rule::Kind::Ite: {
      // Sequence explicitly: the else-branch argument must not move Outs
      // away before the then-branch copies it.
      RulePtr T = concat(Outs, R->thenRule());
      RulePtr E = concat(std::move(Outs), R->elseRule());
      return Rule::ite(R->cond(), std::move(T), std::move(E));
    }
    case Rule::Kind::Base: {
      std::vector<TermRef> Joined = std::move(Outs);
      Joined.insert(Joined.end(), R->outputs().begin(), R->outputs().end());
      return Rule::base(std::move(Joined), R->target(), R->update());
    }
    }
    return R;
  }

  /// PROD of Figure 6: pairs A's target state / register update with the
  /// B-side leaves produced by RUN.
  RulePtr prod(unsigned P, TermRef G, RulePtr R) {
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return Rule::undef();
    case Rule::Kind::Ite:
      return Rule::ite(R->cond(), prod(P, G, R->thenRule()),
                       prod(P, G, R->elseRule()));
    case Rule::Kind::Base: {
      unsigned Id = stateId(P, R->target());
      return Rule::base(R->outputs(), Id, Ctx.mkPair(G, R->update()));
    }
    }
    return R;
  }

  unsigned stateId(unsigned P, unsigned Q) {
    auto [It, Inserted] = StateIds.try_emplace({P, Q}, 0);
    if (Inserted) {
      It->second = Fused.addState(name(P, Q));
      Frontier.push_back({P, Q});
    }
    return It->second;
  }

  /// Finalizer fusion: runs A's finalizer outputs through B and then B's
  /// finalizer.  \p SelfId is used as the (semantically ignored) target of
  /// finalizer leaves.
  RulePtr fuseFin(const Rule *R, unsigned Q, unsigned SelfId) {
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return Rule::undef();
    case Rule::Kind::Ite: {
      TermRef Phi = substitute(Ctx, R->cond(), ThetaA);
      RulePtr R1 = Rule::undef(), R2 = Rule::undef();
      if (maySat(Phi)) {
        S.push();
        S.add(Phi);
        R1 = fuseFin(R->thenRule().get(), Q, SelfId);
        S.pop();
      } else {
        ++Stats.BranchesPruned;
      }
      TermRef NotPhi = Ctx.mkNot(Phi);
      if (maySat(NotPhi)) {
        S.push();
        S.add(NotPhi);
        R2 = fuseFin(R->elseRule().get(), Q, SelfId);
        S.pop();
      } else {
        ++Stats.BranchesPruned;
      }
      return mergeBranches(Phi, std::move(R1), std::move(R2));
    }
    case Rule::Kind::Base: {
      std::vector<TermRef> Vs;
      Vs.reserve(R->outputs().size());
      for (TermRef O : R->outputs())
        Vs.push_back(substitute(Ctx, O, ThetaA));
      return finTail(runB(Vs, 0, Q, Ctx.mkProj2(RegVar)), SelfId);
    }
    }
    return Rule::undef();
  }

  /// Rewrites RUN leaves (B state q', register term s') into applications
  /// of B's finalizer $B(q'){s'/r}.
  RulePtr finTail(RulePtr R, unsigned SelfId) {
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return Rule::undef();
    case Rule::Kind::Ite:
      return Rule::ite(R->cond(), finTail(R->thenRule(), SelfId),
                       finTail(R->elseRule(), SelfId));
    case Rule::Kind::Base:
      return finB(R->outputs(), B.finalizer(R->target()).get(), R->update(),
                  SelfId);
    }
    return R;
  }

  /// Applies B's finalizer rule under {Sr/r}, concatenating \p Prefix
  /// before its outputs.
  RulePtr finB(const std::vector<TermRef> &Prefix, const Rule *R, TermRef Sr,
               unsigned SelfId) {
    Subst Theta;
    Theta.set(B.regVar(), Sr);
    switch (R->kind()) {
    case Rule::Kind::Undef:
      return Rule::undef();
    case Rule::Kind::Ite: {
      TermRef Phi = substitute(Ctx, R->cond(), Theta);
      RulePtr R1 = Rule::undef(), R2 = Rule::undef();
      if (maySat(Phi)) {
        S.push();
        S.add(Phi);
        R1 = finB(Prefix, R->thenRule().get(), Sr, SelfId);
        S.pop();
      } else {
        ++Stats.BranchesPruned;
      }
      TermRef NotPhi = Ctx.mkNot(Phi);
      if (maySat(NotPhi)) {
        S.push();
        S.add(NotPhi);
        R2 = finB(Prefix, R->elseRule().get(), Sr, SelfId);
        S.pop();
      } else {
        ++Stats.BranchesPruned;
      }
      return mergeBranches(Phi, std::move(R1), std::move(R2));
    }
    case Rule::Kind::Base: {
      std::vector<TermRef> Outs = Prefix;
      for (TermRef O : R->outputs())
        Outs.push_back(substitute(Ctx, O, Theta));
      return Rule::base(std::move(Outs), SelfId, RegVar);
    }
    }
    return Rule::undef();
  }
};

} // namespace

Bst efc::fuse(const Bst &A, const Bst &B, Solver &S,
              const FusionOptions &Opts, FusionStats *Stats) {
  assert(&A.context() == &B.context() &&
         "fusion requires a shared term context");
  Stopwatch Timer;
  trace::Span Sp("fuse");
  FusionStats Local;
  FusionStats &St = Stats ? *Stats : Local;
  uint64_t ChecksBefore = S.stats().Checks;
  int64_t SavedBudget = S.conflictBudget();
  S.setConflictBudget(Opts.SolverBudget);
  Fuser F(A, B, S, Opts, St);
  Bst Result = F.run();
  S.setConflictBudget(SavedBudget);
  if (Opts.DeadEndElimination)
    Result = eliminateDeadEnds(Result);
  St.ProductStates = Result.numStates();
  St.SolverChecks = S.stats().Checks - ChecksBefore;
  St.Seconds = Timer.seconds();

  namespace mx = metrics;
  static mx::Counter &Runs = mx::Registry::instance().counter(
      "efc_fusion_runs_total", "fuse() invocations");
  static mx::Counter &States = mx::Registry::instance().counter(
      "efc_fusion_product_states_total", "Product states in fused results");
  static mx::Counter &Pruned = mx::Registry::instance().counter(
      "efc_fusion_branches_pruned_total",
      "Branches pruned unreachable during fusion");
  static mx::Counter &Ites = mx::Registry::instance().counter(
      "efc_fusion_ites_collapsed_total", "Guard ITEs collapsed during fusion");
  static mx::DoubleCounter &Secs = mx::Registry::instance().dcounter(
      "efc_fusion_seconds_total", "Wall time spent in fuse()");
  Runs.inc();
  States.inc(St.ProductStates);
  Pruned.inc(St.BranchesPruned);
  Ites.inc(St.ItesCollapsed);
  Secs.add(St.Seconds);

  Sp.note("states", (uint64_t)St.ProductStates);
  Sp.note("branches_pruned", (uint64_t)St.BranchesPruned);
  Sp.note("solver_checks", (uint64_t)St.SolverChecks);
  return Result;
}

Bst efc::fuse(const Bst &A, const Bst &B) {
  Solver S(A.context());
  return fuse(A, B, S);
}

Bst efc::fuseChain(const std::vector<const Bst *> &Stages, Solver &S,
                   const FusionOptions &Opts, FusionStats *Stats) {
  assert(!Stages.empty());
  FusionStats Acc;
  Bst Result = cloneBst(*Stages[0]);
  for (size_t I = 1; I < Stages.size(); ++I) {
    FusionStats Step;
    Result = fuse(Result, *Stages[I], S, Opts, &Step);
    Acc.ProductStates = Step.ProductStates;
    Acc.BranchesPruned += Step.BranchesPruned;
    Acc.ItesCollapsed += Step.ItesCollapsed;
    Acc.SolverChecks += Step.SolverChecks;
    Acc.Seconds += Step.Seconds;
  }
  if (Stats)
    *Stats = Acc;
  return Result;
}
