//===- fusion/Fusion.h - Fusion of BSTs (paper §3) --------------*- C++ -*-===//
///
/// \file
/// The incremental fusion algorithm of paper §3: builds A ⊗ B such that
/// ⟦A ⊗ B⟧ = ⟦B⟧ ∘ ⟦A⟧ by symbolically running B's rules over the output
/// lists in A's Base leaves (RUN/STEP of Figure 7), exploring only product
/// states reachable through satisfiable branches (FUSE/PROD of Figure 6).
/// The SMT solver is used incrementally: the accumulated branch context γ
/// lives in the solver's assertion stack via push/pop.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_FUSION_FUSION_H
#define EFC_FUSION_FUSION_H

#include "bst/Bst.h"
#include "solver/Solver.h"

#include <vector>

namespace efc {

/// Counters reported by one fusion run (feeds Figure 11 and the ablation
/// benchmarks).
struct FusionStats {
  unsigned ProductStates = 0;    ///< control states in the result
  unsigned BranchesPruned = 0;   ///< subtrees cut by unsat branch contexts
  unsigned ItesCollapsed = 0;    ///< redundant Ite nodes merged (R1 == R2)
  uint64_t SolverChecks = 0;     ///< satisfiability queries issued
  double Seconds = 0;            ///< wall-clock fusion time
};

struct FusionOptions {
  /// When false, branch feasibility is not checked with the solver (the
  /// §3.1 "brute force" construction); redundancy collapsing still uses
  /// structural equality only.
  bool SolverPruning = true;
  /// Remove states that cannot reach a final state afterwards.
  bool DeadEndElimination = true;
  /// Per-check CDCL conflict budget during fusion (Unknown keeps the
  /// branch, which is always sound).
  int64_t SolverBudget = 64;
};

/// Fuses \p A and \p B (requires `A.outputType() == B.inputType()`); the
/// result reads A's input type and writes B's output type, with register
/// type ρ_A × ρ_B.
Bst fuse(const Bst &A, const Bst &B, Solver &S,
         const FusionOptions &Opts = {}, FusionStats *Stats = nullptr);

/// Convenience overload that builds a solver on A's context.
Bst fuse(const Bst &A, const Bst &B);

/// Left fold of fuse over a pipeline of stages.
Bst fuseChain(const std::vector<const Bst *> &Stages, Solver &S,
              const FusionOptions &Opts = {}, FusionStats *Stats = nullptr);

} // namespace efc

#endif // EFC_FUSION_FUSION_H
