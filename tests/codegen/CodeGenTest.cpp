//===- tests/codegen/CodeGenTest.cpp - Generated C++ self-checks ----------===//
//
// Generates C++ for several transducers (including fused pipelines),
// compiles each unit with the host compiler and runs it; the generated
// main() checks embedded test vectors computed with the reference
// interpreter.
//
//===----------------------------------------------------------------------===//

#include "bst/Interp.h"
#include "codegen/CppCodeGen.h"
#include "codegen/NativeCompile.h"
#include "common/Oracle.h"
#include "common/RandomBst.h"
#include "fusion/Fusion.h"
#include "rbbe/Rbbe.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace efc;

namespace {

class CodeGenTest : public ::testing::Test {
protected:
  TermContext Ctx;

  static std::vector<uint64_t> rawOf(const std::vector<Value> &Vs) {
    std::vector<uint64_t> Out;
    for (const Value &V : Vs)
      Out.push_back(V.bits());
    return Out;
  }

  static CodeGenTestVector vectorFor(const Bst &A,
                                     const std::vector<Value> &In) {
    CodeGenTestVector V;
    V.Input = rawOf(In);
    auto Out = runBst(A, In);
    V.Accepts = Out.has_value();
    if (Out)
      V.Output = rawOf(*Out);
    return V;
  }

  /// Compiles and runs a generated unit; returns the exit code, or -1 if
  /// the compiler is unavailable.
  static int compileAndRun(const std::string &Source,
                           const std::string &Tag) {
    std::string Dir = ::testing::TempDir();
    std::string Src = Dir + "/efc_gen_" + Tag + ".cpp";
    std::string Bin = Dir + "/efc_gen_" + Tag;
    {
      std::ofstream F(Src);
      F << Source;
    }
    std::string Compile =
        "c++ -std=c++17 -O1 -o " + Bin + " " + Src + " 2>" + Bin + ".log";
    if (std::system(Compile.c_str()) != 0)
      return 100; // compile failure
    return std::system(Bin.c_str()) == 0 ? 0 : 1;
  }
};

TEST_F(CodeGenTest, GeneratedSourceHasStateBlocks) {
  Bst A = lib::makeToInt(Ctx);
  std::string S = generateCpp(A);
  EXPECT_NE(S.find("S0:"), std::string::npos);
  EXPECT_NE(S.find("S1:"), std::string::npos);
  EXPECT_NE(S.find("goto S1"), std::string::npos);
  EXPECT_NE(S.find("F1:"), std::string::npos);
  EXPECT_NE(S.find("return false"), std::string::npos);
}

TEST_F(CodeGenTest, ToIntCompilesAndChecks) {
  Bst A = lib::makeToInt(Ctx);
  CodeGenOptions Opts;
  Opts.EmitMain = true;
  std::vector<CodeGenTestVector> Vs = {
      vectorFor(A, lib::valuesFromAscii("123")),
      vectorFor(A, lib::valuesFromAscii("0")),
      vectorFor(A, lib::valuesFromAscii("12x")),
      vectorFor(A, lib::valuesFromAscii("")),
  };
  EXPECT_EQ(compileAndRun(generateCpp(A, Opts, Vs), "toint"), 0);
}

TEST_F(CodeGenTest, FusedPipelineCompilesAndChecks) {
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Bst Fmt = lib::makeIntToDecimal(Ctx);
  Bst Enc = lib::makeUtf8Encode(Ctx);
  Solver S(Ctx);
  Bst Front = eliminateUnreachableBranches(fuse(Dec, ToInt, S), S);
  Bst Clean = fuseChain({&Front, &Fmt, &Enc}, S);

  CodeGenOptions Opts;
  Opts.FunctionName = "fused_pipeline";
  Opts.EmitMain = true;
  std::vector<CodeGenTestVector> Vs = {
      vectorFor(Clean, lib::valuesFromBytes("00420")),
      vectorFor(Clean, lib::valuesFromBytes("9")),
      vectorFor(Clean, lib::valuesFromBytes("x1")),
      vectorFor(Clean, lib::valuesFromBytes("")),
  };
  EXPECT_EQ(compileAndRun(generateCpp(Clean, Opts, Vs), "fused"), 0);
}

TEST_F(CodeGenTest, HtmlEncodeCompilesAndChecks) {
  Bst Rep = lib::makeRep(Ctx);
  Bst Html = lib::makeHtmlEncode(Ctx);
  Solver S(Ctx);
  Bst Fused = fuse(Rep, Html, S);
  Bst Clean = eliminateUnreachableBranches(Fused, S);

  CodeGenOptions Opts;
  Opts.FunctionName = "html_encode";
  Opts.EmitMain = true;
  std::vector<CodeGenTestVector> Vs = {
      vectorFor(Clean, lib::valuesFromChars(u"a<b&c")),
      vectorFor(Clean, lib::valuesFromChars(u"\xD83D\xDE00")),
      vectorFor(Clean, lib::valuesFromChars(u"\xD83Dz")),
  };
  EXPECT_EQ(compileAndRun(generateCpp(Clean, Opts, Vs), "html"), 0);
}

TEST_F(CodeGenTest, RunAccelOnOffBothCompileAndCheck) {
  // The generated run-scan loops (codegen mirror of the VM's RunKernels)
  // on run-heavy vectors: long safe spans around escapes, a span cut by a
  // surrogate pair (out-of-byte-range island) and a homogeneous run — and
  // the RunAccel=false variant, which must emit no scan loops yet agree.
  Bst Rep = lib::makeRep(Ctx);
  Bst Html = lib::makeHtmlEncode(Ctx);
  Solver S(Ctx);
  Bst Clean = eliminateUnreachableBranches(fuse(Rep, Html, S), S);

  std::u16string Long(300, u'e');
  Long[120] = u'&';
  std::u16string Homog(257, u'x');
  std::u16string Wide = std::u16string(40, u'a') + u"\xD83D\xDE00" +
                        std::u16string(40, u'b');
  std::vector<CodeGenTestVector> Vs = {
      vectorFor(Clean, lib::valuesFromChars(Long)),
      vectorFor(Clean, lib::valuesFromChars(Homog)),
      vectorFor(Clean, lib::valuesFromChars(Wide)),
  };
  CodeGenOptions On;
  On.FunctionName = "html_runs";
  On.EmitMain = true;
  CodeGenOptions Off = On;
  Off.RunAccel = false;

  std::string SOn = generateCpp(Clean, On, Vs);
  std::string SOff = generateCpp(Clean, Off, Vs);
  EXPECT_NE(SOn.find("uint64_t ra"), std::string::npos)
      << "accel source must contain the 4-wide scan loop";
  EXPECT_EQ(SOff.find("uint64_t ra"), std::string::npos)
      << "RunAccel=false must emit no run scan loops";
  EXPECT_EQ(compileAndRun(SOn, "html_runs_on"), 0);
  EXPECT_EQ(compileAndRun(SOff, "html_runs_off"), 0);
}

TEST_F(CodeGenTest, WindowedAverageCompilesAndChecks) {
  // Exercises many register fields and staged writes.
  Bst A = lib::makeWindowedAverage(Ctx, 4);
  CodeGenOptions Opts;
  Opts.FunctionName = "wavg";
  Opts.EmitMain = true;
  std::vector<Value> In = lib::valuesFromInts({5, 9, 2, 8, 100, 3});
  std::vector<CodeGenTestVector> Vs = {vectorFor(A, In)};
  EXPECT_EQ(compileAndRun(generateCpp(A, Opts, Vs), "wavg"), 0);
}

TEST_F(CodeGenTest, NativeTransducerMatchesVm) {
  // Runtime-compiled shared object vs the VM on random inputs.
  Bst Rep = lib::makeRep(Ctx);
  Bst Html = lib::makeHtmlEncode(Ctx);
  Solver S(Ctx);
  Bst Fused = fuse(Rep, Html, S);

  std::string Err;
  auto Native = NativeTransducer::compile(Fused, "test_html", &Err);
  ASSERT_TRUE(Native.has_value()) << Err;
  auto Vm = CompiledTransducer::compile(Fused);
  ASSERT_TRUE(Vm.has_value());

  SplitMix64 Rng(77);
  for (int Iter = 0; Iter < 10; ++Iter) {
    std::vector<uint64_t> In;
    for (int I = 0; I < 64; ++I)
      In.push_back(Rng.below(0x10000));
    auto A = Native->run(In);
    auto B = Vm->run(In);
    ASSERT_EQ(A.has_value(), B.has_value()) << Iter;
    if (A)
      EXPECT_EQ(*A, *B) << Iter;
  }
}

TEST_F(CodeGenTest, NativeBackendAgreesWithOracleOnRandomPipelines) {
  // The full differential gate with the native .so path enabled: the
  // generated C++, compiled by the host compiler, must match the composed
  // reference interpretation on random pipelines (including register
  // tuples, which exercise the generated register-field writes).
  using namespace efc::testing;
  SplitMix64 Rng(0xC0DE);
  bool Probed = false;
  for (int T = 0; T < 3; ++T) {
    TermContext LocalCtx;
    RandomBstGen Gen(LocalCtx, Rng);
    GenOptions O;
    O.ElemWidth = T == 2 ? 8u : 4u;
    O.MaxRegTupleArity = 2;
    Oracle Or(Gen.makePipeline(2, 3, O), BK_All);
    if (!Probed) {
      Probed = true;
      if (!Or.nativeAvailable())
        GTEST_SKIP() << "host compiler unavailable: " << Or.nativeError();
    }
    ASSERT_TRUE(Or.nativeAvailable()) << Or.nativeError();
    for (int I = 0; I < 6; ++I) {
      auto In = Gen.randomInput(8, O.ElemWidth);
      auto D = Or.check(In);
      EXPECT_FALSE(D.has_value()) << "trial " << T << ": " << D->str();
    }
    for (unsigned K = 0; K < RandomBstGen::NumAdversarialKinds; ++K) {
      auto In = Gen.adversarialInput(K, 6, O.ElemWidth);
      auto D = Or.check(In);
      EXPECT_FALSE(D.has_value()) << "trial " << T << ": " << D->str();
    }
  }
}

TEST_F(CodeGenTest, NativeTransducerRejectsLikeInterpreter) {
  Bst A = lib::makeToInt(Ctx);
  std::string Err;
  auto Native = NativeTransducer::compile(A, "test_toint", &Err);
  ASSERT_TRUE(Native.has_value()) << Err;
  std::vector<uint64_t> Good = {'1', '2'};
  std::vector<uint64_t> Bad = {'1', 'x'};
  std::vector<uint64_t> Empty;
  EXPECT_TRUE(Native->run(Good).has_value());
  EXPECT_FALSE(Native->run(Bad).has_value());
  EXPECT_FALSE(Native->run(Empty).has_value());
  EXPECT_EQ((*Native->run(Good))[0], 12u);
}

} // namespace
