//===- tests/fusion/Section31Test.cpp - The §3.1 hex-encoder example ------===//
//
// Paper §3.1: an HTML encoder H emits `hex(x ÷ 32)` in a branch guarded
// by γ(x) = 0x100 <= x <= 0xFFF, where
//     hex(y) = if 0 <= y <= 9 then y + 48 else y + 55.
// In the double encoder H ⊗ H the composed guard γ(hex(x ÷ 32)) ∧ γ(x)
// is *unsatisfiable* (hex outputs are ASCII, below 0x100) and "requires
// advanced integer constraint reasoning to eliminate that branch".
// This test reproduces both the raw solver fact and the fusion-level
// pruning.
//
//===----------------------------------------------------------------------===//

#include "bst/Interp.h"
#include "fusion/Fusion.h"
#include "solver/Solver.h"
#include "stdlib/Values.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class Section31Test : public ::testing::Test {
protected:
  TermContext Ctx;

  TermRef gamma(TermRef X) { return Ctx.mkInRange(X, 0x100, 0xFFF); }

  TermRef hex(TermRef Y) {
    return Ctx.mkIte(Ctx.mkUle(Y, Ctx.bvConst(16, 9)),
                     Ctx.mkAdd(Y, Ctx.bvConst(16, 48)),
                     Ctx.mkAdd(Y, Ctx.bvConst(16, 55)));
  }

  /// A toy encoder in the §3.1 style: chars in γ are escaped into
  /// "\\x" + hex(x >> 5) + hex(x & 31); everything else passes through.
  Bst makeHexEncoder() {
    Bst H(Ctx, Ctx.bv(16), Ctx.bv(16), Ctx.unitTy(), 1, 0, Value::unit());
    TermRef X = H.inputVar();
    TermRef U = Ctx.unitConst();
    H.setDelta(
        0, Rule::ite(gamma(X),
                     Rule::base({Ctx.bvConst(16, '\\'),
                                 Ctx.bvConst(16, 'x'),
                                 hex(Ctx.mkLShrC(X, 5)),
                                 hex(Ctx.mkBvAnd(X, Ctx.bvConst(16, 31)))},
                                0, U),
                     Rule::base({X}, 0, U)));
    H.setFinalizer(0, Rule::base({}, 0, U));
    return H;
  }
};

TEST_F(Section31Test, ComposedGuardIsUnsatisfiable) {
  // The raw fact: γ(hex(x ÷ 32)) ∧ γ(x) is unsat.
  TermRef X = Ctx.var("x", Ctx.bv(16));
  Solver S(Ctx);
  S.add(gamma(X));
  S.add(gamma(hex(Ctx.mkUDiv(X, Ctx.bvConst(16, 32)))));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST_F(Section31Test, DoubleEncoderPrunesTheImpossibleBranch) {
  Bst H = makeHexEncoder();
  Solver S(Ctx);
  FusionStats Stats;
  Bst HH = fuse(H, H, S, {}, &Stats);
  EXPECT_TRUE(HH.wellFormed());
  // The escape-of-escape branches (hex output re-entering γ) are
  // infeasible; fusion must have cut branches.
  EXPECT_GT(Stats.BranchesPruned, 0u);

  // Semantics: double encoding behaves like encoding the encoded string.
  auto RunOne = [&](const Bst &A, std::u16string In) {
    auto Out = runBst(A, lib::valuesFromChars(In));
    EXPECT_TRUE(Out.has_value());
    return lib::charsFromValues(*Out);
  };
  for (std::u16string In :
       {std::u16string(u"plain"), std::u16string(u"a\x0234z"),
        std::u16string(u"\x0100\x0FFF")}) {
    std::u16string Once = RunOne(H, In);
    std::u16string Twice = RunOne(H, Once);
    EXPECT_EQ(RunOne(HH, In), Twice);
    // Idempotence on escape output: nothing in the escape is in γ, so
    // double-encoding equals single encoding here.
    EXPECT_EQ(Twice, Once);
  }
}

TEST_F(Section31Test, BruteForceVariantKeepsInfeasibleBranches) {
  // Without solver pruning the product still computes the same function
  // but carries the dead branches (the §3.1 "output-branch explosion").
  Bst H = makeHexEncoder();
  Solver S1(Ctx), S2(Ctx);
  FusionOptions NoPrune;
  NoPrune.SolverPruning = false;
  Bst Pruned = fuse(H, H, S1);
  Bst Brute = fuse(H, H, S2, NoPrune);
  EXPECT_LT(Pruned.countBranches(), Brute.countBranches());
  for (std::u16string In : {std::u16string(u"q\x0200"),
                            std::u16string(u"\x0FFF")}) {
    auto A = runBst(Pruned, lib::valuesFromChars(In));
    auto B = runBst(Brute, lib::valuesFromChars(In));
    ASSERT_TRUE(A.has_value() && B.has_value());
    EXPECT_EQ(*A, *B);
  }
}

} // namespace
