//===- tests/fusion/FusionTest.cpp - Fusion correctness (paper §3) --------===//
//
// The central property: ⟦A ⊗ B⟧ = ⟦B⟧ ∘ ⟦A⟧, checked on the paper's own
// example pairs and differentially on random inputs (including inputs that
// one or both stages reject).
//
//===----------------------------------------------------------------------===//

#include "bst/BstPrint.h"
#include "bst/Interp.h"
#include "fusion/Fusion.h"
#include "stdlib/Reference.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class FusionTest : public ::testing::Test {
protected:
  TermContext Ctx;

  /// Composition semantics: run A, then (if accepted) run B on A's output.
  static std::optional<std::vector<Value>>
  composed(const Bst &A, const Bst &B, std::span<const Value> In) {
    auto Mid = runBst(A, In);
    if (!Mid)
      return std::nullopt;
    return runBst(B, *Mid);
  }

  /// Asserts ⟦Fused⟧(In) == ⟦B⟧(⟦A⟧(In)) for one input.
  static void expectAgrees(const Bst &A, const Bst &B, const Bst &Fused,
                           std::span<const Value> In, const char *What) {
    auto Expected = composed(A, B, In);
    auto Got = runBst(Fused, In);
    ASSERT_EQ(Expected.has_value(), Got.has_value()) << What;
    if (Expected)
      EXPECT_EQ(*Expected, *Got) << What;
  }
};

TEST_F(FusionTest, PaperSection1Example) {
  // Utf8Decode ⊗ ToInt "ends up being identical to ToInt": 2 control
  // states, ASCII-digit-only guard, multibyte branches eliminated.
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Solver S(Ctx);
  FusionStats Stats;
  Bst Fused = fuse(Dec, ToInt, S, {}, &Stats);
  EXPECT_TRUE(Fused.wellFormed());

  // Fusion alone keeps the multibyte product states: their elimination
  // needs the state-carried register constraint (∃x. r = (x & 0x3F) << 6
  // for a lead byte x), which is RBBE's job (§4) — see RbbeTest for the
  // completion of the §1 story down to 2 states.
  EXPECT_EQ(Fused.numStates(), 4u) << bstToString(Fused);
  EXPECT_GT(Stats.SolverChecks, 0u);

  expectAgrees(Dec, ToInt, Fused, lib::valuesFromBytes("1234"), "digits");
  expectAgrees(Dec, ToInt, Fused, lib::valuesFromBytes(""), "empty");
  expectAgrees(Dec, ToInt, Fused, lib::valuesFromBytes("12a4"), "letter");
  expectAgrees(Dec, ToInt, Fused, lib::valuesFromBytes("\xC5\x93"),
               "multibyte");
}

TEST_F(FusionTest, FusedUtf8ToIntBehavesLikeToInt) {
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Bst Fused = fuse(Dec, ToInt);
  auto Out = runBst(Fused, lib::valuesFromBytes("40961"));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ((*Out)[0].bits(), 40961u);
}

TEST_F(FusionTest, DifferentialUtf8DecodeEncode) {
  // Full decoder fused with the encoder: identity on valid UTF-8.
  Bst Dec = lib::makeUtf8Decode(Ctx);
  Bst Enc = lib::makeUtf8Encode(Ctx);
  Solver S(Ctx);
  Bst Fused = fuse(Dec, Enc, S);
  EXPECT_TRUE(Fused.wellFormed());

  SplitMix64 Rng(11);
  for (int Iter = 0; Iter < 12; ++Iter) {
    // Random valid UTF-8 (reuse the reference encoder).
    std::u16string Chars;
    for (int I = 0; I < 16; ++I) {
      uint32_t Cp = uint32_t(Rng.below(Iter < 6 ? 0x800 : 0x110000));
      if (Cp >= 0xD800 && Cp <= 0xDFFF)
        Cp = 'x';
      if (Cp <= 0xFFFF) {
        Chars.push_back(char16_t(Cp));
      } else {
        uint32_t Off = Cp - 0x10000;
        Chars.push_back(char16_t(0xD800 + (Off >> 10)));
        Chars.push_back(char16_t(0xDC00 + (Off & 0x3FF)));
      }
    }
    std::string Bytes = *ref::utf8Encode(Chars);
    std::vector<Value> In = lib::valuesFromBytes(Bytes);
    expectAgrees(Dec, Enc, Fused, In, "utf8 round trip");
    auto Out = runBst(Fused, In);
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(lib::bytesFromValues(*Out), Bytes) << "identity";
  }
  // Invalid inputs reject in both.
  expectAgrees(Dec, Enc, Fused, lib::valuesFromBytes("\xFFzz"), "invalid");
  expectAgrees(Dec, Enc, Fused, lib::valuesFromBytes("\xC5"), "truncated");
}

TEST_F(FusionTest, DifferentialRandomBytesThroughBase64Chain) {
  // Base64Decode ⊗ BytesToInt32: random valid and invalid inputs.
  Bst B64 = lib::makeBase64Decode(Ctx);
  Bst ToI32 = lib::makeBytesToInt32(Ctx);
  Solver S(Ctx);
  Bst Fused = fuse(B64, ToI32, S);
  EXPECT_TRUE(Fused.wellFormed());

  SplitMix64 Rng(12);
  for (int Iter = 0; Iter < 15; ++Iter) {
    std::string Raw;
    size_t N = 4 * Rng.below(5); // multiples of 4 decode to full ints
    for (size_t I = 0; I < N; ++I)
      Raw.push_back(char(Rng.below(256)));
    std::vector<Value> In = lib::valuesFromBytes(ref::base64Encode(Raw));
    expectAgrees(B64, ToI32, Fused, In, "valid base64");
  }
  // Length not divisible by 4 after decode: B rejects.
  std::string Odd = ref::base64Encode("abcde");
  expectAgrees(B64, ToI32, Fused, lib::valuesFromBytes(Odd), "partial int");
  expectAgrees(B64, ToI32, Fused, lib::valuesFromBytes("!!"), "garbage");
}

TEST_F(FusionTest, MultiOutputProducerIntoStatefulConsumer) {
  // Int32ToBytes emits 4 outputs per input; Base64Encode consumes them
  // with loop-carried state: exercises RUN over longer symbolic lists.
  Bst ToB = lib::makeInt32ToBytes(Ctx);
  Bst B64 = lib::makeBase64Encode(Ctx);
  Solver S(Ctx);
  Bst Fused = fuse(ToB, B64, S);
  EXPECT_TRUE(Fused.wellFormed());
  SplitMix64 Rng(13);
  for (int Iter = 0; Iter < 10; ++Iter) {
    std::vector<uint32_t> Ints;
    for (size_t I = 0, N = Rng.below(5); I < N; ++I)
      Ints.push_back(uint32_t(Rng.next()));
    expectAgrees(ToB, B64, Fused, lib::valuesFromInts(Ints), "ints");
  }
}

TEST_F(FusionTest, FinalizerOutputsFlowThroughConsumer) {
  // Max emits its result in the finalizer; IntToDecimal formats it.  The
  // fused finalizer must run Max's output through IntToDecimal.
  Bst Max = lib::makeMax(Ctx);
  Bst Fmt = lib::makeIntToDecimal(Ctx);
  Solver S(Ctx);
  Bst Fused = fuse(Max, Fmt, S);
  EXPECT_TRUE(Fused.wellFormed());
  std::vector<uint32_t> In = {17, 170000, 3};
  auto Out = runBst(Fused, lib::valuesFromInts(In));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(lib::charsFromValues(*Out), u"170000");
  expectAgrees(Max, Fmt, Fused, lib::valuesFromInts(In), "max");
  expectAgrees(Max, Fmt, Fused, {}, "empty rejects");
}

TEST_F(FusionTest, ChainOfFourStages) {
  // ToInt-style end-to-end: bytes -> chars -> int (finalizer) -> decimal
  // chars -> bytes.
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Bst Fmt = lib::makeIntToDecimal(Ctx);
  Bst Enc = lib::makeUtf8Encode(Ctx);
  Solver S(Ctx);
  FusionStats Stats;
  Bst Fused = fuseChain({&Dec, &ToInt, &Fmt, &Enc}, S, {}, &Stats);
  EXPECT_TRUE(Fused.wellFormed());
  auto Out = runBst(Fused, lib::valuesFromBytes("0042"));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(lib::bytesFromValues(*Out), "42");
  EXPECT_GT(Stats.SolverChecks, 0u);
}

TEST_F(FusionTest, RepHtmlEncodeMatchesAntiXss) {
  // §6.1: Rep ⊗ HtmlEncode is equivalent to the hand-fused AntiXss
  // encoder.
  Bst Rep = lib::makeRep(Ctx);
  Bst Html = lib::makeHtmlEncode(Ctx);
  Solver S(Ctx);
  FusionStats Stats;
  Bst Fused = fuse(Rep, Html, S, {}, &Stats);
  EXPECT_TRUE(Fused.wellFormed());

  std::vector<std::u16string> Cases = {
      u"plain text",
      u"<a href=\"x?y&z\">",
      u"\x4E2D\x6587 caf\x00E9",
      u"emoji \xD83D\xDE00 pair",
      u"lone \xD83D high",
      u"lone \xDE00 low",
      u"\xD83D\xD83D\xDE00",
  };
  for (const auto &Sc : Cases) {
    auto Out = runBst(Fused, lib::valuesFromChars(Sc));
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(lib::charsFromValues(*Out), ref::antiXssHtmlEncode(Sc));
  }
}

TEST_F(FusionTest, SelfCompositionOfHtmlEncode) {
  // §3.1 discusses double-encoding: H ⊗ H has unsatisfiable branches
  // (e.g. the guard on an escape's '&' re-entering the encoder).  Verify
  // semantics of the double encoder.
  Bst Html = lib::makeHtmlEncode(Ctx);
  Solver S(Ctx);
  FusionStats Stats;
  Bst Fused = fuse(Html, Html, S, {}, &Stats);
  EXPECT_TRUE(Fused.wellFormed());
  std::u16string In = u"a<b";
  auto Out = runBst(Fused, lib::valuesFromChars(In));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(lib::charsFromValues(*Out), ref::htmlEncode(ref::htmlEncode(In)));
  EXPECT_GT(Stats.BranchesPruned, 0u)
      << "double-encoding must prune infeasible branches";
}

TEST_F(FusionTest, BruteForceOptionAgreesWithPruned) {
  // Ablation: disabling solver pruning must not change semantics.
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Solver S1(Ctx), S2(Ctx);
  FusionOptions NoPrune;
  NoPrune.SolverPruning = false;
  Bst Pruned = fuse(Dec, ToInt, S1);
  Bst Brute = fuse(Dec, ToInt, S2, NoPrune);
  EXPECT_GE(Brute.numStates(), Pruned.numStates());
  for (const char *In : {"123", "", "9", "12x", "\xC5\x93", "999999"}) {
    auto A = runBst(Pruned, lib::valuesFromBytes(In));
    auto B = runBst(Brute, lib::valuesFromBytes(In));
    ASSERT_EQ(A.has_value(), B.has_value()) << In;
    if (A)
      EXPECT_EQ(*A, *B) << In;
  }
}

TEST_F(FusionTest, FusedRegisterTypeIsPair) {
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Bst Fused = fuse(Dec, ToInt);
  ASSERT_TRUE(Fused.registerType()->isTuple());
  EXPECT_EQ(Fused.registerType()->arity(), 2u);
  EXPECT_EQ(Fused.registerType()->elems()[0], Dec.registerType());
  EXPECT_EQ(Fused.registerType()->elems()[1], ToInt.registerType());
}

TEST_F(FusionTest, StatsReportTime) {
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Solver S(Ctx);
  FusionStats Stats;
  fuse(Dec, ToInt, S, {}, &Stats);
  EXPECT_GE(Stats.Seconds, 0.0);
  EXPECT_GT(Stats.SolverChecks, 0u);
}

} // namespace
