//===- tests/fusion/FusionPropertyTest.cpp - Randomized fusion laws -------===//
//
// Property tests of Theorem 3.1 on *randomly generated* transducers:
//   * ⟦A ⊗ B⟧ = ⟦B⟧ ∘ ⟦A⟧ for random A, B
//   * associativity up to semantics: ⟦(A⊗B)⊗C⟧ = ⟦A⊗(B⊗C)⟧
//   * fusion with the identity transducer is semantically neutral
//
//===----------------------------------------------------------------------===//

#include "bst/Interp.h"
#include "common/FuzzSeed.h"
#include "common/RandomBst.h"
#include "fusion/Fusion.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

std::optional<std::vector<Value>> composed(const Bst &A, const Bst &B,
                                           std::span<const Value> In) {
  auto Mid = runBst(A, In);
  if (!Mid)
    return std::nullopt;
  return runBst(B, *Mid);
}

TEST(FusionProperty, FusedEqualsComposedOnRandomTransducers) {
  uint64_t Seed = efc::testing::fuzzSeed(0xF00D);
  SplitMix64 Rng(Seed);
  int Trials = 30;
  for (int T = 0; T < Trials; ++T) {
    TermContext Ctx;
    efc::testing::RandomBstGen Gen(Ctx, Rng);
    Bst A = Gen.make(1 + unsigned(Rng.below(3)));
    Bst B = Gen.make(1 + unsigned(Rng.below(3)));
    ASSERT_TRUE(A.wellFormed());
    ASSERT_TRUE(B.wellFormed());
    Solver S(Ctx);
    Bst F = fuse(A, B, S);
    ASSERT_TRUE(F.wellFormed()) << "trial " << T;

    for (int I = 0; I < 25; ++I) {
      std::vector<Value> In = Gen.randomInput(8);
      auto Expected = composed(A, B, In);
      auto Got = runBst(F, In);
      ASSERT_EQ(Expected.has_value(), Got.has_value())
          << "trial " << T << " input " << I << " "
          << efc::testing::seedNote(Seed);
      if (Expected)
        EXPECT_EQ(*Expected, *Got)
            << "trial " << T << " input " << I << " "
            << efc::testing::seedNote(Seed);
    }
  }
}

TEST(FusionProperty, AssociativityUpToSemantics) {
  uint64_t Seed = efc::testing::fuzzSeed(0xBEEF);
  SplitMix64 Rng(Seed);
  for (int T = 0; T < 12; ++T) {
    TermContext Ctx;
    efc::testing::RandomBstGen Gen(Ctx, Rng);
    Bst A = Gen.make(2);
    Bst B = Gen.make(2);
    Bst C = Gen.make(2);
    Solver S(Ctx);
    Bst Left = fuse(fuse(A, B, S), C, S);
    Bst Right = fuse(A, fuse(B, C, S), S);

    for (int I = 0; I < 20; ++I) {
      std::vector<Value> In = Gen.randomInput(6);
      auto L = runBst(Left, In);
      auto R = runBst(Right, In);
      ASSERT_EQ(L.has_value(), R.has_value())
          << "trial " << T << " " << efc::testing::seedNote(Seed);
      if (L)
        EXPECT_EQ(*L, *R) << "trial " << T << " "
                          << efc::testing::seedNote(Seed);
    }
  }
}

TEST(FusionProperty, IdentityIsNeutral) {
  uint64_t Seed = efc::testing::fuzzSeed(0xCAFE);
  SplitMix64 Rng(Seed);
  for (int T = 0; T < 10; ++T) {
    TermContext Ctx;
    efc::testing::RandomBstGen Gen(Ctx, Rng);
    Bst A = Gen.make(2);
    // Identity transducer over bv4.
    Bst Id(Ctx, Ctx.bv(4), Ctx.bv(4), Ctx.unitTy(), 1, 0, Value::unit());
    Id.setDelta(0, Rule::base({Id.inputVar()}, 0, Ctx.unitConst()));
    Id.setFinalizer(0, Rule::base({}, 0, Ctx.unitConst()));

    Solver S(Ctx);
    Bst Pre = fuse(Id, A, S);  // Id then A
    Bst Post = fuse(A, Id, S); // A then Id
    for (int I = 0; I < 20; ++I) {
      std::vector<Value> In = Gen.randomInput(6);
      auto Base = runBst(A, In);
      auto P1 = runBst(Pre, In);
      auto P2 = runBst(Post, In);
      ASSERT_EQ(Base.has_value(), P1.has_value())
          << efc::testing::seedNote(Seed);
      ASSERT_EQ(Base.has_value(), P2.has_value())
          << efc::testing::seedNote(Seed);
      if (Base) {
        EXPECT_EQ(*Base, *P1) << efc::testing::seedNote(Seed);
        EXPECT_EQ(*Base, *P2) << efc::testing::seedNote(Seed);
      }
    }
  }
}

TEST(FusionProperty, BruteForceAgreesWithPrunedOnRandomPairs) {
  uint64_t Seed = efc::testing::fuzzSeed(0xAAAA);
  SplitMix64 Rng(Seed);
  for (int T = 0; T < 10; ++T) {
    TermContext Ctx;
    efc::testing::RandomBstGen Gen(Ctx, Rng);
    Bst A = Gen.make(2);
    Bst B = Gen.make(2);
    Solver S1(Ctx), S2(Ctx);
    FusionOptions NoPrune;
    NoPrune.SolverPruning = false;
    Bst F1 = fuse(A, B, S1);
    Bst F2 = fuse(A, B, S2, NoPrune);
    for (int I = 0; I < 15; ++I) {
      std::vector<Value> In = Gen.randomInput(6);
      auto R1 = runBst(F1, In);
      auto R2 = runBst(F2, In);
      ASSERT_EQ(R1.has_value(), R2.has_value())
          << "trial " << T << " " << efc::testing::seedNote(Seed);
      if (R1)
        EXPECT_EQ(*R1, *R2) << efc::testing::seedNote(Seed);
    }
  }
}

} // namespace
