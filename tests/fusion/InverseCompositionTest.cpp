//===- tests/fusion/InverseCompositionTest.cpp - Codec round trips --------===//
//
// Fusing an encoder with its decoder must yield (a transducer equivalent
// to) the identity on the encoder's domain — a strong end-to-end check of
// fusion across stateful stages with mismatched chunk sizes (3 bytes vs 4
// chars for Base64, 1 char vs 1-4 bytes for UTF-8).
//
//===----------------------------------------------------------------------===//

#include "bst/Interp.h"
#include "fusion/Fusion.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class InverseCompositionTest : public ::testing::Test {
protected:
  TermContext Ctx;
};

TEST_F(InverseCompositionTest, Base64EncodeThenDecodeIsIdentity) {
  Bst Enc = lib::makeBase64Encode(Ctx);
  Bst Dec = lib::makeBase64Decode(Ctx);
  Solver S(Ctx);
  Bst RoundTrip = fuse(Enc, Dec, S);
  EXPECT_TRUE(RoundTrip.wellFormed());

  SplitMix64 Rng(91);
  for (int Iter = 0; Iter < 40; ++Iter) {
    std::string Raw;
    for (size_t I = 0, N = Rng.below(40); I < N; ++I)
      Raw.push_back(char(Rng.below(256)));
    auto Out = runBst(RoundTrip, lib::valuesFromBytes(Raw));
    ASSERT_TRUE(Out.has_value()) << "length " << Raw.size();
    EXPECT_EQ(lib::bytesFromValues(*Out), Raw) << "length " << Raw.size();
  }
}

TEST_F(InverseCompositionTest, Utf8EncodeThenDecodeIsIdentity) {
  Bst Enc = lib::makeUtf8Encode(Ctx);
  Bst Dec = lib::makeUtf8Decode(Ctx);
  Solver S(Ctx);
  Bst RoundTrip = fuse(Enc, Dec, S);

  SplitMix64 Rng(92);
  for (int Iter = 0; Iter < 30; ++Iter) {
    std::u16string Chars;
    for (size_t I = 0, N = Rng.below(24); I < N; ++I) {
      uint32_t Cp = uint32_t(Rng.below(0x110000));
      if (Cp >= 0xD800 && Cp <= 0xDFFF)
        Cp = 'q';
      if (Cp <= 0xFFFF) {
        Chars.push_back(char16_t(Cp));
      } else {
        uint32_t Off = Cp - 0x10000;
        Chars.push_back(char16_t(0xD800 + (Off >> 10)));
        Chars.push_back(char16_t(0xDC00 + (Off & 0x3FF)));
      }
    }
    auto Out = runBst(RoundTrip, lib::valuesFromChars(Chars));
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(lib::charsFromValues(*Out), Chars);
  }
}

TEST_F(InverseCompositionTest, Int32SerializationRoundTrip) {
  Bst Ser = lib::makeInt32ToBytes(Ctx);
  Bst De = lib::makeBytesToInt32(Ctx);
  Solver S(Ctx);
  Bst RoundTrip = fuse(Ser, De, S);
  // The paper's intuition: the fused transducer should be a single-state
  // identity-like machine (each int serializes to exactly 4 bytes which
  // reassemble immediately).
  EXPECT_EQ(RoundTrip.numStates(), 1u);

  SplitMix64 Rng(93);
  std::vector<uint32_t> Ints;
  for (int I = 0; I < 50; ++I)
    Ints.push_back(uint32_t(Rng.next()));
  auto Out = runBst(RoundTrip, lib::valuesFromInts(Ints));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(lib::intsFromValues(*Out), Ints);
}

TEST_F(InverseCompositionTest, DoubleBase64RoundTrip) {
  // Encode twice, decode twice: four-stage chain through two stateful
  // codecs in each direction.
  Bst Enc = lib::makeBase64Encode(Ctx);
  Bst Dec = lib::makeBase64Decode(Ctx);
  Solver S(Ctx);
  Bst Chain = fuseChain({&Enc, &Enc, &Dec, &Dec}, S);
  SplitMix64 Rng(94);
  for (int Iter = 0; Iter < 10; ++Iter) {
    std::string Raw;
    for (size_t I = 0, N = Rng.below(20); I < N; ++I)
      Raw.push_back(char(Rng.below(256)));
    auto Out = runBst(Chain, lib::valuesFromBytes(Raw));
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(lib::bytesFromValues(*Out), Raw);
  }
}

} // namespace
