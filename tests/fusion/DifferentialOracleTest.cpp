//===- tests/fusion/DifferentialOracleTest.cpp - Cross-backend oracle -----===//
//
// The differential oracle (tests/common/Oracle.h) is the correctness gate
// for every backend: these tests pin it down on random multi-stage
// pipelines across element widths and register shapes, exercise the
// stdlib pipeline end to end, and validate the greedy shrinker on
// synthetic failures.
//
//===----------------------------------------------------------------------===//

#include "common/FuzzSeed.h"
#include "common/Oracle.h"
#include "common/RandomBst.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace efc;
using namespace efc::testing;

namespace {

TEST(DifferentialOracle, AgreesOnRandomPipelines) {
  uint64_t Seed = fuzzSeed(0xD1FF);
  SplitMix64 Rng(Seed);
  for (int T = 0; T < 10; ++T) {
    TermContext Ctx;
    RandomBstGen Gen(Ctx, Rng);
    GenOptions O;
    std::vector<Bst> Stages =
        Gen.makePipeline(1 + unsigned(Rng.below(3)), 3, O);
    Oracle Or(std::move(Stages), BK_Default);
    for (unsigned K = 0; K < RandomBstGen::NumAdversarialKinds; ++K) {
      auto In = Gen.adversarialInput(K, 8, O.ElemWidth);
      auto D = Or.check(In);
      EXPECT_FALSE(D.has_value())
          << "trial " << T << " adversarial " << K << ": " << D->str()
          << " " << seedNote(Seed);
    }
    for (int I = 0; I < 8; ++I) {
      auto In = Gen.randomInput(8, O.ElemWidth);
      auto D = Or.check(In);
      EXPECT_FALSE(D.has_value())
          << "trial " << T << " input " << I << ": " << D->str() << " "
          << seedNote(Seed);
    }
  }
}

TEST(DifferentialOracle, AgreesAcrossWidthsAndRegisterTuples) {
  uint64_t Seed = fuzzSeed(0x5EED);
  SplitMix64 Rng(Seed);
  for (unsigned Width : {8u, 16u}) {
    for (int T = 0; T < 4; ++T) {
      TermContext Ctx;
      RandomBstGen Gen(Ctx, Rng);
      GenOptions O;
      O.ElemWidth = Width;
      O.MaxRegTupleArity = 3;
      Oracle Or(Gen.makePipeline(2, 3, O), BK_Default);
      for (int I = 0; I < 10; ++I) {
        auto In = Gen.randomInput(10, Width);
        auto D = Or.check(In);
        EXPECT_FALSE(D.has_value())
            << "width " << Width << " trial " << T << ": " << D->str()
            << " " << seedNote(Seed);
      }
    }
  }
}

TEST(DifferentialOracle, AgreesOnStdlibPipeline) {
  TermContext Ctx;
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeUtf8Decode2(Ctx));
  Stages.push_back(lib::makeToInt(Ctx));
  Stages.push_back(lib::makeIntToDecimal(Ctx));
  Stages.push_back(lib::makeUtf8Encode(Ctx));
  Oracle Or(std::move(Stages), BK_Default);
  for (const char *In : {"0", "123456789", "12x", "", "00420"}) {
    auto D = Or.check(lib::valuesFromBytes(In));
    EXPECT_FALSE(D.has_value()) << "input '" << In << "': " << D->str();
  }
}

TEST(DifferentialOracle, BackendMaskParsing) {
  EXPECT_EQ(parseBackends("vm"), unsigned(BK_Vm));
  EXPECT_EQ(parseBackends("vm,rbbe"), unsigned(BK_Vm | BK_Rbbe));
  EXPECT_EQ(parseBackends("default"), unsigned(BK_Default));
  EXPECT_EQ(parseBackends("all"), unsigned(BK_All));
  EXPECT_EQ(parseBackends("interp,fusedvm"), unsigned(BK_FusedVm));
  std::string Err;
  EXPECT_EQ(parseBackends("bogus", &Err), 0u);
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(backendNames(BK_Vm | BK_Native), "vm,native");
  EXPECT_EQ(parseBackends(backendNames(BK_Default)), unsigned(BK_Default));
}

TEST(DifferentialOracle, ShrinkerMinimizesSyntheticFailure) {
  // A synthetic "bug": the pair fails whenever the input contains an
  // element >= 8.  The shrinker should strip the pipeline down to one
  // trivial stage and the input down to a single witness element.
  SplitMix64 Rng(0xABCD);
  TermContext Ctx;
  RandomBstGen Gen(Ctx, Rng);
  GenOptions O;
  std::vector<Bst> Stages = Gen.makePipeline(3, 4, O);
  std::vector<Value> Input;
  for (uint64_t V : {3, 9, 1, 12, 7, 15, 2})
    Input.push_back(Value::bv(4, V));

  FailurePred Bug = [](const std::vector<Bst> &,
                       std::span<const Value> In)
      -> std::optional<Disagreement> {
    for (const Value &V : In)
      if (V.bits() >= 8)
        return Disagreement{"synthetic", "agree", "big element"};
    return std::nullopt;
  };

  ShrinkResult R = shrinkWith(Bug, Stages, Input);
  ASSERT_EQ(R.Input.size(), 1u);
  EXPECT_GE(R.Input[0].bits(), 8u);
  ASSERT_EQ(R.Stages.size(), 1u);
  EXPECT_EQ(R.Stages[0].numStates(), 1u);
  EXPECT_EQ(R.Stages[0].countBranches(), 0u) << "rules should prune to Undef";
  EXPECT_EQ(R.Failure.Backend, "synthetic");
  EXPECT_GT(R.Accepted, 0u);
}

TEST(DifferentialOracle, ShrinkerIsNoOpOnAgreeingPair) {
  SplitMix64 Rng(0x1234);
  TermContext Ctx;
  RandomBstGen Gen(Ctx, Rng);
  std::vector<Bst> Stages = Gen.makePipeline(2, 2, GenOptions());
  std::vector<Value> Input = Gen.randomInput(5, 4);
  size_t InLen = Input.size();
  // All backends agree, so the oracle-backed shrink has nothing to do.
  ShrinkResult R =
      shrink(std::move(Stages), std::move(Input), BK_Default, 100);
  EXPECT_EQ(R.Attempts, 0u);
  EXPECT_EQ(R.Accepted, 0u);
  EXPECT_EQ(R.Stages.size(), 2u);
  EXPECT_EQ(R.Input.size(), InLen);
}

TEST(DifferentialOracle, ShrinkerRespectsAttemptBudget) {
  SplitMix64 Rng(0x77);
  TermContext Ctx;
  RandomBstGen Gen(Ctx, Rng);
  std::vector<Bst> Stages = Gen.makePipeline(3, 4, GenOptions());
  std::vector<Value> Input = Gen.randomInput(12, 4);

  unsigned Calls = 0;
  FailurePred AlwaysFails = [&Calls](const std::vector<Bst> &,
                                     std::span<const Value>)
      -> std::optional<Disagreement> {
    ++Calls;
    return Disagreement{"synthetic", "x", "y"};
  };
  ShrinkResult R = shrinkWith(AlwaysFails, Stages, Input, /*MaxAttempts=*/25);
  EXPECT_LE(R.Attempts, 25u);
  // The everything-fails predicate lets every reduction through: the end
  // state is still within the budget and fully reduced or budget-capped.
  EXPECT_GE(Calls, R.Attempts);
}

} // namespace
