//===- tests/pipeline/PassManagerTest.cpp - Pass pipeline golden tests ----===//
//
// The pass-manager refactor (pipeline/PassManager.h) replaced three
// hand-wired copies of fuse → rbbe → compile with one registered pass
// list plus per-pass artifact caching.  These tests pin the contract:
//
//  * golden equivalence — every fig9/fig10/fig13 pipeline compiled
//    through the pass manager is byte-identical (classifier hash and VM
//    bytecode, instruction by instruction) to the pre-refactor inline
//    sequence,
//  * cache-key precision — an RBBE-budget-only respec re-keys `rbbe` but
//    *hits* the cached `fuse` artifact (the over-invalidation bugfix),
//  * cache transparency — a pass-cache hit yields the same artifacts as
//    the miss path that populated it,
//  * EFC_VERIFY_IR — a deliberately corrupted IR is caught between
//    passes with a diagnostic naming the offending pass.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "codegen/CppCodeGen.h"
#include "fusion/Fusion.h"
#include "pipeline/PassManager.h"
#include "rbbe/Rbbe.h"
#include "runtime/PipelineCache.h"
#include "solver/Solver.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace efc;

namespace {

//===----------------------------------------------------------------------===//
// Golden equivalence over the paper's pipelines
//===----------------------------------------------------------------------===//

struct GoldenCase {
  const char *Name;
  bench::BuiltPipeline (*Make)();
};

// All 17 evaluation pipelines (the efc-verify certification set).
const GoldenCase GoldenCases[] = {
    {"base64_avg", [] { return bench::makeBase64AvgPipeline(); }},
    {"csv_max", [] { return bench::makeCsvMaxPipeline(); }},
    {"base64_delta", [] { return bench::makeBase64DeltaPipeline(); }},
    {"utf8_lines", [] { return bench::makeUtf8LinesPipeline(); }},
    {"chsi_cancer", [] { return bench::makeChsiPipeline("cancer"); }},
    {"chsi_births", [] { return bench::makeChsiPipeline("births"); }},
    {"chsi_deaths", [] { return bench::makeChsiPipeline("deaths"); }},
    {"sbo_employees", [] { return bench::makeSboPipeline("employees"); }},
    {"sbo_receipts", [] { return bench::makeSboPipeline("receipts"); }},
    {"sbo_payroll", [] { return bench::makeSboPipeline("payroll"); }},
    {"cc_id", [] { return bench::makeCcIdPipeline(); }},
    {"tpcdi_sql", [] { return bench::makeTpcDiSqlPipeline(); }},
    {"pir_proteins", [] { return bench::makePirProteinsPipeline(); }},
    {"dblp_oldest", [] { return bench::makeDblpOldestPipeline(); }},
    {"mondial", [] { return bench::makeMondialPipeline(); }},
    {"utf8_toint", [] { return bench::makeUtf8ToIntPipeline(); }},
    {"html_encode", [] { return bench::makeHtmlEncodePipeline(); }},
};

void expectSameProgram(const VmProgram &Want, const VmProgram &Got,
                       const char *What, unsigned Q) {
  ASSERT_EQ(Want.Code.size(), Got.Code.size())
      << What << " program of state " << Q << " differs in length";
  for (size_t I = 0; I < Want.Code.size(); ++I) {
    const VmInstr &W = Want.Code[I], &G = Got.Code[I];
    // Field-by-field, not memcmp: VmInstr has padding bytes.
    EXPECT_EQ(unsigned(W.Op), unsigned(G.Op))
        << What << " q" << Q << " instr " << I;
    EXPECT_EQ(W.Width, G.Width) << What << " q" << Q << " instr " << I;
    EXPECT_EQ(W.Dst, G.Dst) << What << " q" << Q << " instr " << I;
    EXPECT_EQ(W.A, G.A) << What << " q" << Q << " instr " << I;
    EXPECT_EQ(W.B, G.B) << What << " q" << Q << " instr " << I;
    EXPECT_EQ(W.C, G.C) << What << " q" << Q << " instr " << I;
    EXPECT_EQ(W.Imm, G.Imm) << What << " q" << Q << " instr " << I;
  }
}

void expectSameTransducer(const CompiledTransducer &Want,
                          const CompiledTransducer &Got) {
  ASSERT_EQ(Want.numStates(), Got.numStates());
  for (unsigned Q = 0; Q < Want.numStates(); ++Q) {
    expectSameProgram(Want.deltaProgram(Q), Got.deltaProgram(Q), "delta", Q);
    expectSameProgram(Want.finalizerProgram(Q), Got.finalizerProgram(Q),
                      "finalizer", Q);
  }
}

class GoldenPipeline : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenPipeline, MatchesPreRefactorSequence) {
  const GoldenCase &C = GetParam();
  bench::BuiltPipeline P = C.Make();
  ASSERT_TRUE(P.Fused && P.CompiledFused);

  // The pre-refactor bench/common sequence, verbatim: one solver shared
  // across fusion and RBBE, the bench budgets, no pass manager.
  std::vector<const Bst *> Ptrs;
  for (const Bst &St : P.Stages)
    Ptrs.push_back(&St);
  Solver S(*P.Ctx);
  Bst Fused = fuseChain(Ptrs, S, {});
  RbbeOptions RO;
  RO.MaxSolverChecks = 1200;
  RO.MaxPredicateNodes = 8000;
  RO.ConflictBudget = 0;
  Bst Clean = eliminateUnreachableBranches(Fused, S, RO);

  EXPECT_EQ(classifierHash(Clean), classifierHash(*P.Fused))
      << C.Name << ": pass-manager IR diverged from the inline sequence";

  // The recorded pass rows must agree with the artifact they produced.
  ASSERT_FALSE(P.PassRuns.empty());
  for (const pipeline::PassRun &R : P.PassRuns)
    if (R.PassName == "rbbe")
      EXPECT_EQ(R.OutHash, classifierHash(*P.Fused));

  auto Want = CompiledTransducer::compile(Clean);
  ASSERT_TRUE(Want.has_value());
  expectSameTransducer(*Want, *P.CompiledFused);
}

INSTANTIATE_TEST_SUITE_P(Fig9Fig10Fig13, GoldenPipeline,
                         ::testing::ValuesIn(GoldenCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

//===----------------------------------------------------------------------===//
// Cache-key precision and cache transparency
//===----------------------------------------------------------------------===//

runtime::PipelineSpec maxSpec() {
  runtime::PipelineSpec Spec;
  Spec.Kind = runtime::PipelineSpec::Frontend::Regex;
  Spec.Pattern = "(?<v>[0-9]+)";
  Spec.Agg = "max";
  Spec.Format = "lines";
  return Spec;
}

// The over-invalidation bugfix: before the pass manager, PipelineCache
// keyed the *whole* build on the spec, so changing only the RBBE budget
// re-ran fusion from scratch.  Per-pass keys are (name, IR-entering
// hash, options-the-pass-reads hash): the budget re-keys `rbbe` alone.
TEST(PassCache, RbbeBudgetOnlyChangeReusesFusedArtifact) {
  pipeline::PassManager::resetCacheForTests();

  runtime::PipelineCache Cache(4);
  std::string Err;
  auto P1 = Cache.get(maxSpec(), false, &Err);
  ASSERT_TRUE(P1) << Err;

  runtime::PipelineSpec Respec = maxSpec();
  Respec.RbbeBudget = 64; // different spec key → full PipelineCache miss
  auto P2 = Cache.get(Respec, false, &Err);
  ASSERT_TRUE(P2) << Err;

  pipeline::PassCacheStats St = pipeline::PassManager::cacheStats();
  EXPECT_GE(St.hits("fuse"), 1u)
      << "an RBBE-budget-only respec must reuse the cached fusion result; "
      << St.str();
  EXPECT_EQ(St.hits("rbbe"), 0u)
      << "the budget participates in rbbe's options hash; " << St.str();
  EXPECT_EQ(St.misses("rbbe"), 2u) << St.str();

  // Both builds fused the same stages: the fused-IR-entering-rbbe hash
  // is the same fuse artifact, adopted from the cache the second time.
  bool SawHit = false;
  for (const pipeline::PassRun &R : P2->PassRuns)
    if (R.PassName == "fuse") {
      EXPECT_TRUE(R.CacheHit);
      SawHit = true;
    }
  EXPECT_TRUE(SawHit);
}

TEST(PassCache, HitPathYieldsIdenticalArtifacts) {
  pipeline::PassManager::resetCacheForTests();

  // Two independent PipelineCaches: the second build misses the spec
  // cache but hits the process-wide pass cache on every pass.
  std::string Err;
  runtime::PipelineCache Cold(4), Warm(4);
  auto P1 = Cold.get(maxSpec(), false, &Err);
  ASSERT_TRUE(P1) << Err;
  auto P2 = Warm.get(maxSpec(), false, &Err);
  ASSERT_TRUE(P2) << Err;

  pipeline::PassCacheStats St = pipeline::PassManager::cacheStats();
  EXPECT_GE(St.hits("fuse"), 1u) << St.str();
  EXPECT_GE(St.hits("vm_compile"), 1u) << St.str();

  EXPECT_EQ(classifierHash(*P1->Fused), classifierHash(*P2->Fused));
  ASSERT_TRUE(P1->Vm && P2->Vm);
  expectSameTransducer(*P1->Vm, *P2->Vm);
  // Adoption, not duplication: the hit path aliases the cached chain's
  // artifacts instead of re-deriving equal copies.
  EXPECT_EQ(P1->Fused.get(), P2->Fused.get());
}

TEST(PassCache, LookupsAreAccountedPerPass) {
  pipeline::PassManager::resetCacheForTests();
  runtime::PipelineCache Cold(4), Warm(4);
  std::string Err;
  runtime::PipelineSpec Spec = maxSpec();
  ASSERT_TRUE(Cold.get(Spec, false, &Err)) << Err;
  ASSERT_TRUE(Warm.get(Spec, false, &Err)) << Err;
  // Two builds, one fuse lookup each: the stats line CI prints must add
  // up (hits + misses == lookups), or the cache-rate telemetry is lying.
  pipeline::PassCacheStats St = pipeline::PassManager::cacheStats();
  EXPECT_EQ(St.hits("fuse") + St.misses("fuse"), 2u) << St.str();
  EXPECT_GT(St.Entries, 0u) << St.str();
}

//===----------------------------------------------------------------------===//
// EFC_VERIFY_IR: invariant violations are caught between passes
//===----------------------------------------------------------------------===//

/// A deliberately broken pass: replaces the IR with a copy whose state-0
/// transition targets a control state that does not exist.  The generic
/// between-pass verifier (wellFormed) must refuse it.
class CorruptTargetPass : public pipeline::Pass {
public:
  std::string_view name() const override { return "corrupt_target"; }
  bool cacheable() const override { return false; }
  uint64_t optionsHash(const pipeline::PipelineOptions &) const override {
    return 0;
  }
  bool run(pipeline::PassContext &PC, const pipeline::PipelineOptions &,
           std::string *, std::string *) const override {
    Bst Bad = *PC.Ir;
    Bad.setDelta(0, Rule::base({}, Bad.numStates() + 7, Bad.regVar()));
    PC.Ir = std::make_shared<Bst>(std::move(Bad));
    return true;
  }
  void save(const pipeline::PassContext &,
            pipeline::PassArtifacts &) const override {}
  void load(const pipeline::PassArtifacts &,
            pipeline::PassContext &) const override {}
};

EFC_REGISTER_PASS(CorruptTargetPass);

TEST(VerifyIr, CorruptedIrIsCaughtBetweenPasses) {
  TermContext Ctx;
  std::string Err;
  auto Stages = runtime::assembleStages(maxSpec(), Ctx, &Err);
  ASSERT_TRUE(Stages.has_value()) << Err;

  pipeline::PassContext PC; // raw mode: no chain, no caching
  for (const Bst &St : *Stages)
    PC.Stages.push_back(&St);

  pipeline::PipelineOptions PO;
  PO.VerifyIr = true;
  pipeline::PassManager PM({"fuse", "corrupt_target"});
  EXPECT_FALSE(PM.run(PC, PO, &Err));
  EXPECT_NE(Err.find("corrupt_target"), std::string::npos)
      << "diagnostic must name the offending pass: " << Err;
  EXPECT_NE(Err.find("target state out of range"), std::string::npos) << Err;

  // The gate is the *verifier*, not the pass: without EFC_VERIFY_IR the
  // corruption flows through (which is exactly why the CI leg exists).
  pipeline::PassContext PC2;
  for (const Bst &St : *Stages)
    PC2.Stages.push_back(&St);
  PO.VerifyIr = false;
  Err.clear();
  EXPECT_TRUE(PM.run(PC2, PO, &Err)) << Err;
}

TEST(VerifyIr, RealPipelineSatisfiesAllInvariants) {
  TermContext Ctx;
  std::string Err;
  auto Stages = runtime::assembleStages(maxSpec(), Ctx, &Err);
  ASSERT_TRUE(Stages.has_value()) << Err;

  pipeline::PassContext PC;
  for (const Bst &St : *Stages)
    PC.Stages.push_back(&St);

  pipeline::PipelineOptions PO;
  PO.VerifyIr = true;
  pipeline::PassManager PM(
      pipeline::PassManager::defaultPasses(/*Rbbe=*/true, /*Minimize=*/true));
  ASSERT_TRUE(PM.run(PC, PO, &Err)) << Err;
  ASSERT_TRUE(PC.Ir && PC.Vm && PC.Fast);
  EXPECT_EQ(PC.Runs.size(), PM.passes().size());
  for (const pipeline::PassRun &R : PC.Runs)
    EXPECT_FALSE(R.CacheHit) << R.PassName << ": raw mode must not cache";
}

TEST(PassManager, UnknownPassFailsWithRegistryListing) {
  pipeline::PassContext PC;
  pipeline::PipelineOptions PO;
  std::string Err;
  EXPECT_FALSE(pipeline::PassManager({"nope", "fuse"}).run(PC, PO, &Err));
  EXPECT_NE(Err.find("unknown pass 'nope'"), std::string::npos) << Err;
  EXPECT_NE(Err.find("fuse"), std::string::npos)
      << "diagnostic should list the registry: " << Err;
}

TEST(PassManager, DuplicateRegistrationIsRejected) {
  // The static registration above already claimed the name.
  EXPECT_FALSE(pipeline::PassRegistry::instance().add(
      std::make_unique<CorruptTargetPass>()));
}

} // namespace
