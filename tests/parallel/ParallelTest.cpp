//===- tests/parallel/ParallelTest.cpp - Data-parallel executor tests -----===//
///
/// \file
/// Correctness gate for src/parallel/: the parallel executor must be
/// byte-identical to the sequential fast path on every input and every
/// chunking, including adversarial boundaries (mid-run, mid-UTF-8
/// sequence, never-synchronizing positions) and mid-chunk rejection.
/// The ParallelFuzz suite doubles as a fuzz target (`ctest -L fuzz`),
/// honoring EFC_FUZZ_SEED like every randomized suite.
///
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "common/FuzzSeed.h"
#include "data/Datasets.h"
#include "parallel/Parallel.h"
#include "runtime/StreamSession.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

using namespace efc;
using namespace efc::parallel;
using efc::testing::fuzzSeed;
using efc::testing::seedNote;

namespace {

/// One pipeline prepared for differential parallel-vs-sequential runs.
struct Harness {
  bench::BuiltPipeline P;
  ParallelPlan Plan;

  explicit Harness(bench::BuiltPipeline BP)
      : P(std::move(BP)),
        Plan(ParallelPlan::build(*P.CompiledFused, *P.FastPlan)) {}

  std::optional<std::vector<uint64_t>> seq(std::span<const uint64_t> In) {
    return runFastPath(*P.FastPlan, *P.CompiledFused, In);
  }
  std::optional<std::vector<uint64_t>> par(std::span<const uint64_t> In,
                                           const ParallelOptions &PO,
                                           ParallelStats *PS = nullptr) {
    return runParallel(Plan, *P.FastPlan, *P.CompiledFused, In, PO, PS);
  }
};

Harness &csvHarness() {
  static Harness H(bench::makeCsvMaxPipeline());
  return H;
}

Harness &htmlHarness() {
  static Harness H(bench::makeHtmlEncodePipeline());
  return H;
}

/// Small-input-friendly knobs: split even a few-KB buffer.
ParallelOptions tinyOpts(unsigned Threads = 4) {
  ParallelOptions PO;
  PO.Threads = Threads;
  PO.MinChunkBytes = 256;
  PO.SyncWindow = 128;
  PO.MaxLanes = 8;
  PO.ConvergeBudget = 4096;
  return PO;
}

void expectSame(const std::optional<std::vector<uint64_t>> &Seq,
                const std::optional<std::vector<uint64_t>> &Par,
                const std::string &What) {
  ASSERT_EQ(Seq.has_value(), Par.has_value()) << What;
  if (Seq)
    EXPECT_EQ(*Seq, *Par) << What;
}

} // namespace

TEST(ParallelPlan, CsvPipelineIsEligible) {
  Harness &H = csvHarness();
  ASSERT_TRUE(H.Plan.eligible());
  // '\n' ends a CSV record: consuming it from any table state must land
  // in a small plausible-successor set, or chunking could never start a
  // speculative lane at a record boundary.
  std::span<const uint32_t> Tg = H.Plan.targetsAfter('\n');
  EXPECT_FALSE(Tg.empty());
  EXPECT_LE(Tg.size(), 8u);
}

TEST(ParallelExec, CsvMatchesSequentialAndSpeculates) {
  Harness &H = csvHarness();
  std::vector<uint64_t> In =
      bench::rawOfBytes(data::makeCsv(7, 64 << 10, 4, 2, 99999));
  ParallelStats PS;
  auto Par = H.par(In, tinyOpts(), &PS);
  expectSame(H.seq(In), Par, "CSV-max 64KB");
  EXPECT_GE(PS.ChunksPlanned, 2u);
  // The aggregating CSV pipeline is the speculation showcase: lanes must
  // actually replay, not fall back to sequential stitching.
  EXPECT_GE(PS.ChunksSpeculated, 1u);
  EXPECT_GT(PS.LanesStarted, 0u);
}

TEST(ParallelExec, HtmlEnglishMatchesSequential) {
  Harness &H = htmlHarness();
  std::vector<uint64_t> In =
      bench::rawOfBytes(data::makeEnglishText(11, 32 << 10));
  ParallelStats PS;
  expectSame(H.seq(In), H.par(In, tinyOpts(), &PS), "Rep+HtmlEncode 32KB");
  EXPECT_GE(PS.ChunksPlanned, 2u);
  EXPECT_GE(PS.ChunksSpeculated, 1u);
}

TEST(ParallelExec, WideElementsMatchSequential) {
  // UTF-16 code units with surrogates: most elements are >= 256, so the
  // per-byte tables never apply and lanes exercise the whole-program
  // footprint path (and poison-triggered sequential stitching).
  Harness &H = htmlHarness();
  std::vector<uint64_t> In =
      bench::rawOfChars(data::makeRandomUtf16(13, 8 << 10, true));
  ParallelOptions PO = tinyOpts();
  PO.ForcedBoundaries = {In.size() / 3, 2 * In.size() / 3};
  expectSame(H.seq(In), H.par(In, PO), "Rep+HtmlEncode wide elements");
}

TEST(ParallelBoundary, MidRunCuts) {
  // English prose drives long Copy runs under HtmlEncode; boundaries at
  // prime offsets land inside run-kernel spans, so speculation must
  // start lanes mid-run and the stitcher must still be byte-identical.
  Harness &H = htmlHarness();
  std::vector<uint64_t> In =
      bench::rawOfBytes(data::makeEnglishText(17, 16 << 10));
  ParallelOptions PO = tinyOpts();
  PO.ForcedBoundaries = {1009, 4001, 8053, 12007};
  expectSame(H.seq(In), H.par(In, PO), "mid-run forced cuts");
}

TEST(ParallelBoundary, MidUtf8Sequence) {
  // A boundary between the lead and continuation byte of a 2-byte UTF-8
  // sequence: the decoder is mid-character at the cut, so the boundary
  // byte's plausible-state set is the mid-sequence state (or the chunk
  // stitches sequentially) — either way output must match.
  std::string Text;
  for (int I = 0; I < 400; ++I)
    Text += "aa,bb,\xC3\xA9\xC3\xA9x,zz\n";
  Harness &H = csvHarness();
  std::vector<uint64_t> In = bench::rawOfBytes(Text);
  size_t Cut = 0;
  for (size_t I = In.size() / 2; I < In.size(); ++I)
    if (In[I] == 0xC3) {
      Cut = I + 1; // boundary right after the lead byte
      break;
    }
  ASSERT_GT(Cut, 0u);
  ParallelOptions PO = tinyOpts();
  PO.ForcedBoundaries = {In.size() / 4, Cut};
  expectSame(H.seq(In), H.par(In, PO), "mid-UTF-8 forced cut");
}

TEST(ParallelBoundary, NeverConvergingStitchesSequentially) {
  // MaxLanes = 0 declares every boundary unsyncable: no chunk may
  // speculate, and the executor must degrade to ordered sequential
  // stitching with identical output.
  Harness &H = csvHarness();
  std::vector<uint64_t> In =
      bench::rawOfBytes(data::makeCsv(23, 16 << 10, 4, 2, 999));
  ParallelOptions PO = tinyOpts();
  PO.MaxLanes = 0;
  PO.ForcedBoundaries = {In.size() / 3, 2 * In.size() / 3};
  ParallelStats PS;
  expectSame(H.seq(In), H.par(In, PO, &PS), "MaxLanes=0 sequential stitch");
  EXPECT_EQ(PS.ChunksSpeculated, 0u);
  EXPECT_EQ(PS.ChunksSequential, PS.ChunksPlanned);
}

TEST(ParallelExec, MidChunkRejection) {
  // 0xFF is never valid UTF-8: planted in the last chunk it must reject
  // the stream under both executors, and the parallel partial output
  // must match the sequential partial output.
  Harness &H = csvHarness();
  std::string Text = data::makeCsv(29, 8 << 10, 4, 2, 999);
  Text += "aa,bb,cc,dd\n";
  Text[Text.size() - 3] = char(0xFF);
  std::vector<uint64_t> In = bench::rawOfBytes(Text);
  auto Seq = H.seq(In);
  auto Par = H.par(In, tinyOpts());
  EXPECT_FALSE(Seq.has_value());
  EXPECT_FALSE(Par.has_value());

  // parallelFeed's partial output up to the rejection point must also
  // match the sequential cursor's.
  unsigned SState = H.P.CompiledFused->initialState();
  std::vector<uint64_t> SRegs(H.P.CompiledFused->initialRegs().begin(),
                              H.P.CompiledFused->initialRegs().end());
  std::vector<uint64_t> SOut;
  {
    FastPathCursor C(*H.P.FastPlan, *H.P.CompiledFused);
    EXPECT_FALSE(C.feed(In, SOut));
  }
  unsigned PState = H.P.CompiledFused->initialState();
  std::vector<uint64_t> PRegs = SRegs;
  std::vector<uint64_t> POut;
  EXPECT_FALSE(parallelFeed(H.Plan, *H.P.FastPlan, *H.P.CompiledFused,
                            PState, PRegs, In, POut, tinyOpts()));
  EXPECT_EQ(SOut, POut);
}

TEST(ParallelExec, StreamSessionLargeFeedUsesParallel) {
  Harness &H = csvHarness();
  std::string Text = data::makeCsv(31, 32 << 10, 4, 2, 99999);

  runtime::StreamSession Seq =
      runtime::StreamSession::overFast(*H.P.FastPlan, *H.P.CompiledFused);
  ASSERT_TRUE(Seq.feed(Text));
  ASSERT_TRUE(Seq.finish());
  std::string Want = Seq.takeOutput();

  runtime::StreamSession Par =
      runtime::StreamSession::overFast(*H.P.FastPlan, *H.P.CompiledFused);
  Par.enableParallel(H.Plan, 4, 1024);
  ASSERT_TRUE(Par.feed(Text));
  ASSERT_TRUE(Par.finish());
  EXPECT_EQ(Par.takeOutput(), Want);
  EXPECT_EQ(Par.parallelFeeds(), 1u);

  // A feed below the threshold stays on the sequential cursor.
  runtime::StreamSession Small =
      runtime::StreamSession::overFast(*H.P.FastPlan, *H.P.CompiledFused);
  Small.enableParallel(H.Plan, 4, size_t(Text.size()) + 1);
  ASSERT_TRUE(Small.feed(Text));
  ASSERT_TRUE(Small.finish());
  EXPECT_EQ(Small.takeOutput(), Want);
  EXPECT_EQ(Small.parallelFeeds(), 0u);
}

TEST(ParallelFuzz, RandomBoundariesMatchSequential) {
  const uint64_t Seed = fuzzSeed(0xefcda7a);
  std::mt19937_64 Rng(Seed);
  Harness &Csv = csvHarness();
  Harness &Html = htmlHarness();
  for (int It = 0; It < 24; ++It) {
    const bool UseCsv = (It & 1) == 0;
    Harness &H = UseCsv ? Csv : Html;
    std::string Text =
        UseCsv ? data::makeCsv(Rng(), 2048 + Rng() % 8192, 4, 2, 99999)
               : data::makeEnglishText(Rng(), 2048 + Rng() % 8192);
    std::vector<uint64_t> In = bench::rawOfBytes(Text);
    ParallelOptions PO = tinyOpts(unsigned(2 + Rng() % 4));
    size_t NB = 1 + Rng() % 5;
    for (size_t B = 0; B < NB; ++B)
      PO.ForcedBoundaries.push_back(1 + Rng() % (In.size() - 1));
    PO.MaxLanes = unsigned(Rng() % 9);          // 0 forces sequential
    PO.ConvergeBudget = 1 + Rng() % 4096;       // tiny budgets abandon
    auto Seq = H.seq(In);
    auto Par = H.par(In, PO);
    ASSERT_EQ(Seq.has_value(), Par.has_value())
        << "iter " << It << " " << seedNote(Seed);
    if (Seq)
      ASSERT_EQ(*Seq, *Par) << "iter " << It << " " << seedNote(Seed);
  }
}
