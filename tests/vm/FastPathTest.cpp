//===- tests/vm/FastPathTest.cpp - Byte-class dispatch fast path ----------===//
//
// Unit tests for vm/FastPath.h: classification (eligibility, equivalence
// classes, sentinel padding), plan construction (action kinds, fallback
// demotion), and the mixed-mode driver (out-of-range elements, chunk
// splits, rejection semantics) — always differentially against the plain
// bytecode VM, which is the reference the fast path must match
// byte-for-byte.
//
//===----------------------------------------------------------------------===//

#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"
#include "vm/FastPath.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class FastPathTest : public ::testing::Test {
protected:
  TermContext Ctx;

  static std::vector<uint64_t> rawOf(const std::vector<Value> &Vs) {
    std::vector<uint64_t> Out;
    Out.reserve(Vs.size());
    for (const Value &V : Vs)
      Out.push_back(V.bits());
    return Out;
  }

  /// Fast path and plain VM must agree exactly (output and rejection).
  void expectAgreesWithVm(const Bst &A, const std::vector<uint64_t> &In,
                          const char *What) {
    auto T = CompiledTransducer::compile(A);
    ASSERT_TRUE(T.has_value()) << What;
    FastPathPlan P = FastPathPlan::build(A, *T);
    auto Want = T->run(In);
    auto Got = runFastPath(P, *T, In);
    ASSERT_EQ(Want.has_value(), Got.has_value()) << What;
    if (Want)
      EXPECT_EQ(*Want, *Got) << What;
  }
};

/// 2 states over bv(8): state 0 echoes and jumps to 1 on 'a', else stays;
/// state 1 guards on the *register* — ineligible by construction.
Bst makeMixedEligibility(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 2, 0, Value::bv(8, 0));
  TermRef X = A.inputVar(), R = A.regVar();
  A.setDelta(0, Rule::ite(Ctx.mkEq(X, Ctx.bvConst(8, 'a')),
                          Rule::base({X}, 1, R), Rule::base({X}, 0, R)));
  A.setDelta(1, Rule::ite(Ctx.mkEq(R, Ctx.bvConst(8, 0)),
                          Rule::base({X}, 0, X), Rule::base({}, 1, R)));
  A.setFinalizer(0, Rule::base({}, 0, R));
  A.setFinalizer(1, Rule::base({}, 1, R));
  return A;
}

TEST_F(FastPathTest, ClassifyPartitionsBytesByLeaf) {
  Bst A = makeMixedEligibility(Ctx);
  ByteClassTable C = classifyDeltaByteClasses(A, 0);
  ASSERT_TRUE(C.Eligible);
  EXPECT_EQ(C.ValidBytes, 256u);
  ASSERT_EQ(C.numClasses(), 2u);
  // 'a' is alone in its class; every other byte shares the else-leaf.
  uint16_t ClassA = C.Class['a'];
  for (unsigned B = 0; B < 256; ++B)
    EXPECT_EQ(C.Class[B] == ClassA, B == 'a') << "byte " << B;

  ByteClassTable C1 = classifyDeltaByteClasses(A, 1);
  EXPECT_FALSE(C1.Eligible) << "register-reading guard must be ineligible";
}

TEST_F(FastPathTest, NarrowWidthPadsWithSentinel) {
  Bst A(Ctx, Ctx.bv(4), Ctx.bv(4), Ctx.bv(4), 1, 0, Value::bv(4, 0));
  TermRef X = A.inputVar();
  A.setDelta(0, Rule::ite(Ctx.mkUlt(X, Ctx.bvConst(4, 8)),
                          Rule::base({X}, 0, A.regVar()), Rule::undef()));
  A.setFinalizer(0, Rule::base({}, 0, A.regVar()));
  ByteClassTable C = classifyDeltaByteClasses(A, 0);
  ASSERT_TRUE(C.Eligible);
  EXPECT_EQ(C.ValidBytes, 16u);
  EXPECT_EQ(C.numClasses(), 2u); // accept-leaf and Undef
  for (unsigned B = 16; B < 256; ++B)
    EXPECT_EQ(C.Class[B], C.numClasses()) << "padding byte " << B;
}

TEST_F(FastPathTest, PlanCountsTableAndFallbackStates) {
  Bst A = makeMixedEligibility(Ctx);
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);
  EXPECT_EQ(P.numStates(), 2u);
  EXPECT_TRUE(P.stateHasTable(0));
  EXPECT_FALSE(P.stateHasTable(1));
  EXPECT_EQ(P.stats().TableStates, 1u);
  EXPECT_EQ(P.stats().FallbackStates, 1u);
  // State 0 emits the input itself: not constant-foldable per class (the
  // 'a' class is a singleton, so it *can* fold; the else class cannot),
  // so the plan must contain at least one Program or Const action.
  EXPECT_GT(P.stats().ConstActions + P.stats().ProgramActions, 0u);
}

TEST_F(FastPathTest, RejectActionLeavesStateObservable) {
  // bv(8), state 0: reject everything but 'x'.
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 1, 0, Value::bv(8, 0));
  TermRef X = A.inputVar();
  A.setDelta(0, Rule::ite(Ctx.mkEq(X, Ctx.bvConst(8, 'x')),
                          Rule::base({X}, 0, A.regVar()), Rule::undef()));
  A.setFinalizer(0, Rule::base({}, 0, A.regVar()));
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);

  FastPathCursor C(P, *T);
  std::vector<uint64_t> Out;
  EXPECT_TRUE(C.feed(uint64_t('x'), Out));
  unsigned Before = C.state();
  EXPECT_FALSE(C.feed(uint64_t('y'), Out));
  EXPECT_EQ(C.state(), Before) << "rejection must not advance the state";
  EXPECT_EQ(Out, std::vector<uint64_t>{uint64_t('x')});
}

TEST_F(FastPathTest, OutOfRangeElementsUseBytecode) {
  // bv(16) input: the table covers x < 256 only; elements above must take
  // the per-element bytecode fallback and still agree with the VM.
  Bst A(Ctx, Ctx.bv(16), Ctx.bv(16), Ctx.bv(16), 1, 0, Value::bv(16, 0));
  TermRef X = A.inputVar();
  A.setDelta(0, Rule::ite(Ctx.mkUlt(X, Ctx.bvConst(16, 128)),
                          Rule::base({X}, 0, A.regVar()),
                          Rule::base({X, X}, 0, A.regVar())));
  A.setFinalizer(0, Rule::base({}, 0, A.regVar()));

  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);
  EXPECT_TRUE(P.stateHasTable(0)) << "16-bit input is still eligible";

  std::vector<uint64_t> In = {'a', 0x1234, 0xFF, 0x100, 0xFFFF, 0, 255};
  expectAgreesWithVm(A, In, "mixed in/out of byte range");
}

TEST_F(FastPathTest, ChunkSplitsMatchOneShot) {
  Bst A = lib::makeToInt(Ctx);
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);

  std::vector<uint64_t> In;
  for (char C : std::string("31415"))
    In.push_back(uint64_t(C));
  auto Want = runFastPath(P, *T, In);
  ASSERT_TRUE(Want.has_value());

  for (size_t Cut = 0; Cut <= In.size(); ++Cut) {
    FastPathCursor C(P, *T);
    std::vector<uint64_t> Out;
    ASSERT_TRUE(C.feed(std::span<const uint64_t>(In).subspan(0, Cut), Out));
    ASSERT_TRUE(C.feed(std::span<const uint64_t>(In).subspan(Cut), Out));
    ASSERT_TRUE(C.finish(Out));
    EXPECT_EQ(Out, *Want) << "cut=" << Cut;
  }
}

TEST_F(FastPathTest, StdlibZooAgreesOnRandomInputs) {
  SplitMix64 Rng(47);
  struct Case {
    Bst A;
    unsigned InputWidth;
  };
  std::vector<Case> Cases;
  Cases.push_back({lib::makeUtf8Decode(Ctx), 8});
  Cases.push_back({lib::makeUtf8Decode2(Ctx), 8});
  Cases.push_back({lib::makeToInt(Ctx), 16});
  Cases.push_back({lib::makeBase64Decode(Ctx), 8});
  Cases.push_back({lib::makeBase64Encode(Ctx), 8});
  Cases.push_back({lib::makeHtmlEncode(Ctx), 16});
  Cases.push_back({lib::makeLineCount(Ctx), 16});
  Cases.push_back({lib::makeDelta(Ctx), 32});
  Cases.push_back({lib::makeWindowedAverage(Ctx, 4), 32});
  for (auto &C : Cases) {
    auto T = CompiledTransducer::compile(C.A);
    ASSERT_TRUE(T.has_value());
    FastPathPlan P = FastPathPlan::build(C.A, *T);
    for (int Iter = 0; Iter < 25; ++Iter) {
      std::vector<uint64_t> In;
      size_t N = Rng.below(32);
      for (size_t I = 0; I < N; ++I)
        In.push_back(Rng.below(4)
                         ? Rng.range(0x20, 0x7E)
                         : Rng.below(uint64_t(1)
                                     << std::min(C.InputWidth, 16u)));
      auto Want = T->run(In);
      auto Got = runFastPath(P, *T, In);
      ASSERT_EQ(Want.has_value(), Got.has_value()) << "iter " << Iter;
      if (Want)
        EXPECT_EQ(*Want, *Got) << "iter " << Iter;
    }
  }
}

//===----------------------------------------------------------------------===//
// Run acceleration (RunKernel classification, scanRunEnd, span resumption)
//===----------------------------------------------------------------------===//

/// bv(8), one state: silently consume 'a'..'z', echo everything else.
/// Two self-loop kernels: a 26-byte Skip and a 230-byte Copy.
Bst makeSkipLetters(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 1, 0, Value::bv(8, 0));
  TermRef X = A.inputVar(), R = A.regVar();
  A.setDelta(0, Rule::ite(Ctx.mkInRange(X, 'a', 'z'), Rule::base({}, 0, R),
                          Rule::base({X}, 0, R)));
  A.setFinalizer(0, Rule::base({}, 0, R));
  return A;
}

TEST_F(FastPathTest, RunKernelClassification) {
  Bst A = makeSkipLetters(Ctx);
  ByteClassTable C = classifyDeltaByteClasses(A, 0);
  ASSERT_TRUE(C.Eligible);
  std::vector<RunKernel> Ks = classifyRunKernels(A, 0, C);
  ASSERT_EQ(Ks.size(), 2u);
  const RunKernel *Skip = nullptr, *Copy = nullptr;
  for (const RunKernel &K : Ks) {
    if (K.K == RunKernel::Kind::Skip)
      Skip = &K;
    if (K.K == RunKernel::Kind::Copy)
      Copy = &K;
  }
  ASSERT_TRUE(Skip && Copy);
  EXPECT_EQ(Skip->Bytes, 26u);
  EXPECT_TRUE(Skip->covers('a'));
  EXPECT_TRUE(Skip->covers('z'));
  EXPECT_FALSE(Skip->covers('A'));
  EXPECT_TRUE(Skip->Emits.empty());
  EXPECT_TRUE(Skip->Writes.empty());
  EXPECT_EQ(Copy->Bytes, 230u);
  EXPECT_EQ(Copy->SingleEscape, -1) << "26 escapes, not a memchr mask";
  for (unsigned B = 0; B < 256; ++B)
    EXPECT_NE(Skip->covers(B), Copy->covers(B)) << "byte " << B;
}

TEST_F(FastPathTest, ConstantWriteSelfLoopIsARunKernel) {
  // Both branches self-loop and rewrite the register to the same constant
  // every element (the HtmlEncode shape).  The write is idempotent over a
  // span — no guard in a table state reads registers — so both classes
  // must still become kernels, and the non-escape side covers 255 bytes:
  // a single-escape (memchr-style) mask.
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 1, 0, Value::bv(8, 1));
  TermRef X = A.inputVar();
  TermRef Zero = Ctx.bvConst(8, 0);
  A.setDelta(0,
             Rule::ite(Ctx.mkEq(X, Ctx.bvConst(8, '&')),
                       Rule::base({Ctx.bvConst(8, 'X'), Ctx.bvConst(8, 'Y')},
                                  0, Zero),
                       Rule::base({X}, 0, Zero)));
  A.setFinalizer(0, Rule::base({A.regVar()}, 0, Zero));
  ByteClassTable C = classifyDeltaByteClasses(A, 0);
  ASSERT_TRUE(C.Eligible);
  std::vector<RunKernel> Ks = classifyRunKernels(A, 0, C);
  ASSERT_EQ(Ks.size(), 2u);
  const RunKernel *Copy = nullptr, *Const = nullptr;
  for (const RunKernel &K : Ks) {
    if (K.K == RunKernel::Kind::Copy)
      Copy = &K;
    if (K.K == RunKernel::Kind::ConstAppend)
      Const = &K;
  }
  ASSERT_TRUE(Copy && Const);
  EXPECT_EQ(Copy->Bytes, 255u);
  EXPECT_EQ(Copy->SingleEscape, '&');
  ASSERT_EQ(Copy->Writes.size(), 1u);
  EXPECT_EQ(Copy->Writes[0].second, 0u);
  EXPECT_EQ(Const->Bytes, 1u);
  EXPECT_EQ(Const->Emits, (std::vector<uint64_t>{'X', 'Y'}));

  // The finalizer reads the register, so the once-per-span write must be
  // observable: differential check over run-heavy inputs.
  std::vector<uint64_t> In(300, 'q');
  In[50] = '&';
  In[299] = '&';
  expectAgreesWithVm(A, In, "constant-write spans");
}

TEST_F(FastPathTest, NonConstantWriteSelfLoopIsNotAKernel) {
  // The self-loop update reads the register (r+1): a span cannot be
  // collapsed, so no kernel may cover those bytes.
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 1, 0, Value::bv(8, 0));
  TermRef R = A.regVar();
  A.setDelta(0, Rule::base({}, 0, Ctx.mkAdd(R, Ctx.bvConst(8, 1))));
  A.setFinalizer(0, Rule::base({R}, 0, R));
  ByteClassTable C = classifyDeltaByteClasses(A, 0);
  ASSERT_TRUE(C.Eligible);
  EXPECT_TRUE(classifyRunKernels(A, 0, C).empty());
}

TEST_F(FastPathTest, ScanRunEndStopsExactly) {
  RunKernel RK;
  RK.Mask = {~0ull, ~0ull, ~0ull, ~0ull};
  RK.Mask['z' >> 6] &= ~(1ull << ('z' & 63));
  RK.Bytes = 255;
  // Escape positions spanning the scalar head, SWAR/SSE2 body and tail.
  std::vector<uint64_t> Clean(100, 'a');
  for (size_t Esc : {size_t(0), size_t(1), size_t(7), size_t(8), size_t(15),
                     size_t(31), size_t(63), size_t(64), size_t(99)}) {
    std::vector<uint64_t> Buf = Clean;
    Buf[Esc] = 'z';
    RK.SingleEscape = 'z'; // memchr-style specialization
    EXPECT_EQ(scanRunEnd(Buf.data(), 0, Buf.size(), RK), Esc);
    RK.SingleEscape = -1; // general mask loop over the same set
    EXPECT_EQ(scanRunEnd(Buf.data(), 0, Buf.size(), RK), Esc);
    // Out-of-range values end the run even when their low byte is a
    // member ('a' | 0x100 must not be mistaken for 'a').
    Buf[Esc] = uint64_t('a') | 0x100;
    RK.SingleEscape = 'z';
    EXPECT_EQ(scanRunEnd(Buf.data(), 0, Buf.size(), RK), Esc);
    RK.SingleEscape = -1;
    EXPECT_EQ(scanRunEnd(Buf.data(), 0, Buf.size(), RK), Esc);
  }
  RK.SingleEscape = 'z';
  EXPECT_EQ(scanRunEnd(Clean.data(), 0, Clean.size(), RK), Clean.size());
  EXPECT_EQ(scanRunEnd(Clean.data(), 37, Clean.size(), RK), Clean.size());
  RK.SingleEscape = -1;
  EXPECT_EQ(scanRunEnd(Clean.data(), 37, Clean.size(), RK), Clean.size());
}

TEST_F(FastPathTest, RunSpansResumeAcrossChunkCuts) {
  // A 200-'a' skip run then one echoed byte; cut at every position.  The
  // kernel must resume mid-span with no state drift, and the counters
  // must account for every element (201 = the whole input is covered by
  // the Skip + Copy kernels).
  Bst A = makeSkipLetters(Ctx);
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);
  EXPECT_EQ(P.stats().AccelStates, 1u);

  std::vector<uint64_t> In(200, 'a');
  In.push_back('!');
  auto Want = T->run(In);
  ASSERT_TRUE(Want.has_value());
  for (size_t Cut = 0; Cut <= In.size(); ++Cut) {
    FastPathCursor C(P, *T);
    std::vector<uint64_t> Out;
    ASSERT_TRUE(C.feed(std::span<const uint64_t>(In).subspan(0, Cut), Out));
    ASSERT_TRUE(C.feed(std::span<const uint64_t>(In).subspan(Cut), Out));
    ASSERT_TRUE(C.finish(Out));
    EXPECT_EQ(Out, *Want) << "cut=" << Cut;
    EXPECT_EQ(C.runCounters().RunElements, 201u) << "cut=" << Cut;
    EXPECT_GE(C.runCounters().Runs, 2u) << "cut=" << Cut;
  }
}

TEST_F(FastPathTest, AccelOffPlanHasNoKernelsAndAgrees) {
  Bst A = makeSkipLetters(Ctx);
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathOptions Off;
  Off.RunAccel = false;
  FastPathPlan POn = FastPathPlan::build(A, *T);
  FastPathPlan POff = FastPathPlan::build(A, *T, Off);
  EXPECT_GT(POn.stats().SkipKernels + POn.stats().CopyKernels, 0u);
  EXPECT_EQ(POff.stats().AccelStates, 0u);
  EXPECT_EQ(POff.stats().AccelBytes, 0u);

  SplitMix64 Rng(11);
  for (int Iter = 0; Iter < 20; ++Iter) {
    std::vector<uint64_t> In;
    for (size_t I = 0, N = Rng.below(300); I < N; ++I)
      In.push_back(Rng.below(4) ? Rng.range('a', 'z') : Rng.below(256));
    auto Want = T->run(In);
    auto GotOn = runFastPath(POn, *T, In);
    auto GotOff = runFastPath(POff, *T, In);
    ASSERT_EQ(Want.has_value(), GotOn.has_value()) << "iter " << Iter;
    ASSERT_EQ(Want.has_value(), GotOff.has_value()) << "iter " << Iter;
    if (Want) {
      EXPECT_EQ(*Want, *GotOn) << "iter " << Iter;
      EXPECT_EQ(*Want, *GotOff) << "iter " << Iter;
    }
  }
}

TEST_F(FastPathTest, StdlibRunHeavyInputsAgree) {
  // Real stdlib transducers on inputs shaped like the fig13/fig9 hot
  // loops: long homogeneous runs, runs split by single escapes, and runs
  // ending at out-of-range elements.
  struct Case {
    Bst A;
    std::vector<uint64_t> In;
    const char *What;
  };
  std::vector<Case> Cases;
  {
    std::vector<uint64_t> In(500, 'e');
    In[250] = '<';
    Cases.push_back({lib::makeHtmlEncode(Ctx), In, "html run/escape/run"});
  }
  {
    std::vector<uint64_t> In(400, 'x');
    In.push_back('\n');
    Cases.push_back({lib::makeLineCount(Ctx), In, "linecount long line"});
  }
  {
    std::vector<uint64_t> In(300, 'a');
    In[100] = 0x2603; // out of byte range: per-element bytecode island
    Cases.push_back({lib::makeHtmlEncode(Ctx), In, "html wide element"});
  }
  {
    std::vector<uint64_t> In(256, 'A');
    Cases.push_back({lib::makeBase64Decode(Ctx), In, "base64 homogeneous"});
  }
  for (auto &C : Cases)
    expectAgreesWithVm(C.A, C.In, C.What);
}

TEST_F(FastPathTest, ExplainFastPathDescribesKernels) {
  Bst A = makeSkipLetters(Ctx);
  std::string Dump = explainFastPath(A);
  EXPECT_NE(Dump.find("state 0"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("skip"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("copy"), std::string::npos) << Dump;

  Bst B = makeMixedEligibility(Ctx);
  std::string Dump2 = explainFastPath(B);
  EXPECT_NE(Dump2.find("fallback"), std::string::npos) << Dump2;
}

TEST_F(FastPathTest, PlanSurvivesTransducerMove) {
  // The plan is plain data; moving the compiled transducer (as pipeline
  // containers do) must not invalidate it.
  Bst A = lib::makeToInt(Ctx);
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);
  CompiledTransducer Moved = std::move(*T);
  std::vector<uint64_t> In = {'4', '2'};
  auto Got = runFastPath(P, Moved, In);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, std::vector<uint64_t>{42u});
}

} // namespace
