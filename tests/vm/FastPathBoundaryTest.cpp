//===- tests/vm/FastPathBoundaryTest.cpp - Run-scan boundary audit --------===//
//
// Boundary tests for the vectorized run-scan kernels (scanRunEnd) and the
// cross-chunk resume path of FastPathCursor, written to be run under
// AddressSanitizer: every input buffer is an exact-size heap allocation,
// so any SWAR or SSE2 tail read past N trips ASan rather than silently
// reading slack capacity.
//
// The sweep concentrates on the shapes that historically break
// hand-unrolled scanners: spans of length 0/1/3/4/7 ending exactly at N
// (one lane short of every unroll width), escapes in the vector tail,
// and elements >= 256 whose low byte aliases an in-mask byte (the
// single-escape SSE2 compare must not treat them as members).
//
//===----------------------------------------------------------------------===//

#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "vm/FastPath.h"

#include <gtest/gtest.h>

#include <random>

using namespace efc;

namespace {

/// Scalar reference for scanRunEnd: the contract the vector paths must
/// reproduce exactly.
size_t refScanRunEnd(const std::vector<uint64_t> &In, size_t I, size_t N,
                     const RunKernel &RK) {
  while (I < N && RK.covers(In[I]))
    ++I;
  return I;
}

/// Builds a kernel whose mask holds every byte satisfying \p Member.
template <typename Pred> RunKernel makeKernel(Pred Member) {
  RunKernel RK;
  int Escape = -1;
  unsigned Misses = 0;
  for (unsigned B = 0; B < 256; ++B) {
    if (Member(B)) {
      RK.Mask[B >> 6] |= uint64_t(1) << (B & 63);
      ++RK.Bytes;
    } else {
      Escape = int(B);
      ++Misses;
    }
  }
  if (Misses == 1)
    RK.SingleEscape = Escape;
  return RK;
}

/// Exact-size heap buffer: ASan red zones sit immediately past index N-1.
std::vector<uint64_t> exact(std::initializer_list<uint64_t> Vs) {
  return std::vector<uint64_t>(Vs);
}

void sweepAgainstReference(const RunKernel &RK,
                           const std::vector<uint64_t> &In,
                           const char *What) {
  const size_t N = In.size();
  for (size_t I = 0; I <= N; ++I)
    EXPECT_EQ(scanRunEnd(In.data(), I, N, RK), refScanRunEnd(In, I, N, RK))
        << What << " I=" << I << " N=" << N;
}

TEST(ScanRunEnd, SpansEndingExactlyAtN) {
  RunKernel Digits = makeKernel([](unsigned B) {
    return B >= '0' && B <= '9';
  });
  // Lengths one short of / equal to every unroll width: the scan must
  // stop at N without touching the red zone past the buffer.
  for (size_t Len : {size_t(0), size_t(1), size_t(3), size_t(4), size_t(7),
                     size_t(8), size_t(15), size_t(16), size_t(31),
                     size_t(33), size_t(64)}) {
    std::vector<uint64_t> In(Len, uint64_t('5'));
    EXPECT_EQ(scanRunEnd(In.data(), 0, Len, Digits), Len) << "len=" << Len;
    sweepAgainstReference(Digits, In, "all-members");
  }
}

TEST(ScanRunEnd, EscapeAtEveryPosition) {
  RunKernel Digits = makeKernel([](unsigned B) {
    return B >= '0' && B <= '9';
  });
  for (size_t Len : {size_t(1), size_t(3), size_t(4), size_t(7), size_t(16),
                     size_t(40)}) {
    for (size_t Pos = 0; Pos < Len; ++Pos) {
      std::vector<uint64_t> In(Len, uint64_t('7'));
      In[Pos] = ',';
      EXPECT_EQ(scanRunEnd(In.data(), 0, Len, Digits), Pos)
          << "len=" << Len << " pos=" << Pos;
      sweepAgainstReference(Digits, In, "escape-sweep");
    }
  }
}

TEST(ScanRunEnd, SingleEscapeMaskUsesByteCompare) {
  RunKernel NotComma = makeKernel([](unsigned B) { return B != ','; });
  ASSERT_EQ(NotComma.SingleEscape, int(','));
  for (size_t Len : {size_t(0), size_t(1), size_t(3), size_t(4), size_t(7),
                     size_t(15), size_t(16), size_t(33)}) {
    std::vector<uint64_t> In(Len, uint64_t('x'));
    EXPECT_EQ(scanRunEnd(In.data(), 0, Len, NotComma), Len) << Len;
    if (Len > 0) {
      In[Len - 1] = ','; // escape in the final (tail) lane
      EXPECT_EQ(scanRunEnd(In.data(), 0, Len, NotComma), Len - 1) << Len;
      sweepAgainstReference(NotComma, In, "single-escape tail");
    }
  }
}

// Elements >= 256 are never run members, even when their low byte aliases
// an in-mask byte — the adversarial case for any compare that truncates
// to 8 bits before testing membership.
TEST(ScanRunEnd, WideElementsTerminateRuns) {
  RunKernel NotComma = makeKernel([](unsigned B) { return B != ','; });
  RunKernel Digits = makeKernel([](unsigned B) {
    return B >= '0' && B <= '9';
  });
  const uint64_t AliasX = uint64_t('x') + 256;   // low byte in NotComma
  const uint64_t Alias5 = uint64_t('5') + (1ull << 32); // low byte digit
  for (const uint64_t Wide :
       {uint64_t(256), AliasX, Alias5, ~uint64_t(0)}) {
    for (size_t Len : {size_t(1), size_t(3), size_t(7), size_t(16),
                       size_t(33)}) {
      for (size_t Pos : {size_t(0), Len / 2, Len - 1}) {
        std::vector<uint64_t> In(Len, uint64_t('x'));
        In[Pos] = Wide;
        EXPECT_EQ(scanRunEnd(In.data(), 0, Len, NotComma), Pos)
            << "wide=" << Wide << " len=" << Len << " pos=" << Pos;
        std::vector<uint64_t> InD(Len, uint64_t('5'));
        InD[Pos] = Wide;
        EXPECT_EQ(scanRunEnd(InD.data(), 0, Len, Digits), Pos)
            << "wide=" << Wide << " len=" << Len << " pos=" << Pos;
      }
    }
  }
}

TEST(ScanRunEnd, MidBufferStartIndices) {
  // Starting mid-buffer must not realign reads before I.
  RunKernel Digits = makeKernel([](unsigned B) {
    return B >= '0' && B <= '9';
  });
  std::vector<uint64_t> In = exact(
      {',', '1', '2', '3', ',', '4', '5', '6', '7', '8', '9', '0', ','});
  sweepAgainstReference(Digits, In, "mid-buffer");
  EXPECT_EQ(scanRunEnd(In.data(), 1, In.size(), Digits), 4u);
  EXPECT_EQ(scanRunEnd(In.data(), 5, In.size(), Digits), 12u);
  EXPECT_EQ(scanRunEnd(In.data(), 12, In.size(), Digits), 12u);
}

TEST(ScanRunEnd, RandomDifferentialSweep) {
  std::mt19937 Rng(1234);
  std::uniform_int_distribution<uint64_t> Val(0, 300);
  std::uniform_int_distribution<unsigned> Byte(0, 255);
  for (int Iter = 0; Iter < 200; ++Iter) {
    // Random mask (occasionally single-escape), random length 0..48.
    unsigned Hole = Byte(Rng);
    bool Single = Iter % 3 == 0;
    RunKernel RK = makeKernel([&](unsigned B) {
      return Single ? B != Hole : ((B * 2654435761u) >> 28 & 1) != 0;
    });
    size_t Len = Iter % 49;
    std::vector<uint64_t> In(Len);
    for (auto &V : In)
      V = Val(Rng);
    sweepAgainstReference(RK, In, "random");
  }
}

//===----------------------------------------------------------------------===//
// FastPathCursor cross-chunk resume
//===----------------------------------------------------------------------===//

class CursorBoundaryTest : public ::testing::Test {
protected:
  TermContext Ctx;

  /// 1 state over bv(8): '\n' emits a marker, everything else copies —
  /// both leaves self-loop, so the plan gets ConstAppend + Copy kernels
  /// with a single-escape mask.
  Bst makeCopyLoop() {
    Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 1, 0, Value::bv(8, 0));
    TermRef X = A.inputVar(), R = A.regVar();
    A.setDelta(0, Rule::ite(Ctx.mkEq(X, Ctx.bvConst(8, '\n')),
                            Rule::base({Ctx.bvConst(8, ';')}, 0, R),
                            Rule::base({X}, 0, R)));
    A.setFinalizer(0, Rule::base({}, 0, R));
    return A;
  }
};

TEST_F(CursorBoundaryTest, ChunkedFeedMatchesOneShotAtRunBoundaries) {
  Bst A = makeCopyLoop();
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);
  ASSERT_GE(P.stats().AccelStates, 1u) << "copy loop must be accelerated";

  // Runs of length 0/1/3/4/7 separated by '\n', so with chunk sizes
  // matching the run lengths the spans end exactly at chunk ends.
  std::vector<uint64_t> In;
  for (size_t RunLen : {size_t(0), size_t(1), size_t(3), size_t(4),
                        size_t(7), size_t(4), size_t(3), size_t(1)}) {
    for (size_t I = 0; I < RunLen; ++I)
      In.push_back('a' + I);
    In.push_back('\n');
  }
  auto Want = runFastPath(P, *T, In);
  ASSERT_TRUE(Want.has_value());
  auto Ref = T->run(In);
  ASSERT_TRUE(Ref.has_value());
  EXPECT_EQ(*Want, *Ref);

  for (size_t Chunk : {size_t(1), size_t(2), size_t(3), size_t(4),
                       size_t(5), size_t(7), size_t(8)}) {
    FastPathCursor C(P, *T);
    std::vector<uint64_t> Got;
    for (size_t I = 0; I < In.size(); I += Chunk) {
      size_t End = std::min(In.size(), I + Chunk);
      // Exact-size copy per chunk: reads past the chunk end trip ASan.
      std::vector<uint64_t> Piece(In.begin() + I, In.begin() + End);
      ASSERT_TRUE(C.feed(Piece, Got)) << "chunk=" << Chunk;
    }
    ASSERT_TRUE(C.finish(Got)) << "chunk=" << Chunk;
    EXPECT_EQ(Got, *Want) << "chunk=" << Chunk;
  }
}

TEST_F(CursorBoundaryTest, WideElementsFallBackMidChunk) {
  Bst A = makeCopyLoop();
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);

  // Out-of-range elements at the first/last position of a chunk: the
  // dispatch loop must route exactly those elements to the bytecode
  // program and keep run scans inside the chunk.
  std::vector<uint64_t> In = {'a', 'b', uint64_t('c') + 256, 'd',
                              '\n', 300,  'e',  'f',
                              'g',  ~uint64_t(0)};
  auto Ref = T->run(In);
  auto Fast = runFastPath(P, *T, In);
  ASSERT_EQ(Ref.has_value(), Fast.has_value());
  if (Ref) {
    EXPECT_EQ(*Ref, *Fast);
  }

  for (size_t Chunk : {size_t(1), size_t(3), size_t(5)}) {
    FastPathCursor C(P, *T);
    std::vector<uint64_t> Got;
    bool Ok = true;
    for (size_t I = 0; Ok && I < In.size(); I += Chunk) {
      size_t End = std::min(In.size(), I + Chunk);
      std::vector<uint64_t> Piece(In.begin() + I, In.begin() + End);
      Ok = C.feed(Piece, Got);
    }
    Ok = Ok && C.finish(Got);
    ASSERT_EQ(Ok, Ref.has_value()) << "chunk=" << Chunk;
    if (Ref) {
      EXPECT_EQ(Got, *Ref) << "chunk=" << Chunk;
    }
  }
}

TEST_F(CursorBoundaryTest, RunCountersAccumulateAcrossChunks) {
  Bst A = makeCopyLoop();
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);

  std::vector<uint64_t> In(64, uint64_t('x'));
  FastPathCursor C(P, *T);
  std::vector<uint64_t> Out;
  for (size_t I = 0; I < In.size(); I += 16) {
    std::vector<uint64_t> Piece(In.begin() + I, In.begin() + I + 16);
    ASSERT_TRUE(C.feed(Piece, Out));
  }
  ASSERT_TRUE(C.finish(Out));
  // One homogeneous run cut into four chunks: every element must be
  // accounted to run kernels, once.
  EXPECT_EQ(C.runCounters().RunElements, In.size());
  EXPECT_GE(C.runCounters().Runs, 4u);
}

} // namespace
