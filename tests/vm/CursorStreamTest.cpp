//===- tests/vm/CursorStreamTest.cpp - Streaming Cursor vs batch run ------===//
//
// The streaming Cursor API must be observationally identical to batch
// run(): same acceptance, byte-for-byte identical output, and the same
// per-element behaviour as the reference interpreter — outputs appear
// exactly when the interpreter's step emits them, and the cursor's control
// state tracks the interpreter's configuration.
//
//===----------------------------------------------------------------------===//

#include "bst/Interp.h"
#include "common/RandomBst.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

std::vector<uint64_t> rawOf(const std::vector<Value> &Vs) {
  std::vector<uint64_t> Out;
  Out.reserve(Vs.size());
  for (const Value &V : Vs)
    Out.push_back(V.bits());
  return Out;
}

/// Feeds \p In element by element, asserting lockstep agreement with the
/// reference interpreter, then checks the total against batch run().
void expectStreamingAgrees(const Bst &A, const std::vector<Value> &In,
                           const char *What) {
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value()) << What;

  auto Batch = T->run(rawOf(In));

  CompiledTransducer::Cursor C(*T);
  std::vector<uint64_t> Streamed;
  std::vector<uint64_t> InterpSoFar;
  unsigned State = A.initialState();
  Value Reg = A.initialRegister();
  bool Rejected = false;
  for (size_t I = 0; I < In.size(); ++I) {
    auto Step = stepRule(A, A.delta(State).get(), &In[I], Reg);
    bool Fed = C.feed(In[I].bits(), Streamed);
    ASSERT_EQ(Step.has_value(), Fed)
        << What << ": rejection point differs at element " << I;
    if (!Fed) {
      Rejected = true;
      break;
    }
    for (const Value &V : Step->Outputs)
      InterpSoFar.push_back(V.bits());
    State = Step->NextState;
    Reg = std::move(Step->NextReg);
    EXPECT_EQ(C.state(), State) << What << " at element " << I;
    // The stream so far must be exactly what the interpreter emitted.
    ASSERT_EQ(Streamed, InterpSoFar) << What << " after element " << I;
  }
  if (!Rejected)
    Rejected = !C.finish(Streamed);

  ASSERT_EQ(Batch.has_value(), !Rejected) << What;
  if (Batch)
    EXPECT_EQ(*Batch, Streamed) << What;
}

TEST(CursorStream, AgreesOnRandomBsts) {
  SplitMix64 Rng(0xC0C0);
  for (int T = 0; T < 20; ++T) {
    TermContext Ctx;
    efc::testing::RandomBstGen Gen(Ctx, Rng);
    efc::testing::GenOptions O;
    O.ElemWidth = (T % 2) ? 8u : 4u;
    O.MaxRegTupleArity = 2;
    Bst A = Gen.make(1 + unsigned(Rng.below(4)), O);
    for (int I = 0; I < 6; ++I)
      expectStreamingAgrees(A, Gen.randomInput(10, O.ElemWidth), "random");
    expectStreamingAgrees(A, Gen.adversarialInput(1, 10, O.ElemWidth),
                          "adversarial");
  }
}

TEST(CursorStream, AgreesOnStdlibZoo) {
  TermContext Ctx;
  SplitMix64 Rng(0xF00);
  struct Case {
    Bst A;
    unsigned InputWidth;
  };
  std::vector<Case> Cases;
  Cases.push_back({lib::makeToInt(Ctx), 16});
  Cases.push_back({lib::makeBase64Decode(Ctx), 8});
  Cases.push_back({lib::makeUtf8Decode2(Ctx), 8});
  Cases.push_back({lib::makeWindowedAverage(Ctx, 3), 32});
  for (auto &C : Cases) {
    for (int Iter = 0; Iter < 8; ++Iter) {
      std::vector<Value> In;
      size_t N = Rng.below(16);
      for (size_t I = 0; I < N; ++I) {
        uint64_t V = Rng.below(4) ? Rng.range(0x20, 0x7E)
                                  : Rng.below(uint64_t(1)
                                              << std::min(C.InputWidth, 16u));
        In.push_back(Value::bv(C.InputWidth, V));
      }
      expectStreamingAgrees(C.A, In, "zoo");
    }
  }
}

TEST(CursorStream, SplitFeedingMatchesWholeInput) {
  // Feeding the same input in two sessions split at every possible point
  // must be indistinguishable from one pass (the cursor carries all the
  // state there is).
  TermContext Ctx;
  Bst A = lib::makeToInt(Ctx);
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  std::string Digits = "90210";
  std::vector<uint64_t> Whole;
  {
    CompiledTransducer::Cursor C(*T);
    for (char Ch : Digits)
      ASSERT_TRUE(C.feed(uint64_t(Ch), Whole));
    ASSERT_TRUE(C.finish(Whole));
  }
  for (size_t Split = 0; Split <= Digits.size(); ++Split) {
    CompiledTransducer::Cursor C(*T);
    std::vector<uint64_t> Out;
    for (size_t I = 0; I < Digits.size(); ++I) {
      if (I == Split)
        (void)C.state(); // a cursor can be observed mid-stream freely
      ASSERT_TRUE(C.feed(uint64_t(Digits[I]), Out));
    }
    ASSERT_TRUE(C.finish(Out));
    EXPECT_EQ(Out, Whole) << "split at " << Split;
  }
}

} // namespace
