//===- tests/vm/SimdSweepTest.cpp - Forced-ISA differential sweeps --------===//
//
// The scan kernels are dispatched by ISA level (vm/Simd.h); on a wide
// machine only the widest kernel runs, so this suite forces every level
// the hardware can execute (setActiveLevelForTesting clamps to the
// detected level — the sweep is safe on any box) and re-runs the same
// differential checks under each:
//
//  * scanRunEnd / scanAlternating against their scalar references, on
//    exact-size heap buffers so AVX2/AVX-512 block reads past N trip
//    ASan.  Lengths straddle every block width (16/32/64 +- 1) and
//    escapes sweep every position, including the vector-tail lanes.
//  * whole-machine oracles: the fast path (nibble run scans, spec-pair
//    alternating spans, wide-domain memo tables) against the bytecode
//    VM on synthetic machines shaped to hit each accelerator tier.
//
//===----------------------------------------------------------------------===//

#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "vm/FastPath.h"
#include "vm/Simd.h"

#include <gtest/gtest.h>

#include <random>

using namespace efc;

namespace {

/// Restores the active dispatch level on scope exit, so a failing sweep
/// cannot leave later tests pinned to a narrow ISA.
struct LevelGuard {
  simd::Level Saved = simd::activeLevel();
  ~LevelGuard() { simd::setActiveLevelForTesting(Saved); }
};

/// Every level this machine can actually execute, narrowest first.
std::vector<simd::Level> runnableLevels() {
  std::vector<simd::Level> Ls;
  for (int L = 0; L <= int(simd::detectedLevel()); ++L)
    Ls.push_back(simd::Level(L));
  return Ls;
}

size_t refScanRunEnd(const std::vector<uint64_t> &In, size_t I, size_t N,
                     const RunKernel &RK) {
  while (I < N && RK.covers(In[I]))
    ++I;
  return I;
}

size_t refScanAlternating(const std::vector<uint64_t> &In, size_t I,
                          size_t N, const SpecPair &SP) {
  size_t J = I;
  while (J < N &&
         SpecPair::maskCovers(((J - I) & 1) ? SP.M2 : SP.M1, In[J]))
    ++J;
  return J;
}

template <typename Pred> RunKernel makeKernel(Pred Member) {
  RunKernel RK;
  int Escape = -1;
  unsigned Misses = 0;
  for (unsigned B = 0; B < 256; ++B) {
    if (Member(B)) {
      RK.Mask[B >> 6] |= uint64_t(1) << (B & 63);
      ++RK.Bytes;
    } else {
      Escape = int(B);
      ++Misses;
    }
  }
  if (Misses == 1)
    RK.SingleEscape = Escape;
  RK.NT = tryEncodeNibbleTable(RK.Mask);
  return RK;
}

template <typename P1, typename P2>
SpecPair makePair(P1 Leg1, P2 Leg2) {
  SpecPair SP;
  for (unsigned B = 0; B < 256; ++B) {
    if (Leg1(B)) {
      SP.M1[B >> 6] |= uint64_t(1) << (B & 63);
      ++SP.Bytes1;
    }
    if (Leg2(B)) {
      SP.M2[B >> 6] |= uint64_t(1) << (B & 63);
      ++SP.Bytes2;
    }
  }
  SP.NT1 = tryEncodeNibbleTable(SP.M1);
  SP.NT2 = tryEncodeNibbleTable(SP.M2);
  return SP;
}

// Lengths one short of / at / one past every vector block width.
const size_t BlockLens[] = {0,  1,  7,  8,  15, 16, 17, 31, 32,
                            33, 63, 64, 65, 95, 96, 100};

TEST(SimdSweep, ScanRunEndEveryLevelExactBuffers) {
  LevelGuard G;
  RunKernel Digits =
      makeKernel([](unsigned B) { return B >= '0' && B <= '9'; });
  ASSERT_TRUE(Digits.NT.Valid) << "digit set must be shufti-encodable";
  RunKernel Alnum = makeKernel([](unsigned B) {
    return (B >= '0' && B <= '9') || (B >= 'A' && B <= 'Z') ||
           (B >= 'a' && B <= 'z');
  });
  for (simd::Level L : runnableLevels()) {
    ASSERT_EQ(simd::setActiveLevelForTesting(L), L);
    for (const RunKernel &RK : {Digits, Alnum}) {
      for (size_t Len : BlockLens) {
        // All members: the scan must stop exactly at N.
        std::vector<uint64_t> In(Len, uint64_t('5'));
        EXPECT_EQ(scanRunEnd(In.data(), 0, Len, RK), Len)
            << simd::levelName(L) << " len=" << Len;
        // Escape at every position, start index sweeping the whole
        // buffer: block-aligned and tail lanes both see the escape.
        for (size_t Pos = 0; Pos < Len; ++Pos) {
          std::vector<uint64_t> Esc(Len, uint64_t('7'));
          Esc[Pos] = ',';
          for (size_t I = 0; I <= Len; ++I)
            EXPECT_EQ(scanRunEnd(Esc.data(), I, Len, RK),
                      refScanRunEnd(Esc, I, Len, RK))
                << simd::levelName(L) << " len=" << Len << " pos=" << Pos
                << " I=" << I;
        }
      }
    }
  }
}

TEST(SimdSweep, ScanRunEndWideElementsEveryLevel) {
  LevelGuard G;
  RunKernel Digits =
      makeKernel([](unsigned B) { return B >= '0' && B <= '9'; });
  // Low byte aliases an in-set byte: the packed compare must see the
  // high bits, at every lane of every block width.
  const uint64_t Alias = uint64_t('5') + 256;
  const uint64_t High = uint64_t('5') + (1ull << 32);
  for (simd::Level L : runnableLevels()) {
    ASSERT_EQ(simd::setActiveLevelForTesting(L), L);
    for (uint64_t Wide : {uint64_t(256), Alias, High, ~uint64_t(0)}) {
      for (size_t Len : {size_t(16), size_t(33), size_t(65)}) {
        for (size_t Pos = 0; Pos < Len; ++Pos) {
          std::vector<uint64_t> In(Len, uint64_t('5'));
          In[Pos] = Wide;
          EXPECT_EQ(scanRunEnd(In.data(), 0, Len, Digits), Pos)
              << simd::levelName(L) << " wide=" << Wide << " len=" << Len
              << " pos=" << Pos;
        }
      }
    }
  }
}

TEST(SimdSweep, ScanAlternatingEveryLevelExactBuffers) {
  LevelGuard G;
  SpecPair SP = makePair(
      [](unsigned B) { return B >= '0' && B <= '9'; }, // leg 1: digits
      [](unsigned B) { return B == ',' || B == ';'; }); // leg 2: seps
  ASSERT_TRUE(SP.NT1.Valid);
  ASSERT_TRUE(SP.NT2.Valid);
  auto alternating = [](size_t Len) {
    std::vector<uint64_t> In(Len);
    for (size_t I = 0; I < Len; ++I)
      In[I] = (I & 1) ? uint64_t(',') : uint64_t('3');
    return In;
  };
  for (simd::Level L : runnableLevels()) {
    ASSERT_EQ(simd::setActiveLevelForTesting(L), L);
    for (size_t Len : BlockLens) {
      std::vector<uint64_t> In = alternating(Len);
      // Clean alternation from the front consumes the whole buffer.
      EXPECT_EQ(scanAlternating(In.data(), 0, Len, SP),
                refScanAlternating(In, 0, Len, SP))
          << simd::levelName(L) << " len=" << Len;
      // Break the parity at every position: with a digit (wrong leg),
      // with a byte in neither leg, and with a wide element.
      for (size_t Pos = 0; Pos < Len; ++Pos) {
        for (uint64_t Bad :
             {uint64_t('x'), In[Pos] ^ 1, uint64_t(',') + 256}) {
          std::vector<uint64_t> Broken = alternating(Len);
          Broken[Pos] = Bad;
          for (size_t I : {size_t(0), Pos / 2 * 2}) // even starts: leg 1
            EXPECT_EQ(scanAlternating(Broken.data(), I, Len, SP),
                      refScanAlternating(Broken, I, Len, SP))
                << simd::levelName(L) << " len=" << Len << " pos=" << Pos
                << " bad=" << Bad << " I=" << I;
        }
      }
    }
  }
}

TEST(SimdSweep, NibbleEncodingMatchesMaskWhenValid) {
  std::mt19937 Rng(99);
  std::uniform_int_distribution<uint64_t> Word;
  unsigned Encodable = 0;
  for (int Iter = 0; Iter < 500; ++Iter) {
    std::array<uint64_t, 4> Mask{};
    // Mix dense random masks with sparse ones (few hi-nibble rows, the
    // shape that actually encodes).
    if (Iter % 2) {
      for (auto &W : Mask)
        W = Word(Rng);
    } else {
      for (int K = 0; K < 6; ++K) {
        unsigned B = unsigned(Word(Rng) % 256);
        Mask[B >> 6] |= uint64_t(1) << (B & 63);
      }
    }
    NibbleTable NT = tryEncodeNibbleTable(Mask);
    if (!NT.Valid)
      continue;
    ++Encodable;
    for (unsigned B = 0; B < 256; ++B)
      ASSERT_EQ(NT.contains(uint8_t(B)),
                bool((Mask[B >> 6] >> (B & 63)) & 1))
          << "iter=" << Iter << " byte=" << B;
  }
  EXPECT_GT(Encodable, 0u) << "sweep never exercised a valid encoding";
}

//===----------------------------------------------------------------------===//
// Whole-machine oracles under forced levels
//===----------------------------------------------------------------------===//

class SimdOracleTest : public ::testing::Test {
protected:
  TermContext Ctx;

  /// bv(8) copy loop: '\n' emits ';', everything else copies.  The
  /// not-'\n' class becomes a single-escape Copy kernel with a valid
  /// nibble encoding.
  Bst makeCopyLoop() {
    Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 1, 0, Value::bv(8, 0));
    TermRef X = A.inputVar(), R = A.regVar();
    A.setDelta(0, Rule::ite(Ctx.mkEq(X, Ctx.bvConst(8, '\n')),
                            Rule::base({Ctx.bvConst(8, ';')}, 0, R),
                            Rule::base({X}, 0, R)));
    A.setFinalizer(0, Rule::base({}, 0, R));
    return A;
  }

  /// Two states that unconditionally ping-pong with constant emits: the
  /// shape detectSpecPairs promotes to a speculative alternating pair.
  Bst makePingPong() {
    Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 2, 0, Value::bv(8, 0));
    TermRef R = A.regVar();
    A.setDelta(0, Rule::base({Ctx.bvConst(8, 0x11)}, 1, R));
    A.setDelta(1, Rule::base({Ctx.bvConst(8, 0x22)}, 0, R));
    A.setFinalizer(0, Rule::base({}, 0, R));
    A.setFinalizer(1, Rule::base({}, 1, R));
    return A;
  }

  /// bv(16) echo whose wide elements emit x+1: [256, 2^16) lands in a
  /// Memo class with per-element pool values.
  Bst makeWidePlusOne() {
    Bst A(Ctx, Ctx.bv(16), Ctx.bv(16), Ctx.bv(16), 1, 0,
          Value::bv(16, 0));
    TermRef X = A.inputVar(), R = A.regVar();
    A.setDelta(0, Rule::ite(Ctx.mkUlt(X, Ctx.bvConst(16, 256)),
                            Rule::base({X}, 0, R),
                            Rule::base({Ctx.mkAdd(X, Ctx.bvConst(16, 1))},
                                       0, R)));
    A.setFinalizer(0, Rule::base({}, 0, R));
    return A;
  }

  /// Fast path vs bytecode VM on \p In, whole-shot and chunked, under
  /// the currently active level.
  void expectOracle(const FastPathPlan &P, const CompiledTransducer &T,
                    const std::vector<uint64_t> &In, const char *What) {
    auto Ref = T.run(In);
    auto Fast = runFastPath(P, T, In);
    ASSERT_EQ(Ref.has_value(), Fast.has_value()) << What;
    if (Ref) {
      EXPECT_EQ(*Ref, *Fast) << What;
    }
    for (size_t Chunk : {size_t(1), size_t(5), size_t(16), size_t(33)}) {
      FastPathCursor C(P, T);
      std::vector<uint64_t> Got;
      bool Ok = true;
      for (size_t I = 0; Ok && I < In.size(); I += Chunk) {
        size_t End = std::min(In.size(), I + Chunk);
        // Exact-size copy per chunk: reads past the chunk end trip ASan.
        std::vector<uint64_t> Piece(In.begin() + I, In.begin() + End);
        Ok = C.feed(Piece, Got);
      }
      Ok = Ok && C.finish(Got);
      ASSERT_EQ(Ok, Ref.has_value()) << What << " chunk=" << Chunk;
      if (Ref) {
        EXPECT_EQ(Got, *Ref) << What << " chunk=" << Chunk;
      }
    }
  }
};

TEST_F(SimdOracleTest, CopyLoopEveryLevel) {
  LevelGuard G;
  Bst A = makeCopyLoop();
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);
  ASSERT_GE(P.stats().NibbleKernels, 1u)
      << "copy loop must get a shufti-encoded kernel";

  std::mt19937 Rng(7);
  std::uniform_int_distribution<uint64_t> Val(0, 300);
  for (simd::Level L : runnableLevels()) {
    ASSERT_EQ(simd::setActiveLevelForTesting(L), L);
    std::vector<uint64_t> Text;
    for (size_t I = 0; I < 200; ++I)
      Text.push_back(I % 37 == 0 ? uint64_t('\n') : uint64_t('a' + I % 26));
    expectOracle(P, *T, Text, simd::levelName(L));
    std::vector<uint64_t> Mixed(150);
    for (auto &V : Mixed)
      V = Val(Rng); // includes out-of-range elements (bytecode fallback)
    expectOracle(P, *T, Mixed, simd::levelName(L));
  }
}

TEST_F(SimdOracleTest, SpecPairAlternatingEveryLevel) {
  LevelGuard G;
  Bst A = makePingPong();
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);
  ASSERT_EQ(P.stats().SpecPairs, 2u)
      << "ping-pong must be detected from both states";

  for (simd::Level L : runnableLevels()) {
    ASSERT_EQ(simd::setActiveLevelForTesting(L), L);
    for (size_t Len : BlockLens) {
      std::vector<uint64_t> In(Len, uint64_t('x'));
      expectOracle(P, *T, In, simd::levelName(L));
    }
    // The accelerated spans must actually engage (not just agree).
    std::vector<uint64_t> Long(128, uint64_t('q'));
    FastPathCursor C(P, *T);
    std::vector<uint64_t> Out;
    ASSERT_TRUE(C.feed(Long, Out));
    EXPECT_GT(C.runCounters().SpecElements, 0u) << simd::levelName(L);
  }
}

TEST_F(SimdOracleTest, WideTableChunkedFeedsEveryLevel) {
  LevelGuard G;
  Bst A = makeWidePlusOne();
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  FastPathPlan P = FastPathPlan::build(A, *T);
  ASSERT_TRUE(P.stateTable(0).Wide.Has)
      << "bv(16) input must get a wide-domain table";

  std::mt19937 Rng(23);
  std::uniform_int_distribution<uint64_t> Elem(0, (1u << 16) - 1);
  std::vector<uint64_t> In(300);
  for (auto &V : In)
    V = Elem(Rng);
  In[17] = 255;   // straddle the byte/wide boundary
  In[18] = 256;
  In[19] = 65535; // top of the domain
  for (simd::Level L : runnableLevels()) {
    ASSERT_EQ(simd::setActiveLevelForTesting(L), L);
    expectOracle(P, *T, In, simd::levelName(L));
  }
  FastPathCursor C(P, *T);
  std::vector<uint64_t> Out;
  ASSERT_TRUE(C.feed(In, Out));
  EXPECT_GT(C.runCounters().WideElements, 0u)
      << "wide elements must route through the memo pools";
}

} // namespace
