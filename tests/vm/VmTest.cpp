//===- tests/vm/VmTest.cpp - VM vs reference interpreter ------------------===//

#include "bst/Interp.h"
#include "fusion/Fusion.h"
#include "rbbe/Rbbe.h"
#include "stdlib/Reference.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"
#include "vm/Pipeline.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class VmTest : public ::testing::Test {
protected:
  TermContext Ctx;

  static std::vector<uint64_t> rawOf(const std::vector<Value> &Vs) {
    std::vector<uint64_t> Out;
    Out.reserve(Vs.size());
    for (const Value &V : Vs)
      Out.push_back(V.bits());
    return Out;
  }

  /// Checks that the VM agrees with the reference interpreter on \p In.
  void expectAgreesWithInterp(const Bst &A, const std::vector<Value> &In,
                              const char *What) {
    auto Compiled = CompiledTransducer::compile(A);
    ASSERT_TRUE(Compiled.has_value()) << What;
    auto Interp = runBst(A, In);
    auto Vm = Compiled->run(rawOf(In));
    ASSERT_EQ(Interp.has_value(), Vm.has_value()) << What;
    if (Interp)
      EXPECT_EQ(rawOf(*Interp), *Vm) << What;
  }
};

TEST_F(VmTest, Utf8DecodeAgrees) {
  Bst A = lib::makeUtf8Decode(Ctx);
  expectAgreesWithInterp(A, lib::valuesFromBytes("hello"), "ascii");
  expectAgreesWithInterp(A, lib::valuesFromBytes("\xC5\x93x"), "2-byte");
  expectAgreesWithInterp(A, lib::valuesFromBytes("\xF0\x9F\x98\x80"),
                         "4-byte");
  expectAgreesWithInterp(A, lib::valuesFromBytes("\xFF"), "invalid");
  expectAgreesWithInterp(A, lib::valuesFromBytes("\xC5"), "truncated");
}

TEST_F(VmTest, ZooAgreesOnRandomInputs) {
  SplitMix64 Rng(31);
  struct Case {
    Bst A;
    unsigned InputWidth;
  };
  std::vector<Case> Cases;
  Cases.push_back({lib::makeUtf8Decode2(Ctx), 8});
  Cases.push_back({lib::makeToInt(Ctx), 16});
  Cases.push_back({lib::makeBase64Decode(Ctx), 8});
  Cases.push_back({lib::makeBase64Encode(Ctx), 8});
  Cases.push_back({lib::makeRep(Ctx), 16});
  Cases.push_back({lib::makeHtmlEncode(Ctx), 16});
  Cases.push_back({lib::makeLineCount(Ctx), 16});
  Cases.push_back({lib::makeDelta(Ctx), 32});
  Cases.push_back({lib::makeMax(Ctx), 32});
  Cases.push_back({lib::makeWindowedAverage(Ctx, 4), 32});
  for (auto &C : Cases) {
    for (int Iter = 0; Iter < 20; ++Iter) {
      std::vector<Value> In;
      size_t N = Rng.below(24);
      for (size_t I = 0; I < N; ++I) {
        // Mostly printable range to hit accepting paths too.
        uint64_t V = Rng.below(4) ? Rng.range(0x20, 0x7E)
                                  : Rng.below(uint64_t(1)
                                              << std::min(C.InputWidth, 16u));
        In.push_back(Value::bv(C.InputWidth, V));
      }
      expectAgreesWithInterp(C.A, In, "zoo");
    }
  }
}

TEST_F(VmTest, FusedPipelineAgrees) {
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Bst Fmt = lib::makeIntToDecimal(Ctx);
  Bst Enc = lib::makeUtf8Encode(Ctx);
  Solver S(Ctx);
  // RBBE on the 2-stage prefix (cheap), then fuse the remaining stages.
  Bst Front = eliminateUnreachableBranches(fuse(Dec, ToInt, S), S);
  Bst Fused = fuseChain({&Front, &Fmt, &Enc}, S);
  for (const char *In : {"0", "123456789", "12x", ""})
    expectAgreesWithInterp(Fused, lib::valuesFromBytes(In), In);
}

TEST_F(VmTest, CursorSurvivesReset) {
  Bst A = lib::makeToInt(Ctx);
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  CompiledTransducer::Cursor C(*T);
  std::vector<uint64_t> Out;
  EXPECT_TRUE(C.feed('4', Out));
  EXPECT_TRUE(C.feed('2', Out));
  EXPECT_TRUE(C.finish(Out));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 42u);
  C.reset();
  Out.clear();
  EXPECT_TRUE(C.feed('7', Out));
  EXPECT_TRUE(C.finish(Out));
  EXPECT_EQ(Out[0], 7u) << "register must reset";
}

TEST_F(VmTest, PullAndPushPipelinesAgreeWithFused) {
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Bst Fmt = lib::makeIntToDecimal(Ctx);
  Bst Enc = lib::makeUtf8Encode(Ctx);
  Solver S(Ctx);
  Bst Fused = fuseChain({&Dec, &ToInt, &Fmt, &Enc}, S);

  auto CDec = CompiledTransducer::compile(Dec);
  auto CToInt = CompiledTransducer::compile(ToInt);
  auto CFmt = CompiledTransducer::compile(Fmt);
  auto CEnc = CompiledTransducer::compile(Enc);
  auto CFused = CompiledTransducer::compile(Fused);
  ASSERT_TRUE(CDec && CToInt && CFmt && CEnc && CFused);
  std::vector<const CompiledTransducer *> Stages = {&*CDec, &*CToInt, &*CFmt,
                                                    &*CEnc};

  for (const char *InStr : {"00100", "7", "", "99x"}) {
    std::vector<uint64_t> In;
    for (const char *P = InStr; *P; ++P)
      In.push_back(uint64_t(*P));
    auto FusedOut = CFused->run(In);
    auto PullOut = runPullPipeline(Stages, In);
    auto PushOut = runPushPipeline(Stages, In);
    ASSERT_EQ(FusedOut.has_value(), PullOut.has_value()) << InStr;
    ASSERT_EQ(FusedOut.has_value(), PushOut.has_value()) << InStr;
    if (FusedOut) {
      EXPECT_EQ(*FusedOut, *PullOut) << InStr;
      EXPECT_EQ(*FusedOut, *PushOut) << InStr;
    }
  }
}

TEST_F(VmTest, PipelineRejectionPropagates) {
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  auto CDec = CompiledTransducer::compile(Dec);
  auto CToInt = CompiledTransducer::compile(ToInt);
  std::vector<const CompiledTransducer *> Stages = {&*CDec, &*CToInt};
  std::vector<uint64_t> Bad = {'1', 0xFF, '2'};
  EXPECT_FALSE(runPullPipeline(Stages, Bad).has_value());
  EXPECT_FALSE(runPushPipeline(Stages, Bad).has_value());
  // Rejection at finalizer (empty digits stream).
  std::vector<uint64_t> Empty;
  EXPECT_FALSE(runPullPipeline(Stages, Empty).has_value());
  EXPECT_FALSE(runPushPipeline(Stages, Empty).has_value());
}

TEST_F(VmTest, WindowedAverageRegisterSwapsAreSound) {
  // The ring-buffer update writes many register fields per step; checks
  // the staged-write path (no clobbering).
  Bst A = lib::makeWindowedAverage(Ctx, 5);
  auto T = CompiledTransducer::compile(A);
  ASSERT_TRUE(T.has_value());
  SplitMix64 Rng(33);
  std::vector<uint32_t> In;
  for (int I = 0; I < 40; ++I)
    In.push_back(uint32_t(Rng.below(10000)));
  std::vector<uint64_t> Raw(In.begin(), In.end());
  auto Out = T->run(Raw);
  ASSERT_TRUE(Out.has_value());
  std::vector<uint32_t> Got(Out->begin(), Out->end());
  EXPECT_EQ(Got, ref::windowedAverage(In, 5));
}

TEST_F(VmTest, RejectsNonScalarBoundary) {
  // A transducer with a tuple input type cannot be compiled.
  const Type *PairTy = Ctx.pairTy(Ctx.bv(8), Ctx.bv(8));
  Bst A(Ctx, PairTy, Ctx.bv(8), Ctx.unitTy(), 1, 0, Value::unit());
  EXPECT_FALSE(CompiledTransducer::compile(A).has_value());
}

TEST_F(VmTest, CodeSizeShrinksAfterRbbe) {
  Bst Html = lib::makeHtmlEncode(Ctx);
  Solver S(Ctx);
  Bst Clean = eliminateUnreachableBranches(Html, S);
  auto Before = CompiledTransducer::compile(Html);
  auto After = CompiledTransducer::compile(Clean);
  ASSERT_TRUE(Before && After);
  EXPECT_LT(After->codeSize(), Before->codeSize());
}

} // namespace
