//===- tests/rbbe/RbbeDifferentialTest.cpp - RBBE via the oracle ----------===//
//
// Semantics preservation of eliminateUnreachableBranches (paper §4,
// ⟦result⟧ = ⟦A⟧) checked differentially: the shared oracle runs the
// RBBE'd transducer — interpreted and on the VM — against the reference
// interpretation of the original, on random transducers whose rules guard
// on *register* contents (the state-carried constraints RBBE reasons
// about) and on stdlib pipelines.
//
//===----------------------------------------------------------------------===//

#include "bst/Interp.h"
#include "common/FuzzSeed.h"
#include "common/Oracle.h"
#include "common/RandomBst.h"
#include "rbbe/Rbbe.h"
#include "solver/Solver.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace efc;
using namespace efc::testing;

namespace {

TEST(RbbeDifferential, PreservesSemanticsOnRandomTransducers) {
  uint64_t Seed = efc::testing::fuzzSeed(0x4BBE);
  SplitMix64 Rng(Seed);
  for (int T = 0; T < 12; ++T) {
    TermContext Ctx;
    RandomBstGen Gen(Ctx, Rng);
    GenOptions O;
    O.MaxRegTupleArity = 2;
    std::vector<Bst> Stage = {Gen.make(1 + unsigned(Rng.below(4)), O)};
    Oracle Or(std::move(Stage), BK_Rbbe | BK_RbbeVm);
    for (int I = 0; I < 12; ++I) {
      auto In = Gen.randomInput(8, O.ElemWidth);
      auto D = Or.check(In);
      EXPECT_FALSE(D.has_value())
          << "trial " << T << ": " << D->str() << " " << seedNote(Seed);
    }
  }
}

TEST(RbbeDifferential, PreservesSemanticsUnderAggressiveOptions) {
  // Tight budgets force the Unknown/give-up paths, which must stay
  // conservative (branches kept, never dropped unsoundly).
  uint64_t Seed = efc::testing::fuzzSeed(0xBEE5);
  SplitMix64 Rng(Seed);
  for (int T = 0; T < 8; ++T) {
    TermContext Ctx;
    RandomBstGen Gen(Ctx, Rng);
    Bst A = Gen.make(3);
    Solver S(Ctx);
    RbbeOptions Opts;
    Opts.UnderApprox = (T % 2) == 0;
    Opts.MaxSolverChecks = 5;
    Opts.ConflictBudget = 1;
    Bst Clean = eliminateUnreachableBranches(A, S, Opts);
    for (int I = 0; I < 10; ++I) {
      std::vector<Value> In = Gen.randomInput(8);
      auto Before = runBst(A, In);
      auto After = runBst(Clean, In);
      ASSERT_EQ(Before.has_value(), After.has_value())
          << "trial " << T << " " << seedNote(Seed);
      if (Before)
        EXPECT_EQ(*Before, *After) << "trial " << T << " "
                                   << seedNote(Seed);
    }
  }
}

TEST(RbbeDifferential, PreservesSemanticsOnFusedStdlibPipeline) {
  TermContext Ctx;
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeRep(Ctx));
  Stages.push_back(lib::makeHtmlEncode(Ctx));
  Oracle Or(std::move(Stages), BK_Rbbe | BK_RbbeVm | BK_Fused);
  std::vector<std::u16string> Cases = {u"x<y&z", u"\xD83D\xDE00", u"",
                                       u"plain \x4E2D", u"\xDBFF\xDFFF",
                                       u"\xD83Dz"};
  for (const auto &Sc : Cases) {
    auto D = Or.check(lib::valuesFromChars(Sc));
    EXPECT_FALSE(D.has_value()) << D->str();
  }
}

} // namespace
