//===- tests/rbbe/RbbeTest.cpp - RBBE tests (paper §4) --------------------===//

#include "bst/BstPrint.h"
#include "common/RandomBst.h"
#include "bst/Interp.h"
#include "bst/Transform.h"
#include "bst/Minimize.h"
#include "fusion/Fusion.h"
#include "rbbe/Rbbe.h"
#include "stdlib/Reference.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class RbbeTest : public ::testing::Test {
protected:
  TermContext Ctx;
};

TEST_F(RbbeTest, CompletesPaperSection1Story) {
  // Fusion keeps 4 product states for Utf8Decode ⊗ ToInt; RBBE proves the
  // multibyte continuation branch unreachable (the state-carried
  // constraint r.0 = (x & 0x3F) << 6 with x in [0xC2,0xDF] forces
  // r.0 >= 0x80, clashing with the digit guard) and dead-end elimination
  // brings the result down to ToInt's own 2 states.
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Solver S(Ctx);
  Bst Fused = fuse(Dec, ToInt, S);
  ASSERT_EQ(Fused.numStates(), 4u);

  RbbeStats Stats;
  Bst Clean = eliminateUnreachableBranches(Fused, S, {}, &Stats);
  EXPECT_EQ(Clean.numStates(), 2u) << bstToString(Clean);
  EXPECT_GT(Stats.BranchesRemoved, 0u);
  EXPECT_GT(Stats.StatesRemoved, 0u);

  // Semantics unchanged.
  for (const char *In : {"123", "", "0", "98765", "12x", "\xC5\x93"}) {
    auto Before = runBst(Fused, lib::valuesFromBytes(In));
    auto After = runBst(Clean, lib::valuesFromBytes(In));
    ASSERT_EQ(Before.has_value(), After.has_value()) << In;
    if (Before)
      EXPECT_EQ(*Before, *After) << In;
  }
}

TEST_F(RbbeTest, PaperSection61EncodeBranches) {
  // §6.1: in HtmlEncode's state h1, Encode(CP(r, x)) is guarded only by
  // "x is a low surrogate"; that CP(r, x) >= 0x10000 holds is a
  // *state-carried* fact (h1 is only entered under h0's high-surrogate
  // guard).  RBBE proves the four entity branches and the < 10 ... < 10000
  // decimal branches of that Encode instance unreachable — the paper's
  // "first eight true branches".
  Bst Html = lib::makeHtmlEncode(Ctx);
  unsigned Before = Html.countBranches();
  Solver S(Ctx);
  RbbeStats Stats;
  Bst Clean = eliminateUnreachableBranches(Html, S, {}, &Stats);
  // 8 branches of Encode(CP(r, x)) (the paper's "first eight true
  // branches") plus 2 impossible magnitude branches of Encode(x) — a bv16
  // char is always < 100000 ("both instantiations of Encode include some
  // unreachable branches").
  EXPECT_EQ(Stats.BranchesRemoved, 10u);
  EXPECT_EQ(Clean.countBranches(), Before - 10);

  // Behaviour on valid (repaired) inputs is unchanged.
  std::vector<std::u16string> Cases = {
      u"x<y&z", u"\xD83D\xDE00", u"plain \x4E2D", u"\xDBFF\xDFFF"};
  for (const auto &Sc : Cases) {
    auto Out = runBst(Clean, lib::valuesFromChars(Sc));
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(lib::charsFromValues(*Out), ref::htmlEncode(Sc));
  }
}

TEST_F(RbbeTest, FusionPrunesWhatRbbeWouldInProduct) {
  // In Rep ⊗ HtmlEncode the surrogate pair flows through B within a
  // single STEP, so the branch context γ carries the high-surrogate
  // constraint and fusion prunes the same Encode branches up front (the
  // paper: "removed either by pruning in the fusion or during RBBE").
  Bst Rep = lib::makeRep(Ctx);
  Bst Html = lib::makeHtmlEncode(Ctx);
  Solver S(Ctx);
  FusionStats FStats;
  Bst Fused = fuse(Rep, Html, S, {}, &FStats);
  EXPECT_GT(FStats.BranchesPruned, 0u);
  RbbeStats Stats;
  Bst Clean = eliminateUnreachableBranches(Fused, S, {}, &Stats);
  std::vector<std::u16string> Cases = {
      u"x<y&z", u"\xD83D\xDE00", u"\xD83D", u"\xDE00\xD800\xDC00",
      u"plain \x4E2D"};
  for (const auto &Sc : Cases) {
    auto Out = runBst(Clean, lib::valuesFromChars(Sc));
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(lib::charsFromValues(*Out), ref::antiXssHtmlEncode(Sc));
  }
}

TEST_F(RbbeTest, StateCarriedCounterConstraint) {
  // A hand-built example: a 1-state transducer whose register counts
  // mod-free up to at most 3 (guard x <= 2 on entry ensures r <= 2 + ...).
  // Branch "r >= 100" can never fire because r only ever increments by 1
  // from 0 while staying <= |Q| layers... use a simpler invariant: the
  // register is always even, so the odd branch is unreachable.
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 1, 0, Value::bv(8, 0));
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  TermRef IsOdd = Ctx.mkEq(Ctx.mkBvAnd(R, Ctx.bvConst(8, 1)),
                           Ctx.bvConst(8, 1));
  // r increases by 2 each step; the odd-register branch emits 0xEE.
  A.setDelta(0, Rule::ite(IsOdd, Rule::base({Ctx.bvConst(8, 0xEE)}, 0, R),
                          Rule::base({X}, 0,
                                     Ctx.mkAdd(R, Ctx.bvConst(8, 2)))));
  A.setFinalizer(0, Rule::base({}, 0, R));
  ASSERT_TRUE(A.wellFormed());

  Solver S(Ctx);
  RbbeStats Stats;
  Bst Clean = eliminateUnreachableBranches(A, S, {}, &Stats);
  EXPECT_EQ(Stats.BranchesRemoved, 1u) << bstToString(Clean);
  EXPECT_EQ(Clean.delta(0)->countBaseLeaves(), 1u);
}

TEST_F(RbbeTest, KeepsReachableBranches) {
  // Nothing should be removed from transducers where every branch fires.
  for (Bst A : {lib::makeUtf8Decode2(Ctx), lib::makeToInt(Ctx),
                lib::makeBase64Decode(Ctx), lib::makeRep(Ctx)}) {
    Solver S(Ctx);
    RbbeStats Stats;
    Bst Clean = eliminateUnreachableBranches(A, S, {}, &Stats);
    EXPECT_EQ(Stats.BranchesRemoved + Stats.FinalBranchesRemoved, 0u);
    EXPECT_EQ(Clean.countBranches(), A.countBranches());
  }
}

TEST_F(RbbeTest, UnderApproxAblationGivesSameResult) {
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Solver S1(Ctx), S2(Ctx);
  Bst Fused1 = fuse(Dec, ToInt, S1);
  Bst Fused2 = cloneBst(Fused1);

  RbbeOptions NoUA;
  NoUA.UnderApprox = false;
  RbbeStats SWith, SWithout;
  Bst CleanWith = eliminateUnreachableBranches(Fused1, S1, {}, &SWith);
  Bst CleanWithout =
      eliminateUnreachableBranches(Fused2, S2, NoUA, &SWithout);
  EXPECT_EQ(CleanWith.numStates(), CleanWithout.numStates());
  EXPECT_EQ(CleanWith.countBranches(), CleanWithout.countBranches());
  // The under-approximation saves backward searches.
  EXPECT_LT(SWith.ReachCalls, SWithout.ReachCalls);
}

TEST_F(RbbeTest, BoundedDepthIsConservative) {
  // With depth 1 the search cannot prove much, but must never remove a
  // reachable branch.
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Solver S(Ctx);
  RbbeOptions Shallow;
  Shallow.BackwardDepth = 1;
  Shallow.UnderApprox = false;
  RbbeStats Stats;
  Bst Clean = eliminateUnreachableBranches(Dec, S, Shallow, &Stats);
  auto Out = runBst(Clean, lib::valuesFromBytes("a\xC5\x93z"));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(Out->size(), 3u);
}

TEST_F(RbbeTest, RemovesUnreachableFinalizerBranch) {
  // Finalizer with a branch on an impossible register value.
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 1, 0, Value::bv(8, 0));
  TermRef X = A.inputVar();
  TermRef R = A.regVar();
  // Register is always 0 or 1 (x & 1).
  A.setDelta(0, Rule::base({X}, 0, Ctx.mkBvAnd(X, Ctx.bvConst(8, 1))));
  A.setFinalizer(0, Rule::ite(Ctx.mkUle(R, Ctx.bvConst(8, 1)),
                              Rule::base({}, 0, R),
                              Rule::base({Ctx.bvConst(8, 0xFF)}, 0, R)));
  Solver S(Ctx);
  RbbeStats Stats;
  Bst Clean = eliminateUnreachableBranches(A, S, {}, &Stats);
  EXPECT_EQ(Stats.FinalBranchesRemoved, 1u);
  EXPECT_EQ(Clean.finalizer(0)->countBaseLeaves(), 1u);
}

TEST_F(RbbeTest, DifferentialSemanticsPreservation) {
  // Random byte inputs through the full Base64Decode ⊗ BytesToInt32
  // pipeline with and without RBBE.
  Bst B64 = lib::makeBase64Decode(Ctx);
  Bst ToI = lib::makeBytesToInt32(Ctx);
  Solver S(Ctx);
  Bst Fused = fuse(B64, ToI, S);
  RbbeStats Stats;
  Bst Clean = eliminateUnreachableBranches(Fused, S, {}, &Stats);

  SplitMix64 Rng(21);
  for (int Iter = 0; Iter < 30; ++Iter) {
    std::string In;
    size_t N = Rng.below(12);
    for (size_t I = 0; I < N; ++I) {
      // Mix of valid base64 chars and occasional junk.
      const char *Alphabet =
          "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdef0123456789+/=!";
      In.push_back(Alphabet[Rng.below(47)]);
    }
    auto Before = runBst(Fused, lib::valuesFromBytes(In));
    auto After = runBst(Clean, lib::valuesFromBytes(In));
    ASSERT_EQ(Before.has_value(), After.has_value()) << In;
    if (Before)
      EXPECT_EQ(*Before, *After) << In;
  }
}

TEST_F(RbbeTest, PropertySemanticsPreservedOnRandomTransducers) {
  // RBBE must be semantics-preserving on arbitrary transducers, not just
  // the curated zoo.
  SplitMix64 Rng(0x5EED);
  for (int T = 0; T < 20; ++T) {
    TermContext C2;
    efc::testing::RandomBstGen Gen(C2, Rng);
    Bst A = Gen.make(1 + unsigned(Rng.below(3)));
    Solver S2(C2);
    RbbeStats Stats;
    Bst Clean = eliminateUnreachableBranches(A, S2, {}, &Stats);
    for (int I = 0; I < 25; ++I) {
      std::vector<Value> In = Gen.randomInput(8);
      auto Before = runBst(A, In);
      auto After = runBst(Clean, In);
      ASSERT_EQ(Before.has_value(), After.has_value())
          << "trial " << T << " input " << I << "\n" << bstToString(A);
      if (Before)
        EXPECT_EQ(*Before, *After) << "trial " << T;
    }
  }
}

TEST_F(RbbeTest, PropertyMinimizeAfterRbbeStillSound) {
  SplitMix64 Rng(0x1234);
  for (int T = 0; T < 12; ++T) {
    TermContext C2;
    efc::testing::RandomBstGen Gen(C2, Rng);
    Bst A = Gen.make(2 + unsigned(Rng.below(2)));
    Solver S2(C2);
    Bst Clean = eliminateUnreachableBranches(A, S2);
    Bst Mini = minimizeStates(Clean);
    for (int I = 0; I < 20; ++I) {
      std::vector<Value> In = Gen.randomInput(8);
      auto Before = runBst(A, In);
      auto After = runBst(Mini, In);
      ASSERT_EQ(Before.has_value(), After.has_value()) << "trial " << T;
      if (Before)
        EXPECT_EQ(*Before, *After) << "trial " << T;
    }
  }
}

} // namespace
